package repro

// One benchmark per table and figure of the paper's evaluation, each
// regenerating its experiment through internal/experiments on a
// benchmark-sized environment. Run with:
//
//	go test -bench=. -benchmem
//
// Larger, closer-to-the-paper runs: cmd/kernelbench and cmd/experiments.

import (
	"io"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/memsim"
)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

// benchEnv lazily builds one shared environment sized so every experiment
// completes in benchmark time while preserving the index-vs-LLC ratio the
// memory tables need.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = experiments.NewEnv(experiments.Config{
			GenomeLen:  600_000,
			Scale:      0.05,
			MaxThreads: 2,
			MemConfig:  memsim.Scaled(),
		})
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

func benchExperiment(b *testing.B, fn func(io.Writer, *experiments.Env) error) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_Profile regenerates Table 1: the single-thread run-time
// breakdown of the baseline workflow on D1 and D4.
func BenchmarkTable1_Profile(b *testing.B) { benchExperiment(b, experiments.Table1) }

// BenchmarkTable4_SMEM regenerates Table 4: SMEM kernel operation counts,
// simulated LLC misses and latency for the three occurrence-table configs.
func BenchmarkTable4_SMEM(b *testing.B) { benchExperiment(b, experiments.Table4) }

// BenchmarkTable5_SAL regenerates Table 5: compressed vs flat suffix-array
// lookup cost.
func BenchmarkTable5_SAL(b *testing.B) { benchExperiment(b, experiments.Table5) }

// BenchmarkTable6_BSW regenerates Table 6: scalar vs 16-bit vs 8-bit
// batched extension, sorted and unsorted.
func BenchmarkTable6_BSW(b *testing.B) { benchExperiment(b, experiments.Table6) }

// BenchmarkTable7_BSWCounters regenerates Table 7: the instruction analysis
// of the 8-bit kernel against the scalar original.
func BenchmarkTable7_BSWCounters(b *testing.B) { benchExperiment(b, experiments.Table7) }

// BenchmarkTable8_BSWBreakdown regenerates Table 8: where the 8-bit
// kernel's time goes (pre-processing, band adjustment, cells).
func BenchmarkTable8_BSWBreakdown(b *testing.B) { benchExperiment(b, experiments.Table8) }

// BenchmarkFig4_Scaling regenerates Figure 4: thread scaling of both
// implementations on D1 and D5.
func BenchmarkFig4_Scaling(b *testing.B) { benchExperiment(b, experiments.Figure4) }

// BenchmarkFig5_EndToEnd regenerates Figure 5: end-to-end compute time of
// both implementations across all five dataset profiles.
func BenchmarkFig5_EndToEnd(b *testing.B) { benchExperiment(b, experiments.Figure5) }

// BenchmarkAblation_SACompression sweeps the suffix-array compression
// factor (the §4.5 design space between BWA-MEM's 128 and the paper's 1).
func BenchmarkAblation_SACompression(b *testing.B) {
	benchExperiment(b, experiments.AblationSACompression)
}

// BenchmarkAblation_BSWWidth sweeps the batched kernel's lane width.
func BenchmarkAblation_BSWWidth(b *testing.B) { benchExperiment(b, experiments.AblationBSWWidth) }

// BenchmarkAblation_BSWSort toggles job sorting on the full extension mix.
func BenchmarkAblation_BSWSort(b *testing.B) { benchExperiment(b, experiments.AblationBSWSort) }

// BenchmarkAblation_BatchSize sweeps the reorganized pipeline's batch size.
func BenchmarkAblation_BatchSize(b *testing.B) { benchExperiment(b, experiments.AblationBatchSize) }
