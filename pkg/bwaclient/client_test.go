package bwaclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/pkg/bwamem"
)

const (
	fixtureBP   = 60000
	fixtureSeed = 33
)

// Shared fixture: a facade server over a synthetic index plus the internal
// pipeline oracle over the same reference.
var fixture struct {
	once   sync.Once
	idx    *bwamem.Index
	aln    *bwamem.Aligner
	ts     *httptest.Server
	oracle *core.Aligner
	reads  []bwamem.Read
	r1, r2 []bwamem.Read
	err    error
}

func setup(t testing.TB) *httptest.Server {
	t.Helper()
	fixture.once.Do(func() {
		fixture.idx, fixture.err = bwamem.Synthetic(fixtureBP, fixtureSeed)
		if fixture.err != nil {
			return
		}
		fixture.reads, fixture.err = fixture.idx.SimulateReads(250, 101, 3)
		if fixture.err != nil {
			return
		}
		fixture.r1, fixture.r2, fixture.err = fixture.idx.SimulatePairs(120, 101, 5)
		if fixture.err != nil {
			return
		}
		fixture.aln, fixture.err = bwamem.New(fixture.idx)
		if fixture.err != nil {
			return
		}
		cfg := bwamem.DefaultServerConfig()
		cfg.Threads = 4
		cfg.BatchSize = 64
		srv, err := bwamem.NewServer(fixture.aln, cfg)
		if err != nil {
			fixture.err = err
			return
		}
		fixture.ts = httptest.NewServer(srv)

		ref, err := datasets.Genome(datasets.DefaultGenome("synthetic", fixtureBP, fixtureSeed))
		if err != nil {
			fixture.err = err
			return
		}
		fixture.oracle, fixture.err = core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.ts
}

func toClientReads(reads []bwamem.Read) []Read {
	out := make([]Read, len(reads))
	for i, r := range reads {
		out[i] = Read(r)
	}
	return out
}

func seqReads(reads []bwamem.Read) []seq.Read {
	out := make([]seq.Read, len(reads))
	for i, r := range reads {
		out[i] = seq.Read(r)
	}
	return out
}

// TestRoundTripByteIdentical is the SDK round-trip contract: what
// pkg/bwaclient gets back over the wire is byte-identical to an in-process
// pipeline.Run over the same reads.
func TestRoundTripByteIdentical(t *testing.T) {
	ts := setup(t)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := pipeline.Run(fixture.oracle, seqReads(fixture.reads), pipeline.Config{Threads: 4})
	sam, err := c.AlignSAM(context.Background(), toClientReads(fixture.reads))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sam, want.SAM) {
		t.Fatal("client SAM differs from pipeline.Run over the same reads")
	}

	// With the header requested, the same records follow the @-lines.
	ch, err := New(ts.URL, WithSAMHeader(true))
	if err != nil {
		t.Fatal(err)
	}
	full, err := ch.AlignSAM(context.Background(), toClientReads(fixture.reads[:10]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(full, []byte("@SQ\t")) {
		t.Fatalf("WithSAMHeader response missing header: %.40q", full)
	}
}

func TestPairedRoundTripByteIdentical(t *testing.T) {
	ts := setup(t)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := pipeline.RunPaired(fixture.oracle, seqReads(fixture.r1), seqReads(fixture.r2),
		pipeline.Config{Threads: 4})
	sam, err := c.AlignPairedSAM(context.Background(), toClientReads(fixture.r1), toClientReads(fixture.r2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sam, want.SAM) {
		t.Fatal("client paired SAM differs from pipeline.RunPaired")
	}
}

func TestStreamingDecode(t *testing.T) {
	ts := setup(t)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Align(context.Background(), toClientReads(fixture.reads[:50]))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.RequestID() == "" {
		t.Fatal("stream missing X-Request-Id")
	}
	var lines int
	var got bytes.Buffer
	for st.Next() {
		got.Write(st.Record())
		got.WriteByte('\n')
		lines++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	want := pipeline.Run(fixture.oracle, seqReads(fixture.reads[:50]), pipeline.Config{Threads: 4})
	if !bytes.Equal(got.Bytes(), want.SAM) {
		t.Fatal("streamed records differ from pipeline.Run")
	}
	if lines < 50 {
		t.Fatalf("only %d records for 50 reads", lines)
	}
}

func TestTypedErrors(t *testing.T) {
	ts := setup(t)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// An invalid read (empty sequence) → 400 bad_request with a request ID.
	_, err = c.Align(context.Background(), []Read{{Name: "r", Seq: nil}})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if ae.StatusCode != http.StatusBadRequest || ae.Code != CodeBadRequest {
		t.Fatalf("got status %d code %q", ae.StatusCode, ae.Code)
	}
	if ae.RequestID == "" {
		t.Fatal("APIError missing request ID")
	}
	if !strings.Contains(ae.Error(), CodeBadRequest) {
		t.Fatalf("Error() lacks the code: %s", ae.Error())
	}

	// Unequal pair lists → 400 before any request is sent... (client-side)
	if _, err := c.AlignPaired(context.Background(), toClientReads(fixture.r1), nil); err == nil && len(fixture.r1) > 0 {
		t.Fatal("unequal pair lists accepted")
	}
}

func TestHealthAndMetrics(t *testing.T) {
	ts := setup(t)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Contigs != 1 || h.ReferenceBP != fixtureBP {
		t.Fatalf("health = %+v", h)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "bwaserve_requests_total") {
		t.Fatalf("metrics exposition missing counters: %.80s", m)
	}
}

// TestHealthIntermediary503: a 503 that is not the server's own draining
// report (an LB outage page) must surface as a typed *APIError, not a
// JSON-decode error.
func TestHealthIntermediary503(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, "<html>upstream unavailable</html>")
	}))
	defer fake.Close()
	c, err := New(fake.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Health(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 *APIError", err)
	}
	if ae.Code != "" {
		t.Fatalf("intermediary response decoded a code: %q", ae.Code)
	}
}

// TestRetryOn429 exercises the retry loop against a fake server that sheds
// the first two attempts with Retry-After: 0.
func TestRetryOn429(t *testing.T) {
	var attempts atomic.Int32
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Request-Id", "shed")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"code":"overloaded","message":"queue full","request_id":"shed"}`)
			return
		}
		fmt.Fprint(w, "rec\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*\n")
	}))
	defer fake.Close()

	c, err := New(fake.URL, WithRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	sam, err := c.AlignSAM(context.Background(), []Read{{Name: "r", Seq: []byte("ACGT")}})
	if err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", attempts.Load())
	}
	if !strings.HasPrefix(string(sam), "rec\t") {
		t.Fatalf("unexpected SAM %q", sam)
	}

	// With retries disabled the 429 surfaces immediately as an APIError.
	attempts.Store(0)
	c0, err := New(fake.URL, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c0.AlignSAM(context.Background(), []Read{{Name: "r", Seq: []byte("ACGT")}})
	if !IsOverloaded(err) {
		t.Fatalf("err = %v, want overloaded APIError", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeOverloaded || ae.RequestID != "shed" {
		t.Fatalf("envelope not decoded: %+v", ae)
	}
	if attempts.Load() != 1 {
		t.Fatalf("server saw %d attempts with retries disabled", attempts.Load())
	}
}

// TestRetryHonorsContext: a cancelled context aborts the retry wait.
func TestRetryHonorsContext(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer fake.Close()
	c, err := New(fake.URL, WithRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.AlignSAM(ctx, []Read{{Name: "r", Seq: []byte("ACGT")}})
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("retry wait ignored context (took %v)", time.Since(start))
	}
}
