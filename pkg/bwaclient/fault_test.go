package bwaclient

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// The fault-path tests run against stub servers, not a real aligner: the
// contract under test is how the client decodes hostile transports —
// reset connections, truncated chunked bodies, garbage headers — not what
// correct SAM looks like.

// TestConnectionResetMidStream: a server that dies after flushing part of
// the response must surface as a stream error, never as a clean short
// record set.
func TestConnectionResetMidStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/x-sam")
		fmt.Fprint(w, "r0\t4\t*\t0\t0\t*\t*\t0\t0\tA\t!\n")
		fmt.Fprint(w, "r1\t4\t*\t0\t0\t*\t*\t0\t0\tA\t!\n")
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler) // server-side abort: RST, not EOF
	}))
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Align(context.Background(), []Read{{Name: "r", Seq: []byte("ACGT")}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var records int
	for st.Next() {
		records++
	}
	if st.Err() == nil {
		t.Fatalf("stream ended cleanly after a mid-stream connection reset (%d records)", records)
	}
	if records > 2 {
		t.Fatalf("got %d records from a 2-record stream", records)
	}
}

// TestTruncatedFinalChunk: a chunked response whose connection closes
// without the terminating 0-length chunk is truncation. The partial final
// line must not be delivered as a record and Err must be non-nil.
func TestTruncatedFinalChunk(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, rw, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		rw.WriteString("HTTP/1.1 200 OK\r\nContent-Type: text/x-sam\r\nTransfer-Encoding: chunked\r\n\r\n")
		body := "complete\t4\t*\t0\t0\t*\t*\t0\t0\tA\t!\ntruncated\t4\t*"
		fmt.Fprintf(rw, "%x\r\n%s\r\n", len(body), body)
		rw.Flush() // no terminal 0\r\n\r\n chunk: the connection just dies
	}))
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Align(context.Background(), []Read{{Name: "r", Seq: []byte("ACGT")}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var lines []string
	for st.Next() {
		lines = append(lines, st.Text())
	}
	if st.Err() == nil {
		t.Fatalf("truncated chunked response read as a clean stream: %q", lines)
	}
	for _, l := range lines {
		if l == "truncated\t4\t*" {
			t.Fatal("partial final line delivered as a complete record")
		}
	}
}

// TestCleanEOFMidRecord: even a well-formed transport close (correct
// framing) whose body stops mid-record must report truncation — the
// server newline-terminates every record it sends.
func TestCleanEOFMidRecord(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := "complete\t4\t*\t0\t0\t*\t*\t0\t0\tA\t!\npartial\t4"
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		fmt.Fprint(w, body)
	}))
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Align(context.Background(), []Read{{Name: "r", Seq: []byte("ACGT")}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var records int
	for st.Next() {
		records++
	}
	if records != 1 {
		t.Fatalf("delivered %d records, want 1 complete record", records)
	}
	if !errors.Is(st.Err(), errTruncatedRecord) {
		t.Fatalf("Err() = %v, want errTruncatedRecord", st.Err())
	}
}

// TestGarbageServerTiming: NaN, infinite, negative, overflowing, and
// malformed dur attributes must decode to zero durations (or be skipped),
// never to garbage Durations — time.Duration(NaN) is unspecified and a
// 1e300ms value overflows the int64 nanosecond range.
func TestGarbageServerTiming(t *testing.T) {
	header := "parse;dur=NaN, admit;dur=Inf, classify;dur=-5, huge;dur=1e300, " +
		"ok;dur=2.5, bare, ;dur=3, junk;;dur=abc"
	got := parseServerTiming(header)
	want := []struct {
		name string
		dur  time.Duration
	}{
		{"parse", 0},
		{"admit", 0},
		{"classify", 0},
		{"huge", 0},
		{"ok", 2500 * time.Microsecond},
		{"bare", 0},
		{"junk", 0},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Name != w.name || got[i].Duration != w.dur {
			t.Fatalf("entry %d = %q/%v, want %q/%v", i, got[i].Name, got[i].Duration, w.name, w.dur)
		}
		if got[i].Duration < 0 {
			t.Fatalf("entry %d decoded to a negative duration %v", i, got[i].Duration)
		}
	}

	// End to end: the header rides a real response without corrupting the
	// stream handshake.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Server-Timing", header)
		fmt.Fprint(w, "r\t4\t*\t0\t0\t*\t*\t0\t0\tA\t!\n")
	}))
	defer ts.Close()
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Align(context.Background(), []Read{{Name: "r", Seq: []byte("ACGT")}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, e := range st.ServerTiming() {
		if e.Duration < 0 {
			t.Fatalf("ServerTiming entry %q = %v", e.Name, e.Duration)
		}
	}
}

// TestRetryWaitOverflow: a Retry-After whose second count overflows the
// nanosecond multiplication must clamp to maxRetryWait, not wrap negative
// (a negative timer fires immediately — the backoff becomes a hot loop).
func TestRetryWaitOverflow(t *testing.T) {
	hdr := func(ra string) http.Header {
		h := http.Header{}
		if ra != "" {
			h.Set("Retry-After", ra)
		}
		return h
	}
	cases := []struct {
		ra      string
		attempt int
		want    time.Duration
	}{
		{"9999999999999", 0, maxRetryWait}, // overflows secs * time.Second
		{"86400", 0, maxRetryWait},         // merely huge
		{"2", 0, 2 * time.Second},
		{"0", 0, 0},
		{"-3", 0, 100 * time.Millisecond}, // invalid: fall back to backoff
		{"soon", 2, 400 * time.Millisecond},
		{"", 0, 100 * time.Millisecond},
		{"", 20, 6400 * time.Millisecond}, // backoff saturates
	}
	for _, c := range cases {
		if got := retryWait(hdr(c.ra), c.attempt); got != c.want {
			t.Errorf("retryWait(Retry-After=%q, attempt %d) = %v, want %v", c.ra, c.attempt, got, c.want)
		}
		if got := retryWait(hdr(c.ra), c.attempt); got < 0 {
			t.Errorf("retryWait(Retry-After=%q) went negative: %v", c.ra, got)
		}
	}
}

// TestRetryAfterOverflowBlocksNotSpins is the end-to-end shape of the
// overflow bug: against a server answering 429 with an absurd Retry-After,
// the client must wait out the (capped) backoff — before the clamp it
// retried instantly and burned its attempts in microseconds.
func TestRetryAfterOverflowBlocksNotSpins(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "9999999999999")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"code": "overloaded", "message": "soak"}`)
	}))
	defer ts.Close()

	c, err := New(ts.URL, WithRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	_, err = c.Align(ctx, []Read{{Name: "r", Seq: []byte("ACGT")}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded (client should be parked in the capped wait)", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d attempts inside the wait window, want 1 (hot retry loop)", n)
	}
}

// TestTransportErrorIsNotAPIError: a connection that never yields a
// response (dial failure) must come back as a plain transport error, not
// a zero-valued *APIError — the soak harness's error taxonomy depends on
// the distinction.
func TestTransportErrorIsNotAPIError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens here now
	c, err := New("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Align(context.Background(), []Read{{Name: "r", Seq: []byte("ACGT")}})
	if err == nil {
		t.Fatal("Align against a dead address succeeded")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("transport failure decoded as *APIError: %v", err)
	}
}
