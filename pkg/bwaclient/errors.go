package bwaclient

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
)

// Error codes of the /v1 wire contract, as carried in APIError.Code.
// These mirror the server's list exactly (a test cross-checks the two).
const (
	CodeBadRequest           = "bad_request"            // 400: malformed body or read
	CodeTooLarge             = "too_large"              // 413: body/read-count/read-length policy
	CodeMethodNotAllowed     = "method_not_allowed"     // 405
	CodeUnsupportedMediaType = "unsupported_media_type" // 415
	CodeOverloaded           = "overloaded"             // 429: admission budget exhausted
	CodeDraining             = "draining"               // 503: graceful shutdown in progress
	CodeDeadlineExceeded     = "deadline_exceeded"      // 504: request deadline hit before output
	CodeNotFound             = "not_found"              // 404: unknown route
)

// APIError is a non-2xx response from the server. When the server sent
// its typed JSON envelope, Code/Message/RequestID carry it; responses
// from intermediaries (proxies, load balancers) that bypass the server
// yield an APIError with an empty Code and the raw body as Message.
type APIError struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Code is the machine-readable error code (the Code* constants), or
	// "" when the response carried no envelope.
	Code string
	// Message is the human-readable explanation.
	Message string
	// RequestID identifies the request in the server's logs.
	RequestID string
}

func (e *APIError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.StatusCode)
	}
	if e.Code != "" {
		msg = e.Code + ": " + msg
	}
	if e.RequestID != "" {
		return fmt.Sprintf("bwaclient: %d %s (request %s)", e.StatusCode, msg, e.RequestID)
	}
	return fmt.Sprintf("bwaclient: %d %s", e.StatusCode, msg)
}

// IsOverloaded reports whether err is the server shedding load (429) —
// the one condition where backing off and retrying is the right response.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// decodeAPIError turns a non-2xx response into an *APIError, consuming
// and closing the body. The JSON envelope is parsed when present;
// anything else (legacy plain text, proxy pages) becomes the message
// verbatim, trimmed.
func decodeAPIError(resp *http.Response) *APIError {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	ae := &APIError{StatusCode: resp.StatusCode, RequestID: resp.Header.Get("X-Request-Id")}
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err == nil &&
		(mt == "application/json" || strings.HasSuffix(mt, "+json")) {
		var env struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
		}
		if json.Unmarshal(body, &env) == nil && env.Code != "" {
			ae.Code, ae.Message = env.Code, env.Message
			if env.RequestID != "" {
				ae.RequestID = env.RequestID
			}
			return ae
		}
	}
	ae.Message = strings.TrimSpace(string(body))
	return ae
}
