package bwaclient_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"repro/pkg/bwaclient"
	"repro/pkg/bwamem"
)

// A full client round trip against an in-process server: align reads over
// HTTP, stream the records back, check the server's health, and see a
// typed error. Against a running bwaserve, only the base URL changes.
func ExampleClient() {
	// An in-process server stands in for a remote bwaserve.
	idx, err := bwamem.Synthetic(50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	aln, err := bwamem.New(idx, bwamem.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := bwamem.NewServer(aln, bwamem.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := bwaclient.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}

	// Stream an alignment: records arrive while the server is still
	// working on later reads.
	reads, err := idx.SimulateReads(50, 100, 2)
	if err != nil {
		log.Fatal(err)
	}
	clientReads := make([]bwaclient.Read, len(reads))
	for i, r := range reads {
		clientReads[i] = bwaclient.Read(r)
	}
	st, err := c.Align(context.Background(), clientReads)
	if err != nil {
		log.Fatal(err)
	}
	records := 0
	for st.Next() {
		if fields := strings.Split(st.Text(), "\t"); len(fields) >= 11 {
			records++
		}
	}
	if err := st.Err(); err != nil {
		log.Fatal(err)
	}
	st.Close()
	fmt.Printf("streamed %d records\n", records)

	// Health is a typed report.
	h, err := c.Health(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server %s over %d contig(s)\n", h.Status, h.Contigs)

	// Errors carry the server's machine-readable code and request ID.
	_, err = c.Align(context.Background(), []bwaclient.Read{{Name: "bad", Seq: nil}})
	var ae *bwaclient.APIError
	if errors.As(err, &ae) {
		fmt.Printf("rejected: HTTP %d %s\n", ae.StatusCode, ae.Code)
	}
	// Output:
	// streamed 50 records
	// server ok over 1 contig(s)
	// rejected: HTTP 400 bad_request
}
