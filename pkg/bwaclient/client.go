// Package bwaclient is the Go client for the alignment server's versioned
// /v1 HTTP API (pkg/bwamem's Server, cmd/bwaserve): it encodes read sets,
// streams SAM responses back record by record, surfaces the server's typed
// JSON error envelope as *APIError, and retries 429 admission rejections
// with the server-suggested backoff.
//
// A Client is safe for concurrent use. The zero retry policy is three
// attempts for overload (429) responses only; nothing else is ever
// retried, because an alignment request is not idempotent in cost.
package bwaclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Read is one sequencing read: name, ASCII bases, and optional per-base
// Phred+33 qualities (nil when absent). It is field-identical to
// pkg/bwamem's Read, so a []bwamem.Read converts element-wise.
type Read struct {
	Name string
	Seq  []byte
	Qual []byte
}

// Client speaks the /v1 wire API of one alignment server.
type Client struct {
	base       string
	hc         *http.Client
	retries    int  // additional attempts after a 429, beyond the first
	wantHeader bool // request the SAM @SQ/@PG header on align responses
}

// Option configures a Client at construction.
type Option func(*Client) error

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) error {
		if hc == nil {
			return fmt.Errorf("bwaclient: nil http client")
		}
		c.hc = hc
		return nil
	}
}

// WithRetries sets how many times a 429 (overloaded) response is retried
// before surfacing the error; the wait honors the server's Retry-After.
// Default 2 retries (three attempts total); 0 disables retrying.
func WithRetries(n int) Option {
	return func(c *Client) error {
		if n < 0 {
			return fmt.Errorf("bwaclient: negative retry count %d", n)
		}
		c.retries = n
		return nil
	}
}

// WithSAMHeader requests complete SAM documents (@SQ/@PG header before the
// records) from align calls. The default is records only, which is what
// programmatic consumers merging multiple responses want.
func WithSAMHeader(include bool) Option {
	return func(c *Client) error {
		c.wantHeader = include
		return nil
	}
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"). The path prefix /v1 is implied.
func New(baseURL string, opts ...Option) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("bwaclient: empty base URL")
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient, retries: 2}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// jsonRead is the wire form of one read in JSON request bodies.
type jsonRead struct {
	Name string `json:"name"`
	Seq  string `json:"seq"`
	Qual string `json:"qual,omitempty"`
}

func toJSONReads(reads []Read) []jsonRead {
	out := make([]jsonRead, len(reads))
	for i, r := range reads {
		out[i] = jsonRead{Name: r.Name, Seq: string(r.Seq), Qual: string(r.Qual)}
	}
	return out
}

// AlignOptions adjusts a single align call, overriding the Client's
// construction-time defaults. The zero value means "records only, no
// upstream request ID" — callers wanting the Client defaults use Align /
// AlignPaired instead. Built for streaming intermediaries (the bwagate
// tier) that decide per partition whether the upstream response should
// carry the SAM header and which request ID to propagate.
type AlignOptions struct {
	// IncludeHeader requests the SAM @SQ/@PG header before the records.
	IncludeHeader bool
	// RequestID, when non-empty, is sent as X-Request-Id so the upstream
	// server's logs and traces correlate with the caller's request.
	RequestID string
}

// Align maps single-end reads, returning the SAM response as a stream —
// records arrive while the server is still aligning later reads. The
// caller must drain or Close the stream.
func (c *Client) Align(ctx context.Context, reads []Read) (*SAMStream, error) {
	return c.AlignWith(ctx, reads, AlignOptions{IncludeHeader: c.wantHeader})
}

// AlignWith is Align with per-call options.
func (c *Client) AlignWith(ctx context.Context, reads []Read, opts AlignOptions) (*SAMStream, error) {
	body, err := json.Marshal(struct {
		Reads []jsonRead `json:"reads"`
	}{toJSONReads(reads)})
	if err != nil {
		return nil, err
	}
	return c.postAlign(ctx, "/v1/align", body, opts)
}

// AlignPaired maps read pairs (reads1[i] pairs with reads2[i]), returning
// the streamed SAM response. The caller must drain or Close the stream.
func (c *Client) AlignPaired(ctx context.Context, reads1, reads2 []Read) (*SAMStream, error) {
	return c.AlignPairedWith(ctx, reads1, reads2, AlignOptions{IncludeHeader: c.wantHeader})
}

// AlignPairedWith is AlignPaired with per-call options.
func (c *Client) AlignPairedWith(ctx context.Context, reads1, reads2 []Read, opts AlignOptions) (*SAMStream, error) {
	if len(reads1) != len(reads2) {
		return nil, fmt.Errorf("bwaclient: unequal pair lists: %d vs %d reads", len(reads1), len(reads2))
	}
	body, err := json.Marshal(struct {
		Reads1 []jsonRead `json:"reads1"`
		Reads2 []jsonRead `json:"reads2"`
	}{toJSONReads(reads1), toJSONReads(reads2)})
	if err != nil {
		return nil, err
	}
	return c.postAlign(ctx, "/v1/align/paired", body, opts)
}

// AlignSAM is Align buffered: the whole SAM response as one byte slice,
// exactly as the server sent it.
func (c *Client) AlignSAM(ctx context.Context, reads []Read) ([]byte, error) {
	st, err := c.Align(ctx, reads)
	if err != nil {
		return nil, err
	}
	return st.readAll()
}

// AlignPairedSAM is AlignPaired buffered.
func (c *Client) AlignPairedSAM(ctx context.Context, reads1, reads2 []Read) ([]byte, error) {
	st, err := c.AlignPaired(ctx, reads1, reads2)
	if err != nil {
		return nil, err
	}
	return st.readAll()
}

// postAlign runs one align POST with the 429 retry loop.
func (c *Client) postAlign(ctx context.Context, path string, body []byte, opts AlignOptions) (*SAMStream, error) {
	url := c.base + path
	if !opts.IncludeHeader {
		url += "?header=0"
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if opts.RequestID != "" {
			req.Header.Set("X-Request-Id", opts.RequestID)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return newSAMStream(resp), nil
		}
		apiErr := decodeAPIError(resp)
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= c.retries {
			return nil, apiErr
		}
		if err := sleepRetry(ctx, resp, attempt); err != nil {
			return nil, err
		}
	}
}

// maxRetryWait caps how long a single Retry-After is honored: a
// misconfigured intermediary answering "Retry-After: 86400" must not
// stall a retrying caller for a day — past the cap the client waits the
// cap, and the caller's context remains the real bound.
const maxRetryWait = 10 * time.Second

// retryWait computes how long a 429 is waited out: the server's
// Retry-After when present (capped at maxRetryWait), doubling 100ms
// backoff otherwise.
func retryWait(h http.Header, attempt int) time.Duration {
	if attempt > 6 {
		attempt = 6 // backoff saturates at 6.4s; larger shifts would overflow
	}
	wait := 100 * time.Millisecond << attempt
	if ra := h.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			// Clamp before converting to a Duration: a hostile or broken
			// "Retry-After: 9999999999999" multiplied into nanoseconds
			// overflows negative, which a later cap comparison would wave
			// through — and a negative timer fires immediately, turning
			// backoff into a hot retry loop against an overloaded server.
			if secs > int(maxRetryWait/time.Second) {
				return maxRetryWait
			}
			wait = time.Duration(secs) * time.Second
		}
	}
	if wait > maxRetryWait {
		wait = maxRetryWait
	}
	return wait
}

// sleepRetry waits out a 429 for retryWait, aborted by ctx.
func sleepRetry(ctx context.Context, resp *http.Response, attempt int) error {
	t := time.NewTimer(retryWait(resp.Header, attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Health is the server's /v1/healthz report.
type Health struct {
	// Status is "ok", or "draining" during graceful shutdown.
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	ReadsInflight int     `json:"reads_inflight"`
	Workers       int     `json:"workers"`
	Mode          string  `json:"mode"`
	Contigs       int     `json:"contigs"`
	ReferenceBP   int     `json:"reference_bp"`
}

// Health fetches the server's liveness and load summary. A draining
// server reports Status "draining" (not an error): the report is the
// answer either way.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// healthz answers 200 (ok) or 503 with a JSON body (draining); any
	// other status — or a non-JSON 503, e.g. an intermediary's outage
	// page — is an error, surfaced as *APIError.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, decodeAPIError(resp)
	}
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err != nil || mt != "application/json" {
		return nil, decodeAPIError(resp)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return nil, fmt.Errorf("bwaclient: decoding healthz: %w", err)
	}
	return &h, nil
}

// Ready is the server's /v1/readyz report.
type Ready struct {
	// Status is "ready", or "draining" once graceful shutdown has begun.
	Status        string `json:"status"`
	ReadsInflight int    `json:"reads_inflight"`
}

// Ready fetches the server's readiness signal: whether this replica
// should receive new traffic. A draining server reports Status "draining"
// (not an error) — the report is the answer either way; only transport
// failures and non-readyz responses return an error.
func (c *Client) Ready(ctx context.Context) (*Ready, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// readyz answers 200 (ready) or 503 with a JSON body (draining); any
	// other status — or a non-JSON 503, e.g. an intermediary's outage page —
	// is an error, surfaced as *APIError.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, decodeAPIError(resp)
	}
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err != nil || mt != "application/json" {
		return nil, decodeAPIError(resp)
	}
	var rd Ready
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rd); err != nil {
		return nil, fmt.Errorf("bwaclient: decoding readyz: %w", err)
	}
	return &rd, nil
}

// Metrics fetches the server's Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeAPIError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
