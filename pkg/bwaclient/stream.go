package bwaclient

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxSAMRecord bounds one SAM line the stream will buffer: generous for
// long reads (a 64 kb read's record is a few hundred KB with tags) while
// still refusing a response that never produces a newline.
const maxSAMRecord = 64 << 20

// SAMStream is a streaming SAM response: records become available as the
// server finishes aligning them, so the first record of a large request
// can be consumed while most of it is still queued. Iterate with Next and
// Record, then check Err; Close releases the connection (mandatory if the
// stream is abandoned early). Not safe for concurrent use.
type SAMStream struct {
	body      io.ReadCloser
	sc        *bufio.Scanner
	requestID string
	timing    []TimingEntry
	err       error
	closed    bool
}

func newSAMStream(resp *http.Response) *SAMStream {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxSAMRecord)
	return &SAMStream{body: resp.Body, sc: sc,
		requestID: resp.Header.Get("X-Request-Id"),
		timing:    parseServerTiming(resp.Header.Get("Server-Timing"))}
}

// TimingEntry is one phase of the server's Server-Timing response header:
// a name and the phase's duration.
type TimingEntry struct {
	Name     string
	Duration time.Duration
}

// ServerTiming returns the server's request-phase timings (parse, admit,
// cache classify, time to first byte) from the Server-Timing response
// header, in header order. Nil when the server sent none. The header is
// committed before the first response byte, so it covers the phases known
// at that instant — the complete timeline (alignment included) is on the
// server's metrics and debug endpoints.
func (s *SAMStream) ServerTiming() []TimingEntry { return s.timing }

// parseServerTiming decodes a Server-Timing header value: comma-separated
// "name;dur=<milliseconds>" entries. Entries without a parseable dur
// attribute are kept with zero duration; malformed fragments are skipped.
func parseServerTiming(h string) []TimingEntry {
	if h == "" {
		return nil
	}
	var out []TimingEntry
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			continue
		}
		te := TimingEntry{Name: name}
		for _, attr := range parts[1:] {
			attr = strings.TrimSpace(attr)
			if v, ok := strings.CutPrefix(attr, "dur="); ok {
				if ms, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
					te.Duration = time.Duration(ms * float64(time.Millisecond))
				}
			}
		}
		out = append(out, te)
	}
	return out
}

// Next advances to the next SAM line, reporting whether one is available.
// With WithSAMHeader the header's @-lines arrive first, as lines of the
// same stream.
func (s *SAMStream) Next() bool {
	if s.err != nil || s.closed {
		return false
	}
	if s.sc.Scan() {
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Record returns the current SAM line without its trailing newline. The
// slice is only valid until the next call to Next.
func (s *SAMStream) Record() []byte { return s.sc.Bytes() }

// Text returns the current SAM line as a string.
func (s *SAMStream) Text() string { return s.sc.Text() }

// Err returns the first error encountered while streaming (nil at a clean
// end of response). A response truncated by a mid-stream cancellation or
// deadline on the server aborts the connection (the server never ends an
// incomplete stream cleanly), so truncation surfaces here as a transport
// error rather than a silent short record set.
func (s *SAMStream) Err() error { return s.err }

// RequestID returns the X-Request-Id the server assigned this response.
func (s *SAMStream) RequestID() string { return s.requestID }

// Close releases the underlying connection. It is safe to call more than
// once and after the stream is exhausted.
func (s *SAMStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.body.Close()
}

// readAll drains the raw remaining body — the buffered convenience behind
// AlignSAM, kept byte-identical to what the server sent (no line
// re-assembly). Must be called before any Next.
func (s *SAMStream) readAll() ([]byte, error) {
	defer s.Close()
	return io.ReadAll(s.body)
}
