package bwaclient

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxSAMRecord bounds one SAM line the stream will buffer: generous for
// long reads (a 64 kb read's record is a few hundred KB with tags) while
// still refusing a response that never produces a newline.
const maxSAMRecord = 64 << 20

// SAMStream is a streaming SAM response: records become available as the
// server finishes aligning them, so the first record of a large request
// can be consumed while most of it is still queued. Iterate with Next and
// Record, then check Err; Close releases the connection (mandatory if the
// stream is abandoned early). Not safe for concurrent use.
type SAMStream struct {
	body      io.ReadCloser
	sc        *bufio.Scanner
	requestID string
	timing    []TimingEntry
	err       error
	closed    bool
}

func newSAMStream(resp *http.Response) *SAMStream {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxSAMRecord)
	sc.Split(scanSAMRecords)
	return &SAMStream{body: resp.Body, sc: sc,
		requestID: resp.Header.Get("X-Request-Id"),
		timing:    parseServerTiming(resp.Header.Get("Server-Timing"))}
}

// errTruncatedRecord reports a response body that ended in the middle of
// a record. The server terminates every record (header lines included)
// with '\n', so a body whose last line has none was cut short in flight.
var errTruncatedRecord = errors.New("bwaclient: response truncated mid-record")

// scanSAMRecords is bufio.ScanLines with the truncation leniency removed:
// ScanLines hands back an unterminated final line as a normal token, so a
// response cut mid-record would deliver the fragment as if it were a
// complete record before the stream error surfaced. Here a record only
// exists once its newline does; leftover bytes at end of body are an
// error (which does not displace an underlying transport error — the
// scanner keeps the first).
func scanSAMRecords(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line := data[:i]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		return i + 1, line, nil
	}
	if atEOF && len(data) > 0 {
		return 0, nil, errTruncatedRecord
	}
	return 0, nil, nil
}

// TimingEntry is one phase of the server's Server-Timing response header:
// a name and the phase's duration.
type TimingEntry struct {
	Name     string
	Duration time.Duration
}

// ServerTiming returns the server's request-phase timings (parse, admit,
// cache classify, time to first byte) from the Server-Timing response
// header, in header order. Nil when the server sent none. The header is
// committed before the first response byte, so it covers the phases known
// at that instant — the complete timeline (alignment included) is on the
// server's metrics and debug endpoints.
func (s *SAMStream) ServerTiming() []TimingEntry { return s.timing }

// maxTimingMS bounds a Server-Timing dur attribute to what a
// time.Duration can carry: anything larger (or non-finite) came from a
// broken intermediary, and converting it would overflow — or, for NaN,
// produce an unspecified Duration.
const maxTimingMS = float64(int64(^uint64(0)>>1) / int64(time.Millisecond))

// parseServerTiming decodes a Server-Timing header value: comma-separated
// "name;dur=<milliseconds>" entries. Entries without a parseable dur
// attribute — including NaN, infinities, negative values, and magnitudes
// a time.Duration cannot represent — are kept with zero duration;
// malformed fragments are skipped.
func parseServerTiming(h string) []TimingEntry {
	if h == "" {
		return nil
	}
	var out []TimingEntry
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			continue
		}
		te := TimingEntry{Name: name}
		for _, attr := range parts[1:] {
			attr = strings.TrimSpace(attr)
			if v, ok := strings.CutPrefix(attr, "dur="); ok {
				ms, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err == nil && !math.IsNaN(ms) && ms >= 0 && ms <= maxTimingMS {
					te.Duration = time.Duration(ms * float64(time.Millisecond))
				}
			}
		}
		out = append(out, te)
	}
	return out
}

// Next advances to the next SAM line, reporting whether one is available.
// With WithSAMHeader the header's @-lines arrive first, as lines of the
// same stream.
func (s *SAMStream) Next() bool {
	if s.err != nil || s.closed {
		return false
	}
	if s.sc.Scan() {
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Record returns the current SAM line without its trailing newline. The
// slice is only valid until the next call to Next.
func (s *SAMStream) Record() []byte { return s.sc.Bytes() }

// Text returns the current SAM line as a string.
func (s *SAMStream) Text() string { return s.sc.Text() }

// Err returns the first error encountered while streaming (nil at a clean
// end of response). A response truncated by a mid-stream cancellation or
// deadline on the server aborts the connection (the server never ends an
// incomplete stream cleanly), so truncation surfaces here as a transport
// error rather than a silent short record set; a body that ends cleanly
// but mid-record (every server record is newline-terminated) reports a
// truncation error, and the fragment is never delivered as a record.
func (s *SAMStream) Err() error { return s.err }

// RequestID returns the X-Request-Id the server assigned this response.
func (s *SAMStream) RequestID() string { return s.requestID }

// Close releases the underlying connection. It is safe to call more than
// once and after the stream is exhausted.
func (s *SAMStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.body.Close()
}

// readAll drains the raw remaining body — the buffered convenience behind
// AlignSAM, kept byte-identical to what the server sent (no line
// re-assembly). Must be called before any Next.
func (s *SAMStream) readAll() ([]byte, error) {
	defer s.Close()
	return io.ReadAll(s.body)
}
