package bwamem

import (
	"io"

	"repro/internal/seq"
)

// ReadFastq decodes all 4-line FASTQ records from r.
func ReadFastq(r io.Reader) ([]Read, error) {
	reads, err := seq.ReadFastq(r)
	if err != nil {
		return nil, err
	}
	return fromSeqReads(reads), nil
}

// WriteFastq encodes reads as 4-line FASTQ records. Reads without
// qualities are written with a constant 'I' (Q40) quality string, as FASTQ
// requires one.
func WriteFastq(w io.Writer, reads []Read) error {
	return seq.WriteFastq(w, toSeqReads(reads))
}
