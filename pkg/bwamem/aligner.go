package bwamem

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/pipeline"
)

// Aligner maps reads against one Index. Construct with New; all methods
// are safe for concurrent use (concurrent Align calls interleave on the
// aligner's shared worker pool at batch granularity). Close releases the
// pool; the Index is not touched.
type Aligner struct {
	idx  *Index
	core *core.Aligner
	cfg  config

	mu     sync.Mutex
	sched  *pipeline.Scheduler // created on first use
	closed bool
}

// New assembles an Aligner over idx. Options default to the paper's
// optimized mode, runtime.NumCPU worker threads, 512-read batches, and
// BWA-MEM's standard scoring.
func New(idx *Index, opts ...Option) (*Aligner, error) {
	if idx == nil {
		return nil, fmt.Errorf("bwamem: nil index")
	}
	cfg, err := resolveConfig(opts)
	if err != nil {
		return nil, err
	}
	ca, err := core.NewAlignerFrom(idx.pi, cfg.mode.core(), cfg.opts)
	if err != nil {
		return nil, err
	}
	return &Aligner{idx: idx, core: ca, cfg: cfg}, nil
}

// Mode reports the implementation this aligner runs.
func (a *Aligner) Mode() Mode {
	if a.core.Mode == core.ModeBaseline {
		return ModeBaseline
	}
	return ModeOptimized
}

// Threads reports the resolved worker count.
func (a *Aligner) Threads() int {
	if a.cfg.threads > 0 {
		return a.cfg.threads
	}
	return runtime.NumCPU()
}

// Header returns the SAM header (@SQ lines for every contig plus @PG) that
// precedes the records of a complete SAM document.
func (a *Aligner) Header() string { return a.core.SAMHeader() }

// scheduler returns the lazily created shared worker pool.
func (a *Aligner) scheduler() (*pipeline.Scheduler, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, fmt.Errorf("bwamem: aligner is closed")
	}
	if a.sched == nil {
		a.sched = pipeline.NewScheduler(a.core, a.Threads())
	}
	return a.sched, nil
}

// Align maps single-end reads, streaming output: emit is called exactly
// once per read index with that read's SAM records (newline-terminated,
// no header), from worker goroutines in completion — not index — order,
// as soon as the read is formatted. emit must be safe for concurrent use
// and must not block for long (it runs on the pool). The record slice is
// owned by the callee.
//
// Cancelling ctx drops batches that have not started and returns
// ctx.Err(); records already emitted stay emitted.
func (a *Aligner) Align(ctx context.Context, reads []Read, emit func(i int, rec []byte)) error {
	s, err := a.scheduler()
	if err != nil {
		return err
	}
	_, err = pipeline.RunStreamOn(ctx, s, toSeqReads(reads),
		pipeline.Config{BatchSize: a.cfg.batch}, emit)
	return err
}

// Stats summarizes one alignment call: what it processed, how long it
// took, and where the kernel time went.
type Stats struct {
	// Reads is the number of reads mapped (pairs count both ends).
	Reads int
	// Wall is the call's end-to-end wall time.
	Wall time.Duration
	// StageSeconds is this call's per-stage kernel time, keyed by stage
	// name ("SMEM", "SAL", "CHAIN", "BSW-pre", "BSW", "SAM-FORM", "Misc").
	// It is measured as the pool clock's delta across the call: exact when
	// nothing else runs on the aligner, approximate under concurrent Align
	// calls (their stage time interleaves into the same pool).
	StageSeconds map[string]float64
}

func statsFromResult(res *pipeline.Result) Stats {
	st := Stats{Reads: res.Reads, Wall: res.Wall,
		StageSeconds: make(map[string]float64, counters.NumStages)}
	for _, stage := range counters.Stages() {
		st.StageSeconds[stage.String()] = res.Clock.T[stage].Seconds()
	}
	return st
}

// AlignWithStats is Align plus a per-call Stats summary (wall time and the
// call's per-stage kernel time). On error the zero Stats is returned.
func (a *Aligner) AlignWithStats(ctx context.Context, reads []Read, emit func(i int, rec []byte)) (Stats, error) {
	s, err := a.scheduler()
	if err != nil {
		return Stats{}, err
	}
	res, err := pipeline.RunStreamOn(ctx, s, toSeqReads(reads),
		pipeline.Config{BatchSize: a.cfg.batch}, emit)
	if err != nil {
		return Stats{}, err
	}
	return statsFromResult(res), nil
}

// AlignPairedWithStats is AlignPaired plus a per-call Stats summary;
// Stats.Reads counts both ends of every pair. On error the zero Stats is
// returned.
func (a *Aligner) AlignPairedWithStats(ctx context.Context, reads1, reads2 []Read, emit func(i int, rec []byte)) (Stats, error) {
	if len(reads1) != len(reads2) {
		return Stats{}, fmt.Errorf("bwamem: unequal pair lists: %d vs %d reads", len(reads1), len(reads2))
	}
	s, err := a.scheduler()
	if err != nil {
		return Stats{}, err
	}
	res, err := pipeline.RunPairedStreamOn(ctx, s, toSeqReads(reads1), toSeqReads(reads2),
		pipeline.Config{BatchSize: a.cfg.batch}, emit)
	if err != nil {
		return Stats{}, err
	}
	return statsFromResult(res), nil
}

// AlignSAM maps single-end reads and returns a complete SAM document:
// header plus one block of records per read, in input order.
func (a *Aligner) AlignSAM(ctx context.Context, reads []Read) ([]byte, error) {
	perRead := make([][]byte, len(reads))
	if err := a.Align(ctx, reads, func(i int, rec []byte) { perRead[i] = rec }); err != nil {
		return nil, err
	}
	return assembleSAM(a.Header(), perRead), nil
}

// AlignPaired maps read pairs (reads1[i] pairs with reads2[i]): both ends
// go through the pipeline, the FR insert-size distribution is inferred
// from this call's confident pairs alone, and emit receives each pair's
// records (both ends) once pairing completes, under Align's callback
// contract with pair indexes in place of read indexes.
func (a *Aligner) AlignPaired(ctx context.Context, reads1, reads2 []Read, emit func(i int, rec []byte)) error {
	if len(reads1) != len(reads2) {
		return fmt.Errorf("bwamem: unequal pair lists: %d vs %d reads", len(reads1), len(reads2))
	}
	s, err := a.scheduler()
	if err != nil {
		return err
	}
	_, err = pipeline.RunPairedStreamOn(ctx, s, toSeqReads(reads1), toSeqReads(reads2),
		pipeline.Config{BatchSize: a.cfg.batch}, emit)
	return err
}

// AlignPairedSAM maps read pairs and returns a complete SAM document in
// pair order.
func (a *Aligner) AlignPairedSAM(ctx context.Context, reads1, reads2 []Read) ([]byte, error) {
	perPair := make([][]byte, len(reads1))
	if err := a.AlignPaired(ctx, reads1, reads2, func(i int, rec []byte) { perPair[i] = rec }); err != nil {
		return nil, err
	}
	return assembleSAM(a.Header(), perPair), nil
}

// StageSeconds returns the cumulative per-stage kernel time of this
// aligner's worker pool, keyed by stage name ("SMEM", "SAL", "CHAIN",
// "BSW-pre", "BSW", "SAM-FORM", "Misc") — the paper's Table 1 rows. Zero
// map before the first alignment.
func (a *Aligner) StageSeconds() map[string]float64 {
	a.mu.Lock()
	s := a.sched
	a.mu.Unlock()
	out := make(map[string]float64, counters.NumStages)
	if s == nil {
		return out
	}
	clock := s.Clock()
	for i := counters.Stage(0); i < counters.NumStages; i++ {
		out[i.String()] = clock.T[i].Seconds()
	}
	return out
}

// Close stops the worker pool. No Align call may be running or started
// afterwards. It does not close the Index.
func (a *Aligner) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	if a.sched != nil {
		a.sched.Close()
	}
}

// assembleSAM concatenates the header and per-record blocks sized up front.
func assembleSAM(header string, blocks [][]byte) []byte {
	n := len(header)
	for _, b := range blocks {
		n += len(b)
	}
	sam := make([]byte, 0, n)
	sam = append(sam, header...)
	for _, b := range blocks {
		sam = append(sam, b...)
	}
	return sam
}
