package bwamem

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/testutil"
)

// Shared fixture: one synthetic index + reads, built once (index
// construction dominates test time).
var fixture struct {
	once   sync.Once
	idx    *Index
	reads  []Read
	r1, r2 []Read
	err    error
}

const (
	fixtureBP   = 60000
	fixtureSeed = 21
)

func setup(t testing.TB) (*Index, []Read, []Read, []Read) {
	t.Helper()
	fixture.once.Do(func() {
		fixture.idx, fixture.err = Synthetic(fixtureBP, fixtureSeed)
		if fixture.err != nil {
			return
		}
		fixture.reads, fixture.err = fixture.idx.SimulateReads(300, 101, 7)
		if fixture.err != nil {
			return
		}
		fixture.r1, fixture.r2, fixture.err = fixture.idx.SimulatePairs(150, 101, 9)
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.idx, fixture.reads, fixture.r1, fixture.r2
}

// internalWant runs the internal pipeline over the same synthetic
// reference the fixture index wraps, as the facade's byte-identity oracle.
func internalWant(t *testing.T, mode core.Mode, reads []Read) []byte {
	t.Helper()
	ref, err := datasets.Genome(datasets.DefaultGenome("synthetic", fixtureBP, fixtureSeed))
	if err != nil {
		t.Fatal(err)
	}
	aln, err := core.NewAligner(ref, mode, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := pipeline.Run(aln, toSeqReads(reads), pipeline.Config{Threads: 4})
	return res.SAM
}

func TestAlignMatchesInternalPipeline(t *testing.T) {
	idx, reads, _, _ := setup(t)
	aln, err := New(idx, WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer aln.Close()

	sam, err := aln.AlignSAM(context.Background(), reads)
	if err != nil {
		t.Fatal(err)
	}
	want := internalWant(t, core.ModeOptimized, reads)
	if !strings.HasPrefix(string(sam), aln.Header()) {
		t.Fatal("AlignSAM output does not start with the SAM header")
	}
	if !bytes.Equal(sam[len(aln.Header()):], want) {
		t.Fatal("facade SAM records differ from internal pipeline.Run")
	}
}

func TestBaselineAndOptimizedIdentical(t *testing.T) {
	idx, reads, _, _ := setup(t)
	var sams [2][]byte
	for i, mode := range []Mode{ModeBaseline, ModeOptimized} {
		aln, err := New(idx, WithMode(mode), WithThreads(2))
		if err != nil {
			t.Fatal(err)
		}
		sams[i], err = aln.AlignSAM(context.Background(), reads)
		aln.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(sams[0], sams[1]) {
		t.Fatal("baseline and optimized outputs differ through the facade")
	}
}

func TestAlignPairedMatchesInternalPipeline(t *testing.T) {
	idx, _, r1, r2 := setup(t)
	aln, err := New(idx, WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer aln.Close()
	sam, err := aln.AlignPairedSAM(context.Background(), r1, r2)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := datasets.Genome(datasets.DefaultGenome("synthetic", fixtureBP, fixtureSeed))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := pipeline.RunPaired(ca, toSeqReads(r1), toSeqReads(r2), pipeline.Config{Threads: 4})
	if !bytes.Equal(sam[len(aln.Header()):], res.SAM) {
		t.Fatal("facade paired SAM differs from internal pipeline.RunPaired")
	}
}

func TestAlignStreamingEmitsEveryIndexOnce(t *testing.T) {
	idx, reads, _, _ := setup(t)
	aln, err := New(idx, WithThreads(4), WithBatchSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer aln.Close()
	var mu sync.Mutex
	seen := make(map[int]int)
	if err := aln.Align(context.Background(), reads, func(i int, rec []byte) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		if len(rec) == 0 {
			t.Error("empty record emitted")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(reads) {
		t.Fatalf("emit covered %d of %d reads", len(seen), len(reads))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("read %d emitted %d times", i, n)
		}
	}
}

func TestAlignCancelledContext(t *testing.T) {
	idx, reads, _, _ := setup(t)
	aln, err := New(idx, WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	defer aln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := aln.Align(ctx, reads, func(int, []byte) {}); err != context.Canceled {
		t.Fatalf("cancelled align: err = %v, want context.Canceled", err)
	}
}

func TestOptionValidation(t *testing.T) {
	idx, _, _, _ := setup(t)
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"negative threads", WithThreads(-1)},
		{"negative batch", WithBatchSize(-5)},
		{"bad mode", WithMode(Mode(9))},
		{"zero match score", WithScores(0, 4)},
		{"zero gap extend", WithGapPenalties(6, 0)},
		{"negative clip", WithClipPenalties(-1, 5)},
		{"zero band", WithBandWidth(0)},
		{"zero zdrop", WithZDrop(0)},
		{"negative T", WithMinOutputScore(-1)},
	} {
		if _, err := New(idx, tc.opt); err == nil {
			t.Errorf("%s: New accepted invalid option", tc.name)
		}
	}
}

func TestScoringOptionsChangeOutput(t *testing.T) {
	idx, reads, _, _ := setup(t)
	strict, err := New(idx, WithThreads(2), WithMinOutputScore(100))
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	lax, err := New(idx, WithThreads(2), WithMinOutputScore(0), WithSecondaryOutput(true))
	if err != nil {
		t.Fatal(err)
	}
	defer lax.Close()
	s1, err := strict.AlignSAM(context.Background(), reads)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := lax.AlignSAM(context.Background(), reads)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s2) {
		t.Fatal("scoring options had no effect on output")
	}
	if bytes.Count(s1, []byte{'\n'}) > bytes.Count(s2, []byte{'\n'}) {
		t.Fatal("strict -T output holds more records than -a output")
	}
}

func TestAlignPairedUnequalLists(t *testing.T) {
	idx, _, r1, r2 := setup(t)
	aln, err := New(idx, WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	defer aln.Close()
	if err := aln.AlignPaired(context.Background(), r1, r2[:len(r2)-1], func(int, []byte) {}); err == nil {
		t.Fatal("unequal pair lists accepted")
	}
}

func TestAlignAfterCloseFails(t *testing.T) {
	idx, reads, _, _ := setup(t)
	goroutines := testutil.Goroutines()
	aln, err := New(idx, WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aln.AlignSAM(context.Background(), reads[:4]); err != nil {
		t.Fatal(err)
	}
	aln.Close()
	aln.Close() // idempotent
	if err := aln.Align(context.Background(), reads[:1], func(int, []byte) {}); err == nil {
		t.Fatal("Align succeeded on a closed aligner")
	}
	// Close stops the scheduler's workers: none of them may survive it.
	testutil.CheckGoroutines(t, goroutines, 2)
}

func TestFastqRoundTrip(t *testing.T) {
	_, reads, _, _ := setup(t)
	var buf bytes.Buffer
	if err := WriteFastq(&buf, reads[:20]); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 20 {
		t.Fatalf("round trip: %d reads, want 20", len(back))
	}
	for i := range back {
		if back[i].Name != reads[i].Name || !bytes.Equal(back[i].Seq, reads[i].Seq) {
			t.Fatalf("read %d mutated in FASTQ round trip", i)
		}
	}
}

func TestIndexWriteOpenRoundTrip(t *testing.T) {
	idx, reads, _, _ := setup(t)
	dir := t.TempDir()
	path := dir + "/ref.bwago"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, open := range []struct {
		name string
		fn   func(string) (*Index, error)
	}{{"Open", Open}, {"OpenMmap", OpenMmap}} {
		loaded, err := open.fn(path)
		if err != nil {
			t.Fatalf("%s: %v", open.name, err)
		}
		aln, err := New(loaded, WithThreads(2))
		if err != nil {
			t.Fatal(err)
		}
		sam, err := aln.AlignSAM(context.Background(), reads[:50])
		if err != nil {
			t.Fatal(err)
		}
		want := internalWant(t, core.ModeOptimized, reads[:50])
		if !bytes.Equal(sam[len(aln.Header()):], want) {
			t.Fatalf("%s: reloaded index output differs", open.name)
		}
		aln.Close()
		if err := loaded.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndexMetadata(t *testing.T) {
	idx, _, _, _ := setup(t)
	if got := idx.Contigs(); len(got) != 1 || got[0] != "synthetic" {
		t.Fatalf("Contigs() = %v", got)
	}
	if idx.ReferenceLength() != fixtureBP {
		t.Fatalf("ReferenceLength() = %d, want %d", idx.ReferenceLength(), fixtureBP)
	}
	if idx.Info().Source != "synthetic-build" {
		t.Fatalf("Info().Source = %q", idx.Info().Source)
	}
}

func TestStageSecondsPopulated(t *testing.T) {
	idx, reads, _, _ := setup(t)
	aln, err := New(idx, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer aln.Close()
	if _, err := aln.AlignSAM(context.Background(), reads[:100]); err != nil {
		t.Fatal(err)
	}
	ss := aln.StageSeconds()
	if ss["SMEM"] <= 0 {
		t.Fatalf("StageSeconds missing SMEM time: %v", ss)
	}
}
