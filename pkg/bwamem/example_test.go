package bwamem_test

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync/atomic"

	"repro/pkg/bwamem"
)

// The minimal end-to-end use of the SDK: index, aligner, reads, SAM.
func Example() {
	// Real users Build from FASTA or Open a prebuilt .bwago index;
	// Synthetic needs no files.
	idx, err := bwamem.Synthetic(50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	aln, err := bwamem.New(idx, bwamem.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	defer aln.Close()

	reads, err := idx.SimulateReads(5, 100, 2)
	if err != nil {
		log.Fatal(err)
	}
	sam, err := aln.AlignSAM(context.Background(), reads)
	if err != nil {
		log.Fatal(err)
	}

	mapped := 0
	for _, line := range strings.Split(strings.TrimSpace(string(sam)), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		var flag int
		fmt.Sscan(strings.Split(line, "\t")[1], &flag)
		if flag&bwamem.FlagUnmapped == 0 {
			mapped++
		}
	}
	fmt.Printf("mapped %d of %d reads\n", mapped, len(reads))
	// Output: mapped 5 of 5 reads
}

// Streaming alignment: records are delivered through a callback as they
// complete, so a large run needs no output buffer.
func ExampleAligner_Align() {
	idx, err := bwamem.Synthetic(50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	aln, err := bwamem.New(idx, bwamem.WithThreads(2), bwamem.WithBatchSize(64))
	if err != nil {
		log.Fatal(err)
	}
	defer aln.Close()

	reads, err := idx.SimulateReads(200, 100, 3)
	if err != nil {
		log.Fatal(err)
	}
	var records atomic.Int64
	// emit runs on worker goroutines; i is the read index.
	err = aln.Align(context.Background(), reads, func(i int, rec []byte) {
		records.Add(1)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed records for %d reads\n", records.Load())
	// Output: streamed records for 200 reads
}

// Functional options tune threading, batching, and scoring at
// construction.
func ExampleNew() {
	idx, err := bwamem.Synthetic(50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	aln, err := bwamem.New(idx,
		bwamem.WithMode(bwamem.ModeBaseline), // original BWA-MEM's design
		bwamem.WithThreads(1),
		bwamem.WithMinOutputScore(40), // bwa mem -T 40
	)
	if err != nil {
		log.Fatal(err)
	}
	defer aln.Close()
	fmt.Println(aln.Mode(), aln.Threads())
	// Output: baseline 1
}
