package bwamem

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
)

// ServerConfig tunes one deployment of the long-running alignment server.
// Zero values resolve to the documented defaults; DefaultServerConfig is
// the recommended starting point. The aligner implementation (mode,
// scoring) comes from the Aligner handed to NewServer, not from here.
type ServerConfig struct {
	// Threads is the worker-pool size the server schedules batches over.
	// 0 means runtime.NumCPU.
	Threads int
	// BatchSize is the reads-per-batch target of the batch-staged pipeline
	// and of cross-request coalescing. 0 means 512.
	BatchSize int

	// MaxInFlightReads caps the reads admitted (queued or executing)
	// across all requests; a request that would exceed it is rejected with
	// 429. 0 means 65536.
	MaxInFlightReads int
	// MaxReadsPerRequest caps a single request's read count (413 beyond).
	// 0 means MaxInFlightReads.
	MaxReadsPerRequest int
	// MaxReadLen caps a single read's length in bases (413 beyond).
	// 0 means 65536.
	MaxReadLen int

	// CoalesceLinger is how long a partial batch waits for reads from
	// other requests before being flushed to the pool. 0 means 500µs;
	// negative disables lingering.
	CoalesceLinger time.Duration
	// RequestTimeout bounds one request's alignment work; when it (or the
	// client's disconnect) ends the request context, unstarted batches are
	// dropped. 0 means no server-imposed deadline.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown's wait for in-flight requests.
	// 0 means 30s.
	DrainTimeout time.Duration

	// CacheEnabled turns on the sharded single-end result cache: duplicate
	// read sequences are served from cached alignment regions, re-rendered
	// per read so output stays byte-identical. Paired requests bypass it.
	CacheEnabled bool
	// CacheBytes is the result cache's total capacity. 0 means 256 MiB.
	CacheBytes int64
	// CacheShards is the cache's lock-striping width, rounded up to a
	// power of two. 0 means 64.
	CacheShards int

	// DebugRequestTraces sizes the per-request trace ring served by
	// GET /v1/debug/requests (the N most recent and N slowest request
	// timelines, with per-phase timings). 0, the default, disables the
	// endpoint (it answers 404).
	DebugRequestTraces int
}

// DefaultServerConfig returns the deployment defaults (result cache on,
// NumCPU workers resolved at server start).
func DefaultServerConfig() ServerConfig {
	return fromCoreServerConfig(core.DefaultServerConfig())
}

func (c ServerConfig) toCore(mode core.Mode) core.ServerConfig {
	return core.ServerConfig{
		Threads:            c.Threads,
		BatchSize:          c.BatchSize,
		Mode:               mode,
		MaxInFlightReads:   c.MaxInFlightReads,
		MaxReadsPerRequest: c.MaxReadsPerRequest,
		MaxReadLen:         c.MaxReadLen,
		CoalesceLinger:     c.CoalesceLinger,
		RequestTimeout:     c.RequestTimeout,
		DrainTimeout:       c.DrainTimeout,
		CacheEnabled:       c.CacheEnabled,
		CacheBytes:         c.CacheBytes,
		CacheShards:        c.CacheShards,
		DebugRequestTraces: c.DebugRequestTraces,
	}
}

func fromCoreServerConfig(c core.ServerConfig) ServerConfig {
	return ServerConfig{
		Threads:            c.Threads,
		BatchSize:          c.BatchSize,
		MaxInFlightReads:   c.MaxInFlightReads,
		MaxReadsPerRequest: c.MaxReadsPerRequest,
		MaxReadLen:         c.MaxReadLen,
		CoalesceLinger:     c.CoalesceLinger,
		RequestTimeout:     c.RequestTimeout,
		DrainTimeout:       c.DrainTimeout,
		CacheEnabled:       c.CacheEnabled,
		CacheBytes:         c.CacheBytes,
		CacheShards:        c.CacheShards,
		DebugRequestTraces: c.DebugRequestTraces,
	}
}

// Server is the long-lived alignment service over one resident index,
// speaking the versioned /v1 HTTP API (plus the unversioned legacy
// aliases): POST /v1/align, POST /v1/align/paired, GET /v1/healthz,
// GET /v1/metrics. Every response carries X-Request-Id and every error is
// a typed JSON envelope {"code","message","request_id"}; pkg/bwaclient is
// the matching client. Construct with NewServer, expose via Handler or
// ServeHTTP, stop with Shutdown (graceful drain) or Close.
type Server struct {
	srv *server.Server
}

// NewServer wraps a's index and implementation in the alignment service.
// The server schedules its own worker pool (cfg.Threads); it shares a's
// index and options but not the pool a's direct Align calls use, so
// embedding both in one process is safe.
func NewServer(a *Aligner, cfg ServerConfig) (*Server, error) {
	srv, err := server.New(a.core, cfg.toCore(a.core.Mode))
	if err != nil {
		return nil, err
	}
	info := a.idx.info
	if info.ResidentBytes == 0 {
		info.ResidentBytes = a.core.IndexFootprint()
	}
	srv.SetIndexInfo(server.IndexInfo(info))
	return &Server{srv: srv}, nil
}

// Config returns the resolved deployment configuration.
func (s *Server) Config() ServerConfig {
	return fromCoreServerConfig(s.srv.Config())
}

// Handler returns the HTTP entry point (also available as s itself).
func (s *Server) Handler() http.Handler { return s.srv.Handler() }

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.srv.ServeHTTP(w, r)
}

// SetLogf installs a request-plane logger (cancellations and deadline
// expiries are reported through it with their request IDs). nil disables
// logging, the default. Safe to call concurrently with serving.
func (s *Server) SetLogf(logf func(format string, args ...any)) { s.srv.SetLogf(logf) }

// SetLogOutput installs the structured request log: one event per request
// (request_id, route, status, reads, duration, bytes) plus cancellation
// warnings, written to w in the given format — "json" (one JSON object per
// line) or "text" (timestamp, level, message, key=value fields). A nil w
// disables structured logging, the default. Safe to call concurrently
// with serving; independent of SetLogf.
func (s *Server) SetLogOutput(w io.Writer, format string) error {
	if w == nil {
		s.srv.SetLogger(nil)
		return nil
	}
	f, err := obs.ParseFormat(format)
	if err != nil {
		return err
	}
	s.srv.SetLogger(obs.NewLogger(w, f, obs.LevelInfo))
	return nil
}

// Shutdown drains gracefully: new work is rejected with 503 while
// admitted requests run to completion, then the worker pool stops. If
// in-flight work outlives ctx's deadline (or DrainTimeout when ctx has
// none) an error is returned and Shutdown may be called again.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close is Shutdown with the configured drain timeout.
func (s *Server) Close() error { return s.srv.Close() }
