package bwamem

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seq"
)

// Read is one sequencing read: name, ASCII bases, and optional per-base
// Phred+33 qualities (nil when absent). It is the unit every alignment
// entry point consumes.
type Read struct {
	Name string
	Seq  []byte
	Qual []byte
}

// SAM FLAG bits (SAM spec §1.4), for interpreting the records the aligner
// emits without importing a SAM library.
const (
	FlagPaired        = 0x1
	FlagProperPair    = 0x2
	FlagUnmapped      = 0x4
	FlagMateUnmapped  = 0x8
	FlagReverse       = 0x10
	FlagMateReverse   = 0x20
	FlagFirst         = 0x40
	FlagLast          = 0x80
	FlagSecondary     = 0x100
	FlagSupplementary = 0x800
)

// Mode selects which of the paper's two implementations drives the
// kernels. Both produce byte-identical output; only the speed differs.
type Mode int

const (
	// ModeOptimized is the paper's architecture-aware design (the
	// default): η=32 occurrence table with software prefetching, flat
	// suffix array, batch-staged pipeline.
	ModeOptimized Mode = iota
	// ModeBaseline reproduces original BWA-MEM's design, for comparison.
	ModeBaseline
)

func (m Mode) String() string {
	if m == ModeBaseline {
		return "baseline"
	}
	return "optimized"
}

// ParseMode parses a mode name ("baseline" or "optimized") — the inverse
// of Mode.String, for flag and config plumbing.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "baseline":
		return ModeBaseline, nil
	case "optimized":
		return ModeOptimized, nil
	}
	return ModeOptimized, fmt.Errorf("bwamem: unknown mode %q (want baseline or optimized)", s)
}

func (m Mode) core() core.Mode {
	if m == ModeBaseline {
		return core.ModeBaseline
	}
	return core.ModeOptimized
}

// config is the resolved option set of one Aligner.
type config struct {
	mode    Mode
	threads int // 0 = NumCPU
	batch   int // 0 = default
	opts    core.Options
}

// Option configures an Aligner at construction (New). Options validate
// eagerly: an out-of-range value fails New rather than misaligning later.
type Option func(*config) error

// WithThreads sets the worker-goroutine count for this aligner's pool.
// 0 (the default) means runtime.NumCPU.
func WithThreads(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("bwamem: negative thread count %d", n)
		}
		c.threads = n
		return nil
	}
}

// WithBatchSize sets the reads-per-batch target of the batch-staged
// pipeline. 0 (the default) means 512.
func WithBatchSize(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("bwamem: negative batch size %d", n)
		}
		c.batch = n
		return nil
	}
}

// WithMode selects the implementation (default ModeOptimized).
func WithMode(m Mode) Option {
	return func(c *config) error {
		if m != ModeBaseline && m != ModeOptimized {
			return fmt.Errorf("bwamem: unknown mode %d", m)
		}
		c.mode = m
		return nil
	}
}

// WithScores sets the match score and mismatch penalty (bwa mem -A/-B;
// defaults 1 and 4).
func WithScores(match, mismatch int) Option {
	return func(c *config) error {
		if match <= 0 || mismatch < 0 {
			return fmt.Errorf("bwamem: invalid scores match=%d mismatch=%d", match, mismatch)
		}
		c.opts.MatchScore = match
		c.opts.MismatchPen = mismatch
		return nil
	}
}

// WithGapPenalties sets the gap open and extend penalties, applied to both
// deletions and insertions (bwa mem -O/-E; defaults 6 and 1).
func WithGapPenalties(open, extend int) Option {
	return func(c *config) error {
		if open < 0 || extend <= 0 {
			return fmt.Errorf("bwamem: invalid gap penalties open=%d extend=%d", open, extend)
		}
		c.opts.ODel, c.opts.OIns = open, open
		c.opts.EDel, c.opts.EIns = extend, extend
		return nil
	}
}

// WithClipPenalties sets the 5' and 3' soft-clipping penalties (end
// bonuses; bwa mem -L, default 5 each).
func WithClipPenalties(p5, p3 int) Option {
	return func(c *config) error {
		if p5 < 0 || p3 < 0 {
			return fmt.Errorf("bwamem: invalid clip penalties %d,%d", p5, p3)
		}
		c.opts.PenClip5, c.opts.PenClip3 = p5, p3
		return nil
	}
}

// WithBandWidth sets the banded-extension band width (bwa mem -w,
// default 100).
func WithBandWidth(w int) Option {
	return func(c *config) error {
		if w <= 0 {
			return fmt.Errorf("bwamem: invalid band width %d", w)
		}
		c.opts.W = w
		return nil
	}
}

// WithZDrop sets the Z-drop extension cutoff (bwa mem -d, default 100).
func WithZDrop(z int) Option {
	return func(c *config) error {
		if z <= 0 {
			return fmt.Errorf("bwamem: invalid z-drop %d", z)
		}
		c.opts.Zdrop = z
		return nil
	}
}

// WithMinOutputScore sets the minimum alignment score to output (bwa mem
// -T, default 30).
func WithMinOutputScore(t int) Option {
	return func(c *config) error {
		if t < 0 {
			return fmt.Errorf("bwamem: invalid minimum output score %d", t)
		}
		c.opts.ScoreThreshold = t
		return nil
	}
}

// WithSecondaryOutput emits secondary alignments (bwa mem -a; off by
// default).
func WithSecondaryOutput(all bool) Option {
	return func(c *config) error {
		c.opts.OutputAll = all
		return nil
	}
}

// resolveConfig applies opts over the defaults.
func resolveConfig(opts []Option) (config, error) {
	c := config{mode: ModeOptimized, opts: core.DefaultOptions()}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return c, err
		}
	}
	return c, nil
}

// toSeqReads converts the public read type to the internal one (the two
// structs are field-identical, so this is a per-element type conversion).
func toSeqReads(reads []Read) []seq.Read {
	out := make([]seq.Read, len(reads))
	for i, r := range reads {
		out[i] = seq.Read(r)
	}
	return out
}

// fromSeqReads is the inverse of toSeqReads.
func fromSeqReads(reads []seq.Read) []Read {
	out := make([]Read, len(reads))
	for i, r := range reads {
		out[i] = Read(r)
	}
	return out
}
