package bwamem

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/seq"
)

// Index is an immutable FM-index plus packed reference over one set of
// contigs. Build one from FASTA, load a prebuilt .bwago file (Open,
// OpenMmap), or synthesize a demo genome (Synthetic); then hand it to New
// to construct Aligners — any number may share one Index.
//
// An Index loaded with OpenMmap aliases a read-only file mapping: Close
// must not be called while any Aligner built over it can still run (in a
// server, that means after the drain completes). For every other source
// Close is a no-op.
type Index struct {
	pi     *core.Prebuilt
	mapped *core.MappedIndex // non-nil only for OpenMmap loads
	info   IndexInfo
}

// IndexInfo describes how an Index came to be, for operational visibility
// (the server exports it on /v1/metrics).
type IndexInfo struct {
	// Source labels the load path: "v2-mmap", "v2-heap", "v1-heap",
	// "fasta-build", "synthetic-build".
	Source string
	// Mmap is true when the index aliases a shared read-only file mapping.
	Mmap bool
	// LoadTime is the wall time from opening the source to a usable index.
	LoadTime time.Duration
	// ResidentBytes is the index data footprint. For mmap loads it is the
	// mapped file size (file-backed, shared across processes). For heap
	// loads it is 0 here — the heap footprint depends on the aligner mode
	// — and is resolved from the aligner when NewServer exports it on
	// /v1/metrics.
	ResidentBytes int64
}

// Build parses a FASTA reference from r and constructs the index in
// memory (BWT, suffix array, occurrence tables). For references beyond a
// few megabases, build once with BuildFile or the bwamem CLI, Write the
// result, and Open it at startup instead.
func Build(fasta io.Reader) (*Index, error) {
	start := time.Now()
	ref, err := seq.ReferenceFromFasta(fasta)
	if err != nil {
		return nil, err
	}
	return buildFromRef(ref, "fasta-build", start)
}

// BuildFile is Build over a FASTA file path.
func BuildFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Build(f)
}

// Synthetic builds an index over a deterministic synthetic genome of bp
// bases with a mild repeat structure — for demos, benchmarks, and tests
// that should not depend on reference files. The same (bp, seed) always
// yields the same genome (one contig named "synthetic").
func Synthetic(bp int, seed int64) (*Index, error) {
	start := time.Now()
	ref, err := datasets.Genome(datasets.DefaultGenome("synthetic", bp, seed))
	if err != nil {
		return nil, err
	}
	return buildFromRef(ref, "synthetic-build", start)
}

func buildFromRef(ref *seq.Reference, source string, start time.Time) (*Index, error) {
	pi, err := core.BuildPrebuilt(ref)
	if err != nil {
		return nil, err
	}
	return &Index{pi: pi, info: IndexInfo{Source: source, LoadTime: time.Since(start)}}, nil
}

// Open loads a prebuilt .bwago index file (either format version) onto
// the heap.
func Open(path string) (*Index, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pi, err := core.ReadIndex(f)
	if err != nil {
		return nil, err
	}
	source := "v1-heap"
	if pi.Occ32 != nil {
		source = "v2-heap"
	}
	return &Index{pi: pi, info: IndexInfo{Source: source, LoadTime: time.Since(start)}}, nil
}

// OpenMmap maps a format-v2 .bwago index read-only instead of copying it
// to the heap: start-up is near-instant regardless of index size, and all
// processes mapping the same file share one page-cached copy. The caller
// must keep the Index (and so the mapping) alive until no Aligner built
// over it can run, then Close it. On platforms without mmap support this
// transparently falls back to a heap load.
func OpenMmap(path string) (*Index, error) {
	start := time.Now()
	mi, err := core.OpenIndexMmap(path)
	if err != nil {
		return nil, err
	}
	info := IndexInfo{Source: "v2-mmap", Mmap: true, LoadTime: time.Since(start),
		ResidentBytes: mi.MappedBytes()}
	if !mi.IsMapped() {
		// Platform heap fallback: report the load honestly so operators
		// don't account for a shared mapping that does not exist.
		info.Source, info.Mmap = "v2-heap", false
	}
	return &Index{pi: &mi.Prebuilt, mapped: mi, info: info}, nil
}

// OpenOrBuild resolves refPath the way the CLIs do: a path ending in
// .bwago is Opened directly; otherwise a sibling <refPath>.bwago is
// Opened when present, and the FASTA is built in memory when not. The
// returned Info().Source says which happened.
func OpenOrBuild(refPath string) (*Index, error) {
	idxPath := refPath
	if !strings.HasSuffix(idxPath, ".bwago") {
		idxPath += ".bwago"
	}
	if _, err := os.Stat(idxPath); err == nil {
		return Open(idxPath)
	} else if idxPath == refPath {
		// An explicit .bwago argument must not silently fall back to
		// parsing the index file as FASTA.
		return nil, err
	}
	return BuildFile(refPath)
}

// Write serializes the index in the current (v2) .bwago format:
// page-aligned, checksummed, with the occurrence tables persisted so Open
// skips their rebuild and OpenMmap can alias them directly.
func (x *Index) Write(w io.Writer) error { return x.pi.WriteIndexV2(w) }

// WriteLegacy serializes the index in the legacy v1 format, for
// interoperating with tools that predate v2. v1 files cannot be mmap'd.
func (x *Index) WriteLegacy(w io.Writer) error { return x.pi.WriteIndex(w) }

// Info reports how the index was loaded.
func (x *Index) Info() IndexInfo { return x.info }

// Contigs returns the reference contig names, in index order.
func (x *Index) Contigs() []string {
	names := make([]string, len(x.pi.Ref.Contigs))
	for i, c := range x.pi.Ref.Contigs {
		names[i] = c.Name
	}
	return names
}

// ReferenceLength returns the total reference length in bases.
func (x *Index) ReferenceLength() int { return x.pi.Ref.Lpac() }

// Close releases the file mapping of an OpenMmap index. It must not be
// called while any Aligner over this Index can still run. For non-mmap
// indexes it is a no-op.
func (x *Index) Close() error {
	if x.mapped != nil {
		return x.mapped.Close()
	}
	return nil
}

// SimulateReads samples n single-end reads of readLen bases uniformly
// from the index's reference under a mild error model (0.5% substitutions,
// 10% of reads carrying one short indel) — deterministic for a given seed.
// Read names encode the sampled locus, so demos and tests can score
// mapping accuracy. Intended for examples, benchmarks, and tests.
func (x *Index) SimulateReads(n, readLen int, seed int64) ([]Read, error) {
	if n <= 0 || readLen <= 0 {
		return nil, fmt.Errorf("bwamem: invalid simulation size n=%d readLen=%d", n, readLen)
	}
	reads, err := datasets.Simulate(x.pi.Ref, datasets.Profile{
		Name: "sim", NumReads: n, ReadLen: readLen,
		SubRate: 0.005, IndelRate: 0.10, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return fromSeqReads(reads), nil
}

// SimulatePairs samples n read pairs of readLen bases with a
// 3×readLen-mean insert-size distribution, deterministic for a given
// seed. Both ends of a pair carry the same name, as SAM requires.
// Intended for examples, benchmarks, and tests.
func (x *Index) SimulatePairs(n, readLen int, seed int64) (reads1, reads2 []Read, err error) {
	if n <= 0 || readLen <= 0 {
		return nil, nil, fmt.Errorf("bwamem: invalid simulation size n=%d readLen=%d", n, readLen)
	}
	prof := datasets.DefaultPairs(datasets.Profile{
		Name: "sim", NumReads: n, ReadLen: readLen,
		SubRate: 0.005, IndelRate: 0.10, Seed: seed,
	})
	r1, r2, err := datasets.SimulatePairs(x.pi.Ref, prof)
	if err != nil {
		return nil, nil, err
	}
	return fromSeqReads(r1), fromSeqReads(r2), nil
}
