// Package bwamem is the public Go SDK for the architecture-aware BWA-MEM
// reproduction: a stable facade over the internal index, pipeline, and
// server packages, for programs that embed the aligner instead of shelling
// out to the CLI or speaking HTTP.
//
// The package has three layers:
//
//   - Indexes. Build one from FASTA (Build, BuildFile), load a prebuilt
//     .bwago file onto the heap (Open) or as a shared read-only mapping
//     (OpenMmap), or synthesize a demo genome (Synthetic). An Index is
//     immutable once constructed and may back any number of Aligners.
//
//   - Aligners. New(idx, opts...) assembles an aligner over an index with
//     functional options (WithThreads, WithBatchSize, WithMode, scoring
//     knobs). Alignment is context-first and streaming: Align and
//     AlignPaired invoke an emit callback per read (or pair) as records
//     are formatted, from worker goroutines; AlignSAM and AlignPairedSAM
//     are the buffered conveniences. Cancelling the context drops
//     not-yet-started batches.
//
//   - Servers. NewServer wraps an Aligner's index in the long-lived
//     alignment service (resident index, admission control, cross-request
//     batch coalescing, result cache, streamed SAM responses) serving the
//     versioned /v1 HTTP API. pkg/bwaclient is the matching client.
//
// Output is byte-identical across every path — baseline and optimized
// modes, direct Align calls, and the HTTP server — which is the project's
// like-for-like correctness contract.
//
// The exported surface of this package and pkg/bwaclient is locked by a
// golden-file test (TestAPISurfaceGolden); changing it deliberately
// requires regenerating the golden file, which makes accidental breakage
// visible in review.
package bwamem
