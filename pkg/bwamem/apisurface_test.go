package bwamem

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/server"
)

var updateGolden = flag.Bool("update", false, "rewrite the API-surface golden file")

// TestAPISurfaceGolden locks the public contract: every exported
// identifier of pkg/bwamem and pkg/bwaclient (with full signatures and
// type definitions) and the server's /v1 route table must match
// testdata/api.golden. A deliberate API change regenerates the file with
//
//	go test ./pkg/bwamem -run APISurface -update
//
// so the diff shows up in review; an accidental one fails here first.
func TestAPISurfaceGolden(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("# Public API surface. Regenerate: go test ./pkg/bwamem -run APISurface -update\n")
	for _, pkg := range []struct{ name, dir string }{
		{"bwamem", "."},
		{"bwaclient", "../bwaclient"},
	} {
		decls, err := exportedDecls(pkg.dir)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "\n[package %s]\n", pkg.name)
		for _, d := range decls {
			buf.WriteString(d)
			buf.WriteByte('\n')
		}
	}
	buf.WriteString("\n[wire routes]\n")
	for _, r := range server.Routes() {
		buf.WriteString(r)
		buf.WriteByte('\n')
	}

	const goldenPath = "testdata/api.golden"
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("public API surface or /v1 route table changed.\n"+
			"If intentional, regenerate with: go test ./pkg/bwamem -run APISurface -update\n\n--- got ---\n%s\n--- want ---\n%s",
			buf.String(), want)
	}
}

// exportedDecls renders every exported top-level declaration of the
// package in dir, sorted: full signatures for funcs and methods, full
// definitions for types, names for consts and vars.
func exportedDecls(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	render := func(node any) string {
		var b bytes.Buffer
		if err := (&printer.Config{Mode: printer.RawFormat}).Fprint(&b, fset, node); err != nil {
			return fmt.Sprintf("<print error: %v>", err)
		}
		// Collapse whitespace so formatting churn can't move the golden.
		return strings.Join(strings.Fields(b.String()), " ")
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					recv := ""
					if d.Recv != nil && len(d.Recv.List) > 0 {
						rt := render(d.Recv.List[0].Type)
						if !ast.IsExported(strings.TrimPrefix(rt, "*")) {
							continue
						}
						recv = "(" + rt + ") "
					}
					sig := strings.TrimPrefix(render(d.Type), "func")
					out = append(out, "func "+recv+d.Name.Name+sig)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() {
								stripUnexportedFields(sp.Type)
								out = append(out, "type "+sp.Name.Name+" "+render(sp.Type))
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								if name.IsExported() {
									kind := "const"
									if d.Tok == token.VAR {
										kind = "var"
									}
									out = append(out, kind+" "+name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// stripUnexportedFields removes unexported struct fields from a parsed
// type in place, so the golden locks only the exported contract — a
// private field rename must not read as a public API change.
func stripUnexportedFields(t ast.Expr) {
	st, ok := t.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	var kept []*ast.Field
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 { // embedded field: keep when exported
			if ast.IsExported(strings.TrimPrefix(embeddedName(f.Type), "*")) {
				kept = append(kept, f)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			f.Names = names
			kept = append(kept, f)
		}
	}
	st.Fields.List = kept
}

// embeddedName resolves the type name of an embedded field.
func embeddedName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
