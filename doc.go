// Package repro is a from-scratch, pure-Go reproduction of
//
//	Vasimuddin Md, Sanchit Misra, Heng Li, Srinivas Aluru.
//	"Efficient Architecture-Aware Acceleration of BWA-MEM for Multicore
//	Systems", IPDPS 2019 (the system released as bwa-mem2).
//
// The library implements the complete BWA-MEM short-read aligner — FM-index
// seeding (SMEM), suffix-array lookup (SAL), seed chaining, banded
// Smith-Waterman extension (BSW) and SAM output — in both the original
// design and the paper's architecture-aware redesign, with byte-identical
// output between the two, plus the instrumentation (cache-hierarchy
// simulator, operation counters, stage clocks) needed to regenerate every
// table and figure of the paper's evaluation.
//
// Beyond the one-shot CLI (cmd/bwamem), the repository serves the same
// pipeline as a long-lived HTTP service (internal/server, cmd/bwaserve)
// that keeps the FM-index resident, coalesces concurrent requests into
// the batch-staged workflow, and serves duplicate read sequences from a
// sharded result cache (internal/rescache).
//
// The public surface is pkg/bwamem (Go SDK: indexes, aligners, options,
// embedded server) and pkg/bwaclient (client for the versioned /v1 wire
// API); cmd/ and examples/ are built on them. See README.md for the
// quickstart and wire contract, and ARCHITECTURE.md for a top-to-bottom
// tour of the request path (admission → rescache → coalescer → scheduler
// → pipeline stages → streamed SAM) plus the API versioning policy.
package repro
