package chain

import (
	"math/rand"
	"testing"
)

func ridAll(_, _ int) int { return 0 } // single-contig resolver

func TestBuildChainsCollinearSeeds(t *testing.T) {
	opt := DefaultOpts()
	// Three collinear seeds along one diagonal, then one far away.
	seeds := []Seed{
		{RBeg: 1000, QBeg: 0, Len: 25, Score: 25},
		{RBeg: 1030, QBeg: 30, Len: 25, Score: 25},
		{RBeg: 1060, QBeg: 60, Len: 25, Score: 25},
		{RBeg: 90000, QBeg: 10, Len: 25, Score: 25},
	}
	chains := Build(&opt, 1<<30, seeds, ridAll, 0)
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2: %+v", len(chains), chains)
	}
	var big *Chain
	for _, c := range chains {
		if len(c.Seeds) == 3 {
			big = c
		}
	}
	if big == nil {
		t.Fatalf("no 3-seed chain: %+v", chains)
	}
	if big.QBeg() != 0 || big.QEnd() != 85 {
		t.Fatalf("chain span %d..%d", big.QBeg(), big.QEnd())
	}
}

func TestBuildRejectsOffDiagonal(t *testing.T) {
	opt := DefaultOpts()
	// Second seed is collinear in query but wildly off in reference (beyond
	// the W-band collinearity test).
	seeds := []Seed{
		{RBeg: 1000, QBeg: 0, Len: 25},
		{RBeg: 1500, QBeg: 30, Len: 25}, // x=30, y=500 -> |x-y| > W
	}
	chains := Build(&opt, 1<<30, seeds, ridAll, 0)
	if len(chains) != 2 {
		t.Fatalf("off-diagonal seed must open a new chain: %+v", chains)
	}
}

func TestBuildRejectsBackwardReference(t *testing.T) {
	opt := DefaultOpts()
	seeds := []Seed{
		{RBeg: 1000, QBeg: 0, Len: 25},
		{RBeg: 900, QBeg: 30, Len: 25}, // y < 0
	}
	chains := Build(&opt, 1<<30, seeds, ridAll, 0)
	if len(chains) != 2 {
		t.Fatalf("backward seed must open a new chain: %+v", chains)
	}
}

func TestBuildContainedSeedAbsorbed(t *testing.T) {
	opt := DefaultOpts()
	seeds := []Seed{
		{RBeg: 1000, QBeg: 0, Len: 50},
		{RBeg: 1010, QBeg: 10, Len: 20}, // contained in the first
	}
	chains := Build(&opt, 1<<30, seeds, ridAll, 0)
	if len(chains) != 1 || len(chains[0].Seeds) != 1 {
		t.Fatalf("contained seed should be absorbed: %+v", chains)
	}
}

func TestBuildStrandSeparation(t *testing.T) {
	opt := DefaultOpts()
	lPac := 5000
	seeds := []Seed{
		{RBeg: 4950, QBeg: 0, Len: 20},  // forward strand
		{RBeg: 5015, QBeg: 25, Len: 20}, // reverse strand (>= lPac)
	}
	// ridOf rejects bridging spans like core's resolver would.
	ridOf := func(rb, re int) int {
		if rb < lPac && re > lPac {
			return -1
		}
		return 0
	}
	chains := Build(&opt, lPac, seeds, ridOf, 0)
	if len(chains) != 2 {
		t.Fatalf("strand-crossing chain must split: %+v", chains)
	}
}

func TestBuildSkipsBridgingSeeds(t *testing.T) {
	opt := DefaultOpts()
	seeds := []Seed{{RBeg: 100, QBeg: 0, Len: 30}}
	chains := Build(&opt, 1<<30, seeds, func(_, _ int) int { return -1 }, 0)
	if len(chains) != 0 {
		t.Fatalf("bridging seed must be dropped: %+v", chains)
	}
}

func TestWeightCountsNonOverlapping(t *testing.T) {
	c := &Chain{Seeds: []Seed{
		{RBeg: 0, QBeg: 0, Len: 30},
		{RBeg: 20, QBeg: 20, Len: 30}, // overlaps previous by 10
	}}
	if w := c.weight(); w != 50 {
		t.Fatalf("weight = %d, want 50", w)
	}
}

func TestFilterShadowedChains(t *testing.T) {
	opt := DefaultOpts()
	strong := &Chain{Seeds: []Seed{{RBeg: 1000, QBeg: 0, Len: 80}}, Pos: 1000}
	// Two weak chains covering the same query span with far lower weight:
	// BWA keeps the FIRST shadowed chain (Kept=1, for mapq accuracy) and
	// drops later ones.
	weak1 := &Chain{Seeds: []Seed{{RBeg: 70000, QBeg: 10, Len: 20}}, Pos: 70000}
	weak2 := &Chain{Seeds: []Seed{{RBeg: 90000, QBeg: 12, Len: 19}}, Pos: 90000}
	out := Filter(&opt, []*Chain{strong, weak1, weak2})
	if len(out) != 2 {
		t.Fatalf("want strong + first shadow, got %d chains", len(out))
	}
	if out[0] != strong || out[0].Kept != 3 {
		t.Fatalf("primary chain wrong: %+v", out[0])
	}
	if out[1] != weak1 || out[1].Kept != 1 {
		t.Fatalf("first shadow should be kept with Kept=1: %+v", out[1])
	}
}

func TestFilterKeepsNonOverlapping(t *testing.T) {
	opt := DefaultOpts()
	a := &Chain{Seeds: []Seed{{RBeg: 1000, QBeg: 0, Len: 40}}, Pos: 1000}
	b := &Chain{Seeds: []Seed{{RBeg: 50000, QBeg: 60, Len: 40}}, Pos: 50000}
	out := Filter(&opt, []*Chain{a, b})
	if len(out) != 2 {
		t.Fatalf("non-overlapping chains must both survive: %+v", out)
	}
}

func TestFilterKeepsFirstShadow(t *testing.T) {
	opt := DefaultOpts()
	// Two chains with close weights on the same span: the weaker one is kept
	// (Kept=1or2) so mapq can see the suboptimal hit.
	a := &Chain{Seeds: []Seed{{RBeg: 1000, QBeg: 0, Len: 80}}, Pos: 1000}
	b := &Chain{Seeds: []Seed{{RBeg: 70000, QBeg: 0, Len: 75}}, Pos: 70000}
	out := Filter(&opt, []*Chain{a, b})
	if len(out) != 2 {
		t.Fatalf("near-equal chain should be kept: %+v", out)
	}
}

func TestFilterMinChainWeight(t *testing.T) {
	opt := DefaultOpts()
	opt.MinChainWeight = 30
	c := &Chain{Seeds: []Seed{{RBeg: 10, QBeg: 0, Len: 20}}, Pos: 10}
	if out := Filter(&opt, []*Chain{c}); len(out) != 0 {
		t.Fatalf("light chain should be dropped: %+v", out)
	}
}

func TestFilterEmpty(t *testing.T) {
	opt := DefaultOpts()
	if out := Filter(&opt, nil); len(out) != 0 {
		t.Fatal("empty filter")
	}
}

func TestBuildManyRandomSeedsStaysSorted(t *testing.T) {
	opt := DefaultOpts()
	rng := rand.New(rand.NewSource(71))
	var seeds []Seed
	q := 0
	for i := 0; i < 500; i++ {
		q += rng.Intn(5)
		seeds = append(seeds, Seed{
			RBeg: rng.Intn(1 << 20), QBeg: q, Len: 19 + rng.Intn(30),
		})
	}
	chains := Build(&opt, 1<<30, seeds, ridAll, 0)
	total := 0
	for _, c := range chains {
		total += len(c.Seeds)
		// Seeds within a chain are query-ordered and reference-ordered.
		for i := 1; i < len(c.Seeds); i++ {
			if c.Seeds[i].QBeg < c.Seeds[i-1].QBeg {
				t.Fatal("chain seeds out of query order")
			}
		}
	}
	if total == 0 || total > len(seeds) {
		t.Fatalf("seed conservation: %d of %d", total, len(seeds))
	}
}
