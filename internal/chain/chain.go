// Package chain implements BWA-MEM's seed chaining stage (paper §2.3
// "CHAIN"): collinear seeds that are close on both the query and the
// reference are grouped into chains, chains are weighed by their seed
// coverage, and weak chains that are shadowed by stronger overlapping ones
// are dropped before the expensive extension stage.
//
// This is a faithful port of mem_chain / test_and_merge / mem_chain_flt from
// BWA 0.7.17, with the k-btree replaced by a sorted slice with binary search.
package chain

import "sort"

// Seed is one exact match placed on the doubled reference: query span
// [QBeg, QBeg+Len) matches reference span [RBeg, RBeg+Len).
type Seed struct {
	RBeg  int // position on the doubled (forward+reverse) reference
	QBeg  int
	Len   int
	Score int // initially Len
}

// Chain is a group of collinear seeds on one reference contig.
type Chain struct {
	Seeds   []Seed
	Rid     int // contig id
	Pos     int // anchor: RBeg of the first seed
	Weight  int
	Kept    int     // 0 dropped, 1 shadowed-kept, 2 partial-overlap, 3 primary
	First   int     // index of the first chain shadowed by this one, or -1
	FracRep float64 // fraction of the read covered by repetitive seeds
}

// QBeg returns the chain's query start (first seed's).
func (c *Chain) QBeg() int { return c.Seeds[0].QBeg }

// QEnd returns the chain's query end (last seed's).
func (c *Chain) QEnd() int {
	s := c.Seeds[len(c.Seeds)-1]
	return s.QBeg + s.Len
}

// Opts are the chaining parameters (BWA-MEM defaults via DefaultOpts).
type Opts struct {
	MaxChainGap    int     // max gap between chained seeds (10000)
	W              int     // band width used in the collinearity test (100)
	MaxOcc         int     // sample at most this many occurrences per seed interval (500)
	MaskLevel      float64 // chain overlap significance threshold (0.50)
	DropRatio      float64 // drop chains lighter than this fraction of the best overlap (0.50)
	MinChainWeight int     // minimum chain weight (0)
	MinSeedLen     int     // used by the drop rule (19)
}

// DefaultOpts returns BWA-MEM's defaults.
func DefaultOpts() Opts {
	return Opts{MaxChainGap: 10000, W: 100, MaxOcc: 500, MaskLevel: 0.50,
		DropRatio: 0.50, MinChainWeight: 0, MinSeedLen: 19}
}

// testAndMerge decides whether seed s extends chain c (BWA's
// test_and_merge). It returns true if the seed was merged or is contained;
// false requests a new chain.
func testAndMerge(opt *Opts, lPac int, c *Chain, s *Seed, seedRid int) bool {
	last := &c.Seeds[len(c.Seeds)-1]
	qend := last.QBeg + last.Len
	rend := last.RBeg + last.Len
	if seedRid != c.Rid {
		return false
	}
	if s.QBeg >= c.Seeds[0].QBeg && s.QBeg+s.Len <= qend &&
		s.RBeg >= c.Seeds[0].RBeg && s.RBeg+s.Len <= rend {
		return true // contained seed; do nothing
	}
	if (last.RBeg < lPac || c.Seeds[0].RBeg < lPac) && s.RBeg >= lPac {
		return false // different strands
	}
	x := s.QBeg - last.QBeg // non-negative: seeds arrive sorted by QBeg
	y := s.RBeg - last.RBeg
	if y >= 0 && x-y <= opt.W && y-x <= opt.W &&
		x-last.Len < opt.MaxChainGap && y-last.Len < opt.MaxChainGap {
		c.Seeds = append(c.Seeds, *s)
		return true
	}
	return false
}

// RidOf resolves which contig a reference span belongs to; it returns -1 if
// the span bridges contigs or the forward/reverse boundary. Implemented by
// the caller (core) against its Reference; injected to keep this package
// free of that dependency.
type RidOf func(rbeg, rend int) int

// Build groups placed seeds into chains. Seeds must arrive in the order
// produced by seeding (sorted by query start, then occurrence), exactly as
// BWA feeds its b-tree. lPac is the forward-strand length.
func Build(opt *Opts, lPac int, seeds []Seed, ridOf RidOf, fracRep float64) []*Chain {
	var chains []*Chain // kept sorted by Pos
	for i := range seeds {
		s := seeds[i]
		rid := ridOf(s.RBeg, s.RBeg+s.Len)
		if rid < 0 {
			continue // bridging contigs or the strand boundary
		}
		merged := false
		if len(chains) > 0 {
			// Find the closest chain at or before this seed's position.
			j := sort.Search(len(chains), func(k int) bool { return chains[k].Pos > s.RBeg })
			if j > 0 && testAndMerge(opt, lPac, chains[j-1], &s, rid) {
				merged = true
			}
		}
		if !merged {
			nc := &Chain{Seeds: []Seed{s}, Rid: rid, Pos: s.RBeg, First: -1, FracRep: fracRep}
			j := sort.Search(len(chains), func(k int) bool { return chains[k].Pos > nc.Pos })
			chains = append(chains, nil)
			copy(chains[j+1:], chains[j:])
			chains[j] = nc
		}
	}
	return chains
}

// weight computes a chain's weight: the smaller of its non-overlapping seed
// coverage on the query and on the reference (mem_chain_weight).
func (c *Chain) weight() int {
	cov := func(key func(*Seed) int) int {
		w, end := 0, 0
		for i := range c.Seeds {
			s := &c.Seeds[i]
			b := key(s)
			switch {
			case b >= end:
				w += s.Len
			case b+s.Len > end:
				w += b + s.Len - end
			}
			if b+s.Len > end {
				end = b + s.Len
			}
		}
		return w
	}
	qw := cov(func(s *Seed) int { return s.QBeg })
	rw := cov(func(s *Seed) int { return s.RBeg })
	if rw < qw {
		return rw
	}
	return qw
}

// Filter weighs chains and drops the ones shadowed by significantly
// overlapping heavier chains (mem_chain_flt). It returns the kept chains
// ordered by decreasing weight.
func Filter(opt *Opts, chains []*Chain) []*Chain {
	if len(chains) == 0 {
		return chains
	}
	kept := chains[:0]
	for _, c := range chains {
		c.First, c.Kept = -1, 0
		c.Weight = c.weight()
		if c.Weight >= opt.MinChainWeight {
			kept = append(kept, c)
		}
	}
	chains = kept
	if len(chains) == 0 {
		return chains
	}
	// Sort by decreasing weight (deterministic tie-break on position/query).
	sort.SliceStable(chains, func(a, b int) bool {
		ca, cb := chains[a], chains[b]
		if ca.Weight != cb.Weight {
			return ca.Weight > cb.Weight
		}
		if ca.Pos != cb.Pos {
			return ca.Pos < cb.Pos
		}
		return ca.QBeg() < cb.QBeg()
	})

	var keptIdx []int
	chains[0].Kept = 3
	keptIdx = append(keptIdx, 0)
	for i := 1; i < len(chains); i++ {
		largeOvlp := false
		k := 0
		for ; k < len(keptIdx); k++ {
			j := keptIdx[k]
			bMax := chains[j].QBeg()
			if chains[i].QBeg() > bMax {
				bMax = chains[i].QBeg()
			}
			eMin := chains[j].QEnd()
			if chains[i].QEnd() < eMin {
				eMin = chains[i].QEnd()
			}
			if eMin > bMax { // overlap on the query
				li := chains[i].QEnd() - chains[i].QBeg()
				lj := chains[j].QEnd() - chains[j].QBeg()
				minL := li
				if lj < minL {
					minL = lj
				}
				if float64(eMin-bMax) >= float64(minL)*opt.MaskLevel && minL < opt.MaxChainGap {
					largeOvlp = true
					if chains[j].First < 0 {
						chains[j].First = i
					}
					if float64(chains[i].Weight) < float64(chains[j].Weight)*opt.DropRatio &&
						chains[j].Weight-chains[i].Weight >= opt.MinSeedLen<<1 {
						break
					}
				}
			}
		}
		if k == len(keptIdx) {
			keptIdx = append(keptIdx, i)
			if largeOvlp {
				chains[i].Kept = 2
			} else {
				chains[i].Kept = 3
			}
		}
	}
	// Keep the first shadowed chain of each kept chain for mapq accuracy.
	for _, ki := range keptIdx {
		if f := chains[ki].First; f >= 0 {
			chains[f].Kept = 1
		}
	}
	out := chains[:0]
	for _, c := range chains {
		if c.Kept > 0 {
			out = append(out, c)
		}
	}
	return out
}
