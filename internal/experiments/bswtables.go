package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bsw"
	"repro/internal/datasets"
)

// collectJobs8 intercepts the BSW-stage input for the D3 profile and keeps
// the pairs for which 8-bit precision suffices, as §6.2.3 does ("we only
// used the sequence pairs for which 8-bit precision was sufficient").
func collectJobs8(e *Env) ([]bsw.Job, error) {
	reads, err := e.reads(datasets.D3)
	if err != nil {
		return nil, err
	}
	all := e.Opt.CollectBSWJobs(encodeAll(reads), nil)
	par := e.Opt.Opts.DefaultBSWParams()
	jobs := all[:0]
	for _, j := range all {
		if par.Fits8(&j) {
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// timeScalar runs all jobs through the scalar engine.
func timeScalar(p *bsw.Params, jobs []bsw.Job) (time.Duration, bsw.CellStats) {
	var buf bsw.ScalarBuf
	var st bsw.CellStats
	start := time.Now()
	for i := range jobs {
		bsw.ExtendScalar(p, jobs[i].Query, jobs[i].Target, jobs[i].W, jobs[i].H0, &buf, &st)
	}
	return time.Since(start), st
}

// timeBatch runs all jobs through a batched engine configuration.
func timeBatch(p *bsw.Params, jobs []bsw.Job, precision int, sort bool) (time.Duration, bsw.BatchStats) {
	var st bsw.BatchStats
	cfg := bsw.BatchConfig{Width8: 64, Width16: 32, Sort: sort,
		ForcePrecision: precision, Stats: &st}
	start := time.Now()
	bsw.RunBatch(p, jobs, cfg)
	return time.Since(start), st
}

// Table6 regenerates the BSW engine comparison: scalar vs 16-bit vs 8-bit,
// each without and with length sorting.
// Paper (48M pairs, AVX512): scalar 283 s; 16-bit 65.4/44.5 s; 8-bit
// 42.1/24.5 s -> best speedup 11.6x. Pure Go has no SIMD, so wall-clock
// parity is not expected here; the modeled vector time (lane steps / width
// plus measured per-row overheads) reproduces the paper's shape, and the
// sorting benefit is real and measured.
func Table6(w io.Writer, e *Env) error {
	header(w, "Table 6: BSW engines (8-bit-safe pairs, D3 profile)")
	jobs, err := collectJobs8(e)
	if err != nil {
		return err
	}
	par := e.Opt.Opts.DefaultBSWParams()
	fmt.Fprintf(w, " %d sequence pairs\n", len(jobs))

	scalarWall, scStats := timeScalar(&par, jobs)
	row(w, "scalar (original)", "wall %8.1f ms   cells %d", ms(scalarWall), scStats.ScalarCells)

	type variant struct {
		name      string
		precision int
		sort      bool
		width     int
		paperSec  float64
	}
	variants := []variant{
		{"16-bit w/o sort", 16, false, 32, 65.36},
		{"16-bit w/ sort", 16, true, 32, 44.46},
		{"8-bit  w/o sort", 8, false, 64, 42.09},
		{"8-bit  w/ sort", 8, true, 64, 24.46},
	}
	for _, v := range variants {
		wall, st := timeBatch(&par, jobs, v.precision, v.sort)
		// Modeled SIMD time: each (row, column) step is one vector
		// instruction over `width` lanes; scale the measured per-cell
		// scalar cost by the step count, add the measured non-cell
		// overheads (sorting, preprocessing, band adjustment).
		perCell := float64(scalarWall) / float64(scStats.ScalarCells)
		modeled := time.Duration(perCell*float64(st.VectorSteps)) +
			st.PreprocessNS + st.BandAdjINS + st.BandAdjIINS + st.SortNS
		row(w, v.name, "wall %8.1f ms   modeled-SIMD %7.1f ms (x%.1f vs scalar)   waste %4.1f%%   paper %5.1fs (x%.1f)",
			ms(wall), ms(modeled), ratio(float64(scalarWall), float64(modeled)),
			100*(1-ratio(float64(st.UsefulCells), float64(st.TotalCells))),
			v.paperSec, 283/v.paperSec)
	}
	fmt.Fprintln(w, " paper shape: sorting buys 1.5-1.7x at both precisions; 8-bit beats")
	fmt.Fprintln(w, " 16-bit; wall-clock Go lanes are serial (no SIMD ISA), modeled-SIMD")
	fmt.Fprintln(w, " time divides cell work by the lane width as AVX512 would.")
	return nil
}

// Table7 regenerates the instruction-count analysis of the 8-bit kernel.
// Paper: 1,385e9 -> 100e9 instructions (13.85x), IPC 3.14 -> 2.17.
func Table7(w io.Writer, e *Env) error {
	header(w, "Table 7: BSW instruction analysis (scalar vs 8-bit w/ sort)")
	jobs, err := collectJobs8(e)
	if err != nil {
		return err
	}
	par := e.Opt.Opts.DefaultBSWParams()
	scalarWall, scStats := timeScalar(&par, jobs)
	_, st := timeBatch(&par, jobs, 8, true)

	// Model: a scalar DP cell costs ~20 instructions (ksw_extend2's inner
	// loop); a vector step costs ~25 instructions regardless of lane count.
	scalarInstr := 20 * scStats.ScalarCells
	vecInstr := 25 * st.VectorSteps
	row(w, "scalar cells", "%d", scStats.ScalarCells)
	row(w, "vector steps (8-bit, sorted)", "%d", st.VectorSteps)
	row(w, "lane slots computed", "%d (useful %d = %.1f%%)",
		st.TotalCells, st.UsefulCells,
		100*ratio(float64(st.UsefulCells), float64(st.TotalCells)))
	row(w, "modeled instructions scalar", "%d", scalarInstr)
	row(w, "modeled instructions vector", "%d", vecInstr)
	row(w, "instruction reduction", "x%.1f   (paper: x13.85)",
		ratio(float64(scalarInstr), float64(vecInstr)))
	row(w, "scalar wall", "%.1f ms", ms(scalarWall))
	fmt.Fprintln(w, " paper shape: >10x fewer instructions; useful cells roughly half of")
	fmt.Fprintln(w, " computed cells (the wasteful-lane overhead of inter-task SIMD).")
	return nil
}

// Table8 regenerates the time breakdown of the optimized 8-bit BSW kernel.
// Paper: pre-processing 33%, band adjustment I 9%, cell computations 43%,
// band adjustment II 15%.
func Table8(w io.Writer, e *Env) error {
	header(w, "Table 8: 8-bit BSW (w/ sort) time breakdown")
	jobs, err := collectJobs8(e)
	if err != nil {
		return err
	}
	par := e.Opt.Opts.DefaultBSWParams()
	_, st := timeBatch(&par, jobs, 8, true)
	total := st.PreprocessNS + st.SortNS + st.BandAdjINS + st.CellsNS + st.BandAdjIINS
	pct := func(d time.Duration) float64 { return 100 * ratio(float64(d), float64(total)) }
	row(w, "pre-processing (sort + AoS->SoA)", "measured %5.1f%%   paper 33%%", pct(st.PreprocessNS+st.SortNS))
	row(w, "band adjustment I", "measured %5.1f%%   paper  9%%", pct(st.BandAdjINS))
	row(w, "cell computations", "measured %5.1f%%   paper 43%%", pct(st.CellsNS))
	row(w, "band adjustment II", "measured %5.1f%%   paper 15%%", pct(st.BandAdjIINS))
	row(w, "useful cells / computed cells", "%5.1f%%   paper ~50%%",
		100*ratio(float64(st.UsefulCells), float64(st.TotalCells)))
	return nil
}
