package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/datasets"
	"repro/internal/fmindex"
	"repro/internal/memsim"
	"repro/internal/pipeline"
	"repro/internal/sal"
	"repro/internal/trace"
)

// Table1 regenerates the paper's Table 1: single-thread run-time breakdown
// of the baseline (original BWA-MEM) workflow on the D1 and D4 profiles.
// Paper: SMEM+SAL+BSW account for 86.5% (D1) and 85.7% (D4).
func Table1(w io.Writer, e *Env) error {
	header(w, "Table 1: single-thread run-time profile of the baseline workflow")
	paper := map[string][]float64{ // paper percentages per stage
		"D1": {21.5, 18.0, 6.0, 4.7, 47.2, 2.5},
		"D4": {44.4, 15.5, 5.9, 4.9, 26.4, 2.9},
	}
	stages := []counters.Stage{counters.StageSMEM, counters.StageSAL,
		counters.StageChain, counters.StageBSWPre, counters.StageBSW, counters.StageSAMForm}
	for _, p := range []datasets.Profile{datasets.D1, datasets.D4} {
		reads, err := e.reads(p)
		if err != nil {
			return err
		}
		res := pipeline.Run(e.Base, reads, pipeline.Config{Threads: 1, Layout: pipeline.LayoutPerRead})
		fmt.Fprintf(w, " dataset %s (%d reads x %dbp), total %.1f ms\n",
			p.Name, len(reads), p.ReadLen, ms(res.Clock.Total()))
		for i, s := range stages {
			row(w, s.String(), "measured %5.1f%%   paper %5.1f%%",
				100*res.Clock.Fraction(s), paper[p.Name][i])
		}
		row(w, "Misc", "measured %5.1f%%", 100*res.Clock.Fraction(counters.StageMisc))
		kern := 100 * float64(res.Clock.Kernels()+res.Clock.T[counters.StageSAL]) / float64(res.Clock.Total())
		_ = kern
		row(w, "SMEM+SAL+BSW share", "measured %5.1f%%   paper ~86%%",
			100*float64(res.Clock.Kernels())/float64(res.Clock.Total()))
	}
	return nil
}

// smemConfig is one column of Table 4.
type smemConfig struct {
	name     string
	aln      *core.Aligner
	prefetch bool
}

// Table4 regenerates the SMEM kernel counter comparison: original (η=128)
// vs optimized without software prefetching vs optimized with it.
// Paper: instructions 17,117 -> 7,880 -> 8,160 M; LLC misses 23.9 -> 29.7
// -> 9.5 M; latency 24 -> 33 -> 18 cycles; time 4.20 -> 2.79 -> 2.10 s.
func Table4(w io.Writer, e *Env) error {
	header(w, "Table 4: SMEM kernel (D2-profile reads)")
	reads, err := e.reads(datasets.D2)
	if err != nil {
		return err
	}
	codes := encodeAll(reads)
	cfgs := []smemConfig{
		{"config A: original (eta=128, 2-bit)", e.Base, false},
		{"config B: eta=32 minus s/w prefetch", e.Opt, false},
		{"config C: eta=32 with s/w prefetch", e.Opt, true},
	}
	seedOpts := e.Base.Opts.Seed
	for _, c := range cfgs {
		tr := &trace.Tracer{Mem: memsim.New(e.Cfg.MemConfig), EnablePrefetch: c.prefetch}
		c.aln.Idx.SetTracer(tr)
		var buf fmindex.SMEMBuf
		var scratch []fmindex.BiInterval
		for _, q := range codes {
			scratch = c.aln.Idx.CollectIntervals(q, seedOpts, &buf, scratch)
		}
		c.aln.Idx.SetTracer(nil)
		// Untraced wall time.
		start := time.Now()
		for _, q := range codes {
			scratch = c.aln.Idx.CollectIntervals(q, seedOpts, &buf, scratch)
		}
		wall := time.Since(start)

		st := &tr.Mem.Stats
		// Modeled instruction count, mapping each layout to its natural ISA
		// realization (the paper's point in §4.4): the 2-bit bucket needs
		// scalar SWAR extraction, ~9 ops per word per base class (36/word
		// for all four); the byte-per-base bucket vectorizes to one
		// compare+movemask+popcount triple per class over the whole bucket
		// (~20 ops/visit), which pure Go cannot express but AVX2 executes.
		// Raw counters are printed alongside so the model is auditable.
		var instr int64
		if c.aln == e.Base {
			instr = 24*tr.OccCalls + 36*tr.OccWords + 32*tr.Extends
		} else {
			instr = 20*tr.OccCalls + 4*tr.OccWords + 32*tr.Extends + tr.Prefetches
		}
		fmt.Fprintf(w, " %s\n", c.name)
		row(w, "occ bucket visits", "%d", tr.OccCalls)
		row(w, "bucket words scanned", "%d", tr.OccWords)
		row(w, "BWT symbols covered", "%d", tr.OccBases)
		row(w, "extension ops", "%d", tr.Extends)
		row(w, "prefetch hints", "%d", tr.Prefetches)
		row(w, "modeled instructions", "%d", instr)
		row(w, "loads (simulated)", "%d", st.Loads)
		row(w, "LLC misses (simulated)", "%d", st.LLCMisses())
		row(w, "avg access latency (cycles)", "%.1f", st.AvgLatency())
		row(w, "wall time", "%.1f ms", ms(wall))
	}
	fmt.Fprintln(w, " paper shape: the eta=32 kernel halves instructions; dropping prefetch")
	fmt.Fprintln(w, " raises LLC misses above the original; prefetch cuts them ~3x.")
	return nil
}

// Table5 regenerates the SAL kernel comparison: compressed suffix array
// (factor 128) vs the flat suffix array.
// Paper: 5,190.7 -> 25.8 instructions per lookup (~200x), LLC misses 452.3
// -> 5.0 M, time 64.47 s -> 0.35 s (183x).
func Table5(w io.Writer, e *Env) error {
	header(w, "Table 5: SAL kernel (rows from D2-profile seeding)")
	reads, err := e.reads(datasets.D2)
	if err != nil {
		return err
	}
	codes := encodeAll(reads)
	// Intercept the SAL input: the SA rows the seeding stage samples.
	var rows []int
	var buf fmindex.SMEMBuf
	var ivs []fmindex.BiInterval
	maxOcc := e.Opt.Opts.MaxOcc
	for _, q := range codes {
		ivs = e.Opt.Idx.CollectIntervals(q, e.Opt.Opts.Seed, &buf, ivs)
		for _, p := range ivs {
			step := 1
			if p.S > maxOcc {
				step = p.S / maxOcc
			}
			for k, cnt := 0, 0; k < p.S && cnt < maxOcc; k, cnt = k+step, cnt+1 {
				rows = append(rows, p.K+k)
			}
		}
	}
	fmt.Fprintf(w, " %d SA offsets\n", len(rows))

	run := func(name string, lk sal.Lookuper, setTracer func(*trace.Tracer)) {
		tr := &trace.Tracer{Mem: memsim.New(e.Cfg.MemConfig)}
		setTracer(tr)
		for _, r := range rows {
			lk.Lookup(r)
		}
		setTracer(nil)
		start := time.Now()
		for _, r := range rows {
			lk.Lookup(r)
		}
		wall := time.Since(start)
		st := &tr.Mem.Stats
		// Each LF step costs an occurrence computation (~40 ops); a lookup
		// itself is ~25 ops of addressing and bookkeeping.
		instr := 40*tr.LFSteps + 25*tr.SALookups
		fmt.Fprintf(w, " %s (memory footprint %d KB)\n", name, lk.MemFootprint()/1024)
		row(w, "LF-mapping steps", "%d", tr.LFSteps)
		row(w, "modeled instructions", "%d", instr)
		row(w, "modeled instr / SA offset", "%.1f", ratio(float64(instr), float64(len(rows))))
		row(w, "loads (simulated)", "%d", st.Loads)
		row(w, "LLC misses (simulated)", "%d", st.LLCMisses())
		row(w, "avg access latency (cycles)", "%.1f", st.AvgLatency())
		row(w, "wall time", "%.2f ms", ms(wall))
	}

	comp, err := sal.NewCompressed(fullSAOf(e), sal.DefaultCompression, e.Base.Idx)
	if err != nil {
		return err
	}
	run("original (compressed, factor 128)", comp, func(tr *trace.Tracer) {
		comp.SetTracer(tr)
		e.Base.Idx.SetTracer(tr)
	})
	flat := sal.NewFlat(fullSAOf(e))
	run("optimized (flat suffix array)", flat, func(tr *trace.Tracer) {
		flat.SetTracer(tr)
	})
	fmt.Fprintln(w, " paper shape: ~200x fewer instructions per lookup, ~100x fewer LLC")
	fmt.Fprintln(w, " misses, two orders of magnitude faster despite a 128x larger table.")
	return nil
}

// fullSAOf rebuilds the full suffix array of the environment's doubled
// reference (cached after the first call).
var cachedSA struct {
	ref  *Env
	full []int32
}

func fullSAOf(e *Env) []int32 {
	if cachedSA.ref == e {
		return cachedSA.full
	}
	_, full, err := fmindex.Build(e.Ref.Doubled(), fmindex.Baseline)
	if err != nil {
		panic(err)
	}
	cachedSA.ref = e
	cachedSA.full = full
	return full
}
