package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bsw"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/sal"
	"repro/internal/trace"
)

// AblationSACompression sweeps the suffix-array compression factor,
// quantifying the §4.5 design point: factor 1 (flat) is the paper's choice;
// factor 128 is original BWA-MEM.
func AblationSACompression(w io.Writer, e *Env) error {
	header(w, "Ablation: suffix-array compression factor (lookup cost vs memory)")
	full := fullSAOf(e)
	rows := make([]int, 0, 200000)
	for r := 0; r < len(full) && len(rows) < 200000; r += 7 {
		rows = append(rows, (r*2654435761)%len(full))
	}
	for _, intv := range []int{1, 8, 32, 128, 512} {
		var lk sal.Lookuper
		var setTr func(*trace.Tracer)
		if intv == 1 {
			f := sal.NewFlat(full)
			lk, setTr = f, func(tr *trace.Tracer) { f.SetTracer(tr) }
		} else {
			c, err := sal.NewCompressed(full, intv, e.Base.Idx)
			if err != nil {
				return err
			}
			lk, setTr = c, func(tr *trace.Tracer) {
				c.SetTracer(tr)
				e.Base.Idx.SetTracer(tr)
			}
		}
		tr := &trace.Tracer{}
		setTr(tr)
		start := time.Now()
		for _, r := range rows {
			lk.Lookup(r)
		}
		wall := time.Since(start)
		setTr(nil)
		row(w, fmt.Sprintf("factor %4d", intv),
			"%8.2f ms   %6.1f LF steps/lookup   footprint %6d KB",
			ms(wall), ratio(float64(tr.LFSteps), float64(len(rows))), lk.MemFootprint()/1024)
	}
	return nil
}

// AblationBSWWidth sweeps the lane width of the batched 8-bit kernel,
// isolating the cost of lane divergence as width grows (the trade the
// paper's sorting mitigates).
func AblationBSWWidth(w io.Writer, e *Env) error {
	header(w, "Ablation: batched BSW lane width (8-bit, sorted)")
	jobs, err := collectJobs8(e)
	if err != nil {
		return err
	}
	par := e.Opt.Opts.DefaultBSWParams()
	for _, width := range []int{4, 8, 16, 32, 64, 128} {
		var st bsw.BatchStats
		cfg := bsw.BatchConfig{Width8: width, Width16: 32, Sort: true,
			ForcePrecision: 8, Stats: &st}
		start := time.Now()
		bsw.RunBatch(&par, jobs, cfg)
		wall := time.Since(start)
		row(w, fmt.Sprintf("width %3d", width),
			"%8.1f ms   waste %5.1f%%   vector steps %10d   modeled x%.1f",
			ms(wall),
			100*(1-ratio(float64(st.UsefulCells), float64(st.TotalCells))),
			st.VectorSteps,
			ratio(float64(st.UsefulCells), float64(st.VectorSteps)))
	}
	fmt.Fprintln(w, " wider lanes amortize more in real SIMD but waste more slots;")
	fmt.Fprintln(w, " modeled speedup = useful cells per vector step.")
	return nil
}

// AblationBatchSize sweeps the batch size of the reorganized pipeline
// (Figure 2): too small starves the batched kernels, too large inflates
// per-batch metadata (the paper's §5.3.2 memory constraint).
func AblationBatchSize(w io.Writer, e *Env) error {
	header(w, "Ablation: pipeline batch size (optimized layout, 1 thread)")
	reads, err := e.reads(datasets.D4)
	if err != nil {
		return err
	}
	for _, bs := range []int{16, 64, 256, 1024, 4096} {
		res := pipeline.Run(e.Opt, reads, pipeline.Config{
			Threads: 1, BatchSize: bs, Layout: pipeline.LayoutBatched})
		row(w, fmt.Sprintf("batch %4d", bs), "%8.1f ms", ms(res.Wall))
	}
	return nil
}

// AblationBSWSort isolates the radix-sorting benefit on the real job mix
// (Table 6 shows it on the 8-bit subset; this runs the full mix).
func AblationBSWSort(w io.Writer, e *Env) error {
	header(w, "Ablation: BSW job sorting on the full job mix")
	reads, err := e.reads(datasets.D3)
	if err != nil {
		return err
	}
	jobs := e.Opt.CollectBSWJobs(encodeAll(reads), nil)
	par := e.Opt.Opts.DefaultBSWParams()
	for _, srt := range []bool{false, true} {
		var st bsw.BatchStats
		cfg := bsw.BatchConfig{Width8: 64, Width16: 32, Sort: srt, Stats: &st}
		start := time.Now()
		bsw.RunBatch(&par, jobs, cfg)
		wall := time.Since(start)
		name := "unsorted"
		if srt {
			name = "sorted"
		}
		row(w, name, "%8.1f ms   total lane slots %12d   waste %5.1f%%",
			ms(wall), st.TotalCells,
			100*(1-ratio(float64(st.UsefulCells), float64(st.TotalCells))))
	}
	return nil
}
