// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.4 Table 1, §6.2 Tables 4-8, §6.3 Figures 4-5) on the
// synthetic workloads of internal/datasets, printing paper-reported values
// next to the measured ones so the shape of each result can be compared
// directly. See EXPERIMENTS.md for the recorded outcomes and the
// substitutions DESIGN.md documents.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/memsim"
	"repro/internal/seq"
)

// Config sizes the experiments. The zero value is usable: Default() scales
// everything to finish in seconds on a laptop while keeping every ratio the
// paper depends on (index ≫ LLC for the memory tables, thousands of reads
// for stable timing).
type Config struct {
	GenomeLen  int     // synthetic reference length (forward strand)
	Scale      float64 // read-count multiplier over the D1-D5 profile sizes
	MaxThreads int     // top of the Figure 4 thread sweep; 0 = NumCPU
	MemConfig  memsim.Config
	Verbose    bool
}

// Default returns the standard experiment configuration.
func Default() Config {
	return Config{
		GenomeLen:  2_000_000,
		Scale:      1.0,
		MaxThreads: runtime.NumCPU(),
		MemConfig:  memsim.Scaled(),
	}
}

// Env carries the shared setup (reference and the aligner variants) so
// several experiments can reuse one index build.
type Env struct {
	Cfg  Config
	Ref  *seq.Reference
	Base *core.Aligner // ModeBaseline: η=128 index, compressed SA, per-read scalar BSW
	Opt  *core.Aligner // ModeOptimized: η=32 index, flat SA, batch-staged pipeline
	// OptLane is ModeOptimized with the paper-faithful inter-task lane BSW
	// kernels in the pipeline (extend-all + replay). Serial lanes make it
	// slower in pure Go; Figure 5 reports it alongside the production
	// configuration.
	OptLane *core.Aligner
}

// NewEnv builds the reference and the aligner variants from one prebuilt
// index per mode.
func NewEnv(cfg Config) (*Env, error) {
	if cfg.GenomeLen <= 0 {
		cfg = Default()
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = runtime.NumCPU()
	}
	ref, err := datasets.Genome(datasets.DefaultGenome("chr1", cfg.GenomeLen, 42))
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	base, err := core.NewAligner(ref, core.ModeBaseline, opts)
	if err != nil {
		return nil, err
	}
	pi, err := core.BuildPrebuilt(ref)
	if err != nil {
		return nil, err
	}
	opt, err := core.NewAlignerFrom(pi, core.ModeOptimized, opts)
	if err != nil {
		return nil, err
	}
	laneOpts := opts
	laneOpts.LaneBSW = true
	optLane, err := core.NewAlignerFrom(pi, core.ModeOptimized, laneOpts)
	if err != nil {
		return nil, err
	}
	return &Env{Cfg: cfg, Ref: ref, Base: base, Opt: opt, OptLane: optLane}, nil
}

// reads simulates a profile against the environment's reference.
func (e *Env) reads(p datasets.Profile) ([]seq.Read, error) {
	return datasets.Simulate(e.Ref, p.Scaled(e.Cfg.Scale))
}

// encodeAll converts reads to numeric codes.
func encodeAll(reads []seq.Read) [][]byte {
	out := make([][]byte, len(reads))
	for i := range reads {
		out[i] = seq.Encode(reads[i].Seq)
	}
	return out
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// row prints an aligned label/value line.
func row(w io.Writer, label string, format string, args ...any) {
	fmt.Fprintf(w, "  %-34s "+format+"\n", append([]any{label}, args...)...)
}

// ms renders a duration in milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ratio guards against division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
