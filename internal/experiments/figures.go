package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/seq"
)

// runOnce executes the pipeline of one aligner with the layout matching its
// mode.
func runOnce(a *core.Aligner, reads []seq.Read, threads int) *pipeline.Result {
	return pipeline.Run(a, reads, pipeline.Config{Threads: threads})
}

// Figure4 regenerates the multicore scaling comparison: per-kernel and
// whole-application throughput of both implementations as the thread count
// grows, on the D1 and D5 profiles. The paper sweeps 1..28 cores of a
// Skylake socket; this sweep covers 1..MaxThreads of the host.
func Figure4(w io.Writer, e *Env) error {
	header(w, "Figure 4: thread scaling (both implementations, D1 & D5)")
	for _, p := range []datasets.Profile{datasets.D1, datasets.D5} {
		reads, err := e.reads(p)
		if err != nil {
			return err
		}
		for _, pair := range []struct {
			name string
			aln  *core.Aligner
		}{{"orig", e.Base}, {"opt", e.Opt}} {
			base := runOnce(pair.aln, reads, 1)
			fmt.Fprintf(w, " %s %-5s threads=1: total %8.1f ms  SMEM %7.1f  SAL %6.1f  BSW %8.1f\n",
				p.Name, pair.name, ms(base.Wall),
				ms(base.Clock.T[counters.StageSMEM]),
				ms(base.Clock.T[counters.StageSAL]),
				ms(base.Clock.T[counters.StageBSWPre]+base.Clock.T[counters.StageBSW]))
			for t := 2; t <= e.Cfg.MaxThreads; t++ {
				res := runOnce(pair.aln, reads, t)
				fmt.Fprintf(w, " %s %-5s threads=%d: total %8.1f ms  speedup x%.2f (ideal x%d)\n",
					p.Name, pair.name, t, ms(res.Wall),
					ratio(float64(base.Wall), float64(res.Wall)), t)
			}
		}
	}
	fmt.Fprintln(w, " paper shape: kernels scale near-linearly; the whole application")
	fmt.Fprintln(w, " trails ideal because the unoptimized Misc stages saturate first.")
	return nil
}

// Figure5 regenerates the end-to-end comparison across all five dataset
// profiles, single-threaded and with all threads: per-stage stacked times
// and the optimized-over-baseline speedup.
// Paper (SKX): single-thread speedups 2.6-3.5x; single-socket 1.7-2.4x.
func Figure5(w io.Writer, e *Env) error {
	header(w, "Figure 5: end-to-end compute time, baseline vs optimized")
	for _, threads := range []int{1, e.Cfg.MaxThreads} {
		fmt.Fprintf(w, " --- threads = %d ---\n", threads)
		for _, p := range datasets.Profiles() {
			reads, err := e.reads(p)
			if err != nil {
				return err
			}
			rb := runOnce(e.Base, reads, threads)
			ro := runOnce(e.Opt, reads, threads)
			rl := runOnce(e.OptLane, reads, threads)
			if string(rb.SAM) != string(ro.SAM) || string(rb.SAM) != string(rl.SAM) {
				return fmt.Errorf("figure5: %s output differs between modes", p.Name)
			}
			stack := func(r *pipeline.Result) string {
				return fmt.Sprintf("SMEM %7.1f  SAL %6.1f  BSW %8.1f  misc %7.1f",
					ms(r.Clock.T[counters.StageSMEM]),
					ms(r.Clock.T[counters.StageSAL]),
					ms(r.Clock.T[counters.StageBSWPre]+r.Clock.T[counters.StageBSW]),
					ms(r.Clock.T[counters.StageChain]+r.Clock.T[counters.StageSAMForm]+r.Clock.T[counters.StageMisc]))
			}
			fmt.Fprintf(w, " %s (%5d x %3dbp) orig    : total %8.1f ms  %s\n",
				p.Name, len(reads), p.ReadLen, ms(rb.Wall), stack(rb))
			fmt.Fprintf(w, " %s               opt     : total %8.1f ms  %s  speedup x%.2f\n",
				p.Name, ms(ro.Wall), stack(ro),
				ratio(float64(rb.Wall), float64(ro.Wall)))
			fmt.Fprintf(w, " %s               opt-lane: total %8.1f ms  (paper's lane kernel, serial lanes)  speedup x%.2f\n",
				p.Name, ms(rl.Wall), ratio(float64(rb.Wall), float64(rl.Wall)))
		}
	}
	fmt.Fprintln(w, " stage times are summed across workers; wall is elapsed time.")
	fmt.Fprintln(w, " paper shape: SAL all but vanishes; SMEM stays comparable; all three")
	fmt.Fprintln(w, " variants emit identical SAM. 'opt' is the production configuration on")
	fmt.Fprintln(w, " a SIMD-less target; 'opt-lane' runs the paper's inter-task kernel,")
	fmt.Fprintln(w, " whose vector payoff needs real SIMD (see Table 6 modeled-SIMD times).")
	return nil
}
