package experiments

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/memsim"
)

// tinyEnv builds a small but non-trivial environment: the genome still
// exceeds the scaled LLC so the memory-counter tables behave qualitatively
// like the full runs.
func tinyEnv(t testing.TB) *Env {
	t.Helper()
	cfg := Config{
		GenomeLen:  400_000,
		Scale:      0.02,
		MaxThreads: 2,
		MemConfig:  memsim.Scaled(),
	}
	e, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAllExperimentsRun(t *testing.T) {
	e := tinyEnv(t)
	for _, exp := range []struct {
		name string
		fn   func(*bytes.Buffer) error
	}{
		{"table1", func(b *bytes.Buffer) error { return Table1(b, e) }},
		{"table4", func(b *bytes.Buffer) error { return Table4(b, e) }},
		{"table5", func(b *bytes.Buffer) error { return Table5(b, e) }},
		{"table6", func(b *bytes.Buffer) error { return Table6(b, e) }},
		{"table7", func(b *bytes.Buffer) error { return Table7(b, e) }},
		{"table8", func(b *bytes.Buffer) error { return Table8(b, e) }},
		{"figure4", func(b *bytes.Buffer) error { return Figure4(b, e) }},
		{"figure5", func(b *bytes.Buffer) error { return Figure5(b, e) }},
		{"ablation-sa", func(b *bytes.Buffer) error { return AblationSACompression(b, e) }},
		{"ablation-width", func(b *bytes.Buffer) error { return AblationBSWWidth(b, e) }},
		{"ablation-batch", func(b *bytes.Buffer) error { return AblationBatchSize(b, e) }},
		{"ablation-sort", func(b *bytes.Buffer) error { return AblationBSWSort(b, e) }},
	} {
		var buf bytes.Buffer
		if err := exp.fn(&buf); err != nil {
			t.Fatalf("%s: %v", exp.name, err)
		}
		if buf.Len() < 100 {
			t.Fatalf("%s: suspiciously short output:\n%s", exp.name, buf.String())
		}
		t.Logf("%s:\n%s", exp.name, buf.String())
	}
}

// extract pulls the first number following a label from experiment output.
func extract(t *testing.T, out, label string) float64 {
	t.Helper()
	re := regexp.MustCompile(regexp.QuoteMeta(label) + `\s+([-\d.]+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("label %q not found in output:\n%s", label, out)
	}
	v, err := strconv.ParseFloat(strings.TrimRight(m[1], "."), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", m[1], err)
	}
	return v
}

// TestTable5ShapeHolds asserts the headline SAL result survives the scaled
// run: the flat lookup does orders of magnitude less work per lookup.
func TestTable5ShapeHolds(t *testing.T) {
	e := tinyEnv(t)
	var buf bytes.Buffer
	if err := Table5(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	parts := strings.Split(out, "optimized (flat suffix array)")
	if len(parts) != 2 {
		t.Fatalf("unexpected output:\n%s", out)
	}
	instrOrig := extract(t, parts[0], "modeled instr / SA offset")
	instrOpt := extract(t, parts[1], "modeled instr / SA offset")
	if instrOrig < 50*instrOpt {
		t.Fatalf("SAL instruction gap collapsed: %.1f vs %.1f", instrOrig, instrOpt)
	}
}

// TestTable4ShapeHolds asserts the SMEM memory-behaviour shape: the
// optimized table without prefetch misses more than the original; prefetch
// brings misses well below both.
func TestTable4ShapeHolds(t *testing.T) {
	e := tinyEnv(t)
	var buf bytes.Buffer
	if err := Table4(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	secs := strings.Split(out, "config ")
	if len(secs) != 4 {
		t.Fatalf("unexpected sections:\n%s", out)
	}
	missOrig := extract(t, secs[1], "LLC misses (simulated)")
	missNoPf := extract(t, secs[2], "LLC misses (simulated)")
	missPf := extract(t, secs[3], "LLC misses (simulated)")
	if !(missPf < missNoPf) {
		t.Fatalf("prefetch did not cut misses: %v -> %v", missNoPf, missPf)
	}
	if !(missNoPf > missOrig) {
		t.Fatalf("eta=32 without prefetch should miss more than eta=128: %v vs %v", missNoPf, missOrig)
	}
	instrOrig := extract(t, secs[1], "modeled instructions")
	instrOpt := extract(t, secs[2], "modeled instructions")
	if instrOpt >= instrOrig/1.5 {
		t.Fatalf("optimized kernel should model substantially fewer instructions: %v vs %v", instrOrig, instrOpt)
	}
}

// TestTable6SortBenefit asserts the sorting gain is visible in lane-slot
// accounting at tiny scale.
func TestTable6SortBenefit(t *testing.T) {
	e := tinyEnv(t)
	var buf bytes.Buffer
	if err := AblationBSWSort(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	secs := strings.SplitAfter(out, "unsorted")
	if len(secs) != 2 {
		t.Fatalf("output:\n%s", out)
	}
	wasteUnsorted := extract(t, out[strings.Index(out, "unsorted"):], "waste")
	wasteSorted := extract(t, out[strings.Index(out, " sorted"):], "waste")
	if wasteSorted >= wasteUnsorted {
		t.Fatalf("sorting should reduce waste: %.1f%% -> %.1f%%", wasteUnsorted, wasteSorted)
	}
}
