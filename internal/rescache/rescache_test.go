package rescache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func key(fp uint64, s string) []byte { return AppendKey(nil, fp, []byte(s)) }

func regsOf(score int) []core.Region {
	return []core.Region{{Score: score, Secondary: -1}}
}

func TestMissFulfillHit(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Shards: 4})
	k := key(1, "ACGT")

	regs, fl, st := c.Lookup(k, nil)
	if st != Leading || fl == nil || regs != nil {
		t.Fatalf("first lookup: status %v, flight %v", st, fl)
	}
	want := regsOf(42)
	fl.Fulfill(want)

	got, _, st := c.Lookup(k, nil)
	if st != Hit {
		t.Fatalf("second lookup: status %v, want Hit", st)
	}
	if len(got) != 1 || got[0].Score != 42 {
		t.Fatalf("hit returned %+v", got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes <= 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestEmptyRegionsAreCacheable(t *testing.T) {
	// An unmapped read legitimately has zero regions; the cache must treat
	// that as a valid result, not a miss.
	c := New(Config{Capacity: 1 << 20})
	k := key(1, "NNNN")
	_, fl, _ := c.Lookup(k, nil)
	fl.Fulfill(nil)
	regs, _, st := c.Lookup(k, nil)
	if st != Hit || regs != nil {
		t.Fatalf("status %v regs %v, want Hit with nil regs", st, regs)
	}
}

func TestFingerprintSeparatesKeys(t *testing.T) {
	c := New(Config{Capacity: 1 << 20})
	_, fl, _ := c.Lookup(key(1, "ACGT"), nil)
	fl.Fulfill(regsOf(1))
	if _, _, st := c.Lookup(key(2, "ACGT"), nil); st != Leading {
		t.Fatalf("different fingerprint resolved to %v, want Leading", st)
	}
}

func TestSingleFlightJoinAndFulfill(t *testing.T) {
	c := New(Config{Capacity: 1 << 20})
	k := key(1, "ACGT")
	_, leader, st := c.Lookup(k, nil)
	if st != Leading {
		t.Fatal("expected Leading")
	}

	var got atomic.Int64
	for i := 0; i < 3; i++ {
		_, _, st := c.Lookup(k, func(regs []core.Region, ok bool) {
			if !ok || len(regs) != 1 || regs[0].Score != 7 {
				t.Errorf("waiter got regs=%v ok=%v", regs, ok)
			}
			got.Add(1)
		})
		if st != Joined {
			t.Fatalf("duplicate lookup %d: status %v, want Joined", i, st)
		}
	}
	leader.Fulfill(regsOf(7))
	if got.Load() != 3 {
		t.Fatalf("%d waiters notified, want 3", got.Load())
	}
	if s := c.Stats(); s.Coalesced != 3 {
		t.Fatalf("coalesced %d, want 3", s.Coalesced)
	}
}

func TestAbortNotifiesWaitersAndClearsEntry(t *testing.T) {
	c := New(Config{Capacity: 1 << 20})
	k := key(1, "ACGT")
	_, leader, _ := c.Lookup(k, nil)

	aborted := false
	c.Lookup(k, func(regs []core.Region, ok bool) {
		if ok || regs != nil {
			t.Errorf("abort delivered regs=%v ok=%v", regs, ok)
		}
		aborted = true
	})
	leader.Abort()
	if !aborted {
		t.Fatal("waiter not notified on abort")
	}
	// The key is free again: the next lookup leads a fresh flight.
	if _, _, st := c.Lookup(k, nil); st != Leading {
		t.Fatalf("post-abort lookup: status %v, want Leading", st)
	}
	// Fulfill after Abort must not resurrect the old flight's entry.
	leader.Fulfill(regsOf(1))
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("entries %d after fulfill-after-abort, want 0", s.Entries)
	}
}

func TestDoubleResolveIsIdempotent(t *testing.T) {
	c := New(Config{Capacity: 1 << 20})
	_, fl, _ := c.Lookup(key(1, "A"), nil)
	fl.Fulfill(regsOf(1))
	fl.Fulfill(regsOf(2)) // ignored
	fl.Abort()            // ignored
	regs, _, st := c.Lookup(key(1, "A"), nil)
	if st != Hit || regs[0].Score != 1 {
		t.Fatalf("status %v regs %v, want original fulfill to stick", st, regs)
	}
}

func TestLRUEvictionUnderPressure(t *testing.T) {
	// One shard so eviction order is globally observable; capacity sized
	// for only a handful of entries.
	c := New(Config{Capacity: 1000, Shards: 1})
	fill := func(i int) {
		_, fl, st := c.Lookup(key(1, fmt.Sprintf("seq-%04d", i)), nil)
		if st != Leading {
			t.Fatalf("fill %d: status %v", i, st)
		}
		fl.Fulfill(regsOf(i))
	}
	for i := 0; i < 50; i++ {
		fill(i)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("no evictions despite 50 entries into a 1000-byte cache")
	}
	if s.Bytes > s.Capacity {
		t.Fatalf("resident %d bytes exceeds capacity %d", s.Bytes, s.Capacity)
	}
	if s.Entries != s.Misses-s.Evictions {
		t.Fatalf("entries %d != misses %d - evictions %d", s.Entries, s.Misses, s.Evictions)
	}
	// The most recent insert survives; the oldest is gone.
	if _, _, st := c.Lookup(key(1, "seq-0049"), nil); st != Hit {
		t.Fatalf("newest entry evicted (status %v)", st)
	}
	if _, fl, st := c.Lookup(key(1, "seq-0000"), nil); st != Leading {
		t.Fatalf("oldest entry survived (status %v)", st)
	} else {
		fl.Abort()
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	// Three entries fit; touching the oldest must make the middle one the
	// eviction victim.
	c := New(Config{Capacity: 3 * (8 + 5 + regionBytes + entryOverhead), Shards: 1})
	for i := 0; i < 3; i++ {
		_, fl, _ := c.Lookup(key(1, fmt.Sprintf("key-%d", i)), nil)
		fl.Fulfill(regsOf(i))
	}
	if _, _, st := c.Lookup(key(1, "key-0"), nil); st != Hit {
		t.Fatal("key-0 missing before pressure")
	}
	_, fl, _ := c.Lookup(key(1, "key-3"), nil)
	fl.Fulfill(regsOf(3))
	if _, _, st := c.Lookup(key(1, "key-0"), nil); st != Hit {
		t.Fatal("recently touched key-0 was evicted")
	}
	if _, fl, st := c.Lookup(key(1, "key-1"), nil); st != Leading {
		t.Fatalf("LRU victim key-1 still resident (status %v)", st)
	} else {
		fl.Abort()
	}
}

func TestPendingEntriesAreNotEvicted(t *testing.T) {
	c := New(Config{Capacity: 500, Shards: 1})
	_, pending, st := c.Lookup(key(1, "inflight"), nil)
	if st != Leading {
		t.Fatal("expected Leading")
	}
	// Blow well past capacity with ready entries.
	for i := 0; i < 30; i++ {
		_, fl, _ := c.Lookup(key(1, fmt.Sprintf("fill-%d", i)), nil)
		fl.Fulfill(regsOf(i))
	}
	// The pending entry must still be joinable.
	if _, _, st := c.Lookup(key(1, "inflight"), func([]core.Region, bool) {}); st != Joined {
		t.Fatalf("pending entry lost under pressure (status %v)", st)
	}
	pending.Fulfill(regsOf(99))
}

// TestConcurrentSingleFlight hammers one hot key plus a spread of cold keys
// from many goroutines under -race: every lookup must resolve exactly once,
// and the sum of hits+misses+coalesced must equal the lookups issued.
func TestConcurrentSingleFlight(t *testing.T) {
	c := New(Config{Capacity: 1 << 18, Shards: 8})
	const goroutines = 16
	const perG = 200
	var resolved atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var done sync.WaitGroup
			for i := 0; i < perG; i++ {
				// Every 4th lookup targets the shared hot key.
				s := "hot"
				if i%4 != 0 {
					s = fmt.Sprintf("cold-%d-%d", g, i)
				}
				done.Add(1) // before Lookup: a Joined callback can fire immediately
				regs, fl, st := c.Lookup(key(1, s), func(r []core.Region, ok bool) {
					if ok && (len(r) != 1 || r[0].Score != len(s)) {
						t.Errorf("waiter for %q got %v", s, r)
					}
					resolved.Add(1)
					done.Done()
				})
				switch st {
				case Hit:
					if len(regs) != 1 || regs[0].Score != len(s) {
						t.Errorf("hit for %q got %v", s, regs)
					}
					resolved.Add(1)
					done.Done()
				case Leading:
					fl.Fulfill(regsOf(len(s)))
					resolved.Add(1)
					done.Done()
				case Joined:
					// the callback runs done.Done
				}
			}
			done.Wait()
		}()
	}
	wg.Wait()
	total := int64(goroutines * perG)
	if resolved.Load() != total {
		t.Fatalf("resolved %d of %d lookups", resolved.Load(), total)
	}
	s := c.Stats()
	if s.Hits+s.Misses+s.Coalesced != total {
		t.Fatalf("hits %d + misses %d + coalesced %d != %d", s.Hits, s.Misses, s.Coalesced, total)
	}
}

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultShards}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		c := New(Config{Capacity: 1 << 20, Shards: tc.in})
		if len(c.shards) != tc.want {
			t.Errorf("Shards %d -> %d shards, want %d", tc.in, len(c.shards), tc.want)
		}
	}
}
