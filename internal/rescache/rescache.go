// Package rescache is the server's sharded alignment-result cache for
// duplicate-heavy traffic. Real sequencing runs are full of PCR and optical
// duplicates — the same read sequence arriving many times — and a read's
// alignment regions depend only on its encoded sequence, the resident
// index, and the alignment options. The cache therefore keys on
// (option fingerprint, encoded sequence) and stores the index-relative
// []core.Region produced by the pipeline, NOT rendered SAM text: on a hit
// the caller re-renders the record with the hitting read's own name and
// qualities, so cached responses stay byte-identical to the uncached
// pipeline. Paired-end reads must not be cached (insert-size inference is
// cross-read state); that policy lives in the caller.
//
// Two mechanisms serve two flavors of duplication:
//
//   - The LRU keeps regions of recently aligned sequences resident (bounded
//     by a byte capacity), so a duplicate arriving later skips the whole
//     SMEM→SAL→chain→BSW pipeline.
//   - Single-flight coalesces duplicates that are in flight concurrently:
//     the first copy of a sequence becomes the "leader" and enters the
//     batch queue; every further copy parks on the leader's Flight and is
//     fulfilled from the leader's result without ever occupying a batch
//     slot.
//
// # Concurrency contract
//
// Every method is safe for concurrent use from any goroutine. The keyspace
// is split across a power-of-two number of shards (each with its own lock
// and its own LRU list and byte budget), so concurrent requests contend
// only when their sequences hash to the same shard. Waiter callbacks
// registered via Lookup and the notifications triggered by Flight.Fulfill /
// Flight.Abort run on the goroutine that resolves the flight — a pipeline
// worker in the server — with no cache locks held; callbacks may call back
// into the cache but must not block indefinitely.
package rescache

import (
	"encoding/binary"
	"hash/fnv"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Defaults used when Config fields are zero.
const (
	// DefaultCapacity bounds the resident regions at 256 MiB.
	DefaultCapacity = 256 << 20
	// DefaultShards is the lock-striping width (power of two).
	DefaultShards = 64
)

// regionBytes is the in-memory cost of one core.Region, resolved once so
// the accounting tracks the struct as it evolves.
var regionBytes = int64(reflect.TypeOf(core.Region{}).Size())

// entryOverhead approximates the fixed per-entry bookkeeping cost (map
// slot, entry struct, list links) charged against the byte capacity.
const entryOverhead = 96

// Config sizes a Cache.
type Config struct {
	// Capacity is the total byte budget across all shards (each shard gets
	// an equal slice). <= 0 means DefaultCapacity.
	Capacity int64
	// Shards is the shard count, rounded up to a power of two. <= 0 means
	// DefaultShards.
	Shards int
}

// Status classifies a Lookup outcome.
type Status int

const (
	// Hit: the regions were resident; Lookup returned them.
	Hit Status = iota
	// Joined: the sequence is being aligned by another caller right now;
	// the wait callback was registered on that leader's Flight and will be
	// invoked exactly once when it resolves.
	Joined
	// Leading: the caller is the first to ask for this sequence. It
	// received a Flight and MUST resolve it with Fulfill (result ready) or
	// Abort (alignment abandoned) — leaking a pending flight parks every
	// future duplicate of the sequence forever.
	Leading
)

// Cache is the sharded LRU + single-flight store. Create with New.
type Cache struct {
	shards []shard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64 // resident (ready) entry cost
	entries   atomic.Int64 // ready entries
	capacity  int64
}

// shard is one lock stripe: a map over both ready and pending entries plus
// an LRU list (ready entries only — pending entries are pinned, they cost
// nothing yet and evicting them would orphan their waiters).
type shard struct {
	mu         sync.Mutex
	m          map[string]*entry
	head, tail *entry // LRU: head = most recently used
	bytes      int64
	cap        int64
}

type entry struct {
	key        string
	regs       []core.Region
	cost       int64
	flight     *Flight // non-nil while pending (single-flight leader running)
	prev, next *entry  // LRU links; nil/nil and not listed while pending
}

// Flight is the single-flight handle for one in-progress alignment. The
// leader resolves it exactly once; waiters park on it via Lookup. All
// Flight state is guarded by the owning shard's lock.
type Flight struct {
	c       *Cache
	sh      *shard
	key     string
	done    bool
	waiters []func(regs []core.Region, ok bool)
}

// New builds a cache, resolving zero Config fields to defaults.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	shards := 1
	for shards < n {
		shards <<= 1
	}
	c := &Cache{shards: make([]shard, shards), mask: uint64(shards - 1), capacity: cfg.Capacity}
	per := cfg.Capacity / int64(shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry)
		c.shards[i].cap = per
	}
	return c
}

// AppendKey appends the cache key for (options fingerprint, encoded
// sequence) to dst and returns the extended slice. Keying on the numeric
// encoding rather than the ASCII sequence means case variants ("acgt" vs
// "ACGT") and distinct ambiguity letters that encode identically share one
// entry — they align identically, and the caller re-renders SAM from the
// original read anyway.
func AppendKey(dst []byte, fingerprint uint64, seqCode []byte) []byte {
	var fp [8]byte
	binary.LittleEndian.PutUint64(fp[:], fingerprint)
	dst = append(dst, fp[:]...)
	return append(dst, seqCode...)
}

func (c *Cache) shardOf(key []byte) *shard {
	h := fnv.New64a()
	h.Write(key)
	return &c.shards[h.Sum64()&c.mask]
}

// Lookup resolves key to one of three outcomes (see Status). key may be a
// reused buffer: the cache copies it when it needs to retain it.
//
//   - Hit: the cached regions are returned. They are shared and MUST be
//     treated as immutable by every caller.
//   - Joined: wait was registered on the in-flight leader and will be
//     called exactly once, with (regs, true) when the leader fulfills or
//     (nil, false) when it aborts. wait runs on the resolving goroutine
//     with no cache locks held. A nil wait is allowed only if the caller
//     can never observe Joined (e.g. single-goroutine tests).
//   - Leading: the returned Flight must be resolved with Fulfill or Abort.
func (c *Cache) Lookup(key []byte, wait func(regs []core.Region, ok bool)) ([]core.Region, *Flight, Status) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if e, ok := sh.m[string(key)]; ok {
		if e.flight != nil {
			if wait != nil {
				e.flight.waiters = append(e.flight.waiters, wait)
			}
			fl := e.flight
			sh.mu.Unlock()
			c.coalesced.Add(1)
			return nil, fl, Joined
		}
		sh.moveToFront(e)
		regs := e.regs
		sh.mu.Unlock()
		c.hits.Add(1)
		return regs, nil, Hit
	}
	k := string(key) // copy: the caller's buffer may be reused
	fl := &Flight{c: c, sh: sh, key: k}
	sh.m[k] = &entry{key: k, flight: fl}
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, fl, Leading
}

// Fulfill publishes the leader's regions: the pending entry becomes a
// resident LRU entry (evicting least-recently-used entries if the shard
// goes over budget) and every waiter is notified with (regs, true). regs is
// retained and shared — the caller and all waiters must treat it as
// immutable. Fulfill after Abort (or a second Fulfill) is a no-op, so a
// leader racing its own cancellation stays safe.
func (fl *Flight) Fulfill(regs []core.Region) {
	sh := fl.sh
	sh.mu.Lock()
	if fl.done {
		sh.mu.Unlock()
		return
	}
	fl.done = true
	waiters := fl.waiters
	fl.waiters = nil
	var evicted int64
	if e, ok := sh.m[fl.key]; ok && e.flight == fl {
		e.flight = nil
		e.regs = regs
		e.cost = int64(len(e.key)) + regionBytes*int64(len(regs)) + entryOverhead
		sh.bytes += e.cost
		sh.pushFront(e)
		fl.c.bytes.Add(e.cost)
		fl.c.entries.Add(1)
		evicted = sh.evictOverLocked(fl.c)
	}
	sh.mu.Unlock()
	if evicted > 0 {
		fl.c.evictions.Add(evicted)
	}
	for _, w := range waiters {
		w(regs, true)
	}
}

// Abort withdraws the flight without a result: the pending entry is removed
// (the next Lookup of the sequence starts a fresh leader) and every waiter
// is notified with (nil, false) so it can retry. Abort after Fulfill is a
// no-op.
func (fl *Flight) Abort() {
	sh := fl.sh
	sh.mu.Lock()
	if fl.done {
		sh.mu.Unlock()
		return
	}
	fl.done = true
	waiters := fl.waiters
	fl.waiters = nil
	if e, ok := sh.m[fl.key]; ok && e.flight == fl {
		delete(sh.m, fl.key)
	}
	sh.mu.Unlock()
	for _, w := range waiters {
		w(nil, false)
	}
}

// evictOverLocked drops LRU-tail entries until the shard is within budget,
// returning how many were evicted. Called with sh.mu held.
func (sh *shard) evictOverLocked(c *Cache) int64 {
	var n int64
	for sh.bytes > sh.cap && sh.tail != nil {
		e := sh.tail
		sh.unlink(e)
		delete(sh.m, e.key)
		sh.bytes -= e.cost
		c.bytes.Add(-e.cost)
		c.entries.Add(-1)
		n++
	}
	return n
}

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // Lookups served from a resident entry
	Misses    int64 // Lookups that started a new leader (Leading)
	Coalesced int64 // Lookups parked on an in-flight leader (Joined)
	Evictions int64 // resident entries dropped to stay within capacity
	Entries   int64 // resident (ready) entries
	Bytes     int64 // resident entry cost in bytes
	Capacity  int64 // configured byte budget
}

// Stats returns a snapshot. Counters are read individually, so a snapshot
// taken under concurrent traffic is approximate but each counter is exact.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
		Capacity:  c.capacity,
	}
}
