package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string // source import -> resolved path (vendoring)
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// loader type-checks a dependency closure listed by the go command,
// entirely from source (no export data, no network).
type loader struct {
	fset     *token.FileSet
	list     map[string]*listPackage
	pkgs     map[string]*types.Package
	units    map[string]*Unit
	order    []*Unit         // every checked unit, dependencies first
	checking map[string]bool // import-cycle guard
}

// Load enumerates patterns with `go list` in dir and returns a Unit per
// matched package, type-checked from source in dependency order, plus
// the full dependency closure (all) in topological order — fact-producing
// analyzers run over that closure so interprocedural summaries exist for
// helpers outside the requested packages. It is the standalone driver's
// front end; `go vet -vettool` mode bypasses it and uses compiler export
// data instead (see unitchecker.go).
func Load(dir string, patterns []string) (targets, all []*Unit, err error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go file sets keep the std dependency closure type-checkable
	// from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	l := &loader{
		fset:     token.NewFileSet(),
		list:     make(map[string]*listPackage),
		pkgs:     make(map[string]*types.Package),
		units:    make(map[string]*Unit),
		checking: make(map[string]bool),
	}
	var targetList []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		l.list[lp.ImportPath] = lp
		if !lp.DepOnly {
			targetList = append(targetList, lp)
		}
	}

	for _, lp := range targetList {
		if _, err := l.check(lp.ImportPath); err != nil {
			return nil, nil, err
		}
		targets = append(targets, l.units[lp.ImportPath])
	}
	return targets, l.order, nil
}

func (l *loader) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	lp, ok := l.list[path]
	if !ok {
		return nil, fmt.Errorf("package %q not in go list output", path)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if mapped, ok := lp.ImportMap[imp]; ok {
				imp = mapped
			}
			return l.check(imp)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	l.pkgs[path] = pkg
	unit := &Unit{Fset: l.fset, Files: files, Pkg: pkg, Info: info, Std: lp.Standard}
	l.units[path] = unit
	l.order = append(l.order, unit)
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// StdImporter returns a shared source-level importer for standard-library
// packages, for harnesses (analysistest) that type-check loose fixture
// files outside a module.
func StdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
