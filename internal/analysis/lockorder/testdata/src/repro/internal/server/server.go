// Package server holds the lockorder findings plus the clean idioms
// (single-lock critical sections, deferred unlock) that must stay quiet.
package server

import (
	"sync"

	"repro/internal/metrics"
)

type queue struct {
	mu   sync.Mutex
	work []int
}

type conn struct {
	mu   sync.Mutex
	open bool
}

type reqState struct {
	mu        sync.Mutex
	cancelled bool
}

// push is the common single-lock pattern: no ordering edges at all.
func push(q *queue, v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.work = append(q.work, v)
}

// closeAll locks sequentially — the first lock is released before the
// second is taken, so no edge forms.
func closeAll(q *queue, c *conn) {
	q.mu.Lock()
	q.work = nil
	q.mu.Unlock()
	c.mu.Lock()
	c.open = false
	c.mu.Unlock()
}

// lockBoth nests conn under queue...
func lockBoth(q *queue, c *conn) {
	q.mu.Lock()
	defer q.mu.Unlock()
	c.mu.Lock() // want `lock order cycle: server\.conn\.mu acquired while holding server\.queue\.mu, but the reverse order exists: server\.conn\.mu -> server\.queue\.mu in server\.lockBothReversed`
	c.open = true
	c.mu.Unlock()
}

// ...and lockBothReversed nests queue under conn: together a cycle,
// reported once (at the first edge, with this path as the reverse).
func lockBothReversed(q *queue, c *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q.mu.Lock()
	q.work = nil
	q.mu.Unlock()
}

// holdAndUpdate never names a metrics lock, but Update's Acquires fact
// says it takes Registry.Mutex (and Gauge.mu), so the edge — and the
// cycle with registryFirst — is visible interprocedurally.
func holdAndUpdate(st *reqState, r *metrics.Registry, g *metrics.Gauge) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r.Update(g, 1) // want `lock order cycle: metrics\.Registry\.Mutex acquired while holding server\.reqState\.mu, but the reverse order exists: metrics\.Registry\.Mutex -> server\.reqState\.mu in server\.registryFirst`
}

func registryFirst(st *reqState, r *metrics.Registry) {
	r.Lock()
	defer r.Unlock()
	st.mu.Lock()
	st.cancelled = true
	st.mu.Unlock()
}

// swap orders Stats before Registry — the reverse of metrics.Merge, so
// the cycle's other half lives in another package and arrives as an
// Edges fact.
func swap(r *metrics.Registry, s *metrics.Stats) {
	s.Lock()
	defer s.Unlock()
	r.Lock() // want `lock order cycle: metrics\.Registry\.Mutex acquired while holding metrics\.Stats\.Mutex, but the reverse order exists: metrics\.Registry\.Mutex -> metrics\.Stats\.Mutex in metrics\.Merge`
	r.Unlock()
}
