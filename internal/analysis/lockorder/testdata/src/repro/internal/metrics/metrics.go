// Package metrics is a dependency fixture: its acquisition summaries and
// ordering edges reach importers only through facts.
package metrics

import "sync"

// Registry has an exported embedded mutex, so importers can hold it
// directly; its lock class is metrics.Registry.Mutex.
type Registry struct {
	sync.Mutex
	names []string
}

// Stats is a second embedded-mutex class for the cross-package cycle.
type Stats struct {
	sync.Mutex
	n int
}

// Gauge keeps its mutex private; importers only acquire it through
// methods, visible to them via the Acquires fact.
type Gauge struct {
	mu  sync.Mutex
	val int
}

// Set acquires Gauge.mu; callers holding other locks inherit the edge.
func (g *Gauge) Set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.val = v
}

// Update acquires Registry.Mutex then (through Set) Gauge.mu.
func (r *Registry) Update(g *Gauge, v int) {
	r.Lock()
	defer r.Unlock()
	g.Set(v)
}

// Merge orders Registry before Stats; a reverse order anywhere (any
// package) completes a cycle.
func Merge(r *Registry, s *Stats) {
	r.Lock()
	defer r.Unlock()
	s.Lock()
	s.n++
	s.Unlock()
}
