// Package rescache mirrors the real result cache's shard layout: one
// mutex class, many instances, locked per operation. Nothing here may be
// reported.
package rescache

import "sync"

type shard struct {
	mu sync.Mutex
	m  map[string][]byte
}

type Cache struct {
	shards [16]shard
}

func (c *Cache) idx(k string) int {
	h := 0
	for i := 0; i < len(k); i++ {
		h = h*31 + int(k[i])
	}
	return h & 15
}

func (c *Cache) Get(k string) []byte {
	sh := &c.shards[c.idx(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[k]
}

func (c *Cache) Put(k string, v []byte) {
	sh := &c.shards[c.idx(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[string][]byte)
	}
	sh.m[k] = v
}

// Sweep locks every shard in turn, never two at once.
func (c *Cache) Sweep() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}

// rebalance holds two shards of the same class at once (by index
// discipline); same-class nesting is not an ordering edge.
func (c *Cache) rebalance(i, j int) {
	a, b := &c.shards[i], &c.shards[j]
	a.mu.Lock()
	b.mu.Lock()
	for k, v := range a.m {
		b.m[k] = v
	}
	b.mu.Unlock()
	a.mu.Unlock()
}
