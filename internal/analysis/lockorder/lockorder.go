// Package lockorder builds a global mutex-acquisition-order graph and
// reports cycles — the static shadow of the deadlocks the soak harness
// hunts dynamically. Locks are identified by their declaration site
// ("pkg.Type.field" for named mutex fields, "pkg.var" for package-level
// mutexes), so every instance of a type shares one node: ordering is a
// property of the code, not of individual objects.
//
// Within a function the analyzer tracks the set of held locks
// statement-by-statement (branch bodies see a copy; a deferred Unlock
// keeps the lock held to the end, which is the repo's idiom). Acquiring
// B while holding A adds edge A→B; calling a function whose summary says
// it acquires B adds the same edge, so nesting through helpers and other
// packages is visible. Per-function acquisition summaries and
// per-package edge lists propagate as facts, and each package reports
// only cycles one of its own edges participates in — a cycle spanning
// packages is reported once per package that contributes to it, each
// time with the full reverse path.
//
// Same-key edges (two instances of one lock class, e.g. two cache
// shards) are deliberately ignored: instance order within a class is
// index-discipline the type system cannot see, and flagging every
// shard-pair walk would be noise.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Acquires is the per-function fact: the lock classes a call to the
// function may (transitively) acquire.
type Acquires struct {
	Keys []string `json:"keys"`
}

// AFact marks Acquires as a fact type.
func (*Acquires) AFact() {}

// An Edge is one observed ordering: To was acquired while From was held.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Fn   string `json:"fn"`  // function containing the acquisition
	Pos  string `json:"pos"` // module-relative file:line
}

// Edges is the per-package fact: every ordering edge the package's code
// creates.
type Edges struct {
	List []Edge `json:"list"`
}

// AFact marks Edges as a fact type.
func (*Edges) AFact() {}

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "report cycles in the global mutex acquisition order (A held while locking B in one path, B held while locking A in another)",
	FactTypes: []analysis.Fact{(*Acquires)(nil), (*Edges)(nil)},
	Run:       run,
}

type checker struct {
	pass    *analysis.Pass
	graph   *analysis.CallGraph
	direct  map[*types.Func]map[string]bool // keys locked syntactically in the body
	acq     map[*types.Func]map[string]bool // transitive closure
	edges   []Edge
	edgeSet map[[2]string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		graph:   analysis.BuildCallGraph(pass),
		direct:  make(map[*types.Func]map[string]bool),
		acq:     make(map[*types.Func]map[string]bool),
		edgeSet: make(map[[2]string]bool),
	}

	for _, node := range c.graph.Order {
		c.direct[node.Fn] = c.directAcquires(node.Decl.Body)
		c.acq[node.Fn] = copySet(c.direct[node.Fn])
	}
	// Transitive acquires: a function acquires what its callees acquire.
	for changed := true; changed; {
		changed = false
		for _, node := range c.graph.Order {
			for _, call := range node.Calls {
				for k := range c.calleeAcquires(call.Callee) {
					if !c.acq[node.Fn][k] {
						c.acq[node.Fn][k] = true
						changed = true
					}
				}
			}
		}
	}

	for _, node := range c.graph.Order {
		c.walkStmts(node.Fn, node.Decl.Body.List, map[string]token.Pos{})
	}

	for _, node := range c.graph.Order {
		if len(c.acq[node.Fn]) == 0 {
			continue
		}
		pass.ExportObjectFact(node.Fn, &Acquires{Keys: sortedKeys(c.acq[node.Fn])})
	}
	pass.ExportPackageFact(&Edges{List: c.edges})

	c.reportCycles()
	return nil
}

// reportCycles looks for a path back from each own edge's target to its
// source across the union of every package's edges.
func (c *checker) reportCycles() {
	adj := make(map[string][]Edge)
	for _, fact := range c.pass.AllPackageFacts((*Edges)(nil)) {
		for _, e := range fact.(*Edges).List {
			adj[e.From] = append(adj[e.From], e)
		}
	}
	for from := range adj {
		sort.Slice(adj[from], func(i, j int) bool {
			a, b := adj[from][i], adj[from][j]
			return a.To < b.To || (a.To == b.To && a.Pos < b.Pos)
		})
	}
	reported := make(map[[2]string]bool)
	for _, own := range c.edges {
		pair := [2]string{own.From, own.To}
		if reported[pair] || reported[[2]string{own.To, own.From}] {
			continue
		}
		path := findPath(adj, own.To, own.From, nil, map[string]bool{})
		if path == nil {
			continue
		}
		reported[pair] = true
		var steps []string
		for _, e := range path {
			steps = append(steps, fmt.Sprintf("%s -> %s in %s (%s)", short(e.From), short(e.To), e.Fn, e.Pos))
		}
		pos := c.ownPos(own)
		c.pass.Reportf(pos, "lock order cycle: %s acquired while holding %s, but the reverse order exists: %s",
			short(own.To), short(own.From), strings.Join(steps, ", then "))
	}
}

// ownPos recovers the token.Pos of an own-package edge from its recorded
// position string (edges carry strings so they can cross processes).
func (c *checker) ownPos(e Edge) token.Pos {
	for _, f := range c.pass.Files {
		tf := c.pass.Fset.File(f.Pos())
		if tf == nil || analysis.ModuleRelative(tf.Name()) != strings.TrimSuffix(e.Pos, e.Pos[strings.LastIndexByte(e.Pos, ':'):]) {
			continue
		}
		var line int
		fmt.Sscanf(e.Pos[strings.LastIndexByte(e.Pos, ':')+1:], "%d", &line)
		if line >= 1 && line <= tf.LineCount() {
			return tf.LineStart(line)
		}
	}
	return c.pass.Files[0].Pos()
}

func findPath(adj map[string][]Edge, from, to string, path []Edge, seen map[string]bool) []Edge {
	if seen[from] {
		return nil
	}
	seen[from] = true
	for _, e := range adj[from] {
		p := append(path, e)
		if e.To == to {
			return p
		}
		if found := findPath(adj, e.To, to, p, seen); found != nil {
			return found
		}
	}
	return nil
}

// walkStmts tracks held locks through a statement list. held is mutated
// for straight-line flow; branching constructs walk each arm with a
// copy, and no acquisition escapes its arm (conservative: we only learn
// orderings, never unlearn them).
func (c *checker) walkStmts(fn *types.Func, list []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range list {
		c.walkStmt(fn, stmt, held)
	}
}

func (c *checker) walkStmt(fn *types.Func, stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		c.walkStmts(fn, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(fn, s.Init, held)
		}
		c.scanCalls(fn, s.Cond, held)
		c.walkStmt(fn, s.Body, copyHeld(held))
		if s.Else != nil {
			c.walkStmt(fn, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(fn, s.Init, held)
		}
		c.walkStmt(fn, s.Body, copyHeld(held))
	case *ast.RangeStmt:
		c.walkStmt(fn, s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(fn, s.Init, held)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(fn, clause.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(fn, clause.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				c.walkStmts(fn, clause.Body, copyHeld(held))
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock holds to function end: leave held as is.
		// Other deferred calls run with an unknowable held set; the
		// conservative direct-acquire summary already covers their keys.
		if _, isUnlock, key := c.lockOp(s.Call); isUnlock && key != "" {
			return
		}
	case *ast.GoStmt:
		// The goroutine runs with its own empty held set; its literal
		// body is walked separately by directAcquires' caller? No — walk
		// it here so edges inside spawned bodies are still recorded.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(fn, lit.Body.List, map[string]token.Pos{})
		}
	default:
		c.scanCalls(fn, stmt, held)
	}
}

// scanCalls processes every call in a non-branching node in source
// order: lock/unlock operations update held, other calls contribute
// their summaries' keys as edges. Function literals are walked with a
// fresh held set (they usually run elsewhere).
func (c *checker) scanCalls(fn *types.Func, n ast.Node, held map[string]token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			c.walkStmts(fn, lit.Body.List, map[string]token.Pos{})
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isLock, isUnlock, key := c.lockOp(call); key != "" {
			if isLock {
				c.addEdges(fn, held, key, call.Pos())
				held[key] = call.Pos()
			} else if isUnlock {
				delete(held, key)
			}
			return false
		}
		if callee := analysis.StaticCallee(c.pass.TypesInfo, call); callee != nil && len(held) > 0 {
			for k := range c.calleeAcquires(callee) {
				c.addEdges(fn, held, k, call.Pos())
			}
		}
		return true
	})
}

func (c *checker) addEdges(fn *types.Func, held map[string]token.Pos, to string, pos token.Pos) {
	for from := range held {
		if from == to {
			continue
		}
		pair := [2]string{from, to}
		if c.edgeSet[pair] {
			continue
		}
		c.edgeSet[pair] = true
		p := c.pass.Fset.Position(pos)
		c.edges = append(c.edges, Edge{
			From: from,
			To:   to,
			Fn:   fnName(fn),
			Pos:  fmt.Sprintf("%s:%d", analysis.ModuleRelative(p.Filename), p.Line),
		})
	}
}

// calleeAcquires returns the lock classes a callee may acquire: the
// local fixpoint for this package's functions, the Acquires fact for
// imported ones.
func (c *checker) calleeAcquires(callee *types.Func) map[string]bool {
	if callee.Pkg() == c.pass.Pkg {
		return c.acq[callee]
	}
	var fact Acquires
	if c.pass.ImportObjectFact(callee, &fact) {
		out := make(map[string]bool, len(fact.Keys))
		for _, k := range fact.Keys {
			out[k] = true
		}
		return out
	}
	return nil
}

// directAcquires collects the lock classes locked syntactically in body,
// excluding nested function literals (those run on their own schedule
// and must not inflate the caller-visible summary).
func (c *checker) directAcquires(body ast.Node) map[string]bool {
	keys := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isLock, _, key := c.lockOp(call); isLock && key != "" {
			keys[key] = true
		}
		return true
	})
	return keys
}

// lockOp classifies a call as a Lock/RLock or Unlock/RUnlock on a
// keyable mutex. key is "" for non-mutex calls and for mutexes with no
// stable identity (locals).
func (c *checker) lockOp(call *ast.CallExpr) (isLock, isUnlock bool, key string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false, false, ""
	}
	fn, ok := c.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false, false, ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
		isUnlock = true
	default:
		return false, false, ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false, false, ""
	}
	var recvName string
	switch {
	case analysis.TypeIs(sig.Recv().Type(), "sync", "Mutex"):
		recvName = "Mutex"
	case analysis.TypeIs(sig.Recv().Type(), "sync", "RWMutex"):
		recvName = "RWMutex"
	default:
		return false, false, ""
	}
	return isLock, isUnlock, c.keyOf(sel.X, recvName)
}

// keyOf names the lock class of a mutex expression: "pkg.Type.field"
// for a field selection on a named type, "pkg.Type.Mutex" for a named
// type with an embedded mutex locked through its method set, "pkg.var"
// for a package-level sync.Mutex variable. Local bare mutexes have no
// class and yield "".
func (c *checker) keyOf(e ast.Expr, recvName string) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if named, ok := analysis.NamedOf(c.pass.TypesInfo.TypeOf(e.X)); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
		}
	default:
		named, ok := analysis.NamedOf(c.pass.TypesInfo.TypeOf(ast.Unparen(e)))
		if ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			// An embedded mutex locked as t.Lock(): the class is the
			// embedding named type, whatever the instance.
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + recvName
		}
		if id, okID := ast.Unparen(e).(*ast.Ident); okID {
			if v, okV := c.pass.TypesInfo.ObjectOf(id).(*types.Var); okV &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	}
	return ""
}

// short strips the package path down to its last element for messages.
func short(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

func fnName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := analysis.NamedOf(sig.Recv().Type()); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return short(fn.Pkg().Path()) + "." + name
	}
	return name
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func copyHeld(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
