package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "repro/internal/server")
}

// TestShardNoFalsePositive mirrors internal/rescache's sharded map: many
// instances of one lock class, taken one (or two) at a time, must not
// produce a self-cycle.
func TestShardNoFalsePositive(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "repro/internal/rescache")
}
