package analysis

import (
	"go/ast"
	"go/types"
)

// DefUse is a lightweight per-function def-use index: for every local
// variable it records the value expressions assigned to it (from := and =
// and var declarations with initializers). It deliberately ignores
// aliasing through pointers and container stores — it answers "what
// expressions flow into this variable" for the straight-line idioms the
// suite's analyzers care about (a func literal bound to a local, a slice
// made with or without capacity), not general dataflow.
type DefUse struct {
	values map[types.Object][]ast.Expr
}

// FuncDefUse builds the def-use index for one function body (or any
// subtree). info must cover the subtree.
func FuncDefUse(info *types.Info, body ast.Node) *DefUse {
	d := &DefUse{values: make(map[types.Object][]ast.Expr)}
	if body == nil {
		return d
	}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		d.values[obj] = append(d.values[obj], rhs)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else if len(n.Rhs) == 1 {
				// Multi-value assignment: every LHS flows from the call.
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == len(n.Names) {
				for i, name := range n.Names {
					record(name, n.Values[i])
				}
			} else if len(n.Values) == 1 {
				for _, name := range n.Names {
					record(name, n.Values[0])
				}
			}
			// A spec with no values is a zero-value declaration: the
			// variable has an entry with no value expressions, which
			// ValuesOf distinguishes from "never seen".
			for _, name := range n.Names {
				if len(n.Values) == 0 {
					obj := info.ObjectOf(name)
					if obj != nil {
						if _, seen := d.values[obj]; !seen {
							d.values[obj] = nil
						}
					}
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				record(n.Key, n.X)
			}
			if n.Value != nil {
				record(n.Value, n.X)
			}
		}
		return true
	})
	return d
}

// ValuesOf returns the value expressions assigned to obj within the
// indexed subtree, and whether obj was declared there at all.
func (d *DefUse) ValuesOf(obj types.Object) ([]ast.Expr, bool) {
	vals, ok := d.values[obj]
	return vals, ok
}

// ResolveFunc resolves a callee expression to the function it denotes:
// a *types.Func for named functions and methods, and/or the *ast.FuncLit
// when the expression is a literal or a local variable bound (exactly
// once) to one. Returns (nil, nil) for dynamic values it cannot trace.
func (d *DefUse) ResolveFunc(info *types.Info, e ast.Expr) (*ast.FuncLit, *types.Func) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.FuncLit:
		return e, nil
	case *ast.Ident:
		if fn, ok := info.ObjectOf(e).(*types.Func); ok {
			return nil, fn
		}
		if v, ok := info.ObjectOf(e).(*types.Var); ok {
			vals, _ := d.ValuesOf(v)
			if len(vals) == 1 {
				if lit, ok := ast.Unparen(vals[0]).(*ast.FuncLit); ok {
					return lit, nil
				}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.ObjectOf(e.Sel).(*types.Func); ok {
			return nil, fn
		}
	}
	return nil, nil
}
