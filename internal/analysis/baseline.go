package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// BaselineSchema identifies the on-disk baseline format.
const BaselineSchema = "bwalint-baseline/v1"

// A BaselineEntry tolerates one existing finding: same file (module-root
// relative), same analyzer, same message hash. Line numbers are not part
// of the identity, so unrelated edits that move a finding do not fire the
// ratchet. Every committed entry must carry a reviewed justification.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Hash     string `json:"hash"`
	Message  string `json:"message"` // for humans; the hash is authoritative
	Reason   string `json:"reason"`
}

type baselineFile struct {
	Schema  string          `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

// A Baseline is the ratchet: findings matching an entry are tolerated,
// any other finding fails, and an entry matching nothing is itself stale
// (the finding was fixed — the baseline must shrink with it).
type Baseline struct {
	Entries []BaselineEntry
	used    []bool
}

// LoadBaseline reads a baseline file. A missing file is an error: the
// ratchet must never silently run without its reference point.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("decoding baseline %s: %v", path, err)
	}
	if f.Schema != BaselineSchema {
		return nil, fmt.Errorf("baseline %s: schema %q, want %q", path, f.Schema, BaselineSchema)
	}
	return &Baseline{Entries: f.Entries, used: make([]bool, len(f.Entries))}, nil
}

// Match reports whether a finding is tolerated by the baseline, marking
// the matching entry as live.
func (b *Baseline) Match(file, analyzer, message string) bool {
	if b == nil {
		return false
	}
	h := HashMessage(message)
	for i, e := range b.Entries {
		if e.File == file && e.Analyzer == analyzer && e.Hash == h {
			b.used[i] = true
			return true
		}
	}
	return false
}

// Stale returns the entries no finding matched, restricted to files for
// which the caller actually has findings visibility (inFiles nil means
// every entry is in scope — the standalone driver saw the whole module;
// the per-package vettool driver passes the unit's own files so entries
// for other packages are left to their own units).
func (b *Baseline) Stale(inFiles map[string]bool) []BaselineEntry {
	if b == nil {
		return nil
	}
	var stale []BaselineEntry
	for i, e := range b.Entries {
		if b.used[i] {
			continue
		}
		if inFiles != nil && !inFiles[e.File] {
			continue
		}
		stale = append(stale, e)
	}
	return stale
}

// WriteBaseline writes entries (sorted, deduplicated) as a baseline file.
func WriteBaseline(path string, entries []BaselineEntry) error {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Hash < b.Hash
	})
	dedup := entries[:0]
	for i, e := range entries {
		if i == 0 || e != entries[i-1] {
			dedup = append(dedup, e)
		}
	}
	data, err := json.MarshalIndent(baselineFile{Schema: BaselineSchema, Entries: dedup}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// HashMessage is the message identity used by baseline entries.
func HashMessage(message string) string {
	sum := sha256.Sum256([]byte(message))
	return hex.EncodeToString(sum[:6])
}

var (
	modRootMu    sync.Mutex
	modRootCache = map[string]string{}
)

// ModuleRelative rewrites an absolute filename relative to its module
// root (the nearest go.mod upward), with forward slashes — the stable
// form baseline entries use so both drivers agree regardless of working
// directory. Files outside any module are returned unchanged.
func ModuleRelative(filename string) string {
	dir := filepath.Dir(filename)
	modRootMu.Lock()
	root, ok := modRootCache[dir]
	modRootMu.Unlock()
	if !ok {
		for d := dir; ; {
			if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
				root = d
				break
			}
			parent := filepath.Dir(d)
			if parent == d {
				break
			}
			d = parent
		}
		modRootMu.Lock()
		modRootCache[dir] = root
		modRootMu.Unlock()
	}
	if root == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// moduleName returns the module path declared by the nearest go.mod above
// dir ("" when there is none). The unitchecker uses it to recognize
// standard-library units ("std", "cmd") and skip fact computation there.
func moduleName(dir string) string {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest)
				}
			}
			return ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
