// Package atomicfield guards the repo's lock-free accounting structures:
// fields of the counters package's structs and of obs.Histogram may be
// touched only through their accessor methods (which use sync/atomic),
// and any struct carrying sync/atomic state must never be copied by
// value — a copy tears the counters and silently forks the metrics.
package atomicfield

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "guard atomic counter structs against direct stores and value copies\n\n" +
		"Structs declared in internal/counters and obs.Histogram are mutated\n" +
		"only via their own methods; writing their fields elsewhere bypasses the\n" +
		"sync/atomic discipline. Any struct containing a sync/atomic value\n" +
		"(AtomicClock, obs.Histogram, core.MappedIndex, ...) must move by\n" +
		"pointer, never by value.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, holders: make(map[types.Type]bool)}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					c.checkFieldWrite(lhs, stack)
				}
				if len(n.Lhs) == len(n.Rhs) {
					for _, rhs := range n.Rhs {
						c.checkCopy(rhs, "assignment copies")
					}
				}
			case *ast.IncDecStmt:
				c.checkFieldWrite(n.X, stack)
			case *ast.ValueSpec:
				for _, v := range n.Values {
					c.checkCopy(v, "variable initialization copies")
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					c.checkCopy(arg, "call passes")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					c.checkCopy(res, "return copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := c.pass.TypesInfo.TypeOf(n.Value); c.holdsAtomic(t) {
						c.pass.Reportf(n.Value.Pos(), "range copies %s by value; it carries sync/atomic state — iterate by index or pointer", typeName(t))
					}
				}
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	holders map[types.Type]bool // memoized "contains sync/atomic state"
}

// checkFieldWrite flags a direct store to a field of a guarded struct
// (counters.* / obs.Histogram) from outside that struct's own methods.
func (c *checker) checkFieldWrite(lhs ast.Expr, stack []ast.Node) {
	e := ast.Unparen(lhs)
	// Unwrap element/array accesses: c.T[s] += d writes field T.
	for {
		if idx, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(idx.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	field, ok := c.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !field.IsField() {
		return
	}
	owner, ok := analysis.NamedOf(c.pass.TypesInfo.TypeOf(sel.X))
	if !ok || !guardedStruct(owner) {
		return
	}
	if c.inMethodOf(stack, owner) {
		return
	}
	if c.locallyOwnedValue(sel.X) {
		return
	}
	c.pass.Reportf(lhs.Pos(), "direct write to %s.%s outside its methods; use the accessor methods (sync/atomic discipline)",
		owner.Obj().Name(), sel.Sel.Name)
}

// checkCopy flags e when it produces a by-value copy of a struct carrying
// sync/atomic state. Composite literals and address-taking construct
// rather than copy and are exempt.
func (c *checker) checkCopy(e ast.Expr, how string) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.CompositeLit, *ast.UnaryExpr:
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if !c.holdsAtomic(t) {
		return
	}
	c.pass.Reportf(e.Pos(), "%s %s by value; it carries sync/atomic state — pass a pointer", how, typeName(t))
}

// holdsAtomic reports whether t is a non-pointer struct type containing,
// transitively through fields and arrays, a sync/atomic value.
func (c *checker) holdsAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if done, ok := c.holders[t]; ok {
		return done
	}
	c.holders[t] = false // cycle guard
	result := false
	switch u := t.Underlying().(type) {
	case *types.Struct:
		if fromAtomicPkg(t) {
			result = true
			break
		}
		for i := 0; i < u.NumFields() && !result; i++ {
			result = c.holdsAtomic(u.Field(i).Type())
		}
	case *types.Array:
		result = c.holdsAtomic(u.Elem())
	}
	c.holders[t] = result
	return result
}

// guardedStruct reports whether named is one of the accessor-only types:
// any struct in a counters package, or obs.Histogram.
func guardedStruct(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	if analysis.PkgPathMatches(obj.Pkg().Path(), "internal/counters") {
		return true
	}
	return obj.Name() == "Histogram" && analysis.PkgPathMatches(obj.Pkg().Path(), "internal/obs")
}

// fromAtomicPkg reports whether t is itself one of sync/atomic's types.
func fromAtomicPkg(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// locallyOwnedValue reports whether base is a function-scoped variable of
// non-pointer type: a fresh value the function owns outright (e.g. the
// StageClock that AtomicClock.Snapshot assembles). Writes through such a
// value cannot reach shared state, unlike writes through a pointer.
func (c *checker) locallyOwnedValue(base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return false
	}
	if v.Parent() == v.Pkg().Scope() {
		return false // package-level: shared state
	}
	_, isPtr := types.Unalias(v.Type()).Underlying().(*types.Pointer)
	return !isPtr
}

// inMethodOf reports whether the innermost enclosing FuncDecl is a method
// whose receiver is owner (the accessor exemption).
func (c *checker) inMethodOf(stack []ast.Node, owner *types.Named) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return false
		}
		recv, ok := analysis.NamedOf(c.pass.TypesInfo.TypeOf(fd.Recv.List[0].Type))
		return ok && recv.Obj() == owner.Obj()
	}
	return false
}

func typeName(t types.Type) string {
	if n, ok := analysis.NamedOf(t); ok {
		return n.Obj().Name()
	}
	return t.String()
}
