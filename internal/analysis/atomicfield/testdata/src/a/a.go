package a

import (
	"time"

	"repro/internal/counters"
	"repro/internal/obs"
)

var sink interface{}

func badWrites(c *counters.StageClock) {
	c.T[0] += time.Second // want `direct write to StageClock\.T outside its methods`
	c.T[1] = 0            // want `direct write to StageClock\.T outside its methods`
}

func badCopies(ac *counters.AtomicClock, h *obs.Histogram) {
	hv := *h // want `assignment copies Histogram by value`
	sink = &hv
	use(*ac) // want `call passes AtomicClock by value`
}

func use(counters.AtomicClock) {}

func badReturn(ac *counters.AtomicClock) counters.AtomicClock {
	return *ac // want `return copies AtomicClock by value`
}

func badRange(list []obs.Histogram) {
	for _, h := range list { // want `range copies Histogram by value`
		sink = h.Count()
	}
}

func good(c *counters.StageClock, ac *counters.AtomicClock, h *obs.Histogram) int64 {
	c.Add(0, time.Second)
	ac.Add(1, time.Millisecond)
	h.Observe(5)
	// StageClock carries no atomic state; snapshot-by-value is its
	// documented idiom.
	snap := ac.Snapshot()
	other := snap
	other.Add(2, time.Second)
	var fresh obs.Histogram
	sink = &fresh
	return h.Count()
}
