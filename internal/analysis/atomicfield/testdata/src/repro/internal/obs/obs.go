// Package obs is an analysistest stub of repro/internal/obs.
package obs

import "sync/atomic"

// Histogram mirrors the real latency histogram: atomic buckets, accessor
// methods only, never copied by value.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
}

func (h *Histogram) Observe(n int64) {
	h.count.Add(1)
	h.sum.Add(n)
}

func (h *Histogram) Count() int64 { return h.count.Load() }
