// Package counters is an analysistest stub of repro/internal/counters:
// one plain per-worker clock and one atomic aggregation clock.
package counters

import (
	"sync/atomic"
	"time"
)

type Stage int

const NumStages = 3

// StageClock is per-goroutine and unsynchronized; copying it is fine,
// but its fields still belong to its accessors.
type StageClock struct {
	T [NumStages]time.Duration
}

func (c *StageClock) Add(s Stage, d time.Duration) { c.T[s] += d }

func (c *StageClock) Merge(src *StageClock) {
	for i := range c.T {
		c.T[i] += src.T[i]
	}
}

// AtomicClock carries sync/atomic state: accessor-only and never copied.
type AtomicClock struct {
	ns [NumStages]atomic.Int64
}

func (c *AtomicClock) Add(s Stage, d time.Duration) { c.ns[s].Add(int64(d)) }

func (c *AtomicClock) Snapshot() StageClock {
	var s StageClock
	for i := range s.T {
		s.T[i] = time.Duration(c.ns[i].Load())
	}
	return s
}

func zero(c *AtomicClock) {
	c.ns = [NumStages]atomic.Int64{} // want `direct write to AtomicClock\.ns outside its methods`
}
