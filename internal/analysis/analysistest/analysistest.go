// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against `// want`
// comments, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout: testdata/src/<import/path>/*.go. A fixture file marks
// the diagnostics it expects with trailing comments on the offending
// line:
//
//	w.Write(b) // want `error from .* is dropped`
//
// Each string (quoted or backquoted) after "want" is a regexp; every
// diagnostic on the line must match some want, and every want must match
// some diagnostic. Fixture imports resolve against testdata/src first, so
// fixtures can model real module paths (repro/internal/core, ...);
// anything else falls back to the standard library, type-checked from
// source.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Result holds the diagnostics produced for one fixture package.
type Result struct {
	Path  string
	Unit  *analysis.Unit
	Diags []analysis.Diagnostic
}

// Run loads each fixture package, applies a, and reports mismatches
// against the fixtures' want comments through t. It returns the per-
// package results so tests can make extra assertions (suggested fixes).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) []Result {
	t.Helper()
	ld := &fixtureLoader{
		src:      filepath.Join(testdata, "src"),
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loaded),
		analyzer: a,
		facts:    analysis.NewFactSet(),
	}
	ld.std = analysis.StdImporter(ld.fset)

	var results []Result
	for _, path := range pkgPaths {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := lp.unit.Run(a)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		diags = append(diags, lp.unit.DirectiveDiagnostics()...)
		checkWants(t, ld.fset, path, lp.files, diags)
		results = append(results, Result{Path: path, Unit: lp.unit, Diags: diags})
	}
	return results
}

type loaded struct {
	files []*ast.File
	unit  *analysis.Unit
	pkg   *types.Package
}

type fixtureLoader struct {
	src      string
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*loaded
	analyzer *analysis.Analyzer
	facts    *analysis.FactSet
}

func (l *fixtureLoader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	lp := &loaded{
		files: files,
		pkg:   pkg,
		unit:  &analysis.Unit{Fset: l.fset, Files: files, Pkg: pkg, Info: info, Facts: l.facts},
	}
	l.pkgs[path] = lp
	// Export this package's facts immediately: importPkg's recursion
	// reaches here dependencies-first, so by the time a target package
	// runs, every fixture dependency's summaries are already in the
	// shared fact set — same order the real drivers guarantee.
	if err := lp.unit.RunFacts(l.analyzer); err != nil {
		return nil, fmt.Errorf("facts for fixture %s: %v", path, err)
	}
	return lp, nil
}

func (l *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRx extracts the quoted regexps of a want comment.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkWants(t *testing.T, fset *token.FileSet, pkg string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type want struct {
		pos token.Position
		rx  *regexp.Regexp
		hit bool
	}
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				for _, q := range wantRx.FindAllString(rest, -1) {
					pat := q
					if pat[0] == '"' {
						var err error
						if pat, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", fset.Position(c.Pos()), q, err)
						}
					} else {
						pat = pat[1 : len(pat)-1]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", fset.Position(c.Pos()), q, err)
					}
					wants = append(wants, &want{pos: fset.Position(c.Pos()), rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.pos.Filename == pos.Filename && w.pos.Line == pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].pos.Filename != wants[j].pos.Filename {
			return wants[i].pos.Filename < wants[j].pos.Filename
		}
		return wants[i].pos.Line < wants[j].pos.Line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic matched want %q (package %s)", w.pos, w.rx, pkg)
		}
	}
}
