package analysis

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// A ResolvedDiag pairs a diagnostic with the analyzer that produced it —
// the driver-level currency for printing, baselining, and fixing.
type ResolvedDiag struct {
	Analyzer string
	Diag     Diagnostic
}

// ApplyFixes applies the first SuggestedFix of every diagnostic that has
// one. In dryRun mode it prints a per-hunk diff to w instead of writing
// files. Overlapping fixes are applied first-come (by position); the rest
// are skipped with a note. Returns the number of fixes applied (or, dry,
// printable) and the number of files touched.
func ApplyFixes(fset *token.FileSet, diags []ResolvedDiag, dryRun bool, w io.Writer) (fixes, files int, err error) {
	type fileFix struct {
		edits []TextEdit
		names []string // analyzer per edit, parallel
	}
	byFile := make(map[string]*fileFix)
	for _, rd := range diags {
		if len(rd.Diag.SuggestedFixes) == 0 {
			continue
		}
		fix := rd.Diag.SuggestedFixes[0]
		for _, ed := range fix.TextEdits {
			name := fset.Position(ed.Pos).Filename
			ff := byFile[name]
			if ff == nil {
				ff = &fileFix{}
				byFile[name] = ff
			}
			ff.edits = append(ff.edits, ed)
			ff.names = append(ff.names, rd.Analyzer)
		}
	}

	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		ff := byFile[name]
		src, rerr := os.ReadFile(name)
		if rerr != nil {
			return fixes, files, rerr
		}
		// Sort edits by offset; drop overlaps (first wins).
		idx := make([]int, len(ff.edits))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return ff.edits[idx[a]].Pos < ff.edits[idx[b]].Pos })
		out := make([]byte, 0, len(src))
		prevEnd := 0
		applied := 0
		for _, i := range idx {
			ed := ff.edits[i]
			start := fset.Position(ed.Pos).Offset
			end := start
			if ed.End.IsValid() {
				end = fset.Position(ed.End).Offset
			}
			if start < prevEnd || start > len(src) || end > len(src) || end < start {
				fmt.Fprintf(w, "%s: skipping overlapping/out-of-range fix from %s\n", name, ff.names[i])
				continue
			}
			if dryRun {
				printHunk(w, name, src, start, end, ed.NewText)
			}
			out = append(out, src[prevEnd:start]...)
			out = append(out, ed.NewText...)
			prevEnd = end
			applied++
		}
		out = append(out, src[prevEnd:]...)
		if applied == 0 {
			continue
		}
		fixes += applied
		files++
		if !dryRun {
			if werr := os.WriteFile(name, out, 0o644); werr != nil {
				return fixes, files, werr
			}
		}
	}
	return fixes, files, nil
}

// printHunk shows one edit as a minimal line diff: the affected source
// lines before and after.
func printHunk(w io.Writer, name string, src []byte, start, end int, newText []byte) {
	lineStart := strings.LastIndexByte(string(src[:start]), '\n') + 1
	lineEnd := end
	if i := strings.IndexByte(string(src[end:]), '\n'); i >= 0 {
		lineEnd = end + i
	} else {
		lineEnd = len(src)
	}
	line := 1 + strings.Count(string(src[:lineStart]), "\n")
	old := string(src[lineStart:lineEnd])
	new := string(src[lineStart:start]) + string(newText) + string(src[end:lineEnd])
	fmt.Fprintf(w, "--- %s:%d\n", ModuleRelative(name), line)
	for _, l := range strings.Split(old, "\n") {
		fmt.Fprintf(w, "-%s\n", l)
	}
	for _, l := range strings.Split(new, "\n") {
		fmt.Fprintf(w, "+%s\n", l)
	}
}
