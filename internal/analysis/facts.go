package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a serializable per-object or per-package summary an analyzer
// computes in one package and consumes in another — the interprocedural
// layer of the suite. Fact types must be pointers to JSON-marshalable
// structs and must be listed in the producing Analyzer's FactTypes so the
// drivers know the analyzer participates in cross-package propagation
// (and therefore must run over dependencies, not just vet targets).
//
// Propagation follows the build graph in both drivers: the standalone
// loader runs fact-producing analyzers over the dependency closure in
// topological order, and the `go vet -vettool` unitchecker computes facts
// during the go command's VetxOnly dependency runs, reading importers'
// facts from the PackageVetx files and re-exporting the merged set via
// VetxOutput so transitive facts flow.
type Fact interface{ AFact() }

// encodedFact is the wire form of one fact, stable across processes.
type encodedFact struct {
	Analyzer string          `json:"analyzer"`
	Pkg      string          `json:"pkg"`
	Object   string          `json:"object,omitempty"` // "" = package-level fact
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

type factKey struct{ analyzer, pkg, object, typ string }

// A FactSet is the fact store shared by every Unit of one driver run (or,
// in vettool mode, by the one unit plus the decoded facts of its
// dependencies).
type FactSet struct {
	mu sync.Mutex
	m  map[factKey]json.RawMessage
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet { return &FactSet{m: make(map[factKey]json.RawMessage)} }

// Merge decodes one facts file (as written by Encode) into the set.
// Empty input is a valid empty set.
func (s *FactSet) Merge(data []byte) error {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil
	}
	var facts []encodedFact
	if err := json.Unmarshal(data, &facts); err != nil {
		return fmt.Errorf("decoding facts: %v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range facts {
		s.m[factKey{f.Analyzer, f.Pkg, f.Object, f.Type}] = f.Data
	}
	return nil
}

// Encode serializes the set deterministically (sorted by key).
func (s *FactSet) Encode() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	facts := make([]encodedFact, 0, len(s.m))
	for k, data := range s.m {
		facts = append(facts, encodedFact{Analyzer: k.analyzer, Pkg: k.pkg, Object: k.object, Type: k.typ, Data: data})
	}
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.Marshal(facts)
}

func (s *FactSet) set(k factKey, fact Fact) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.m[k] = data
	s.mu.Unlock()
	return nil
}

func (s *FactSet) get(k factKey, fact Fact) bool {
	s.mu.Lock()
	data, ok := s.m[k]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// objectFactPath maps a package-level object or method to its stable
// cross-process key: "Name" for package-level functions/vars/types,
// "Recv.Name" for methods. Local objects have no fact identity.
func objectFactPath(obj types.Object) (pkg, path string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	if fn, isFn := obj.(*types.Func); isFn {
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
			named, okN := NamedOf(sig.Recv().Type())
			if !okN {
				return "", "", false
			}
			return obj.Pkg().Path(), named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// ExportObjectFact records fact for obj (a package-level object or method
// of any package — typically the one being analyzed). No-op for objects
// without a stable identity (locals).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	pkg, path, ok := objectFactPath(obj)
	if !ok || p.facts == nil {
		return
	}
	p.facts.set(factKey{p.Analyzer.Name, pkg, path, factTypeName(fact)}, fact)
}

// ImportObjectFact decodes the fact recorded for obj into fact, reporting
// whether one was found. fact must be the same pointer type that was
// exported.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	pkg, path, ok := objectFactPath(obj)
	if !ok || p.facts == nil {
		return false
	}
	return p.facts.get(factKey{p.Analyzer.Name, pkg, path, factTypeName(fact)}, fact)
}

// ExportPackageFact records fact for the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.set(factKey{p.Analyzer.Name, p.Pkg.Path(), "", factTypeName(fact)}, fact)
}

// ImportPackageFact decodes the package-level fact of pkgPath into fact.
func (p *Pass) ImportPackageFact(pkgPath string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(factKey{p.Analyzer.Name, pkgPath, "", factTypeName(fact)}, fact)
}

// AllPackageFacts decodes every package-level fact of prototype's type
// recorded by this analyzer across all packages in the set (dependencies
// included), keyed by package path. prototype is not mutated; each value
// is a freshly allocated fact of the same type.
func (p *Pass) AllPackageFacts(prototype Fact) map[string]Fact {
	out := make(map[string]Fact)
	if p.facts == nil {
		return out
	}
	typ := factTypeName(prototype)
	rt := reflect.TypeOf(prototype)
	if rt.Kind() == reflect.Pointer {
		rt = rt.Elem()
	}
	p.facts.mu.Lock()
	keys := make([]factKey, 0, len(p.facts.m))
	for k := range p.facts.m {
		if k.analyzer == p.Analyzer.Name && k.object == "" && k.typ == typ {
			keys = append(keys, k)
		}
	}
	p.facts.mu.Unlock()
	for _, k := range keys {
		fact := reflect.New(rt).Interface().(Fact)
		if p.facts.get(k, fact) {
			out[k.pkg] = fact
		}
	}
	return out
}
