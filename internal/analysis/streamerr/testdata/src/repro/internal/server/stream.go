// Package server is a no-false-positive fixture modeled on the real
// internal/server SAM streamer: checked chunk writes, an error-free
// http.Flusher, in-memory rendering buffers, and stderr diagnostics.
package server

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// flusher mirrors net/http.Flusher: Flush returns no error, so there is
// nothing to drop.
type flusher interface {
	Flush()
}

type samStreamer struct {
	w       io.Writer
	flusher flusher
	header  string
}

func (st *samStreamer) emit(records [][]byte) (int64, error) {
	var written int64
	hn, err := io.WriteString(st.w, st.header)
	written += int64(hn)
	if err != nil {
		return written, err
	}
	for _, rec := range records {
		rn, err := st.w.Write(rec)
		written += int64(rn)
		if err != nil {
			return written, err
		}
		if st.flusher != nil {
			st.flusher.Flush()
		}
	}
	return written, nil
}

func (st *samStreamer) render(rec []byte) []byte {
	var buf bytes.Buffer
	buf.Write(rec)
	buf.WriteByte('\n')
	fmt.Fprintf(&buf, "len=%d", len(rec))
	return buf.Bytes()
}

func logDrop(reason string) {
	fmt.Fprintln(os.Stderr, "dropped:", reason)
}
