package pipeline

import (
	"bufio"
	"fmt"
	"io"
)

func bad(w io.Writer, bw *bufio.Writer) {
	w.Write([]byte("x"))      // want `error from \(io\.Writer\)\.Write is dropped on the stream path`
	bw.Flush()                // want `error from \(\*bufio\.Writer\)\.Flush is dropped`
	fmt.Fprintf(w, "x=%d", 1) // want `error from fmt\.Fprintf is dropped`
	io.WriteString(w, "x")    // want `error from io\.WriteString is dropped`
}

func badDiscards(w io.Writer, bw *bufio.Writer) {
	_ = bw.Flush()       // want `error from \(\*bufio\.Writer\)\.Flush discarded without annotation`
	_, _ = w.Write(nil)  // want `error from \(io\.Writer\)\.Write discarded without annotation`
	n, _ := w.Write(nil) // want `error from \(io\.Writer\)\.Write discarded without annotation`
	_ = n
}

func badDefer(bw *bufio.Writer) {
	defer bw.Flush() // want `deferred \(\*bufio\.Writer\)\.Flush drops its error`
}

func badInErrorFunc(w io.Writer) error {
	w.Write(nil) // want `error from \(io\.Writer\)\.Write is dropped`
	return nil
}

func annotated(bw *bufio.Writer) {
	_ = bw.Flush() //bwalint:ignore streamerr connection teardown, flush is best-effort
}
