// Package a is outside the streaming-path scope: the same dropped writes
// that streamerr flags in internal/pipeline must produce no findings here.
package a

import (
	"bufio"
	"fmt"
	"io"
)

func reportOnly(w io.Writer, bw *bufio.Writer) {
	fmt.Fprintf(w, "summary: %d\n", 1)
	bw.Flush()
}
