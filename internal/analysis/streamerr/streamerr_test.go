package streamerr_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/streamerr"
)

func TestStreamErr(t *testing.T) {
	analysistest.Run(t, "testdata", streamerr.Analyzer,
		"repro/internal/pipeline", // bad cases
		"repro/internal/server",   // no-false-positive streamer
		"a",                       // out of scope: same writes, no findings
	)
}

// TestSuggestedFix checks the mechanical rewrite offered inside functions
// that can return the error.
func TestSuggestedFix(t *testing.T) {
	res := analysistest.Run(t, "testdata", streamerr.Analyzer, "repro/internal/pipeline")
	want := "if _, err := w.Write(nil); err != nil {\n\treturn err\n}"
	for _, d := range res[0].Diags {
		pos := res[0].Unit.Fset.Position(d.Pos)
		inErrorFunc := pos.Line == 28 // the w.Write(nil) in badInErrorFunc
		switch {
		case inErrorFunc:
			if len(d.SuggestedFixes) != 1 {
				t.Fatalf("%s: got %d fixes, want 1", pos, len(d.SuggestedFixes))
			}
			if got := string(d.SuggestedFixes[0].TextEdits[0].NewText); got != want {
				t.Errorf("%s: fix = %q, want %q", pos, got, want)
			}
		case strings.Contains(d.Message, "is dropped"):
			// Enclosing functions without an error result get no fix.
			if len(d.SuggestedFixes) != 0 {
				t.Errorf("%s: unexpected fix outside error-returning function", pos)
			}
		}
	}
}
