// Package streamerr requires every error produced by a streaming write —
// io.Writer Write/WriteString/Flush and friends, fmt.Fprint*, io.Copy —
// to be checked or explicitly, annotatedly discarded. On the SAM
// streaming path a dropped write error turns a disconnected client into
// silent data loss (the PR 2 lesson).
package streamerr

import (
	"bytes"
	"flag"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// scope holds the package-path fragments that make up the streaming path:
// the SAM/FASTA/FASTQ writers, the server and pipeline that drive them,
// the CLI, and the public facades. Report generators (internal/experiments)
// and best-effort diagnostics stay out by default.
var scope = []string{"internal/server", "internal/pipeline", "internal/seq", "internal/gateway", "cmd/bwamem", "cmd/bwagate", "/pkg/"}

var Analyzer = &analysis.Analyzer{
	Name: "streamerr",
	Doc: "require stream write/flush errors to be checked or annotated away\n\n" +
		"On the streaming path (internal/{server,pipeline,seq,gateway},\n" +
		"cmd/{bwamem,bwagate}, pkg/...), calls whose error result reports a\n" +
		"failed write (w.Write,\n" +
		"WriteString, WriteByte, WriteRune, Flush, ReadFrom; fmt.Fprint*;\n" +
		"io.WriteString, io.Copy) must have that error consumed. Discarding is\n" +
		"allowed only with //bwalint:ignore streamerr <reason> on the line.\n" +
		"Writers that cannot fail (bytes.Buffer, strings.Builder) and\n" +
		"os.Stderr diagnostics are exempt.",
	Flags: flags(),
	Run:   run,
}

var scopeFlag string

func flags() *flag.FlagSet {
	fs := flag.NewFlagSet("streamerr", flag.ExitOnError)
	fs.StringVar(&scopeFlag, "scope", strings.Join(scope, ","),
		"comma-separated package-path fragments treated as the streaming path")
	return fs
}

// writerMethods are method names that perform a write on their receiver.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Flush": true, "ReadFrom": true,
}

// writerFuncs maps package-level write functions to the index of their
// writer argument.
var writerFuncs = map[string]int{
	"fmt.Fprint": 0, "fmt.Fprintf": 0, "fmt.Fprintln": 0,
	"io.WriteString": 0, "io.Copy": 0,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range strings.Split(scopeFlag, ",") {
		if s != "" && strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if desc := streamCall(pass, call); desc != "" {
						pass.Report(dropDiag(pass, call, desc, stack))
						return false
					}
				}
			case *ast.DeferStmt:
				if desc := streamCall(pass, n.Call); desc != "" {
					pass.Reportf(n.Pos(), "deferred %s drops its error on the stream path; flush explicitly and check the error before returning", desc)
					return false
				}
			case *ast.GoStmt:
				if desc := streamCall(pass, n.Call); desc != "" {
					pass.Reportf(n.Pos(), "go %s drops its error on the stream path", desc)
					return false
				}
			case *ast.AssignStmt:
				// The error result is the last one; assigning it to
				// blank is a discard and needs an annotation (which the
				// ignore filter then honors).
				if len(n.Rhs) == 1 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						last := n.Lhs[len(n.Lhs)-1]
						if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
							if desc := streamCall(pass, call); desc != "" {
								pass.Reportf(n.Pos(), "error from %s discarded without annotation; check it or add //bwalint:ignore streamerr <reason>", desc)
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// dropDiag builds the diagnostic for a statement-position stream call,
// with a mechanical fix when the enclosing function can return the error.
func dropDiag(pass *analysis.Pass, call *ast.CallExpr, desc string, stack []ast.Node) analysis.Diagnostic {
	d := analysis.Diagnostic{
		Pos: call.Pos(),
		End: call.End(),
		Message: "error from " + desc + " is dropped on the stream path; check it " +
			"or discard explicitly with an annotated _ = (//bwalint:ignore streamerr <reason>)",
	}
	if !enclosingReturnsError(pass, stack) {
		return d
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return d
	}
	blanks := ""
	for i := 0; i < sig.Results().Len()-1; i++ {
		blanks += "_, "
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, call); err == nil {
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: "check the error",
			TextEdits: []analysis.TextEdit{{
				Pos:     call.Pos(),
				End:     call.End(),
				NewText: []byte("if " + blanks + "err := " + buf.String() + "; err != nil {\n\treturn err\n}"),
			}},
		}}
	}
	return d
}

// streamCall reports whether call is a failable stream write whose error
// matters, returning a short description ("(*bufio.Writer).Flush",
// "fmt.Fprintf") or "".
func streamCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return ""
	}
	if sig.Recv() != nil {
		// Method form: w.Write(...), bw.Flush(), ...
		if !writerMethods[fn.Name()] {
			return ""
		}
		if exemptWriter(pass, sel.X) {
			return ""
		}
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + ")." + fn.Name()
	}
	// Package-function form: fmt.Fprintf(w, ...), io.WriteString(w, ...).
	if fn.Pkg() == nil {
		return ""
	}
	qualified := fn.Pkg().Path() + "." + fn.Name()
	argIdx, ok := writerFuncs[qualified]
	if !ok || argIdx >= len(call.Args) {
		return ""
	}
	if exemptWriter(pass, call.Args[argIdx]) {
		return ""
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// enclosingReturnsError reports whether the innermost enclosing function
// has error as its final result, so `return err` is a valid fix.
func enclosingReturnsError(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var t types.Type
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			if obj := pass.TypesInfo.ObjectOf(f.Name); obj != nil {
				t = obj.Type()
			}
		case *ast.FuncLit:
			t = pass.TypesInfo.TypeOf(f)
		default:
			continue
		}
		sig, ok := t.(*types.Signature)
		return ok && lastResultIsError(sig)
	}
	return false
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// exemptWriter reports writers whose Write cannot meaningfully fail:
// in-memory buffers and the process's stderr (best-effort diagnostics).
func exemptWriter(pass *analysis.Pass, w ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(w)
	if analysis.TypeIs(t, "bytes", "Buffer") || analysis.TypeIs(t, "strings", "Builder") ||
		analysis.TypeIs(t, "hash", "Hash") || analysis.TypeIs(t, "hash", "Hash32") ||
		analysis.TypeIs(t, "hash", "Hash64") {
		return true
	}
	if sel, ok := ast.Unparen(w).(*ast.SelectorExpr); ok {
		if obj, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "Stderr" {
			return true
		}
	}
	return false
}
