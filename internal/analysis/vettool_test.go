package analysis_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildBwalint compiles cmd/bwalint once per test binary and returns its path.
func buildBwalint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bwalint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/bwalint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building bwalint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// scratchModule writes a throwaway module (named repro so the path-suffix
// scopes engage) containing one deliberate violation per analyzer family.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.22\n")
	write("internal/core/core.go", `package core

type Prebuilt struct {
	FullSA []int32
}

type MappedIndex struct {
	Prebuilt
}
`)
	write("internal/server/handler.go", `package server

import (
	"context"
	"io"

	"repro/internal/core"
)

func Handle(w io.Writer, mi *core.MappedIndex) {
	ctx := context.Background()
	_ = ctx
	mi.FullSA[0] = 7
	w.Write([]byte("@HD\tVN:1.6\n"))
}
`)
	return dir
}

// TestVettoolFailsOnViolations is the acceptance check from the issue:
// deliberately introducing violations in a scratch package must fail the
// build under go vet -vettool.
func TestVettoolFailsOnViolations(t *testing.T) {
	bin := buildBwalint(t)
	dir := scratchModule(t)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a module with deliberate violations\n%s", out)
	}
	for _, wantFrag := range []string{
		"[bwalint/ctxflow]",
		"[bwalint/mmapalias]",
		"[bwalint/streamerr]",
	} {
		if !bytes.Contains(out, []byte(wantFrag)) {
			t.Errorf("vet output missing %s finding:\n%s", wantFrag, out)
		}
	}
}

// TestVettoolProtocol checks the two handshake queries cmd/go issues before
// trusting a vettool: -V=full and -flags.
func TestVettoolProtocol(t *testing.T) {
	bin := buildBwalint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("-V=full output not in cmd/go's expected shape: %q", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if !bytes.Contains(out, []byte(`"Name"`)) {
		t.Fatalf("-flags did not emit the JSON flag schema: %q", out)
	}
}

// TestStandaloneMode runs bwalint directly (no go vet driver) against the
// scratch module and expects findings plus a non-zero exit.
func TestStandaloneMode(t *testing.T) {
	bin := buildBwalint(t)
	dir := scratchModule(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone bwalint exited 0 on a module with violations\n%s", out)
	}
	if !bytes.Contains(out, []byte("[bwalint/mmapalias]")) {
		t.Errorf("standalone output missing mmapalias finding:\n%s", out)
	}
}

// TestVettoolFactsPropagation is the interprocedural acceptance check:
// a goroleak summary fact computed while vetting internal/util must
// change the diagnostic emitted for its importer, internal/server. The
// spawn is invisible from server's syntax alone — only the fact carried
// through the vetx files can produce the call-site finding.
func TestVettoolFactsPropagation(t *testing.T) {
	bin := buildBwalint(t)
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.22\n")
	write("internal/util/util.go", `package util

// LeakyTick spawns an unbounded goroutine; the summary fact exported
// here is what the importer's diagnostic depends on.
func LeakyTick() {
	go func() {
		for {
		}
	}()
}

// Drain consumes a channel in a loop: a bounded body.
func Drain(ch chan int) {
	for range ch {
	}
}
`)
	write("internal/server/handler.go", `package server

import "repro/internal/util"

func Handle(ch chan int) {
	util.Drain(ch)
	util.LeakyTick()
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed despite cross-package unbounded spawn\n%s", out)
	}
	if !bytes.Contains(out, []byte("[bwalint/goroleak]")) {
		t.Fatalf("vet output missing goroleak call-site finding:\n%s", out)
	}
	if !bytes.Contains(out, []byte("handler.go")) || !bytes.Contains(out, []byte("unbounded spawn in")) {
		t.Errorf("goroleak finding not anchored at the importer's call site:\n%s", out)
	}
	if bytes.Contains(out, []byte("Drain")) {
		t.Errorf("bounded helper Drain wrongly reported:\n%s", out)
	}
}

// TestUnusedIgnoreDirective: a well-formed directive naming an analyzer
// that no longer reports on its lines must itself become a finding.
func TestUnusedIgnoreDirective(t *testing.T) {
	bin := buildBwalint(t)
	dir := scratchModule(t)
	stale := `package server

import "context"

func Scoped(ctx context.Context) context.Context {
	//bwalint:ignore ctxflow historic detachment, since removed
	return ctx
}
`
	if err := os.WriteFile(filepath.Join(dir, "internal", "server", "stale.go"), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, _ := cmd.CombinedOutput()
	if !bytes.Contains(out, []byte("unused ignore directive")) || !bytes.Contains(out, []byte("stale.go")) {
		t.Errorf("stale ignore directive not reported by the unused audit:\n%s", out)
	}
}

// TestMalformedDirective: an ignore directive with no reason must itself be
// reported and must not suppress the finding it rides on.
func TestMalformedDirective(t *testing.T) {
	bin := buildBwalint(t)
	dir := scratchModule(t)
	bad := `package server

import "context"

func Drain() {
	ctx := context.Background() //bwalint:ignore ctxflow
	_ = ctx
}
`
	if err := os.WriteFile(filepath.Join(dir, "internal", "server", "drain.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, _ := cmd.CombinedOutput()
	if !bytes.Contains(out, []byte("malformed")) {
		t.Errorf("reason-less ignore directive not reported as malformed:\n%s", out)
	}
	if !bytes.Contains(out, []byte("drain.go")) || !bytes.Contains(out, []byte("[bwalint/ctxflow]")) {
		t.Errorf("reason-less directive suppressed the finding it rides on:\n%s", out)
	}
}
