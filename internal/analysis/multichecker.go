package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// driverOptions are the suite-level (not per-analyzer) knobs shared by
// both drivers. The baseline flag is forwarded by `go vet` (it appears in
// the -flags handshake); the fix/diff/update flags are standalone-only.
type driverOptions struct {
	baselinePath   string
	updateBaseline bool
	driftOut       string
	fix            bool
	diff           bool
}

// Main is the entry point shared by cmd/bwalint's two modes:
//
//	bwalint [packages]          standalone: load from source and report
//	go vet -vettool=bwalint     build-system mode: -V=full, -flags, *.cfg
//
// It parses flags (exposing each analyzer's flags as -<name>.<flag>),
// dispatches, and exits the process.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [package pattern ...]\n", progname)
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v %s) [packages]\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		fs.PrintDefaults()
	}
	versionFlag := fs.String("V", "", "print version information (the go command passes -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flags in JSON (for the go command)")
	opts := new(driverOptions)
	fs.StringVar(&opts.baselinePath, "baseline", "", "tolerate the findings recorded in this baseline file; new findings and stale entries fail (ratchet)")
	fs.BoolVar(&opts.updateBaseline, "update-baseline", false, "rewrite the -baseline file from current findings (standalone mode only)")
	fs.StringVar(&opts.driftOut, "drift-out", "", "when the -baseline ratchet fires, write the would-be baseline here (standalone mode only)")
	fs.BoolVar(&opts.fix, "fix", false, "apply suggested fixes in place (standalone mode only)")
	fs.BoolVar(&opts.diff, "diff", false, "print suggested fixes as a diff without applying them (standalone mode only)")
	for _, a := range analyzers {
		if a.Flags == nil {
			continue
		}
		name := a.Name
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, name+"."+f.Name, f.Usage)
		})
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		printVersion(progname)
		os.Exit(0)
	}
	if *flagsFlag {
		printFlagsJSON(fs)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		RunUnit(args[0], analyzers, opts) // exits
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	runStandalone(args, analyzers, opts) // exits
}

// printVersion implements -V=full in the form the go command's build-ID
// machinery requires of a vettool ("<name> version devel ... buildID=<id>");
// hashing the executable makes rebuilt linters invalidate vet's cache.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// printFlagsJSON implements -flags: the go command asks the vettool to
// enumerate its flags so it can forward user-supplied ones. The
// standalone-only flags are withheld so `go vet` cannot trigger modes the
// per-package protocol does not support.
func printFlagsJSON(fs *flag.FlagSet) {
	standaloneOnly := map[string]bool{"update-baseline": true, "drift-out": true, "fix": true, "diff": true}
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" || standaloneOnly[f.Name] {
			return
		}
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.Marshal(flags)
	if err != nil {
		fatalf("%v", err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// knownNames returns the analyzer-name set used to validate ignore
// directives.
func knownNames(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

func runStandalone(patterns []string, analyzers []*Analyzer, opts *driverOptions) {
	targets, all, err := Load(".", patterns)
	if err != nil {
		fatalf("%v", err)
	}
	var baseline *Baseline
	if opts.baselinePath != "" {
		if baseline, err = LoadBaseline(opts.baselinePath); err != nil {
			fatalf("%v", err)
		}
	}

	facts := NewFactSet()
	isTarget := make(map[*Unit]bool, len(targets))
	for _, u := range targets {
		isTarget[u] = true
	}
	for _, u := range all {
		u.Facts = facts
	}

	if len(all) == 0 {
		os.Exit(0)
	}
	known := knownNames(analyzers)
	var diags []ResolvedDiag     // surviving findings, in unit order
	var tolerated []ResolvedDiag // baseline-matched findings (still fixable)
	fset := all[0].Fset          // every unit of a Load shares one fset

	// One pass over the closure, dependencies first: fact-only runs on
	// dependencies, full runs on targets (whose fact exports happen as a
	// side effect of the normal run).
	for _, u := range all {
		if !isTarget[u] {
			if u.Std {
				continue
			}
			for _, a := range analyzers {
				if err := u.RunFacts(a); err != nil {
					fatalf("%s: %s (facts): %v", u.Pkg.Path(), a.Name, err)
				}
			}
			continue
		}
		for _, d := range u.DirectiveDiagnostics() {
			diags = append(diags, ResolvedDiag{Analyzer: "bwalint", Diag: d})
		}
		for _, a := range analyzers {
			ds, err := u.Run(a)
			if err != nil {
				fatalf("%s: %s: %v", u.Pkg.Path(), a.Name, err)
			}
			for _, d := range ds {
				rd := ResolvedDiag{Analyzer: a.Name, Diag: d}
				file := ModuleRelative(u.Fset.Position(d.Pos).Filename)
				if baseline.Match(file, a.Name, d.Message) {
					tolerated = append(tolerated, rd)
					continue
				}
				diags = append(diags, rd)
			}
		}
		for _, d := range u.UnusedDirectiveDiagnostics(known) {
			diags = append(diags, ResolvedDiag{Analyzer: "bwalint", Diag: d})
		}
	}

	if opts.updateBaseline {
		if opts.baselinePath == "" {
			fatalf("-update-baseline requires -baseline")
		}
		entries := baselineEntries(fset, diags, tolerated, baseline)
		if err := WriteBaseline(opts.baselinePath, entries); err != nil {
			fatalf("writing baseline: %v", err)
		}
		fmt.Fprintf(os.Stderr, "bwalint: wrote %d baseline entries to %s\n", len(entries), opts.baselinePath)
		os.Exit(0)
	}

	if opts.fix || opts.diff {
		fixable := append(append([]ResolvedDiag{}, diags...), tolerated...)
		n, files, err := ApplyFixes(fset, fixable, opts.diff, os.Stdout)
		if err != nil {
			fatalf("applying fixes: %v", err)
		}
		verb := "applied"
		if opts.diff {
			verb = "proposed"
		}
		fmt.Fprintf(os.Stderr, "bwalint: %s %d fixes in %d files\n", verb, n, files)
		if opts.fix {
			// Re-running after a fix pass reports what remains; this
			// process's positions are stale once files changed.
			os.Exit(0)
		}
	}

	exit := 0
	for _, rd := range diags {
		printDiag(os.Stderr, fset, rd.Analyzer, rd.Diag)
		exit = 1
	}
	stale := baseline.Stale(nil)
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "%s: stale baseline entry (%s: %q no longer reported): remove it from %s [bwalint/baseline]\n",
			e.File, e.Analyzer, e.Message, opts.baselinePath)
		exit = 1
	}
	if exit != 0 && opts.driftOut != "" && baseline != nil {
		entries := baselineEntries(fset, diags, tolerated, baseline)
		if err := WriteBaseline(opts.driftOut, entries); err != nil {
			fatalf("writing drift baseline: %v", err)
		}
		fmt.Fprintf(os.Stderr, "bwalint: ratchet fired; would-be baseline written to %s\n", opts.driftOut)
	}
	os.Exit(exit)
}

// baselineEntries builds the baseline matching the current findings,
// preserving reviewed reasons from the previous baseline where the entry
// is unchanged.
func baselineEntries(fset *token.FileSet, diags, tolerated []ResolvedDiag, prev *Baseline) []BaselineEntry {
	reasons := make(map[BaselineEntry]string)
	if prev != nil {
		for _, e := range prev.Entries {
			key := e
			key.Reason = ""
			reasons[key] = e.Reason
		}
	}
	var entries []BaselineEntry
	for _, rd := range append(append([]ResolvedDiag{}, diags...), tolerated...) {
		if rd.Analyzer == "bwalint" {
			continue // directive hygiene is never baselined
		}
		e := BaselineEntry{
			File:     ModuleRelative(fset.Position(rd.Diag.Pos).Filename),
			Analyzer: rd.Analyzer,
			Hash:     HashMessage(rd.Diag.Message),
			Message:  rd.Diag.Message,
		}
		if r, ok := reasons[e]; ok && r != "" {
			e.Reason = r
		} else {
			e.Reason = "UNREVIEWED: fix the finding or replace this with a justification"
		}
		entries = append(entries, e)
	}
	return entries
}
