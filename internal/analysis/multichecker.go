package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Main is the entry point shared by cmd/bwalint's two modes:
//
//	bwalint [packages]          standalone: load from source and report
//	go vet -vettool=bwalint     build-system mode: -V=full, -flags, *.cfg
//
// It parses flags (exposing each analyzer's flags as -<name>.<flag>),
// dispatches, and exits the process.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [package pattern ...]\n", progname)
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v %s) [packages]\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		fs.PrintDefaults()
	}
	versionFlag := fs.String("V", "", "print version information (the go command passes -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flags in JSON (for the go command)")
	for _, a := range analyzers {
		if a.Flags == nil {
			continue
		}
		name := a.Name
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, name+"."+f.Name, f.Usage)
		})
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		printVersion(progname)
		os.Exit(0)
	}
	if *flagsFlag {
		printFlagsJSON(fs)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		RunUnit(args[0], analyzers) // exits
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	runStandalone(args, analyzers) // exits
}

// printVersion implements -V=full in the form the go command's build-ID
// machinery requires of a vettool ("<name> version devel ... buildID=<id>");
// hashing the executable makes rebuilt linters invalidate vet's cache.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// printFlagsJSON implements -flags: the go command asks the vettool to
// enumerate its flags so it can forward user-supplied ones.
func printFlagsJSON(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.Marshal(flags)
	if err != nil {
		fatalf("%v", err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func runStandalone(patterns []string, analyzers []*Analyzer) {
	units, err := Load(".", patterns)
	if err != nil {
		fatalf("%v", err)
	}
	exit := 0
	for _, unit := range units {
		for _, d := range unit.DirectiveDiagnostics() {
			printDiag(os.Stderr, unit.Fset, "bwalint", d)
			exit = 1
		}
		for _, a := range analyzers {
			diags, err := unit.Run(a)
			if err != nil {
				fatalf("%s: %s: %v", unit.Pkg.Path(), a.Name, err)
			}
			for _, d := range diags {
				printDiag(os.Stderr, unit.Fset, a.Name, d)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
