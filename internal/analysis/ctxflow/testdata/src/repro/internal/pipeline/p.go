package pipeline

import "context"

func Run(s string) error {
	ctx := context.Background() // want `context\.Background\(\) in request-path package repro/internal/pipeline`
	return RunOn(ctx, s)
}

func RunOn(ctx context.Context, s string) error {
	if err := step(context.TODO(), s); err != nil { // want `context\.TODO\(\) in request-path package`
		return err
	}
	return step(nil, s) // want `nil Context passed on the request path`
}

func nested(ctx context.Context) {
	go func() {
		_ = step(context.Background(), "x") // want `context\.Background\(\) in request-path package`
	}()
}

func shutdownDrain() {
	//bwalint:ignore ctxflow drain runs after every request context is gone
	_ = step(context.Background(), "drain")
}

func step(ctx context.Context, s string) error {
	_ = ctx
	_ = s
	return nil
}
