// Package experiments is outside the request path, so minting a root
// context is fine here.
package experiments

import "context"

func Offline() context.Context {
	return context.Background()
}
