package ctxflow_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"repro/internal/pipeline", "repro/internal/experiments")
}

// TestSuggestedFix checks the mechanical rewrite: a context.TODO() inside
// a function with a ctx parameter suggests replacing the call with ctx.
func TestSuggestedFix(t *testing.T) {
	res := analysistest.Run(t, "testdata", ctxflow.Analyzer, "repro/internal/pipeline")
	found := false
	for _, d := range res[0].Diags {
		if !strings.Contains(d.Message, "context.TODO()") {
			continue
		}
		found = true
		if len(d.SuggestedFixes) != 1 {
			t.Fatalf("TODO diagnostic: got %d fixes, want 1", len(d.SuggestedFixes))
		}
		edit := d.SuggestedFixes[0].TextEdits[0]
		if got := string(edit.NewText); got != "ctx" {
			t.Errorf("fix rewrites to %q, want \"ctx\"", got)
		}
	}
	if !found {
		t.Fatal("no context.TODO() diagnostic found")
	}
	// The Background() in Run has no ctx in scope: no fix offered.
	for _, d := range res[0].Diags {
		if strings.Contains(d.Message, "Background") && strings.Contains(d.Message, "repro/internal/pipeline") {
			pos := res[0].Unit.Fset.Position(d.Pos)
			if pos.Line == 6 && len(d.SuggestedFixes) != 0 {
				t.Errorf("Background() with no ctx in scope offered a fix: %v", d.SuggestedFixes)
			}
		}
	}
}
