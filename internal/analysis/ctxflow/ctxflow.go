// Package ctxflow flags context plumbing violations in request-path
// packages: fresh context.Background()/context.TODO() roots and nil
// Contexts where the caller's ctx should flow, so cancellation and
// deadlines propagate end to end (PR 2 contract).
package ctxflow

import (
	"flag"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// scope holds the package-path fragments that mark request-path code.
var scope = []string{"internal/server", "internal/pipeline", "internal/rescache", "internal/gateway", "cmd/bwagate", "/pkg/"}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require request-path code to plumb its caller's context\n\n" +
		"In internal/{server,pipeline,rescache,gateway}, cmd/bwagate, and\n" +
		"pkg/..., non-test code must\n" +
		"not mint context.Background()/context.TODO() (it detaches the work from\n" +
		"request cancellation and deadlines) or pass a nil Context. Deliberate\n" +
		"detachment (shutdown paths, context-free compatibility wrappers) must\n" +
		"say so: //bwalint:ignore ctxflow <reason>.",
	Flags: flags(),
	Run:   run,
}

var scopeFlag string

func flags() *flag.FlagSet {
	fs := flag.NewFlagSet("ctxflow", flag.ExitOnError)
	fs.StringVar(&scopeFlag, "scope", strings.Join(scope, ","),
		"comma-separated package-path fragments treated as request-path code")
	return fs
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range strings.Split(scopeFlag, ",") {
		if s != "" && strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := contextRoot(pass, call); name != "" {
				d := analysis.Diagnostic{
					Pos: call.Pos(),
					End: call.End(),
					Message: "context." + name + "() in request-path package " + pass.Pkg.Path() +
						" detaches work from request cancellation; plumb the caller's ctx",
				}
				if ctxParam := enclosingCtxParam(pass, stack); ctxParam != "" {
					d.SuggestedFixes = []analysis.SuggestedFix{{
						Message: "use the in-scope context " + ctxParam,
						TextEdits: []analysis.TextEdit{{
							Pos: call.Pos(), End: call.End(), NewText: []byte(ctxParam),
						}},
					}}
				}
				pass.Report(d)
			}
			reportNilContextArgs(pass, call)
			return true
		})
	}
	return nil
}

// contextRoot returns "Background" or "TODO" when call is a direct call
// of that context-package function.
func contextRoot(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// reportNilContextArgs flags literal nil arguments in context.Context
// parameter positions.
func reportNilContextArgs(pass *analysis.Pass, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" || pass.TypesInfo.ObjectOf(id) != types.Universe.Lookup("nil") {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 || pi >= sig.Params().Len() {
			continue
		}
		if isContextType(sig.Params().At(pi).Type()) {
			pass.Reportf(arg.Pos(), "nil Context passed on the request path; use the caller's ctx (or document detachment with context.WithoutCancel)")
		}
	}
}

// enclosingCtxParam finds the nearest enclosing function declaration or
// literal with a named context.Context parameter and returns its name.
func enclosingCtxParam(pass *analysis.Pass, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name
				}
			}
		}
	}
	return ""
}

func isContextType(t types.Type) bool {
	return t != nil && types.TypeString(t, nil) == "context.Context"
}
