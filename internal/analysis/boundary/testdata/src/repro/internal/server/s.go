// Package server is an analysistest stub of the restricted engine package.
package server

func Serve() {}
