package main

import "repro/internal/server" // want `repro/examples/bad imports engine package repro/internal/server`

func main() { server.Serve() }
