package main

import "repro/internal/server" // want `repro/cmd/debugtool imports engine package repro/internal/server`

func main() { server.Serve() }
