// allowedtool models a cmd on the explicit -boundary.allow list.
package main

import "repro/internal/server"

func main() { server.Serve() }
