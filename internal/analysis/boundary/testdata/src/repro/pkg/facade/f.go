// Package facade sits under pkg/ and may wrap the engine.
package facade

import "repro/internal/server"

func Serve() { server.Serve() }
