// Package boundary enforces the PR 5 facade rule in the import graph:
// the alignment engine's internal packages are reachable only through the
// pkg/ facades, other internal/ code, and an explicit allowlist, so the
// golden API-surface test is no longer the only tripwire.
package boundary

import (
	"flag"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "boundary",
	Doc: "enforce the pkg/ facade rule on the import graph\n\n" +
		"Nothing outside pkg/..., internal/..., and the -boundary.allow list may\n" +
		"import the engine packages (internal/pipeline, internal/server,\n" +
		"internal/core, internal/gateway by default): cmd binaries and examples\n" +
		"go through the pkg/bwamem and pkg/bwaclient facades so the wire and Go\n" +
		"API surfaces stay the versioned ones. cmd/bwagate is allowed by\n" +
		"default: it is the gateway tier's dedicated binary and internal/gateway\n" +
		"has no pkg/ facade.",
	Flags: flags(),
	Run:   run,
}

var (
	restrictedFlag string
	allowedFlag    string
	allowFlag      string
)

func flags() *flag.FlagSet {
	fs := flag.NewFlagSet("boundary", flag.ExitOnError)
	fs.StringVar(&restrictedFlag, "restricted",
		"repro/internal/pipeline,repro/internal/server,repro/internal/core,repro/internal/gateway",
		"comma-separated packages only importable behind the facade")
	fs.StringVar(&allowedFlag, "allowed", "repro/internal,repro/pkg",
		"comma-separated package-path prefixes exempt from the facade rule")
	fs.StringVar(&allowFlag, "allow", "repro/cmd/bwagate",
		"comma-separated extra packages (e.g. cmd tools) allowed to import restricted packages")
	return fs
}

func run(pass *analysis.Pass) error {
	// Strip the " [foo.test]" disambiguator the build system appends to
	// test variants of a package path.
	pkgPath, _, _ := strings.Cut(pass.Pkg.Path(), " ")
	for _, prefix := range splitList(allowedFlag) {
		if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
			return nil
		}
	}
	for _, allowed := range splitList(allowFlag) {
		if pkgPath == allowed {
			return nil
		}
	}
	restricted := splitList(restrictedFlag)
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, r := range restricted {
				if path == r {
					pass.Reportf(imp.Pos(),
						"%s imports engine package %s: only pkg/ facades and internal/ code may (facade rule); use pkg/bwamem / pkg/bwaclient or add the importer to -boundary.allow",
						pkgPath, path)
				}
			}
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
