package boundary_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/boundary"
)

func TestBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", boundary.Analyzer,
		"repro/examples/bad", "repro/pkg/facade", "repro/cmd/debugtool")
}

// TestAllowlist checks that the explicit cmd allowlist exempts a package
// from the facade rule.
func TestAllowlist(t *testing.T) {
	if err := boundary.Analyzer.Flags.Set("allow", "repro/cmd/allowedtool"); err != nil {
		t.Fatal(err)
	}
	defer boundary.Analyzer.Flags.Set("allow", "")
	analysistest.Run(t, "testdata", boundary.Analyzer, "repro/cmd/allowedtool")
}
