package suite_test

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/analysis/suite"
)

// TestAnalyzerNamesSortedUnique pins the registry's own invariants:
// stable order, unique names (directive matching and baseline entries
// key on them).
func TestAnalyzerNamesSortedUnique(t *testing.T) {
	as := suite.Analyzers()
	if len(as) == 0 {
		t.Fatal("empty suite")
	}
	seen := map[string]bool{}
	var names []string
	for _, a := range as {
		if a.Name == "" {
			t.Fatal("analyzer with empty name")
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		names = append(names, a.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("suite.Analyzers() not in alphabetical order: %v", names)
	}
}

// TestREADMETableMatchesSuite drift-locks the README analyzer table to
// the registered suite, in both directions: every registered analyzer
// has a row, and every row names a registered analyzer.
func TestREADMETableMatchesSuite(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	// Table rows are "| `name` | contract |"; the repo-layout table's
	// first cells all contain '/' or spaces, so a bare lowercase word is
	// unambiguous.
	rowRE := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")
	inTable := map[string]bool{}
	for _, m := range rowRE.FindAllStringSubmatch(string(data), -1) {
		if inTable[m[1]] {
			t.Errorf("README analyzer table lists %q twice", m[1])
		}
		inTable[m[1]] = true
	}
	registered := map[string]bool{}
	for _, a := range suite.Analyzers() {
		registered[a.Name] = true
		if !inTable[a.Name] {
			t.Errorf("analyzer %q registered in suite but missing from the README analyzer table", a.Name)
		}
	}
	for name := range inTable {
		if !registered[name] {
			t.Errorf("README analyzer table lists %q, which is not registered in suite.Analyzers()", name)
		}
	}
}
