// Package suite is the single registry of bwalint analyzers. Every
// driver (cmd/bwalint standalone, go vet -vettool, tests) must take its
// analyzer list from Analyzers so that the binary, the docs drift test,
// and the unused-directive audit all agree on what "all analyzers"
// means.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/boundary"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/mmapalias"
	"repro/internal/analysis/streamerr"
)

// Analyzers returns the full bwalint suite in stable (alphabetical)
// order. Callers must not mutate the returned slice's Analyzer values.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		boundary.Analyzer,
		ctxflow.Analyzer,
		goroleak.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		mmapalias.Analyzer,
		streamerr.Analyzer,
	}
}
