package a

import "repro/internal/core"

func bad(pi *core.Prebuilt, mi *core.MappedIndex) {
	pi.FullSA[0] = 1              // want `write into pi\.FullSA, which may alias the read-only index mapping`
	pi.Ref.Pac[2] = 0xff          // want `write into pi\.Ref\.Pac`
	mi.BWT.B0[0] |= 1             // want `write into mi\.BWT\.B0`
	mi.FullSA[3] = 9              // want `write into mi\.FullSA`
	_ = append(pi.FullSA, 9)      // want `append to pi\.FullSA`
	copy(pi.Ref.Pac, []byte("x")) // want `copy into pi\.Ref\.Pac`
	clear(mi.BWT.B0)              // want `clear of mi\.BWT\.B0`
}

func taintedLocals(pi *core.Prebuilt, mi *core.MappedIndex) {
	sa := pi.FullSA
	sa[1] = 2 // want `write into sa`
	ref := mi.Ref
	ref.Pac[0] = 1 // want `write into ref\.Pac`
	sub := sa[2:4]
	sub[0] = 3 // want `write into sub`
}

func ignored(pi *core.Prebuilt) {
	//bwalint:ignore mmapalias caller guarantees a heap-loaded index it owns
	pi.FullSA[0] = 1
}

func good(pi *core.Prebuilt, mi *core.MappedIndex) int32 {
	fresh := append([]int32(nil), pi.FullSA...)
	fresh[0] = 7
	pac := make([]byte, len(mi.Ref.Pac))
	copy(pac, mi.Ref.Pac)
	pac[0] = 4
	local := []byte{1, 2}
	local[0] = 3
	return pi.FullSA[0] + int32(pi.BWT.B0[0])
}
