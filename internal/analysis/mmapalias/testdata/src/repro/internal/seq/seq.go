// Package seq is an analysistest stub of the real repro/internal/seq.
package seq

// Reference mirrors the real type's aliasing-relevant shape.
type Reference struct {
	Pac  []byte
	Name string
}
