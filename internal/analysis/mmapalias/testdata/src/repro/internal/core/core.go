// Package core is an analysistest stub of the real repro/internal/core:
// the two root types whose reachable slices may alias a read-only mapping.
package core

import (
	"repro/internal/bwt"
	"repro/internal/seq"
)

type Prebuilt struct {
	Ref    *seq.Reference
	BWT    *bwt.BWT
	FullSA []int32
}

type MappedIndex struct {
	Prebuilt
	Path string
}
