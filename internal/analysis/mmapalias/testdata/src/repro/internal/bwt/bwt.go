// Package bwt is an analysistest stub of the real repro/internal/bwt.
package bwt

// BWT mirrors the real type's aliasing-relevant shape.
type BWT struct {
	N  int
	B0 []byte
}
