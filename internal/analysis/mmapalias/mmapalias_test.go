package mmapalias_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mmapalias"
)

func TestMmapAlias(t *testing.T) {
	analysistest.Run(t, "testdata", mmapalias.Analyzer, "a")
}
