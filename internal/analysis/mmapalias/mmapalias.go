// Package mmapalias flags writes through index data that may alias a
// read-only memory mapping, enforcing the core.MappedIndex lifetime
// contract at build time instead of as a runtime SIGBUS.
package mmapalias

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// aliasedFields are the slice fields reachable from core.MappedIndex /
// core.Prebuilt that alias the mapping in mmap mode: the packed reference
// (Ref.Pac), the BWT column (BWT.B0), and the suffix array (FullSA). The
// occurrence tables alias too, but their slices are unexported and so
// unwritable outside fmindex by construction.
var aliasedFields = map[string]bool{"Pac": true, "B0": true, "FullSA": true}

var Analyzer = &analysis.Analyzer{
	Name: "mmapalias",
	Doc: "reject writes into index slices that may alias a read-only mmap\n\n" +
		"Any []byte/[]int32 reached from a core.Prebuilt or core.MappedIndex —\n" +
		"pi.Ref.Pac, pi.BWT.B0, pi.FullSA — may alias a PROT_READ mapping, so\n" +
		"element stores, append, and copy-into are build failures. Data must be\n" +
		"copied out before mutation. Applies to non-test files everywhere; use\n" +
		"//bwalint:ignore mmapalias <reason> for code that provably owns a heap\n" +
		"copy.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		tainted := taintedObjects(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && aliasedSlice(pass, tainted, idx.X) {
						pass.Reportf(lhs.Pos(), "write into %s, which may alias the read-only index mapping (core.MappedIndex contract); copy the slice before mutating", types.ExprString(idx.X))
					}
				}
			case *ast.CallExpr:
				switch calleeName(pass, n) {
				case "append":
					if len(n.Args) > 0 && aliasedSlice(pass, tainted, n.Args[0]) {
						pass.Reportf(n.Pos(), "append to %s, which may alias the read-only index mapping; build a fresh slice instead", types.ExprString(n.Args[0]))
					}
				case "copy":
					if len(n.Args) > 0 && aliasedSlice(pass, tainted, n.Args[0]) {
						pass.Reportf(n.Pos(), "copy into %s, which may alias the read-only index mapping", types.ExprString(n.Args[0]))
					}
				case "clear":
					if len(n.Args) > 0 && aliasedSlice(pass, tainted, n.Args[0]) {
						pass.Reportf(n.Pos(), "clear of %s, which may alias the read-only index mapping", types.ExprString(n.Args[0]))
					}
				}
			}
			return true
		})
	}
	return nil
}

// calleeName returns the name of a builtin callee, or "".
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}

// isRootType reports whether t is core.MappedIndex or core.Prebuilt
// (possibly behind a pointer).
func isRootType(t types.Type) bool {
	return analysis.TypeIs(t, "internal/core", "MappedIndex") ||
		analysis.TypeIs(t, "internal/core", "Prebuilt")
}

// aliasedSlice reports whether e denotes one of the aliased slices: a
// selector chain ending in an aliased field and rooted (possibly through
// intermediate fields, indexing, or a tainted local) at a Prebuilt or
// MappedIndex.
func aliasedSlice(pass *analysis.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if !aliasedFields[e.Sel.Name] {
			return false
		}
		if _, ok := pass.TypesInfo.TypeOf(e).(*types.Slice); !ok {
			return false
		}
		return rooted(pass, tainted, e.X)
	case *ast.Ident:
		return tainted[pass.TypesInfo.ObjectOf(e)]
	case *ast.IndexExpr:
		return aliasedSlice(pass, tainted, e.X)
	case *ast.SliceExpr:
		return aliasedSlice(pass, tainted, e.X)
	}
	return false
}

// rooted reports whether e's selector/index chain contains a value of a
// root index type or a tainted local.
func rooted(pass *analysis.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	for {
		e = ast.Unparen(e)
		if isRootType(pass.TypesInfo.TypeOf(e)) {
			return true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return tainted[pass.TypesInfo.ObjectOf(x)]
		default:
			return false
		}
	}
}

// taintedObjects collects locals bound to an aliased slice or to a struct
// reached from a root (sa := pi.FullSA; ref := pi.Ref), iterating to a
// fixed point so chains of rebinding are followed. The analysis is flow-
// insensitive: rebinding a tainted name to a fresh slice does not clear
// it, which errs on the side of the contract.
func taintedObjects(pass *analysis.Pass, file *ast.File) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	for {
		added := false
		bind := func(lhs, rhs ast.Expr) {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil || tainted[obj] {
				return
			}
			if aliasedSlice(pass, tainted, rhs) || rooted(pass, tainted, rhs) {
				tainted[obj] = true
				added = true
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						bind(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
		if !added {
			return tainted
		}
	}
}
