// Package hotalloc polices allocation in regions explicitly marked hot.
// The kernels this repo reproduces (banded Smith-Waterman batches,
// FM-index occurrence counting, SMEM generation) live or die by memory
// behavior — §3 of the paper is one long exercise in removing hidden
// allocation and pointer chasing — so the hot loops carry a
//
//	//bwalint:hot
//
// directive (on the function's doc comment for whole-function regions,
// or on/above a for/range statement for a single loop), and inside those
// regions the analyzer flags the Go constructs that allocate or defeat
// the hardware behind the kernel's back:
//
//   - composite literals whose address escapes (&T{...}) and new(T),
//   - implicit interface conversions (boxing) at call arguments and
//     explicit conversions to interface types,
//   - closure literals (the closure header allocates; captures pin
//     their variables to the heap),
//   - append to a slice that demonstrably starts at zero capacity
//     (declared var, nil, or empty literal — origins are traced through
//     the def-use index, so scratch-buffer reslices and parameters are
//     exempt), with a mechanical make(..., 0, len(src)) SuggestedFix
//     when the growth is driven by a range loop, and
//   - map iteration (randomized order defeats prefetching; the paper's
//     kernels iterate dense arrays for a reason).
//
// The directive is a claim ("this region is measured hot"), the
// diagnostics are the audit of that claim. Code outside hot regions is
// never reported.
package hotalloc

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// hotDirective is the region marker. Text after the marker is a free-form
// justification ("//bwalint:hot smem backward pass").
const hotDirective = "//bwalint:hot"

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "report hidden allocation (escaping composites, interface boxing, closures, zero-capacity append growth, map iteration) inside //bwalint:hot regions",
	Run:  run,
}

// A region is one marked subtree plus the function it lives in (the
// def-use scope for append-origin tracing).
type region struct {
	root ast.Node
	fn   *ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, reported: make(map[token.Pos]bool)}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		hotLines := hotLines(pass.Fset, file)
		if len(hotLines) == 0 {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if c.funcIsHot(fd, hotLines) {
				c.checkRegion(region{root: fd.Body, fn: fd})
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					line := pass.Fset.Position(n.Pos()).Line
					if hotLines[line] || hotLines[line-1] {
						c.checkRegion(region{root: n, fn: fd})
						return false // inner loops are part of this region
					}
				}
				return true
			})
		}
	}
	return nil
}

// hotLines indexes the lines carrying a hot directive in one file.
func hotLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, cmt := range cg.List {
			if cmt.Text == hotDirective || strings.HasPrefix(cmt.Text, hotDirective+" ") {
				lines[fset.Position(cmt.Pos()).Line] = true
			}
		}
	}
	return lines
}

func (c *checker) funcIsHot(fd *ast.FuncDecl, hotLines map[int]bool) bool {
	if fd.Doc != nil {
		for _, cmt := range fd.Doc.List {
			if cmt.Text == hotDirective || strings.HasPrefix(cmt.Text, hotDirective+" ") {
				return true
			}
		}
	}
	line := c.pass.Fset.Position(fd.Pos()).Line
	return hotLines[line] || hotLines[line-1]
}

type checker struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) reportDiag(d analysis.Diagnostic) {
	if c.reported[d.Pos] {
		return
	}
	c.reported[d.Pos] = true
	c.pass.Report(d)
}

func (c *checker) checkRegion(r region) {
	info := c.pass.TypesInfo
	du := analysis.FuncDefUse(info, r.fn.Body)
	ast.Inspect(r.root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "closure literal in hot region: the closure header allocates and captures pin their variables to the heap; hoist it out of the region")
			return false // its body runs on the closure's schedule, not the region's
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n.Pos(), "escaping composite literal in hot region: &%s allocates per execution; reuse a scratch value", typeLabel(info, n.X))
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Map); ok {
					c.report(n.Pos(), "map iteration in hot region: randomized order defeats prefetching; iterate a dense slice instead")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n, du, r)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr, du *analysis.DefUse, r region) {
	info := c.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion: flag T(x) when T is an interface and x is
		// concrete.
		if types.IsInterface(types.Unalias(tv.Type)) && len(call.Args) == 1 && concrete(info, call.Args[0]) {
			c.report(call.Pos(), "interface conversion in hot region: %s boxes its operand onto the heap", typeLabel(info, call.Fun))
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && info.ObjectOf(id) == types.Universe.Lookup("new") {
		c.report(call.Pos(), "new(...) in hot region allocates per execution; reuse a scratch value")
		return
	}
	if isBuiltinAppend(info, call) {
		c.checkAppend(call, du, r)
		return
	}
	sig, ok := types.Unalias(info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a []T passed through ... does not box per element
			}
			param = types.Unalias(sig.Params().At(sig.Params().Len() - 1).Type()).(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if types.IsInterface(types.Unalias(param)) && concrete(info, arg) {
			c.report(arg.Pos(), "implicit interface conversion in hot region: %s is boxed into %s at this call", typeLabel(info, arg), types.TypeString(param, types.RelativeTo(c.pass.Pkg)))
		}
	}
}

// checkAppend flags append calls whose destination slice demonstrably
// starts with zero capacity.
func (c *checker) checkAppend(call *ast.CallExpr, du *analysis.DefUse, r region) {
	if len(call.Args) < 2 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	if obj.Pos() < r.fn.Body.Pos() || obj.Pos() >= r.fn.Body.End() {
		return // parameter, receiver, or outer-scope slice: capacity unknown
	}
	vals, _ := du.ValuesOf(obj)
	for _, v := range vals {
		if isAppendCall(c.pass.TypesInfo, v) {
			continue // self-growth, not an origin
		}
		if !zeroCapOrigin(c.pass.TypesInfo, v) {
			return // some origin provides capacity (make, reslice, call, ...)
		}
	}
	d := analysis.Diagnostic{
		Pos: call.Pos(),
		Message: fmt.Sprintf("append grows %s from zero capacity in hot region: every growth reallocates and copies; preallocate with make(%s, 0, n)",
			id.Name, types.TypeString(obj.Type(), types.RelativeTo(c.pass.Pkg))),
	}
	if fix := c.preallocFix(call, obj, r); fix != nil {
		d.SuggestedFixes = []analysis.SuggestedFix{*fix}
	}
	c.reportDiag(d)
}

// preallocFix builds the mechanical rewrite for the simple case: the
// append is driven by a range over a side-effect-free expression, and the
// slice was declared by a bare single-name `var x []T` in the same
// function — the declaration becomes `x := make([]T, 0, len(src))`.
func (c *checker) preallocFix(call *ast.CallExpr, obj *types.Var, r region) *analysis.SuggestedFix {
	var src ast.Expr
	for _, n := range walkPath(r.fn.Body, call.Pos()) {
		// Innermost enclosing range wins: the path is outermost-first.
		if rng, ok := n.(*ast.RangeStmt); ok {
			switch ast.Unparen(rng.X).(type) {
			case *ast.Ident, *ast.SelectorExpr:
				if t := c.pass.TypesInfo.TypeOf(rng.X); t != nil {
					switch types.Unalias(t).Underlying().(type) {
					case *types.Slice, *types.Array, *types.Pointer:
						src = rng.X
					}
				}
			}
		}
	}
	if src == nil {
		return nil
	}
	var spec *ast.ValueSpec
	var declStmt *ast.DeclStmt
	ast.Inspect(r.fn.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR || len(gd.Specs) != 1 {
			return true
		}
		vs, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok || len(vs.Names) != 1 || len(vs.Values) != 0 || vs.Type == nil {
			return true
		}
		if c.pass.TypesInfo.ObjectOf(vs.Names[0]) == obj {
			spec, declStmt = vs, ds
			return false
		}
		return true
	})
	if spec == nil || declStmt.Pos() > call.Pos() {
		return nil
	}
	typTxt, err1 := render(c.pass.Fset, spec.Type)
	srcTxt, err2 := render(c.pass.Fset, src)
	if err1 != nil || err2 != nil {
		return nil
	}
	return &analysis.SuggestedFix{
		Message: fmt.Sprintf("preallocate %s for len(%s) elements", obj.Name(), srcTxt),
		TextEdits: []analysis.TextEdit{{
			Pos:     declStmt.Pos(),
			End:     declStmt.End(),
			NewText: []byte(fmt.Sprintf("%s := make(%s, 0, len(%s))", obj.Name(), typTxt, srcTxt)),
		}},
	}
}

// walkPath returns the nodes on the path from root down to the node
// starting at pos, outermost first.
func walkPath(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	analysis.WalkStack(root, func(n ast.Node, stack []ast.Node) bool {
		if n.Pos() == pos && path == nil {
			path = append([]ast.Node{}, stack...)
			path = append(path, n)
		}
		return true
	})
	return path
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && info.ObjectOf(id) == types.Universe.Lookup("append")
}

func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isBuiltinAppend(info, call)
}

// zeroCapOrigin reports whether e pins the slice's starting capacity at
// zero: nil, or an empty composite literal.
func zeroCapOrigin(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" && info.ObjectOf(id) == types.Universe.Lookup("nil") {
		return true
	}
	if lit, ok := e.(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
		return true
	}
	return false
}

// concrete reports whether arg has a concrete (non-interface, non-nil)
// type — the shapes that box when converted to an interface.
func concrete(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	t := types.Unalias(tv.Type)
	if b, okB := t.(*types.Basic); okB && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(t)
}

func typeLabel(info *types.Info, e ast.Expr) string {
	if t := info.TypeOf(e); t != nil {
		s := t.String()
		if i := strings.LastIndexByte(s, '/'); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	return "value"
}

func render(fset *token.FileSet, n ast.Node) (string, error) {
	var buf bytes.Buffer
	err := printer.Fprint(&buf, fset, n)
	return buf.String(), err
}
