// Package kern exercises every hotalloc check, plus the mechanical
// preallocation fix.
package kern

import "fmt"

type item struct{ k, v int }

type sink interface{ accept(int) }

type valuer interface{ Value() int }

type cell int

func (c cell) Value() int { return int(c) }

func run(f func() int) int { return f() }

//bwalint:hot
func classify(items []item) []int {
	var hot []int
	for _, it := range items {
		if it.v > 0 {
			hot = append(hot, it.k) // want `append grows hot from zero capacity in hot region`
		}
	}
	return hot
}

func process(items []item, counts map[int]int, s sink) int {
	total := 0
	//bwalint:hot
	for _, it := range items {
		p := &item{k: it.k, v: it.v} // want `escaping composite literal in hot region`
		q := new(item)               // want `new\(\.\.\.\) in hot region`
		q.v = it.v
		s.accept(p.v)
		total += run(func() int { return it.v }) // want `closure literal in hot region`
	}
	//bwalint:hot
	for k, v := range counts { // want `map iteration in hot region`
		total += k + v
	}
	return total
}

func render(items []item) string {
	out := ""
	//bwalint:hot render loop dominates the profile
	for _, it := range items {
		out += fmt.Sprint(it.k) // want `implicit interface conversion in hot region`
	}
	return out
}

//bwalint:hot
func box(cs []cell) []valuer {
	vs := make([]valuer, 0, len(cs))
	for _, c := range cs {
		vs = append(vs, valuer(c)) // want `interface conversion in hot region`
	}
	return vs
}

// cold is identical to classify but unmarked: no diagnostics.
func cold(items []item) []int {
	var all []int
	for _, it := range items {
		all = append(all, it.k)
	}
	return all
}
