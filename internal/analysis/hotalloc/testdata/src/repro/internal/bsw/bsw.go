// Package bsw mirrors the real kernels' post-fix allocation discipline:
// preallocated index slices (the batch classifier) and zero-length
// reslices of persistent scratch buffers (the SMEM sweep). Nothing here
// may be reported.
package bsw

type job struct{ query, target []byte }

type smemBuf struct {
	prev, curr []int
}

// classify8 is the RunBatch shape after preallocation.
//
//bwalint:hot
func classify8(jobs []job) ([]int, []int) {
	idx8 := make([]int, 0, len(jobs))
	idxScalar := make([]int, 0, len(jobs))
	for i := range jobs {
		if len(jobs[i].query) < 128 {
			idx8 = append(idx8, i)
		} else {
			idxScalar = append(idxScalar, i)
		}
	}
	return idx8, idxScalar
}

// sweep is the SMEM1 shape: appends target reslices of caller-owned
// scratch (capacity retained across calls) and a result parameter, both
// outside the zero-capacity rule.
//
//bwalint:hot
func sweep(q []byte, b *smemBuf, out []int) []int {
	prev, curr := b.prev[:0], b.curr[:0]
	for i := range q {
		if q[i] > 3 {
			curr = append(curr, i)
			continue
		}
		prev = append(prev, i)
		if len(prev) > 4 {
			prev, curr = curr, prev
			curr = curr[:0]
		}
	}
	out = append(out, len(prev), len(curr))
	b.prev, b.curr = prev, curr
	return out
}
