package hotalloc_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	results := analysistest.Run(t, "testdata", hotalloc.Analyzer, "repro/internal/kern")

	// The zero-capacity append in classify must carry the mechanical
	// preallocation rewrite.
	var found bool
	for _, res := range results {
		for _, d := range res.Diags {
			if !strings.Contains(d.Message, "append grows hot") {
				continue
			}
			found = true
			if len(d.SuggestedFixes) != 1 {
				t.Fatalf("append diagnostic has %d fixes, want 1", len(d.SuggestedFixes))
			}
			fix := d.SuggestedFixes[0]
			if len(fix.TextEdits) != 1 {
				t.Fatalf("fix has %d edits, want 1", len(fix.TextEdits))
			}
			got := string(fix.TextEdits[0].NewText)
			want := "hot := make([]int, 0, len(items))"
			if got != want {
				t.Errorf("fix text = %q, want %q", got, want)
			}
		}
	}
	if !found {
		t.Error("no append-growth diagnostic found")
	}
}

// TestKernelIdiomsClean mirrors the repo's real kernels: preallocated
// classifier slices and resliced scratch buffers stay quiet.
func TestKernelIdiomsClean(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "repro/internal/bsw")
}
