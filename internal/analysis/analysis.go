// Package analysis is a self-contained static-analysis framework modeled
// on golang.org/x/tools/go/analysis, built only on the standard library so
// the repo's linters need no external module. It provides the Analyzer /
// Pass / Diagnostic vocabulary, a per-package runner with
// `//bwalint:ignore` suppression, and two drivers: a standalone loader
// (Load) that type-checks packages via `go list`, and a unitchecker
// (RunUnit) speaking the `go vet -vettool` protocol, both dispatched from
// Main.
//
// The escape hatch for every analyzer in the suite is an annotated
// directive on (or on the line before) the offending line:
//
//	//bwalint:ignore <analyzer>[,<analyzer>|all] <reason>
//
// A directive with no reason is inert and itself reported, so every
// suppression in the tree documents why the contract does not apply.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's short identifier, used in diagnostics,
	// flag prefixes, and ignore directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Flags holds analyzer-specific options; the driver exposes each
	// flag as -<name>.<flag>. May be nil.
	Flags *flag.FlagSet
	// FactTypes lists prototype values of every Fact type the analyzer
	// exports. Non-empty FactTypes opt the analyzer into interprocedural
	// propagation: drivers run it over the dependency closure (facts
	// only), not just the requested packages.
	FactTypes []Fact
	// Run performs the check on one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A TextEdit is a replacement of the source range [Pos, End).
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// A SuggestedFix is a mechanical rewrite that would resolve a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// A Pass presents one package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactSet
	diags []Diagnostic
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f is a _test.go file. Most analyzers in the
// suite enforce production-path contracts and skip test files.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// A Unit is one loaded, type-checked package ready to be analyzed. Both
// drivers and the analysistest harness construct Units.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts is the cross-package fact store shared by every unit of a
	// driver run. Nil means facts are unit-local (analyzer unit tests).
	Facts *FactSet
	// Std marks a standard-library dependency unit: drivers skip fact
	// computation there (the suite's contracts are module-internal).
	Std bool

	sup *suppressions
}

// Run applies a to the unit and returns its surviving diagnostics sorted
// by position: findings on lines carrying (or directly following) a
// well-formed `//bwalint:ignore` directive naming a (or "all") are
// dropped.
func (u *Unit) Run(a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.Info,
		facts:     u.Facts,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	if u.sup == nil {
		u.sup = newSuppressions(u.Fset, u.Files)
	}
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !u.sup.covers(a.Name, u.Fset.Position(d.Pos)) {
			kept = append(kept, d)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// RunFacts applies a to the unit for its fact side effects only: exports
// land in u.Facts, diagnostics are discarded. Drivers use this over
// dependency units so interprocedural analyzers see summaries for code
// outside the requested packages.
func (u *Unit) RunFacts(a *Analyzer) error {
	if len(a.FactTypes) == 0 {
		return nil
	}
	pass := &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.Info,
		facts:     u.Facts,
	}
	return a.Run(pass)
}

// DirectiveDiagnostics reports malformed `//bwalint:ignore` directives
// (ones missing an analyzer name or a reason). Such directives suppress
// nothing, so an undocumented escape hatch surfaces as a finding instead
// of silently widening. Drivers call this once per package.
func (u *Unit) DirectiveDiagnostics() []Diagnostic {
	if u.sup == nil {
		u.sup = newSuppressions(u.Fset, u.Files)
	}
	return u.sup.malformed
}

// UnusedDirectiveDiagnostics reports ignore directives that did nothing:
// ones naming an analyzer not in the suite (known, plus "all"), and ones
// whose named analyzer produced no finding on the covered lines. A dead
// directive is an audit gap — the contract it excused is either enforced
// again or was never exercised — so the multichecker treats it like any
// other finding. Valid only after every analyzer has run on the unit;
// directives in _test.go files are exempt (analyzers skip test files).
func (u *Unit) UnusedDirectiveDiagnostics(known map[string]bool) []Diagnostic {
	if u.sup == nil {
		return nil
	}
	var diags []Diagnostic
	for _, d := range u.sup.directives {
		if d.inTest {
			continue
		}
		switch {
		case d.name != "all" && !known[d.name]:
			diags = append(diags, Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("ignore directive names unknown analyzer %q", d.name),
			})
		case !d.used:
			diags = append(diags, Diagnostic{
				Pos:     d.pos,
				Message: fmt.Sprintf("unused ignore directive: %s reports nothing on this line; remove the stale escape hatch", d.name),
			})
		}
	}
	return diags
}

const ignorePrefix = "//bwalint:ignore"

// directive is one analyzer name of one well-formed ignore directive
// ("a,b" directives produce two records sharing a position).
type directive struct {
	pos    token.Pos
	name   string
	used   bool
	inTest bool
}

// suppressions indexes the well-formed ignore directives of a package.
type suppressions struct {
	// byLine maps filename:line to the directives suppressing there.
	byLine     map[string][]*directive
	directives []*directive
	malformed  []Diagnostic
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos: c.Pos(),
						Message: fmt.Sprintf(
							"malformed directive %q: want %s <analyzer>[,<analyzer>] <reason> (directive has no effect)",
							c.Text, ignorePrefix),
					})
					continue
				}
				pos := fset.Position(c.Pos())
				inTest := strings.HasSuffix(pos.Filename, "_test.go")
				for _, name := range strings.Split(fields[0], ",") {
					d := &directive{pos: c.Pos(), name: name, inTest: inTest}
					s.directives = append(s.directives, d)
					// The directive covers its own line and, for
					// standalone comment lines, the line below.
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := lineKey(pos.Filename, line)
						s.byLine[key] = append(s.byLine[key], d)
					}
				}
			}
		}
	}
	return s
}

func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	hit := false
	for _, d := range s.byLine[lineKey(pos.Filename, pos.Line)] {
		if d.name == analyzer || d.name == "all" {
			d.used = true
			hit = true
		}
	}
	return hit
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// WalkStack walks the tree rooted at root, calling fn for each node with
// the stack of enclosing nodes (outermost first, not including n). If fn
// returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// NamedOf unwraps pointers and aliases to the named type of t, if any.
func NamedOf(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	u := types.Unalias(t)
	if p, ok := u.(*types.Pointer); ok {
		u = types.Unalias(p.Elem())
	}
	n, ok := u.(*types.Named)
	return n, ok
}

// PkgPathMatches reports whether a package path equals suffix or ends in
// "/"+suffix, so contracts written against "internal/core" match both the
// real module path and analysistest fixture paths.
func PkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// TypeIs reports whether t (possibly behind a pointer or alias) is the
// named type pkgSuffix.name.
func TypeIs(t types.Type, pkgSuffix, name string) bool {
	n, ok := NamedOf(t)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && PkgPathMatches(n.Obj().Pkg().Path(), pkgSuffix)
}
