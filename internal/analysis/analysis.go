// Package analysis is a self-contained static-analysis framework modeled
// on golang.org/x/tools/go/analysis, built only on the standard library so
// the repo's linters need no external module. It provides the Analyzer /
// Pass / Diagnostic vocabulary, a per-package runner with
// `//bwalint:ignore` suppression, and two drivers: a standalone loader
// (Load) that type-checks packages via `go list`, and a unitchecker
// (RunUnit) speaking the `go vet -vettool` protocol, both dispatched from
// Main.
//
// The escape hatch for every analyzer in the suite is an annotated
// directive on (or on the line before) the offending line:
//
//	//bwalint:ignore <analyzer>[,<analyzer>|all] <reason>
//
// A directive with no reason is inert and itself reported, so every
// suppression in the tree documents why the contract does not apply.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's short identifier, used in diagnostics,
	// flag prefixes, and ignore directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Flags holds analyzer-specific options; the driver exposes each
	// flag as -<name>.<flag>. May be nil.
	Flags *flag.FlagSet
	// Run performs the check on one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A TextEdit is a replacement of the source range [Pos, End).
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// A SuggestedFix is a mechanical rewrite that would resolve a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// A Pass presents one package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f is a _test.go file. Most analyzers in the
// suite enforce production-path contracts and skip test files.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// A Unit is one loaded, type-checked package ready to be analyzed. Both
// drivers and the analysistest harness construct Units.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	sup *suppressions
}

// Run applies a to the unit and returns its surviving diagnostics sorted
// by position: findings on lines carrying (or directly following) a
// well-formed `//bwalint:ignore` directive naming a (or "all") are
// dropped.
func (u *Unit) Run(a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	if u.sup == nil {
		u.sup = newSuppressions(u.Fset, u.Files)
	}
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !u.sup.covers(a.Name, u.Fset.Position(d.Pos)) {
			kept = append(kept, d)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// DirectiveDiagnostics reports malformed `//bwalint:ignore` directives
// (ones missing an analyzer name or a reason). Such directives suppress
// nothing, so an undocumented escape hatch surfaces as a finding instead
// of silently widening. Drivers call this once per package.
func (u *Unit) DirectiveDiagnostics() []Diagnostic {
	if u.sup == nil {
		u.sup = newSuppressions(u.Fset, u.Files)
	}
	return u.sup.malformed
}

const ignorePrefix = "//bwalint:ignore"

// suppressions indexes the well-formed ignore directives of a package.
type suppressions struct {
	// byLine maps filename:line to the analyzer names suppressed there.
	byLine    map[string][]string
	malformed []Diagnostic
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos: c.Pos(),
						Message: fmt.Sprintf(
							"malformed directive %q: want %s <analyzer>[,<analyzer>] <reason> (directive has no effect)",
							c.Text, ignorePrefix),
					})
					continue
				}
				pos := fset.Position(c.Pos())
				names := strings.Split(fields[0], ",")
				// The directive covers its own line and, for
				// standalone comment lines, the line below.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := lineKey(pos.Filename, line)
					s.byLine[key] = append(s.byLine[key], names...)
				}
			}
		}
	}
	return s
}

func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	for _, name := range s.byLine[lineKey(pos.Filename, pos.Line)] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// WalkStack walks the tree rooted at root, calling fn for each node with
// the stack of enclosing nodes (outermost first, not including n). If fn
// returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// NamedOf unwraps pointers and aliases to the named type of t, if any.
func NamedOf(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	u := types.Unalias(t)
	if p, ok := u.(*types.Pointer); ok {
		u = types.Unalias(p.Elem())
	}
	n, ok := u.(*types.Named)
	return n, ok
}

// PkgPathMatches reports whether a package path equals suffix or ends in
// "/"+suffix, so contracts written against "internal/core" match both the
// real module path and analysistest fixture paths.
func PkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// TypeIs reports whether t (possibly behind a pointer or alias) is the
// named type pkgSuffix.name.
func TypeIs(t types.Type, pkgSuffix, name string) bool {
	n, ok := NamedOf(t)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && PkgPathMatches(n.Obj().Pkg().Path(), pkgSuffix)
}
