package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallGraph is the static, package-level call graph: one node per
// function declared in the package, with an edge per syntactic call whose
// callee resolves to a named function or method (same package or
// imported). Dynamic calls through function values and interface methods
// have no edges — analyzers built on it must treat absence of an edge as
// "unknown", not "no call".
type CallGraph struct {
	// Nodes maps each declared function to its node, and is also keyed
	// by any callee *types.Func so CalleeDecl lookups stay O(1).
	Nodes map[*types.Func]*CallNode
	// Order lists the nodes in declaration order — analyzers that emit
	// facts or diagnostics while traversing the graph must iterate this,
	// not the map, for deterministic output.
	Order []*CallNode
}

// CallNode is one declared function and its outgoing static calls.
type CallNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []CallSite
}

// CallSite is one static call: the resolved callee and where it happens.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// BuildCallGraph indexes every function declared in the pass's package
// (skipping test files, matching the suite's analyzer scope).
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(pass.TypesInfo, call); callee != nil {
					node.Calls = append(node.Calls, CallSite{Callee: callee, Pos: call.Pos()})
				}
				return true
			})
			g.Nodes[fn] = node
			g.Order = append(g.Order, node)
		}
	}
	return g
}

// DeclOf returns the package-local declaration of fn, nil for functions
// declared elsewhere.
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl {
	if n, ok := g.Nodes[fn]; ok {
		return n.Decl
	}
	return nil
}

// StaticCallee resolves a call expression to the named function or
// method it statically invokes, nil for dynamic calls, conversions, and
// builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, okF := sel.Obj().(*types.Func); okF {
				return fn
			}
			return nil
		}
		// Qualified identifier (pkg.Func).
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
