package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// unitConfig describes one compilation unit, decoded from the JSON *.cfg
// file `go vet -vettool` hands the tool for every package it vets. The
// field set mirrors the go command's (cmd/go/internal/work's vetConfig);
// unknown fields are ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export-data file
	Standard                  map[string]bool
	VetxOnly                  bool   // facts-only run on a dependency
	VetxOutput                string // where the build system expects the facts file
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the `go vet -vettool` protocol for one *.cfg file and
// exits the process: 0 on a clean pass, 1 when diagnostics were reported,
// fatal on protocol or type-checking errors. Types for imports come from
// the compiler's export data named in the config, so no source outside
// the unit is re-checked.
func RunUnit(configFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatalf("cannot decode vet config %s: %v", configFile, err)
	}

	// The go command requires the facts file to exist for every vetted
	// package. The suite carries no cross-package facts, so it is
	// always empty — and dependency (VetxOnly) runs need nothing else.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	unit, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the same errors with better
			// context; stay quiet here.
			os.Exit(0)
		}
		fatalf("%v", err)
	}

	exit := 0
	for _, d := range unit.DirectiveDiagnostics() {
		printDiag(os.Stderr, unit.Fset, "bwalint", d)
		exit = 1
	}
	for _, a := range analyzers {
		diags, err := unit.Run(a)
		if err != nil {
			fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			printDiag(os.Stderr, unit.Fset, a.Name, d)
			exit = 1
		}
	}
	os.Exit(exit)
}

func typecheckUnit(cfg *unitConfig) (*Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	exportImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// path is already canonical (post-ImportMap).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped
			}
			return exportImporter.Import(importPath)
		}),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func printDiag(w io.Writer, fset *token.FileSet, analyzer string, d Diagnostic) {
	fmt.Fprintf(w, "%s: %s [bwalint/%s]\n", fset.Position(d.Pos), d.Message, analyzer)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bwalint: "+format+"\n", args...)
	os.Exit(1)
}
