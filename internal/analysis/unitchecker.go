package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// unitConfig describes one compilation unit, decoded from the JSON *.cfg
// file `go vet -vettool` hands the tool for every package it vets. The
// field set mirrors the go command's (cmd/go/internal/work's vetConfig);
// unknown fields are ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export-data file
	PackageVetx               map[string]string // package path -> facts file of an already-vetted dependency
	Standard                  map[string]bool
	VetxOnly                  bool   // facts-only run on a dependency
	VetxOutput                string // where the build system expects the facts file
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the `go vet -vettool` protocol for one *.cfg file and
// exits the process: 0 on a clean pass, 1 when diagnostics were reported,
// fatal on protocol or type-checking errors. Types for imports come from
// the compiler's export data named in the config, so no source outside
// the unit is re-checked.
//
// Interprocedural facts ride the go command's vetx machinery: the facts
// of every dependency arrive via PackageVetx, fact-producing analyzers
// run during VetxOnly dependency visits, and the merged set (imported
// plus newly exported, so transitive facts survive even if the build
// system lists only direct dependencies) is written to VetxOutput.
// Standard-library units are skipped outright — the suite's contracts
// are module-internal — which keeps `go vet ./...` from type-checking
// the std closure.
func RunUnit(configFile string, analyzers []*Analyzer, opts *driverOptions) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatalf("cannot decode vet config %s: %v", configFile, err)
	}

	writeFacts := func(facts *FactSet) {
		if cfg.VetxOutput == "" {
			return
		}
		var out []byte
		if facts != nil {
			if out, err = facts.Encode(); err != nil {
				fatalf("encoding facts: %v", err)
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, out, 0o666); err != nil {
			fatalf("writing facts output: %v", err)
		}
	}

	if mod := moduleName(cfg.Dir); mod == "std" || mod == "cmd" {
		writeFacts(nil)
		os.Exit(0)
	}

	facts := NewFactSet()
	for _, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // a dependency outside the facts protocol; treat as empty
		}
		if err := facts.Merge(data); err != nil {
			fatalf("facts of %s: %v", vetxFile, err)
		}
	}

	unit, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			// The compiler will report the same errors with better
			// context; pass the dependency facts through and stay quiet.
			writeFacts(facts)
			os.Exit(0)
		}
		fatalf("%v", err)
	}
	unit.Facts = facts

	if cfg.VetxOnly {
		for _, a := range analyzers {
			if err := unit.RunFacts(a); err != nil {
				fatalf("%s (facts): %v", a.Name, err)
			}
		}
		writeFacts(facts)
		os.Exit(0)
	}

	var baseline *Baseline
	if opts != nil && opts.baselinePath != "" {
		if baseline, err = LoadBaseline(opts.baselinePath); err != nil {
			fatalf("%v", err)
		}
	}
	unitFiles := make(map[string]bool, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		unitFiles[ModuleRelative(name)] = true
	}

	exit := 0
	for _, d := range unit.DirectiveDiagnostics() {
		printDiag(os.Stderr, unit.Fset, "bwalint", d)
		exit = 1
	}
	for _, a := range analyzers {
		diags, err := unit.Run(a)
		if err != nil {
			fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			file := ModuleRelative(unit.Fset.Position(d.Pos).Filename)
			if baseline.Match(file, a.Name, d.Message) {
				continue
			}
			printDiag(os.Stderr, unit.Fset, a.Name, d)
			exit = 1
		}
	}
	for _, d := range unit.UnusedDirectiveDiagnostics(knownNames(analyzers)) {
		printDiag(os.Stderr, unit.Fset, "bwalint", d)
		exit = 1
	}
	// Stale entries are checked per unit against the unit's own files;
	// entries for deleted files surface in standalone runs.
	for _, e := range baseline.Stale(unitFiles) {
		fmt.Fprintf(os.Stderr, "%s: stale baseline entry (%s: %q no longer reported): remove it [bwalint/baseline]\n",
			e.File, e.Analyzer, e.Message)
		exit = 1
	}
	writeFacts(facts)
	os.Exit(exit)
}

func typecheckUnit(cfg *unitConfig) (*Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	exportImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// path is already canonical (post-ImportMap).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped
			}
			return exportImporter.Import(importPath)
		}),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func printDiag(w io.Writer, fset *token.FileSet, analyzer string, d Diagnostic) {
	fmt.Fprintf(w, "%s: %s [bwalint/%s]\n", fset.Position(d.Pos), d.Message, analyzer)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bwalint: "+format+"\n", args...)
	os.Exit(1)
}
