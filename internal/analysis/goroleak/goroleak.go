// Package goroleak flags goroutines started on the request path whose
// lifetime nothing bounds. A goroutine spawned while serving a request
// must be joined or cancelled before the request's resources (the
// response writer, the per-request WaitGroup, pooled buffers) are
// reclaimed; one that is not keeps running after the handler returns —
// the classic slow leak that soak runs surface as monotonically growing
// goroutine counts.
//
// A spawn is considered bounded when the goroutine body (directly or
// through calls the analyzer can resolve):
//
//   - selects or receives on a context's Done channel,
//   - calls Done on a sync.WaitGroup (the spawner's join point),
//   - consumes a channel from inside a for loop (a worker that exits
//     when the channel closes), or
//   - closes a channel that the spawning function receives from (a
//     completion handoff the spawner waits on).
//
// Summaries propagate across packages as facts, so a request-path call
// to a helper in another package that launches an unbounded goroutine is
// reported at the call site, even though the go statement lives
// elsewhere. Diagnostics are confined to the request-path packages named
// by -goroleak.scope; everything else only contributes summaries.
package goroleak

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// A Summary is the per-function fact goroleak propagates across
// packages.
type Summary struct {
	// BodyBounded marks a function safe to run as a goroutine body:
	// its execution is tied to a context, WaitGroup, or channel the
	// spawner controls.
	BodyBounded bool `json:"bodyBounded,omitempty"`
	// SpawnsUnbounded marks a function that (transitively) starts a
	// goroutine with no boundedness evidence when called.
	SpawnsUnbounded bool `json:"spawnsUnbounded,omitempty"`
	// Via names the function the unbounded go statement lives in, for
	// call-site diagnostics.
	Via string `json:"via,omitempty"`
}

// AFact marks Summary as a fact type.
func (*Summary) AFact() {}

var scope string

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "goroleak",
	Doc:       "report request-path goroutines that can outlive the request (no ctx.Done select, WaitGroup join, channel consumption loop, or close handoff)",
	Flags:     flags(),
	FactTypes: []analysis.Fact{(*Summary)(nil)},
	Run:       run,
}

func flags() *flag.FlagSet {
	fs := flag.NewFlagSet("goroleak", flag.ExitOnError)
	fs.StringVar(&scope, "scope", "internal/server,internal/pipeline,internal/rescache,internal/gateway",
		"comma-separated package-path suffixes treated as request-path (diagnostics are confined to them)")
	return fs
}

func inScope(path string) bool {
	for _, s := range strings.Split(scope, ",") {
		if s != "" && analysis.PkgPathMatches(path, s) {
			return true
		}
	}
	return false
}

// checker carries the per-package fixpoint state.
type checker struct {
	pass    *analysis.Pass
	graph   *analysis.CallGraph
	du      map[*ast.FuncDecl]*analysis.DefUse
	bounded map[*types.Func]bool   // body is a safe goroutine body
	spawns  map[*types.Func]string // fn transitively starts an unbounded goroutine; value = via
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		graph:   analysis.BuildCallGraph(pass),
		du:      make(map[*ast.FuncDecl]*analysis.DefUse),
		bounded: make(map[*types.Func]bool),
		spawns:  make(map[*types.Func]string),
	}

	// Fixpoint 1: which declared functions are bounded goroutine bodies.
	// Evidence flows through resolvable calls, so a body that only calls
	// a draining helper inherits the helper's evidence.
	for changed := true; changed; {
		changed = false
		for _, node := range c.graph.Order {
			if c.bounded[node.Fn] {
				continue
			}
			if c.evidence(node.Decl.Body, c.defUse(node.Decl), nil) {
				c.bounded[node.Fn] = true
				changed = true
			}
		}
	}

	// Classify every go statement; collect the unbounded ones.
	type unboundedGo struct {
		node *analysis.CallNode
		stmt *ast.GoStmt
	}
	var unbounded []unboundedGo
	for _, node := range c.graph.Order {
		fn := node.Fn
		du := c.defUse(node.Decl)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !c.goBounded(g, du, node.Decl.Body) {
				unbounded = append(unbounded, unboundedGo{node, g})
				if _, seen := c.spawns[fn]; !seen {
					c.spawns[fn] = qualifiedName(fn)
				}
			}
			return true
		})
	}

	// Fixpoint 2: spawning propagates to callers, locally and via facts.
	for changed := true; changed; {
		changed = false
		for _, node := range c.graph.Order {
			fn := node.Fn
			if _, seen := c.spawns[fn]; seen {
				continue
			}
			for _, call := range node.Calls {
				if via, ok := c.spawnsUnbounded(call.Callee); ok {
					c.spawns[fn] = via
					changed = true
					break
				}
			}
		}
	}

	for _, node := range c.graph.Order {
		fn := node.Fn
		via, spawnsIt := c.spawns[fn]
		if !c.bounded[fn] && !spawnsIt {
			continue
		}
		pass.ExportObjectFact(fn, &Summary{
			BodyBounded:     c.bounded[fn],
			SpawnsUnbounded: spawnsIt,
			Via:             via,
		})
	}

	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, ug := range unbounded {
		pass.Reportf(ug.stmt.Pos(),
			"goroutine may outlive the request: no ctx.Done select, WaitGroup join, channel consumption loop, or close handoff bounds it")
	}
	// Call-site diagnostics for helpers outside the request-path scope:
	// their own go statements are never reported (wrong package), so the
	// finding surfaces where request-path code invokes them.
	for _, node := range c.graph.Order {
		du := c.defUse(node.Decl)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.StaticCallee(c.pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg() == pass.Pkg || inScope(callee.Pkg().Path()) {
				return true
			}
			via, ok := c.spawnsUnbounded(callee)
			if !ok {
				return true
			}
			// A helper that runs a caller-supplied body is fine when the
			// body the caller hands it is itself bounded.
			for _, arg := range call.Args {
				if lit, fn := du.ResolveFunc(c.pass.TypesInfo, arg); lit != nil {
					if c.evidence(lit.Body, du, nil) {
						return true
					}
				} else if fn != nil && c.funcBounded(fn) {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"%s starts a goroutine that may outlive the request (unbounded spawn in %s)",
				qualifiedName(callee), via)
			return true
		})
	}
	return nil
}

func (c *checker) defUse(decl *ast.FuncDecl) *analysis.DefUse {
	du, ok := c.du[decl]
	if !ok {
		du = analysis.FuncDefUse(c.pass.TypesInfo, decl.Body)
		c.du[decl] = du
	}
	return du
}

// goBounded decides one go statement. enclosing is the spawning
// function's body, needed for the close-handoff rule.
func (c *checker) goBounded(g *ast.GoStmt, du *analysis.DefUse, enclosing ast.Node) bool {
	lit, fn := du.ResolveFunc(c.pass.TypesInfo, g.Call.Fun)
	switch {
	case lit != nil:
		if c.evidence(lit.Body, du, nil) {
			return true
		}
		return c.closeHandoff(lit.Body, enclosing)
	case fn != nil:
		return c.funcBounded(fn)
	}
	// Dynamic spawn (`go f()` through a parameter or field): nothing to
	// inspect, so nothing bounds it.
	return false
}

// funcBounded reports whether running fn as a goroutine body is bounded,
// consulting the local fixpoint for this package and facts for others.
// Functions outside the module's fact horizon (std, mostly) are trusted:
// the contract is about this repo's request path, and flagging every
// `go io.Copy` would bury the real findings.
func (c *checker) funcBounded(fn *types.Func) bool {
	if fn.Pkg() == c.pass.Pkg {
		return c.bounded[fn]
	}
	var s Summary
	if c.pass.ImportObjectFact(fn, &s) {
		return s.BodyBounded
	}
	return true
}

// spawnsUnbounded reports whether calling fn transitively launches an
// unbounded goroutine, and through which function.
func (c *checker) spawnsUnbounded(fn *types.Func) (string, bool) {
	if fn.Pkg() == c.pass.Pkg {
		via, ok := c.spawns[fn]
		return via, ok
	}
	var s Summary
	if c.pass.ImportObjectFact(fn, &s) && s.SpawnsUnbounded {
		return s.Via, true
	}
	return "", false
}

// evidence scans a body (nested literals included — a deferred
// `func() { wg.Done() }()` is evidence) for any of the boundedness
// signals, following calls it can resolve. seen guards func-literal
// recursion through the def-use index.
func (c *checker) evidence(body ast.Node, du *analysis.DefUse, seen map[*ast.FuncLit]bool) bool {
	if body == nil {
		return false
	}
	found := false
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if isCtxDone(c.pass.TypesInfo, n.X) {
				found = true // select/receive on ctx.Done()
				return false
			}
			for _, anc := range stack {
				if _, ok := anc.(*ast.ForStmt); ok {
					found = true // consuming a channel until it closes
					return false
				}
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if isWgDone(c.pass.TypesInfo, n) {
				found = true
				return false
			}
			if callee := analysis.StaticCallee(c.pass.TypesInfo, n); callee != nil {
				if callee.Pkg() == c.pass.Pkg {
					if c.bounded[callee] {
						found = true
						return false
					}
				} else {
					var s Summary
					if c.pass.ImportObjectFact(callee, &s) && s.BodyBounded {
						found = true
						return false
					}
				}
			} else if lit, _ := du.ResolveFunc(c.pass.TypesInfo, n.Fun); lit != nil {
				// A call through a local binding (`render := func() {...};
				// go func() { render() }()`).
				if seen == nil {
					seen = make(map[*ast.FuncLit]bool)
				}
				if !seen[lit] {
					seen[lit] = true
					if c.evidence(lit.Body, du, seen) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// closeHandoff reports whether body closes a channel variable that the
// enclosing (spawning) function receives from — the `done := make(chan
// struct{}); go func() { ...; close(done) }(); <-done` join idiom.
func (c *checker) closeHandoff(body, enclosing ast.Node) bool {
	closed := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "close" ||
			c.pass.TypesInfo.ObjectOf(id) != types.Universe.Lookup("close") {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				closed[obj] = true
			}
		}
		return true
	})
	if len(closed) == 0 {
		return false
	}
	handoff := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return true
		}
		if id, ok := ast.Unparen(u.X).(*ast.Ident); ok && closed[c.pass.TypesInfo.ObjectOf(id)] {
			handoff = true
			return false
		}
		return true
	})
	return handoff
}

// isCtxDone reports whether e is a call to (context.Context).Done.
func isCtxDone(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.StaticCallee(info, call)
	return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// isWgDone reports whether call is (*sync.WaitGroup).Done.
func isWgDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Name() != "Done" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && analysis.TypeIs(sig.Recv().Type(), "sync", "WaitGroup")
}

func qualifiedName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := analysis.NamedOf(sig.Recv().Type()); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		if i := strings.LastIndexByte(fn.Pkg().Path(), '/'); i >= 0 {
			return fn.Pkg().Path()[i+1:] + "." + name
		}
		return fn.Pkg().Path() + "." + name
	}
	return name
}
