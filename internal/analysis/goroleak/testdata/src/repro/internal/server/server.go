// Package server models the repo's real request-path spawn idioms
// (samStreamer writer, coalescer close handoff, render offload,
// scheduler workers): none of them may be reported. The findings section
// holds the leaks the analyzer exists for.
package server

import (
	"context"
	"sync"

	"repro/internal/util"
)

type streamer struct {
	notify chan struct{}
	wg     sync.WaitGroup
	next   int
}

// newStreamer is the samStreamer idiom: the writer goroutine is joined
// through wg and parks on notify inside its loop.
func newStreamer() *streamer {
	st := &streamer{notify: make(chan struct{}, 1)}
	st.wg.Add(1)
	go st.writeLoop()
	return st
}

func (st *streamer) writeLoop() {
	defer st.wg.Done()
	for {
		if st.next < 0 {
			return
		}
		<-st.notify
	}
}

// waitAll is the coalescer.waitReads idiom: the helper goroutine closes
// done, which this function receives from (close handoff).
func waitAll(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		<-done
		return ctx.Err()
	}
}

// offload is the renderSlots idiom: the goroutine's boundedness (wg.Done
// inside render) is only reachable through a local func binding.
func offload(slots chan struct{}, wg *sync.WaitGroup, work func()) {
	render := func() {
		work()
		wg.Done()
	}
	select {
	case slots <- struct{}{}:
		go func() {
			defer func() { <-slots }()
			render()
		}()
	default:
		render()
	}
}

// startWorkers is the scheduler idiom: each worker is wg-joined and
// drains tasks until close.
func startWorkers(tasks chan func(), wg *sync.WaitGroup) {
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				t()
			}
		}()
	}
}

// watch exits when ctx ends.
func watch(ctx context.Context, reload chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-reload:
			}
		}
	}()
}

// consume spawns a cross-package body whose summary fact says it is
// bounded (Drain ranges over its channel).
func consume(ch chan int) {
	go util.Drain(ch)
}

// --- findings ---

func leakyTimer(update func()) {
	go func() { // want `goroutine may outlive the request`
		for {
			update()
		}
	}()
}

func spawnArg(f func()) {
	go f() // want `goroutine may outlive the request`
}

func viaHelper() {
	go pollForever() // want `goroutine may outlive the request`
}

func pollForever() {
	for {
		_ = 0
	}
}

func callsUtil(stop chan struct{}) {
	util.LeakyTick() // want `util\.LeakyTick starts a goroutine that may outlive the request \(unbounded spawn in util\.LeakyTick\)`
	util.SpawnWorker(func() {
		for range stop {
		}
	})
	util.SpawnWorker(func() { // want `util\.SpawnWorker starts a goroutine that may outlive the request \(unbounded spawn in util\.SpawnWorker\)`
		pollForever()
	})
}
