// Package util is an unscoped helper package: goroleak reports nothing
// here, but its summaries travel to request-path importers as facts.
package util

// SpawnWorker runs f on its own goroutine. The body is caller-supplied,
// so the summary marks SpawnWorker as an unbounded spawner; call sites
// that hand it a bounded body are not reported.
func SpawnWorker(f func()) {
	go f()
}

// LeakyTick loops forever on a goroutine nothing joins or cancels.
func LeakyTick() {
	go func() {
		for {
			_ = 0
		}
	}()
}

// Drain consumes ch until it closes: a bounded goroutine body.
func Drain(ch chan int) {
	for range ch {
	}
}
