// Raw (on-disk) form of the occurrence tables. A .bwago v2 index persists
// both table layouts so loading an index skips the linear rebuild over the
// BWT column: each table is stored as its blocks in memory order, 64 bytes
// per block, every field little-endian. On little-endian hosts that is
// exactly the in-memory layout, so Raw is a zero-copy view and the FromRaw
// constructors alias the section (straight out of an mmap'd file) instead
// of decoding it; big-endian hosts fall back to an explicit field-by-field
// codec.
package fmindex

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Compile-time guarantees that the structs are exactly one 64-byte cache
// line with no padding — the raw codec and the alias path both rely on it.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(occ128Block{})-occEntryBytes]
	_ = [1]struct{}{}[unsafe.Sizeof(occ32Entry{})-occEntryBytes]
)

// HostLittleEndian reports whether the host stores integers little-endian,
// the byte order of the .bwago v2 format: on such hosts the raw codecs
// alias memory instead of copying. internal/core shares this probe for its
// suffix-array section codec.
var HostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Occ128Blocks returns how many 64-byte blocks an Occ128 over a text of
// length n has (NewOcc128's sizing rule).
func Occ128Blocks(n int) int {
	nb := (n + 127) / 128
	if nb == 0 {
		nb = 1
	}
	return nb
}

// Occ32Entries returns how many 64-byte entries an Occ32 over a text of
// length n has (NewOcc32's sizing rule).
func Occ32Entries(n int) int {
	ne := (n + 31) / 32
	if ne == 0 {
		ne = 1
	}
	return ne
}

// aligned8 reports whether the slice's backing array starts on an 8-byte
// boundary, the alignment the struct alias paths require.
func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// Raw returns the table in the v2 section byte layout. On little-endian
// hosts the returned slice aliases the table's memory — the caller must
// treat it as read-only.
func (o *Occ128) Raw() []byte {
	if HostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&o.blocks[0])), len(o.blocks)*occEntryBytes)
	}
	out := make([]byte, 0, len(o.blocks)*occEntryBytes)
	for i := range o.blocks {
		blk := &o.blocks[i]
		for _, v := range blk.counts {
			out = binary.LittleEndian.AppendUint64(out, v)
		}
		for _, v := range blk.data {
			out = binary.LittleEndian.AppendUint64(out, v)
		}
	}
	return out
}

// Raw returns the table in the v2 section byte layout. On little-endian
// hosts the returned slice aliases the table's memory — the caller must
// treat it as read-only.
func (o *Occ32) Raw() []byte {
	if HostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&o.entries[0])), len(o.entries)*occEntryBytes)
	}
	out := make([]byte, 0, len(o.entries)*occEntryBytes)
	for i := range o.entries {
		ent := &o.entries[i]
		for _, v := range ent.counts {
			out = binary.LittleEndian.AppendUint32(out, v)
		}
		for _, v := range ent.bases {
			out = binary.LittleEndian.AppendUint64(out, v)
		}
		for _, v := range ent.pad {
			out = binary.LittleEndian.AppendUint64(out, v)
		}
	}
	return out
}

// Occ128FromRaw wraps a v2 occ128 section as a table over a text of length
// n. On little-endian hosts with an 8-byte-aligned section the table
// aliases raw zero-copy — raw must then stay immutable (and, for an mmap'd
// section, mapped) for the table's lifetime; otherwise the section is
// decoded into fresh memory.
func Occ128FromRaw(raw []byte, n int) (*Occ128, error) {
	nb := Occ128Blocks(n)
	if len(raw) != nb*occEntryBytes {
		return nil, fmt.Errorf("fmindex: occ128 section is %d bytes, want %d for text length %d", len(raw), nb*occEntryBytes, n)
	}
	o := &Occ128{n: n}
	if HostLittleEndian && aligned8(raw) {
		o.blocks = unsafe.Slice((*occ128Block)(unsafe.Pointer(&raw[0])), nb)
		return o, nil
	}
	o.blocks = make([]occ128Block, nb)
	for i := range o.blocks {
		blk := &o.blocks[i]
		p := raw[i*occEntryBytes:]
		for j := range blk.counts {
			blk.counts[j] = binary.LittleEndian.Uint64(p[j*8:])
		}
		for j := range blk.data {
			blk.data[j] = binary.LittleEndian.Uint64(p[32+j*8:])
		}
	}
	return o, nil
}

// Occ32FromRaw wraps a v2 occ32 section as a table over a text of length n,
// with the same aliasing contract as Occ128FromRaw.
func Occ32FromRaw(raw []byte, n int) (*Occ32, error) {
	ne := Occ32Entries(n)
	if len(raw) != ne*occEntryBytes {
		return nil, fmt.Errorf("fmindex: occ32 section is %d bytes, want %d for text length %d", len(raw), ne*occEntryBytes, n)
	}
	o := &Occ32{n: n}
	if HostLittleEndian && aligned8(raw) {
		o.entries = unsafe.Slice((*occ32Entry)(unsafe.Pointer(&raw[0])), ne)
		return o, nil
	}
	o.entries = make([]occ32Entry, ne)
	for i := range o.entries {
		ent := &o.entries[i]
		p := raw[i*occEntryBytes:]
		for j := range ent.counts {
			ent.counts[j] = binary.LittleEndian.Uint32(p[j*4:])
		}
		for j := range ent.bases {
			ent.bases[j] = binary.LittleEndian.Uint64(p[16+j*8:])
		}
	}
	return o, nil
}
