package fmindex

import (
	"math/rand"
	"testing"
)

func benchIndex(b *testing.B, flavor Flavor) (*Index, [][]byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(900))
	text := doubledText(randText(rng, 1<<20))
	x, _, err := Build(text, flavor)
	if err != nil {
		b.Fatal(err)
	}
	reads := make([][]byte, 256)
	for i := range reads {
		pos := rng.Intn(len(text)/2 - 160)
		rd := append([]byte(nil), text[pos:pos+151]...)
		for m := 0; m < 3; m++ {
			rd[rng.Intn(len(rd))] = byte(rng.Intn(4))
		}
		reads[i] = rd
	}
	return x, reads
}

// BenchmarkSMEMBaseline measures the full three-pass seeding on the η=128
// table (the Table 4 "original" configuration, wall-clock view).
func BenchmarkSMEMBaseline(b *testing.B) {
	x, reads := benchIndex(b, Baseline)
	var buf SMEMBuf
	var out []BiInterval
	opts := DefaultSeedOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = x.CollectIntervals(reads[i%len(reads)], opts, &buf, out)
	}
}

// BenchmarkSMEMOptimized measures the same seeding on the η=32 table.
func BenchmarkSMEMOptimized(b *testing.B) {
	x, reads := benchIndex(b, Optimized)
	var buf SMEMBuf
	var out []BiInterval
	opts := DefaultSeedOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = x.CollectIntervals(reads[i%len(reads)], opts, &buf, out)
	}
}

// BenchmarkIndexBuild measures end-to-end index construction (SA-IS + BWT +
// occurrence table) per megabase.
func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(901))
	text := doubledText(randText(rng, 1<<19))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(text, Optimized); err != nil {
			b.Fatal(err)
		}
	}
}
