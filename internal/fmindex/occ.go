// Occurrence (rank) tables over the stored BWT column B0. Two layouts are
// implemented, matching the two designs the paper compares:
//
//   - Occ128 — the original BWA-MEM layout (§4.1): bucket size η = 128 with
//     the BWT substring packed 2 bits per base. A bucket is 64 bytes: four
//     8-byte cumulative counts plus 32 bytes (four words) of packed bases.
//     Counting a base inside a bucket scans up to four 32-base words with
//     2-bit SWAR matching — "a large number of instructions" (§4.4).
//
//   - Occ32 — the paper's optimized layout (§4.4): bucket size η = 32 with
//     one byte per base so the in-bucket count vectorizes to a byte-compare
//     mask plus popcount (AVX2 in the paper; 8-byte SWAR words here). A
//     bucket is also one 64-byte cache line: four 4-byte counts (16 B), 32
//     base bytes, and 16 B of padding for cache-line alignment.
//
// Both tables answer rank queries over B0 (the sentinel-free stored BWT);
// the Index layer shifts full-column row numbers around the primary row.
package fmindex

import "math/bits"

// occEntryBytes is the size of one bucket of either layout: one cache line.
const occEntryBytes = 64

// ---------------------------------------------------------------------------
// Occ128: baseline layout.

type occ128Block struct {
	counts [4]uint64 // occurrences of each base strictly before this bucket
	data   [4]uint64 // 128 bases, 2 bits each, base i at bits (2i%64) of word i/32
}

// Occ128 is the original BWA-MEM occurrence table (η = 128, 2-bit packed).
type Occ128 struct {
	blocks []occ128Block
	n      int
}

// NewOcc128 builds the baseline table over the stored BWT column.
func NewOcc128(b0 []byte) *Occ128 {
	n := len(b0)
	nb := (n + 127) / 128
	if nb == 0 {
		nb = 1
	}
	o := &Occ128{blocks: make([]occ128Block, nb), n: n}
	var run [4]uint64
	for i, c := range b0 {
		blk := i >> 7
		if i&127 == 0 {
			o.blocks[blk].counts = run
		}
		w := (i & 127) >> 5
		sh := uint(i&31) << 1
		o.blocks[blk].data[w] |= uint64(c) << sh
		run[c]++
	}
	if n&127 == 0 && n > 0 {
		// counts of the (unused) trailing block boundary are never read.
		_ = run
	}
	if n == 0 {
		o.blocks[0].counts = run
	}
	return o
}

// count2bit counts occurrences of base c among the first m 2-bit slots of w.
func count2bit(w uint64, c byte, m int) int {
	if m == 0 {
		return 0
	}
	x := w ^ (0x5555555555555555 * uint64(c))
	mask := ^(x | x>>1) & 0x5555555555555555
	if m < 32 {
		mask &= (1 << (uint(m) * 2)) - 1
	}
	return bits.OnesCount64(mask)
}

// Count returns occurrences of c in B0[0..k]; k must be in [-1, n-1].
//
//bwalint:hot
func (o *Occ128) Count(c byte, k int) int {
	if k < 0 {
		return 0
	}
	blk := &o.blocks[k>>7]
	cnt := int(blk.counts[c])
	m := k&127 + 1
	for w := 0; m > 0; w++ {
		step := m
		if step > 32 {
			step = 32
		}
		cnt += count2bit(blk.data[w], c, step)
		m -= step
	}
	return cnt
}

// Count4 returns occurrences of all four bases in B0[0..k].
//
//bwalint:hot
func (o *Occ128) Count4(k int) (cnt [4]int) {
	if k < 0 {
		return
	}
	blk := &o.blocks[k>>7]
	for c := 0; c < 4; c++ {
		cnt[c] = int(blk.counts[c])
	}
	m := k&127 + 1
	for w := 0; m > 0; w++ {
		step := m
		if step > 32 {
			step = 32
		}
		d := blk.data[w]
		for c := byte(0); c < 4; c++ {
			cnt[c] += count2bit(d, c, step)
		}
		m -= step
	}
	return
}

// Eta returns the bucket size.
func (o *Occ128) Eta() int { return 128 }

// EntryIndex returns the bucket number holding position k (k >= 0).
func (o *Occ128) EntryIndex(k int) int { return k >> 7 }

// wordsFor reports how many packed words an in-bucket scan up to k touches.
func (o *Occ128) wordsFor(k int) int { return (k&127)>>5 + 1 }

// basesPerWord is the number of symbol slots per scanned word.
func (o *Occ128) basesPerWord() int { return 32 }

// MemFootprint returns the table size in bytes.
func (o *Occ128) MemFootprint() int { return len(o.blocks) * occEntryBytes }

// ---------------------------------------------------------------------------
// Occ32: the paper's optimized layout.

type occ32Entry struct {
	counts [4]uint32 // occurrences of each base strictly before this bucket
	bases  [4]uint64 // 32 bases, one byte each, base i at byte i%8 of word i/8
	pad    [2]uint64 // padding to a full 64-byte cache line (§4.4)
}

// Occ32 is the paper's optimized occurrence table (η = 32, byte-per-base).
type Occ32 struct {
	entries []occ32Entry
	n       int
}

// NewOcc32 builds the optimized table over the stored BWT column. It errors
// via panic if the text exceeds the 4-byte count range (the same limit the
// paper's 16-byte count area implies).
func NewOcc32(b0 []byte) *Occ32 {
	n := len(b0)
	if uint64(n) > 1<<32-1 {
		panic("fmindex: text too long for 32-bit occurrence counts")
	}
	ne := (n + 31) / 32
	if ne == 0 {
		ne = 1
	}
	o := &Occ32{entries: make([]occ32Entry, ne), n: n}
	var run [4]uint32
	for i, c := range b0 {
		ent := i >> 5
		if i&31 == 0 {
			o.entries[ent].counts = run
		}
		w := (i & 31) >> 3
		sh := uint(i&7) << 3
		o.entries[ent].bases[w] |= uint64(c) << sh
		run[c]++
	}
	if n == 0 {
		o.entries[0].counts = run
	}
	// The pad field exists only to give each entry cache-line size; keep the
	// compiler from flagging it as dead.
	_ = o.entries[0].pad
	return o
}

const (
	ones  = 0x0101010101010101
	highs = 0x8080808080808080
	lows  = 0x7f7f7f7f7f7f7f7f
)

// countByteEq counts bytes equal to c among the first m bytes of w (bytes
// taken little-endian). The zero-byte detection is the carry-free SWAR form,
// exact per byte — this is the scalar stand-in for the paper's AVX2
// byte-compare + popcount.
func countByteEq(w uint64, c byte, m int) int {
	if m == 0 {
		return 0
	}
	x := w ^ (ones * uint64(c))
	t := (x & lows) + lows
	mask := ^(t | x | lows) // 0x80 exactly at zero bytes
	if m < 8 {
		mask &= (1 << (uint(m) * 8)) - 1
	}
	return bits.OnesCount64(mask)
}

// Count returns occurrences of c in B0[0..k]; k must be in [-1, n-1].
//
//bwalint:hot
func (o *Occ32) Count(c byte, k int) int {
	if k < 0 {
		return 0
	}
	ent := &o.entries[k>>5]
	cnt := int(ent.counts[c])
	m := k&31 + 1
	for w := 0; m > 0; w++ {
		step := m
		if step > 8 {
			step = 8
		}
		cnt += countByteEq(ent.bases[w], c, step)
		m -= step
	}
	return cnt
}

// Count4 returns occurrences of all four bases in B0[0..k].
//
//bwalint:hot
func (o *Occ32) Count4(k int) (cnt [4]int) {
	if k < 0 {
		return
	}
	ent := &o.entries[k>>5]
	for c := 0; c < 4; c++ {
		cnt[c] = int(ent.counts[c])
	}
	m := k&31 + 1
	for w := 0; m > 0; w++ {
		step := m
		if step > 8 {
			step = 8
		}
		d := ent.bases[w]
		for c := byte(0); c < 4; c++ {
			cnt[c] += countByteEq(d, c, step)
		}
		m -= step
	}
	return
}

// Eta returns the bucket size.
func (o *Occ32) Eta() int { return 32 }

// EntryIndex returns the bucket number holding position k (k >= 0).
func (o *Occ32) EntryIndex(k int) int { return k >> 5 }

// wordsFor reports how many base words an in-bucket scan up to k touches.
func (o *Occ32) wordsFor(k int) int { return (k&31)>>3 + 1 }

// basesPerWord is the number of symbol slots per scanned word.
func (o *Occ32) basesPerWord() int { return 8 }

// MemFootprint returns the table size in bytes.
func (o *Occ32) MemFootprint() int { return len(o.entries) * occEntryBytes }
