package fmindex

import (
	"math/rand"
	"reflect"
	"testing"
)

// bruteSMEMs computes all SMEMs of q overlapping position x0 by definition:
// substrings of q containing x0 that occur in text, are maximal (no left or
// right extension still occurs), and are not contained in another maximal
// match of q.
func bruteSMEMs(text, q []byte, x0 int) [][2]int {
	type span struct{ s, e int }
	var mems []span
	for s := 0; s <= x0; s++ {
		for e := x0 + 1; e <= len(q); e++ {
			if countOcc(text, q[s:e]) == 0 {
				continue
			}
			leftMax := s == 0 || countOcc(text, q[s-1:e]) == 0
			rightMax := e == len(q) || countOcc(text, q[s:e+1]) == 0
			if leftMax && rightMax {
				mems = append(mems, span{s, e})
			}
		}
	}
	var out [][2]int
	for _, m := range mems {
		contained := false
		for _, o := range mems {
			if o != m && o.s <= m.s && m.e <= o.e {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, [2]int{m.s, m.e})
		}
	}
	return out
}

func TestSMEM1MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		text := doubledText(randText(rng, 30+rng.Intn(150)))
		for _, flavor := range []Flavor{Baseline, Optimized} {
			x, _, err := Build(text, flavor)
			if err != nil {
				t.Fatal(err)
			}
			var buf SMEMBuf
			for rep := 0; rep < 10; rep++ {
				q := randText(rng, 4+rng.Intn(20))
				x0 := rng.Intn(len(q))
				got, _ := x.SMEM1(q, x0, 1, &buf, nil)
				want := bruteSMEMs(text, q, x0)
				if len(got) != len(want) {
					t.Fatalf("trial %d %v: q=%v x0=%d: got %v, want %v", trial, flavor, q, x0, got, want)
				}
				for i, m := range got {
					if int(m.QBeg) != want[i][0] || int(m.QEnd) != want[i][1] {
						t.Fatalf("trial %d %v: q=%v x0=%d: smem %d = %v, want %v", trial, flavor, q, x0, i, m, want[i])
					}
					if m.S != countOcc(text, q[m.QBeg:m.QEnd]) {
						t.Fatalf("trial %d %v: smem %v: S=%d, occurrences=%d",
							trial, flavor, m, m.S, countOcc(text, q[m.QBeg:m.QEnd]))
					}
				}
			}
		}
	}
}

func TestSMEM1ReturnValueAdvances(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	text := doubledText(randText(rng, 200))
	x, _, _ := Build(text, Optimized)
	var buf SMEMBuf
	q := randText(rng, 60)
	for x0 := 0; x0 < len(q); {
		_, next := x.SMEM1(q, x0, 1, &buf, nil)
		if next <= x0 {
			t.Fatalf("SMEM1 did not advance: x0=%d next=%d", x0, next)
		}
		x0 = next
	}
}

func TestSMEM1AmbiguousBase(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	text := doubledText(randText(rng, 100))
	x, _, _ := Build(text, Baseline)
	var buf SMEMBuf
	q := randText(rng, 20)
	q[5] = 4 // N
	// Starting on the N: no mems, advance by one.
	mems, next := x.SMEM1(q, 5, 1, &buf, nil)
	if len(mems) != 0 || next != 6 {
		t.Fatalf("SMEM1 on N: mems=%v next=%d", mems, next)
	}
	// Starting before the N: no SMEM may cross position 5.
	mems, _ = x.SMEM1(q, 2, 1, &buf, nil)
	for _, m := range mems {
		if m.QBeg <= 5 && 5 < m.QEnd {
			t.Fatalf("SMEM %v crosses the ambiguous base", m)
		}
	}
}

func TestSMEM1MinIntv(t *testing.T) {
	// With minIntv above the occurrence count of any long match, SMEM1 only
	// keeps shorter, more frequent matches — the re-seeding mechanism.
	rng := rand.New(rand.NewSource(34))
	fwd := randText(rng, 400)
	text := doubledText(fwd)
	x, _, _ := Build(text, Optimized)
	var buf SMEMBuf
	// A query equal to a unique region of the text.
	q := append([]byte(nil), fwd[100:140]...)
	full, _ := x.SMEM1(q, 20, 1, &buf, nil)
	if len(full) != 1 || full[0].Len() != 40 {
		t.Fatalf("expected one full-length SMEM, got %v", full)
	}
	occ := full[0].S
	again, _ := x.SMEM1(q, 20, occ+1, &buf, nil)
	for _, m := range again {
		if m.Len() == 40 && m.S == occ {
			t.Fatalf("raised minIntv should suppress the unique full-length match: %v", again)
		}
	}
}

func TestCollectIntervalsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	fwd := randText(rng, 2000)
	text := doubledText(fwd)
	opt := DefaultSeedOpts()
	for _, flavor := range []Flavor{Baseline, Optimized} {
		x, _, _ := Build(text, flavor)
		var buf SMEMBuf
		for rep := 0; rep < 20; rep++ {
			// Reads sampled from the reference with a few mismatches.
			pos := rng.Intn(len(fwd) - 120)
			q := append([]byte(nil), fwd[pos:pos+100]...)
			for m := 0; m < 3; m++ {
				q[rng.Intn(len(q))] = byte(rng.Intn(4))
			}
			seeds := x.CollectIntervals(q, opt, &buf, nil)
			if len(seeds) == 0 {
				t.Fatalf("no seeds for a reference-derived read")
			}
			for i, s := range seeds {
				if s.S < 1 {
					t.Fatalf("seed %v has empty interval", s)
				}
				if s.QBeg < 0 || int(s.QEnd) > len(q) || s.QBeg >= s.QEnd {
					t.Fatalf("seed %v out of query range", s)
				}
				if s.Len() < opt.MinSeedLen {
					t.Fatalf("seed %v shorter than MinSeedLen", s)
				}
				if s.S != countOcc(text, q[s.QBeg:s.QEnd]) {
					t.Fatalf("seed %v: S=%d but %d occurrences", s, s.S, countOcc(text, q[s.QBeg:s.QEnd]))
				}
				if i > 0 && (seeds[i-1].QBeg > s.QBeg ||
					(seeds[i-1].QBeg == s.QBeg && seeds[i-1].QEnd > s.QEnd)) {
					t.Fatalf("seeds not sorted: %v before %v", seeds[i-1], s)
				}
			}
		}
	}
}

func TestCollectIntervalsFlavorsIdentical(t *testing.T) {
	// The paper's core requirement: the optimized index must produce output
	// identical to the baseline.
	rng := rand.New(rand.NewSource(36))
	fwd := randText(rng, 3000)
	text := doubledText(fwd)
	xb, _, _ := Build(text, Baseline)
	xo, _, _ := Build(text, Optimized)
	opt := DefaultSeedOpts()
	var bb, bo SMEMBuf
	for rep := 0; rep < 50; rep++ {
		pos := rng.Intn(len(fwd) - 160)
		q := append([]byte(nil), fwd[pos:pos+151]...)
		for m := 0; m < 1+rng.Intn(6); m++ {
			q[rng.Intn(len(q))] = byte(rng.Intn(4))
		}
		sb := xb.CollectIntervals(q, opt, &bb, nil)
		so := xo.CollectIntervals(q, opt, &bo, nil)
		if !reflect.DeepEqual(sb, so) {
			t.Fatalf("rep %d: flavors disagree:\nbaseline  %v\noptimized %v", rep, sb, so)
		}
	}
}

func TestSeedStrategy1(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	fwd := randText(rng, 1000)
	text := doubledText(fwd)
	x, _, _ := Build(text, Optimized)
	q := append([]byte(nil), fwd[200:260]...)
	m, next, found := x.SeedStrategy1(q, 0, 19, 20)
	if !found {
		t.Fatal("expected a seed from a reference-derived read")
	}
	if m.Len() < 20 {
		t.Fatalf("seed length %d, want > minLen", m.Len())
	}
	if m.S >= 20 {
		t.Fatalf("seed occurrence %d, want < maxIntv", m.S)
	}
	if next != int(m.QEnd) {
		t.Fatalf("next=%d, want %d", next, m.QEnd)
	}
	if m.S != countOcc(text, q[m.QBeg:m.QEnd]) {
		t.Fatalf("S=%d, occurrences=%d", m.S, countOcc(text, q[m.QBeg:m.QEnd]))
	}
	// Ambiguous start.
	q[0] = 4
	if _, next, found := x.SeedStrategy1(q, 0, 19, 20); found || next != 1 {
		t.Fatal("N start should not seed")
	}
}
