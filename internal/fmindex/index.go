// Package fmindex implements the FM-index over the doubled reference
// (forward strand + reverse complement) and the bidirectional backward/
// forward extension and SMEM search algorithms of BWA-MEM (paper §2.2-§2.3,
// §4, Algorithms 1-4).
//
// The package provides both occurrence-table designs the paper compares —
// the Baseline flavor is original BWA-MEM's η=128 2-bit layout, the
// Optimized flavor is the paper's η=32 byte-per-base layout with modeled
// software prefetching — behind one Index type, so every algorithm above
// this layer is shared and output is identical by construction.
package fmindex

import (
	"fmt"
	"sort"

	"repro/internal/bwt"
	"repro/internal/trace"
)

// Flavor selects the occurrence-table design.
type Flavor int

const (
	// Baseline is original BWA-MEM: η=128, 2-bit packed BWT, no software
	// prefetching.
	Baseline Flavor = iota
	// Optimized is the paper's design: η=32, byte-per-base BWT in one cache
	// line per bucket, with software prefetching of future buckets.
	Optimized
)

func (f Flavor) String() string {
	if f == Optimized {
		return "optimized"
	}
	return "baseline"
}

// BiInterval is a bi-directional SA interval (k, l, s) as in §4.2: K is the
// first row of the match's interval, L the first row of the interval of the
// reverse complement of the match, and S the interval size. QBeg/QEnd give
// the query span of the match once known.
type BiInterval struct {
	K, L, S    int
	QBeg, QEnd int32
}

// Len returns the query-span length of the interval.
func (b BiInterval) Len() int { return int(b.QEnd - b.QBeg) }

func (b BiInterval) String() string {
	return fmt.Sprintf("[k=%d l=%d s=%d q=%d:%d]", b.K, b.L, b.S, b.QBeg, b.QEnd)
}

// Index is the FM-index: the BWT plus one occurrence table.
type Index struct {
	B      *bwt.BWT
	flavor Flavor
	occ128 *Occ128
	occ32  *Occ32
	tr     *trace.Tracer
}

// Build constructs the index of text (codes 0..3) in the given flavor. It
// also returns the full-matrix suffix array for suffix-array-lookup
// construction.
func Build(text []byte, flavor Flavor) (*Index, []int32, error) {
	b, full, err := bwt.FromText(text)
	if err != nil {
		return nil, nil, err
	}
	return New(b, flavor), full, nil
}

// New wraps an existing BWT in an index of the given flavor.
func New(b *bwt.BWT, flavor Flavor) *Index {
	return NewFromParts(b, flavor, nil, nil)
}

// NewFromParts wraps an existing BWT and, when non-nil, a preloaded
// occurrence table of the requested flavor — e.g. one aliased out of a
// memory-mapped v2 index, which skips the linear rebuild over B0. A nil (or
// wrong-flavor) table is built from B0 exactly as New does. A provided
// table must cover a text of length b.N.
func NewFromParts(b *bwt.BWT, flavor Flavor, o128 *Occ128, o32 *Occ32) *Index {
	x := &Index{B: b, flavor: flavor}
	if flavor == Optimized {
		if o32 != nil && o32.n == b.N {
			x.occ32 = o32
		} else {
			x.occ32 = NewOcc32(b.B0)
		}
	} else {
		if o128 != nil && o128.n == b.N {
			x.occ128 = o128
		} else {
			x.occ128 = NewOcc128(b.B0)
		}
	}
	return x
}

// Flavor reports which occurrence-table design the index uses.
func (x *Index) Flavor() Flavor { return x.flavor }

// SetTracer installs (or removes, with nil) an instrumentation tracer. The
// index must not be shared between goroutines while traced.
func (x *Index) SetTracer(tr *trace.Tracer) { x.tr = tr }

// MemFootprint returns the occurrence-table size in bytes.
func (x *Index) MemFootprint() int {
	if x.occ32 != nil {
		return x.occ32.MemFootprint()
	}
	return x.occ128.MemFootprint()
}

// entryIndex returns the occurrence-table bucket for a stored-BWT position.
func (x *Index) entryIndex(k int) int {
	if x.occ32 != nil {
		return x.occ32.EntryIndex(k)
	}
	return x.occ128.EntryIndex(k)
}

// traceOcc records one bucket visit covering stored position k.
func (x *Index) traceOcc(k int) {
	tr := x.tr
	tr.OccCalls++
	var words, bpw int
	if x.occ32 != nil {
		words, bpw = x.occ32.wordsFor(k), x.occ32.basesPerWord()
	} else {
		words, bpw = x.occ128.wordsFor(k), x.occ128.basesPerWord()
	}
	tr.OccWords += int64(words)
	tr.OccBases += int64(words * bpw)
	tr.Load(trace.OccBase+uint64(x.entryIndex(k))*occEntryBytes, occEntryBytes)
}

// occ4 returns occurrences of each base in the full transform column
// B'[0..row]; row must be in [-1, N].
func (x *Index) occ4(row int) [4]int {
	k := x.B.RankShift(row)
	if k < 0 {
		return [4]int{}
	}
	if x.tr != nil {
		x.traceOcc(k)
	}
	if x.occ32 != nil {
		return x.occ32.Count4(k)
	}
	return x.occ128.Count4(k)
}

// occ4Pair computes occ4 at two rows at once (BWA's bwt_2occ4): when both
// rows fall into the same occurrence bucket — increasingly likely as
// matches lengthen and intervals shrink (§4.2) — the bucket is visited
// once, halving the memory traffic of an extension.
func (x *Index) occ4Pair(rowK, rowL int) (ck, cl [4]int) {
	k := x.B.RankShift(rowK)
	l := x.B.RankShift(rowL)
	if k < 0 || l < 0 || x.entryIndex(k) != x.entryIndex(l) {
		return x.occ4(rowK), x.occ4(rowL)
	}
	if x.tr != nil {
		x.traceOcc(l) // one bucket visit covers both rank bounds
	}
	if x.occ32 != nil {
		return x.occ32.Count4(k), x.occ32.Count4(l)
	}
	return x.occ128.Count4(k), x.occ128.Count4(l)
}

// Occ returns occurrences of base c in B'[0..row]; row must be in [-1, N].
func (x *Index) Occ(c byte, row int) int {
	k := x.B.RankShift(row)
	if k < 0 {
		return 0
	}
	if x.tr != nil {
		x.traceOcc(k)
	}
	if x.occ32 != nil {
		return x.occ32.Count(c, k)
	}
	return x.occ128.Count(c, k)
}

// SetIntv returns the bi-interval of the single base c (BWA's bwt_set_intv).
func (x *Index) SetIntv(c byte) BiInterval {
	return BiInterval{K: x.B.C[c], L: x.B.C[3-c], S: x.B.Counts[c]}
}

// Extend computes the bi-intervals of ik extended by every base at once
// (BWA's bwt_extend, the paper's Algorithms 2-3). With isBack true the
// result for prepending base b is ok[b]; with isBack false the result for
// appending base b is ok[3-b] (the complement trick of Algorithm 3).
func (x *Index) Extend(ik BiInterval, isBack bool) (ok [4]BiInterval) {
	if x.tr != nil {
		x.tr.Extends++
	}
	a, b := ik.K, ik.L
	if !isBack {
		a, b = b, a
	}
	tk, tl := x.occ4Pair(a-1, a+ik.S-1)
	for c := 0; c < 4; c++ {
		na := x.B.C[c] + tk[c]
		if isBack {
			ok[c].K = na
		} else {
			ok[c].L = na
		}
		ok[c].S = tl[c] - tk[c]
	}
	// Rows whose suffix is exactly the current match followed by the
	// sentinel partition ahead of all base extensions; there is at most one
	// (the primary row).
	cum := b
	if a <= x.B.Primary && x.B.Primary <= a+ik.S-1 {
		cum++
	}
	for c := 3; c >= 0; c-- {
		if isBack {
			ok[c].L = cum
		} else {
			ok[c].K = cum
		}
		cum += ok[c].S
	}
	return ok
}

// prefetchOcc issues a modeled software-prefetch hint for the occurrence
// bucket of a full-column row (paper Algorithm 4, lines 11-12 and 26-27).
// Only the optimized flavor prefetches, and only when tracing with prefetch
// enabled — pure-Go execution has no prefetch instruction, so the hint only
// affects the cache model.
func (x *Index) prefetchOcc(row int) {
	tr := x.tr
	if tr == nil || !tr.EnablePrefetch || x.flavor != Optimized {
		return
	}
	k := x.B.RankShift(row)
	if k < 0 || k >= x.B.N {
		return
	}
	tr.Prefetch(trace.OccBase+uint64(x.entryIndex(k))*occEntryBytes, occEntryBytes)
}

// LF maps a full-matrix row to the row whose suffix starts one text position
// earlier (the LF mapping / inverse Psi). LF of the primary row wraps to the
// sentinel row 0.
func (x *Index) LF(k int) int {
	if k == x.B.Primary {
		return 0
	}
	c := x.B.Char(k)
	return x.B.C[c] + x.Occ(c, k) - 1
}

// sortIntervals orders seeds by (QBeg, QEnd), BWA's mem_intv order.
func sortIntervals(a []BiInterval) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].QBeg != a[j].QBeg {
			return a[i].QBeg < a[j].QBeg
		}
		return a[i].QEnd < a[j].QEnd
	})
}
