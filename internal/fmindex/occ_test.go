package fmindex

import (
	"math/rand"
	"testing"
)

// naiveCount counts c in b0[0..k] inclusive.
func naiveCount(b0 []byte, c byte, k int) int {
	n := 0
	for i := 0; i <= k; i++ {
		if b0[i] == c {
			n++
		}
	}
	return n
}

func randB0(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(4))
	}
	return b
}

func TestOcc128MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 31, 32, 33, 127, 128, 129, 300, 1000} {
		b0 := randB0(rng, n)
		o := NewOcc128(b0)
		for k := -1; k < n; k++ {
			got4 := o.Count4(k)
			for c := byte(0); c < 4; c++ {
				want := 0
				if k >= 0 {
					want = naiveCount(b0, c, k)
				}
				if got := o.Count(c, k); got != want {
					t.Fatalf("n=%d Occ128.Count(%d,%d) = %d, want %d", n, c, k, got, want)
				}
				if got4[c] != want {
					t.Fatalf("n=%d Occ128.Count4(%d)[%d] = %d, want %d", n, k, c, got4[c], want)
				}
			}
		}
	}
}

func TestOcc32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 7, 8, 9, 31, 32, 33, 64, 300, 1000} {
		b0 := randB0(rng, n)
		o := NewOcc32(b0)
		for k := -1; k < n; k++ {
			got4 := o.Count4(k)
			for c := byte(0); c < 4; c++ {
				want := 0
				if k >= 0 {
					want = naiveCount(b0, c, k)
				}
				if got := o.Count(c, k); got != want {
					t.Fatalf("n=%d Occ32.Count(%d,%d) = %d, want %d", n, c, k, got, want)
				}
				if got4[c] != want {
					t.Fatalf("n=%d Occ32.Count4(%d)[%d] = %d, want %d", n, k, c, got4[c], want)
				}
			}
		}
	}
}

func TestOccLayoutGeometry(t *testing.T) {
	b0 := randB0(rand.New(rand.NewSource(1)), 1000)
	o128, o32 := NewOcc128(b0), NewOcc32(b0)
	if o128.Eta() != 128 || o32.Eta() != 32 {
		t.Fatal("eta")
	}
	// 1000 bases: ceil(1000/128)=8 blocks, ceil(1000/32)=32 entries; 64 B each.
	if o128.MemFootprint() != 8*64 {
		t.Errorf("Occ128 footprint = %d", o128.MemFootprint())
	}
	if o32.MemFootprint() != 32*64 {
		t.Errorf("Occ32 footprint = %d", o32.MemFootprint())
	}
	// The optimized table trades 4x memory for fewer scanned bases — the
	// §4.4 trade-off.
	if o32.MemFootprint() != 4*o128.MemFootprint() {
		t.Errorf("footprint ratio: %d vs %d", o32.MemFootprint(), o128.MemFootprint())
	}
	if o128.EntryIndex(129) != 1 || o32.EntryIndex(129) != 4 {
		t.Error("entry index")
	}
	// Words scanned for a mid-bucket query: Occ128 touches 32-base words,
	// Occ32 touches 8-base words.
	if o128.wordsFor(64) != 3 || o128.basesPerWord() != 32 {
		t.Errorf("Occ128 words for k=64: %d", o128.wordsFor(64))
	}
	if o32.wordsFor(64) != 1 || o32.basesPerWord() != 8 {
		t.Errorf("Occ32 words for k=64: %d", o32.wordsFor(64))
	}
}

func TestCount2bitEdge(t *testing.T) {
	// Word with all slots = 0 ('A'): count of A in m slots is m.
	for m := 0; m <= 32; m++ {
		if got := count2bit(0, 0, m); got != m {
			t.Fatalf("count2bit(0,0,%d) = %d", m, got)
		}
		if got := count2bit(0, 1, m); got != 0 {
			t.Fatalf("count2bit(0,1,%d) = %d", m, got)
		}
	}
	// All slots = 3.
	w := ^uint64(0)
	for m := 0; m <= 32; m++ {
		if got := count2bit(w, 3, m); got != m {
			t.Fatalf("count2bit(ff,3,%d) = %d", m, got)
		}
	}
}

func TestCountByteEqEdge(t *testing.T) {
	// Bytes 0..7 in one word.
	var w uint64
	for i := 0; i < 8; i++ {
		w |= uint64(i&3) << (8 * i) // pattern 0,1,2,3,0,1,2,3
	}
	for c := byte(0); c < 4; c++ {
		for m := 0; m <= 8; m++ {
			want := 0
			for i := 0; i < m; i++ {
				if byte(i&3) == c {
					want++
				}
			}
			if got := countByteEq(w, c, m); got != want {
				t.Fatalf("countByteEq(c=%d,m=%d) = %d, want %d", c, m, got, want)
			}
		}
	}
	// The carry-free form must not produce the classic haszero false
	// positive: adjacent 0x00 then 0x01 bytes.
	w = 0x0100 // byte0=0x00, byte1=0x01
	if got := countByteEq(w, 0, 8); got != 7 {
		t.Fatalf("countByteEq(0x0100, 0) = %d, want 7 (bytes 0,2..7 are zero)", got)
	}
}

func BenchmarkOcc128Count4(b *testing.B) {
	b0 := randB0(rand.New(rand.NewSource(5)), 1<<20)
	o := NewOcc128(b0)
	rng := rand.New(rand.NewSource(6))
	ks := make([]int, 4096)
	for i := range ks {
		ks[i] = rng.Intn(len(b0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Count4(ks[i&4095])
	}
}

func BenchmarkOcc32Count4(b *testing.B) {
	b0 := randB0(rand.New(rand.NewSource(5)), 1<<20)
	o := NewOcc32(b0)
	rng := rand.New(rand.NewSource(6))
	ks := make([]int, 4096)
	for i := range ks {
		ks[i] = rng.Intn(len(b0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Count4(ks[i&4095])
	}
}
