package fmindex

import (
	"math/rand"
	"testing"
)

// occSource abstracts the two tables for the shared raw-codec checks.
type occSource interface {
	Count(c byte, k int) int
	Count4(k int) [4]int
}

func checkOccEqual(t *testing.T, want, got occSource, n int, label string) {
	t.Helper()
	step := 1
	if n > 512 {
		step = n / 512
	}
	for k := -1; k < n; k += step {
		for c := byte(0); c < 4; c++ {
			if w, g := want.Count(c, k), got.Count(c, k); w != g {
				t.Fatalf("%s: Count(%d, %d) = %d, want %d", label, c, k, g, w)
			}
		}
		if w, g := want.Count4(k), got.Count4(k); w != g {
			t.Fatalf("%s: Count4(%d) = %v, want %v", label, k, g, w)
		}
	}
}

func TestOccRawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 31, 32, 33, 127, 128, 129, 1000, 4097} {
		b0 := make([]byte, n)
		for i := range b0 {
			b0[i] = byte(rng.Intn(4))
		}
		o128, o32 := NewOcc128(b0), NewOcc32(b0)

		raw128, raw32 := o128.Raw(), o32.Raw()
		if len(raw128) != Occ128Blocks(n)*occEntryBytes {
			t.Fatalf("n=%d: occ128 raw is %d bytes", n, len(raw128))
		}
		if len(raw32) != Occ32Entries(n)*occEntryBytes {
			t.Fatalf("n=%d: occ32 raw is %d bytes", n, len(raw32))
		}

		// Aligned path (aliases on little-endian hosts).
		r128, err := Occ128FromRaw(raw128, n)
		if err != nil {
			t.Fatal(err)
		}
		checkOccEqual(t, o128, r128, n, "occ128 aligned")
		r32, err := Occ32FromRaw(raw32, n)
		if err != nil {
			t.Fatal(err)
		}
		checkOccEqual(t, o32, r32, n, "occ32 aligned")

		// Misaligned copies force the explicit decode path even on
		// little-endian hosts.
		mis := func(raw []byte) []byte {
			buf := make([]byte, len(raw)+1)
			copy(buf[1:], raw)
			return buf[1:]
		}
		m128, err := Occ128FromRaw(mis(raw128), n)
		if err != nil {
			t.Fatal(err)
		}
		checkOccEqual(t, o128, m128, n, "occ128 misaligned")
		m32, err := Occ32FromRaw(mis(raw32), n)
		if err != nil {
			t.Fatal(err)
		}
		checkOccEqual(t, o32, m32, n, "occ32 misaligned")
	}
}

func TestOccFromRawRejectsBadLength(t *testing.T) {
	b0 := []byte{0, 1, 2, 3, 0, 1}
	raw := NewOcc128(b0).Raw()
	if _, err := Occ128FromRaw(raw[:len(raw)-1], len(b0)); err == nil {
		t.Fatal("short occ128 section should not parse")
	}
	if _, err := Occ128FromRaw(raw, len(b0)+200); err == nil {
		t.Fatal("occ128 section for the wrong text length should not parse")
	}
	raw32 := NewOcc32(b0).Raw()
	if _, err := Occ32FromRaw(raw32[:0], len(b0)); err == nil {
		t.Fatal("empty occ32 section should not parse")
	}
}

func TestNewFromPartsUsesProvidedTable(t *testing.T) {
	b0 := make([]byte, 500)
	rng := rand.New(rand.NewSource(12))
	for i := range b0 {
		b0[i] = byte(rng.Intn(4))
	}
	// A BWT over b0 as its stored column (contents are arbitrary for the
	// occurrence table itself).
	idx, _, err := Build(b0, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	pre := NewOcc32(idx.B.B0)
	x := NewFromParts(idx.B, Optimized, nil, pre)
	if x.occ32 != pre {
		t.Fatal("NewFromParts did not adopt the provided occ32 table")
	}
	// Wrong-size table is ignored, not adopted.
	wrong := NewOcc32(b0[:100])
	x = NewFromParts(idx.B, Optimized, nil, wrong)
	if x.occ32 == wrong {
		t.Fatal("NewFromParts adopted a table of the wrong length")
	}
	checkOccEqual(t, NewOcc32(idx.B.B0), x.occ32, idx.B.N, "rebuilt occ32")
}
