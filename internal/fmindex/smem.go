// SMEM search (paper §4.2, Algorithm 4; BWA's bwt_smem1) and the three-pass
// seeding strategy of BWA-MEM (mem_collect_intv): SMEMs, re-seeding inside
// long SMEMs, and the LAST-like third pass.
package fmindex

// SMEMBuf holds reusable scratch for SMEM search. Allocate one per worker
// and reuse it across reads — this is the paper's §3.2 "few large
// allocations reused across batches" discipline.
type SMEMBuf struct {
	prev, curr, mem []BiInterval
}

func reverseIntervals(a []BiInterval) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// SMEM1 computes all super-maximal exact matches of q that overlap position
// x0, appending them to out ordered by query start. minIntv is the smallest
// interval size (occurrence count) worth extending; seeding uses 1, and
// re-seeding uses the parent SMEM's occurrence count + 1. The second return
// value is the query position at which the caller should resume the SMEM
// sweep (one past the longest forward extension from x0).
//
//bwalint:hot
func (x *Index) SMEM1(q []byte, x0, minIntv int, buf *SMEMBuf, out []BiInterval) ([]BiInterval, int) {
	n := len(q)
	if q[x0] > 3 {
		return out, x0 + 1
	}
	if minIntv < 1 {
		minIntv = 1
	}
	prev, curr := buf.prev[:0], buf.curr[:0]

	// Forward pass: extend right from x0, recording the interval each time
	// its size shrinks — those are the distinct right-maximal candidates.
	ik := x.SetIntv(q[x0])
	ik.QBeg, ik.QEnd = int32(x0), int32(x0+1)
	i := x0 + 1
	for ; i < n; i++ {
		if q[i] > 3 { // ambiguous base always terminates extension
			curr = append(curr, ik)
			break
		}
		c := 3 - q[i] // forward extension appends via the complement
		ok := x.Extend(ik, false)
		if ok[c].S != ik.S {
			curr = append(curr, ik)
			if ok[c].S < minIntv {
				break
			}
		}
		ik = ok[c]
		ik.QEnd = int32(i + 1)
		// Prefetch the buckets the next extension of ik will touch
		// (Algorithm 4 lines 11-12).
		x.prefetchOcc(ik.L - 1)
		x.prefetchOcc(ik.L + ik.S - 1)
	}
	if i == n {
		curr = append(curr, ik)
	}
	ret := int(curr[len(curr)-1].QEnd)
	// Visit longer matches (smaller intervals) first in the backward pass.
	reverseIntervals(curr)
	prev, curr = curr, prev

	// Backward pass: extend every candidate left in lockstep over the same
	// query position; emit a candidate as an SMEM the moment it can no
	// longer be extended, unless a longer candidate is still alive (it
	// would contain this one).
	memStart := len(out)
	for i = x0 - 1; i >= -1; i-- {
		c := -1
		if i >= 0 && q[i] < 4 {
			c = int(q[i])
		}
		curr = curr[:0]
		for j := range prev {
			p := &prev[j]
			var ok [4]BiInterval
			if c >= 0 {
				ok = x.Extend(*p, true)
			}
			if c < 0 || ok[c].S < minIntv {
				if len(curr) == 0 { // no longer candidate is alive
					if len(out) == memStart || i+1 < int(out[len(out)-1].QBeg) {
						m := *p
						m.QBeg = int32(i + 1)
						out = append(out, m)
					}
				}
			} else if len(curr) == 0 || ok[c].S != curr[len(curr)-1].S {
				ok[c].QBeg, ok[c].QEnd = p.QBeg, p.QEnd
				curr = append(curr, ok[c])
				// Prefetch the buckets a future backward extension of this
				// surviving candidate will touch (Algorithm 4 lines 26-27).
				x.prefetchOcc(ok[c].K - 1)
				x.prefetchOcc(ok[c].K + ok[c].S - 1)
			}
		}
		if len(curr) == 0 {
			break
		}
		prev, curr = curr, prev
	}
	reverseIntervals(out[memStart:]) // emitted right-to-left; flip to start order

	buf.prev, buf.curr = prev, curr
	return out, ret
}

// SeedStrategy1 is BWA's third-round seeding (bwt_seed_strategy1): starting
// at x0 it extends forward only, returning the first seed longer than minLen
// whose occurrence count drops below maxIntv. The second return value is the
// resume position, and found reports whether a usable seed was produced.
func (x *Index) SeedStrategy1(q []byte, x0, minLen, maxIntv int) (m BiInterval, next int, found bool) {
	n := len(q)
	if q[x0] > 3 {
		return BiInterval{}, x0 + 1, false
	}
	ik := x.SetIntv(q[x0])
	for i := x0 + 1; i < n; i++ {
		if q[i] > 3 {
			return BiInterval{}, i + 1, false
		}
		c := 3 - q[i]
		ok := x.Extend(ik, false)
		if ok[c].S < maxIntv && i-x0 >= minLen {
			m = ok[c]
			m.QBeg, m.QEnd = int32(x0), int32(i+1)
			return m, i + 1, m.S > 0
		}
		ik = ok[c]
	}
	return BiInterval{}, n, false
}

// SeedOpts are the seeding parameters of BWA-MEM (defaults of mem_opt_init).
type SeedOpts struct {
	MinSeedLen  int     // -k: minimum seed length (19)
	SplitFactor float64 // split long SMEMs when longer than MinSeedLen*SplitFactor (1.5)
	SplitWidth  int     // re-seed only SMEMs with at most this many hits (10)
	MaxMemIntv  int     // third-round seeding occurrence ceiling (20; 0 disables)
}

// DefaultSeedOpts returns BWA-MEM's defaults.
func DefaultSeedOpts() SeedOpts {
	return SeedOpts{MinSeedLen: 19, SplitFactor: 1.5, SplitWidth: 10, MaxMemIntv: 20}
}

// CollectIntervals runs the full three-pass seeding of BWA-MEM
// (mem_collect_intv) over one read and returns the seed intervals sorted by
// query start. out is reused if it has capacity.
func (x *Index) CollectIntervals(q []byte, opt SeedOpts, buf *SMEMBuf, out []BiInterval) []BiInterval {
	out = out[:0]
	splitLen := int(float64(opt.MinSeedLen)*opt.SplitFactor + .499)

	// Pass 1: all SMEMs of length >= MinSeedLen.
	for pos := 0; pos < len(q); {
		if q[pos] > 3 {
			pos++
			continue
		}
		buf.mem = buf.mem[:0]
		buf.mem, pos = x.SMEM1(q, pos, 1, buf, buf.mem)
		for _, m := range buf.mem {
			if m.Len() >= opt.MinSeedLen {
				out = append(out, m)
			}
		}
	}

	// Pass 2: re-seed inside long, low-occurrence SMEMs from their middle
	// with a raised minimum interval, to recover seeds masked by repeats.
	oldN := len(out)
	for k := 0; k < oldN; k++ {
		p := out[k]
		if p.Len() < splitLen || p.S > opt.SplitWidth {
			continue
		}
		buf.mem = buf.mem[:0]
		buf.mem, _ = x.SMEM1(q, (int(p.QBeg)+int(p.QEnd))>>1, p.S+1, buf, buf.mem)
		for _, m := range buf.mem {
			if m.Len() >= opt.MinSeedLen {
				out = append(out, m)
			}
		}
	}

	// Pass 3: LAST-like forward-only seeds capped at MaxMemIntv occurrences.
	if opt.MaxMemIntv > 0 {
		for pos := 0; pos < len(q); {
			if q[pos] > 3 {
				pos++
				continue
			}
			m, next, found := x.SeedStrategy1(q, pos, opt.MinSeedLen, opt.MaxMemIntv)
			pos = next
			if found {
				out = append(out, m)
			}
		}
	}

	sortIntervals(out)
	return out
}
