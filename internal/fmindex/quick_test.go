package fmindex

import (
	"testing"
	"testing/quick"
)

// TestQuickOccTablesAgree drives both occurrence-table layouts with
// testing/quick: on any BWT column they must report identical ranks at
// every position — the foundation of the modes-identical guarantee.
func TestQuickOccTablesAgree(t *testing.T) {
	f := func(raw []byte, at uint16) bool {
		if len(raw) == 0 {
			return true
		}
		b0 := make([]byte, len(raw))
		for i, b := range raw {
			b0[i] = b & 3
		}
		o128, o32 := NewOcc128(b0), NewOcc32(b0)
		k := int(at)%(len(b0)+1) - 1 // in [-1, len-1]
		if o128.Count4(k) != o32.Count4(k) {
			return false
		}
		for c := byte(0); c < 4; c++ {
			if o128.Count(c, k) != o32.Count(c, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickRankSumsToPosition checks the rank identity: the four per-base
// ranks at any position sum to the number of symbols counted.
func TestQuickRankSumsToPosition(t *testing.T) {
	f := func(raw []byte, at uint16) bool {
		if len(raw) == 0 {
			return true
		}
		b0 := make([]byte, len(raw))
		for i, b := range raw {
			b0[i] = b & 3
		}
		k := int(at) % len(b0)
		for _, counts := range [][4]int{NewOcc128(b0).Count4(k), NewOcc32(b0).Count4(k)} {
			if counts[0]+counts[1]+counts[2]+counts[3] != k+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
