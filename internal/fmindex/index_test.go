package fmindex

import (
	"math/rand"
	"testing"

	"repro/internal/memsim"
	"repro/internal/seq"
	"repro/internal/trace"
)

func randText(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(rng.Intn(4))
	}
	return t
}

// doubledText builds forward+revcomp, the only shape BWA ever indexes.
func doubledText(fwd []byte) []byte {
	r, err := seq.NewReference([]string{"c"}, [][]byte{seq.Decode(fwd)})
	if err != nil {
		panic(err)
	}
	return r.Doubled()
}

func hasPrefix(s, pat []byte) bool {
	if len(s) < len(pat) {
		return false
	}
	for i := range pat {
		if s[i] != pat[i] {
			return false
		}
	}
	return true
}

// bruteInterval finds the SA interval of pat by scanning the full-matrix
// suffix array directly.
func bruteInterval(text []byte, fullSA []int32, pat []byte) (k, s int) {
	k = -1
	for r := 0; r < len(fullSA); r++ {
		if hasPrefix(text[fullSA[r]:], pat) {
			if k < 0 {
				k = r
			}
			s++
		} else if k >= 0 {
			break
		}
	}
	return k, s
}

func countOcc(text, pat []byte) int {
	if len(pat) == 0 {
		return 0
	}
	n := 0
	for i := 0; i+len(pat) <= len(text); i++ {
		if hasPrefix(text[i:], pat) {
			n++
		}
	}
	return n
}

// backwardSearch builds the interval of pat via Extend(isBack=true).
func backwardSearch(x *Index, pat []byte) (BiInterval, bool) {
	ik := x.SetIntv(pat[len(pat)-1])
	for i := len(pat) - 2; i >= 0; i-- {
		ok := x.Extend(ik, true)
		ik = ok[pat[i]]
		if ik.S <= 0 {
			return ik, false
		}
	}
	return ik, true
}

// forwardSearch builds the interval of pat via Extend(isBack=false).
func forwardSearch(x *Index, pat []byte) (BiInterval, bool) {
	ik := x.SetIntv(pat[0])
	for i := 1; i < len(pat); i++ {
		ok := x.Extend(ik, false)
		ik = ok[3-pat[i]]
		if ik.S <= 0 {
			return ik, false
		}
	}
	return ik, true
}

func TestBackwardSearchCountsOccurrences(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, flavor := range []Flavor{Baseline, Optimized} {
		for trial := 0; trial < 30; trial++ {
			text := doubledText(randText(rng, 50+rng.Intn(200)))
			x, fullSA, err := Build(text, flavor)
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < 30; p++ {
				plen := 1 + rng.Intn(12)
				pat := randText(rng, plen)
				want := countOcc(text, pat)
				ik, live := backwardSearch(x, pat)
				got := 0
				if live {
					got = ik.S
				} else if ik.S > 0 {
					t.Fatalf("dead interval with positive size")
				}
				if got != want {
					t.Fatalf("%v: pattern %v: interval size %d, want %d", flavor, pat, got, want)
				}
				if live {
					bk, bs := bruteInterval(text, fullSA, pat)
					if ik.K != bk || ik.S != bs {
						t.Fatalf("%v: pattern %v: interval (%d,%d), brute (%d,%d)", flavor, pat, ik.K, ik.S, bk, bs)
					}
				}
			}
		}
	}
}

func TestBiIntervalSymmetry(t *testing.T) {
	// On the doubled text, the L coordinate of a pattern's bi-interval must
	// be the K coordinate of the reverse complement's interval.
	rng := rand.New(rand.NewSource(22))
	text := doubledText(randText(rng, 300))
	x, fullSA, err := Build(text, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 100; p++ {
		pat := randText(rng, 1+rng.Intn(10))
		ik, live := backwardSearch(x, pat)
		if !live {
			continue
		}
		rc := seq.RevComp(pat)
		bk, bs := bruteInterval(text, fullSA, rc)
		if bs != ik.S || bk != ik.L {
			t.Fatalf("pattern %v: L=%d S=%d; revcomp brute interval (%d,%d)", pat, ik.L, ik.S, bk, bs)
		}
	}
}

func TestForwardEqualsBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	text := doubledText(randText(rng, 300))
	x, _, err := Build(text, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 100; p++ {
		pat := randText(rng, 1+rng.Intn(10))
		fi, fl := forwardSearch(x, pat)
		bi, bl := backwardSearch(x, pat)
		if fl != bl {
			t.Fatalf("pattern %v: forward live=%v backward live=%v", pat, fl, bl)
		}
		if fl && (fi.K != bi.K || fi.L != bi.L || fi.S != bi.S) {
			t.Fatalf("pattern %v: forward %v != backward %v", pat, fi, bi)
		}
	}
}

func TestLFWalksTextBackwards(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	text := doubledText(randText(rng, 200))
	for _, flavor := range []Flavor{Baseline, Optimized} {
		x, fullSA, err := Build(text, flavor)
		if err != nil {
			t.Fatal(err)
		}
		n := len(text)
		for k := 0; k <= n; k++ {
			got := int(fullSA[x.LF(k)])
			want := (int(fullSA[k]) - 1 + n + 1) % (n + 1)
			if got != want {
				t.Fatalf("%v: LF(%d) lands on SA=%d, want %d", flavor, k, got, want)
			}
		}
	}
}

func TestFlavorsAgreeOnOcc(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	text := doubledText(randText(rng, 500))
	xb, _, _ := Build(text, Baseline)
	xo, _, _ := Build(text, Optimized)
	for k := -1; k <= len(text); k++ {
		ob, oo := xb.occ4(k), xo.occ4(k)
		if ob != oo {
			t.Fatalf("occ4(%d): baseline %v optimized %v", k, ob, oo)
		}
	}
}

func TestTracerCountsAndCache(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	text := doubledText(randText(rng, 2000))
	x, _, _ := Build(text, Optimized)
	tr := &trace.Tracer{Mem: memsim.New(memsim.Scaled()), EnablePrefetch: true}
	x.SetTracer(tr)
	q := randText(rng, 50)
	var buf SMEMBuf
	mems, _ := x.SMEM1(q, 0, 1, &buf, nil)
	x.SetTracer(nil)
	if tr.OccCalls == 0 || tr.OccWords < tr.OccCalls || tr.Extends == 0 {
		t.Fatalf("tracer counters not advancing: %+v", tr)
	}
	if tr.Mem.Stats.Loads == 0 {
		t.Fatal("cache model saw no loads")
	}
	if tr.Prefetches == 0 {
		t.Fatal("optimized flavor should issue prefetch hints")
	}
	_ = mems
}

func TestOcc4PairMatchesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	text := doubledText(randText(rng, 800))
	for _, flavor := range []Flavor{Baseline, Optimized} {
		x, _, _ := Build(text, flavor)
		n := len(text)
		for trial := 0; trial < 2000; trial++ {
			a := rng.Intn(n+2) - 1
			b := rng.Intn(n+2) - 1
			ck, cl := x.occ4Pair(a, b)
			if ck != x.occ4(a) || cl != x.occ4(b) {
				t.Fatalf("%v: occ4Pair(%d,%d) = %v,%v; separate %v,%v",
					flavor, a, b, ck, cl, x.occ4(a), x.occ4(b))
			}
		}
	}
}

func TestOcc4PairSharedBucketTracesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	text := doubledText(randText(rng, 800))
	x, _, _ := Build(text, Optimized)
	tr := &trace.Tracer{}
	x.SetTracer(tr)
	defer x.SetTracer(nil)
	// Rows whose shifted positions share one η=32 bucket: pick two rows in
	// the same bucket well away from the primary row.
	base := ((x.B.Primary + 64) / 32) * 32
	x.occ4Pair(base+1, base+20)
	if tr.OccCalls != 1 {
		t.Fatalf("shared-bucket pair should cost one visit, got %d", tr.OccCalls)
	}
	tr.ResetCounters()
	x.occ4Pair(base+1, base+200)
	if tr.OccCalls != 2 {
		t.Fatalf("split pair should cost two visits, got %d", tr.OccCalls)
	}
}

func TestBaselineNeverPrefetches(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	text := doubledText(randText(rng, 1000))
	x, _, _ := Build(text, Baseline)
	tr := &trace.Tracer{Mem: memsim.New(memsim.Scaled()), EnablePrefetch: true}
	x.SetTracer(tr)
	var buf SMEMBuf
	q := randText(rng, 40)
	x.SMEM1(q, 0, 1, &buf, nil)
	if tr.Prefetches != 0 {
		t.Fatalf("baseline issued %d prefetches", tr.Prefetches)
	}
}
