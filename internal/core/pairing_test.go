package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/seq"
)

// samplePair extracts an FR pair from the reference.
func samplePair(rng *rand.Rand, ref *seq.Reference, readLen, insert, subs int) (r1, r2 seq.Read, pos int) {
	pos = rng.Intn(ref.Lpac() - insert - 2)
	frag := append([]byte(nil), ref.Pac[pos:pos+insert]...)
	e1 := append([]byte(nil), frag[:readLen]...)
	e2 := seq.RevComp(frag[insert-readLen:])
	for i := 0; i < subs; i++ {
		e1[rng.Intn(readLen)] = byte(rng.Intn(4))
		e2[rng.Intn(readLen)] = byte(rng.Intn(4))
	}
	r1 = seq.Read{Name: "p", Seq: seq.Decode(e1)}
	r2 = seq.Read{Name: "p", Seq: seq.Decode(e2)}
	return
}

func alignPairs(t *testing.T, a *Aligner, ref *seq.Reference, n int, seed int64) (regs1, regs2 [][]Region) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ws := &Workspace{}
	for i := 0; i < n; i++ {
		insert := 280 + rng.Intn(60)
		r1, r2, _ := samplePair(rng, ref, 100, insert, 1)
		regs1 = append(regs1, a.AlignRead(seq.Encode(r1.Seq), ws))
		regs2 = append(regs2, a.AlignRead(seq.Encode(r2.Seq), ws))
	}
	return
}

func TestInferPairStats(t *testing.T) {
	ref := testRef(t, 60000, 301)
	a := newTestAligner(t, ref, ModeOptimized)
	regs1, regs2 := alignPairs(t, a, ref, 60, 302)
	ps := a.InferPairStats(regs1, regs2)
	if ps.Failed {
		t.Fatal("stats inference failed with 60 clean pairs")
	}
	if ps.Mean < 260 || ps.Mean > 360 {
		t.Fatalf("mean insert %.1f, want ~280-340", ps.Mean)
	}
	if ps.Low >= ps.High || ps.Low < 1 {
		t.Fatalf("bad acceptance range [%d,%d]", ps.Low, ps.High)
	}
	if !(float64(ps.Low) < ps.Mean && ps.Mean < float64(ps.High)) {
		t.Fatalf("mean outside range: %.1f not in [%d,%d]", ps.Mean, ps.Low, ps.High)
	}
}

func TestInferPairStatsFailsOnFewPairs(t *testing.T) {
	ref := testRef(t, 60000, 303)
	a := newTestAligner(t, ref, ModeOptimized)
	regs1, regs2 := alignPairs(t, a, ref, 3, 304)
	if ps := a.InferPairStats(regs1, regs2); !ps.Failed {
		t.Fatal("3 pairs should not yield stats")
	}
}

func TestPairRegionsPicksConsistentPair(t *testing.T) {
	ref := testRef(t, 60000, 305)
	a := newTestAligner(t, ref, ModeOptimized)
	regs1, regs2 := alignPairs(t, a, ref, 40, 306)
	ps := a.InferPairStats(regs1, regs2)
	paired := 0
	for i := range regs1 {
		sel, ok := a.PairRegions(&ps, regs1[i], regs2[i])
		if !ok {
			continue
		}
		paired++
		r1, r2 := &regs1[i][sel.Z[0]], &regs2[i][sel.Z[1]]
		isize, ok2 := a.insertSize(r1, r2)
		if !ok2 || isize < ps.Low || isize > ps.High {
			t.Fatalf("pair %d: selected inconsistent placement (isize %d)", i, isize)
		}
	}
	if paired < 35 {
		t.Fatalf("only %d/40 pairs paired", paired)
	}
}

func TestAppendSAMPairRecords(t *testing.T) {
	ref := testRef(t, 60000, 307)
	a := newTestAligner(t, ref, ModeOptimized)
	rng := rand.New(rand.NewSource(308))
	// Build stats from a population first.
	regsA, regsB := alignPairs(t, a, ref, 40, 309)
	ps := a.InferPairStats(regsA, regsB)

	insert := 300
	r1, r2, pos := samplePair(rng, ref, 100, insert, 0)
	q1, q2 := seq.Encode(r1.Seq), seq.Encode(r2.Seq)
	ws := &Workspace{}
	g1 := a.AlignRead(q1, ws)
	g2 := a.AlignRead(q2, ws)
	sam := string(a.AppendSAMPair(nil, &ps, &r1, &r2, q1, q2, g1, g2))
	lines := strings.Split(strings.TrimSuffix(sam, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 records, got %d:\n%s", len(lines), sam)
	}
	f1 := strings.Split(lines[0], "\t")
	f2 := strings.Split(lines[1], "\t")
	flag1, flag2 := atoi(t, f1[1]), atoi(t, f2[1])
	if flag1&FlagPaired == 0 || flag2&FlagPaired == 0 {
		t.Fatalf("paired flags missing: %d %d", flag1, flag2)
	}
	if flag1&FlagFirst == 0 || flag2&FlagLast == 0 {
		t.Fatalf("first/last flags wrong: %d %d", flag1, flag2)
	}
	if flag1&FlagProperPair == 0 || flag2&FlagProperPair == 0 {
		t.Fatalf("proper-pair flags missing: %d %d", flag1, flag2)
	}
	// Exactly one end on the reverse strand; mate-reverse mirrors it.
	if (flag1&FlagReverse != 0) == (flag2&FlagReverse != 0) {
		t.Fatalf("FR orientation broken: %d %d", flag1, flag2)
	}
	if (flag1&FlagMateRev != 0) != (flag2&FlagReverse != 0) {
		t.Fatalf("mate-reverse inconsistent: %d %d", flag1, flag2)
	}
	// RNEXT is '=' and PNEXT crosses over.
	if f1[6] != "=" || f2[6] != "=" {
		t.Fatalf("rnext: %q %q", f1[6], f2[6])
	}
	if f1[7] != f2[3] || f2[7] != f1[3] {
		t.Fatalf("pnext mismatch: %v %v", f1[:9], f2[:9])
	}
	// TLEN is ±insert.
	t1, t2 := atoi(t, f1[8]), atoi(t, f2[8])
	if t1+t2 != 0 {
		t.Fatalf("tlen not symmetric: %d %d", t1, t2)
	}
	if abs(t1) < insert-15 || abs(t1) > insert+15 {
		t.Fatalf("tlen %d, want ~%d", t1, insert)
	}
	// Positions bracket the fragment.
	p1, p2 := atoi(t, f1[3])-1, atoi(t, f2[3])-1
	lo := p1
	if p2 < lo {
		lo = p2
	}
	if d := lo - pos; d < -10 || d > 10 {
		t.Fatalf("fragment start %d, want ~%d", lo, pos)
	}
}

func TestAppendSAMPairHalfMapped(t *testing.T) {
	ref := testRef(t, 60000, 310)
	a := newTestAligner(t, ref, ModeOptimized)
	rng := rand.New(rand.NewSource(311))
	regsA, regsB := alignPairs(t, a, ref, 40, 312)
	ps := a.InferPairStats(regsA, regsB)
	r1, _, _ := samplePair(rng, ref, 100, 300, 0)
	r2 := seq.Read{Name: "p", Seq: []byte(strings.Repeat("N", 100))}
	q1, q2 := seq.Encode(r1.Seq), seq.Encode(r2.Seq)
	g1 := a.AlignRead(q1, nil)
	g2 := a.AlignRead(q2, nil)
	sam := string(a.AppendSAMPair(nil, &ps, &r1, &r2, q1, q2, g1, g2))
	lines := strings.Split(strings.TrimSuffix(sam, "\n"), "\n")
	f1 := strings.Split(lines[0], "\t")
	f2 := strings.Split(lines[1], "\t")
	flag1, flag2 := atoi(t, f1[1]), atoi(t, f2[1])
	if flag1&FlagMateUnmap == 0 {
		t.Fatalf("end 1 should flag unmapped mate: %d", flag1)
	}
	if flag2&FlagUnmapped == 0 {
		t.Fatalf("end 2 should be unmapped: %d", flag2)
	}
	if flag1&FlagProperPair != 0 {
		t.Fatalf("half-mapped pair cannot be proper: %d", flag1)
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, neg := 0, false
	for i := 0; i < len(s); i++ {
		if i == 0 && s[i] == '-' {
			neg = true
			continue
		}
		if s[i] < '0' || s[i] > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	if neg {
		return -n
	}
	return n
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
