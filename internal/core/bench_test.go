package core

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func benchAligner(b *testing.B, mode Mode) (*Aligner, [][]byte, []seq.Read) {
	b.Helper()
	ref := testRef(b, 1<<19, 910)
	a, err := NewAligner(ref, mode, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(911))
	var codes [][]byte
	var reads []seq.Read
	for i := 0; i < 256; i++ {
		rd, _ := sampleRead(rng, ref, 101, rng.Intn(4), i%2 == 0)
		reads = append(reads, rd)
		codes = append(codes, seq.Encode(rd.Seq))
	}
	return a, codes, reads
}

// BenchmarkAlignReadBaseline measures one read through the baseline
// configuration (η=128 + compressed SA + scalar extension).
func BenchmarkAlignReadBaseline(b *testing.B) {
	a, codes, _ := benchAligner(b, ModeBaseline)
	ws := &Workspace{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AlignRead(codes[i%len(codes)], ws)
	}
}

// BenchmarkAlignReadOptimized measures one read through the optimized
// configuration (η=32 + flat SA).
func BenchmarkAlignReadOptimized(b *testing.B) {
	a, codes, _ := benchAligner(b, ModeOptimized)
	ws := &Workspace{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AlignRead(codes[i%len(codes)], ws)
	}
}

// BenchmarkSAMFormat measures record rendering alone.
func BenchmarkSAMFormat(b *testing.B) {
	a, codes, reads := benchAligner(b, ModeOptimized)
	ws := &Workspace{}
	regs := make([][]Region, len(codes))
	for i := range codes {
		regs[i] = a.AlignRead(codes[i], ws)
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(codes)
		buf = a.AppendSAM(buf[:0], &reads[k], codes[k], regs[k])
	}
}
