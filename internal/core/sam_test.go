package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/seq"
)

func TestMDTagPerfectRead(t *testing.T) {
	ref := testRef(t, 20000, 401)
	a := newTestAligner(t, ref, ModeOptimized)
	rng := rand.New(rand.NewSource(402))
	rd, _ := sampleRead(rng, ref, 80, 0, false)
	codes := seq.Encode(rd.Seq)
	regs := a.AlignRead(codes, nil)
	aln := a.regToAln(codes, &regs[0])
	if aln.MD != "80" {
		t.Fatalf("MD = %q, want \"80\"", aln.MD)
	}
}

func TestMDTagMismatch(t *testing.T) {
	ref := testRef(t, 20000, 403)
	a := newTestAligner(t, ref, ModeOptimized)
	pos := 7000
	codes := append([]byte(nil), ref.Pac[pos:pos+80]...)
	want := seq.Base(codes[40])
	codes[40] = (codes[40] + 1) & 3 // plant one mismatch
	regs := a.AlignRead(codes, nil)
	aln := a.regToAln(codes, &regs[0])
	if aln.MD != "40"+string(want)+"39" {
		t.Fatalf("MD = %q, want 40%c39", aln.MD, want)
	}
	if aln.NM != 1 {
		t.Fatalf("NM = %d", aln.NM)
	}
}

func TestMDTagDeletion(t *testing.T) {
	ref := testRef(t, 20000, 404)
	a := newTestAligner(t, ref, ModeOptimized)
	pos := 9000
	window := append([]byte(nil), ref.Pac[pos:pos+84]...)
	// Read missing 3 reference bases in the middle.
	read := append(append([]byte(nil), window[:40]...), window[43:]...)
	regs := a.AlignRead(read, nil)
	aln := a.regToAln(read, &regs[0])
	if !strings.Contains(aln.MD, "^") {
		t.Fatalf("MD %q should contain a deletion block", aln.MD)
	}
	delBases := seq.Decode(window[40:43])
	if !strings.Contains(aln.MD, "^"+string(delBases)) {
		t.Fatalf("MD %q should name the deleted bases %s", aln.MD, delBases)
	}
}

func TestXATagListsRepeatCopy(t *testing.T) {
	// Reference with a diverged duplicate segment: a read from one copy
	// should carry the other copy in XA on its primary record.
	rng := rand.New(rand.NewSource(405))
	unit := make([]byte, 2000)
	for i := range unit {
		unit[i] = byte(rng.Intn(4))
	}
	copy2 := append([]byte(nil), unit...)
	for i := 0; i < 20; i++ { // diverge the copy slightly
		copy2[rng.Intn(len(copy2))] = byte(rng.Intn(4))
	}
	pad := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(4))
		}
		return s
	}
	genome := append(append(append(pad(3000), unit...), pad(3000)...), copy2...)
	genome = append(genome, pad(3000)...)
	ref, err := seq.NewReference([]string{"c"}, [][]byte{seq.Decode(genome)})
	if err != nil {
		t.Fatal(err)
	}
	a := newTestAligner(t, ref, ModeOptimized)
	read := append([]byte(nil), ref.Pac[3100:3200]...)
	rd := seq.Read{Name: "xa", Seq: seq.Decode(read)}
	regs := a.AlignRead(read, nil)
	sam := string(a.AppendSAM(nil, &rd, read, regs))
	lines := strings.Split(strings.TrimSuffix(sam, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("want one primary record, got %d:\n%s", len(lines), sam)
	}
	if !strings.Contains(lines[0], "XA:Z:c,") {
		t.Fatalf("XA tag missing: %s", lines[0])
	}
	// The alternate position must point near the duplicate copy (~8000).
	xa := lines[0][strings.Index(lines[0], "XA:Z:"):]
	var altPos int
	if _, err := sscanXA(xa, &altPos); err != nil {
		t.Fatalf("unparsable XA %q: %v", xa, err)
	}
	if altPos < 7900 || altPos > 8400 {
		t.Fatalf("alt pos %d, want near 8100", altPos)
	}
}

func sscanXA(xa string, pos *int) (int, error) {
	// XA:Z:c,+8101,100M,3;
	i := strings.IndexAny(xa, "+-")
	if i < 0 {
		return 0, strings.NewReader("").UnreadByte()
	}
	n := 0
	for j := i + 1; j < len(xa) && xa[j] >= '0' && xa[j] <= '9'; j++ {
		n = n*10 + int(xa[j]-'0')
	}
	*pos = n
	return 1, nil
}

func TestMDRoundTripAgainstReference(t *testing.T) {
	// Property: walking MD over the read reconstructs the reference bases
	// consumed by the alignment.
	ref := testRef(t, 30000, 406)
	a := newTestAligner(t, ref, ModeOptimized)
	rng := rand.New(rand.NewSource(407))
	for trial := 0; trial < 25; trial++ {
		rd, _ := sampleRead(rng, ref, 100, rng.Intn(4), false)
		codes := seq.Encode(rd.Seq)
		regs := a.AlignRead(codes, nil)
		if len(regs) == 0 || regs[0].Secondary >= 0 {
			continue
		}
		aln := a.regToAln(codes, &regs[0])
		if aln.Rid < 0 || aln.IsRev {
			continue
		}
		// Sum of MD match runs + mismatch letters + deletion letters must
		// equal the reference span of the CIGAR.
		_, tlen := aln.Cigar.Lens()
		mdRef := 0
		md := aln.MD
		for i := 0; i < len(md); {
			switch {
			case md[i] >= '0' && md[i] <= '9':
				n := 0
				for i < len(md) && md[i] >= '0' && md[i] <= '9' {
					n = n*10 + int(md[i]-'0')
					i++
				}
				mdRef += n
			case md[i] == '^':
				i++
				for i < len(md) && md[i] >= 'A' && md[i] <= 'T' {
					mdRef++
					i++
				}
			default:
				mdRef++
				i++
			}
		}
		// Soft-clipped bases consume no reference.
		if mdRef != tlen {
			t.Fatalf("trial %d: MD %q covers %d ref bases, cigar %s covers %d",
				trial, aln.MD, mdRef, aln.Cigar, tlen)
		}
	}
}
