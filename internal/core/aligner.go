package core

import (
	"fmt"
	"time"

	"repro/internal/bsw"
	"repro/internal/chain"
	"repro/internal/counters"
	"repro/internal/fmindex"
	"repro/internal/sal"
	"repro/internal/seq"
)

// Aligner is the assembled BWA-MEM pipeline over one indexed reference.
// Build one with NewAligner and share it read-only across goroutines; give
// each goroutine its own Workspace.
type Aligner struct {
	Ref  *seq.Reference
	Idx  *fmindex.Index
	SA   sal.Lookuper
	Opts Options
	Mode Mode

	par5, par3 bsw.Params
	chOpts     chain.Opts
	batchCfg   bsw.BatchConfig

	// BatchStats, when non-nil, accumulates batched-BSW accounting for the
	// experiments. Not safe with concurrent AlignBatch calls.
	BatchStats *bsw.BatchStats
}

// Workspace holds all per-worker scratch, allocated once and reused across
// reads and batches (§3.2 of the paper: few large allocations, reused).
// Clock, when non-nil, accumulates per-stage wall time for the experiments.
type Workspace struct {
	smem       fmindex.SMEMBuf
	intervals  []fmindex.BiInterval
	seeds      []chain.Seed
	scalar     bsw.ScalarBuf
	qrev, trev []byte
	Clock      *counters.StageClock
}

// NewAligner indexes the reference and assembles the pipeline for the given
// mode. ModeBaseline uses the η=128 occurrence table and a compressed
// suffix array; ModeOptimized uses the η=32 table and a flat suffix array.
func NewAligner(ref *seq.Reference, mode Mode, opts Options) (*Aligner, error) {
	if ref.Lpac() == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	flavor := fmindex.Baseline
	if mode == ModeOptimized {
		flavor = fmindex.Optimized
	}
	idx, fullSA, err := fmindex.Build(ref.Doubled(), flavor)
	if err != nil {
		return nil, err
	}
	var lookup sal.Lookuper
	if mode == ModeOptimized || opts.SACompression <= 1 {
		lookup = sal.NewFlat(fullSA)
	} else {
		lookup, err = sal.NewCompressed(fullSA, opts.SACompression, idx)
		if err != nil {
			return nil, err
		}
	}
	a := &Aligner{
		Ref: ref, Idx: idx, SA: lookup, Opts: opts, Mode: mode,
		par5:   opts.bswParams(opts.PenClip5),
		par3:   opts.bswParams(opts.PenClip3),
		chOpts: opts.chainOpts(),
	}
	a.batchCfg = bsw.BatchConfig{
		Width8:  opts.BatchWidth8,
		Width16: opts.BatchWidth16,
		Sort:    !opts.DisableBSWSort,
	}
	return a, nil
}

// IndexFootprint returns the bytes of index data the aligner addresses:
// packed reference, BWT column, occurrence table, and the suffix-array
// lookup structure. Over a heap-loaded index this is private resident
// memory; over an mmap'd index the same bytes are file-backed and shared
// with every other process mapping the file.
func (a *Aligner) IndexFootprint() int64 {
	return int64(len(a.Ref.Pac)) + int64(len(a.Idx.B.B0)) +
		int64(a.Idx.MemFootprint()) + int64(a.SA.MemFootprint())
}

// ridOf resolves a doubled-reference span to a contig id, or -1 when the
// span bridges contigs or the forward/reverse boundary (bns_intv2rid).
func (a *Aligner) ridOf(rb, re int) int {
	l := a.Ref.Lpac()
	if rb < l && re > l {
		return -1
	}
	fb, fe := rb, re
	if rb >= l {
		fb, fe = 2*l-re, 2*l-rb
	}
	i1, _ := a.Ref.PosToContig(fb)
	i2, _ := a.Ref.PosToContig(fe - 1)
	if i1 < 0 || i1 != i2 {
		return -1
	}
	return i1
}

// fracRep measures the fraction of the read covered by seed intervals more
// frequent than MaxOcc (mem_chain's l_rep).
func fracRep(intervals []fmindex.BiInterval, maxOcc, qlen int) float64 {
	if qlen == 0 {
		return 0
	}
	lRep, b, e := 0, 0, 0
	for _, p := range intervals {
		if p.S <= maxOcc {
			continue
		}
		sb, se := int(p.QBeg), int(p.QEnd)
		if sb > e {
			lRep += e - b
			b, e = sb, se
		} else if se > e {
			e = se
		}
	}
	lRep += e - b
	return float64(lRep) / float64(qlen)
}

// placeSeeds is the SAL stage: each seed interval's occurrences are sampled
// (at most MaxOcc, with stride S/MaxOcc for repetitive seeds) and converted
// to reference coordinates via the suffix array.
func (a *Aligner) placeSeeds(intervals []fmindex.BiInterval, out []chain.Seed) []chain.Seed {
	out = out[:0]
	for _, p := range intervals {
		slen := p.Len()
		step := 1
		if p.S > a.Opts.MaxOcc {
			step = p.S / a.Opts.MaxOcc
		}
		for k, count := 0, 0; k < p.S && count < a.Opts.MaxOcc; k, count = k+step, count+1 {
			rbeg := a.SA.Lookup(p.K + k)
			out = append(out, chain.Seed{RBeg: rbeg, QBeg: int(p.QBeg), Len: slen, Score: slen})
		}
	}
	return out
}

// chainRead runs seeding, SAL and chaining for one read (pipeline stages 1-3).
func (a *Aligner) chainRead(q []byte, ws *Workspace) []*chain.Chain {
	t0 := time.Now()
	ws.intervals = a.Idx.CollectIntervals(q, a.Opts.Seed, &ws.smem, ws.intervals)
	t1 := time.Now()
	ws.Clock.Add(counters.StageSMEM, t1.Sub(t0))
	fr := fracRep(ws.intervals, a.Opts.MaxOcc, len(q))
	ws.seeds = a.placeSeeds(ws.intervals, ws.seeds)
	t2 := time.Now()
	ws.Clock.Add(counters.StageSAL, t2.Sub(t1))
	chains := chain.Build(&a.chOpts, a.Ref.Lpac(), ws.seeds, a.ridOf, fr)
	chains = chain.Filter(&a.chOpts, chains)
	ws.Clock.Add(counters.StageChain, time.Since(t2))
	return chains
}

// AlignRead maps one read (numeric codes) to candidate regions using the
// sequential (per-read) path with scalar extension — original BWA-MEM's
// processing order. Regions come back sorted by decreasing score with
// secondary marking applied.
func (a *Aligner) AlignRead(q []byte, ws *Workspace) []Region {
	if ws == nil {
		ws = &Workspace{}
	}
	chains := a.chainRead(q, ws)
	t0 := time.Now()
	var regs []Region
	ext := a.scalarExtend(&ws.scalar, nil)
	for _, c := range chains {
		regs = a.extendChain(q, c, regs, ext, ws)
	}
	ws.Clock.Add(counters.StageBSW, time.Since(t0))
	t1 := time.Now()
	regs = a.dedupRegions(regs)
	a.markPrimary(regs)
	ws.Clock.Add(counters.StageMisc, time.Since(t1))
	return regs
}

// pendingSeed tracks one seed extension through the two batched phases.
type pendingSeed struct {
	readIdx  int
	c        *chain.Chain
	seedIdx  int
	rmax0    int
	rseq     []byte
	reg      Region
	aw0, aw1 int
	leftJob  int // index into the left job list, or -1
	rightJob int // index into the right job list, or -1
	sc0      int
}

// runBatchWithRetry executes jobs through the batched engines at band W,
// retrying per-job at 2W under mem_chain2aln's rule. prev0[i] seeds the
// convergence test of job i. It returns results and per-job band used.
func (a *Aligner) runBatchWithRetry(par *bsw.Params, jobs []bsw.Job, prev0 []int) ([]bsw.ExtResult, []int) {
	w0 := a.Opts.W
	for i := range jobs {
		jobs[i].W = w0
	}
	cfg := a.batchCfg
	cfg.Stats = a.BatchStats
	res := bsw.RunBatch(par, jobs, cfg)
	aw := make([]int, len(jobs))
	var retry []int
	for i := range res {
		aw[i] = w0
		if res[i].Score == prev0[i] || res[i].MaxOff < (w0>>1)+(w0>>2) {
			continue
		}
		retry = append(retry, i)
	}
	if len(retry) > 0 {
		rjobs := make([]bsw.Job, len(retry))
		for j, i := range retry {
			rjobs[j] = jobs[i]
			rjobs[j].W = w0 << 1
		}
		rres := bsw.RunBatch(par, rjobs, cfg)
		for j, i := range retry {
			res[i] = rres[j]
			aw[i] = w0 << 1
		}
	}
	return res, aw
}

// CollectBSWJobs reproduces the paper's kernel-benchmark methodology for
// BSW (§2.5, §6.2.3): it runs the pipeline up to the extension stage and
// returns the sequence pairs that stage would process (left extensions
// first, then right extensions, whose seed scores depend on the left
// results). The returned jobs carry band width W and initial score H0.
func (a *Aligner) CollectBSWJobs(reads [][]byte, ws *Workspace) []bsw.Job {
	if ws == nil {
		ws = &Workspace{}
	}
	var pend []pendingSeed
	var leftJobs []bsw.Job
	var leftPrev []int
	for ri, q := range reads {
		for _, c := range a.chainRead(q, ws) {
			if len(c.Seeds) == 0 {
				continue
			}
			rmax0, _, rseq := a.chainWindow(len(q), c)
			for si := range c.Seeds {
				s := &c.Seeds[si]
				p := pendingSeed{readIdx: ri, c: c, seedIdx: si, rmax0: rmax0,
					rseq: rseq, reg: a.newRegion(c), leftJob: -1, rightJob: -1}
				if s.QBeg > 0 {
					qs := reverseBytes(nil, q[:s.QBeg])
					ts := reverseBytes(nil, rseq[:s.RBeg-rmax0])
					leftJobs = append(leftJobs, bsw.Job{Query: qs, Target: ts,
						W: a.Opts.W, H0: s.Len * a.Opts.MatchScore})
					leftPrev = append(leftPrev, -1)
					p.leftJob = len(leftJobs) - 1
				}
				pend = append(pend, p)
			}
		}
	}
	leftRes, _ := a.runBatchWithRetry(&a.par5, leftJobs, leftPrev)
	all := append([]bsw.Job(nil), leftJobs...)
	for pi := range pend {
		p := &pend[pi]
		q := reads[p.readIdx]
		s := &p.c.Seeds[p.seedIdx]
		if p.leftJob >= 0 {
			a.applyLeft(&p.reg, s, leftRes[p.leftJob])
		} else {
			a.applyNoLeft(&p.reg, s)
		}
		if s.QBeg+s.Len != len(q) {
			qe := s.QBeg + s.Len
			re := s.RBeg + s.Len - p.rmax0
			all = append(all, bsw.Job{Query: q[qe:], Target: p.rseq[re:],
				W: a.Opts.W, H0: p.reg.Score})
		}
	}
	return all
}

// AlignBatch maps a batch of reads with the paper's reorganized workflow
// (Fig. 2 / §5.3.2): every pipeline stage runs over the whole batch before
// the next starts, and seed extension is batched through the inter-task
// kernels — all seeds are extended, then the contained-seed skip heuristic
// is replayed so the output is identical to the sequential path.
func (a *Aligner) AlignBatch(reads [][]byte, ws *Workspace) [][]Region {
	if ws == nil {
		ws = &Workspace{}
	}
	// Stages 1-3 (SMEM, SAL, CHAIN) per read, over the whole batch.
	chainsPerRead := make([][]*chain.Chain, len(reads))
	for i, q := range reads {
		chainsPerRead[i] = a.chainRead(q, ws)
	}

	if !a.Opts.LaneBSW {
		// Production extension on a SIMD-less target: scalar cells with the
		// online contained-seed skip, still inside the batch-staged
		// workflow. Identical output to the lane path below.
		out := make([][]Region, len(reads))
		t0 := time.Now()
		ext := a.scalarExtend(&ws.scalar, nil)
		for ri, q := range reads {
			var regs []Region
			for _, c := range chainsPerRead[ri] {
				regs = a.extendChain(q, c, regs, ext, ws)
			}
			out[ri] = regs
		}
		ws.Clock.Add(counters.StageBSW, time.Since(t0))
		t1 := time.Now()
		for ri := range out {
			out[ri] = a.dedupRegions(out[ri])
			a.markPrimary(out[ri])
		}
		ws.Clock.Add(counters.StageMisc, time.Since(t1))
		return out
	}

	// Stage 4a: gather every seed of every kept chain and its left job.
	tPre := time.Now()
	var pend []pendingSeed
	var leftJobs []bsw.Job
	var leftPrev []int
	srtPerChain := make(map[*chain.Chain][]uint64)
	for ri, q := range reads {
		for _, c := range chainsPerRead[ri] {
			if len(c.Seeds) == 0 {
				continue
			}
			rmax0, _, rseq := a.chainWindow(len(q), c)
			srtPerChain[c] = seedOrder(c)
			for si := range c.Seeds {
				s := &c.Seeds[si]
				p := pendingSeed{readIdx: ri, c: c, seedIdx: si, rmax0: rmax0,
					rseq: rseq, reg: a.newRegion(c), aw0: a.Opts.W, aw1: a.Opts.W,
					leftJob: -1, rightJob: -1}
				if s.QBeg > 0 {
					qs := reverseBytes(nil, q[:s.QBeg])
					ts := reverseBytes(nil, rseq[:s.RBeg-rmax0])
					leftJobs = append(leftJobs, bsw.Job{Query: qs, Target: ts,
						H0: s.Len * a.Opts.MatchScore})
					leftPrev = append(leftPrev, -1)
					p.leftJob = len(leftJobs) - 1
				}
				pend = append(pend, p)
			}
		}
	}

	// Run all left extensions, fold them in, and build the right jobs.
	ws.Clock.Add(counters.StageBSWPre, time.Since(tPre))
	tBSW := time.Now()
	leftRes, leftAw := a.runBatchWithRetry(&a.par5, leftJobs, leftPrev)
	ws.Clock.Add(counters.StageBSW, time.Since(tBSW))
	tPre = time.Now()
	var rightJobs []bsw.Job
	var rightPrev []int
	for pi := range pend {
		p := &pend[pi]
		q := reads[p.readIdx]
		s := &p.c.Seeds[p.seedIdx]
		if p.leftJob >= 0 {
			p.aw0 = leftAw[p.leftJob]
			a.applyLeft(&p.reg, s, leftRes[p.leftJob])
		} else {
			a.applyNoLeft(&p.reg, s)
		}
		if s.QBeg+s.Len != len(q) {
			p.sc0 = p.reg.Score
			qe := s.QBeg + s.Len
			re := s.RBeg + s.Len - p.rmax0
			rightJobs = append(rightJobs, bsw.Job{Query: q[qe:], Target: p.rseq[re:], H0: p.sc0})
			rightPrev = append(rightPrev, p.sc0)
			p.rightJob = len(rightJobs) - 1
		}
	}

	// Run all right extensions and finish the regions.
	ws.Clock.Add(counters.StageBSWPre, time.Since(tPre))
	tBSW = time.Now()
	rightRes, rightAw := a.runBatchWithRetry(&a.par3, rightJobs, rightPrev)
	ws.Clock.Add(counters.StageBSW, time.Since(tBSW))
	tPre = time.Now()
	for pi := range pend {
		p := &pend[pi]
		q := reads[p.readIdx]
		s := &p.c.Seeds[p.seedIdx]
		if p.rightJob >= 0 {
			p.aw1 = rightAw[p.rightJob]
			a.applyRight(&p.reg, s, len(q), p.rmax0, p.sc0, rightRes[p.rightJob])
		} else {
			a.applyNoRight(&p.reg, s, len(q))
		}
		finishRegion(&p.reg, s, p.c, p.aw0, p.aw1)
	}

	// Index precomputed regions by (chain, seed index).
	regOf := make(map[*chain.Chain][]*Region)
	for pi := range pend {
		p := &pend[pi]
		lst := regOf[p.c]
		if lst == nil {
			lst = make([]*Region, len(p.c.Seeds))
			regOf[p.c] = lst
		}
		lst[p.seedIdx] = &p.reg
	}

	ws.Clock.Add(counters.StageBSWPre, time.Since(tPre))
	tMisc := time.Now()
	// Replay the sequential decision procedure per read (§5.3.2 "post
	// process them to filter out the ones that should not have been
	// extended"): identical skip decisions, hence identical output.
	out := make([][]Region, len(reads))
	for ri, q := range reads {
		var regs []Region
		for _, c := range chainsPerRead[ri] {
			if len(c.Seeds) == 0 {
				continue
			}
			srt := srtPerChain[c]
			for k := len(srt) - 1; k >= 0; k-- {
				s := &c.Seeds[uint32(srt[k])]
				if a.seedContainedIn(regs, s, len(q)) >= 0 {
					if !hasOverlappingSeed(c, srt, k, s) {
						srt[k] = 0
						continue
					}
				}
				regs = append(regs, *regOf[c][uint32(srt[k])])
			}
		}
		regs = a.dedupRegions(regs)
		a.markPrimary(regs)
		out[ri] = regs
	}
	ws.Clock.Add(counters.StageMisc, time.Since(tMisc))
	return out
}
