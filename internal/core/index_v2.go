// Format v2 of the .bwago index: a page-aligned, little-endian layout
// designed so the file can be memory-mapped read-only and the big arrays
// used in place (OpenIndexMmap in index_mmap.go), while staying loadable
// from a plain stream (ReadIndex).
//
//	offset  size  field
//	0       8     magic "BWAGOIDX" (shared with v1)
//	8       4     u32 version = 2
//	12      4     u32 page size = 4096 (section alignment)
//	16      8     u64 file size (end of the last section)
//	24      8     u64 BWT text length N (= 2 x packed reference length)
//	32      8     u64 BWT primary row
//	40      8     u64 ambiguous-base count
//	48      32    u64 x4 base counts of the text
//	80      4     u32 section count = 6
//	84      4     reserved (0)
//	88      144   section table: 6 x { u64 offset, u64 length, u64 crc64 }
//	232     8     u64 crc64 (ECMA) of header bytes [0, 232)
//	240     ...   zero padding to 4096
//
// Sections follow in table order, each starting on a 4096-byte boundary
// (zero padding in between), lengths exact:
//
//	meta    contig table: u64 count, then per contig u64 name length,
//	        name bytes, u64 offset, u64 length
//	pac     packed forward reference, one code byte per base
//	bwt     stored BWT column B0, one code byte per symbol
//	sa      full-matrix suffix array, little-endian int32 per row
//	occ128  baseline occurrence table, 64-byte blocks (fmindex raw layout)
//	occ32   optimized occurrence table, 64-byte entries
//
// Persisting both occurrence tables means loading skips the linear rebuild
// over the BWT column in either aligner mode; page alignment means pac,
// bwt, sa and the occ tables can alias an mmap'd file directly on
// little-endian hosts. The per-section CRCs are verified by heap loads and
// at write time; the mmap path verifies the header and meta CRCs only (see
// OpenIndexMmap).
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"unsafe"

	"repro/internal/bwt"
	"repro/internal/fmindex"
	"repro/internal/seq"
)

const (
	v2PageSize     = 4096
	v2HeaderBytes  = v2PageSize
	v2NumSections  = 6
	v2SectionTab   = 88
	v2HeaderCRCOff = v2SectionTab + 24*v2NumSections
)

// Section indices, in file order.
const (
	secMeta = iota
	secPac
	secBWT
	secSA
	secOcc128
	secOcc32
)

var secNames = [v2NumSections]string{"meta", "pac", "bwt", "sa", "occ128", "occ32"}

var crcTable = crc64.MakeTable(crc64.ECMA)

type v2Section struct{ off, length, crc uint64 }

type v2Header struct {
	fileSize   uint64
	bwtN       uint64
	bwtPrimary uint64
	numAmb     uint64
	counts     [4]uint64
	sections   [v2NumSections]v2Section
}

// int32sRaw views a suffix array as the on-disk little-endian byte layout —
// zero-copy (and read-only) on little-endian hosts
// (fmindex.HostLittleEndian, the shared byte-order probe).
func int32sRaw(a []int32) []byte {
	if len(a) == 0 {
		return nil
	}
	if fmindex.HostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), 4*len(a))
	}
	out := make([]byte, 0, 4*len(a))
	for _, v := range a {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	return out
}

// int32sFromRaw interprets an on-disk suffix-array section, aliasing raw
// zero-copy when the host is little-endian and the section is 4-byte
// aligned (always true for page-aligned mappings).
func int32sFromRaw(raw []byte) []int32 {
	n := len(raw) / 4
	if n == 0 {
		return nil
	}
	if fmindex.HostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

// WriteIndexV2 serializes the index in format v2. Both occurrence tables
// are built if not already present, so any later load — heap or mmap,
// either mode — skips the linear rebuild over the BWT column.
func (pi *Prebuilt) WriteIndexV2(w io.Writer) error {
	if err := pi.validate(); err != nil {
		return fmt.Errorf("core: refusing to write inconsistent index: %w", err)
	}
	return writeIndexV2(w, pi)
}

// writeIndexV2 emits the v2 file without validation (split out so tests can
// craft deliberately inconsistent files for the reader).
func writeIndexV2(w io.Writer, pi *Prebuilt) error {
	o128 := pi.Occ128
	if o128 == nil {
		o128 = fmindex.NewOcc128(pi.BWT.B0)
	}
	o32 := pi.Occ32
	if o32 == nil {
		o32 = fmindex.NewOcc32(pi.BWT.B0)
	}
	data := [v2NumSections][]byte{
		secMeta:   appendMetaV2(nil, pi.Ref.Contigs),
		secPac:    pi.Ref.Pac,
		secBWT:    pi.BWT.B0,
		secSA:     int32sRaw(pi.FullSA),
		secOcc128: o128.Raw(),
		secOcc32:  o32.Raw(),
	}
	var h v2Header
	h.bwtN = uint64(pi.BWT.N)
	h.bwtPrimary = uint64(pi.BWT.Primary)
	h.numAmb = uint64(pi.Ref.NumAmb)
	for c, v := range pi.BWT.Counts {
		h.counts[c] = uint64(v)
	}
	off := uint64(v2HeaderBytes)
	for i, d := range data {
		h.sections[i] = v2Section{off: off, length: uint64(len(d)), crc: crc64.Checksum(d, crcTable)}
		off = (off + uint64(len(d)) + v2PageSize - 1) &^ uint64(v2PageSize-1)
	}
	last := h.sections[v2NumSections-1]
	h.fileSize = last.off + last.length

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(h.encode()); err != nil {
		return err
	}
	var zeros [v2PageSize]byte
	pos := uint64(v2HeaderBytes)
	for i, d := range data {
		for pad := h.sections[i].off - pos; pad > 0; {
			step := pad
			if step > v2PageSize {
				step = v2PageSize
			}
			if _, err := bw.Write(zeros[:step]); err != nil {
				return err
			}
			pad -= step
		}
		if _, err := bw.Write(d); err != nil {
			return err
		}
		pos = h.sections[i].off + uint64(len(d))
	}
	return bw.Flush()
}

// encode renders the full 4096-byte header page, checksum included.
func (h *v2Header) encode() []byte {
	buf := make([]byte, v2HeaderBytes)
	le := binary.LittleEndian
	copy(buf, indexMagic)
	le.PutUint32(buf[8:], indexVersionV2)
	le.PutUint32(buf[12:], v2PageSize)
	le.PutUint64(buf[16:], h.fileSize)
	le.PutUint64(buf[24:], h.bwtN)
	le.PutUint64(buf[32:], h.bwtPrimary)
	le.PutUint64(buf[40:], h.numAmb)
	for c, v := range h.counts {
		le.PutUint64(buf[48+8*c:], v)
	}
	le.PutUint32(buf[80:], v2NumSections)
	for i, s := range h.sections {
		p := buf[v2SectionTab+24*i:]
		le.PutUint64(p, s.off)
		le.PutUint64(p[8:], s.length)
		le.PutUint64(p[16:], s.crc)
	}
	le.PutUint64(buf[v2HeaderCRCOff:], crc64.Checksum(buf[:v2HeaderCRCOff], crcTable))
	return buf
}

// parseV2Header parses and structurally validates a header page: checksum,
// section table geometry (page-aligned, monotone, non-overlapping, inside
// the declared file size), and the cross-section length invariants. Every
// later allocation and slice is bounded by what this function admits.
// actualSize, when >= 0, is the real input size to cross-check the header's
// claim against.
func parseV2Header(buf []byte, actualSize int64) (*v2Header, error) {
	if len(buf) < v2HeaderBytes {
		return nil, corruptf("v2 header truncated (%d bytes)", len(buf))
	}
	le := binary.LittleEndian
	if string(buf[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("core: not a bwamem-go index (magic %q)", buf[:len(indexMagic)])
	}
	if ver := le.Uint32(buf[8:]); ver != indexVersionV2 {
		return nil, fmt.Errorf("core: index version %d where v2 was expected", ver)
	}
	if got, want := le.Uint64(buf[v2HeaderCRCOff:]), crc64.Checksum(buf[:v2HeaderCRCOff], crcTable); got != want {
		return nil, corruptf("header checksum mismatch")
	}
	if ps := le.Uint32(buf[12:]); ps != v2PageSize {
		return nil, corruptf("unsupported page size %d", ps)
	}
	if sc := le.Uint32(buf[80:]); sc != v2NumSections {
		return nil, corruptf("section count %d, want %d", sc, v2NumSections)
	}
	h := &v2Header{
		fileSize:   le.Uint64(buf[16:]),
		bwtN:       le.Uint64(buf[24:]),
		bwtPrimary: le.Uint64(buf[32:]),
		numAmb:     le.Uint64(buf[40:]),
	}
	for c := range h.counts {
		h.counts[c] = le.Uint64(buf[48+8*c:])
	}
	if actualSize >= 0 && uint64(actualSize) != h.fileSize {
		return nil, corruptf("file is %d bytes, header claims %d", actualSize, h.fileSize)
	}
	pos := uint64(v2HeaderBytes)
	for i := range h.sections {
		p := buf[v2SectionTab+24*i:]
		s := v2Section{off: le.Uint64(p), length: le.Uint64(p[8:]), crc: le.Uint64(p[16:])}
		if s.off%v2PageSize != 0 || s.off < pos || s.length > h.fileSize || s.off > h.fileSize-s.length {
			return nil, corruptf("%s section [%d, +%d) outside the %d-byte file", secNames[i], s.off, s.length, h.fileSize)
		}
		h.sections[i] = s
		pos = s.off + s.length
	}
	if pos != h.fileSize {
		return nil, corruptf("declared file size %d does not end at the last section (%d)", h.fileSize, pos)
	}
	if h.bwtN > math.MaxInt32-1 {
		return nil, corruptf("text length %d exceeds the int32 suffix-array entry range", h.bwtN)
	}
	if h.bwtN != 2*h.sections[secPac].length {
		return nil, corruptf("BWT covers %d symbols, want %d (doubled reference of %d bp)",
			h.bwtN, 2*h.sections[secPac].length, h.sections[secPac].length)
	}
	if h.sections[secBWT].length != h.bwtN {
		return nil, corruptf("bwt section holds %d symbols, want %d", h.sections[secBWT].length, h.bwtN)
	}
	if h.sections[secSA].length != 4*(h.bwtN+1) {
		return nil, corruptf("sa section is %d bytes, want %d", h.sections[secSA].length, 4*(h.bwtN+1))
	}
	if h.bwtPrimary < 1 || h.bwtPrimary > h.bwtN {
		return nil, corruptf("primary row %d outside [1, %d]", h.bwtPrimary, h.bwtN)
	}
	for c, v := range h.counts {
		if v > h.bwtN {
			return nil, corruptf("base %d count %d exceeds text length %d", c, v, h.bwtN)
		}
	}
	return h, nil
}

// appendMetaV2 serializes the contig table.
func appendMetaV2(dst []byte, contigs []seq.Contig) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(len(contigs)))
	for _, c := range contigs {
		dst = le.AppendUint64(dst, uint64(len(c.Name)))
		dst = append(dst, c.Name...)
		dst = le.AppendUint64(dst, uint64(c.Offset))
		dst = le.AppendUint64(dst, uint64(c.Len))
	}
	return dst
}

// decodeMetaV2 parses the contig table with every field bounds-checked
// against the section itself; range checks against the packed reference
// happen in Prebuilt.validate.
func decodeMetaV2(raw []byte) ([]seq.Contig, error) {
	le := binary.LittleEndian
	u64 := func() (uint64, bool) {
		if len(raw) < 8 {
			return 0, false
		}
		v := le.Uint64(raw)
		raw = raw[8:]
		return v, true
	}
	nc, ok := u64()
	if !ok {
		return nil, corruptf("meta section truncated")
	}
	if nc == 0 || nc > uint64(len(raw))/24 {
		return nil, corruptf("contig count %d does not fit the %d-byte meta section", nc, len(raw)+8)
	}
	contigs := make([]seq.Contig, 0, nc)
	for i := uint64(0); i < nc; i++ {
		nl, ok := u64()
		if !ok || nl > uint64(len(raw)) {
			return nil, corruptf("meta section truncated in contig %d", i)
		}
		name := string(raw[:nl])
		raw = raw[nl:]
		off, ok1 := u64()
		ln, ok2 := u64()
		if !ok1 || !ok2 {
			return nil, corruptf("meta section truncated in contig %d", i)
		}
		if off > math.MaxInt32 || ln > math.MaxInt32 {
			return nil, corruptf("contig %d (%q) coordinates [%d, +%d] out of range", i, name, off, ln)
		}
		contigs = append(contigs, seq.Contig{Name: name, Offset: int(off), Len: int(ln)})
	}
	if len(raw) != 0 {
		return nil, corruptf("meta section has %d trailing bytes", len(raw))
	}
	return contigs, nil
}

// buildFromV2 assembles a Prebuilt from a parsed header and section bytes
// (heap buffers or sub-slices of a mapping). trustCounts selects the
// no-scan BWT constructor for the mmap path; heap loads scan the column,
// cross-check the header's counts, and range-check the suffix array.
func buildFromV2(h *v2Header, sec [v2NumSections][]byte, trustCounts bool) (*Prebuilt, error) {
	contigs, err := decodeMetaV2(sec[secMeta])
	if err != nil {
		return nil, err
	}
	ref := &seq.Reference{Contigs: contigs, Pac: sec[secPac], NumAmb: int(h.numAmb)}
	var counts [4]int
	for c, v := range h.counts {
		counts[c] = int(v)
	}
	var b *bwt.BWT
	if trustCounts {
		b, err = bwt.FromStoredCounts(sec[secBWT], int(h.bwtPrimary), counts)
	} else {
		b, err = bwt.FromStored(sec[secBWT], int(h.bwtPrimary))
		if err == nil && b.Counts != counts {
			err = fmt.Errorf("stored base counts disagree with the BWT column")
		}
	}
	if err != nil {
		return nil, corruptf("%v", err)
	}
	o128, err := fmindex.Occ128FromRaw(sec[secOcc128], b.N)
	if err != nil {
		return nil, corruptf("%v", err)
	}
	o32, err := fmindex.Occ32FromRaw(sec[secOcc32], b.N)
	if err != nil {
		return nil, corruptf("%v", err)
	}
	pi := &Prebuilt{Ref: ref, BWT: b, FullSA: int32sFromRaw(sec[secSA]), Occ128: o128, Occ32: o32}
	if err := pi.validate(); err != nil {
		return nil, err
	}
	if !trustCounts {
		if err := pi.validateSA(); err != nil {
			return nil, err
		}
	}
	return pi, nil
}

// readIndexV2 parses a v2 stream after ReadIndex consumed the magic and
// version: the rest of the header page is read, validated, and then each
// section is read in file order with bounded allocation and its checksum
// verified. This is the heap path — sections become ordinary Go memory,
// and both occurrence tables are loaded and retained because a Prebuilt is
// mode-agnostic (one load may serve baseline and optimized aligners).
// Deployments where the unused table's read/CRC/resident cost matters
// should prefer OpenIndexMmap, where untouched sections are never paged
// in.
func readIndexV2(br *bufio.Reader, remaining int64) (*Prebuilt, error) {
	hb := make([]byte, v2HeaderBytes)
	copy(hb, indexMagic)
	binary.LittleEndian.PutUint32(hb[8:], indexVersionV2)
	if _, err := io.ReadFull(br, hb[12:]); err != nil {
		return nil, corruptf("truncated header: %v", err)
	}
	actual := int64(-1)
	if remaining >= 0 {
		actual = remaining + int64(len(indexMagic)) + 4
	}
	h, err := parseV2Header(hb, actual)
	if err != nil {
		return nil, err
	}
	var sec [v2NumSections][]byte
	pos := uint64(v2HeaderBytes)
	for i := range sec {
		s := h.sections[i]
		if _, err := io.CopyN(io.Discard, br, int64(s.off-pos)); err != nil {
			return nil, corruptf("truncated before the %s section: %v", secNames[i], err)
		}
		d, err := readFullAlloc(br, s.length, int64(h.fileSize-s.off))
		if err != nil {
			return nil, err
		}
		if crc64.Checksum(d, crcTable) != s.crc {
			return nil, corruptf("%s section checksum mismatch", secNames[i])
		}
		sec[i] = d
		pos = s.off + s.length
	}
	return buildFromV2(h, sec, false)
}
