package core

import (
	"strconv"

	"repro/internal/bsw"
	"repro/internal/seq"
)

// SAM flag bits used by the single-end pipeline.
const (
	FlagUnmapped      = 0x4
	FlagReverse       = 0x10
	FlagSecondary     = 0x100
	FlagSupplementary = 0x800
)

// Alignment is one final alignment record (BWA's mem_aln_t).
type Alignment struct {
	Rid   int // contig index; -1 = unmapped
	Pos   int // 0-based leftmost position on the contig
	IsRev bool
	Mapq  int
	Flag  int
	Cigar bsw.Cigar
	Score int    // AS tag
	Sub   int    // XS tag (-1 = absent)
	NM    int    // NM tag
	MD    string // MD tag ("" = absent)
	XA    string // XA tag: alternate hits ("" = absent)
}

// MaxXAHits caps how many alternate hits the XA tag lists (bwa -h).
const MaxXAHits = 5

// inferBW is BWA's infer_bw: the band needed for a global alignment of the
// given lengths to reach the given score.
func inferBW(l1, l2, score, a, q, r int) int {
	if l1 == l2 && l1*a-score < (q+r-a)<<1 {
		return 0
	}
	m := l1
	if l2 < m {
		m = l2
	}
	w := int(float64(m*a-score-q)/float64(r) + 2.)
	d := l1 - l2
	if d < 0 {
		d = -d
	}
	if w < d {
		w = d
	}
	return w
}

// genCigar is bwa_gen_cigar2: global alignment of the clipped query against
// the reference window, with both sequences reversed on the reverse strand
// so indels stay left-aligned in forward coordinates. It also computes the
// NM count and the MD string.
func (a *Aligner) genCigar(query []byte, rb, re, w int) (cig bsw.Cigar, score, nm int, md string, ok bool) {
	l := a.Ref.Lpac()
	if len(query) == 0 || rb >= re || (rb < l && re > l) {
		return nil, 0, 0, "", false
	}
	rseq := a.Ref.Fetch(rb, re)
	qq := query
	if rb >= l {
		qq = reverseBytes(nil, query)
		for i, j := 0, len(rseq)-1; i < j; i, j = i+1, j-1 {
			rseq[i], rseq[j] = rseq[j], rseq[i]
		}
	}
	score, cig = bsw.Global(&a.par3, qq, rseq, w, true)
	var mdBuf []byte
	matchRun := 0
	flushRun := func() {
		mdBuf = strconv.AppendInt(mdBuf, int64(matchRun), 10)
		matchRun = 0
	}
	qi, ti := 0, 0
	for _, e := range cig {
		n := int(e >> 4)
		switch e & 0xf {
		case bsw.CigarMatch:
			for k := 0; k < n; k++ {
				if qq[qi+k] != rseq[ti+k] || qq[qi+k] > 3 {
					nm++
					flushRun()
					mdBuf = append(mdBuf, seq.Base(rseq[ti+k]))
				} else {
					matchRun++
				}
			}
			qi += n
			ti += n
		case bsw.CigarIns:
			qi += n
			nm += n
		case bsw.CigarDel:
			flushRun()
			mdBuf = append(mdBuf, '^')
			for k := 0; k < n; k++ {
				mdBuf = append(mdBuf, seq.Base(rseq[ti+k]))
			}
			ti += n
			nm += n
		}
	}
	flushRun()
	return cig, score, nm, string(mdBuf), true
}

// regToAln converts a region to a final alignment record (mem_reg2aln).
func (a *Aligner) regToAln(qcodes []byte, r *Region) Alignment {
	aln := Alignment{Rid: -1, Sub: -1}
	if r == nil || r.RB < 0 || r.RE < 0 {
		aln.Flag = FlagUnmapped
		return aln
	}
	qb, qe := r.QB, r.QE
	rb, re := r.RB, r.RE
	if r.Secondary < 0 {
		aln.Mapq = a.mapQ(r)
	} else {
		aln.Flag |= FlagSecondary
	}
	o := &a.Opts
	w2 := inferBW(qe-qb, re-rb, r.TrueSc, o.MatchScore, o.ODel, o.EDel)
	if v := inferBW(qe-qb, re-rb, r.TrueSc, o.MatchScore, o.OIns, o.EIns); v > w2 {
		w2 = v
	}
	if w2 > o.W {
		if r.W < w2 {
			w2 = r.W
		}
	}
	lastSc := -(1 << 30)
	var cig bsw.Cigar
	var score, nm int
	var md string
	ok := true
	for i := 0; ; {
		if w2 > o.W<<2 {
			w2 = o.W << 2
		}
		cig, score, nm, md, ok = a.genCigar(qcodes[qb:qe], rb, re, w2)
		if !ok {
			break
		}
		if score == lastSc || w2 == o.W<<2 {
			break
		}
		lastSc = score
		w2 <<= 1
		i++
		if i >= 3 || score >= r.TrueSc-o.MatchScore {
			break
		}
	}
	if !ok {
		aln.Flag |= FlagUnmapped
		return aln
	}
	aln.NM = nm
	aln.MD = md
	l := a.Ref.Lpac()
	var posPac int
	if rb < l {
		posPac, aln.IsRev = rb, false
	} else {
		posPac, aln.IsRev = 2*l-re, true
	}
	if aln.IsRev {
		aln.Flag |= FlagReverse
	}
	// Squeeze out leading/trailing deletions left by the banded global
	// alignment.
	if len(cig) > 0 {
		if cig[0]&0xf == bsw.CigarDel {
			posPac += int(cig[0] >> 4)
			cig = cig[1:]
		}
		if len(cig) > 0 && cig[len(cig)-1]&0xf == bsw.CigarDel {
			cig = cig[:len(cig)-1]
		}
	}
	// Add soft clips.
	if qb != 0 || qe != len(qcodes) {
		clip5, clip3 := qb, len(qcodes)-qe
		if aln.IsRev {
			clip5, clip3 = clip3, clip5
		}
		var full bsw.Cigar
		full = full.PushOp(bsw.CigarSoft, clip5)
		full = append(full, cig...)
		full = full.PushOp(bsw.CigarSoft, clip3)
		cig = full
	}
	aln.Cigar = cig
	rid, off := a.Ref.PosToContig(posPac)
	aln.Rid, aln.Pos = rid, off
	aln.Score = r.Score
	aln.Sub = r.Sub
	return aln
}

// SAMHeader renders the @SQ/@PG header.
func (a *Aligner) SAMHeader() string {
	var b []byte
	for _, c := range a.Ref.Contigs {
		b = append(b, "@SQ\tSN:"...)
		b = append(b, c.Name...)
		b = append(b, "\tLN:"...)
		b = strconv.AppendInt(b, int64(c.Len), 10)
		b = append(b, '\n')
	}
	b = append(b, "@PG\tID:bwamem-go\tPN:bwamem-go\tVN:1.0\n"...)
	return string(b)
}

// selectAlignments applies mem_reg2sam's single-end record selection: skip
// sub-threshold regions, skip secondaries unless OutputAll, mark extra
// primaries as supplementary, and cap their mapq at the first record's.
func (a *Aligner) selectAlignments(qcodes []byte, regs []Region) []Alignment {
	var alns []Alignment
	regIdx := []int{}
	for k := range regs {
		p := &regs[k]
		if p.Score < a.Opts.ScoreThreshold {
			continue
		}
		if p.Secondary >= 0 && !a.Opts.OutputAll {
			continue
		}
		aln := a.regToAln(qcodes, p)
		if aln.Flag&FlagUnmapped != 0 {
			continue
		}
		if len(alns) > 0 && p.Secondary < 0 {
			aln.Flag |= FlagSupplementary
		}
		if len(alns) > 0 && aln.Mapq > alns[0].Mapq {
			aln.Mapq = alns[0].Mapq
		}
		alns = append(alns, aln)
		regIdx = append(regIdx, k)
	}
	// XA: list alternate (secondary) hits on their primary record, as bwa
	// does when their count is small enough to be informative.
	for ai := range alns {
		if alns[ai].Flag&(FlagSecondary|FlagSupplementary) != 0 {
			continue
		}
		alns[ai].XA = a.buildXA(qcodes, regs, regIdx[ai])
	}
	return alns
}

// buildXA renders the XA tag payload (chr,±pos,CIGAR,NM;...) for the
// secondaries of the primary region at index pri.
func (a *Aligner) buildXA(qcodes []byte, regs []Region, pri int) string {
	var ids []int
	for k := range regs {
		if regs[k].Secondary == pri && regs[k].Score >= a.Opts.ScoreThreshold {
			ids = append(ids, k)
			if len(ids) > MaxXAHits {
				return "" // too repetitive to enumerate
			}
		}
	}
	if len(ids) == 0 {
		return ""
	}
	var b []byte
	for _, k := range ids {
		alt := a.regToAln(qcodes, &regs[k])
		if alt.Flag&FlagUnmapped != 0 {
			continue
		}
		b = append(b, a.Ref.Contigs[alt.Rid].Name...)
		b = append(b, ',')
		if alt.IsRev {
			b = append(b, '-')
		} else {
			b = append(b, '+')
		}
		b = strconv.AppendInt(b, int64(alt.Pos+1), 10)
		b = append(b, ',')
		b = append(b, alt.Cigar.String()...)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(alt.NM), 10)
		b = append(b, ';')
	}
	return string(b)
}

// AppendSAM renders the SAM record(s) of one read into buf. read holds the
// original ASCII sequence and (optional) qualities; qcodes its numeric
// encoding; regs the aligned regions from AlignRead/AlignBatch.
func (a *Aligner) AppendSAM(buf []byte, read *seq.Read, qcodes []byte, regs []Region) []byte {
	alns := a.selectAlignments(qcodes, regs)
	if len(alns) == 0 {
		return a.appendRecord(buf, read, Alignment{Rid: -1, Sub: -1, Flag: FlagUnmapped})
	}
	for i := range alns {
		buf = a.appendRecord(buf, read, alns[i])
	}
	return buf
}

func (a *Aligner) appendRecord(buf []byte, read *seq.Read, aln Alignment) []byte {
	buf = append(buf, read.Name...)
	buf = append(buf, '\t')
	buf = strconv.AppendInt(buf, int64(aln.Flag), 10)
	buf = append(buf, '\t')
	if aln.Rid < 0 {
		buf = append(buf, "*\t0\t0\t*"...)
	} else {
		buf = append(buf, a.Ref.Contigs[aln.Rid].Name...)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(aln.Pos+1), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(aln.Mapq), 10)
		buf = append(buf, '\t')
		buf = append(buf, aln.Cigar.String()...)
	}
	buf = append(buf, "\t*\t0\t0\t"...)
	if aln.IsRev {
		rc := seq.RevComp(seq.Encode(read.Seq))
		buf = append(buf, seq.Decode(rc)...)
		buf = append(buf, '\t')
		if len(read.Qual) > 0 {
			buf = append(buf, reverseBytes(nil, read.Qual)...)
		} else {
			buf = append(buf, '*')
		}
	} else {
		buf = append(buf, read.Seq...)
		buf = append(buf, '\t')
		if len(read.Qual) > 0 {
			buf = append(buf, read.Qual...)
		} else {
			buf = append(buf, '*')
		}
	}
	if aln.Rid >= 0 {
		buf = append(buf, "\tNM:i:"...)
		buf = strconv.AppendInt(buf, int64(aln.NM), 10)
		if aln.MD != "" {
			buf = append(buf, "\tMD:Z:"...)
			buf = append(buf, aln.MD...)
		}
		buf = append(buf, "\tAS:i:"...)
		buf = strconv.AppendInt(buf, int64(aln.Score), 10)
		if aln.Sub >= 0 {
			buf = append(buf, "\tXS:i:"...)
			buf = strconv.AppendInt(buf, int64(aln.Sub), 10)
		}
		if aln.XA != "" {
			buf = append(buf, "\tXA:Z:"...)
			buf = append(buf, aln.XA...)
		}
	}
	return append(buf, '\n')
}
