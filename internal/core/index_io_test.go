package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/bits"
	"reflect"
	"strings"
	"testing"

	"repro/internal/seq"
)

// nonSeekReader hides the Seeker of the wrapped reader so tests can
// exercise the unknown-input-size paths.
type nonSeekReader struct{ r io.Reader }

func (n nonSeekReader) Read(p []byte) (int, error) { return n.r.Read(p) }

func TestIndexRoundTrip(t *testing.T) {
	ref := testRef(t, 12000, 201)
	pi, err := BuildPrebuilt(ref)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pi.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	pi2, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pi.Ref.Pac, pi2.Ref.Pac) || !reflect.DeepEqual(pi.Ref.Contigs, pi2.Ref.Contigs) {
		t.Fatal("reference mismatch after round trip")
	}
	if pi.BWT.Primary != pi2.BWT.Primary || !bytes.Equal(pi.BWT.B0, pi2.BWT.B0) ||
		pi.BWT.C != pi2.BWT.C || pi.BWT.Counts != pi2.BWT.Counts {
		t.Fatal("BWT mismatch after round trip")
	}
	if !reflect.DeepEqual(pi.FullSA, pi2.FullSA) {
		t.Fatal("suffix array mismatch after round trip")
	}
}

func TestAlignerFromPrebuiltMatchesDirect(t *testing.T) {
	ref := testRef(t, 15000, 202)
	pi, err := BuildPrebuilt(ref)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pi.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	pi2, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeBaseline, ModeOptimized} {
		direct := newTestAligner(t, ref, mode)
		loaded, err := NewAlignerFrom(pi2, mode, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rd, _ := sampleRead(randFor(203), ref, 100, 2, false)
		codes := seq.Encode(rd.Seq)
		r1 := direct.AlignRead(codes, nil)
		r2 := loaded.AlignRead(codes, nil)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%v: loaded index disagrees with direct build", mode)
		}
		s1 := string(direct.AppendSAM(nil, &rd, codes, r1))
		s2 := string(loaded.AppendSAM(nil, &rd, codes, r2))
		if s1 != s2 {
			t.Fatalf("%v: SAM differs:\n%s%s", mode, s1, s2)
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index at all"))); err == nil {
		t.Fatal("garbage should not parse")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should not parse")
	}
	// Truncated index.
	ref := testRef(t, 2000, 204)
	pi, _ := BuildPrebuilt(ref)
	var buf bytes.Buffer
	pi.WriteIndex(&buf)
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated index should not parse")
	}
	if _, err := ReadIndex(nonSeekReader{bytes.NewReader(buf.Bytes()[:buf.Len()/2])}); err == nil {
		t.Fatal("truncated index should not parse from an unseekable stream either")
	}
}

func TestWriteIndexV1FailsFastOnOverflow(t *testing.T) {
	if bits.UintSize < 64 {
		t.Skip("needs 64-bit int to express out-of-range lengths")
	}
	ref := testRef(t, 1000, 301)
	pi, err := BuildPrebuilt(ref)
	if err != nil {
		t.Fatal(err)
	}
	shift := uint(33)
	huge := 1 << shift // value needing 34 bits; must not truncate to a u32

	mutations := []struct {
		name   string
		mutate func(p *Prebuilt)
	}{
		{"contig length", func(p *Prebuilt) { p.Ref.Contigs[0].Len = huge }},
		{"contig offset", func(p *Prebuilt) { p.Ref.Contigs[0].Offset = huge }},
		{"BWT length", func(p *Prebuilt) { p.BWT.N = huge }},
		{"ambiguous-base count", func(p *Prebuilt) { p.Ref.NumAmb = huge }},
	}
	for _, m := range mutations {
		bad := *pi
		badRef := *pi.Ref
		badRef.Contigs = append([]seq.Contig(nil), pi.Ref.Contigs...)
		badBWT := *pi.BWT
		bad.Ref, bad.BWT = &badRef, &badBWT
		m.mutate(&bad)
		var buf bytes.Buffer
		err := bad.WriteIndex(&buf)
		if err == nil {
			t.Fatalf("%s of %d silently wrote a v1 index", m.name, huge)
		}
		if !strings.Contains(err.Error(), "32-bit") {
			t.Fatalf("%s: error %q does not explain the 32-bit limit", m.name, err)
		}
	}
	// The unmutated index still writes.
	if err := pi.WriteIndex(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// v1Stream assembles a v1 header claiming the given section sizes, followed
// by only a few real bytes — the reader must reject the claim instead of
// allocating it.
func v1Stream(nContigs, pacLen uint32) []byte {
	var buf bytes.Buffer
	buf.WriteString(indexMagic)
	le := binary.LittleEndian
	u32 := func(v uint32) { binary.Write(&buf, le, v) }
	u32(indexVersionV1)
	u32(nContigs)
	if nContigs == 0 {
		u32(0) // numAmb
		u32(pacLen)
	}
	buf.Write([]byte{0, 1, 2, 3})
	return buf.Bytes()
}

func TestReadIndexBoundsSectionLengths(t *testing.T) {
	huge := v1Stream(0, 1<<30)
	if _, err := ReadIndex(bytes.NewReader(huge)); err == nil ||
		!strings.Contains(err.Error(), "exceeds the remaining input") {
		t.Fatalf("1 GiB pac claim on a %d-byte file: err = %v", len(huge), err)
	}
	// Without a known input size the reader allocates incrementally and
	// fails on the missing bytes rather than OOMing up front.
	if _, err := ReadIndex(nonSeekReader{bytes.NewReader(huge)}); err == nil {
		t.Fatal("1 GiB pac claim should not parse from an unseekable stream")
	}
	manyContigs := v1Stream(0xffffffff, 0)
	if _, err := ReadIndex(bytes.NewReader(manyContigs)); err == nil ||
		!strings.Contains(err.Error(), "contig count") {
		t.Fatalf("4 billion contig claim: err = %v", err)
	}
	if _, err := ReadIndex(nonSeekReader{bytes.NewReader(manyContigs)}); err == nil {
		t.Fatal("4 billion contig claim should not parse from an unseekable stream")
	}
}

func TestReadIndexRejectsBadContigs(t *testing.T) {
	ref := testRef(t, 3000, 302)
	pi, err := BuildPrebuilt(ref)
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name    string
		contigs []seq.Contig
	}{
		{"beyond the reference", []seq.Contig{{Name: "chr1", Offset: 0, Len: 5000}}},
		{"offset outside", []seq.Contig{{Name: "chr1", Offset: 9000, Len: 3000}}},
		{"overlapping", []seq.Contig{{Name: "a", Offset: 0, Len: 2000}, {Name: "b", Offset: 1000, Len: 2000}}},
		{"gap", []seq.Contig{{Name: "a", Offset: 0, Len: 1000}, {Name: "b", Offset: 2000, Len: 1000}}},
		{"short coverage", []seq.Contig{{Name: "chr1", Offset: 0, Len: 1000}}},
		{"zero length", []seq.Contig{{Name: "a", Offset: 0, Len: 0}, {Name: "chr1", Offset: 0, Len: 3000}}},
		{"none", nil},
	}
	for _, m := range mutations {
		bad := *pi
		badRef := *pi.Ref
		badRef.Contigs = m.contigs
		bad.Ref = &badRef
		var v1, v2 bytes.Buffer
		if err := writeIndexV1(&v1, &bad); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadIndex(&v1); err == nil || !strings.Contains(err.Error(), "corrupt index") {
			t.Fatalf("v1 with contigs %s: err = %v", m.name, err)
		}
		if err := writeIndexV2(&v2, &bad); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadIndex(bytes.NewReader(v2.Bytes())); err == nil || !strings.Contains(err.Error(), "corrupt index") {
			t.Fatalf("v2 with contigs %s: err = %v", m.name, err)
		}
	}
}
