package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/seq"
)

func TestIndexRoundTrip(t *testing.T) {
	ref := testRef(t, 12000, 201)
	pi, err := BuildPrebuilt(ref)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pi.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	pi2, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pi.Ref.Pac, pi2.Ref.Pac) || !reflect.DeepEqual(pi.Ref.Contigs, pi2.Ref.Contigs) {
		t.Fatal("reference mismatch after round trip")
	}
	if pi.BWT.Primary != pi2.BWT.Primary || !bytes.Equal(pi.BWT.B0, pi2.BWT.B0) ||
		pi.BWT.C != pi2.BWT.C || pi.BWT.Counts != pi2.BWT.Counts {
		t.Fatal("BWT mismatch after round trip")
	}
	if !reflect.DeepEqual(pi.FullSA, pi2.FullSA) {
		t.Fatal("suffix array mismatch after round trip")
	}
}

func TestAlignerFromPrebuiltMatchesDirect(t *testing.T) {
	ref := testRef(t, 15000, 202)
	pi, err := BuildPrebuilt(ref)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pi.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	pi2, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeBaseline, ModeOptimized} {
		direct := newTestAligner(t, ref, mode)
		loaded, err := NewAlignerFrom(pi2, mode, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rd, _ := sampleRead(randFor(203), ref, 100, 2, false)
		codes := seq.Encode(rd.Seq)
		r1 := direct.AlignRead(codes, nil)
		r2 := loaded.AlignRead(codes, nil)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%v: loaded index disagrees with direct build", mode)
		}
		s1 := string(direct.AppendSAM(nil, &rd, codes, r1))
		s2 := string(loaded.AppendSAM(nil, &rd, codes, r2))
		if s1 != s2 {
			t.Fatalf("%v: SAM differs:\n%s%s", mode, s1, s2)
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index at all"))); err == nil {
		t.Fatal("garbage should not parse")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should not parse")
	}
	// Truncated index.
	ref := testRef(t, 2000, 204)
	pi, _ := BuildPrebuilt(ref)
	var buf bytes.Buffer
	pi.WriteIndex(&buf)
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated index should not parse")
	}
}
