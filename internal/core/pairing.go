package core

// Paired-end alignment: insert-size inference (BWA's mem_pestat) and mate
// pairing (mem_pair), followed by paired SAM emission. Mate rescue
// (mem_matesw) is intentionally out of scope — see DESIGN.md — so a pair
// whose end has no seed stays half-mapped, as BWA behaves with rescue
// disabled.

import (
	"math"
	"sort"

	"repro/internal/seq"
)

// Additional SAM flag bits for paired-end records.
const (
	FlagPaired     = 0x1
	FlagProperPair = 0x2
	FlagMateUnmap  = 0x8
	FlagMateRev    = 0x20
	FlagFirst      = 0x40
	FlagLast       = 0x80
)

// PenUnpaired is BWA's default penalty for leaving a pair unpaired (-U 17).
const PenUnpaired = 17

// PairStats is the inferred insert-size distribution for FR-oriented pairs
// (mem_pestat's output for the FR direction).
type PairStats struct {
	Mean, Std float64
	Low, High int // acceptable insert range
	Failed    bool
}

// leftmostPos returns the forward-strand leftmost coordinate and strand of
// a region on the doubled reference.
func (a *Aligner) leftmostPos(r *Region) (pos int, isRev bool) {
	l := a.Ref.Lpac()
	if r.RB < l {
		return r.RB, false
	}
	return 2*l - r.RE, true
}

// insertSize computes the outer fragment length implied by two regions if
// they form an FR pair on one contig; ok reports whether they do.
func (a *Aligner) insertSize(r1, r2 *Region) (isize int, ok bool) {
	if r1.Rid != r2.Rid {
		return 0, false
	}
	p1, rev1 := a.leftmostPos(r1)
	p2, rev2 := a.leftmostPos(r2)
	if rev1 == rev2 {
		return 0, false
	}
	// Forward-oriented end must come first.
	fwdPos, revEnd := p1, p2
	var revLen int
	if rev1 {
		fwdPos, revEnd = p2, p1
		revLen = r1.RE - r1.RB
	} else {
		revLen = r2.RE - r2.RB
	}
	isize = revEnd + revLen - fwdPos
	if isize <= 0 {
		return 0, false
	}
	return isize, true
}

// InferPairStats estimates the FR insert-size distribution from the best
// regions of each pair (mem_pestat: interquartile trimming, then mean/std
// of the kept sizes, acceptance range mean ± 4 std).
func (a *Aligner) InferPairStats(regs1, regs2 [][]Region) PairStats {
	var sizes []int
	for i := range regs1 {
		if len(regs1[i]) == 0 || len(regs2[i]) == 0 {
			continue
		}
		r1, r2 := &regs1[i][0], &regs2[i][0]
		// Only confident, unambiguous ends vote (bwa requires unique hits).
		if r1.Secondary >= 0 || r2.Secondary >= 0 || r1.Sub > 0 || r2.Sub > 0 {
			continue
		}
		if sz, ok := a.insertSize(r1, r2); ok {
			sizes = append(sizes, sz)
		}
	}
	if len(sizes) < 8 {
		return PairStats{Failed: true}
	}
	sort.Ints(sizes)
	q := func(f float64) int { return sizes[int(f*float64(len(sizes)-1))] }
	p25, p75 := q(0.25), q(0.75)
	lo := p25 - 3*(p75-p25)
	hi := p75 + 3*(p75-p25)
	var sum, n float64
	for _, s := range sizes {
		if s >= lo && s <= hi {
			sum += float64(s)
			n++
		}
	}
	if n < 4 {
		return PairStats{Failed: true}
	}
	mean := sum / n
	var ss float64
	for _, s := range sizes {
		if s >= lo && s <= hi {
			d := float64(s) - mean
			ss += d * d
		}
	}
	std := math.Sqrt(ss / n)
	if std < 1 {
		std = 1
	}
	ps := PairStats{Mean: mean, Std: std}
	ps.Low = int(mean - 4*std + .499)
	ps.High = int(mean + 4*std + .499)
	if ps.Low < 1 {
		ps.Low = 1
	}
	return ps
}

// pairScore is the pairing bonus of mem_pair: the log-probability of the
// observed insert under the inferred normal, in score units.
func (a *Aligner) pairScore(ps *PairStats, isize int) int {
	ns := (float64(isize) - ps.Mean) / ps.Std
	// .721 = 1/log(4); erfc term is the two-sided tail probability.
	v := .721*math.Log(2*math.Erfc(math.Abs(ns)*math.Sqrt2/2))*float64(a.Opts.MatchScore) + .499
	return int(v)
}

// PairSelection is the outcome of pairing one read pair.
type PairSelection struct {
	Z      [2]int // chosen region index per end; -1 = none
	Score  int    // paired score (with bonus)
	Sub    int    // second-best paired score
	Proper bool
}

// PairRegions picks the best consistent placement of a pair (mem_pair): it
// scans FR-compatible region combinations whose insert lies in the accepted
// range and maximizes score1 + score2 + pairing bonus.
func (a *Aligner) PairRegions(ps *PairStats, regs1, regs2 []Region) (PairSelection, bool) {
	sel := PairSelection{Z: [2]int{-1, -1}, Score: -1 << 30, Sub: -1 << 30}
	if ps.Failed || len(regs1) == 0 || len(regs2) == 0 {
		return sel, false
	}
	// Cap the combination scan like bwa (top hits dominate anyway).
	n1, n2 := len(regs1), len(regs2)
	if n1 > 8 {
		n1 = 8
	}
	if n2 > 8 {
		n2 = 8
	}
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			isize, ok := a.insertSize(&regs1[i], &regs2[j])
			if !ok || isize < ps.Low || isize > ps.High {
				continue
			}
			q := regs1[i].Score + regs2[j].Score + a.pairScore(ps, isize)
			if q > sel.Score {
				sel.Sub = sel.Score
				sel.Score = q
				sel.Z = [2]int{i, j}
			} else if q > sel.Sub {
				sel.Sub = q
			}
		}
	}
	if sel.Z[0] < 0 {
		return sel, false
	}
	sel.Proper = true
	return sel, true
}

// rawPairMapq converts a paired score margin to a mapq ceiling
// (bwa's raw_mapq).
func (a *Aligner) rawPairMapq(score, sub int) int {
	q := int(6.02 * float64(score-sub) / float64(a.Opts.MatchScore) * .25)
	if q > 60 {
		q = 60
	}
	if q < 0 {
		q = 0
	}
	return q
}

// AppendSAMPair renders the two records of one read pair. It applies the
// pairing decision of mem_sam_pe: if the best consistent pair beats the
// best independent placements minus the unpaired penalty, both ends report
// the paired placement with the proper-pair flag; otherwise each end keeps
// its own best placement.
func (a *Aligner) AppendSAMPair(buf []byte, ps *PairStats,
	rd1, rd2 *seq.Read, q1, q2 []byte, regs1, regs2 []Region) []byte {

	sel, paired := a.PairRegions(ps, regs1, regs2)
	if paired {
		scoreUn := -PenUnpaired
		if len(regs1) > 0 {
			scoreUn += regs1[0].Score
		}
		if len(regs2) > 0 {
			scoreUn += regs2[0].Score
		}
		if sel.Score <= scoreUn {
			paired = false
		}
	}

	var aln1, aln2 Alignment
	if paired {
		r1 := regs1[sel.Z[0]]
		r2 := regs2[sel.Z[1]]
		// A secondary region promoted by pairing becomes this end's
		// primary placement (bwa clears secondary status and keeps the
		// old primary's score as the sub-score).
		if r1.Secondary >= 0 {
			r1.Sub, r1.Secondary = regs1[r1.Secondary].Score, -1
		}
		if r2.Secondary >= 0 {
			r2.Sub, r2.Secondary = regs2[r2.Secondary].Score, -1
		}
		aln1 = a.regToAln(q1, &r1)
		aln2 = a.regToAln(q2, &r2)
		// Pairing confidence caps how much an ambiguous end can borrow.
		qPe := a.rawPairMapq(sel.Score, maxInt(sel.Sub, scoreUnOf(regs1, regs2)))
		for _, p := range []*Alignment{&aln1, &aln2} {
			if p.Mapq < qPe {
				boost := p.Mapq + 40
				if qPe < boost {
					boost = qPe
				}
				p.Mapq = boost
			}
		}
	} else {
		aln1 = a.bestAln(q1, regs1)
		aln2 = a.bestAln(q2, regs2)
	}

	decorate := func(this, mate *Alignment, firstFlag int) {
		this.Flag |= FlagPaired | firstFlag
		if mate.Rid < 0 {
			this.Flag |= FlagMateUnmap
		} else if mate.IsRev {
			this.Flag |= FlagMateRev
		}
		if paired {
			this.Flag |= FlagProperPair
		}
	}
	decorate(&aln1, &aln2, FlagFirst)
	decorate(&aln2, &aln1, FlagLast)

	buf = a.appendPairRecord(buf, rd1, aln1, aln2)
	buf = a.appendPairRecord(buf, rd2, aln2, aln1)
	return buf
}

func scoreUnOf(regs1, regs2 []Region) int {
	s := -PenUnpaired
	if len(regs1) > 0 {
		s += regs1[0].Score
	}
	if len(regs2) > 0 {
		s += regs2[0].Score
	}
	return s
}

// bestAln converts the best region (if any passes the threshold) of one end.
func (a *Aligner) bestAln(q []byte, regs []Region) Alignment {
	for k := range regs {
		if regs[k].Secondary < 0 && regs[k].Score >= a.Opts.ScoreThreshold {
			return a.regToAln(q, &regs[k])
		}
	}
	return Alignment{Rid: -1, Sub: -1, Flag: FlagUnmapped}
}

// appendPairRecord writes one end's record with mate fields (RNEXT, PNEXT,
// TLEN) filled in.
func (a *Aligner) appendPairRecord(buf []byte, rd *seq.Read, aln, mate Alignment) []byte {
	// Render the core record, then patch RNEXT/PNEXT/TLEN, which
	// appendRecord leaves as "*\t0\t0".
	rec := a.appendRecord(nil, rd, aln)
	// Find the 7th..9th columns to replace.
	cols := 0
	start := -1
	for i := 0; i < len(rec); i++ {
		if rec[i] == '\t' {
			cols++
			if cols == 6 {
				start = i + 1
			}
			if cols == 9 {
				head := append([]byte{}, rec[:start]...)
				tail := append([]byte{}, rec[i:]...) // includes the tab before SEQ
				buf = append(buf, head...)
				buf = appendMateFields(buf, a, aln, mate)
				buf = append(buf, tail...)
				return buf
			}
		}
	}
	return append(buf, rec...) // malformed record; emit as-is (unreachable)
}

func appendMateFields(buf []byte, a *Aligner, aln, mate Alignment) []byte {
	if mate.Rid < 0 {
		return append(buf, "*\t0\t0"...)
	}
	if mate.Rid == aln.Rid {
		buf = append(buf, '=')
	} else {
		buf = append(buf, a.Ref.Contigs[mate.Rid].Name...)
	}
	buf = append(buf, '\t')
	buf = appendInt(buf, mate.Pos+1)
	buf = append(buf, '\t')
	tlen := 0
	if aln.Rid == mate.Rid && aln.Rid >= 0 {
		_, aEnd := aln.Cigar.Lens()
		_, mEnd := mate.Cigar.Lens()
		left, right := aln.Pos, mate.Pos+mEnd
		if mate.Pos < aln.Pos {
			left, right = mate.Pos, aln.Pos+aEnd
			tlen = -(right - left)
		} else {
			tlen = right - left
		}
		if aln.Pos == mate.Pos && aln.IsRev && !mate.IsRev {
			tlen = -tlen
		}
	}
	return appendInt(buf, tlen)
}

func appendInt(buf []byte, v int) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}
