// On-disk index I/O. Two formats share the 8-byte magic and a version
// field:
//
//   - v1 — the legacy compact stream: 32-bit length fields, sections packed
//     back to back, no checksums. Still readable (heap load only) so
//     existing .bwago files keep working; the writer refuses references
//     whose lengths do not fit 32 bits instead of silently truncating.
//
//   - v2 — the page-aligned layout in index_v2.go: 64-bit lengths,
//     per-section offsets and CRCs, persisted occurrence tables, and
//     mmap-ability (OpenIndexMmap in index_mmap.go).
//
// Both readers run the same consistency pass (Prebuilt.validate) before
// returning, and both bound every allocation by the claimed remaining input
// so a truncated or adversarial file yields a "corrupt index" error rather
// than an OOM.
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"

	"repro/internal/bwt"
	"repro/internal/fmindex"
	"repro/internal/sal"
	"repro/internal/seq"
)

// Prebuilt bundles everything expensive about an index — the packed
// reference, the BWT, the full suffix array, and (when loaded from a v2
// index) the prebuilt occurrence tables — so it can be written to disk once
// ("bwamem index") and reused by any aligner mode. Without preloaded
// tables, the occurrence table is rebuilt on load (a linear scan,
// negligible next to suffix-array construction but not next to an mmap
// open).
type Prebuilt struct {
	Ref    *seq.Reference
	BWT    *bwt.BWT
	FullSA []int32

	// Occ128/Occ32, when non-nil, are occurrence tables loaded from a v2
	// index (possibly aliasing a memory-mapped file); NewAlignerFrom uses
	// them instead of rebuilding from the BWT column.
	Occ128 *fmindex.Occ128
	Occ32  *fmindex.Occ32
}

// BuildPrebuilt constructs the index data from a reference.
func BuildPrebuilt(ref *seq.Reference) (*Prebuilt, error) {
	b, full, err := bwt.FromText(ref.Doubled())
	if err != nil {
		return nil, err
	}
	return &Prebuilt{Ref: ref, BWT: b, FullSA: full}, nil
}

// NewAlignerFrom assembles an aligner from prebuilt index data.
func NewAlignerFrom(pi *Prebuilt, mode Mode, opts Options) (*Aligner, error) {
	flavor := fmindex.Baseline
	if mode == ModeOptimized {
		flavor = fmindex.Optimized
	}
	idx := fmindex.NewFromParts(pi.BWT, flavor, pi.Occ128, pi.Occ32)
	var lookup sal.Lookuper
	if mode == ModeOptimized || opts.SACompression <= 1 {
		lookup = sal.NewFlat(pi.FullSA)
	} else {
		var err error
		lookup, err = sal.NewCompressed(pi.FullSA, opts.SACompression, idx)
		if err != nil {
			return nil, err
		}
	}
	a := &Aligner{
		Ref: pi.Ref, Idx: idx, SA: lookup, Opts: opts, Mode: mode,
		par5:   opts.bswParams(opts.PenClip5),
		par3:   opts.bswParams(opts.PenClip3),
		chOpts: opts.chainOpts(),
	}
	a.batchCfg.Width8 = opts.BatchWidth8
	a.batchCfg.Width16 = opts.BatchWidth16
	a.batchCfg.Sort = !opts.DisableBSWSort
	return a, nil
}

// MemFootprint returns the resident bytes of the loaded index data: packed
// reference, BWT column, suffix array, and any preloaded occurrence tables.
func (pi *Prebuilt) MemFootprint() int64 {
	n := int64(len(pi.Ref.Pac)) + int64(len(pi.BWT.B0)) + 4*int64(len(pi.FullSA))
	if pi.Occ128 != nil {
		n += int64(pi.Occ128.MemFootprint())
	}
	if pi.Occ32 != nil {
		n += int64(pi.Occ32.MemFootprint())
	}
	return n
}

const (
	indexMagic     = "BWAGOIDX"
	indexVersionV1 = uint32(1)
	indexVersionV2 = uint32(2)
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("core: corrupt index: "+format, args...)
}

// validate is the consistency pass shared by the v1 and v2 readers (and,
// defensively, the writers): every structural invariant checkable without
// scanning the large arrays. Violations that would otherwise surface as
// panics deep inside SAM rendering — contigs outside the packed reference,
// overlapping contigs, a primary row out of range — are reported here as
// corrupt-index errors instead.
func (pi *Prebuilt) validate() error {
	ref, b := pi.Ref, pi.BWT
	lpac := len(ref.Pac)
	if lpac == 0 {
		return corruptf("empty packed reference")
	}
	if b.N != 2*lpac {
		return corruptf("BWT covers %d symbols, want %d (doubled reference of %d bp)", b.N, 2*lpac, lpac)
	}
	if len(b.B0) != b.N {
		return corruptf("stored BWT column holds %d symbols, want %d", len(b.B0), b.N)
	}
	if b.N > math.MaxInt32-1 {
		return corruptf("text length %d exceeds the int32 suffix-array entry range", b.N)
	}
	if b.Primary < 1 || b.Primary > b.N {
		return corruptf("primary row %d outside [1, %d]", b.Primary, b.N)
	}
	sum := 0
	for _, v := range b.Counts {
		if v < 0 {
			return corruptf("negative base count %d", v)
		}
		sum += v
	}
	if sum != b.N {
		return corruptf("base counts sum to %d, text length is %d", sum, b.N)
	}
	if len(pi.FullSA) != b.N+1 {
		return corruptf("suffix array holds %d rows, want %d", len(pi.FullSA), b.N+1)
	}
	if ref.NumAmb < 0 || ref.NumAmb > lpac {
		return corruptf("ambiguous-base count %d outside [0, %d]", ref.NumAmb, lpac)
	}
	if len(ref.Contigs) == 0 {
		return corruptf("no contigs")
	}
	next := 0
	for i, c := range ref.Contigs {
		if c.Len <= 0 || c.Offset != next || c.Len > lpac-c.Offset {
			return corruptf("contig %d (%q) spans [%d, %d) which does not tile the %d bp packed reference",
				i, c.Name, c.Offset, c.Offset+c.Len, lpac)
		}
		next = c.Offset + c.Len
	}
	if next != lpac {
		return corruptf("contigs cover %d bp of a %d bp packed reference", next, lpac)
	}
	return nil
}

// validateSA scans the suffix array (heap-load paths only: over a mapping
// this would page in the whole section) checking every entry is a valid
// row-to-position value and the sentinel row is in place.
func (pi *Prebuilt) validateSA() error {
	n := int32(pi.BWT.N)
	if len(pi.FullSA) > 0 && pi.FullSA[0] != n {
		return corruptf("suffix array sentinel row holds %d, want %d", pi.FullSA[0], n)
	}
	for i, v := range pi.FullSA {
		if v < 0 || v > n {
			return corruptf("suffix array entry %d is %d, outside [0, %d]", i, v, n)
		}
	}
	return nil
}

// sizeHint reports how many bytes remain in r when r is seekable (the real
// callers hand in *os.File or bytes.Reader), or -1 when unknown. Readers
// use it to reject section lengths larger than the file before allocating.
func sizeHint(r io.Reader) int64 {
	s, ok := r.(io.Seeker)
	if !ok {
		return -1
	}
	cur, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return -1
	}
	end, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return -1
	}
	if _, err := s.Seek(cur, io.SeekStart); err != nil {
		return -1
	}
	return end - cur
}

// readFullAlloc reads exactly n bytes, allocating incrementally (at most
// allocChunk of headroom beyond what has actually arrived) so a corrupt or
// adversarial length field cannot force a huge up-front allocation: a
// truncated stream fails with a read error having allocated no more than
// one chunk past the received data. remaining, when >= 0, is the claimed
// number of input bytes left; lengths beyond it are rejected immediately.
func readFullAlloc(r io.Reader, n uint64, remaining int64) ([]byte, error) {
	const allocChunk = 8 << 20
	if n > uint64(math.MaxInt) || (remaining >= 0 && n > uint64(remaining)) {
		return nil, corruptf("section length %d exceeds the remaining input (%d bytes)", n, remaining)
	}
	var buf []byte
	for uint64(len(buf)) < n {
		step := n - uint64(len(buf))
		if step > allocChunk {
			step = allocChunk
		}
		off := len(buf)
		buf = slices.Grow(buf, int(step))[:off+int(step)]
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("core: corrupt index: truncated section (%d of %d bytes): %w", off, n, err)
		}
	}
	return buf, nil
}

// WriteIndex serializes prebuilt index data in the legacy v1 format. The
// format's length fields are 32-bit: a reference too large for them is
// rejected with a clear error (write the v2 format instead of truncating).
// New indexes should use WriteIndexV2.
func (pi *Prebuilt) WriteIndex(w io.Writer) error {
	if err := pi.v1RangeCheck(); err != nil {
		return err
	}
	if err := pi.validate(); err != nil {
		return fmt.Errorf("core: refusing to write inconsistent index: %w", err)
	}
	return writeIndexV1(w, pi)
}

// v1RangeCheck guards the legacy format's 32-bit length fields: any value
// that does not fit must fail fast, never truncate into a corrupt file.
func (pi *Prebuilt) v1RangeCheck() error {
	check := func(what string, v int) error {
		if v < 0 || uint64(v) > math.MaxUint32 {
			return fmt.Errorf("core: %s (%d) exceeds the v1 index format's 32-bit fields; write format v2 instead", what, v)
		}
		return nil
	}
	if err := check("contig count", len(pi.Ref.Contigs)); err != nil {
		return err
	}
	for _, c := range pi.Ref.Contigs {
		if err := check(fmt.Sprintf("contig %q name length", c.Name), len(c.Name)); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("contig %q offset", c.Name), c.Offset); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("contig %q length", c.Name), c.Len); err != nil {
			return err
		}
	}
	if err := check("ambiguous-base count", pi.Ref.NumAmb); err != nil {
		return err
	}
	if err := check("packed reference length", len(pi.Ref.Pac)); err != nil {
		return err
	}
	if err := check("BWT length", pi.BWT.N); err != nil {
		return err
	}
	if err := check("BWT primary row", pi.BWT.Primary); err != nil {
		return err
	}
	return check("suffix array length", len(pi.FullSA))
}

// writeIndexV1 emits the v1 stream without validation (split out so tests
// can craft deliberately inconsistent files for the reader).
func writeIndexV1(w io.Writer, pi *Prebuilt) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	if err := writeU32(indexVersionV1); err != nil {
		return err
	}
	// Contigs.
	if err := writeU32(uint32(len(pi.Ref.Contigs))); err != nil {
		return err
	}
	for _, c := range pi.Ref.Contigs {
		if err := writeU32(uint32(len(c.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return err
		}
		if err := writeU32(uint32(c.Offset)); err != nil {
			return err
		}
		if err := writeU32(uint32(c.Len)); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(pi.Ref.NumAmb)); err != nil {
		return err
	}
	// Packed forward strand.
	if err := writeU32(uint32(len(pi.Ref.Pac))); err != nil {
		return err
	}
	if _, err := bw.Write(pi.Ref.Pac); err != nil {
		return err
	}
	// BWT.
	if err := writeU32(uint32(pi.BWT.N)); err != nil {
		return err
	}
	if err := writeU32(uint32(pi.BWT.Primary)); err != nil {
		return err
	}
	if _, err := bw.Write(pi.BWT.B0); err != nil {
		return err
	}
	// Suffix array.
	if err := writeU32(uint32(len(pi.FullSA))); err != nil {
		return err
	}
	if err := binary.Write(bw, le, pi.FullSA); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadIndex deserializes index data written by WriteIndex (v1) or
// WriteIndexV2, auto-detecting the version. Both paths load onto the heap;
// use OpenIndexMmap to map a v2 file zero-copy instead.
func ReadIndex(r io.Reader) (*Prebuilt, error) {
	remaining := sizeHint(r)
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("core: not a bwamem-go index (magic %q)", magic)
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("core: reading index version: %w", err)
	}
	if remaining >= 0 {
		remaining -= int64(len(indexMagic)) + 4
	}
	switch ver {
	case indexVersionV1:
		return readIndexV1(br, remaining)
	case indexVersionV2:
		return readIndexV2(br, remaining)
	default:
		return nil, fmt.Errorf("core: unsupported index version %d (this build reads v1 and v2)", ver)
	}
}

// readIndexV1 parses the legacy stream after the magic and version. Every
// length field is bounded by the remaining input before allocation.
func readIndexV1(br *bufio.Reader, remaining int64) (*Prebuilt, error) {
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		if remaining >= 0 && err == nil {
			remaining -= 4
		}
		return v, err
	}
	nc, err := readU32()
	if err != nil {
		return nil, err
	}
	// Each contig record is at least 12 bytes, so the count itself is
	// bounded by the input size.
	if remaining >= 0 && int64(nc) > remaining/12 {
		return nil, corruptf("contig count %d exceeds the remaining input (%d bytes)", nc, remaining)
	}
	ref := &seq.Reference{}
	for i := uint32(0); i < nc; i++ {
		nl, err := readU32()
		if err != nil {
			return nil, err
		}
		name, err := readFullAlloc(br, uint64(nl), remaining)
		if err != nil {
			return nil, err
		}
		if remaining >= 0 {
			remaining -= int64(nl)
		}
		off, err := readU32()
		if err != nil {
			return nil, err
		}
		ln, err := readU32()
		if err != nil {
			return nil, err
		}
		ref.Contigs = append(ref.Contigs, seq.Contig{Name: string(name), Offset: int(off), Len: int(ln)})
	}
	numAmb, err := readU32()
	if err != nil {
		return nil, err
	}
	ref.NumAmb = int(numAmb)
	pacLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if ref.Pac, err = readFullAlloc(br, uint64(pacLen), remaining); err != nil {
		return nil, err
	}
	if remaining >= 0 {
		remaining -= int64(pacLen)
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	primary, err := readU32()
	if err != nil {
		return nil, err
	}
	if uint64(n) != 2*uint64(pacLen) {
		return nil, corruptf("BWT covers %d symbols, want %d (doubled reference of %d bp)", n, 2*uint64(pacLen), pacLen)
	}
	b0, err := readFullAlloc(br, uint64(n), remaining)
	if err != nil {
		return nil, err
	}
	if remaining >= 0 {
		remaining -= int64(n)
	}
	b, err := bwt.FromStored(b0, int(primary))
	if err != nil {
		return nil, fmt.Errorf("core: corrupt index: %w", err)
	}
	saLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if int64(saLen) != int64(n)+1 {
		return nil, corruptf("SA length %d for text length %d", saLen, n)
	}
	saRaw, err := readFullAlloc(br, 4*uint64(saLen), remaining)
	if err != nil {
		return nil, err
	}
	pi := &Prebuilt{Ref: ref, BWT: b, FullSA: int32sFromRaw(saRaw)}
	if err := pi.validate(); err != nil {
		return nil, err
	}
	if err := pi.validateSA(); err != nil {
		return nil, err
	}
	return pi, nil
}
