package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bwt"
	"repro/internal/fmindex"
	"repro/internal/sal"
	"repro/internal/seq"
)

// Prebuilt bundles everything expensive about an index — the packed
// reference, the BWT and the full suffix array — so it can be written to
// disk once ("bwamem index") and reused by any aligner mode. The
// occurrence tables are rebuilt on load (a linear scan, negligible next to
// suffix-array construction).
type Prebuilt struct {
	Ref    *seq.Reference
	BWT    *bwt.BWT
	FullSA []int32
}

// BuildPrebuilt constructs the index data from a reference.
func BuildPrebuilt(ref *seq.Reference) (*Prebuilt, error) {
	b, full, err := bwt.FromText(ref.Doubled())
	if err != nil {
		return nil, err
	}
	return &Prebuilt{Ref: ref, BWT: b, FullSA: full}, nil
}

// NewAlignerFrom assembles an aligner from prebuilt index data.
func NewAlignerFrom(pi *Prebuilt, mode Mode, opts Options) (*Aligner, error) {
	flavor := fmindex.Baseline
	if mode == ModeOptimized {
		flavor = fmindex.Optimized
	}
	idx := fmindex.New(pi.BWT, flavor)
	var lookup sal.Lookuper
	if mode == ModeOptimized || opts.SACompression <= 1 {
		lookup = sal.NewFlat(pi.FullSA)
	} else {
		var err error
		lookup, err = sal.NewCompressed(pi.FullSA, opts.SACompression, idx)
		if err != nil {
			return nil, err
		}
	}
	a := &Aligner{
		Ref: pi.Ref, Idx: idx, SA: lookup, Opts: opts, Mode: mode,
		par5:   opts.bswParams(opts.PenClip5),
		par3:   opts.bswParams(opts.PenClip3),
		chOpts: opts.chainOpts(),
	}
	a.batchCfg.Width8 = opts.BatchWidth8
	a.batchCfg.Width16 = opts.BatchWidth16
	a.batchCfg.Sort = !opts.DisableBSWSort
	return a, nil
}

const (
	indexMagic   = "BWAGOIDX"
	indexVersion = uint32(1)
)

// WriteIndex serializes prebuilt index data in a compact little-endian
// binary format.
func (pi *Prebuilt) WriteIndex(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	if err := writeU32(indexVersion); err != nil {
		return err
	}
	// Contigs.
	if err := writeU32(uint32(len(pi.Ref.Contigs))); err != nil {
		return err
	}
	for _, c := range pi.Ref.Contigs {
		if err := writeU32(uint32(len(c.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return err
		}
		if err := writeU32(uint32(c.Offset)); err != nil {
			return err
		}
		if err := writeU32(uint32(c.Len)); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(pi.Ref.NumAmb)); err != nil {
		return err
	}
	// Packed forward strand.
	if err := writeU32(uint32(len(pi.Ref.Pac))); err != nil {
		return err
	}
	if _, err := bw.Write(pi.Ref.Pac); err != nil {
		return err
	}
	// BWT.
	if err := writeU32(uint32(pi.BWT.N)); err != nil {
		return err
	}
	if err := writeU32(uint32(pi.BWT.Primary)); err != nil {
		return err
	}
	if _, err := bw.Write(pi.BWT.B0); err != nil {
		return err
	}
	// Suffix array.
	if err := writeU32(uint32(len(pi.FullSA))); err != nil {
		return err
	}
	if err := binary.Write(bw, le, pi.FullSA); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadIndex deserializes index data written by WriteIndex.
func ReadIndex(r io.Reader) (*Prebuilt, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("core: not a bwamem-go index (magic %q)", magic)
	}
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return v, err
	}
	ver, err := readU32()
	if err != nil {
		return nil, err
	}
	if ver != indexVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", ver)
	}
	nc, err := readU32()
	if err != nil {
		return nil, err
	}
	ref := &seq.Reference{}
	for i := uint32(0); i < nc; i++ {
		nl, err := readU32()
		if err != nil {
			return nil, err
		}
		name := make([]byte, nl)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		off, err := readU32()
		if err != nil {
			return nil, err
		}
		ln, err := readU32()
		if err != nil {
			return nil, err
		}
		ref.Contigs = append(ref.Contigs, seq.Contig{Name: string(name), Offset: int(off), Len: int(ln)})
	}
	numAmb, err := readU32()
	if err != nil {
		return nil, err
	}
	ref.NumAmb = int(numAmb)
	pacLen, err := readU32()
	if err != nil {
		return nil, err
	}
	ref.Pac = make([]byte, pacLen)
	if _, err := io.ReadFull(br, ref.Pac); err != nil {
		return nil, err
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	primary, err := readU32()
	if err != nil {
		return nil, err
	}
	b := &bwt.BWT{N: int(n), Primary: int(primary), B0: make([]byte, n)}
	if _, err := io.ReadFull(br, b.B0); err != nil {
		return nil, err
	}
	for _, c := range b.B0 {
		if c > 3 {
			return nil, fmt.Errorf("core: corrupt index: BWT code %d", c)
		}
		b.Counts[c]++
	}
	b.C[0] = 1
	for c := 0; c < 4; c++ {
		b.C[c+1] = b.C[c] + b.Counts[c]
	}
	saLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(saLen) != b.N+1 {
		return nil, fmt.Errorf("core: corrupt index: SA length %d for text length %d", saLen, b.N)
	}
	full := make([]int32, saLen)
	if err := binary.Read(br, le, full); err != nil {
		return nil, err
	}
	return &Prebuilt{Ref: ref, BWT: b, FullSA: full}, nil
}
