// Package core assembles the full BWA-MEM read aligner from the kernel
// substrates: SMEM seeding (fmindex), suffix-array lookup (sal), seed
// chaining (chain), banded Smith-Waterman extension (bsw), and SAM output.
//
// The same algorithm runs in two modes that mirror the paper's comparison:
//
//   - ModeBaseline reproduces original BWA-MEM's design: η=128 occurrence
//     table, compressed suffix array (factor 128), and sequential scalar
//     seed extension with the contained-seed skip heuristic applied online.
//   - ModeOptimized reproduces the paper's design (bwa-mem2): η=32
//     occurrence table with software prefetching, flat suffix array, and
//     batched inter-task extension that extends all seeds and replays the
//     skip heuristic afterwards (§5.3.2).
//
// Both modes produce identical alignments; this is the paper's central
// requirement and is enforced by tests.
package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/bsw"
	"repro/internal/chain"
	"repro/internal/fmindex"
)

// Mode selects which of the paper's two implementations drives the kernels.
type Mode int

const (
	// ModeBaseline is original BWA-MEM (the paper's "Orig.").
	ModeBaseline Mode = iota
	// ModeOptimized is the paper's architecture-aware design ("Opt.").
	ModeOptimized
)

func (m Mode) String() string {
	if m == ModeOptimized {
		return "optimized"
	}
	return "baseline"
}

// Options mirrors BWA-MEM's mem_opt_t (defaults from mem_opt_init).
type Options struct {
	// Scoring.
	MatchScore     int // -A (1)
	MismatchPen    int // -B (4)
	ODel, EDel     int // -O, -E (6, 1)
	OIns, EIns     int // (6, 1)
	PenClip5       int // 5' clipping penalty / end bonus (5)
	PenClip3       int // 3' clipping penalty / end bonus (5)
	W              int // band width (100)
	Zdrop          int // z-drop (100)
	ScoreThreshold int // -T: minimum score to output (30)

	// Seeding.
	Seed   fmindex.SeedOpts
	MaxOcc int // maximum occurrences sampled per seed interval (500)

	// Chaining.
	MaxChainGap    int     // 10000
	MaskLevel      float64 // 0.50
	DropRatio      float64 // 0.50
	MinChainWeight int     // 0

	// Region post-processing and mapq.
	MaskLevelRedun float64 // 0.95
	MapQCoefLen    int     // 50
	MapQCoefFac    float64 // log(MapQCoefLen)

	// Output.
	OutputAll bool // emit secondary alignments (bwa mem -a)

	// LaneBSW selects the paper-faithful inter-task lane kernels for the
	// batched pipeline's extension stage. The lane schedule is the paper's
	// exact SIMD algorithm, but pure Go executes the lanes serially, so it
	// pays the wasteful-cell overhead without the vector payoff; it also
	// extends every seed and replays the skip heuristic afterwards
	// (§5.3.2), which costs extra extensions. With LaneBSW false (the
	// default), the batched pipeline keeps the Figure-2 stage organization
	// but extends with the scalar engine and the online skip heuristic —
	// the configuration that actually wins on a SIMD-less target. Output
	// is identical either way.
	LaneBSW bool

	// Ablation knobs (0 = mode default).
	SACompression  int // suffix-array compression factor for ModeBaseline
	BatchWidth8    int // lane width of the 8-bit batch kernel
	BatchWidth16   int // lane width of the 16-bit batch kernel
	DisableBSWSort bool
}

// DefaultOptions returns BWA-MEM's default parameters.
func DefaultOptions() Options {
	return Options{
		MatchScore: 1, MismatchPen: 4,
		ODel: 6, EDel: 1, OIns: 6, EIns: 1,
		PenClip5: 5, PenClip3: 5,
		W: 100, Zdrop: 100, ScoreThreshold: 30,
		Seed:        fmindex.DefaultSeedOpts(),
		MaxOcc:      500,
		MaxChainGap: 10000, MaskLevel: 0.50, DropRatio: 0.50, MinChainWeight: 0,
		MaskLevelRedun: 0.95,
		MapQCoefLen:    50, MapQCoefFac: math.Log(50),
		SACompression: 128,
	}
}

// ServerConfig tunes one deployment of the long-running alignment server
// (internal/server, cmd/bwaserve). It layers deployment knobs — pool size,
// batching, admission control, shutdown — over the per-alignment Options.
type ServerConfig struct {
	// Threads is the worker-pool size the server schedules batches over.
	// <= 0 means runtime.NumCPU (resolved by the server).
	Threads int
	// BatchSize is the reads-per-batch target of the batch-staged pipeline
	// and of cross-request coalescing. <= 0 means 512.
	BatchSize int
	// Mode selects the aligner implementation (baseline or optimized).
	Mode Mode

	// MaxInFlightReads caps the reads admitted (queued or executing) across
	// all requests; a request that would exceed it is rejected with 429.
	// <= 0 means DefaultMaxInFlightReads.
	MaxInFlightReads int
	// MaxReadsPerRequest caps a single request's read count (413 beyond).
	// <= 0 means MaxInFlightReads.
	MaxReadsPerRequest int
	// MaxReadLen caps a single read's length in bases (413 beyond):
	// admission charges per read, so without this one giant read could
	// occupy a worker far beyond its budgeted share. <= 0 means
	// DefaultMaxReadLen.
	MaxReadLen int

	// CoalesceLinger is how long a partial batch waits for reads from other
	// requests before being flushed to the pool. 0 means 500µs; negative
	// disables lingering (every partial batch flushes immediately).
	CoalesceLinger time.Duration

	// RequestTimeout bounds one request's alignment work. When it (or the
	// client's own disconnect) ends the request context, batches not yet
	// started are dropped from the queue and the request's admission
	// budget is released. 0 means no server-imposed deadline.
	RequestTimeout time.Duration

	// CacheEnabled turns on the sharded single-end result cache
	// (internal/rescache): duplicate read sequences are served from cached
	// alignment regions (re-rendered per read, so output stays
	// byte-identical), and concurrent duplicates single-flight behind the
	// first copy. Paired-end requests always bypass the cache. The zero
	// ServerConfig leaves it off; DefaultServerConfig enables it.
	CacheEnabled bool
	// CacheBytes is the result cache's total capacity in bytes across all
	// shards. <= 0 means DefaultCacheBytes.
	CacheBytes int64
	// CacheShards is the cache's lock-striping width, rounded up to a
	// power of two. <= 0 means DefaultCacheShards.
	CacheShards int

	// DrainTimeout bounds graceful shutdown's wait for in-flight requests.
	// <= 0 means 30s.
	DrainTimeout time.Duration

	// DebugRequestTraces sizes the per-request trace ring served by
	// GET /v1/debug/requests (the N most recent and N slowest request
	// timelines). 0, the default, disables the endpoint (it answers 404):
	// traces carry request IDs and routes, so retaining them is an explicit
	// deployment choice, not a default.
	DebugRequestTraces int
}

// Deployment defaults (shared by the server config and the pipeline's
// zero-value resolution).
const (
	DefaultBatchSize        = 512
	DefaultMaxInFlightReads = 1 << 16
	DefaultMaxReadLen       = 1 << 16
	DefaultCoalesceLinger   = 500 * time.Microsecond
	DefaultDrainTimeout     = 30 * time.Second
	DefaultCacheBytes       = 256 << 20
	DefaultCacheShards      = 64
)

// DefaultServerConfig returns the deployment defaults (optimized mode,
// NumCPU workers resolved at server start).
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		BatchSize:        DefaultBatchSize,
		Mode:             ModeOptimized,
		MaxInFlightReads: DefaultMaxInFlightReads,
		CoalesceLinger:   DefaultCoalesceLinger,
		DrainTimeout:     DefaultDrainTimeout,
		CacheEnabled:     true,
		CacheBytes:       DefaultCacheBytes,
		CacheShards:      DefaultCacheShards,
	}
}

// Normalize resolves zero values to defaults and validates the result.
func (c *ServerConfig) Normalize(numCPU int) error {
	if c.Threads <= 0 {
		c.Threads = numCPU
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.MaxInFlightReads <= 0 {
		c.MaxInFlightReads = DefaultMaxInFlightReads
	}
	if c.MaxReadsPerRequest <= 0 {
		c.MaxReadsPerRequest = c.MaxInFlightReads
	}
	if c.MaxReadLen <= 0 {
		c.MaxReadLen = DefaultMaxReadLen
	}
	if c.CoalesceLinger == 0 {
		c.CoalesceLinger = DefaultCoalesceLinger
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.CacheShards <= 0 {
		c.CacheShards = DefaultCacheShards
	}
	if c.DebugRequestTraces < 0 {
		c.DebugRequestTraces = 0
	}
	if c.Mode != ModeBaseline && c.Mode != ModeOptimized {
		return fmt.Errorf("core: unknown server mode %d", c.Mode)
	}
	if c.MaxReadsPerRequest > c.MaxInFlightReads {
		return fmt.Errorf("core: MaxReadsPerRequest %d exceeds MaxInFlightReads %d",
			c.MaxReadsPerRequest, c.MaxInFlightReads)
	}
	return nil
}

// Fingerprint digests every field that can influence a read's alignment
// output — the full option set plus the mode — into one value, for use as
// the option component of result-cache keys (internal/rescache): two
// aligners over the same index produce interchangeable regions for a
// sequence exactly when their fingerprints match. It hashes the %#v
// rendering of the struct so newly added option fields are picked up
// automatically instead of silently aliasing cache entries across
// configurations.
func (o *Options) Fingerprint(mode Mode) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%#v", mode, *o)
	return h.Sum64()
}

// chainOpts derives the chaining parameter block.
func (o *Options) chainOpts() chain.Opts {
	return chain.Opts{
		MaxChainGap: o.MaxChainGap, W: o.W, MaxOcc: o.MaxOcc,
		MaskLevel: o.MaskLevel, DropRatio: o.DropRatio,
		MinChainWeight: o.MinChainWeight, MinSeedLen: o.Seed.MinSeedLen,
	}
}

// DefaultBSWParams derives the extension parameter block used by the kernel
// benchmarks (end bonus = PenClip3, matching right extensions).
func (o *Options) DefaultBSWParams() bsw.Params {
	return o.bswParams(o.PenClip3)
}

// bswParams derives the extension parameter block with the given end bonus
// (PenClip5 for left extensions, PenClip3 for right).
func (o *Options) bswParams(endBonus int) bsw.Params {
	p := bsw.Params{
		ODel: o.ODel, EDel: o.EDel, OIns: o.OIns, EIns: o.EIns,
		Zdrop: o.Zdrop, EndBonus: endBonus,
	}
	p.Mat = bsw.FillScoreMatrix(o.MatchScore, o.MismatchPen)
	return p
}

// calMaxGap is BWA's cal_max_gap: the longest gap reachable from a flank of
// the given query length under the scoring parameters, capped at 2W.
func (o *Options) calMaxGap(qlen int) int {
	lDel := int(float64(qlen*o.MatchScore-o.ODel)/float64(o.EDel) + 1)
	lIns := int(float64(qlen*o.MatchScore-o.OIns)/float64(o.EIns) + 1)
	l := lDel
	if lIns > l {
		l = lIns
	}
	if l < 1 {
		l = 1
	}
	if cap2 := o.W << 1; l > cap2 {
		l = cap2
	}
	return l
}
