package core

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkIndexLoad measures the path from an on-disk .bwago to a ready
// aligner — the cost every bwaserve restart pays — for the three load
// strategies. The files are written (and read once) up front, so all
// sub-benchmarks run against a warm page cache: the v2-mmap number is the
// "warm start" the format was designed for, where open cost is header
// parsing instead of copying and rebuilding tables.
func BenchmarkIndexLoad(b *testing.B) {
	ref := testRef(b, 400000, 71)
	pi, err := BuildPrebuilt(ref)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	v1Path := filepath.Join(dir, "ref.v1.bwago")
	v2Path := filepath.Join(dir, "ref.bwago")
	writeWith := func(path string, write func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := write(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	writeWith(v1Path, pi.WriteIndex)
	writeWith(v2Path, pi.WriteIndexV2)
	for _, p := range []string{v1Path, v2Path} {
		if _, err := os.ReadFile(p); err != nil { // prime the page cache
			b.Fatal(err)
		}
	}

	heapLoad := func(b *testing.B, path string) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			loaded, err := ReadIndex(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := NewAlignerFrom(loaded, ModeOptimized, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("v1-heap", func(b *testing.B) { heapLoad(b, v1Path) })
	b.Run("v2-heap", func(b *testing.B) { heapLoad(b, v2Path) })
	b.Run("v2-mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := OpenIndexMmap(v2Path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := NewAlignerFrom(&m.Prebuilt, ModeOptimized, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
