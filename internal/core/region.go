package core

import (
	"math"
	"sort"

	"repro/internal/bsw"
	"repro/internal/chain"
)

// maxBandTry is BWA's MAX_BAND_TRY: extensions whose best score strays far
// off-diagonal are retried once with a doubled band.
const maxBandTry = 2

// Region is one candidate alignment of a read (BWA's mem_alnreg_t): query
// span [QB,QE) aligned to doubled-reference span [RB,RE).
type Region struct {
	RB, RE    int
	QB, QE    int
	Rid       int
	Score     int // best local extension score
	TrueSc    int // score of the reported (possibly to-end) extension
	Sub       int // second-best overlapping score
	SubN      int // number of suboptimal hits shadowed by this region
	W         int // band width actually used
	SeedCov   int // total length of seeds covered by the region
	Secondary int // index of the region this one is secondary to, or -1
	SeedLen0  int // length of the seed that produced the region
	FracRep   float64
}

func reverseBytes(dst, src []byte) []byte {
	dst = dst[:0]
	for i := len(src) - 1; i >= 0; i-- {
		dst = append(dst, src[i])
	}
	return dst
}

// chainWindow computes the widest reference window any seed of the chain
// could plausibly extend into (mem_chain2aln's rmax computation) and fetches
// that reference slice.
func (a *Aligner) chainWindow(qlen int, c *chain.Chain) (rmax0, rmax1 int, rseq []byte) {
	l2 := 2 * a.Ref.Lpac()
	rmax0, rmax1 = l2, 0
	for i := range c.Seeds {
		t := &c.Seeds[i]
		b := t.RBeg - (t.QBeg + a.Opts.calMaxGap(t.QBeg))
		e := t.RBeg + t.Len + (qlen - t.QBeg - t.Len) + a.Opts.calMaxGap(qlen-t.QBeg-t.Len)
		if b < rmax0 {
			rmax0 = b
		}
		if e > rmax1 {
			rmax1 = e
		}
	}
	if rmax0 < 0 {
		rmax0 = 0
	}
	if rmax1 > l2 {
		rmax1 = l2
	}
	// Never span the forward/reverse boundary; all seeds share a strand.
	if l := a.Ref.Lpac(); rmax0 < l && l < rmax1 {
		if c.Seeds[0].RBeg < l {
			rmax1 = l
		} else {
			rmax0 = l
		}
	}
	return rmax0, rmax1, a.Ref.Fetch(rmax0, rmax1)
}

// seedOrder returns BWA's srt array: seed indices keyed by score, to be
// processed from best to worst (ties resolved toward the later seed).
func seedOrder(c *chain.Chain) []uint64 {
	srt := make([]uint64, len(c.Seeds))
	for i := range c.Seeds {
		srt[i] = uint64(c.Seeds[i].Score)<<32 | uint64(i)
	}
	sort.Slice(srt, func(x, y int) bool { return srt[x] < srt[y] })
	return srt
}

// seedContainedIn returns the index of a previous region that (almost)
// contains seed s, or -1 (the first containment test of mem_chain2aln).
func (a *Aligner) seedContainedIn(regs []Region, s *chain.Seed, qlen int) int {
	for i := range regs {
		p := &regs[i]
		if s.RBeg < p.RB || s.RBeg+s.Len > p.RE || s.QBeg < p.QB || s.QBeg+s.Len > p.QE {
			continue // not fully contained
		}
		if float64(s.Len-p.SeedLen0) > 0.1*float64(qlen) {
			continue // the seed might still yield a better alignment
		}
		qd, rd := s.QBeg-p.QB, s.RBeg-p.RB
		w := a.Opts.calMaxGap(minInt(qd, rd))
		if p.W < w {
			w = p.W
		}
		if qd-rd < w && rd-qd < w {
			return i
		}
		qd, rd = p.QE-(s.QBeg+s.Len), p.RE-(s.RBeg+s.Len)
		w = a.Opts.calMaxGap(minInt(qd, rd))
		if p.W < w {
			w = p.W
		}
		if qd-rd < w && rd-qd < w {
			return i
		}
	}
	return -1
}

// hasOverlappingSeed reports whether any longer already-extended seed
// overlaps s off-diagonal (the second containment test: if none does, the
// contained seed is safely skipped).
func hasOverlappingSeed(c *chain.Chain, srt []uint64, k int, s *chain.Seed) bool {
	for i := k + 1; i < len(srt); i++ {
		if srt[i] == 0 {
			continue // that seed was skipped, not extended
		}
		t := &c.Seeds[uint32(srt[i])]
		if float64(t.Len) < float64(s.Len)*0.95 {
			continue
		}
		if s.QBeg <= t.QBeg && s.QBeg+s.Len-t.QBeg >= s.Len>>2 && t.QBeg-s.QBeg != t.RBeg-s.RBeg {
			return true
		}
		if t.QBeg <= s.QBeg && t.QBeg+t.Len-s.QBeg >= s.Len>>2 && s.QBeg-t.QBeg != s.RBeg-t.RBeg {
			return true
		}
	}
	return false
}

// extendFn runs one banded extension with band-doubling retry. prev0 seeds
// the convergence test exactly as mem_chain2aln does (-1 for left
// extensions, the post-left score for right extensions). It returns the
// result and the band width actually used.
type extendFn func(par *bsw.Params, qseg, tseg []byte, h0, prev0 int) (bsw.ExtResult, int)

// scalarExtend is the baseline engine: immediate scalar extension.
func (a *Aligner) scalarExtend(buf *bsw.ScalarBuf, st *bsw.CellStats) extendFn {
	return func(par *bsw.Params, qseg, tseg []byte, h0, prev0 int) (bsw.ExtResult, int) {
		var res bsw.ExtResult
		prev := prev0
		aw := a.Opts.W
		for i := 0; i < maxBandTry; i++ {
			aw = a.Opts.W << i
			res = bsw.ExtendScalar(par, qseg, tseg, aw, h0, buf, st)
			if res.Score == prev || res.MaxOff < (aw>>1)+(aw>>2) {
				break
			}
			prev = res.Score
		}
		return res, aw
	}
}

// newRegion starts a region for seed s of chain c.
func (a *Aligner) newRegion(c *chain.Chain) Region {
	return Region{W: a.Opts.W, Score: -1, TrueSc: -1, Rid: c.Rid, Secondary: -1, FracRep: c.FracRep}
}

// applyLeft folds a left-extension result into the region (mem_chain2aln's
// left-extension epilogue); applyNoLeft covers seeds already touching the
// read start.
func (a *Aligner) applyLeft(reg *Region, s *chain.Seed, res bsw.ExtResult) {
	reg.Score = res.Score
	if res.GScore <= 0 || res.GScore <= res.Score-a.Opts.PenClip5 {
		// Local extension: clip the 5' end.
		reg.QB, reg.RB = s.QBeg-res.QLE, s.RBeg-res.TLE
		reg.TrueSc = res.Score
	} else {
		// To-end extension reaches the start of the read.
		reg.QB, reg.RB = 0, s.RBeg-res.GTLE
		reg.TrueSc = res.GScore
	}
}

func (a *Aligner) applyNoLeft(reg *Region, s *chain.Seed) {
	reg.Score = s.Len * a.Opts.MatchScore
	reg.TrueSc = reg.Score
	reg.QB, reg.RB = 0, s.RBeg
}

// applyRight folds a right-extension result into the region; applyNoRight
// covers seeds already touching the read end.
func (a *Aligner) applyRight(reg *Region, s *chain.Seed, qlen, rmax0, sc0 int, res bsw.ExtResult) {
	qe := s.QBeg + s.Len
	re := s.RBeg + s.Len - rmax0
	reg.Score = res.Score
	if res.GScore <= 0 || res.GScore <= res.Score-a.Opts.PenClip3 {
		reg.QE, reg.RE = qe+res.QLE, rmax0+re+res.TLE
		reg.TrueSc += res.Score - sc0
	} else {
		reg.QE, reg.RE = qlen, rmax0+re+res.GTLE
		reg.TrueSc += res.GScore - sc0
	}
}

func (a *Aligner) applyNoRight(reg *Region, s *chain.Seed, qlen int) {
	reg.QE, reg.RE = qlen, s.RBeg+s.Len
}

// finishRegion computes seed coverage and the final band record.
func finishRegion(reg *Region, s *chain.Seed, c *chain.Chain, aw0, aw1 int) {
	for i := range c.Seeds {
		t := &c.Seeds[i]
		if t.QBeg >= reg.QB && t.QBeg+t.Len <= reg.QE &&
			t.RBeg >= reg.RB && t.RBeg+t.Len <= reg.RE {
			reg.SeedCov += t.Len
		}
	}
	if aw1 > aw0 {
		aw0 = aw1
	}
	reg.W = aw0
	reg.SeedLen0 = s.Len
}

// buildRegion assembles the alignment region of one seed from its left and
// right extensions (the core of mem_chain2aln), running extensions through
// ext immediately.
func (a *Aligner) buildRegion(q []byte, s *chain.Seed, c *chain.Chain,
	rmax0 int, rseq []byte, ext extendFn, ws *Workspace) Region {
	qlen := len(q)
	reg := a.newRegion(c)
	aw0, aw1 := a.Opts.W, a.Opts.W

	if s.QBeg > 0 { // left extension, on reversed sequences
		ws.qrev = reverseBytes(ws.qrev, q[:s.QBeg])
		ws.trev = reverseBytes(ws.trev, rseq[:s.RBeg-rmax0])
		res, aw := ext(&a.par5, ws.qrev, ws.trev, s.Len*a.Opts.MatchScore, -1)
		aw0 = aw
		a.applyLeft(&reg, s, res)
	} else {
		a.applyNoLeft(&reg, s)
	}

	if s.QBeg+s.Len != qlen { // right extension
		sc0 := reg.Score
		qe := s.QBeg + s.Len
		re := s.RBeg + s.Len - rmax0
		res, aw := ext(&a.par3, q[qe:], rseq[re:], sc0, sc0)
		aw1 = aw
		a.applyRight(&reg, s, qlen, rmax0, sc0, res)
	} else {
		a.applyNoRight(&reg, s, qlen)
	}
	finishRegion(&reg, s, c, aw0, aw1)
	return reg
}

// extendChain walks one chain's seeds best-first, skipping seeds contained
// in earlier regions (mem_chain2aln's online heuristic), extending the rest
// through ext, and appending the resulting regions.
func (a *Aligner) extendChain(q []byte, c *chain.Chain, regs []Region, ext extendFn, ws *Workspace) []Region {
	if len(c.Seeds) == 0 {
		return regs
	}
	rmax0, _, rseq := a.chainWindow(len(q), c)
	srt := seedOrder(c)
	for k := len(srt) - 1; k >= 0; k-- {
		s := &c.Seeds[uint32(srt[k])]
		if a.seedContainedIn(regs, s, len(q)) >= 0 {
			if !hasOverlappingSeed(c, srt, k, s) {
				srt[k] = 0 // skip: contained with no conflicting overlap
				continue
			}
		}
		regs = append(regs, a.buildRegion(q, s, c, rmax0, rseq, ext, ws))
	}
	return regs
}

// dedupRegions removes redundant overlapping regions and exact duplicates
// (mem_sort_dedup_patch; the region-merging "patch" step is omitted — see
// DESIGN.md). The result is sorted by decreasing score.
func (a *Aligner) dedupRegions(regs []Region) []Region {
	if len(regs) > 1 {
		// Sort by reference end (deterministic tie-breaks added).
		sort.Slice(regs, func(x, y int) bool {
			rx, ry := &regs[x], &regs[y]
			if rx.RE != ry.RE {
				return rx.RE < ry.RE
			}
			if rx.RB != ry.RB {
				return rx.RB < ry.RB
			}
			return rx.QB < ry.QB
		})
		for i := 1; i < len(regs); i++ {
			p := &regs[i]
			if p.Rid != regs[i-1].Rid || p.RB >= regs[i-1].RE+a.Opts.MaxChainGap {
				continue
			}
			for j := i - 1; j >= 0 && p.Rid == regs[j].Rid && p.RB < regs[j].RE+a.Opts.MaxChainGap; j-- {
				q := &regs[j]
				if q.QE == q.QB {
					continue // already excluded
				}
				or := q.RE - p.RB
				var oq int
				if q.QB < p.QB {
					oq = q.QE - p.QB
				} else {
					oq = p.QE - q.QB
				}
				mr := minInt(q.RE-q.RB, p.RE-p.RB)
				mq := minInt(q.QE-q.QB, p.QE-p.QB)
				if float64(or) > a.Opts.MaskLevelRedun*float64(mr) &&
					float64(oq) > a.Opts.MaskLevelRedun*float64(mq) {
					if p.Score < q.Score {
						p.QE = p.QB // exclude p
						break
					}
					q.QE = q.QB // exclude q
				}
			}
		}
	}
	out := regs[:0]
	for _, r := range regs {
		if r.QE > r.QB {
			out = append(out, r)
		}
	}
	regs = out
	// Sort by score and drop identical hits.
	sort.Slice(regs, func(x, y int) bool {
		rx, ry := &regs[x], &regs[y]
		if rx.Score != ry.Score {
			return rx.Score > ry.Score
		}
		if rx.RB != ry.RB {
			return rx.RB < ry.RB
		}
		return rx.QB < ry.QB
	})
	for i := 1; i < len(regs); i++ {
		if regs[i].Score == regs[i-1].Score && regs[i].RB == regs[i-1].RB && regs[i].QB == regs[i-1].QB {
			regs[i].QE = regs[i].QB
		}
	}
	out = regs[:0]
	for _, r := range regs {
		if r.QE > r.QB {
			out = append(out, r)
		}
	}
	return out
}

// markPrimary assigns secondary status and sub-scores (mem_mark_primary_se).
// regs must be sorted by decreasing score (dedupRegions' order).
func (a *Aligner) markPrimary(regs []Region) {
	if len(regs) == 0 {
		return
	}
	for i := range regs {
		regs[i].Sub, regs[i].SubN, regs[i].Secondary = 0, 0, -1
	}
	tmp := a.Opts.MatchScore + a.Opts.MismatchPen
	if v := a.Opts.MatchScore + a.Opts.EDel; v > tmp {
		tmp = v
	}
	if v := a.Opts.MatchScore + a.Opts.EIns; v > tmp {
		tmp = v
	}
	z := []int{0}
	for i := 1; i < len(regs); i++ {
		k := 0
		for ; k < len(z); k++ {
			j := z[k]
			bMax := maxInt(regs[j].QB, regs[i].QB)
			eMin := minInt(regs[j].QE, regs[i].QE)
			if eMin > bMax { // query overlap
				minL := minInt(regs[i].QE-regs[i].QB, regs[j].QE-regs[j].QB)
				if float64(eMin-bMax) >= float64(minL)*a.Opts.MaskLevel {
					// Significant overlap: i describes the same placement
					// question as j and becomes secondary to it. Record j's
					// best sub-score, and count near-equal hits (within one
					// substitution/gap-extension of the primary) toward the
					// mapq ambiguity penalty.
					if regs[j].Sub == 0 {
						regs[j].Sub = regs[i].Score
					}
					if regs[j].Score-regs[i].Score <= tmp {
						regs[j].SubN++
					}
					break
				}
			}
		}
		if k == len(z) {
			z = append(z, i)
		} else {
			regs[i].Secondary = z[k]
		}
	}
}

// mapQ approximates the mapping quality of a primary region
// (mem_approx_mapq_se).
func (a *Aligner) mapQ(r *Region) int {
	sub := r.Sub
	if sub == 0 {
		sub = a.Opts.Seed.MinSeedLen * a.Opts.MatchScore
	}
	if sub >= r.Score {
		return 0
	}
	l := maxInt(r.QE-r.QB, r.RE-r.RB)
	identity := 1 - float64(l*a.Opts.MatchScore-r.Score)/
		float64(a.Opts.MatchScore+a.Opts.MismatchPen)/float64(l)
	var mapq int
	switch {
	case r.Score == 0:
		mapq = 0
	case a.Opts.MapQCoefLen > 0:
		tmp := 1.0
		if l >= a.Opts.MapQCoefLen {
			tmp = a.Opts.MapQCoefFac / math.Log(float64(l))
		}
		tmp *= identity * identity
		mapq = int(6.02*float64(r.Score-sub)/float64(a.Opts.MatchScore)*tmp*tmp + .499)
	default:
		mapq = int(30.0*(1-float64(sub)/float64(r.Score))*math.Log(float64(r.SeedCov)) + .499)
	}
	if r.SubN > 0 {
		mapq -= int(4.343*math.Log(float64(r.SubN+1)) + .499)
	}
	if mapq > 60 {
		mapq = 60
	}
	if mapq < 0 {
		mapq = 0
	}
	return int(float64(mapq)*(1-r.FracRep) + .499)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
