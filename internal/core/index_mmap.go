//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"sync/atomic"
	"syscall"
)

// MappedIndex is prebuilt index data whose large sections — packed
// reference, BWT column, suffix array, both occurrence tables — alias a
// read-only memory mapping of a v2 .bwago file instead of living on the Go
// heap. Opening one costs header parsing and metadata validation regardless
// of index size; the kernel pages data in on first touch, and every process
// that maps the same file shares one page-cached copy.
//
// Lifetime contract: everything derived from the embedded Prebuilt —
// aligners from NewAlignerFrom, servers over those aligners, in-flight
// batches — borrows the mapping. Close unmaps it, so call Close only after
// all such users are done (for a server: after Shutdown has drained the
// scheduler and worker pool). Touching a borrowed slice after Close faults
// the process. Close is idempotent and safe for concurrent use.
type MappedIndex struct {
	Prebuilt
	mapping []byte
	size    int64
	path    string
	closed  atomic.Bool
}

// OpenIndexMmap maps a v2 index file read-only and assembles a Prebuilt
// whose big arrays alias the mapping — zero copy. v1 files cannot be
// mapped (their sections are neither aligned nor self-describing); the
// error says to rebuild with `bwamem index`, and ReadIndex still heap-loads
// them.
//
// Verification at open: header checksum, full section-table geometry, the
// meta (contig) section checksum, and the consistency pass shared with the
// heap readers. The big sections' checksums are NOT verified here — that
// would page in the whole file and defeat the near-instant start; they are
// verified at write time and by every heap load of the same file.
func OpenIndexMmap(path string) (*MappedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	probe := make([]byte, len(indexMagic)+4)
	if size < int64(len(probe)) {
		return nil, corruptf("%s is %d bytes, smaller than any index", path, size)
	}
	if _, err := f.ReadAt(probe, 0); err != nil {
		return nil, err
	}
	if string(probe[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("core: %s is not a bwamem-go index (magic %q)", path, probe[:len(indexMagic)])
	}
	if ver := binary.LittleEndian.Uint32(probe[len(indexMagic):]); ver != indexVersionV2 {
		return nil, fmt.Errorf("core: %s is index format v%d, which cannot be memory-mapped; rebuild it with `bwamem index` (writes v2) or heap-load it with ReadIndex", path, ver)
	}
	if size < v2HeaderBytes {
		return nil, corruptf("%s is %d bytes, smaller than a v2 header", path, size)
	}
	if uint64(size) > uint64(math.MaxInt) {
		return nil, fmt.Errorf("core: %s is %d bytes, too large to map on this platform", path, size)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("core: mmap %s: %w", path, err)
	}
	pi, err := buildFromMapping(m, size)
	if err != nil {
		syscall.Munmap(m)
		return nil, fmt.Errorf("%w (mapping %s)", err, path)
	}
	return &MappedIndex{Prebuilt: *pi, mapping: m, size: size, path: path}, nil
}

// buildFromMapping parses the header out of the mapping and aliases the
// sections in place. The meta section is small and heap-decoded anyway, so
// its checksum is verified here; the big sections are aliased unverified
// (see OpenIndexMmap).
func buildFromMapping(m []byte, size int64) (*Prebuilt, error) {
	h, err := parseV2Header(m[:v2HeaderBytes], size)
	if err != nil {
		return nil, err
	}
	var sec [v2NumSections][]byte
	for i, s := range h.sections {
		sec[i] = m[s.off : s.off+s.length : s.off+s.length]
	}
	if crc64.Checksum(sec[secMeta], crcTable) != h.sections[secMeta].crc {
		return nil, corruptf("meta section checksum mismatch")
	}
	return buildFromV2(h, sec, true)
}

// Close unmaps the file. See the lifetime contract on MappedIndex.
func (m *MappedIndex) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	mm := m.mapping
	m.mapping = nil
	if mm == nil {
		return nil
	}
	return syscall.Munmap(mm)
}

// MappedBytes returns the size of the mapping (the file size). This is
// shared, file-backed address space, not private heap: N processes mapping
// the same index keep one resident copy between them.
func (m *MappedIndex) MappedBytes() int64 { return m.size }

// Path returns the mapped file's path.
func (m *MappedIndex) Path() string { return m.path }

// IsMapped reports whether the index aliases a shared read-only file
// mapping — always true on this platform.
func (m *MappedIndex) IsMapped() bool { return true }
