//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package core

import (
	"encoding/binary"
	"fmt"
	"os"
)

// MappedIndex on platforms without wired-up mmap support: OpenIndexMmap
// falls back to a heap load of the same file so callers keep working, Close
// is a no-op, and MappedBytes reports the heap footprint instead of a
// shared mapping. The zero-copy guarantees documented on the unix build do
// not apply here.
type MappedIndex struct {
	Prebuilt
	size int64
	path string
}

// OpenIndexMmap heap-loads a v2 index (mmap fallback for this platform).
// v1 files are rejected exactly like on mmap-capable platforms, so tooling
// behaves the same everywhere.
func OpenIndexMmap(path string) (*MappedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	probe := make([]byte, len(indexMagic)+4)
	if _, err := f.ReadAt(probe, 0); err != nil {
		return nil, corruptf("%s is smaller than any index", path)
	}
	if string(probe[:len(indexMagic)]) == indexMagic {
		if ver := binary.LittleEndian.Uint32(probe[len(indexMagic):]); ver != indexVersionV2 {
			return nil, fmt.Errorf("core: %s is index format v%d, which cannot be memory-mapped; rebuild it with `bwamem index` (writes v2) or heap-load it with ReadIndex", path, ver)
		}
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	pi, err := ReadIndex(f)
	if err != nil {
		return nil, err
	}
	return &MappedIndex{Prebuilt: *pi, size: pi.MemFootprint(), path: path}, nil
}

// Close is a no-op on the heap fallback.
func (m *MappedIndex) Close() error { return nil }

// MappedBytes returns the heap footprint of the loaded index.
func (m *MappedIndex) MappedBytes() int64 { return m.size }

// IsMapped reports whether the index aliases a shared read-only file
// mapping — always false on this platform's heap fallback.
func (m *MappedIndex) IsMapped() bool { return false }

// Path returns the loaded file's path.
func (m *MappedIndex) Path() string { return m.path }
