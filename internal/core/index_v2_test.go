package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/seq"
)

func buildV2Bytes(t testing.TB, refBP int, seed int64) (*Prebuilt, []byte) {
	t.Helper()
	ref := testRef(t, refBP, seed)
	pi, err := BuildPrebuilt(ref)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pi.WriteIndexV2(&buf); err != nil {
		t.Fatal(err)
	}
	return pi, buf.Bytes()
}

// samEqual asserts two aligners render byte-identical SAM for the same
// sampled reads.
func samEqual(t *testing.T, want, got *Aligner, label string, seed int64) {
	t.Helper()
	rng := randFor(seed)
	for trial := 0; trial < 5; trial++ {
		rd, _ := sampleRead(rng, want.Ref, 100, 2, trial%2 == 1)
		codes := seq.Encode(rd.Seq)
		s1 := string(want.AppendSAM(nil, &rd, codes, want.AlignRead(codes, nil)))
		s2 := string(got.AppendSAM(nil, &rd, codes, got.AlignRead(codes, nil)))
		if s1 != s2 {
			t.Fatalf("%s: SAM differs:\n%s%s", label, s1, s2)
		}
	}
}

func TestIndexV2RoundTrip(t *testing.T) {
	pi, data := buildV2Bytes(t, 12000, 401)
	pi2, err := ReadIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pi.Ref.Pac, pi2.Ref.Pac) || !reflect.DeepEqual(pi.Ref.Contigs, pi2.Ref.Contigs) ||
		pi.Ref.NumAmb != pi2.Ref.NumAmb {
		t.Fatal("reference mismatch after v2 round trip")
	}
	if pi.BWT.Primary != pi2.BWT.Primary || !bytes.Equal(pi.BWT.B0, pi2.BWT.B0) ||
		pi.BWT.C != pi2.BWT.C || pi.BWT.Counts != pi2.BWT.Counts {
		t.Fatal("BWT mismatch after v2 round trip")
	}
	if !reflect.DeepEqual(pi.FullSA, pi2.FullSA) {
		t.Fatal("suffix array mismatch after v2 round trip")
	}
	if pi2.Occ128 == nil || pi2.Occ32 == nil {
		t.Fatal("v2 load did not surface the persisted occurrence tables")
	}
	// An unseekable stream must load identically (no file-size hint).
	pi3, err := ReadIndex(nonSeekReader{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pi3.FullSA, pi.FullSA) {
		t.Fatal("unseekable v2 load disagrees")
	}
	for _, mode := range []Mode{ModeBaseline, ModeOptimized} {
		direct := newTestAligner(t, pi.Ref, mode)
		loaded, err := NewAlignerFrom(pi2, mode, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		samEqual(t, direct, loaded, "v2 "+mode.String(), 402)
	}
}

func TestIndexMmapMatchesHeapLoads(t *testing.T) {
	pi, data := buildV2Bytes(t, 15000, 403)
	dir := t.TempDir()
	v2Path := filepath.Join(dir, "ref.bwago")
	if err := os.WriteFile(v2Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var v1Buf bytes.Buffer
	if err := pi.WriteIndex(&v1Buf); err != nil {
		t.Fatal(err)
	}

	mi, err := OpenIndexMmap(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	defer mi.Close()
	if mi.MappedBytes() != int64(len(data)) {
		t.Fatalf("MappedBytes = %d, file is %d bytes", mi.MappedBytes(), len(data))
	}
	if !bytes.Equal(mi.Ref.Pac, pi.Ref.Pac) || !bytes.Equal(mi.BWT.B0, pi.BWT.B0) ||
		!reflect.DeepEqual(mi.FullSA, pi.FullSA) || !reflect.DeepEqual(mi.Ref.Contigs, pi.Ref.Contigs) {
		t.Fatal("mapped sections disagree with the built index")
	}
	if mi.BWT.Counts != pi.BWT.Counts || mi.BWT.C != pi.BWT.C || mi.BWT.Primary != pi.BWT.Primary {
		t.Fatal("mapped BWT metadata disagrees with the built index")
	}

	v1pi, err := ReadIndex(bytes.NewReader(v1Buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeBaseline, ModeOptimized} {
		heap, err := NewAlignerFrom(v1pi, mode, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := NewAlignerFrom(&mi.Prebuilt, mode, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		samEqual(t, heap, mapped, "mmap vs v1-heap "+mode.String(), 404)
	}

	if err := mi.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mi.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// patchHeaderCRC recomputes the header checksum after a test mutates header
// bytes, so the mutation is reached instead of masked by the CRC gate.
func patchHeaderCRC(b []byte) {
	binary.LittleEndian.PutUint64(b[v2HeaderCRCOff:], crc64.Checksum(b[:v2HeaderCRCOff], crcTable))
}

func TestIndexV2CorruptionMatrix(t *testing.T) {
	_, data := buildV2Bytes(t, 8000, 405)
	if _, err := ReadIndex(bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine v2 index did not load: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantErr string
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0x40; return b }, "not a bwamem-go index"},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 9)
			return b
		}, "unsupported index version"},
		{"header bit flip", func(b []byte) []byte { b[24] ^= 1; return b }, "header checksum"},
		{"primary row zero", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:], 0)
			patchHeaderCRC(b)
			return b
		}, "primary row"},
		{"counts disagree", func(b []byte) []byte {
			v := binary.LittleEndian.Uint64(b[48:])
			binary.LittleEndian.PutUint64(b[48:], v+1)
			binary.LittleEndian.PutUint64(b[56:], binary.LittleEndian.Uint64(b[56:])-1)
			patchHeaderCRC(b)
			return b
		}, "disagree"},
		{"oversized section length", func(b []byte) []byte {
			// Inflate the pac section's length claim past the file.
			p := b[v2SectionTab+24*secPac:]
			binary.LittleEndian.PutUint64(p[8:], 1<<40)
			patchHeaderCRC(b)
			return b
		}, "outside the"},
		{"pac bit flip", func(b []byte) []byte { b[2*v2PageSize+5] ^= 1; return b }, "section checksum mismatch"},
		{"truncated header", func(b []byte) []byte { return b[:100] }, ""},
		{"truncated mid-section", func(b []byte) []byte { return b[:len(b)/2] }, ""},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-1] }, ""},
	}
	for _, tc := range cases {
		b := tc.mutate(append([]byte(nil), data...))
		_, err := ReadIndex(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("%s: corrupt index loaded without error", tc.name)
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
		// Unseekable streams must reject the same corruption (possibly with
		// a less specific error).
		if _, err := ReadIndex(nonSeekReader{bytes.NewReader(b)}); err == nil {
			t.Fatalf("%s: corrupt index loaded from an unseekable stream", tc.name)
		}
	}
}

func TestOpenIndexMmapRejectsUnusable(t *testing.T) {
	dir := t.TempDir()
	pi, data := buildV2Bytes(t, 4000, 406)

	v1Path := filepath.Join(dir, "v1.bwago")
	var v1Buf bytes.Buffer
	if err := pi.WriteIndex(&v1Buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1Path, v1Buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndexMmap(v1Path); err == nil ||
		!strings.Contains(err.Error(), "v1") {
		t.Fatalf("mmap of a v1 index: err = %v", err)
	}

	garbage := filepath.Join(dir, "garbage.bwago")
	if err := os.WriteFile(garbage, []byte("definitely not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndexMmap(garbage); err == nil {
		t.Fatal("mmap of garbage should not succeed")
	}

	trunc := filepath.Join(dir, "trunc.bwago")
	if err := os.WriteFile(trunc, data[:len(data)-512], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndexMmap(trunc); err == nil {
		t.Fatal("mmap of a truncated index should not succeed")
	}

	flipped := append([]byte(nil), data...)
	flipped[v2PageSize+3] ^= 1 // meta section byte
	badMeta := filepath.Join(dir, "badmeta.bwago")
	if err := os.WriteFile(badMeta, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndexMmap(badMeta); err == nil ||
		!strings.Contains(err.Error(), "meta section checksum") {
		t.Fatalf("mmap with corrupt meta: err = %v", err)
	}
}
