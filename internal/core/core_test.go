package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/seq"
)

// testRef builds a random single-contig reference of n bases.
func testRef(t testing.TB, n int, seed int64) *seq.Reference {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	ref, err := seq.NewReference([]string{"chr1"}, [][]byte{s})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// sampleRead extracts a read from the reference, optionally reverse
// complemented and mutated, returning the ASCII read and its true position.
func sampleRead(rng *rand.Rand, ref *seq.Reference, length, subs int, rev bool) (seq.Read, int) {
	pos := rng.Intn(ref.Lpac() - length)
	codes := append([]byte(nil), ref.Pac[pos:pos+length]...)
	for i := 0; i < subs; i++ {
		codes[rng.Intn(length)] = byte(rng.Intn(4))
	}
	if rev {
		seq.RevCompInPlace(codes)
	}
	return seq.Read{Name: fmt.Sprintf("r%d", pos), Seq: seq.Decode(codes)}, pos
}

func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newTestAligner(t testing.TB, ref *seq.Reference, mode Mode) *Aligner {
	t.Helper()
	a, err := NewAligner(ref, mode, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAlignReadFindsTruePosition(t *testing.T) {
	ref := testRef(t, 20000, 81)
	rng := rand.New(rand.NewSource(82))
	for _, mode := range []Mode{ModeBaseline, ModeOptimized} {
		a := newTestAligner(t, ref, mode)
		ws := &Workspace{}
		for trial := 0; trial < 30; trial++ {
			rev := trial%2 == 1
			rd, pos := sampleRead(rng, ref, 100, 2, rev)
			regs := a.AlignRead(seq.Encode(rd.Seq), ws)
			if len(regs) == 0 {
				t.Fatalf("%v trial %d: no regions", mode, trial)
			}
			best := regs[0]
			aln := a.regToAln(seq.Encode(rd.Seq), &best)
			if aln.Rid != 0 {
				t.Fatalf("%v trial %d: rid %d", mode, trial, aln.Rid)
			}
			if aln.IsRev != rev {
				t.Fatalf("%v trial %d: strand %v, want %v", mode, trial, aln.IsRev, rev)
			}
			if d := aln.Pos - pos; d < -5 || d > 5 {
				t.Fatalf("%v trial %d: pos %d, want ~%d", mode, trial, aln.Pos, pos)
			}
		}
	}
}

// TestModesProduceIdenticalSAM is the reproduction of the paper's central
// requirement (§6.1.3): the optimized implementation must emit output
// identical to the baseline.
func TestModesProduceIdenticalSAM(t *testing.T) {
	ref := testRef(t, 30000, 83)
	rng := rand.New(rand.NewSource(84))
	ab := newTestAligner(t, ref, ModeBaseline)
	ao := newTestAligner(t, ref, ModeOptimized)
	wsB, wsO := &Workspace{}, &Workspace{}
	for trial := 0; trial < 60; trial++ {
		length := []int{76, 101, 151}[trial%3]
		rd, _ := sampleRead(rng, ref, length, rng.Intn(6), trial%2 == 0)
		codes := seq.Encode(rd.Seq)
		rb := ab.AlignRead(codes, wsB)
		ro := ao.AlignRead(codes, wsO)
		if !reflect.DeepEqual(rb, ro) {
			t.Fatalf("trial %d: regions differ:\nbaseline  %+v\noptimized %+v", trial, rb, ro)
		}
		samB := string(ab.AppendSAM(nil, &rd, codes, rb))
		samO := string(ao.AppendSAM(nil, &rd, codes, ro))
		if samB != samO {
			t.Fatalf("trial %d: SAM differs:\n%s\n%s", trial, samB, samO)
		}
	}
}

// TestBatchMatchesSequential verifies the §5.3.2 reorganization: batched
// extension plus replayed filtering equals the per-read sequential path.
func TestBatchMatchesSequential(t *testing.T) {
	ref := testRef(t, 30000, 85)
	rng := rand.New(rand.NewSource(86))
	for _, mode := range []Mode{ModeBaseline, ModeOptimized} {
		for _, lane := range []bool{false, true} {
			opts := DefaultOptions()
			opts.LaneBSW = lane
			a, err := NewAligner(ref, mode, opts)
			if err != nil {
				t.Fatal(err)
			}
			var reads [][]byte
			var rds []seq.Read
			for i := 0; i < 40; i++ {
				rd, _ := sampleRead(rng, ref, 101, rng.Intn(5), i%2 == 0)
				rds = append(rds, rd)
				reads = append(reads, seq.Encode(rd.Seq))
			}
			ws := &Workspace{}
			batch := a.AlignBatch(reads, ws)
			for i, q := range reads {
				seqr := a.AlignRead(q, ws)
				if !reflect.DeepEqual(batch[i], seqr) {
					t.Fatalf("%v lane=%v read %d (%s): batch/sequential regions differ:\nbatch %+v\nseq   %+v",
						mode, lane, i, rds[i].Name, batch[i], seqr)
				}
			}
		}
	}
}

func TestGarbageReadUnmapped(t *testing.T) {
	ref := testRef(t, 20000, 87)
	a := newTestAligner(t, ref, ModeOptimized)
	rng := rand.New(rand.NewSource(88))
	junk := make([]byte, 80)
	for i := range junk {
		junk[i] = "ACGT"[rng.Intn(4)]
	}
	rd := seq.Read{Name: "junk", Seq: junk}
	codes := seq.Encode(rd.Seq)
	regs := a.AlignRead(codes, nil)
	sam := string(a.AppendSAM(nil, &rd, codes, regs))
	// A random 80-mer against a 20 kb reference may align by chance, but
	// the record must be well-formed either way.
	fields := strings.Split(strings.TrimSuffix(sam, "\n"), "\t")
	if len(fields) < 11 {
		t.Fatalf("malformed SAM: %q", sam)
	}
}

func TestSAMRecordShape(t *testing.T) {
	ref := testRef(t, 20000, 89)
	a := newTestAligner(t, ref, ModeOptimized)
	rng := rand.New(rand.NewSource(90))
	rd, pos := sampleRead(rng, ref, 100, 1, false)
	rd.Qual = []byte(strings.Repeat("F", 100))
	codes := seq.Encode(rd.Seq)
	regs := a.AlignRead(codes, nil)
	sam := string(a.AppendSAM(nil, &rd, codes, regs))
	lines := strings.Split(strings.TrimSuffix(sam, "\n"), "\n")
	f := strings.Split(lines[0], "\t")
	if f[0] != rd.Name || f[2] != "chr1" {
		t.Fatalf("name/rname: %q", lines[0])
	}
	if f[5] == "*" || !strings.Contains(f[5], "M") {
		t.Fatalf("cigar: %q", f[5])
	}
	if f[9] != string(rd.Seq) || f[10] != string(rd.Qual) {
		t.Fatalf("seq/qual roundtrip: %q", lines[0])
	}
	var gotPos int
	fmt.Sscanf(f[3], "%d", &gotPos)
	if d := gotPos - 1 - pos; d < -5 || d > 5 {
		t.Fatalf("pos %d, want ~%d", gotPos-1, pos)
	}
	if !strings.Contains(lines[0], "NM:i:") || !strings.Contains(lines[0], "AS:i:") {
		t.Fatalf("tags missing: %q", lines[0])
	}
}

func TestReverseStrandSAM(t *testing.T) {
	ref := testRef(t, 20000, 91)
	a := newTestAligner(t, ref, ModeOptimized)
	rng := rand.New(rand.NewSource(92))
	rd, _ := sampleRead(rng, ref, 100, 0, true)
	codes := seq.Encode(rd.Seq)
	regs := a.AlignRead(codes, nil)
	sam := string(a.AppendSAM(nil, &rd, codes, regs))
	f := strings.Split(strings.TrimSuffix(sam, "\n"), "\t")
	var flag int
	fmt.Sscanf(f[1], "%d", &flag)
	if flag&FlagReverse == 0 {
		t.Fatalf("reverse flag missing: %q", sam)
	}
	// SEQ column holds the reverse complement (i.e., the forward reference
	// strand) of the read.
	want := seq.Decode(seq.RevComp(seq.Encode(rd.Seq)))
	if f[9] != string(want) {
		t.Fatalf("reverse SEQ not complemented")
	}
}

func TestPerfectReadHasZeroNM(t *testing.T) {
	ref := testRef(t, 20000, 93)
	a := newTestAligner(t, ref, ModeBaseline)
	rng := rand.New(rand.NewSource(94))
	rd, _ := sampleRead(rng, ref, 120, 0, false)
	codes := seq.Encode(rd.Seq)
	regs := a.AlignRead(codes, nil)
	if len(regs) == 0 {
		t.Fatal("no regions")
	}
	aln := a.regToAln(codes, &regs[0])
	if aln.NM != 0 {
		t.Fatalf("NM = %d for a perfect read", aln.NM)
	}
	if aln.Cigar.String() != "120M" {
		t.Fatalf("cigar = %s", aln.Cigar)
	}
	if aln.Mapq == 0 {
		t.Fatal("unique perfect read should have positive mapq")
	}
}

func TestIndelReadCigar(t *testing.T) {
	ref := testRef(t, 20000, 95)
	a := newTestAligner(t, ref, ModeOptimized)
	pos := 5000
	codes := append([]byte(nil), ref.Pac[pos:pos+120]...)
	// Delete 3 bases from the middle of the read.
	withDel := append(append([]byte(nil), codes[:60]...), codes[63:]...)
	rd := seq.Read{Name: "del3", Seq: seq.Decode(withDel)}
	q := seq.Encode(rd.Seq)
	regs := a.AlignRead(q, nil)
	if len(regs) == 0 {
		t.Fatal("no regions")
	}
	aln := a.regToAln(q, &regs[0])
	if !strings.Contains(aln.Cigar.String(), "D") {
		t.Fatalf("expected a deletion in cigar, got %s", aln.Cigar)
	}
	ql, _ := aln.Cigar.Lens()
	if ql != len(rd.Seq) {
		t.Fatalf("cigar consumes %d query bases, want %d", ql, len(rd.Seq))
	}
}

func TestMapqRange(t *testing.T) {
	ref := testRef(t, 30000, 97)
	a := newTestAligner(t, ref, ModeOptimized)
	rng := rand.New(rand.NewSource(98))
	ws := &Workspace{}
	for trial := 0; trial < 40; trial++ {
		rd, _ := sampleRead(rng, ref, 101, rng.Intn(8), trial%2 == 0)
		regs := a.AlignRead(seq.Encode(rd.Seq), ws)
		for i := range regs {
			if regs[i].Secondary < 0 {
				q := a.mapQ(&regs[i])
				if q < 0 || q > 60 {
					t.Fatalf("mapq %d out of range", q)
				}
			}
		}
	}
}

func TestRepeatReadLowMapq(t *testing.T) {
	// A read from an exact repeat must get mapq 0 (two equal-best hits).
	rng := rand.New(rand.NewSource(99))
	unit := make([]byte, 3000)
	for i := range unit {
		unit[i] = "ACGT"[rng.Intn(4)]
	}
	pad1 := make([]byte, 4000)
	pad2 := make([]byte, 4000)
	for i := range pad1 {
		pad1[i] = "ACGT"[rng.Intn(4)]
		pad2[i] = "ACGT"[rng.Intn(4)]
	}
	genome := append(append(append(append([]byte{}, pad1...), unit...), pad2...), unit...)
	ref, err := seq.NewReference([]string{"c"}, [][]byte{genome})
	if err != nil {
		t.Fatal(err)
	}
	a := newTestAligner(t, ref, ModeOptimized)
	rd := seq.Read{Name: "rep", Seq: seq.Decode(append([]byte(nil), ref.Pac[4500:4600]...))}
	codes := seq.Encode(rd.Seq)
	regs := a.AlignRead(codes, nil)
	if len(regs) < 2 {
		t.Fatalf("expected two hits in a repeat, got %d", len(regs))
	}
	aln := a.regToAln(codes, &regs[0])
	if aln.Mapq > 3 {
		t.Fatalf("repeat read mapq = %d, want ~0", aln.Mapq)
	}
	if regs[1].Secondary != 0 {
		t.Fatalf("second hit should be secondary to the first: %+v", regs[1])
	}
}

func TestSAMHeader(t *testing.T) {
	ref := testRef(t, 5000, 100)
	a := newTestAligner(t, ref, ModeBaseline)
	h := a.SAMHeader()
	if !strings.Contains(h, "@SQ\tSN:chr1\tLN:5000") || !strings.Contains(h, "@PG") {
		t.Fatalf("header: %q", h)
	}
}

func TestMultiContigRid(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	mk := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = "ACGT"[rng.Intn(4)]
		}
		return s
	}
	ref, err := seq.NewReference([]string{"cA", "cB"}, [][]byte{mk(8000), mk(8000)})
	if err != nil {
		t.Fatal(err)
	}
	a := newTestAligner(t, ref, ModeOptimized)
	// Read from the second contig.
	rd := seq.Read{Name: "b", Seq: seq.Decode(append([]byte(nil), ref.Pac[8000+3000:8000+3100]...))}
	codes := seq.Encode(rd.Seq)
	regs := a.AlignRead(codes, nil)
	if len(regs) == 0 {
		t.Fatal("no regions")
	}
	aln := a.regToAln(codes, &regs[0])
	if aln.Rid != 1 {
		t.Fatalf("rid = %d, want 1", aln.Rid)
	}
	if d := aln.Pos - 3000; d < -5 || d > 5 {
		t.Fatalf("pos = %d, want ~3000", aln.Pos)
	}
	sam := string(a.AppendSAM(nil, &rd, codes, regs))
	if !strings.Contains(sam, "\tcB\t") {
		t.Fatalf("SAM rname: %q", sam)
	}
}

func TestUnmappedRecord(t *testing.T) {
	ref := testRef(t, 20000, 102)
	a := newTestAligner(t, ref, ModeBaseline)
	rd := seq.Read{Name: "nn", Seq: []byte(strings.Repeat("N", 80))}
	codes := seq.Encode(rd.Seq)
	regs := a.AlignRead(codes, nil)
	sam := string(a.AppendSAM(nil, &rd, codes, regs))
	f := strings.Split(strings.TrimSuffix(sam, "\n"), "\t")
	var flag int
	fmt.Sscanf(f[1], "%d", &flag)
	if flag&FlagUnmapped == 0 || f[2] != "*" {
		t.Fatalf("all-N read should be unmapped: %q", sam)
	}
}
