// Package counters provides the per-stage wall-time accounting used to
// regenerate the paper's Table 1 (run-time breakdown across SMEM, SAL,
// CHAIN, BSW pre-processing, BSW, and SAM-FORM) and the stacked bars of
// Figures 4-5.
package counters

import "time"

// Stage identifies one pipeline stage of BWA-MEM (Table 1 rows).
type Stage int

const (
	StageSMEM Stage = iota
	StageSAL
	StageChain
	StageBSWPre
	StageBSW
	StageSAMForm
	StageMisc
	NumStages
)

var stageNames = [NumStages]string{
	"SMEM", "SAL", "CHAIN", "BSW-pre", "BSW", "SAM-FORM", "Misc",
}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "?"
	}
	return stageNames[s]
}

// Stages returns every stage in order, for callers that keep per-stage
// state (one histogram per stage, one table row per stage) without
// hard-coding the enum.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageClock accumulates time per stage. Use one per worker goroutine and
// Merge afterwards; individual clocks are not synchronized.
type StageClock struct {
	T [NumStages]time.Duration
}

// Add charges d to stage s. Nil clocks are permitted and ignored so callers
// can instrument unconditionally.
func (c *StageClock) Add(s Stage, d time.Duration) {
	if c == nil {
		return
	}
	c.T[s] += d
}

// Merge adds src's time into c.
func (c *StageClock) Merge(src *StageClock) {
	for i := range c.T {
		c.T[i] += src.T[i]
	}
}

// Sub removes src's time from c (the inverse of Merge, for computing the
// delta between two snapshots of a shared clock).
func (c *StageClock) Sub(src *StageClock) {
	for i := range c.T {
		c.T[i] -= src.T[i]
	}
}

// Total returns the summed stage time.
func (c *StageClock) Total() time.Duration {
	var t time.Duration
	for _, d := range c.T {
		t += d
	}
	return t
}

// Kernels returns the time in the three hot kernels (SMEM+SAL+BSW), the
// quantity the paper reports as ">85% of total".
func (c *StageClock) Kernels() time.Duration {
	return c.T[StageSMEM] + c.T[StageSAL] + c.T[StageBSWPre] + c.T[StageBSW]
}

// Fraction returns stage s as a fraction of the total (0 when empty).
func (c *StageClock) Fraction(s Stage) float64 {
	tot := c.Total()
	if tot == 0 {
		return 0
	}
	return float64(c.T[s]) / float64(tot)
}
