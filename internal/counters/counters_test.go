package counters

import (
	"testing"
	"time"
)

func TestStageClockAccumulates(t *testing.T) {
	var c StageClock
	c.Add(StageSMEM, 10*time.Millisecond)
	c.Add(StageSMEM, 5*time.Millisecond)
	c.Add(StageBSW, 20*time.Millisecond)
	c.Add(StageSAL, 5*time.Millisecond)
	if c.T[StageSMEM] != 15*time.Millisecond {
		t.Fatalf("SMEM = %v", c.T[StageSMEM])
	}
	if c.Total() != 40*time.Millisecond {
		t.Fatalf("total = %v", c.Total())
	}
	if c.Kernels() != 40*time.Millisecond {
		t.Fatalf("kernels = %v", c.Kernels())
	}
	if f := c.Fraction(StageBSW); f != 0.5 {
		t.Fatalf("fraction = %v", f)
	}
}

func TestStageClockNilSafe(t *testing.T) {
	var c *StageClock
	c.Add(StageSMEM, time.Second) // must not panic
}

func TestMerge(t *testing.T) {
	var a, b StageClock
	a.Add(StageChain, 3*time.Millisecond)
	b.Add(StageChain, 4*time.Millisecond)
	b.Add(StageMisc, 1*time.Millisecond)
	a.Merge(&b)
	if a.T[StageChain] != 7*time.Millisecond || a.T[StageMisc] != time.Millisecond {
		t.Fatalf("merge: %+v", a)
	}
}

func TestEmptyClockFractions(t *testing.T) {
	var c StageClock
	if c.Fraction(StageSMEM) != 0 {
		t.Fatal("empty clock fraction should be 0")
	}
}

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageSMEM: "SMEM", StageSAL: "SAL", StageChain: "CHAIN",
		StageBSWPre: "BSW-pre", StageBSW: "BSW", StageSAMForm: "SAM-FORM",
		StageMisc: "Misc",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d: %q != %q", s, s.String(), n)
		}
	}
	if Stage(99).String() != "?" {
		t.Error("out-of-range stage name")
	}
}
