package counters

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// AtomicClock is a stage clock safe for concurrent Add and Snapshot. It is
// the aggregation sink for long-lived worker pools (the alignment server),
// where per-worker StageClocks are flushed in as work completes and readers
// (the /metrics endpoint) snapshot at any time.
type AtomicClock struct {
	ns [NumStages]atomic.Int64
}

// Add charges d to stage s. Nil clocks are permitted and ignored.
func (c *AtomicClock) Add(s Stage, d time.Duration) {
	if c == nil {
		return
	}
	c.ns[s].Add(int64(d))
}

// AddDelta charges cur-prev stage-wise, then copies cur into prev. Workers
// call it after each unit of work to publish the time accumulated in their
// private clock since the last flush.
func (c *AtomicClock) AddDelta(cur, prev *StageClock) {
	if c == nil {
		return
	}
	for i := range cur.T {
		if d := cur.T[i] - prev.T[i]; d != 0 {
			c.ns[Stage(i)].Add(int64(d))
		}
	}
	*prev = *cur
}

// Snapshot returns a point-in-time copy as a plain StageClock.
func (c *AtomicClock) Snapshot() StageClock {
	var s StageClock
	if c == nil {
		return s
	}
	for i := range s.T {
		s.T[i] = time.Duration(c.ns[i].Load())
	}
	return s
}

// WriteMetrics emits the clock in Prometheus text exposition format, one
// counter per stage plus a total:
//
//	<prefix>_stage_seconds{stage="SMEM"} 1.234567
//	<prefix>_stage_seconds_total 2.345678
func (c *StageClock) WriteMetrics(w io.Writer, prefix string) error {
	for i := range c.T {
		if _, err := fmt.Fprintf(w, "%s_stage_seconds{stage=%q} %.6f\n",
			prefix, Stage(i).String(), c.T[i].Seconds()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_stage_seconds_total %.6f\n", prefix, c.Total().Seconds())
	return err
}
