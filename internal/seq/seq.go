// Package seq provides DNA sequence primitives shared by every stage of the
// aligner: the 2-bit nucleotide alphabet, encoding and decoding between ASCII
// and numeric codes, complementation, and the packed reference representation
// (forward strand concatenated with its reverse complement) over which the
// FM-index is built, exactly as in BWA-MEM. It also holds the streaming
// input decoders (FastqScanner, DecodeJSONReads) the server uses to
// validate request bodies as they arrive.
//
// # Concurrency contract
//
// The encoding/complement functions are pure and safe from any goroutine.
// A Reference is immutable once built and may be shared by every worker in
// the process — the alignment server relies on this to keep one resident
// reference under a whole pool. The stateful decoders (FastqScanner,
// ReadFasta, DecodeJSONReads) are single-goroutine: one decoder per
// input stream, never shared.
package seq

import "fmt"

// Nucleotide codes. The FM-index and all kernels work on these numeric codes,
// not on ASCII bases. CodeN marks any ambiguous IUPAC base.
const (
	CodeA byte = 0
	CodeC byte = 1
	CodeG byte = 2
	CodeT byte = 3
	CodeN byte = 4 // ambiguous
)

// AlphabetSize is the number of unambiguous nucleotide codes.
const AlphabetSize = 4

// codeTable maps ASCII to nucleotide codes (the nst_nt4 table of BWA).
var codeTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = CodeN
	}
	t['A'], t['a'] = CodeA, CodeA
	t['C'], t['c'] = CodeC, CodeC
	t['G'], t['g'] = CodeG, CodeG
	t['T'], t['t'] = CodeT, CodeT
	return t
}()

// baseTable maps codes back to upper-case ASCII bases.
var baseTable = [5]byte{'A', 'C', 'G', 'T', 'N'}

// Code converts an ASCII base to its numeric code; any non-ACGT byte maps to
// CodeN.
func Code(b byte) byte { return codeTable[b] }

// Base converts a numeric code back to an upper-case ASCII base.
func Base(c byte) byte {
	if c > CodeN {
		return 'N'
	}
	return baseTable[c]
}

// Comp returns the complement of a nucleotide code. CodeN complements to
// itself.
func Comp(c byte) byte {
	if c >= CodeN {
		return CodeN
	}
	return 3 - c
}

// Encode converts an ASCII sequence to numeric codes, allocating a new slice.
func Encode(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		out[i] = codeTable[b]
	}
	return out
}

// EncodeInto converts ASCII to codes into dst, which must be at least
// len(s) long, and returns dst[:len(s)].
func EncodeInto(dst, s []byte) []byte {
	dst = dst[:len(s)]
	for i, b := range s {
		dst[i] = codeTable[b]
	}
	return dst
}

// Decode converts numeric codes back to an ASCII sequence.
func Decode(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = Base(c)
	}
	return out
}

// RevComp returns the reverse complement of a code sequence in a new slice.
func RevComp(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[len(codes)-1-i] = Comp(c)
	}
	return out
}

// RevCompInPlace reverse-complements a code sequence in place.
func RevCompInPlace(codes []byte) {
	i, j := 0, len(codes)-1
	for i < j {
		codes[i], codes[j] = Comp(codes[j]), Comp(codes[i])
		i, j = i+1, j-1
	}
	if i == j {
		codes[i] = Comp(codes[i])
	}
}

// Contig is one named sequence of a reference (a chromosome or scaffold).
type Contig struct {
	Name   string
	Offset int // start position within the packed forward strand
	Len    int
}

// Reference is the packed reference: all contigs concatenated on the forward
// strand, followed logically by the reverse complement of the whole thing.
// Coordinates in [0, Lpac) address the forward strand; coordinates in
// [Lpac, 2*Lpac) address the reverse strand, mirrored so that position
// 2*Lpac-1-i is the complement of forward position i. This is exactly BWA's
// pac layout and is what allows one FM-index to serve both strands.
//
// Ambiguous (non-ACGT) reference bases are substituted with a deterministic
// pseudo-random base at construction, as BWA does when packing a FASTA, so
// Pac contains only codes 0–3. NumAmb records how many were substituted.
type Reference struct {
	Contigs []Contig
	Pac     []byte // forward strand, numeric codes 0..3 only
	NumAmb  int    // number of ambiguous bases substituted
}

// Lpac returns the forward-strand length.
func (r *Reference) Lpac() int { return len(r.Pac) }

// ambBase deterministically picks the substitute base for an ambiguous
// reference base at absolute position pos (an LCG step on the position, so
// rebuilding the same reference always yields the same packed sequence).
func ambBase(pos int) byte {
	x := uint64(pos)*6364136223846793005 + 1442695040888963407
	return byte((x >> 33) & 3)
}

// NewReference builds a Reference from named ASCII sequences.
func NewReference(names []string, seqs [][]byte) (*Reference, error) {
	if len(names) != len(seqs) {
		return nil, fmt.Errorf("seq: %d names but %d sequences", len(names), len(seqs))
	}
	r := &Reference{}
	for i, s := range seqs {
		if len(s) == 0 {
			return nil, fmt.Errorf("seq: contig %q is empty", names[i])
		}
		r.Contigs = append(r.Contigs, Contig{Name: names[i], Offset: len(r.Pac), Len: len(s)})
		for _, b := range s {
			c := Code(b)
			if c >= CodeN {
				c = ambBase(len(r.Pac))
				r.NumAmb++
			}
			r.Pac = append(r.Pac, c)
		}
	}
	return r, nil
}

// Get returns the code at absolute position pos on the doubled (forward +
// reverse complement) sequence of length 2*Lpac.
func (r *Reference) Get(pos int) byte {
	l := len(r.Pac)
	if pos < l {
		return r.Pac[pos]
	}
	return Comp(r.Pac[2*l-1-pos])
}

// Fetch copies the code subsequence [beg, end) of the doubled sequence into a
// new slice. beg and end are clamped to [0, 2*Lpac].
func (r *Reference) Fetch(beg, end int) []byte {
	l2 := 2 * len(r.Pac)
	if beg < 0 {
		beg = 0
	}
	if end > l2 {
		end = l2
	}
	if beg >= end {
		return nil
	}
	out := make([]byte, end-beg)
	for i := beg; i < end; i++ {
		out[i-beg] = r.Get(i)
	}
	return out
}

// DoubledLen returns 2*Lpac, the length of the sequence the FM-index covers.
func (r *Reference) DoubledLen() int { return 2 * len(r.Pac) }

// Doubled materializes the full forward+reverse-complement code sequence.
// The FM-index is constructed from this.
func (r *Reference) Doubled() []byte {
	l := len(r.Pac)
	out := make([]byte, 2*l)
	copy(out, r.Pac)
	for i := 0; i < l; i++ {
		out[2*l-1-i] = Comp(r.Pac[i])
	}
	return out
}

// PosToContig resolves a forward-strand position to its contig index and the
// offset within that contig. It returns -1 if pos is out of range.
func (r *Reference) PosToContig(pos int) (idx, off int) {
	lo, hi := 0, len(r.Contigs)
	for lo < hi {
		mid := (lo + hi) / 2
		c := r.Contigs[mid]
		switch {
		case pos < c.Offset:
			hi = mid
		case pos >= c.Offset+c.Len:
			lo = mid + 1
		default:
			return mid, pos - c.Offset
		}
	}
	return -1, 0
}

// DepackPos maps a position on the doubled sequence to (forwardPos, isRev):
// the equivalent forward-strand coordinate of the leftmost base of a match of
// length matchLen starting at pos.
func (r *Reference) DepackPos(pos, matchLen int) (fwd int, isRev bool) {
	l := len(r.Pac)
	if pos < l {
		return pos, false
	}
	// On the reverse strand the match [pos, pos+matchLen) mirrors to the
	// forward interval ending at 2l-pos.
	return 2*l - (pos + matchLen), true
}
