package seq

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeBase(t *testing.T) {
	cases := []struct {
		in   byte
		want byte
	}{
		{'A', CodeA}, {'a', CodeA},
		{'C', CodeC}, {'c', CodeC},
		{'G', CodeG}, {'g', CodeG},
		{'T', CodeT}, {'t', CodeT},
		{'N', CodeN}, {'n', CodeN},
		{'X', CodeN}, {'-', CodeN}, {0, CodeN},
	}
	for _, c := range cases {
		if got := Code(c.in); got != c.want {
			t.Errorf("Code(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for c := byte(0); c < 4; c++ {
		if Code(Base(c)) != c {
			t.Errorf("Code(Base(%d)) != %d", c, c)
		}
	}
	if Base(CodeN) != 'N' {
		t.Errorf("Base(CodeN) = %q", Base(CodeN))
	}
	if Base(200) != 'N' {
		t.Errorf("Base(200) = %q, want 'N'", Base(200))
	}
}

func TestComp(t *testing.T) {
	pairs := [][2]byte{{CodeA, CodeT}, {CodeC, CodeG}, {CodeG, CodeC}, {CodeT, CodeA}, {CodeN, CodeN}}
	for _, p := range pairs {
		if Comp(p[0]) != p[1] {
			t.Errorf("Comp(%d) = %d, want %d", p[0], Comp(p[0]), p[1])
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []byte("ACGTacgtNNxACGT")
	codes := Encode(in)
	out := Decode(codes)
	want := []byte("ACGTACGTNNNACGT")
	if !bytes.Equal(out, want) {
		t.Errorf("Decode(Encode(%q)) = %q, want %q", in, out, want)
	}
}

func TestEncodeInto(t *testing.T) {
	buf := make([]byte, 16)
	got := EncodeInto(buf, []byte("ACGT"))
	if !bytes.Equal(got, []byte{0, 1, 2, 3}) {
		t.Errorf("EncodeInto = %v", got)
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(s []byte) bool {
		codes := make([]byte, len(s))
		for i, b := range s {
			codes[i] = b % 5
		}
		rc := RevComp(RevComp(codes))
		return bytes.Equal(rc, codes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRevCompInPlaceMatchesRevComp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		codes := make([]byte, n)
		for i := range codes {
			codes[i] = byte(rng.Intn(5))
		}
		want := RevComp(codes)
		got := append([]byte(nil), codes...)
		RevCompInPlace(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: RevCompInPlace=%v RevComp=%v", n, got, want)
		}
	}
}

func TestReferenceDoubled(t *testing.T) {
	r, err := NewReference([]string{"c1", "c2"}, [][]byte{[]byte("ACGT"), []byte("TTA")})
	if err != nil {
		t.Fatal(err)
	}
	if r.Lpac() != 7 {
		t.Fatalf("Lpac = %d, want 7", r.Lpac())
	}
	d := r.Doubled()
	if len(d) != 14 {
		t.Fatalf("len(Doubled) = %d, want 14", len(d))
	}
	// forward: ACGTTTA ; reverse complement: TAAACGT
	want := append(Encode([]byte("ACGTTTA")), Encode([]byte("TAAACGT"))...)
	if !bytes.Equal(d, want) {
		t.Errorf("Doubled = %v, want %v", d, want)
	}
	for i := range d {
		if r.Get(i) != d[i] {
			t.Errorf("Get(%d) = %d, want %d", i, r.Get(i), d[i])
		}
	}
	if !bytes.Equal(r.Fetch(2, 9), d[2:9]) {
		t.Errorf("Fetch(2,9) mismatch")
	}
	if r.Fetch(9, 2) != nil {
		t.Errorf("Fetch with beg>=end should be nil")
	}
	if got := r.Fetch(-5, 100); !bytes.Equal(got, d) {
		t.Errorf("Fetch clamping failed")
	}
}

func TestReferenceErrors(t *testing.T) {
	if _, err := NewReference([]string{"a"}, nil); err == nil {
		t.Error("mismatched names/seqs should error")
	}
	if _, err := NewReference([]string{"a"}, [][]byte{{}}); err == nil {
		t.Error("empty contig should error")
	}
}

func TestPosToContig(t *testing.T) {
	r, _ := NewReference([]string{"c1", "c2", "c3"}, [][]byte{
		bytes.Repeat([]byte("A"), 10),
		bytes.Repeat([]byte("C"), 5),
		bytes.Repeat([]byte("G"), 7),
	})
	cases := []struct {
		pos int
		idx int
		off int
	}{
		{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {14, 1, 4}, {15, 2, 0}, {21, 2, 6},
	}
	for _, c := range cases {
		idx, off := r.PosToContig(c.pos)
		if idx != c.idx || off != c.off {
			t.Errorf("PosToContig(%d) = (%d,%d), want (%d,%d)", c.pos, idx, off, c.idx, c.off)
		}
	}
	if idx, _ := r.PosToContig(22); idx != -1 {
		t.Errorf("PosToContig(22) = %d, want -1", idx)
	}
	if idx, _ := r.PosToContig(-1); idx != -1 {
		t.Errorf("PosToContig(-1) = %d, want -1", idx)
	}
}

func TestDepackPos(t *testing.T) {
	r, _ := NewReference([]string{"c"}, [][]byte{[]byte("ACGTACGTAC")}) // l=10
	// Forward strand position passes through.
	if fwd, rev := r.DepackPos(3, 4); fwd != 3 || rev {
		t.Errorf("DepackPos(3,4) = (%d,%v)", fwd, rev)
	}
	// A match of length 4 at doubled position 10 (start of revcomp strand)
	// covers revcomp[0..4) which mirrors forward [6,10).
	if fwd, rev := r.DepackPos(10, 4); fwd != 6 || !rev {
		t.Errorf("DepackPos(10,4) = (%d,%v), want (6,true)", fwd, rev)
	}
}

func TestFastaRoundTrip(t *testing.T) {
	in := ">chr1 primary\nACGTACGT\nACGT\n\n>chr2\nTTTT\n"
	recs, err := ReadFasta(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "chr1" || recs[0].Desc != "primary" {
		t.Errorf("rec0 header = %q %q", recs[0].Name, recs[0].Desc)
	}
	if string(recs[0].Seq) != "ACGTACGTACGT" {
		t.Errorf("rec0 seq = %q", recs[0].Seq)
	}
	if string(recs[1].Seq) != "TTTT" {
		t.Errorf("rec1 seq = %q", recs[1].Seq)
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 5); err != nil {
		t.Fatal(err)
	}
	recs2, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(recs2[0].Seq) != string(recs[0].Seq) || string(recs2[1].Seq) != string(recs[1].Seq) {
		t.Error("fasta round trip mismatch")
	}
}

func TestFastaErrors(t *testing.T) {
	cases := []string{
		"",          // no records
		"ACGT\n",    // data before header
		">\nACGT\n", // empty header
		">x\n",      // record without sequence
	}
	for _, c := range cases {
		if _, err := ReadFasta(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("ReadFasta(%q) should error", c)
		}
	}
}

func TestFastqRoundTrip(t *testing.T) {
	in := "@r1 extra\nACGT\n+\nIIII\n@r2\nTT\n+r2\nAB\n"
	reads, err := ReadFastq(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 {
		t.Fatalf("got %d reads, want 2", len(reads))
	}
	if reads[0].Name != "r1" || string(reads[0].Seq) != "ACGT" || string(reads[0].Qual) != "IIII" {
		t.Errorf("read0 = %+v", reads[0])
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, reads); err != nil {
		t.Fatal(err)
	}
	reads2, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if reads2[1].Name != "r2" || string(reads2[1].Qual) != "AB" {
		t.Errorf("round trip read1 = %+v", reads2[1])
	}
}

func TestFastqQualSynthesis(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFastq(&buf, []Read{{Name: "r", Seq: []byte("ACG")}}); err != nil {
		t.Fatal(err)
	}
	reads, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(reads[0].Qual) != "III" {
		t.Errorf("synth qual = %q", reads[0].Qual)
	}
}

func TestFastqErrors(t *testing.T) {
	cases := []string{
		"@r1\nACGT\n+\nIII\n", // qual length mismatch
		"r1\nACGT\n+\nIIII\n", // bad header
		"@r1\nACGT\nIIII\n",   // missing '+' line
		"",                    // empty
	}
	for _, c := range cases {
		if _, err := ReadFastq(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("ReadFastq(%q) should error", c)
		}
	}
}

func TestReferenceFromFasta(t *testing.T) {
	in := ">a\nACGT\n>b\nGGG\n"
	r, err := ReferenceFromFasta(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contigs) != 2 || r.Lpac() != 7 {
		t.Errorf("ref = %+v", r)
	}
}
