package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Read is one sequencing read: name, ASCII bases, and per-base Phred+33
// qualities (may be nil when synthesized without qualities).
type Read struct {
	Name string
	Seq  []byte
	Qual []byte
}

// ReadFastq parses all reads from 4-line-record FASTQ input.
func ReadFastq(r io.Reader) ([]Read, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var reads []Read
	recNo := 0
	for {
		header, err := readLine(br)
		if err == io.EOF && len(header) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("fastq: read: %w", err)
		}
		if len(header) == 0 {
			continue // tolerate trailing blank lines
		}
		recNo++
		if header[0] != '@' {
			return nil, fmt.Errorf("fastq: record %d: header %q does not start with '@'", recNo, header)
		}
		s, err := readLine(br)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("fastq: record %d: %w", recNo, err)
		}
		plus, err := readLine(br)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("fastq: record %d: %w", recNo, err)
		}
		if len(plus) == 0 || plus[0] != '+' {
			return nil, fmt.Errorf("fastq: record %d: separator line %q does not start with '+'", recNo, plus)
		}
		q, err := readLine(br)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("fastq: record %d: %w", recNo, err)
		}
		if len(q) != len(s) {
			return nil, fmt.Errorf("fastq: record %d: quality length %d != sequence length %d", recNo, len(q), len(s))
		}
		name, _ := splitHeader(header[1:])
		reads = append(reads, Read{Name: name, Seq: s, Qual: q})
		if err == io.EOF {
			break
		}
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("fastq: no records")
	}
	return reads, nil
}

func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	line = bytes.TrimRight(line, "\r\n")
	// Return a copy: ReadBytes already allocates, but trimming may alias.
	return line, err
}

// WriteFastq writes reads in 4-line FASTQ format. Reads without qualities get
// a constant 'I' (Q40) quality string.
func WriteFastq(w io.Writer, reads []Read) error {
	bw := bufio.NewWriter(w)
	for _, rd := range reads {
		bw.WriteByte('@')
		bw.WriteString(rd.Name)
		bw.WriteByte('\n')
		bw.Write(rd.Seq)
		bw.WriteString("\n+\n")
		if rd.Qual != nil {
			bw.Write(rd.Qual)
		} else {
			for range rd.Seq {
				bw.WriteByte('I')
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
