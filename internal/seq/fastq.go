package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Read is one sequencing read: name, ASCII bases, and per-base Phred+33
// qualities (may be nil when synthesized without qualities).
type Read struct {
	Name string
	Seq  []byte
	Qual []byte
}

// FastqScanner is an incremental 4-line-record FASTQ decoder: Scan advances
// to the next record, Record returns it. Unlike ReadFastq it never
// materializes more than one record, so a caller can enforce per-request
// read caps and per-read validation while the body is still arriving and
// abort without consuming the remainder of the input (beyond the scanner's
// read-ahead buffer).
type FastqScanner struct {
	br   *bufio.Reader
	rec  int // records yielded so far (1-based in error messages)
	cur  Read
	err  error
	done bool
}

// NewFastqScanner returns a scanner over r.
func NewFastqScanner(r io.Reader) *FastqScanner {
	return &FastqScanner{br: bufio.NewReaderSize(r, 1<<16)}
}

// Scan advances to the next record, reporting whether one is available.
// It returns false at end of input or on the first malformed record; Err
// distinguishes the two.
func (s *FastqScanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	for {
		header, err := readLine(s.br)
		if err == io.EOF && len(header) == 0 {
			s.done = true
			return false
		}
		if err != nil && err != io.EOF {
			s.err = fmt.Errorf("fastq: read: %w", err)
			return false
		}
		if len(header) == 0 {
			continue // tolerate trailing blank lines
		}
		s.rec++
		if header[0] != '@' {
			s.err = fmt.Errorf("fastq: record %d: header %q does not start with '@'", s.rec, header)
			return false
		}
		sq, err := readLine(s.br)
		if err != nil && err != io.EOF {
			s.err = fmt.Errorf("fastq: record %d: %w", s.rec, err)
			return false
		}
		plus, err := readLine(s.br)
		if err != nil && err != io.EOF {
			s.err = fmt.Errorf("fastq: record %d: %w", s.rec, err)
			return false
		}
		if len(plus) == 0 || plus[0] != '+' {
			s.err = fmt.Errorf("fastq: record %d: separator line %q does not start with '+'", s.rec, plus)
			return false
		}
		q, err := readLine(s.br)
		if err != nil && err != io.EOF {
			s.err = fmt.Errorf("fastq: record %d: %w", s.rec, err)
			return false
		}
		if len(q) != len(sq) {
			s.err = fmt.Errorf("fastq: record %d: quality length %d != sequence length %d", s.rec, len(q), len(sq))
			return false
		}
		name, _ := splitHeader(header[1:])
		s.cur = Read{Name: name, Seq: sq, Qual: q}
		if err == io.EOF {
			s.done = true
		}
		return true
	}
}

// Record returns the record Scan advanced to. Valid until the next Scan.
func (s *FastqScanner) Record() Read { return s.cur }

// Err returns the first error encountered, nil at clean end of input.
func (s *FastqScanner) Err() error { return s.err }

// ReadFastq parses all reads from 4-line-record FASTQ input.
func ReadFastq(r io.Reader) ([]Read, error) {
	sc := NewFastqScanner(r)
	var reads []Read
	//bwalint:hot per-record decode loop; dominates whole-file ingest
	for sc.Scan() {
		//bwalint:ignore hotalloc record count is unknown until EOF; growth amortizes over the file
		reads = append(reads, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("fastq: no records")
	}
	return reads, nil
}

func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	line = bytes.TrimRight(line, "\r\n")
	// Return a copy: ReadBytes already allocates, but trimming may alias.
	return line, err
}

// WriteFastq writes reads in 4-line FASTQ format. Reads without qualities get
// a constant 'I' (Q40) quality string.
func WriteFastq(w io.Writer, reads []Read) error {
	bw := bufio.NewWriter(w)
	var buf bytes.Buffer // staged per record so each bw.Write error is checked
	for _, rd := range reads {
		buf.Reset()
		buf.WriteByte('@')
		buf.WriteString(rd.Name)
		buf.WriteByte('\n')
		buf.Write(rd.Seq)
		buf.WriteString("\n+\n")
		if rd.Qual != nil {
			buf.Write(rd.Qual)
		} else {
			for range rd.Seq {
				buf.WriteByte('I')
			}
		}
		buf.WriteByte('\n')
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
