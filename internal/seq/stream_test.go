package seq

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestFastqScannerMatchesReadFastq(t *testing.T) {
	reads := []Read{
		{Name: "r1", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIIIII")},
		{Name: "r2 desc dropped", Seq: []byte("GGGG"), Qual: []byte("!!!!")},
		{Name: "r3", Seq: []byte("TTTTT"), Qual: []byte("IIIII")},
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, reads); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	want, err := ReadFastq(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewFastqScanner(bytes.NewReader(raw))
	var got []Read
	for sc.Scan() {
		got = append(got, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scanner records differ from ReadFastq:\n got %+v\nwant %+v", got, want)
	}
	if sc.Scan() {
		t.Fatal("Scan returned true after end of input")
	}
}

func TestFastqScannerErrors(t *testing.T) {
	cases := []struct {
		name, body, errSub string
	}{
		{"bad header", "not-a-header\nACGT\n+\nIIII\n", "does not start with '@'"},
		{"bad separator", "@r\nACGT\nIIII\n", "separator line"},
		{"qual length", "@r\nACGT\n+\nII\n", "quality length"},
	}
	for _, c := range cases {
		sc := NewFastqScanner(strings.NewReader(c.body))
		for sc.Scan() {
		}
		if err := sc.Err(); err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.errSub)
		}
	}

	// Trailing blank lines are tolerated, not errors.
	sc := NewFastqScanner(strings.NewReader("@r\nACGT\n+\nIIII\n\n\n"))
	n := 0
	for sc.Scan() {
		n++
	}
	if sc.Err() != nil || n != 1 {
		t.Fatalf("trailing blanks: %d records, err %v", n, sc.Err())
	}

	// Empty input: zero records, no error (ReadFastq layers its own check).
	sc = NewFastqScanner(strings.NewReader(""))
	if sc.Scan() || sc.Err() != nil {
		t.Fatalf("empty input: Scan %v, err %v", sc.Scan(), sc.Err())
	}
}

func TestFastqScannerStopsOnAbort(t *testing.T) {
	// A consumer that stops scanning must not have forced a read of the
	// whole body: build 4 small records followed by a large tail and check
	// consumption stays within the scanner's buffer.
	var buf bytes.Buffer
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&buf, "@r%d\nACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIII\n", i)
	}
	total := buf.Len()
	cr := &countingReader{r: bytes.NewReader(buf.Bytes())}
	sc := NewFastqScanner(cr)
	for i := 0; i < 4 && sc.Scan(); i++ {
	}
	if cr.n > 1<<17 {
		t.Fatalf("scanner consumed %d of %d bytes after 4 records", cr.n, total)
	}
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func TestDecodeJSONReads(t *testing.T) {
	body := `{"tag": "x", "reads": [
		{"name": "a", "seq": "ACGT", "qual": "IIII"},
		{"name": "b", "seq": "GG"}
	], "extra": {"nested": [1, 2]}}`
	var got []Read
	err := DecodeJSONReads(strings.NewReader(body), map[string]JSONReadVisitor{
		"reads": func(rd Read) error { got = append(got, rd); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Read{
		{Name: "a", Seq: []byte("ACGT"), Qual: []byte("IIII")},
		{Name: "b", Seq: []byte("GG")},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestDecodeJSONReadsTwoFields(t *testing.T) {
	body := `{"reads1": [{"name": "p", "seq": "AC"}], "reads2": [{"name": "p", "seq": "GT"}]}`
	var r1, r2 []Read
	err := DecodeJSONReads(strings.NewReader(body), map[string]JSONReadVisitor{
		"reads1": func(rd Read) error { r1 = append(r1, rd); return nil },
		"reads2": func(rd Read) error { r2 = append(r2, rd); return nil },
	})
	if err != nil || len(r1) != 1 || len(r2) != 1 {
		t.Fatalf("err %v, r1 %d, r2 %d", err, len(r1), len(r2))
	}
}

func TestDecodeJSONReadsNullAndMalformed(t *testing.T) {
	if err := DecodeJSONReads(strings.NewReader(`{"reads": null}`), map[string]JSONReadVisitor{
		"reads": func(Read) error { t.Fatal("visitor called for null"); return nil },
	}); err != nil {
		t.Fatalf("null array: %v", err)
	}
	for _, bad := range []string{`[1,2]`, `{`, `{"reads": 7}`, `not json`} {
		if err := DecodeJSONReads(strings.NewReader(bad), map[string]JSONReadVisitor{
			"reads": func(Read) error { return nil },
		}); err == nil {
			t.Errorf("malformed %q: no error", bad)
		}
	}
}

func TestDecodeJSONReadsVisitorAbortStopsReading(t *testing.T) {
	// The visitor error must propagate verbatim and halt the decode
	// without consuming the rest of the body.
	var buf bytes.Buffer
	buf.WriteString(`{"reads": [`)
	for i := 0; i < 50000; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"name": "r%d", "seq": "ACGTACGTACGT"}`, i)
	}
	buf.WriteString(`]}`)
	total := buf.Len()

	abort := errors.New("stop here")
	seen := 0
	cr := &countingReader{r: bytes.NewReader(buf.Bytes())}
	err := DecodeJSONReads(cr, map[string]JSONReadVisitor{
		"reads": func(Read) error {
			seen++
			if seen > 3 {
				return abort
			}
			return nil
		},
	})
	if !errors.Is(err, abort) {
		t.Fatalf("err = %v, want the visitor's own error", err)
	}
	if cr.n > 1<<16 {
		t.Fatalf("decode consumed %d of %d bytes after aborting at read 4", cr.n, total)
	}
}
