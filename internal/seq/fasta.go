package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// FastaRecord is one named sequence parsed from FASTA input.
type FastaRecord struct {
	Name string // text after '>' up to the first whitespace
	Desc string // remainder of the header line, if any
	Seq  []byte // raw ASCII bases
}

// ReadFasta parses all records from FASTA input. Lines may be wrapped at any
// width; blank lines are ignored.
func ReadFasta(r io.Reader) ([]FastaRecord, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var recs []FastaRecord
	var cur *FastaRecord
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			lineNo++
			line = bytes.TrimRight(line, "\r\n")
			switch {
			case len(line) == 0:
				// skip blank lines
			case line[0] == '>':
				header := bytes.TrimSpace(line[1:])
				if len(header) == 0 {
					return nil, fmt.Errorf("fasta: line %d: empty header", lineNo)
				}
				name, desc := splitHeader(header)
				recs = append(recs, FastaRecord{Name: name, Desc: desc})
				cur = &recs[len(recs)-1]
			case cur == nil:
				return nil, fmt.Errorf("fasta: line %d: sequence data before first header", lineNo)
			default:
				cur.Seq = append(cur.Seq, line...)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fasta: read: %w", err)
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("fasta: no records")
	}
	for i := range recs {
		if len(recs[i].Seq) == 0 {
			return nil, fmt.Errorf("fasta: record %q has no sequence", recs[i].Name)
		}
	}
	return recs, nil
}

func splitHeader(h []byte) (name, desc string) {
	if i := bytes.IndexAny(h, " \t"); i >= 0 {
		return string(h[:i]), string(bytes.TrimSpace(h[i+1:]))
	}
	return string(h), ""
}

// WriteFasta writes records in FASTA format with lines wrapped at width
// (width <= 0 means no wrapping).
func WriteFasta(w io.Writer, recs []FastaRecord, width int) error {
	bw := bufio.NewWriter(w)
	var buf bytes.Buffer // staged per record so each bw.Write error is checked
	for _, rec := range recs {
		buf.Reset()
		if rec.Desc != "" {
			fmt.Fprintf(&buf, ">%s %s\n", rec.Name, rec.Desc)
		} else {
			fmt.Fprintf(&buf, ">%s\n", rec.Name)
		}
		s := rec.Seq
		if width <= 0 {
			buf.Write(s)
			buf.WriteByte('\n')
		} else {
			for len(s) > 0 {
				n := width
				if n > len(s) {
					n = len(s)
				}
				buf.Write(s[:n])
				buf.WriteByte('\n')
				s = s[n:]
			}
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReferenceFromFasta parses FASTA input and packs it into a Reference.
func ReferenceFromFasta(r io.Reader) (*Reference, error) {
	recs, err := ReadFasta(r)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(recs))
	seqs := make([][]byte, len(recs))
	for i, rec := range recs {
		names[i] = rec.Name
		seqs[i] = rec.Seq
	}
	return NewReference(names, seqs)
}
