package seq

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONReadVisitor receives one read of a JSON read-array field as soon as
// it is decoded. Returning a non-nil error aborts the whole decode
// immediately — the remainder of the body is never read — and
// DecodeJSONReads returns that error verbatim.
type JSONReadVisitor func(rd Read) error

// DecodeJSONReads incrementally decodes a JSON object whose recognized
// top-level fields each hold an array of read objects of the form
//
//	{"name": "...", "seq": "ACGT...", "qual": "IIII..."}
//
// calling the field's visitor for every read as it is decoded. The arrays
// are never materialized here, which is what lets a server enforce
// per-request read caps and per-read validation mid-body instead of after
// buffering the whole request. Fields without a visitor are skipped; a
// recognized field holding null is treated as an empty array.
func DecodeJSONReads(r io.Reader, fields map[string]JSONReadVisitor) error {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("json: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("json: request body is not an object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("json: %w", err)
		}
		key, _ := keyTok.(string)
		visit, ok := fields[key]
		if !ok {
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return fmt.Errorf("json: field %q: %w", key, err)
			}
			continue
		}
		if err := decodeReadArray(dec, key, visit); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return fmt.Errorf("json: %w", err)
	}
	return nil
}

// decodeReadArray streams one read-array value, invoking visit per element.
func decodeReadArray(dec *json.Decoder, field string, visit JSONReadVisitor) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("json: field %q: %w", field, err)
	}
	if tok == nil {
		return nil // null array: no reads
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("json: field %q is not an array", field)
	}
	for dec.More() {
		var wire struct {
			Name string `json:"name"`
			Seq  string `json:"seq"`
			Qual string `json:"qual"`
		}
		if err := dec.Decode(&wire); err != nil {
			return fmt.Errorf("json: field %q: %w", field, err)
		}
		rd := Read{Name: wire.Name, Seq: []byte(wire.Seq)}
		if wire.Qual != "" {
			rd.Qual = []byte(wire.Qual)
		}
		if err := visit(rd); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil { // closing ']'
		return fmt.Errorf("json: field %q: %w", field, err)
	}
	return nil
}
