package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level grades log events.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lower-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Format selects the logger's wire format.
type Format int8

const (
	// FormatJSON emits one JSON object per line:
	// {"ts":"...","level":"info","msg":"request","request_id":"...",...}.
	FormatJSON Format = iota
	// FormatText emits "TIMESTAMP LEVEL msg key=value ..." lines, the
	// human-first form behind bwaserve -log-format=text.
	FormatText
)

// ParseFormat resolves a format name ("json" or "text").
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "json":
		return FormatJSON, nil
	case "text":
		return FormatText, nil
	}
	return 0, fmt.Errorf("obs: unknown log format %q (json or text)", s)
}

// Logger is a minimal leveled structured logger: each event is a level, a
// message, and alternating key/value fields, rendered as JSON or text. One
// mutex serializes writes so concurrent events never interleave bytes. A
// nil *Logger drops everything, so call sites need no guards.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	format Format
	min    Level
	now    func() time.Time // test seam; nil means time.Now
}

// NewLogger builds a logger writing events at or above min to w.
func NewLogger(w io.Writer, format Format, min Level) *Logger {
	return &Logger{w: w, format: format, min: min}
}

// Enabled reports whether events at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

// Log writes one event. kv is alternating key, value pairs; a trailing key
// without a value gets nil. Values are rendered with %v in text mode and
// json.Marshal in JSON mode (falling back to the %v string for
// unmarshalable values, so logging can never fail a request).
func (l *Logger) Log(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	nowFn := l.now
	if nowFn == nil {
		nowFn = time.Now
	}
	ts := nowFn().UTC().Format(time.RFC3339Nano)

	var b []byte
	if l.format == FormatText {
		b = appendTextEvent(nil, ts, level, msg, kv)
	} else {
		b = appendJSONEvent(nil, ts, level, msg, kv)
	}
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}

// Debug, Info, Warn, and Error are Log at the named level.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }
func (l *Logger) Info(msg string, kv ...any)  { l.Log(LevelInfo, msg, kv...) }
func (l *Logger) Warn(msg string, kv ...any)  { l.Log(LevelWarn, msg, kv...) }
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

// appendJSONEvent renders one event as a single JSON object line, keys in
// call order (ts, level, msg first — a fixed prefix log shippers key on).
func appendJSONEvent(b []byte, ts string, level Level, msg string, kv []any) []byte {
	b = append(b, `{"ts":`...)
	b = appendJSONValue(b, ts)
	b = append(b, `,"level":`...)
	b = appendJSONValue(b, level.String())
	b = append(b, `,"msg":`...)
	b = appendJSONValue(b, msg)
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		var val any
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		b = append(b, ',')
		b = appendJSONValue(b, key)
		b = append(b, ':')
		b = appendJSONValue(b, val)
	}
	return append(b, '}', '\n')
}

// appendJSONValue marshals v, degrading to its %v string when v cannot be
// marshaled (channels, NaN, ...): a log line must never be lost to its
// own payload.
func appendJSONValue(b []byte, v any) []byte {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(b, enc...)
}

// appendTextEvent renders "ts LEVEL msg key=value ...". Values containing
// spaces are quoted so the line stays field-splittable.
func appendTextEvent(b []byte, ts string, level Level, msg string, kv []any) []byte {
	b = append(b, ts...)
	b = append(b, ' ')
	b = append(b, strings.ToUpper(level.String())...)
	b = append(b, ' ')
	b = append(b, msg...)
	for i := 0; i < len(kv); i += 2 {
		var val any
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		b = append(b, ' ')
		b = append(b, fmt.Sprint(kv[i])...)
		b = append(b, '=')
		s := fmt.Sprint(val)
		if strings.ContainsAny(s, " \t\"") {
			s = fmt.Sprintf("%q", s)
		}
		b = append(b, s...)
	}
	return append(b, '\n')
}
