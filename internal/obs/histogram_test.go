package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int // expected bucket index (histBuckets = overflow)
	}{
		{0, 0},
		{-5 * time.Second, 0}, // negative clamps to zero
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // exactly the first bound stays in bucket 0
		{time.Microsecond + time.Nanosecond, 1}, // first value past a bound moves up
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + time.Nanosecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},           // 1.024ms bound covers 1ms
		{time.Second, 20},                // 1.048576s bound covers 1s
		{100 * time.Second, 27},          // 134.2s bound covers 100s
		{200 * time.Second, histBuckets}, // beyond the last bound: overflow
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		got := -1
		for i := 0; i < histBuckets; i++ {
			if h.buckets[i].Load() == 1 {
				got = i
			}
		}
		if h.overflow.Load() == 1 {
			got = histBuckets
		}
		if got != c.want {
			t.Errorf("Observe(%v): bucket %d, want %d", c.d, got, c.want)
		}
		if h.Count() != 1 {
			t.Errorf("Observe(%v): count %d", c.d, h.Count())
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// 1000 observations uniform in (0, 100ms]: p50 ≈ 50ms, p99 ≈ 99ms.
	// Log buckets bound the relative error by the bucket width: the value
	// must land inside the bucket the true quantile falls in.
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	for _, c := range []struct {
		q      float64
		lo, hi float64 // true-quantile bucket bounds, in seconds
	}{
		{0.50, 0.032768, 0.065536}, // 50ms lands in (32.8ms, 65.5ms]
		{0.99, 0.065536, 0.131072}, // 99ms lands in (65.5ms, 131ms]
		{1.00, 0.065536, 0.131072}, // max = 100ms, same bucket
	} {
		got := h.Quantile(c.q)
		if got <= c.lo || got > c.hi {
			t.Errorf("Quantile(%v) = %v, want in (%v, %v]", c.q, got, c.lo, c.hi)
		}
	}
	if got := h.Quantile(0.5); math.Abs(got-0.050) > 0.020 {
		t.Errorf("p50 interpolation %v too far from 50ms", got)
	}

	var empty Histogram
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v", got)
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram should read as empty")
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Second) // beyond the last finite bound
	want := time.Duration(histMinNanos << (histBuckets - 1)).Seconds()
	if got := h.Quantile(0.99); got != want {
		t.Errorf("overflow quantile = %v, want last bound %v", got, want)
	}
}

// TestHistogramExpositionGolden locks the Prometheus text exposition
// format: cumulative le buckets, +Inf equal to _count, labeled and
// unlabeled forms.
func TestHistogramExpositionGolden(t *testing.T) {
	var h Histogram
	h.Observe(600 * time.Nanosecond) // bucket 0 (le 1e-06)
	h.Observe(3 * time.Microsecond)  // bucket 2 (le 4e-06)
	h.Observe(3 * time.Microsecond)
	h.Observe(200 * time.Second) // overflow

	var b strings.Builder
	if err := h.Write(&b, "x_seconds", `kind="single"`); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	wantLines := []string{
		`x_seconds_bucket{kind="single",le="1e-06"} 1`,
		`x_seconds_bucket{kind="single",le="2e-06"} 1`,
		`x_seconds_bucket{kind="single",le="4e-06"} 3`,
		`x_seconds_bucket{kind="single",le="8e-06"} 3`,
		`x_seconds_bucket{kind="single",le="134.217728"} 3`,
		`x_seconds_bucket{kind="single",le="+Inf"} 4`,
		`x_seconds_sum{kind="single"} 200.000007`,
		`x_seconds_count{kind="single"} 4`,
	}
	for _, line := range wantLines {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q in:\n%s", line, got)
		}
	}
	// Exactly histBuckets+1 bucket lines, one sum, one count.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != histBuckets+3 {
		t.Errorf("exposition has %d lines, want %d", len(lines), histBuckets+3)
	}

	// Unlabeled form has no stray comma or braces on sum/count.
	b.Reset()
	var h2 Histogram
	h2.Observe(time.Millisecond)
	if err := h2.Write(&b, "y_seconds", ""); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`y_seconds_bucket{le="0.001024"} 1`,
		`y_seconds_bucket{le="+Inf"} 1`,
		`y_seconds_sum 0.001000`,
		`y_seconds_count 1`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("unlabeled exposition missing %q in:\n%s", line, b.String())
		}
	}
}

// TestHistogramConcurrentRecording hammers one histogram from many
// goroutines while readers snapshot it; run under -race this is the
// concurrency-safety proof, and the final counts must balance exactly.
func TestHistogramConcurrentRecording(t *testing.T) {
	const (
		goroutines = 8
		perG       = 5000
	)
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: exposition and quantiles while writes land.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b strings.Builder
				_ = h.Write(&b, "z", "")
				_ = h.Quantile(0.99)
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Microsecond)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if h.Count() != goroutines*perG {
		t.Fatalf("count %d, want %d", h.Count(), goroutines*perG)
	}
	var inBuckets int64
	for i := 0; i < histBuckets; i++ {
		inBuckets += h.buckets[i].Load()
	}
	inBuckets += h.overflow.Load()
	if inBuckets != h.Count() {
		t.Fatalf("bucket total %d != count %d", inBuckets, h.Count())
	}
}
