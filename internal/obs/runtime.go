package obs

import (
	"fmt"
	"io"
	"runtime"
)

// WriteRuntimeMetrics emits the Go runtime's health gauges in Prometheus
// text exposition format under the given prefix: goroutine count, heap
// usage, and GC activity — the numbers that explain a latency histogram's
// tail when the pipeline itself is innocent (a goroutine leak, a heap
// growing into GC pressure, long pauses).
//
// It calls runtime.ReadMemStats, which briefly stops the world; per
// metrics scrape that cost is noise.
func WriteRuntimeMetrics(w io.Writer, prefix string) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rows := []struct {
		name  string
		value string
	}{
		{"go_goroutines", fmt.Sprintf("%d", runtime.NumGoroutine())},
		{"go_heap_alloc_bytes", fmt.Sprintf("%d", ms.HeapAlloc)},
		{"go_heap_sys_bytes", fmt.Sprintf("%d", ms.HeapSys)},
		{"go_heap_objects", fmt.Sprintf("%d", ms.HeapObjects)},
		{"go_gcs_total", fmt.Sprintf("%d", ms.NumGC)},
		{"go_gc_pause_seconds_total", fmt.Sprintf("%.6f", float64(ms.PauseTotalNs)/1e9)},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s_%s %s\n", prefix, r.name, r.value); err != nil {
			return err
		}
	}
	return nil
}
