package obs

import (
	"sort"
	"sync"
	"time"
)

// Trace is the finished record of one request's timeline, as served by the
// server's /v1/debug/requests endpoint.
type Trace struct {
	RequestID string    `json:"request_id"`
	Route     string    `json:"route"`
	Status    int       `json:"status"`
	Reads     int       `json:"reads"`
	BytesOut  int64     `json:"bytes_out"`
	Start     time.Time `json:"start"`
	Seconds   float64   `json:"seconds"` // end-to-end handler time
	Phases    []Phase   `json:"phases"`
}

// TraceRing keeps the last N request traces plus the N slowest seen since
// start, bounded in memory, for the flag-gated debug endpoint: "what just
// happened" and "what ever hurt" are the two questions a tail-latency
// investigation opens with. Safe for concurrent use.
type TraceRing struct {
	mu      sync.Mutex
	cap     int
	recent  []Trace // ring buffer, next is the write cursor
	next    int
	filled  bool
	slowest []Trace // kept sorted, slowest first, len <= cap
}

// NewTraceRing sizes a ring for n traces (n <= 0 yields a 1-slot ring).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 1
	}
	return &TraceRing{cap: n, recent: make([]Trace, n)}
}

// Add files one finished trace.
func (r *TraceRing) Add(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent[r.next] = t
	r.next++
	if r.next == r.cap {
		r.next = 0
		r.filled = true
	}
	// Insert into the slowest list when it qualifies (list not yet full, or
	// slower than the current fastest member).
	if len(r.slowest) < r.cap {
		r.slowest = append(r.slowest, t)
	} else if t.Seconds > r.slowest[len(r.slowest)-1].Seconds {
		r.slowest[len(r.slowest)-1] = t
	} else {
		return
	}
	sort.SliceStable(r.slowest, func(i, j int) bool { return r.slowest[i].Seconds > r.slowest[j].Seconds })
}

// Snapshot returns the traces most-recent-first plus the slowest-first
// list. Both are copies; the ring keeps running.
func (r *TraceRing) Snapshot() (recent, slowest []Trace) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = r.cap
	}
	recent = make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the cursor: most recent first.
		idx := (r.next - 1 - i + r.cap) % r.cap
		recent = append(recent, r.recent[idx])
	}
	slowest = make([]Trace, len(r.slowest))
	copy(slowest, r.slowest)
	return recent, slowest
}

// Capacity returns the ring size (0 for a nil ring).
func (r *TraceRing) Capacity() int {
	if r == nil {
		return 0
	}
	return r.cap
}
