// Package obs is the serving stack's observability layer: latency
// histograms, per-request span timelines, a bounded trace ring for debug
// endpoints, a structured leveled logger, and Go runtime metrics — the
// measurement plumbing the paper's methodology demands (every optimization
// in Tables 4-8 is justified by a per-kernel breakdown) applied to the
// long-lived server.
//
// Design rules, in the spirit of internal/trace's nil-Tracer convention:
// every recording hook is cheap (atomics, no allocation on the hot path)
// and nil receivers are safe no-ops, so callers instrument unconditionally.
// Histograms are safe for fully concurrent Observe/Write; Span is
// mutex-guarded; Logger serializes writes; TraceRing is mutex-guarded.
package obs
