package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerJSON(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatJSON, LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

	l.Debug("dropped", "k", "v") // below min level
	l.Info("request", "request_id", "abc123", "route", "/v1/align", "status", 200,
		"duration_seconds", 0.25, "reads", 40)

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1: %q", len(lines), b.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, lines[0])
	}
	for k, want := range map[string]any{
		"ts": "2026-08-08T12:00:00Z", "level": "info", "msg": "request",
		"request_id": "abc123", "route": "/v1/align",
		"status": float64(200), "duration_seconds": 0.25, "reads": float64(40),
	} {
		if ev[k] != want {
			t.Errorf("field %q = %v, want %v", k, ev[k], want)
		}
	}
	// Fixed prefix order so log shippers can key on it without full parse.
	if !strings.HasPrefix(lines[0], `{"ts":"2026-08-08T12:00:00Z","level":"info","msg":"request",`) {
		t.Errorf("JSON line prefix out of order: %s", lines[0])
	}
}

func TestLoggerText(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatText, LevelDebug)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Warn("slow request", "route", "/v1/align", "note", "has spaces")
	got := strings.TrimSpace(b.String())
	want := `2026-08-08T12:00:00Z WARN slow request route=/v1/align note="has spaces"`
	if got != want {
		t.Errorf("text line\n got: %s\nwant: %s", got, want)
	}
}

func TestLoggerUnmarshalableValue(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatJSON, LevelInfo)
	l.Info("event", "ch", make(chan int)) // json.Marshal fails on channels
	var ev map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &ev); err != nil {
		t.Fatalf("fallback line not JSON: %v\n%s", err, b.String())
	}
	if _, ok := ev["ch"].(string); !ok {
		t.Errorf("unmarshalable value should degrade to a string, got %T", ev["ch"])
	}
}

func TestLoggerNilAndConcurrency(t *testing.T) {
	var nilL *Logger
	nilL.Info("ignored", "k", "v") // must not panic
	if nilL.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}

	var b strings.Builder
	l := NewLogger(&b, FormatJSON, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Info("e", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved line: %s", line)
		}
	}
}

func TestSpanRecording(t *testing.T) {
	start := time.Now().Add(-50 * time.Millisecond)
	s := NewSpan(start)
	s.Observe("parse", start)                          // ~50ms phase at offset 0
	s.Observe("admit", start.Add(40*time.Millisecond)) // ~10ms phase at offset 40ms
	s.Mark("ttfb")                                     // instant at ~50ms

	ph := s.Phases()
	if len(ph) != 3 {
		t.Fatalf("got %d phases, want 3", len(ph))
	}
	if ph[0].Name != "parse" || ph[0].Offset != 0 || ph[0].Seconds < 0.045 {
		t.Errorf("parse phase wrong: %+v", ph[0])
	}
	if ph[1].Name != "admit" || ph[1].Offset < 0.035 || ph[1].Seconds < 0.005 {
		t.Errorf("admit phase wrong: %+v", ph[1])
	}
	if ph[2].Name != "ttfb" || ph[2].Seconds != 0 || ph[2].Offset < 0.045 {
		t.Errorf("ttfb mark wrong: %+v", ph[2])
	}

	hdr := ServerTimingValue(ph)
	if !strings.HasPrefix(hdr, "parse;dur=") || !strings.Contains(hdr, ", admit;dur=") ||
		!strings.Contains(hdr, ", ttfb;dur=") {
		t.Errorf("Server-Timing value malformed: %s", hdr)
	}

	var nilSpan *Span
	nilSpan.Observe("x", time.Now())
	nilSpan.Mark("y")
	if nilSpan.Phases() != nil {
		t.Error("nil span should have no phases")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(Trace{RequestID: string(rune('a' + i - 1)), Seconds: float64(i % 3)})
	}
	recent, slowest := r.Snapshot()
	if len(recent) != 3 {
		t.Fatalf("recent len %d, want 3", len(recent))
	}
	// Most recent first: e (5th), d, c.
	if recent[0].RequestID != "e" || recent[1].RequestID != "d" || recent[2].RequestID != "c" {
		t.Errorf("recent order wrong: %v %v %v", recent[0].RequestID, recent[1].RequestID, recent[2].RequestID)
	}
	// Durations: a=1, b=2, c=0, d=1, e=2. Slowest 3: 2,2,1.
	if len(slowest) != 3 {
		t.Fatalf("slowest len %d, want 3", len(slowest))
	}
	if slowest[0].Seconds != 2 || slowest[1].Seconds != 2 || slowest[2].Seconds != 1 {
		t.Errorf("slowest order wrong: %v %v %v", slowest[0].Seconds, slowest[1].Seconds, slowest[2].Seconds)
	}
	if r.Capacity() != 3 {
		t.Errorf("capacity %d", r.Capacity())
	}

	var nilRing *TraceRing
	nilRing.Add(Trace{})
	rec, slow := nilRing.Snapshot()
	if rec != nil || slow != nil || nilRing.Capacity() != 0 {
		t.Error("nil ring should read as empty")
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(Trace{Status: 200, Seconds: float64(i)})
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	recent, slowest := r.Snapshot()
	if len(recent) != 16 || len(slowest) != 16 {
		t.Fatalf("snapshot sizes %d/%d, want 16/16", len(recent), len(slowest))
	}
	// The slowest list must hold the global maxima: every goroutine wrote
	// 499 as its top duration, so all 8 of those plus the next tier.
	if slowest[0].Seconds != 499 {
		t.Errorf("slowest[0] = %v, want 499", slowest[0].Seconds)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var b strings.Builder
	if err := WriteRuntimeMetrics(&b, "x"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"x_go_goroutines ", "x_go_heap_alloc_bytes ", "x_go_heap_sys_bytes ",
		"x_go_heap_objects ", "x_go_gcs_total ", "x_go_gc_pause_seconds_total ",
	} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("runtime metrics missing %q in:\n%s", name, b.String())
		}
	}
}
