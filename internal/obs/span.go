package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Phase is one timed segment of a request's lifecycle, offset-stamped
// against the span start so a timeline can be reconstructed (phases may
// overlap: "align" spans the whole pipeline portion while "ttfb" marks the
// first response byte inside it).
type Phase struct {
	Name    string  `json:"name"`
	Offset  float64 `json:"offset_seconds"` // start of the phase, relative to span start
	Seconds float64 `json:"seconds"`        // phase duration
}

// Span records the timeline of one request: a start instant plus named
// phases. Methods are safe for concurrent use (the response-writer
// goroutine stamps the first-byte phase while the handler goroutine is
// still recording later ones). A nil *Span ignores all recording.
type Span struct {
	start time.Time

	mu     sync.Mutex
	phases []Phase
}

// NewSpan starts a span at now.
func NewSpan(now time.Time) *Span {
	return &Span{start: now}
}

// Start returns the span's start instant (zero for a nil span).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Observe records a phase that began at from and ends now.
func (s *Span) Observe(name string, from time.Time) {
	if s == nil {
		return
	}
	s.add(name, from.Sub(s.start), time.Since(from))
}

// Mark records an instantaneous event (zero-duration phase) at now —
// time-to-first-byte is the canonical one.
func (s *Span) Mark(name string) {
	if s == nil {
		return
	}
	s.add(name, time.Since(s.start), 0)
}

func (s *Span) add(name string, offset, d time.Duration) {
	if offset < 0 {
		offset = 0
	}
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.phases = append(s.phases, Phase{Name: name, Offset: offset.Seconds(), Seconds: d.Seconds()})
	s.mu.Unlock()
}

// Phases returns a copy of the recorded phases in recording order.
func (s *Span) Phases() []Phase {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Phase, len(s.phases))
	copy(out, s.phases)
	return out
}

// ServerTimingValue renders phases as a Server-Timing header value
// (RFC-style "name;dur=<milliseconds>" entries, comma-separated). Instant
// marks render their offset as the duration — for a "ttfb" mark that is
// exactly the time to first byte.
func ServerTimingValue(phases []Phase) string {
	var b strings.Builder
	for i, p := range phases {
		if i > 0 {
			b.WriteString(", ")
		}
		d := p.Seconds
		if d == 0 {
			d = p.Offset
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", p.Name, d*1e3)
	}
	return b.String()
}
