package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log2 buckets from 1µs up. Bucket i covers
// durations in (bound[i-1], bound[i]] with bound[i] = 1µs << i, so 28
// buckets reach ~134s — wider than any request the server would let live —
// and everything beyond lands in +Inf. Powers of two keep Observe at a
// handful of instructions (one bits.Len64) while giving Prometheus
// histogram_quantile ~2x-resolution buckets across nine decades.
const (
	histMinNanos = int64(time.Microsecond)
	histBuckets  = 28
)

// bucketBounds holds the precomputed upper bounds, rendered once for the
// exposition format ("1e-06", "0.001024", ...).
var bucketBounds = func() [histBuckets]string {
	var b [histBuckets]string
	for i := range b {
		secs := time.Duration(histMinNanos << i).Seconds()
		b[i] = strconv.FormatFloat(secs, 'g', -1, 64)
	}
	return b
}()

// Histogram is a concurrency-safe log-bucketed latency histogram. Observe
// and the read side (Write, Quantile, Count, Sum) may race freely; a
// concurrent reader sees each observation's count and sum independently
// (no torn buckets, but a snapshot is not a point-in-time cut — fine for
// metrics). The zero value is ready to use; a nil *Histogram ignores
// observations, so callers can instrument unconditionally.
type Histogram struct {
	buckets  [histBuckets]atomic.Int64 // per-bucket counts (non-cumulative)
	overflow atomic.Int64              // observations beyond the last bound
	count    atomic.Int64
	sumNanos atomic.Int64
}

// bucketOf maps a duration in nanoseconds to its bucket index, or
// histBuckets for the overflow (+Inf-only) range.
func bucketOf(ns int64) int {
	if ns <= histMinNanos {
		return 0
	}
	// Smallest i with ns <= histMinNanos<<i.
	i := bits.Len64(uint64((ns - 1) / histMinNanos))
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// Observe records one duration. Negative durations count as zero (clock
// skew between timestamps must not corrupt the distribution).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	if i := bucketOf(ns); i < histBuckets {
		h.buckets[i].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	h.sumNanos.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the summed observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNanos.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) in seconds with the
// same piecewise-linear interpolation Prometheus's histogram_quantile
// applies, so a test computing p99 here and a dashboard computing it from
// the exposition agree. Returns 0 for an empty histogram; observations in
// the overflow bucket resolve to the last finite bound (as
// histogram_quantile does for +Inf).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			upper := time.Duration(histMinNanos << i).Seconds()
			lower := 0.0
			if i > 0 {
				lower = time.Duration(histMinNanos << (i - 1)).Seconds()
			}
			return lower + (upper-lower)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	// Rank falls in the overflow bucket: clamp to the last finite bound.
	return time.Duration(histMinNanos << (histBuckets - 1)).Seconds()
}

// Write emits the histogram in Prometheus text exposition format:
// cumulative <name>_bucket series with le labels, then <name>_sum and
// <name>_count. labels, when non-empty, is a rendered label pair list
// (e.g. `kind="single"`) prepended to each bucket's le label and attached
// to the sum and count series, so one family can carry several labeled
// histograms.
func (h *Histogram) Write(w io.Writer, name, labels string) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, bucketBounds[i], cum); err != nil {
			return err
		}
	}
	cum += h.overflow.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %.6f\n", name, suffix, h.Sum().Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.count.Load())
	return err
}
