package gateway

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/seq"
	"repro/internal/server"
)

// Shared fixture: one synthetic reference + aligner + simulated reads,
// built once (index construction dominates test time). Every replica in
// every fleet serves this aligner, exactly like a production fleet built
// from the same reference image.
var fx struct {
	once   sync.Once
	aln    *core.Aligner
	reads  []seq.Read
	r1, r2 []seq.Read
	err    error
}

func fixture(t testing.TB) {
	t.Helper()
	fx.once.Do(func() {
		ref, err := datasets.Genome(datasets.DefaultGenome("chr1", 60000, 21))
		if err != nil {
			fx.err = err
			return
		}
		fx.aln, err = core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
		if err != nil {
			fx.err = err
			return
		}
		fx.reads, err = datasets.Simulate(ref, datasets.D4.Scaled(0.06)) // 300 reads
		if err != nil {
			fx.err = err
			return
		}
		pp := datasets.DefaultPairs(datasets.D4.Scaled(0.02)) // 100 pairs
		fx.r1, fx.r2, fx.err = datasets.SimulatePairs(ref, pp)
	})
	if fx.err != nil {
		t.Fatal(fx.err)
	}
}

func replicaConfig() core.ServerConfig {
	cfg := core.DefaultServerConfig()
	cfg.Threads = 2
	cfg.BatchSize = 64
	return cfg
}

// newReplica starts one real bwaserve replica over the shared aligner.
func newReplica(t testing.TB) *httptest.Server {
	t.Helper()
	fixture(t)
	s, err := server.New(fx.aln, replicaConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

// newFleet starts n replicas plus a gateway routing across them (and any
// extra URLs), returning the gateway's test server. cfg.Replicas is
// filled in; tweak other fields freely.
func newFleet(t testing.TB, n int, cfg Config, extra ...string) (*Gateway, *httptest.Server, []*httptest.Server) {
	t.Helper()
	reps := make([]*httptest.Server, n)
	for i := range reps {
		reps[i] = newReplica(t)
		cfg.Replicas = append(cfg.Replicas, reps[i].URL)
	}
	cfg.Replicas = append(cfg.Replicas, extra...)
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(func() { ts.Close(); g.Close() })
	return g, ts, reps
}

// doPost posts body and returns status plus the full response body. A
// fixed X-Request-Id pins the one nondeterministic envelope field so
// gateway and single-server responses can be compared byte for byte.
func doPost(t testing.TB, base, path, contentType string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set("X-Request-Id", "gwtest-0001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func fastqBytes(reads []seq.Read) []byte {
	var buf bytes.Buffer
	_ = seq.WriteFastq(&buf, reads)
	return buf.Bytes()
}

func interleave(r1, r2 []seq.Read) []seq.Read {
	out := make([]seq.Read, 0, 2*len(r1))
	for i := range r1 {
		out = append(out, r1[i], r2[i])
	}
	return out
}

// TestGatewayByteIdentical is the core property: across a seeded mix of
// request shapes, the gateway's response — status, content type, body —
// is byte-identical to a single replica's answer for the same request.
func TestGatewayByteIdentical(t *testing.T) {
	fixture(t)
	single := newReplica(t)
	_, gw, _ := newFleet(t, 3, Config{})

	jsonBody := func(reads []seq.Read) []byte {
		var sb strings.Builder
		sb.WriteString(`{"reads":[`)
		for i, rd := range reads {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `{"name":%q,"seq":%q,"qual":%q}`, rd.Name, rd.Seq, rd.Qual)
		}
		sb.WriteString(`]}`)
		return []byte(sb.String())
	}
	pairedJSON := func(r1, r2 []seq.Read) []byte {
		one := func(reads []seq.Read) string {
			var sb strings.Builder
			for i, rd := range reads {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, `{"name":%q,"seq":%q,"qual":%q}`, rd.Name, rd.Seq, rd.Qual)
			}
			return sb.String()
		}
		return []byte(`{"reads1":[` + one(r1) + `],"reads2":[` + one(r2) + `]}`)
	}

	cases := []struct {
		name, path, ct string
		body           []byte
	}{
		{"single-one-read", "/v1/align?header=0", "application/x-fastq", fastqBytes(fx.reads[:1])},
		{"single-multi-fastq", "/v1/align?header=0", "application/x-fastq", fastqBytes(fx.reads)},
		{"single-with-header", "/v1/align", "application/x-fastq", fastqBytes(fx.reads[:40])},
		{"single-json", "/v1/align?header=0", "application/json", jsonBody(fx.reads[:50])},
		{"single-legacy-path", "/align?header=0", "application/x-fastq", fastqBytes(fx.reads[40:80])},
		{"paired-json", "/v1/align/paired?header=0", "application/json", pairedJSON(fx.r1, fx.r2)},
		{"paired-with-header", "/v1/align/paired", "application/json", pairedJSON(fx.r1[:20], fx.r2[:20])},
		{"paired-interleaved", "/v1/align/paired?header=0", "text/plain", fastqBytes(interleave(fx.r1, fx.r2))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCode, wantHdr, want := doPost(t, single.URL, tc.path, tc.ct, tc.body)
			gotCode, gotHdr, got := doPost(t, gw.URL, tc.path, tc.ct, tc.body)
			if wantCode != http.StatusOK {
				t.Fatalf("single server rejected the request: %d %s", wantCode, want)
			}
			if gotCode != wantCode {
				t.Fatalf("gateway status %d, single server %d: %s", gotCode, wantCode, got)
			}
			if gct, wct := gotHdr.Get("Content-Type"), wantHdr.Get("Content-Type"); gct != wct {
				t.Fatalf("content type %q, single server %q", gct, wct)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("gateway response differs from single server (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestGatewayErrorEnvelopesByteIdentical pins the rejection surface: for
// every error class the gateway produces itself, its envelope matches the
// single server's byte for byte (same fixed request ID on both sides).
func TestGatewayErrorEnvelopesByteIdentical(t *testing.T) {
	fixture(t)
	// Match caps so both tiers reject at the same threshold.
	cfg := replicaConfig()
	cfg.MaxReadsPerRequest = 8
	s, err := server.New(fx.aln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(s)
	t.Cleanup(func() { single.Close(); s.Close() })
	_, gw, _ := newFleet(t, 2, Config{MaxReadsPerRequest: 8})

	cases := []struct {
		name, path, ct string
		body           []byte
		wantStatus     int
	}{
		{"415-bad-content-type", "/v1/align", "application/xml", fastqBytes(fx.reads[:1]), http.StatusUnsupportedMediaType},
		{"400-empty-body", "/v1/align", "application/x-fastq", nil, http.StatusBadRequest},
		{"400-malformed-json", "/v1/align", "application/json", []byte(`{"reads":`), http.StatusBadRequest},
		{"400-odd-interleave", "/v1/align/paired", "text/plain", fastqBytes(fx.reads[:3]), http.StatusBadRequest},
		{"413-too-many-reads", "/v1/align", "application/x-fastq", fastqBytes(fx.reads[:9]), http.StatusRequestEntityTooLarge},
		{"404-no-route", "/v1/nope", "application/x-fastq", fastqBytes(fx.reads[:1]), http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCode, _, want := doPost(t, single.URL, tc.path, tc.ct, tc.body)
			gotCode, _, got := doPost(t, gw.URL, tc.path, tc.ct, tc.body)
			if wantCode != tc.wantStatus {
				t.Fatalf("single server status %d, expected %d: %s", wantCode, tc.wantStatus, want)
			}
			if gotCode != wantCode || !bytes.Equal(got, want) {
				t.Fatalf("gateway envelope (%d) %q differs from single server (%d) %q",
					gotCode, got, wantCode, want)
			}
		})
	}

	// Method check, same idea with GET.
	req, _ := http.NewRequest(http.MethodGet, gw.URL+"/v1/align", nil)
	req.Header.Set("X-Request-Id", "gwtest-0001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	sreq, _ := http.NewRequest(http.MethodGet, single.URL+"/v1/align", nil)
	sreq.Header.Set("X-Request-Id", "gwtest-0001")
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || sresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("405 expected, got gateway %d / single %d", resp.StatusCode, sresp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("405 envelope %q differs from single server %q", got, want)
	}
	if a := resp.Header.Get("Allow"); a != "POST" {
		t.Fatalf("Allow header %q, want POST", a)
	}
}

// slowProxy forwards align traffic to a backend with an added delay on
// the response, standing in for one overloaded replica in the fleet.
func slowProxy(t testing.TB, backend string, delay time.Duration) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "align") {
			time.Sleep(delay)
		}
		proxyOnce(t, w, r, backend, -1)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// proxyOnce forwards one request to backend, copying the response through
// — truncated to cut bytes when cut >= 0, then aborting the connection so
// the truncation is a transport error downstream, exactly like a replica
// dying mid-stream.
func proxyOnce(t testing.TB, w http.ResponseWriter, r *http.Request, backend string, cut int) {
	t.Helper()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		t.Error(err)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(http.ErrAbortHandler) // backend gone: kill our side too
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if cut >= 0 && cut < len(body) {
		_, _ = w.Write(body[:cut])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	_, _ = w.Write(body)
}

// TestGatewaySlowReplica: one replica answers align calls slowly; the
// merged response must still be byte-identical and in input order (later
// groups wait for the stalled partition).
func TestGatewaySlowReplica(t *testing.T) {
	fixture(t)
	single := newReplica(t)
	backend := newReplica(t)
	slow := slowProxy(t, backend.URL, 250*time.Millisecond)
	_, gw, _ := newFleet(t, 1, Config{}, slow.URL)

	body := fastqBytes(fx.reads[:120])
	wantCode, _, want := doPost(t, single.URL, "/v1/align?header=0", "application/x-fastq", body)
	gotCode, _, got := doPost(t, gw.URL, "/v1/align?header=0", "application/x-fastq", body)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status gateway %d / single %d", gotCode, wantCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gateway response with a slow replica differs from single server")
	}
}

// TestGatewayRetryMidStream: a replica dies partway through streaming its
// partition. The gateway must mark it down, re-dispatch the undelivered
// remainder to a healthy ring node, and still produce a byte-identical
// response.
func TestGatewayRetryMidStream(t *testing.T) {
	fixture(t)
	single := newReplica(t)
	backend := newReplica(t)
	var aligns, kills atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cut := -1
		if strings.Contains(r.URL.Path, "align") && aligns.Add(1) == 1 {
			kills.Add(1)
			cut = 100 // die 100 bytes into the first align response
		}
		proxyOnce(t, w, r, backend.URL, cut)
	}))
	t.Cleanup(flaky.Close)
	// Probes off (the replica answers readyz fine and would be legitimately
	// re-admitted within one probe period): the test asserts the *passive*
	// detection verdict, which must persist until a probe says otherwise.
	g, gw, _ := newFleet(t, 1, Config{ProbeInterval: time.Hour}, flaky.URL)

	body := fastqBytes(fx.reads)
	wantCode, _, want := doPost(t, single.URL, "/v1/align?header=0", "application/x-fastq", body)
	gotCode, _, got := doPost(t, gw.URL, "/v1/align?header=0", "application/x-fastq", body)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status gateway %d / single %d", gotCode, wantCode)
	}
	if kills.Load() == 0 {
		t.Fatal("flaky replica never received an align call; scenario not exercised")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gateway response after mid-stream replica death differs from single server")
	}
	if g.met.retries.Load() == 0 {
		t.Fatal("no retry recorded after a replica died mid-stream")
	}
	// Passive detection must have taken the flaky replica out of rotation.
	var down *replica
	for _, rep := range g.replicas {
		if rep.url == strings.TrimRight(flaky.URL, "/") {
			down = rep
		}
	}
	if down == nil || down.State() != stateDown {
		t.Fatal("flaky replica not marked down after its transport failure")
	}
}

// TestGatewayHeaderAfterOwnerDies: the partition that owns the response
// header fails before delivering it; the retry must re-request the header
// so the response still carries exactly one.
func TestGatewayHeaderAfterOwnerDies(t *testing.T) {
	fixture(t)
	single := newReplica(t)
	backend := newReplica(t)
	var aligns atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cut := -1
		// Kill the first align response before a full record got out:
		// whichever partition lands here first (header owner included)
		// retries elsewhere.
		if strings.Contains(r.URL.Path, "align") && aligns.Add(1) == 1 {
			cut = 10
		}
		proxyOnce(t, w, r, backend.URL, cut)
	}))
	t.Cleanup(flaky.Close)
	_, gw, _ := newFleet(t, 1, Config{}, flaky.URL)

	body := fastqBytes(fx.reads[:60])
	wantCode, _, want := doPost(t, single.URL, "/v1/align", "application/x-fastq", body)
	gotCode, _, got := doPost(t, gw.URL, "/v1/align", "application/x-fastq", body)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status gateway %d / single %d", gotCode, wantCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gateway response differs after the header-owning partition retried")
	}
	if n := strings.Count(string(got), "@SQ\t"); n != strings.Count(string(want), "@SQ\t") {
		t.Fatalf("header duplicated or lost: %d @SQ blocks", n)
	}
}

// TestGatewayPairedRetryReplays: paired requests route whole; a replica
// dying mid-stream forces a full replay on the other node with the
// already-delivered pair groups skipped.
func TestGatewayPairedRetryReplays(t *testing.T) {
	fixture(t)
	single := newReplica(t)
	backend := newReplica(t)
	var aligns atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cut := -1
		if strings.Contains(r.URL.Path, "align") && aligns.Add(1) == 1 {
			cut = 400
		}
		proxyOnce(t, w, r, backend.URL, cut)
	}))
	t.Cleanup(flaky.Close)
	g, gw, _ := newFleet(t, 1, Config{}, flaky.URL)

	body := fastqBytes(interleave(fx.r1, fx.r2))
	wantCode, _, want := doPost(t, single.URL, "/v1/align/paired?header=0", "text/plain", body)

	// Paired requests hash to one node; aim a request at the flaky one by
	// retrying with different read subsets until it lands there (the key is
	// content-dependent). All subsets must still be byte-identical.
	landed := false
	for off := 0; off+10 <= len(fx.r1) && !landed; off += 10 {
		sub := fastqBytes(interleave(fx.r1[off:off+10], fx.r2[off:off+10]))
		wc, _, w1 := doPost(t, single.URL, "/v1/align/paired?header=0", "text/plain", sub)
		gc, _, g1 := doPost(t, gw.URL, "/v1/align/paired?header=0", "text/plain", sub)
		if wc != http.StatusOK || gc != http.StatusOK || !bytes.Equal(g1, w1) {
			t.Fatalf("paired subset at %d: status %d/%d or bytes differ", off, gc, wc)
		}
		landed = aligns.Load() > 0 && g.met.retries.Load() > 0
	}
	gotCode, _, got := doPost(t, gw.URL, "/v1/align/paired?header=0", "text/plain", body)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status gateway %d / single %d", gotCode, wantCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gateway paired response differs from single server")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestGatewayHealthGateLifecycle drives one replica through the full
// probe-state machine: up → draining → down (probe failures) → up again.
func TestGatewayHealthGateLifecycle(t *testing.T) {
	var mode atomic.Value // "ready" | "draining" | "broken"
	mode.Store("ready")
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/readyz" {
			http.NotFound(w, r)
			return
		}
		switch mode.Load().(string) {
		case "ready":
			w.Header().Set("Content-Type", "application/json")
			_, _ = io.WriteString(w, `{"status":"ready","reads_inflight":0}`+"\n")
		case "draining":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, `{"status":"draining","reads_inflight":0}`+"\n")
		default: // broken: not JSON, not a readiness answer
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	t.Cleanup(stub.Close)

	cfg := Config{Replicas: []string{stub.URL}, ProbeInterval: 20 * time.Millisecond, FailAfter: 2}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	rep := g.replicas[0]

	waitFor(t, 2*time.Second, func() bool { return rep.State() == stateUp }, "replica never marked up")
	mode.Store("draining")
	waitFor(t, 2*time.Second, func() bool { return rep.State() == stateDraining }, "replica never marked draining")
	mode.Store("broken")
	waitFor(t, 2*time.Second, func() bool { return rep.State() == stateDown }, "replica never marked down")
	if int(rep.failStreak.Load()) < cfg.FailAfter {
		t.Fatalf("down with failStreak %d < FailAfter %d", rep.failStreak.Load(), cfg.FailAfter)
	}
	mode.Store("ready")
	waitFor(t, 2*time.Second, func() bool { return rep.State() == stateUp }, "replica never re-added after recovery")
	if g.healthyCount() != 1 {
		t.Fatalf("healthyCount %d, want 1", g.healthyCount())
	}
}

// TestGatewayRoutesAroundDeadReplica: with one fleet member gone, align
// traffic must keep succeeding on the survivors with no client-visible
// failures, and the dead node must show in readyz/metrics accounting.
func TestGatewayRoutesAroundDeadReplica(t *testing.T) {
	fixture(t)
	single := newReplica(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from the start
	g, gw, _ := newFleet(t, 2, Config{ProbeInterval: 20 * time.Millisecond, FailAfter: 1}, deadURL)

	waitFor(t, 2*time.Second, func() bool { return g.healthyCount() == 2 }, "dead replica never probed down")
	body := fastqBytes(fx.reads[:80])
	wantCode, _, want := doPost(t, single.URL, "/v1/align?header=0", "application/x-fastq", body)
	gotCode, _, got := doPost(t, gw.URL, "/v1/align?header=0", "application/x-fastq", body)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status gateway %d / single %d", gotCode, wantCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gateway response with a dead fleet member differs from single server")
	}

	resp, err := http.Get(gw.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(met), "bwagate_replicas_up 2") {
		t.Fatalf("metrics do not report 2 healthy replicas:\n%.400s", met)
	}
	if !strings.Contains(string(met), fmt.Sprintf("bwagate_replica_state{replica=%q,state=%q} 1", deadURL, "down")) {
		t.Fatal("metrics do not report the dead replica as down")
	}
}

// TestGatewayNoUpstream: with every replica down, align requests fail
// fast with the 502 upstream_unavailable envelope — before any body work.
func TestGatewayNoUpstream(t *testing.T) {
	fixture(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	g, gw, _ := newFleet(t, 0, Config{ProbeInterval: 20 * time.Millisecond, FailAfter: 1}, deadURL)
	waitFor(t, 2*time.Second, func() bool { return g.healthyCount() == 0 }, "dead replica never probed down")

	code, _, body := doPost(t, gw.URL, "/v1/align?header=0", "application/x-fastq", fastqBytes(fx.reads[:2]))
	if code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", code, body)
	}
	if !strings.Contains(string(body), codeUpstreamUnavailable) {
		t.Fatalf("envelope missing %q: %s", codeUpstreamUnavailable, body)
	}

	// readyz mirrors it: a gateway with no healthy replicas is not ready.
	resp, err := http.Get(gw.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(rb), "unavailable") {
		t.Fatalf("readyz %d %s, want 503 unavailable", resp.StatusCode, rb)
	}
}

// TestGatewayDrain: Shutdown flips readyz to 503, align requests get the
// draining envelope, and healthz stays 200 (liveness only), matching the
// replica contract.
func TestGatewayDrain(t *testing.T) {
	fixture(t)
	g, gw, _ := newFleet(t, 1, Config{})

	if err := g.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	code, _, body := doPost(t, gw.URL, "/v1/align?header=0", "application/x-fastq", fastqBytes(fx.reads[:2]))
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("align during drain: %d %s", code, body)
	}
	resp, err := http.Get(gw.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(gw.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hb), "draining") {
		t.Fatalf("healthz during drain: %d %s, want 200 draining", resp.StatusCode, hb)
	}
}

// TestGatewayConcurrentByteIdentical: many concurrent clients, each with
// its own read subset, all byte-identical — the merge path under real
// contention.
func TestGatewayConcurrentByteIdentical(t *testing.T) {
	fixture(t)
	single := newReplica(t)
	_, gw, _ := newFleet(t, 3, Config{})

	const clients = 8
	chunk := len(fx.reads) / clients
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fastqBytes(fx.reads[c*chunk : (c+1)*chunk])
			wc, _, want := doPost(t, single.URL, "/v1/align?header=0", "application/x-fastq", body)
			gc, _, got := doPost(t, gw.URL, "/v1/align?header=0", "application/x-fastq", body)
			if wc != http.StatusOK || gc != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d/%d", c, gc, wc)
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("client %d: gateway bytes differ", c)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
