package gateway

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestFlagsREADMEDocDrift locks README.md's bwagate flags table to the
// actual registrations, both directions: every flag Flags registers (plus
// the binary-level ones cmd/bwagate/main.go registers itself) must have a
// table row, and every row must name a real flag. Same mechanism as the
// bwasoak table's drift test.
func TestFlagsREADMEDocDrift(t *testing.T) {
	fs := flag.NewFlagSet("bwagate", flag.ContinueOnError)
	Flags(fs)
	registered := make(map[string]bool)
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })

	// The -addr/-drain process flags live in cmd/bwagate, not in Config;
	// read them out of the source so a new one there is caught too.
	src, err := os.ReadFile("../../cmd/bwagate/main.go")
	if err != nil {
		t.Fatal(err)
	}
	cmdRe := regexp.MustCompile(`fs\.(?:String|Duration|Int|Bool|Float64)\("([a-z0-9-]+)"`)
	for _, m := range cmdRe.FindAllStringSubmatch(string(src), -1) {
		registered[m[1]] = true
	}
	if !registered["addr"] || !registered["drain"] {
		t.Fatal("failed to find -addr/-drain registrations in cmd/bwagate/main.go — did the registration style change?")
	}

	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "## Gateway tier") {
			start = i + 1
			break
		}
	}
	if start < 0 {
		t.Fatal("README.md has no 'Gateway tier' section")
	}
	rowRe := regexp.MustCompile("^\\| `-([a-z0-9-]+)` \\|")
	documented := make(map[string]bool)
	for _, l := range lines[start:] {
		if strings.HasPrefix(l, "## ") {
			break
		}
		if m := rowRe.FindStringSubmatch(l); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("found no flag rows in README.md's bwagate section — did the table move?")
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("bwagate -%s is registered but missing from README.md's flags table", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("README.md documents bwagate -%s but nothing registers it", name)
		}
	}
}
