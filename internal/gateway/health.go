package gateway

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/pkg/bwaclient"
)

// Replica health states. The ring keeps every configured replica; these
// states only control whether new partitions are assigned to it.
//
//	stateUp       — serving; eligible for new assignments.
//	stateDraining — answered readyz with "draining": in-flight streams are
//	                allowed to finish but nothing new is routed to it.
//	stateDown     — probe or traffic failed at the transport level; skipped
//	                until a probe succeeds again.
const (
	stateUp int32 = iota
	stateDraining
	stateDown
)

// stateName renders a replica state for metrics and logs.
func stateName(s int32) string {
	switch s {
	case stateUp:
		return "up"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// replica is one configured bwaserve backend: its client, its health
// state, and its share of the gateway's load accounting.
type replica struct {
	url    string
	client *bwaclient.Client
	probe  *bwaclient.Client // separate client with the probe timeout

	state      atomic.Int32
	failStreak atomic.Int32 // consecutive failed probes (prober-owned)
	inflight   atomic.Int64 // reads currently assigned (bounded-load input)

	upstream     obs.Histogram // upstream align call latency
	assigned     atomic.Int64  // partitions assigned
	spilledTo    atomic.Int64  // partitions received via bounded-load spill
	passiveFails atomic.Int64  // failures observed on align traffic
	probeFails   atomic.Int64  // failed readyz probes
}

// State returns the replica's current routing state.
func (r *replica) State() int32 { return r.state.Load() }

// reportFailure is the passive detector: an align call to the replica
// failed at the transport level (connect refused, reset mid-stream,
// truncated body). The replica is taken out of rotation immediately —
// waiting for the next probe tick would route more requests into a dead
// node — and only a successful probe re-adds it.
func (g *Gateway) reportFailure(r *replica, err error) {
	r.passiveFails.Add(1)
	if r.state.Swap(stateDown) != stateDown {
		g.logf("gateway: replica %s down (passive: %v)", r.url, err)
	}
}

// reportDraining marks a replica that answered an align call with the
// draining envelope: it is alive but refusing new work.
func (g *Gateway) reportDraining(r *replica) {
	if r.state.CompareAndSwap(stateUp, stateDraining) {
		g.logf("gateway: replica %s draining (passive)", r.url)
	}
}

// probeLoop polls every replica's /v1/readyz on a ticker until ctx ends.
// One probe round runs the replicas sequentially: the fleet is small (a
// handful of replicas) and sequential probing keeps the loop's goroutine
// count at one, which the soak harness's leak checks see.
func (g *Gateway) probeLoop(ctx context.Context) {
	defer close(g.probeDone)
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for _, r := range g.replicas {
				g.probeOne(ctx, r)
			}
		}
	}
}

// probeOne runs one readyz probe and applies the state transition rules:
// ready → Up (recovery included), draining → Draining, transport error →
// Down after FailAfter consecutive failures (one flaky probe on a loaded
// box should not evict a healthy replica — passive detection already
// handles hard failures instantly).
func (g *Gateway) probeOne(ctx context.Context, r *replica) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	rd, err := r.probe.Ready(pctx)
	cancel()
	switch {
	case err != nil:
		r.probeFails.Add(1)
		if int(r.failStreak.Add(1)) >= g.cfg.FailAfter {
			if r.state.Swap(stateDown) != stateDown {
				g.logf("gateway: replica %s down (probe: %v)", r.url, err)
			}
		}
	case rd.Status == "ready":
		r.failStreak.Store(0)
		if r.state.Swap(stateUp) != stateUp {
			g.logf("gateway: replica %s up", r.url)
		}
	default: // "draining"
		r.failStreak.Store(0)
		if r.state.Swap(stateDraining) != stateDraining {
			g.logf("gateway: replica %s draining", r.url)
		}
	}
}

// healthyCount returns how many replicas are currently Up.
func (g *Gateway) healthyCount() int {
	n := 0
	for _, r := range g.replicas {
		if r.State() == stateUp {
			n++
		}
	}
	return n
}
