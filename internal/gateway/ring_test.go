package gateway

import (
	"fmt"
	"testing"
)

func testURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return urls
}

func TestRingDeterministic(t *testing.T) {
	urls := testURLs(3)
	a := buildRing(urls, 64)
	b := buildRing(urls, 64)
	for i := 0; i < 10000; i++ {
		key := fnv64a(fnvOffset, []byte(fmt.Sprintf("key-%d", i)))
		if a.owner(key) != b.owner(key) {
			t.Fatalf("key %d: owner differs between identical rings", i)
		}
	}
}

func TestRingWalkCoversAllNodes(t *testing.T) {
	r := buildRing(testURLs(4), 16)
	for i := 0; i < 1000; i++ {
		key := fnv64a(fnvOffset, []byte(fmt.Sprintf("key-%d", i)))
		w := r.walk(key)
		if len(w) != 4 {
			t.Fatalf("walk(%d) returned %d nodes, want 4", key, len(w))
		}
		if w[0] != r.owner(key) {
			t.Fatalf("walk(%d) starts at %d, owner is %d", key, w[0], r.owner(key))
		}
		seen := make(map[int]bool)
		for _, n := range w {
			if n < 0 || n >= 4 || seen[n] {
				t.Fatalf("walk(%d) = %v: invalid or repeated node", key, w)
			}
			seen[n] = true
		}
	}
}

func TestRingOccupancyAndBalance(t *testing.T) {
	const nodes, vnodes = 3, 64
	r := buildRing(testURLs(nodes), vnodes)
	occ := r.occupancy()
	total := 0
	for i, o := range occ {
		if o != vnodes {
			t.Fatalf("node %d owns %d ring points, want %d", i, o, vnodes)
		}
		total += o
	}
	if total != nodes*vnodes {
		t.Fatalf("ring has %d points, want %d", total, nodes*vnodes)
	}

	// Key assignment should be roughly balanced: no node starves, no node
	// hoards. Very loose bounds — this guards against a broken hash or a
	// ring sorted wrong, not statistical perfection.
	counts := make([]int, nodes)
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.owner(fnv64a(fnvOffset, []byte(fmt.Sprintf("key-%d", i))))]++
	}
	for i, c := range counts {
		if c < keys/nodes/3 || c > keys*2/nodes {
			t.Fatalf("node %d owns %d of %d keys: ring badly unbalanced %v", i, c, keys, counts)
		}
	}
}

func TestRingStableUnderMembershipView(t *testing.T) {
	// The ring is built from ALL configured replicas; health never rebuilds
	// it. A key's owner must not depend on vnode count of other checks —
	// i.e. adding a replica moves only a fraction of keys (consistent
	// hashing's point).
	urls := testURLs(3)
	small := buildRing(urls, 64)
	big := buildRing(append(append([]string{}, urls...), "http://replica-3:8080"), 64)
	moved := 0
	const keys = 10000
	for i := 0; i < keys; i++ {
		key := fnv64a(fnvOffset, []byte(fmt.Sprintf("key-%d", i)))
		a, b := small.owner(key), big.owner(key)
		if a != b {
			if b != 3 {
				t.Fatalf("key %d moved from node %d to node %d, not to the new node", i, a, b)
			}
			moved++
		}
	}
	// Expect ~1/4 of keys to move to the new node; far more means the hash
	// is reshuffling everything.
	if moved > keys/2 {
		t.Fatalf("%d of %d keys moved after adding one replica", moved, keys)
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new replica")
	}
}

func TestReadKeyMatchesEncodedHash(t *testing.T) {
	var scratch []byte
	// seq.Encode folds case and maps unknowns to N, so these all key alike.
	a := readKey(&scratch, []byte("ACGTacgt"))
	b := readKey(&scratch, []byte("acgtACGT"))
	if a != b {
		t.Fatal("case folding not applied: equal encoded sequences got different keys")
	}
	c := readKey(&scratch, []byte("NNNNNNNN"))
	d := readKey(&scratch, []byte("XXXXXXXX"))
	if c != d {
		t.Fatal("non-ACGT bases should all encode to N and share a key")
	}
	if a == c {
		t.Fatal("distinct sequences should (overwhelmingly) get distinct keys")
	}
}
