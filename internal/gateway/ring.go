package gateway

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// Consistent-hash ring over the configured replica set. Keys are FNV-64a
// hashes of a read's *encoded* sequence — the same normalization the
// per-replica rescache keys on (seq.Encode folds case, maps everything
// outside ACGT to N) — so every occurrence of a duplicate-heavy sequence
// lands on the same replica and keeps exactly one rescache shard hot for
// it, instead of N cold ones.
//
// The ring always contains every *configured* replica, healthy or not:
// hash points never move when a replica flaps, so a recovered replica gets
// its original key ranges back (and its still-warm cache with them).
// Health is applied at assignment time by walking clockwise from the
// owner past unhealthy nodes (ring.walk order).

// fnvOffset and fnvPrime are the FNV-64a parameters (hash/fnv's, inlined
// so keying can run over scratch buffers without an allocating Hash64).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv64a hashes b with FNV-64a starting from h (fnvOffset for a fresh
// hash). Returning the running state lets multi-read keys chain calls.
func fnv64a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// readKey is the ring key of one read: FNV-64a over its encoded sequence.
// scratch is reused across calls to keep keying allocation-free on the
// request path.
func readKey(scratch *[]byte, readSeq []byte) uint64 {
	if cap(*scratch) < len(readSeq) {
		*scratch = make([]byte, len(readSeq))
	}
	codes := seq.EncodeInto((*scratch)[:len(readSeq)], readSeq)
	return fnv64a(fnvOffset, codes)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over the raw
// FNV state. FNV-64a alone leaves nearby inputs (vnode labels differing
// in one digit) clustered on the ring, which skews arc lengths badly —
// measured up to 2:1:6 ownership on a 3-node ring. Mixing both the point
// hashes and the lookup keys restores a uniform spread while staying
// fully deterministic.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ringPoint is one virtual node: a position on the ring owned by a replica.
type ringPoint struct {
	hash uint64
	node int // index into the configured replica list
}

// hashRing is the immutable ring built once at startup.
type hashRing struct {
	points []ringPoint // sorted by hash
	nodes  int
}

// buildRing places vnodes virtual points per replica, keyed by
// "<url>#<v>", so ranges are spread evenly and independently of list
// order.
func buildRing(urls []string, vnodes int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(urls)*vnodes), nodes: len(urls)}
	for i, u := range urls {
		for v := 0; v < vnodes; v++ {
			h := mix64(fnv64a(fnvOffset, []byte(fmt.Sprintf("%s#%d", u, v))))
			r.points = append(r.points, ringPoint{hash: h, node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// owner returns the replica owning key: the first ring point clockwise.
func (r *hashRing) owner(key uint64) int {
	key = mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// walk returns every distinct replica in clockwise ring order starting at
// key's owner — the spill/failover candidate order for that key.
func (r *hashRing) walk(key uint64) []int {
	out := make([]int, 0, r.nodes)
	seen := make([]bool, r.nodes)
	key = mix64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for off := 0; off < len(r.points) && len(out) < r.nodes; off++ {
		p := r.points[(start+off)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// occupancy reports how many of the ring's points each replica owns, for
// the /v1/metrics ring-occupancy gauge.
func (r *hashRing) occupancy() []int {
	out := make([]int, r.nodes)
	for _, p := range r.points {
		out[p.node]++
	}
	return out
}
