package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/server"
	"repro/pkg/bwaclient"
)

// errNoUpstream means no healthy replica was available to take an
// assignment; mapped to 502 upstream_unavailable.
var errNoUpstream = errors.New("gateway: no healthy upstream replica")

// partition is the slice of one request routed to one replica: the global
// input indices it covers (in input order) and their reads.
type partition struct {
	node    *replica
	key     uint64 // ring key of the partition's first read (failover walk)
	indices []int
	reads   []bwaclient.Read
}

// pickReplica chooses the replica for a partition keyed by key and
// carrying nReads reads: the first healthy node in ring-walk order whose
// in-flight load stays within the bounded-load bound, falling back to the
// least-loaded healthy node when everyone is over it (the bound shapes
// load, replica admission enforces it). extra holds this request's
// not-yet-dispatched tentative assignments so one scatter pass
// self-balances; exclude removes nodes that already failed this
// partition. spilled reports the choice was not the first healthy
// candidate.
func (g *Gateway) pickReplica(key uint64, nReads int64, extra map[*replica]int64, exclude map[*replica]bool) (node *replica, spilled bool, err error) {
	var total int64
	healthy := 0
	for _, r := range g.replicas {
		if r.State() == stateUp && !exclude[r] {
			healthy++
			total += r.inflight.Load() + extra[r]
		}
	}
	if healthy == 0 {
		return nil, false, errNoUpstream
	}
	bound := int64(g.cfg.SpillFactor * float64(total+nReads) / float64(healthy))
	if bound < nReads {
		bound = nReads // an idle fleet must accept the first assignment
	}
	var least *replica
	first := true
	for _, idx := range g.ring.walk(key) {
		r := g.replicas[idx]
		if r.State() != stateUp || exclude[r] {
			continue
		}
		load := r.inflight.Load() + extra[r]
		if g.cfg.SpillFactor > 0 && load+nReads <= bound {
			return r, !first, nil
		}
		if g.cfg.SpillFactor <= 0 && first {
			return r, false, nil // spilling disabled: always the first healthy node
		}
		if least == nil || load < least.inflight.Load()+extra[least] {
			least = r
		}
		first = false
	}
	return least, true, nil
}

// handleAlign serves POST /v1/align: parse and validate exactly as a
// replica would (shared helpers, so rejection envelopes are
// byte-identical), partition the reads by ring owner, scatter the
// partitions concurrently, and merge the sub-streams back in input order.
func (g *Gateway) handleAlign(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { g.met.reqSingle.Observe(time.Since(t0)) }()
	span := obs.NewSpan(t0)
	asJSON, err := server.AlignBodyKind(r)
	if err != nil {
		g.met.badRequests.Add(1)
		g.apiError(w, r, http.StatusUnsupportedMediaType, bwaclient.CodeUnsupportedMediaType, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, g.bodyLimit)
	tParse := time.Now()
	reads, err := server.ParseSingleReads(r.Body, asJSON, g.cfg.MaxReadsPerRequest, g.cfg.MaxReadLen)
	if err != nil {
		g.rejectParse(w, r, err)
		return
	}
	span.Observe("parse", tParse)
	if !g.admit(w, r, len(reads)) {
		return
	}
	g.met.singleRequests.Add(1)
	g.met.readsTotal.Add(int64(len(reads)))

	tRoute := time.Now()
	parts, err := g.partitionSingle(reads)
	if err != nil {
		g.met.noUpstream.Add(1)
		g.apiError(w, r, http.StatusBadGateway, codeUpstreamUnavailable, err.Error())
		return
	}
	span.Observe("route", tRoute)

	wantHdr := server.WantHeader(r)
	w.Header().Set("Content-Type", "text/x-sam")
	m := newMerger(w, len(reads), wantHdr)
	g.armServerTiming(w, m, span)
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for pi, p := range parts {
		wg.Add(1)
		go func(pi int, p *partition) {
			defer wg.Done()
			errs[pi] = g.runSinglePartition(r.Context(), p, m, wantHdr)
		}(pi, p)
	}
	wg.Wait()
	g.finishMerge(w, r, m, parts, errs)
}

// handleAlignPaired serves POST /v1/align/paired. A paired request is
// never split: insert-size statistics are computed per request ("each
// request is one paired-run unit"), so partial requests would produce
// different bytes. The whole request routes to the ring owner of its
// combined sequence key; a mid-stream replica failure replays the full
// request on another node and skips the pair groups already merged
// (paired output is deterministic per request, so the replay is
// byte-identical).
func (g *Gateway) handleAlignPaired(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { g.met.reqPaired.Observe(time.Since(t0)) }()
	span := obs.NewSpan(t0)
	asJSON, err := server.AlignBodyKind(r)
	if err != nil {
		g.met.badRequests.Add(1)
		g.apiError(w, r, http.StatusUnsupportedMediaType, bwaclient.CodeUnsupportedMediaType, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, g.bodyLimit)
	tParse := time.Now()
	r1, r2, err := server.ParsePairedReads(r.Body, asJSON, g.cfg.MaxReadsPerRequest, g.cfg.MaxReadLen)
	if err != nil {
		g.rejectParse(w, r, err)
		return
	}
	span.Observe("parse", tParse)
	if !g.admit(w, r, len(r1)+len(r2)) {
		return
	}
	g.met.pairedRequests.Add(1)
	g.met.readsTotal.Add(int64(len(r1) + len(r2)))

	tRoute := time.Now()
	var scratch []byte
	keyU := uint64(fnvOffset)
	for i := range r1 {
		keyU = chainKey(&scratch, keyU, r1[i].Seq)
		keyU = chainKey(&scratch, keyU, r2[i].Seq)
	}
	p := &partition{key: keyU, reads: toClientReads(r1)}
	reads2 := toClientReads(r2)
	var spilled bool
	p.node, spilled, err = g.pickReplica(keyU, int64(len(r1)+len(r2)), nil, nil)
	if err != nil {
		g.met.noUpstream.Add(1)
		g.apiError(w, r, http.StatusBadGateway, codeUpstreamUnavailable, err.Error())
		return
	}
	if spilled {
		g.met.spills.Add(1)
		p.node.spilledTo.Add(1)
	}
	span.Observe("route", tRoute)

	wantHdr := server.WantHeader(r)
	w.Header().Set("Content-Type", "text/x-sam")
	m := newMerger(w, len(r1), wantHdr)
	g.armServerTiming(w, m, span)
	perr := g.runPaired(r.Context(), p, reads2, m, wantHdr)
	g.finishMerge(w, r, m, []*partition{p}, []error{perr})
}

// chainKey folds one read's encoded sequence into a running FNV-64a state.
func chainKey(scratch *[]byte, h uint64, readSeq []byte) uint64 {
	if cap(*scratch) < len(readSeq) {
		*scratch = make([]byte, len(readSeq))
	}
	return fnv64a(h, seq.EncodeInto((*scratch)[:len(readSeq)], readSeq))
}

// admit runs the gateway-level request checks shared by both align
// handlers, writing the rejection itself when the request cannot proceed.
// The envelopes match a replica's byte for byte.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request, n int) bool {
	if n == 0 {
		g.met.badRequests.Add(1)
		g.apiError(w, r, http.StatusBadRequest, bwaclient.CodeBadRequest, "no reads in request")
		return false
	}
	if g.draining.Load() {
		g.met.rejectedDrain.Add(1)
		g.apiError(w, r, http.StatusServiceUnavailable, bwaclient.CodeDraining, "server is shutting down")
		return false
	}
	return true
}

// rejectParse writes the rejection for an unparseable or over-limit body,
// using the server's own classification so messages stay byte-identical.
func (g *Gateway) rejectParse(w http.ResponseWriter, r *http.Request, err error) {
	status, code, message := server.ClassifyParseError(err)
	if status == http.StatusRequestEntityTooLarge {
		g.met.rejectedLarge.Add(1)
	} else {
		g.met.badRequests.Add(1)
	}
	g.apiError(w, r, status, code, message)
}

// toClientReads converts parsed reads to the client's wire type.
func toClientReads(reads []seq.Read) []bwaclient.Read {
	out := make([]bwaclient.Read, len(reads))
	for i, rd := range reads {
		out[i] = bwaclient.Read{Name: rd.Name, Seq: rd.Seq, Qual: rd.Qual}
	}
	return out
}

// partitionSingle assigns each read to a replica by ring key (with
// bounded-load spill) and groups the assignments into per-replica
// partitions, preserving input order within each partition.
func (g *Gateway) partitionSingle(reads []seq.Read) ([]*partition, error) {
	var scratch []byte
	extra := make(map[*replica]int64, len(g.replicas))
	byNode := make(map[*replica]*partition, len(g.replicas))
	var parts []*partition
	for i := range reads {
		key := readKey(&scratch, reads[i].Seq)
		node, spilled, err := g.pickReplica(key, 1, extra, nil)
		if err != nil {
			return nil, err
		}
		if spilled {
			g.met.spills.Add(1)
			node.spilledTo.Add(1)
		}
		extra[node]++
		p := byNode[node]
		if p == nil {
			p = &partition{node: node, key: key}
			byNode[node] = p
			parts = append(parts, p)
		}
		p.indices = append(p.indices, i)
		p.reads = append(p.reads, bwaclient.Read{Name: reads[i].Name, Seq: reads[i].Seq, Qual: reads[i].Qual})
	}
	return parts, nil
}

// runSinglePartition streams one partition, retrying the undelivered
// remainder on the next healthy ring node when a replica fails mid-flight.
// Re-sending only the undelivered reads is sound because single-end output
// is a pure function of (option fingerprint, encoded sequence) per read —
// the same invariant the replicas' result cache relies on.
func (g *Gateway) runSinglePartition(ctx context.Context, p *partition, m *orderedMerger, wantHdr bool) error {
	delivered := 0
	exclude := make(map[*replica]bool)
	node := p.node
	harvest := wantHdr && p.indices[0] == 0 // this partition owns the response header
	for attempt := 0; ; attempt++ {
		err := g.streamSingle(ctx, node, p, m, &delivered, harvest)
		if err == nil {
			return nil
		}
		if !g.noteUpstreamError(ctx, node, err) {
			return err
		}
		exclude[node] = true
		if attempt >= g.cfg.Retries {
			return err
		}
		next, _, perr := g.pickReplica(p.key, int64(len(p.reads)-delivered), nil, exclude)
		if perr != nil {
			return err
		}
		g.met.retries.Add(1)
		g.logf("gateway: retrying partition (%d/%d reads undelivered) on %s: %v",
			len(p.reads)-delivered, len(p.reads), next.url, err)
		node = next
	}
}

// noteUpstreamError applies passive health detection to a failed upstream
// call and reports whether the failure is retryable on another replica:
// transport errors and truncations mark the replica down and retry;
// draining envelopes mark it draining and retry; any other typed envelope
// (bad_request, overloaded after the client's own retries, ...) means the
// replica is healthy and the response must pass through. Context
// cancellation is the client's doing and never retried.
func (g *Gateway) noteUpstreamError(ctx context.Context, node *replica, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var apiErr *bwaclient.APIError
	if errors.As(err, &apiErr) {
		if apiErr.Code == bwaclient.CodeDraining {
			g.reportDraining(node)
			return true
		}
		return false
	}
	g.reportFailure(node, err)
	return true
}

// streamSingle runs one upstream attempt for a single-end partition,
// merging record groups as they arrive and advancing *delivered past each
// one, so a retry resumes exactly where the stream died.
func (g *Gateway) streamSingle(ctx context.Context, node *replica, p *partition, m *orderedMerger, delivered *int, harvest bool) error {
	todo := p.reads[*delivered:]
	node.inflight.Add(int64(len(todo)))
	defer node.inflight.Add(-int64(len(todo)))
	node.assigned.Add(1)
	t0 := time.Now()
	defer func() { node.upstream.Observe(time.Since(t0)) }()

	includeHeader := harvest && !m.HeaderSet()
	st, err := node.client.AlignWith(ctx, todo, bwaclient.AlignOptions{
		IncludeHeader: includeHeader, RequestID: requestID(ctx)})
	if err != nil {
		return err
	}
	defer st.Close()
	_, serr := splitGroups(st, 1, func(hdr []byte) {
		if includeHeader && len(hdr) > 0 {
			m.SetHeader(hdr)
		}
	}, func(group []byte) {
		m.Complete(p.indices[*delivered], group)
		*delivered++
	})
	if serr != nil {
		return serr
	}
	if *delivered != len(p.indices) {
		return fmt.Errorf("gateway: partition returned %d of %d record groups", *delivered, len(p.indices))
	}
	return nil
}

// runPaired streams a whole paired request to one replica, replaying the
// full request on another node after a failure and skipping the pair
// groups already merged.
func (g *Gateway) runPaired(ctx context.Context, p *partition, reads2 []bwaclient.Read, m *orderedMerger, wantHdr bool) error {
	delivered := 0
	exclude := make(map[*replica]bool)
	node := p.node
	for attempt := 0; ; attempt++ {
		err := g.streamPaired(ctx, node, p.reads, reads2, m, &delivered, wantHdr)
		if err == nil {
			return nil
		}
		if !g.noteUpstreamError(ctx, node, err) {
			return err
		}
		exclude[node] = true
		if attempt >= g.cfg.Retries {
			return err
		}
		next, _, perr := g.pickReplica(p.key, int64(2*len(p.reads)), nil, exclude)
		if perr != nil {
			return err
		}
		g.met.retries.Add(1)
		g.logf("gateway: replaying paired request (%d/%d pairs undelivered) on %s: %v",
			len(p.reads)-delivered, len(p.reads), next.url, err)
		node = next
	}
}

// streamPaired runs one upstream attempt for a paired request: the full
// pair set every time (insert-size statistics are request-scoped), with
// the first *delivered groups skipped on replay.
func (g *Gateway) streamPaired(ctx context.Context, node *replica, r1, r2 []bwaclient.Read, m *orderedMerger, delivered *int, wantHdr bool) error {
	node.inflight.Add(int64(2 * len(r1)))
	defer node.inflight.Add(int64(-2 * len(r1)))
	node.assigned.Add(1)
	t0 := time.Now()
	defer func() { node.upstream.Observe(time.Since(t0)) }()

	includeHeader := wantHdr && !m.HeaderSet()
	st, err := node.client.AlignPairedWith(ctx, r1, r2, bwaclient.AlignOptions{
		IncludeHeader: includeHeader, RequestID: requestID(ctx)})
	if err != nil {
		return err
	}
	defer st.Close()
	seen := 0
	_, serr := splitGroups(st, 2, func(hdr []byte) {
		if includeHeader && len(hdr) > 0 {
			m.SetHeader(hdr)
		}
	}, func(group []byte) {
		if seen == *delivered {
			m.Complete(seen, group)
			*delivered = seen + 1
		}
		seen++
	})
	if serr != nil {
		return serr
	}
	if *delivered != len(r1) {
		return fmt.Errorf("gateway: paired stream returned %d of %d pair groups", *delivered, len(r1))
	}
	return nil
}

// armServerTiming hooks the merger's first body write to commit the
// Server-Timing header — the gateway-side phases (parse, route) plus the
// time-to-first-byte mark — at the last moment response headers are still
// mutable, exactly as a replica does.
func (g *Gateway) armServerTiming(w http.ResponseWriter, m *orderedMerger, span *obs.Span) {
	hdr := w.Header()
	m.OnFirstWrite(func() {
		span.Mark("ttfb")
		g.met.ttfb.Observe(time.Since(span.Start()))
		hdr.Set("Server-Timing", obs.ServerTimingValue(span.Phases()))
	})
}

// finishMerge closes out a scattered request: retire the merger, then map
// any partition failure to the wire. When nothing was written yet, the
// failure of the earliest input position becomes the response envelope —
// an upstream *APIError passes through with the gateway's request ID, and
// transport-level exhaustion becomes 502 upstream_unavailable. Once bytes
// are out the stream cannot be repaired, so the connection is aborted
// (ErrAbortHandler) and the client observes a reset instead of a clean
// EOF on an incomplete record set.
func (g *Gateway) finishMerge(w http.ResponseWriter, r *http.Request, m *orderedMerger, parts []*partition, errs []error) {
	writeErr := m.CloseAndWait()
	defer g.met.samBytes.Add(m.Written())
	var ferr error
	first := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if first < 0 || parts[i].indices[0] < parts[first].indices[0] {
			first, ferr = i, err
		}
	}
	if ferr == nil && writeErr == nil {
		m.EnsureHeader()
		return
	}
	if ferr != nil && !m.Started() {
		g.logf("gateway: request %s failed before first byte: %v", requestID(r.Context()), ferr)
		var apiErr *bwaclient.APIError
		if errors.As(ferr, &apiErr) {
			if apiErr.Code == bwaclient.CodeOverloaded {
				w.Header().Set("Retry-After", "1")
			}
			g.apiError(w, r, apiErr.StatusCode, apiErr.Code, apiErr.Message)
			return
		}
		g.met.noUpstream.Add(1)
		g.apiError(w, r, http.StatusBadGateway, codeUpstreamUnavailable,
			fmt.Sprintf("upstream replicas unavailable: %v", ferr))
		return
	}
	if m.Started() && (m.Missing() > 0 || writeErr != nil || ferr != nil) {
		// Status and partial bytes are committed: abort the connection so the
		// truncation is an error at the client, never a clean EOF.
		panic(http.ErrAbortHandler)
	}
}
