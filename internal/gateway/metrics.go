package gateway

import (
	"bytes"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// gwMetrics aggregates the gateway-level counters exposed on /v1/metrics.
// Everything is the routing-plane view: what came in, where it went, what
// spilled or retried, what went back out. Names carry the bwagate_ prefix
// so a scrape distinguishes tiers; the bwagate_request_seconds histogram
// and bwagate_go_* runtime gauges match the shapes the soak harness (and
// any dashboard built for bwaserve) already parses.
type gwMetrics struct {
	start time.Time

	singleRequests atomic.Int64 // accepted /align requests
	pairedRequests atomic.Int64 // accepted /align/paired requests
	badRequests    atomic.Int64 // 400/405/415: malformed input
	rejectedLarge  atomic.Int64 // 413: body/read policy
	rejectedDrain  atomic.Int64 // 503: gateway shutting down
	readsTotal     atomic.Int64 // reads accepted for routing (pairs count 2)
	samBytes       atomic.Int64 // merged SAM bytes written to clients

	spills     atomic.Int64 // assignments moved past the ring owner (bounded load)
	retries    atomic.Int64 // partition re-dispatches after upstream failure
	noUpstream atomic.Int64 // requests failed with no healthy replica

	reqSingle obs.Histogram // end-to-end handler time, POST /v1/align
	reqPaired obs.Histogram // end-to-end handler time, POST /v1/align/paired
	ttfb      obs.Histogram // request start -> first merged byte
}

func newGwMetrics() *gwMetrics {
	return &gwMetrics{start: time.Now()}
}

// handleMetrics serves GET /v1/metrics (alias /metrics): the gateway's
// Prometheus text exposition, including per-replica routing state.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := g.met
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "bwagate_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(&buf, "bwagate_replicas %d\n", len(g.replicas))
	fmt.Fprintf(&buf, "bwagate_replicas_up %d\n", g.healthyCount())
	fmt.Fprintf(&buf, "bwagate_requests_total{kind=%q} %d\n", "single", m.singleRequests.Load())
	fmt.Fprintf(&buf, "bwagate_requests_total{kind=%q} %d\n", "paired", m.pairedRequests.Load())
	fmt.Fprintf(&buf, "bwagate_requests_rejected_total{reason=%q} %d\n", "too_large", m.rejectedLarge.Load())
	fmt.Fprintf(&buf, "bwagate_requests_rejected_total{reason=%q} %d\n", "draining", m.rejectedDrain.Load())
	fmt.Fprintf(&buf, "bwagate_requests_rejected_total{reason=%q} %d\n", "no_upstream", m.noUpstream.Load())
	fmt.Fprintf(&buf, "bwagate_requests_bad_total %d\n", m.badRequests.Load())
	fmt.Fprintf(&buf, "bwagate_reads_total %d\n", m.readsTotal.Load())
	fmt.Fprintf(&buf, "bwagate_sam_bytes_total %d\n", m.samBytes.Load())
	fmt.Fprintf(&buf, "bwagate_spills_total %d\n", m.spills.Load())
	fmt.Fprintf(&buf, "bwagate_retries_total %d\n", m.retries.Load())
	occ := g.ring.occupancy()
	for i, rep := range g.replicas {
		fmt.Fprintf(&buf, "bwagate_replica_state{replica=%q,state=%q} 1\n", rep.url, stateName(rep.State()))
		fmt.Fprintf(&buf, "bwagate_replica_inflight_reads{replica=%q} %d\n", rep.url, rep.inflight.Load())
		fmt.Fprintf(&buf, "bwagate_replica_assigned_total{replica=%q} %d\n", rep.url, rep.assigned.Load())
		fmt.Fprintf(&buf, "bwagate_replica_spilled_to_total{replica=%q} %d\n", rep.url, rep.spilledTo.Load())
		fmt.Fprintf(&buf, "bwagate_replica_passive_failures_total{replica=%q} %d\n", rep.url, rep.passiveFails.Load())
		fmt.Fprintf(&buf, "bwagate_replica_probe_failures_total{replica=%q} %d\n", rep.url, rep.probeFails.Load())
		fmt.Fprintf(&buf, "bwagate_ring_points{replica=%q} %d\n", rep.url, occ[i])
	}
	writeHist := func(h *obs.Histogram, name, labels string) {
		//bwalint:ignore streamerr exposition writes into a local buffer; the single checked write is below
		_ = h.Write(&buf, name, labels)
	}
	writeHist(&m.reqSingle, "bwagate_request_seconds", `kind="single"`)
	writeHist(&m.reqPaired, "bwagate_request_seconds", `kind="paired"`)
	writeHist(&m.ttfb, "bwagate_ttfb_seconds", "")
	for _, rep := range g.replicas {
		writeHist(&rep.upstream, "bwagate_upstream_seconds", fmt.Sprintf("replica=%q", rep.url))
	}
	obs.WriteRuntimeMetrics(&buf, "bwagate")

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // scraper went away mid-response; nothing to salvage
	}
}

// handleHealthz serves GET /v1/healthz (alias /healthz): pure liveness for
// the gateway process itself, plus the replica-fleet summary a human or
// probe wants at a glance. Always 200 — readiness is /v1/readyz.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if g.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	//bwalint:ignore streamerr probe body is best-effort once the status code is out
	_, _ = fmt.Fprintf(w, `{"status":%q,"uptime_seconds":%.3f,"replicas":%d,"replicas_up":%d}`+"\n",
		status, time.Since(g.met.start).Seconds(), len(g.replicas), g.healthyCount())
}

// handleReadyz serves GET /v1/readyz: 200 while the gateway can route new
// work (not draining, at least one healthy replica), 503 otherwise — the
// same signal shape a replica exposes, so load balancers treat the tiers
// identically.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	switch {
	case g.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case g.healthyCount() == 0:
		status, code = "unavailable", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//bwalint:ignore streamerr probe body is best-effort once the status code is out
	_, _ = fmt.Fprintf(w, `{"status":%q,"replicas_up":%d}`+"\n", status, g.healthyCount())
}
