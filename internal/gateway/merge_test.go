package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/bwaclient"
)

// fakeStream serves body as an align response and returns the client-side
// SAMStream over it — the same decoding path the gateway reads upstreams
// through.
func fakeStream(t *testing.T, body string) *bwaclient.SAMStream {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/x-sam")
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	cl, err := bwaclient.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Align(context.Background(), []bwaclient.Read{{Name: "r", Seq: []byte("ACGT"), Qual: []byte("IIII")}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// rec builds one SAM record line with the given name and flag.
func rec(name string, flag int) string {
	return fmt.Sprintf("%s\t%d\tchr1\t100\t60\t4M\t*\t0\t0\tACGT\tIIII\n", name, flag)
}

func collectGroups(t *testing.T, body string, quota int) (hdr string, groups []string, n int, err error) {
	t.Helper()
	st := fakeStream(t, body)
	gotHdr := false
	n, err = splitGroups(st, quota, func(h []byte) {
		if gotHdr {
			t.Fatal("onHeader called twice")
		}
		gotHdr = true
		hdr = string(h)
	}, func(g []byte) {
		groups = append(groups, string(g))
	})
	if err == nil && !gotHdr {
		t.Fatal("onHeader never called on a clean stream")
	}
	return hdr, groups, n, err
}

func TestSplitGroupsSingleEnd(t *testing.T) {
	header := "@SQ\tSN:chr1\tLN:60000\n@PG\tID:bwa\n"
	body := header + rec("a", 0) + rec("b", 16) + rec("c", 4)
	hdr, groups, n, err := collectGroups(t, body, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != header {
		t.Fatalf("header %q, want %q", hdr, header)
	}
	if n != 3 || len(groups) != 3 {
		t.Fatalf("got %d groups (%d reported), want 3", len(groups), n)
	}
	want := []string{rec("a", 0), rec("b", 16), rec("c", 4)}
	for i := range want {
		if groups[i] != want[i] {
			t.Fatalf("group %d = %q, want %q", i, groups[i], want[i])
		}
	}
}

func TestSplitGroupsAttachesSecondaries(t *testing.T) {
	// Secondary (0x100) and supplementary (0x800) records belong to the
	// preceding primary's group.
	body := rec("a", 0) + rec("a", 256) + rec("a", 2048) + rec("b", 16)
	_, groups, _, err := collectGroups(t, body, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if want := rec("a", 0) + rec("a", 256) + rec("a", 2048); groups[0] != want {
		t.Fatalf("group 0 = %q, want %q", groups[0], want)
	}
	if groups[1] != rec("b", 16) {
		t.Fatalf("group 1 = %q, want %q", groups[1], rec("b", 16))
	}
}

func TestSplitGroupsPairedQuota(t *testing.T) {
	// Paired groups hold two primaries (one per mate) plus attachments.
	body := rec("p1", 99) + rec("p1", 147) + rec("p1", 2147) +
		rec("p2", 77) + rec("p2", 141)
	_, groups, _, err := collectGroups(t, body, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if !strings.Contains(groups[0], "\t2147\t") {
		t.Fatalf("supplementary record not attached to its pair group: %q", groups[0])
	}
}

func TestSplitGroupsHeaderOnly(t *testing.T) {
	hdr, groups, n, err := collectGroups(t, "@SQ\tSN:chr1\tLN:9\n", 1)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != "@SQ\tSN:chr1\tLN:9\n" || n != 0 || len(groups) != 0 {
		t.Fatalf("header-only stream: hdr=%q n=%d groups=%d", hdr, n, len(groups))
	}
}

func TestSplitGroupsErrors(t *testing.T) {
	// A stream opening with a non-primary record is corrupt.
	if _, _, _, err := collectGroups(t, rec("a", 256), 1); err == nil {
		t.Fatal("no error for group opening with a secondary record")
	}
	// A cleanly-ended stream whose final group is short of quota is a
	// truncated paired response, not a complete group.
	if _, _, _, err := collectGroups(t, rec("p1", 99), 2); err == nil {
		t.Fatal("no error for final group below quota")
	}
	// A body cut mid-record must surface the stream error. Group "a" was
	// proven complete by the arrival of primary "b" and is delivered; the
	// group being cut ("b") is not — and neither is a fully-buffered final
	// group, since only a clean EOF proves no attachments follow it.
	body := rec("a", 0) + rec("b", 16) + "c\t16\tchr1\t200\t60\t4M\t*\t0\t0\tACGT\tIII"
	st := fakeStream(t, body)
	var groups int
	n, err := splitGroups(st, 1, nil, func([]byte) { groups++ })
	if err == nil {
		t.Fatal("no error for truncated stream")
	}
	if n != 1 || groups != 1 {
		t.Fatalf("truncated stream delivered %d groups, want exactly the 1 proven-complete one", groups)
	}
	// Garbage where the flag field should be is an error, not a group.
	if _, _, _, err := collectGroups(t, "notasamrecord\tnope\n", 1); err == nil {
		t.Fatal("no error for unparseable flag field")
	}
}

func TestMergerReordersCompletions(t *testing.T) {
	w := httptest.NewRecorder()
	m := newMerger(w, 4, false)
	// Complete out of order; output must be input order.
	m.Complete(2, []byte("two\n"))
	m.Complete(0, []byte("zero\n"))
	m.Complete(3, []byte("three\n"))
	m.Complete(1, []byte("one\n"))
	if err := m.CloseAndWait(); err != nil {
		t.Fatal(err)
	}
	if got, want := w.Body.String(), "zero\none\ntwo\nthree\n"; got != want {
		t.Fatalf("merged %q, want %q", got, want)
	}
	if m.Missing() != 0 || m.Written() != int64(len(w.Body.String())) {
		t.Fatalf("bookkeeping: missing=%d written=%d", m.Missing(), m.Written())
	}
}

func TestMergerHeaderGate(t *testing.T) {
	w := httptest.NewRecorder()
	m := newMerger(w, 2, true)
	fired := false
	m.OnFirstWrite(func() { fired = true })
	m.Complete(0, []byte("zero\n"))
	m.Complete(1, []byte("one\n"))
	// All groups are complete but the header has not arrived: nothing may
	// be written yet.
	time.Sleep(20 * time.Millisecond)
	if w.Body.Len() != 0 {
		t.Fatalf("wrote %q before the header arrived", w.Body.String())
	}
	if fired {
		t.Fatal("OnFirstWrite fired before any byte went out")
	}
	m.SetHeader([]byte("@HDR\n"))
	m.SetHeader([]byte("@WRONG\n")) // second delivery (a retry) must be ignored
	if err := m.CloseAndWait(); err != nil {
		t.Fatal(err)
	}
	if got, want := w.Body.String(), "@HDR\nzero\none\n"; got != want {
		t.Fatalf("merged %q, want %q", got, want)
	}
	if !fired {
		t.Fatal("OnFirstWrite never fired")
	}
}

func TestMergerHeaderOnlyResponse(t *testing.T) {
	w := httptest.NewRecorder()
	m := newMerger(w, 0, true)
	m.SetHeader([]byte("@HDR\n"))
	if err := m.CloseAndWait(); err != nil {
		t.Fatal(err)
	}
	m.EnsureHeader()
	if got := w.Body.String(); got != "@HDR\n" {
		t.Fatalf("header-only response %q, want %q", got, "@HDR\n")
	}
}

// failAfterWriter fails every write after the first n bytes, standing in
// for a client that went away mid-response.
type failAfterWriter struct {
	httptest.ResponseRecorder
	n int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("client gone")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, fmt.Errorf("client gone")
	}
	f.n -= len(p)
	return f.ResponseRecorder.Write(p)
}

func TestMergerStickyWriteError(t *testing.T) {
	w := &failAfterWriter{ResponseRecorder: *httptest.NewRecorder(), n: 5}
	m := newMerger(w, 3, false)
	m.Complete(0, []byte("0123456789\n"))
	m.Complete(1, []byte("x\n"))
	m.Complete(2, []byte("y\n"))
	err := m.CloseAndWait()
	if err == nil {
		t.Fatal("write error not surfaced by CloseAndWait")
	}
	if !m.Started() {
		t.Fatal("Started() false after a partial write")
	}
}
