package gateway

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/pkg/bwaclient"
)

// orderedMerger re-interleaves per-replica SAM sub-streams into one
// response byte-identical to a single server's: slot i holds the complete
// record group of input read (or pair) i, a request-owned writer goroutine
// drains the longest contiguous completed prefix, and the SAM header —
// harvested from whichever upstream stream was asked to produce it — is
// written before slot 0. The shape deliberately mirrors the server's
// samStreamer (internal/server/stream.go): Complete is O(1) bookkeeping
// under a mutex, the socket write happens only on the writer goroutine,
// the first write error is sticky, and a client that stops reading blocks
// only its own request.
type orderedMerger struct {
	w          http.ResponseWriter
	flusher    http.Flusher  // nil when w cannot flush
	wantHeader bool          // response must start with the SAM header
	notify     chan struct{} // capacity 1: progress wake-up
	wg         sync.WaitGroup

	mu        sync.Mutex
	header    []byte // harvested upstream header (nil until SetHeader)
	headerSet bool
	started   bool // some bytes written; the HTTP status is committed
	slots     [][]byte
	ready     []bool
	completed int
	next      int // first slot not yet handed to the writer
	closed    bool
	written   int64
	err       error  // first write error; sticky
	onFirst   func() // runs once, just before the first body write
}

// newMerger builds a merger for n record groups to w and starts its
// writer goroutine. CloseAndWait must be called before the handler
// returns. When wantHeader is set, nothing is written until SetHeader
// delivers the upstream header.
func newMerger(w http.ResponseWriter, n int, wantHeader bool) *orderedMerger {
	m := &orderedMerger{w: w, wantHeader: wantHeader,
		notify: make(chan struct{}, 1),
		slots:  make([][]byte, n), ready: make([]bool, n)}
	if f, ok := w.(http.Flusher); ok {
		m.flusher = f
	}
	m.wg.Add(1)
	go m.writeLoop()
	return m
}

// OnFirstWrite registers fn to run exactly once, immediately before the
// first response byte goes out — the last moment response headers are
// still mutable. Register before any Complete call.
func (m *orderedMerger) OnFirstWrite(fn func()) {
	m.mu.Lock()
	m.onFirst = fn
	m.mu.Unlock()
}

// SetHeader delivers the harvested SAM header. Only the first call takes
// effect (a retried partition must not deliver it twice). No-op when the
// response wants no header.
func (m *orderedMerger) SetHeader(hdr []byte) {
	m.mu.Lock()
	if m.headerSet || !m.wantHeader {
		m.mu.Unlock()
		return
	}
	m.header = hdr
	m.headerSet = true
	m.mu.Unlock()
	m.signal()
}

// HeaderSet reports whether the upstream header has been delivered — a
// retry uses it to decide whether to re-request the header.
func (m *orderedMerger) HeaderSet() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.headerSet
}

// Complete delivers the record group of input index i. Safe for
// concurrent use from the partition readers; each index at most once.
func (m *orderedMerger) Complete(i int, group []byte) {
	m.mu.Lock()
	m.slots[i] = group
	m.ready[i] = true
	m.completed++
	wake := i == m.next
	m.mu.Unlock()
	if wake {
		m.signal()
	}
}

func (m *orderedMerger) signal() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// writeLoop drains contiguous completed runs — gated on the header when
// one is wanted — and writes them as one chunk each, flushing between
// chunks.
func (m *orderedMerger) writeLoop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var chunk [][]byte
		if m.headerSet || !m.wantHeader {
			for m.next < len(m.ready) && m.ready[m.next] {
				chunk = append(chunk, m.slots[m.next])
				m.slots[m.next] = nil
				m.next++
			}
		}
		finished := m.next == len(m.ready) && (m.headerSet || !m.wantHeader)
		closed := m.closed
		failed := m.err != nil
		m.mu.Unlock()

		if len(chunk) > 0 && !failed {
			failed = !m.writeChunk(chunk)
		}
		switch {
		case finished || failed || (closed && len(chunk) == 0):
			return
		case len(chunk) > 0:
			continue // more may have completed while writing
		}
		<-m.notify
	}
}

// writeChunk writes one contiguous run (header first when it is the very
// first write), updating the byte count and sticky error.
func (m *orderedMerger) writeChunk(chunk [][]byte) bool {
	m.mu.Lock()
	first := !m.started
	m.started = true
	onFirst := m.onFirst
	hdr := m.header
	m.mu.Unlock()
	if first && onFirst != nil {
		onFirst()
	}

	var n int64
	var err error
	if first && len(hdr) > 0 {
		var hn int
		hn, err = m.w.Write(hdr)
		n += int64(hn)
	}
	if err == nil {
		for _, rec := range chunk {
			var rn int
			rn, err = m.w.Write(rec)
			n += int64(rn)
			if err != nil {
				break
			}
		}
	}
	if err == nil && m.flusher != nil {
		m.flusher.Flush()
	}

	m.mu.Lock()
	m.written += n
	if err != nil && m.err == nil {
		m.err = err
	}
	ok := m.err == nil
	m.mu.Unlock()
	return ok
}

// CloseAndWait stops the writer once it runs out of contiguous work and
// waits for it to exit. Must be called before the handler returns.
func (m *orderedMerger) CloseAndWait() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.signal()
	m.wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// EnsureHeader writes the bare header when no record write did (an
// all-groups-empty response cannot happen — every read yields a record —
// but the path mirrors samStreamer's defensiveness). Call after
// CloseAndWait only.
func (m *orderedMerger) EnsureHeader() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started && m.err == nil && m.headerSet && len(m.header) > 0 {
		m.started = true
		if m.onFirst != nil {
			m.onFirst()
		}
		n, err := m.w.Write(m.header)
		m.written += int64(n)
		m.err = err
		if m.err == nil && m.flusher != nil {
			m.flusher.Flush()
		}
	}
}

// Written returns the bytes written so far, header included.
func (m *orderedMerger) Written() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Started reports whether any byte (and so the HTTP status) went out.
func (m *orderedMerger) Started() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.started
}

// Missing returns how many record groups were never delivered.
func (m *orderedMerger) Missing() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.slots) - m.completed
}

// Sub-stream group splitting: one upstream response carries the ordered
// record groups of a partition's reads. A group is the complete record
// set of one read (single-end, quota 1: one primary record plus its
// secondary/supplementary attachments) or one pair (paired, quota 2). The
// server renders each read's primary record first (core.selectAlignments
// keeps the best region first; an unmapped read is exactly one primary
// record), so group boundaries sit at every quota-th primary: a record
// with flag&0x900 == 0 opens a new group once the current one holds its
// quota.

// samFlagPrimaryMask selects the SECONDARY (0x100) and SUPPLEMENTARY
// (0x800) bits: records with neither are primaries, exactly one per read.
const samFlagPrimaryMask = 0x900

// recordFlag extracts the FLAG field (second tab-separated column) of one
// SAM record line.
func recordFlag(line []byte) (int, error) {
	i := bytes.IndexByte(line, '\t')
	if i < 0 {
		return 0, fmt.Errorf("gateway: SAM record without tabs: %.60q", line)
	}
	rest := line[i+1:]
	j := bytes.IndexByte(rest, '\t')
	if j < 0 {
		j = len(rest)
	}
	flag, err := strconv.Atoi(string(rest[:j]))
	if err != nil {
		return 0, fmt.Errorf("gateway: unparseable SAM flag in %.60q: %w", line, err)
	}
	return flag, nil
}

// splitGroups walks an upstream SAM stream, delivering the leading header
// block (the '@'-prefixed lines before the first record, newline-
// terminated, nil when the stream has none) to onHeader and each complete
// record group to onGroup, in stream order. It returns the number of
// groups delivered and the first stream error; a non-nil error means the
// remainder of the partition is undelivered (the retry path's input). The
// final group only counts once the stream ends cleanly — a truncated
// stream errors instead of passing a half group off as complete.
func splitGroups(st *bwaclient.SAMStream, quota int, onHeader func([]byte), onGroup func([]byte)) (int, error) {
	var header []byte
	headerDone := false
	finishHeader := func() {
		if !headerDone {
			headerDone = true
			if onHeader != nil {
				onHeader(header)
			}
		}
	}
	var group []byte
	groups, primaries := 0, 0
	for st.Next() {
		line := st.Record()
		if !headerDone && len(line) > 0 && line[0] == '@' {
			header = append(header, line...)
			header = append(header, '\n')
			continue
		}
		finishHeader()
		flag, err := recordFlag(line)
		if err != nil {
			return groups, err
		}
		if flag&samFlagPrimaryMask == 0 {
			if primaries == quota {
				onGroup(group)
				groups++
				group, primaries = nil, 0
			}
			primaries++
		} else if primaries == 0 && len(group) == 0 {
			return groups, fmt.Errorf("gateway: group opens with non-primary record %.60q", line)
		}
		group = append(group, line...)
		group = append(group, '\n')
	}
	if err := st.Err(); err != nil {
		return groups, err
	}
	finishHeader()
	if len(group) > 0 {
		if primaries != quota {
			return groups, fmt.Errorf("gateway: final group holds %d primaries, want %d", primaries, quota)
		}
		onGroup(group)
		groups++
	}
	return groups, nil
}
