// Package gateway is the bwagate front tier: an HTTP server speaking the
// exact /v1 wire contract that fans align requests out across a fleet of
// bwaserve replicas through pkg/bwaclient and merges the ordered SAM
// streams back into one response byte-identical to a single server's.
//
// Routing is consistent-hash on the encoded sequence (ring.go) so
// duplicate-heavy traffic keeps each replica's rescache hot, with
// bounded-load spill to the next ring node when the owner is overloaded.
// Replicas are health-gated (health.go): periodic /v1/readyz probes plus
// passive failure detection take a replica out of new assignments while
// in-flight streams finish, and a succeeding probe re-adds it. Single-end
// requests are partitioned per read and scattered concurrently; paired
// requests route whole to one replica (insert-size statistics are
// request-scoped, so splitting a paired request would change its bytes).
// Failed partitions are retried on the next healthy ring node, resuming
// after the record groups already merged (proxy.go).
package gateway

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/pkg/bwaclient"
)

// Error code for gateway-origin failures: no healthy replica to route to,
// or every retry exhausted before a byte was written. Wire-contract codes
// (bad_request, overloaded, ...) pass through from replicas unchanged.
const codeUpstreamUnavailable = "upstream_unavailable"

// Config configures a Gateway. The zero value of each field means its
// documented default.
type Config struct {
	// Replicas is the bwaserve base URLs the gateway routes across.
	// Required, at least one.
	Replicas []string
	// ProbeInterval is the readyz probe period. 0 means 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readyz probe. 0 means 2s.
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures mark a replica
	// down (passive traffic failures mark it down immediately). 0 means 2.
	FailAfter int
	// SpillFactor is the bounded-load factor c: a partition spills past
	// its ring owner when the owner's in-flight reads exceed c times the
	// healthy-fleet average. 0 means 1.25; negative disables spilling.
	SpillFactor float64
	// VNodes is the virtual nodes per replica on the hash ring. 0 means 64.
	VNodes int
	// Retries is how many times a failed partition is re-dispatched to
	// another healthy replica before the request fails. 0 means 2;
	// negative disables retries.
	Retries int
	// MaxReadsPerRequest and MaxReadLen mirror the replicas' caps so the
	// gateway rejects oversized requests with the replicas' exact
	// envelopes instead of scattering work that would be rejected
	// upstream. 0 means 65536 (the server default) for both.
	MaxReadsPerRequest int
	MaxReadLen         int
	// UpstreamRetries429 is bwaclient's retry count for upstream 429s
	// (admission backoff happens against the replica that owns the key,
	// preserving cache affinity). 0 means 2; negative disables.
	UpstreamRetries429 int
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.SpillFactor == 0 {
		c.SpillFactor = 1.25
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.MaxReadsPerRequest <= 0 {
		c.MaxReadsPerRequest = 65536
	}
	if c.MaxReadLen <= 0 {
		c.MaxReadLen = 65536
	}
	if c.UpstreamRetries429 == 0 {
		c.UpstreamRetries429 = 2
	}
	if c.UpstreamRetries429 < 0 {
		c.UpstreamRetries429 = 0
	}
	return c
}

// Flags binds the gateway's configuration to fs, returning the Config the
// parsed flags fill. Flag names and help strings are documented in
// README.md's bwagate table; a drift test keeps the two in sync.
func Flags(fs *flag.FlagSet) *Config {
	c := &Config{}
	var replicas string
	fs.Func("replicas", "comma-separated bwaserve base URLs to route across (required)", func(v string) error {
		replicas = v
		for _, u := range strings.Split(v, ",") {
			if u = strings.TrimSpace(u); u != "" {
				c.Replicas = append(c.Replicas, u)
			}
		}
		if len(c.Replicas) == 0 {
			return fmt.Errorf("no replica URLs in %q", replicas)
		}
		return nil
	})
	fs.DurationVar(&c.ProbeInterval, "probe-interval", 0, "readyz probe period (0 = 1s)")
	fs.DurationVar(&c.ProbeTimeout, "probe-timeout", 0, "timeout of one readyz probe (0 = 2s)")
	fs.IntVar(&c.FailAfter, "fail-after", 0, "consecutive probe failures before a replica is down (0 = 2)")
	fs.Float64Var(&c.SpillFactor, "spill-factor", 0, "bounded-load factor before spilling past the ring owner (0 = 1.25, negative disables)")
	fs.IntVar(&c.VNodes, "vnodes", 0, "virtual nodes per replica on the hash ring (0 = 64)")
	fs.IntVar(&c.Retries, "retries", 0, "re-dispatches of a failed partition to another replica (0 = 2, negative disables)")
	fs.IntVar(&c.MaxReadsPerRequest, "max-request-reads", 0, "max reads per request, 413 beyond; match the replicas (0 = 65536)")
	fs.IntVar(&c.MaxReadLen, "max-read-len", 0, "max bases per read, 413 beyond; match the replicas (0 = 65536)")
	return c
}

// Gateway is the routing front tier. Construct with New, serve via
// Handler/ServeHTTP, stop with Shutdown (graceful) or Close.
type Gateway struct {
	cfg       Config
	replicas  []*replica
	ring      *hashRing
	mux       *http.ServeMux
	met       *gwMetrics
	bodyLimit int64
	upstream  *http.Client

	draining    atomic.Bool
	probeCancel context.CancelFunc
	probeDone   chan struct{}
	logFn       atomic.Pointer[func(string, ...any)]

	// in-flight request accounting for graceful drain, the admission
	// idle-channel pattern: idle is lazily created by a waiting Shutdown
	// and closed by the exit that takes inflight to zero.
	mu       sync.Mutex
	inflight int
	idle     chan struct{}
}

// New builds a gateway over cfg.Replicas and starts its health prober.
// The caller must Close (or Shutdown) it.
func New(cfg Config, opts ...Option) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: no replicas configured")
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	urls := make([]string, 0, len(cfg.Replicas))
	for _, u := range cfg.Replicas {
		u = strings.TrimRight(u, "/")
		if seen[u] {
			return nil, fmt.Errorf("gateway: duplicate replica %s", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}
	g := &Gateway{cfg: cfg, mux: http.NewServeMux(), met: newGwMetrics(),
		bodyLimit: server.RequestBodyLimit(cfg.MaxReadsPerRequest, cfg.MaxReadLen),
		probeDone: make(chan struct{})}
	for _, o := range opts {
		if err := o(g); err != nil {
			return nil, err
		}
	}
	hc := g.httpClient()
	g.upstream = hc
	for _, u := range urls {
		cl, err := bwaclient.New(u, bwaclient.WithRetries(cfg.UpstreamRetries429), bwaclient.WithHTTPClient(hc))
		if err != nil {
			return nil, fmt.Errorf("gateway: replica %s: %w", u, err)
		}
		probe, err := bwaclient.New(u, bwaclient.WithRetries(0), bwaclient.WithHTTPClient(hc))
		if err != nil {
			return nil, fmt.Errorf("gateway: replica %s: %w", u, err)
		}
		g.replicas = append(g.replicas, &replica{url: u, client: cl, probe: probe})
	}
	g.ring = buildRing(urls, cfg.VNodes)
	g.registerRoutes()

	// The prober's lifetime is the gateway's, not any request's; Close
	// cancels it.
	//bwalint:ignore ctxflow prober lifetime is the gateway's, ended by Close
	ctx, cancel := context.WithCancel(context.Background())
	g.probeCancel = cancel
	go g.probeLoop(ctx)
	return g, nil
}

// Option configures a Gateway at construction.
type Option func(*Gateway) error

var testHTTPClient *http.Client // test hook; nil in production

// httpClient resolves the upstream *http.Client: connection pooling tuned
// for many concurrent streams to few hosts. Align responses stream, so no
// overall client timeout is set — request contexts bound each call.
func (g *Gateway) httpClient() *http.Client {
	if testHTTPClient != nil {
		return testHTTPClient
	}
	tr := http.DefaultTransport
	if t, ok := tr.(*http.Transport); ok {
		t = t.Clone()
		t.MaxIdleConnsPerHost = 64
		tr = t
	}
	return &http.Client{Transport: tr}
}

// CloseIdleConnections drops the pooled idle upstream connections (and
// with them their transport goroutines). Pool occupancy is bounded by
// configuration, not leaked, but it makes a post-load goroutine count
// load-shaped; leak checks (the soak harness's server-side invariant)
// call this first so they measure the gateway's resting footprint.
func (g *Gateway) CloseIdleConnections() { g.upstream.CloseIdleConnections() }

// SetLogf installs a control-plane logger (replica state transitions,
// retries). nil disables logging, the default. Safe to call concurrently.
func (g *Gateway) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		g.logFn.Store(nil)
		return
	}
	g.logFn.Store(&logf)
}

func (g *Gateway) logf(format string, args ...any) {
	if f := g.logFn.Load(); f != nil {
		(*f)(format, args...)
	}
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// registerRoutes installs the wire surface: the same /v1 routes (and
// legacy aliases) a bwaserve exposes, minus the server-local debug
// endpoint, so a client cannot tell the tiers apart.
func (g *Gateway) registerRoutes() {
	routes := []struct {
		method, path, legacy string
		h                    http.HandlerFunc
	}{
		{http.MethodPost, "/v1/align", "/align", g.handleAlign},
		{http.MethodPost, "/v1/align/paired", "/align/paired", g.handleAlignPaired},
		{http.MethodGet, "/v1/healthz", "/healthz", g.handleHealthz},
		{http.MethodGet, "/v1/readyz", "", g.handleReadyz},
		{http.MethodGet, "/v1/metrics", "/metrics", g.handleMetrics},
	}
	for _, rt := range routes {
		h := g.instrument(rt.method, rt.h)
		g.mux.HandleFunc(rt.path, h)
		if rt.legacy != "" {
			g.mux.HandleFunc(rt.legacy, h)
		}
	}
	g.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		g.setRequestID(w, r, func(w http.ResponseWriter, r *http.Request) {
			g.apiError(w, r, http.StatusNotFound, bwaclient.CodeNotFound,
				fmt.Sprintf("no such route %s (see /v1/align, /v1/align/paired, /v1/healthz, /v1/metrics)", r.URL.Path))
		})
	})
}

// instrument wraps a handler with request-ID assignment, the in-flight
// drain accounting, and the single-method check — the same wire
// bookkeeping a replica applies, so envelopes stay byte-identical.
func (g *Gateway) instrument(method string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g.setRequestID(w, r, func(w http.ResponseWriter, r *http.Request) {
			g.enter()
			defer g.exit()
			if r.Method != method {
				w.Header().Set("Allow", method)
				g.apiError(w, r, http.StatusMethodNotAllowed, bwaclient.CodeMethodNotAllowed,
					fmt.Sprintf("method %s not allowed (use %s)", r.Method, method))
				return
			}
			next(w, r)
		})
	}
}

// gwRequestIDKey keys the request ID in a request context.
type gwCtxKey int

const gwRequestIDKey gwCtxKey = iota

// setRequestID resolves the request's ID exactly as a replica would —
// client-supplied when valid, fresh otherwise — and exposes it as the
// X-Request-Id header and in the context.
func (g *Gateway) setRequestID(w http.ResponseWriter, r *http.Request, next http.HandlerFunc) {
	id := r.Header.Get("X-Request-Id")
	if !server.ValidRequestID(id) {
		id = server.NewRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	next(w, r.WithContext(context.WithValue(r.Context(), gwRequestIDKey, id)))
}

// requestID returns the ID assigned by setRequestID ("" outside a request).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(gwRequestIDKey).(string)
	return id
}

// apiError writes the typed JSON error envelope of the /v1 contract.
func (g *Gateway) apiError(w http.ResponseWriter, r *http.Request, status int, code, message string) {
	server.WriteErrorEnvelope(w, status, code, message, requestID(r.Context()))
}

// enter/exit track in-flight requests for graceful drain.
func (g *Gateway) enter() {
	g.mu.Lock()
	g.inflight++
	g.mu.Unlock()
}

func (g *Gateway) exit() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
	g.mu.Unlock()
}

// Shutdown drains the gateway: readyz flips to 503, new align requests
// are refused with the draining envelope, and the call waits until
// in-flight requests finish or ctx ends. Idempotent.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.draining.Store(true)
	g.stopProber()
	g.mu.Lock()
	if g.inflight == 0 {
		g.mu.Unlock()
		return nil
	}
	if g.idle == nil {
		g.idle = make(chan struct{})
	}
	idle := g.idle
	g.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("gateway: drain interrupted: %w", ctx.Err())
	}
}

// Close stops the prober and marks the gateway draining without waiting
// for in-flight requests. Idempotent.
func (g *Gateway) Close() {
	g.draining.Store(true)
	g.stopProber()
}

func (g *Gateway) stopProber() {
	g.probeCancel()
	<-g.probeDone
}
