package bwt

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/seq"
)

// refBWT computes the BWT the slow, obviously-correct way: sort all rotations
// of text+'$' (sentinel = 0xFF mapped below code 0 via custom compare) and
// take the last column. It returns the full column (sentinel as 0xFE) and the
// primary row.
func refBWT(text []byte) (full []byte, primary int) {
	n := len(text)
	t := make([]byte, n+1)
	for i, c := range text {
		t[i] = c + 1 // shift so sentinel 0 is smallest
	}
	t[n] = 0
	rot := make([]int, n+1)
	for i := range rot {
		rot[i] = i
	}
	sort.Slice(rot, func(a, b int) bool {
		// Compare rotations starting at rot[a], rot[b].
		ra, rb := rot[a], rot[b]
		for i := 0; i <= n; i++ {
			ca, cb := t[(ra+i)%(n+1)], t[(rb+i)%(n+1)]
			if ca != cb {
				return ca < cb
			}
		}
		return false
	})
	full = make([]byte, n+1)
	primary = -1
	for i, r := range rot {
		last := t[(r+n)%(n+1)]
		if last == 0 {
			full[i] = 0xFE
			primary = i
		} else {
			full[i] = last - 1
		}
	}
	return full, primary
}

func checkAgainstRef(t *testing.T, text []byte) {
	t.Helper()
	b, full, err := FromText(text)
	if err != nil {
		t.Fatal(err)
	}
	wantFull, wantPrimary := refBWT(text)
	if b.Primary != wantPrimary {
		t.Fatalf("Primary = %d, want %d (text %v)", b.Primary, wantPrimary, text)
	}
	// Reconstruct the stored column from the reference full column.
	var wantB0 []byte
	for i, c := range wantFull {
		if i != wantPrimary {
			wantB0 = append(wantB0, c)
		}
	}
	if !bytes.Equal(b.B0, wantB0) {
		t.Fatalf("B0 = %v, want %v (text %v)", b.B0, wantB0, text)
	}
	// Char must agree with the full column on every non-primary row.
	for k := 0; k <= b.N; k++ {
		if k == b.Primary {
			continue
		}
		if b.Char(k) != wantFull[k] {
			t.Fatalf("Char(%d) = %d, want %d", k, b.Char(k), wantFull[k])
		}
	}
	if full[0] != int32(len(text)) {
		t.Fatalf("full SA row 0 = %d, want %d", full[0], len(text))
	}
}

func TestFromTextPaperExample(t *testing.T) {
	// Figure 1 of the paper: R = ATACGAC, sentinel appended.
	text := seq.Encode([]byte("ATACGAC"))
	b, full, err := FromText(text)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 suffix array S = (7 5 2 0 6 3 4 1); our full SA matches it.
	wantSA := []int32{7, 5, 2, 0, 6, 3, 4, 1}
	for i, w := range wantSA {
		if full[i] != w {
			t.Fatalf("full SA = %v, want %v", full, wantSA)
		}
	}
	// BWT column of ATACGAC$ is CGT$AACA; primary row is index 3.
	if b.Primary != 3 {
		t.Fatalf("Primary = %d, want 3", b.Primary)
	}
	wantB0 := seq.Encode([]byte("CGTAACA"))
	if !bytes.Equal(b.B0, wantB0) {
		t.Fatalf("B0 = %v, want %v", b.B0, wantB0)
	}
	// C array: counts A=3 C=2 G=1 T=1 -> C = [1 4 6 7 8]
	want := [5]int{1, 4, 6, 7, 8}
	if b.C != want {
		t.Fatalf("C = %v, want %v", b.C, want)
	}
}

func TestFromTextRandomAgainstRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte(rng.Intn(4))
		}
		checkAgainstRef(t, text)
	}
}

func TestFromTextRejectsBadCodes(t *testing.T) {
	if _, _, err := FromText([]byte{0, 1, 4}); err == nil {
		t.Fatal("expected error for code 4")
	}
}

func TestRankShiftAndStoredIndex(t *testing.T) {
	text := seq.Encode([]byte("ATACGAC"))
	b, _, _ := FromText(text)
	// RankShift: identity below primary, minus one at/after.
	if b.RankShift(-1) != -1 {
		t.Error("RankShift(-1)")
	}
	if b.RankShift(b.Primary-1) != b.Primary-1 {
		t.Error("RankShift(primary-1)")
	}
	if b.RankShift(b.Primary) != b.Primary-1 {
		t.Error("RankShift(primary)")
	}
	if b.RankShift(b.N) != b.N-1 {
		t.Error("RankShift(N)")
	}
	if b.StoredIndex(b.Primary-1) != b.Primary-1 || b.StoredIndex(b.Primary+1) != b.Primary {
		t.Error("StoredIndex around primary")
	}
}

// TestLFCycle checks the fundamental LF-mapping property using B0 and C
// directly: iterating LF from the primary row must visit all rows and spell
// the text backwards.
func TestLFCycle(t *testing.T) {
	text := seq.Encode([]byte("ACGTACGTTTACGGCA"))
	b, full, _ := FromText(text)
	// rank over B0 computed naively
	rank := func(c byte, k int) int { // occurrences in B'[0..k]
		k = b.RankShift(k)
		cnt := 0
		for i := 0; i <= k; i++ {
			if b.B0[i] == c {
				cnt++
			}
		}
		return cnt
	}
	lf := func(k int) int {
		if k == b.Primary {
			return 0
		}
		c := b.Char(k)
		return b.C[c] + rank(c, k) - 1
	}
	// SA'[lf(k)] must equal SA'[k]-1 (mod N+1).
	for k := 0; k <= b.N; k++ {
		got := int(full[lf(k)])
		want := (int(full[k]) - 1 + b.N + 1) % (b.N + 1)
		if got != want {
			t.Fatalf("LF(%d): SA=%d, want %d", k, got, want)
		}
	}
}

func TestFromStoredMatchesFromText(t *testing.T) {
	text := seq.Encode([]byte("ACGTACGTTTACGGCAGGCATTACG"))
	want, _, err := FromText(text)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromStored(want.B0, want.Primary)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.Primary != want.Primary || got.Counts != want.Counts || got.C != want.C {
		t.Fatalf("FromStored = %+v, want %+v", got, want)
	}
	trusted, err := FromStoredCounts(want.B0, want.Primary, want.Counts)
	if err != nil {
		t.Fatal(err)
	}
	if trusted.C != want.C || trusted.Counts != want.Counts {
		t.Fatalf("FromStoredCounts = %+v, want %+v", trusted, want)
	}
}

func TestFromStoredRejectsBadInput(t *testing.T) {
	text := seq.Encode([]byte("ACGTACGTTTACGGCA"))
	b, _, _ := FromText(text)
	bad := append([]byte(nil), b.B0...)
	bad[3] = 7
	if _, err := FromStored(bad, b.Primary); err == nil {
		t.Fatal("column with a non-base code should not parse")
	}
	if _, err := FromStored(b.B0, 0); err == nil {
		t.Fatal("primary row 0 should not parse")
	}
	if _, err := FromStored(b.B0, b.N+1); err == nil {
		t.Fatal("primary row beyond N should not parse")
	}
	wrong := b.Counts
	wrong[0]++
	if _, err := FromStoredCounts(b.B0, b.Primary, wrong); err == nil {
		t.Fatal("counts not summing to the column length should not parse")
	}
	if _, err := FromStoredCounts(b.B0, b.Primary, [4]int{-1, 1, len(b.B0), 0}); err == nil {
		t.Fatal("negative count should not parse")
	}
}
