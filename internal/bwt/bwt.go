// Package bwt builds the Burrows-Wheeler transform of the (doubled) reference
// text and defines the row conventions shared by the FM-index and the
// suffix-array lookup kernel.
//
// Conventions (identical to BWA's): the indexed text T has length N over the
// codes {0,1,2,3}; a virtual sentinel '$', smaller than every base, terminates
// it. The Burrows-Wheeler matrix therefore has N+1 rows, numbered 0..N, with
// row 0 always the sentinel suffix. The transform column B' has one '$' at
// row Primary (the row of the suffix starting at text position 0). B' is
// stored with that sentinel character removed as B0 of length N; rank queries
// shift around Primary to recover full-column semantics.
package bwt

import (
	"fmt"

	"repro/internal/sais"
)

// BWT is the Burrows-Wheeler transform of a text plus the counts needed for
// backward search.
type BWT struct {
	N       int    // length of the indexed text; the BW matrix has N+1 rows
	Primary int    // full-matrix row whose transform character is the sentinel
	B0      []byte // transform column with the sentinel character removed; len N
	Counts  [4]int // occurrences of each base in the text
	C       [5]int // C[c]: first row whose suffix starts with base c; C[4] = N+1
}

// FromText computes the suffix array of text (codes 0..3) with SA-IS and
// derives the BWT. It returns the BWT and the full-matrix suffix array SA'
// of length N+1 (SA'[0] = N for the sentinel row) for suffix-array-lookup
// construction.
func FromText(text []byte) (*BWT, []int32, error) {
	for i, c := range text {
		if c > 3 {
			return nil, nil, fmt.Errorf("bwt: text[%d] = %d is not a 2-bit base code", i, c)
		}
	}
	sa := sais.Build(text)
	b, full := FromSA(text, sa)
	return b, full, nil
}

// FromSA derives the BWT from a text and its (sentinel-less) suffix array as
// produced by sais.Build. It returns the BWT and the full-matrix suffix
// array (with the sentinel row prepended).
func FromSA(text []byte, sa []int32) (*BWT, []int32) {
	n := len(text)
	b := &BWT{N: n, B0: make([]byte, n), Primary: -1}
	for _, c := range text {
		b.Counts[c]++
	}
	b.C[0] = 1 // row 0 is the sentinel suffix
	for c := 0; c < 4; c++ {
		b.C[c+1] = b.C[c] + b.Counts[c]
	}

	full := make([]int32, n+1)
	full[0] = int32(n)
	copy(full[1:], sa)

	// Row 0 precedes the sentinel suffix, so its transform char is T[n-1].
	// Row i>0 holds suffix p=sa[i-1]; its transform char is T[p-1], except
	// p==0 whose char is the sentinel: that row becomes Primary and is
	// skipped in B0.
	if n > 0 {
		b.B0[0] = text[n-1]
	}
	w := 1
	for i := 1; i <= n; i++ {
		p := full[i]
		if p == 0 {
			b.Primary = i
			continue
		}
		b.B0[w] = text[p-1]
		w++
	}
	return b, full
}

// FromStored reconstructs a BWT from its stored column and primary row as
// read from an index file, recomputing Counts and C. The column is scanned
// once to validate the codes and count the bases; b0 is borrowed, not
// copied, so the caller must keep it immutable for the BWT's lifetime.
func FromStored(b0 []byte, primary int) (*BWT, error) {
	b := &BWT{N: len(b0), Primary: primary, B0: b0}
	for i, c := range b0 {
		if c > 3 {
			return nil, fmt.Errorf("bwt: stored column[%d] = %d is not a 2-bit base code", i, c)
		}
		b.Counts[c]++
	}
	return b, b.finish()
}

// FromStoredCounts reconstructs a BWT from its stored column, primary row
// and precomputed base counts without scanning the column — the zero-copy
// path over a memory-mapped index, where paging in the whole column just to
// recount it would defeat the mapping. The caller vouches for counts (the
// index writer computed them and the file checksum covers them); only the
// invariants checkable in O(1) are validated here.
func FromStoredCounts(b0 []byte, primary int, counts [4]int) (*BWT, error) {
	b := &BWT{N: len(b0), Primary: primary, B0: b0, Counts: counts}
	sum := 0
	for c, v := range counts {
		if v < 0 {
			return nil, fmt.Errorf("bwt: negative stored count %d for base %d", v, c)
		}
		sum += v
	}
	if sum != len(b0) {
		return nil, fmt.Errorf("bwt: stored counts sum to %d, column length is %d", sum, len(b0))
	}
	return b, b.finish()
}

// finish derives C from Counts and validates the primary row.
func (b *BWT) finish() error {
	if b.N > 0 && (b.Primary < 1 || b.Primary > b.N) {
		return fmt.Errorf("bwt: primary row %d outside [1, %d]", b.Primary, b.N)
	}
	b.C[0] = 1 // row 0 is the sentinel suffix
	for c := 0; c < 4; c++ {
		b.C[c+1] = b.C[c] + b.Counts[c]
	}
	return nil
}

// Rows returns the number of rows of the BW matrix, N+1.
func (b *BWT) Rows() int { return b.N + 1 }

// Char returns the transform character B'[k] for a full-matrix row k. It
// must not be called with k == Primary (that row's character is the
// sentinel, which is not a base).
func (b *BWT) Char(k int) byte {
	if k > b.Primary {
		k--
	}
	return b.B0[k]
}

// StoredIndex maps a full-matrix row k (k != Primary) to its index in B0.
func (b *BWT) StoredIndex(k int) int {
	if k > b.Primary {
		return k - 1
	}
	return k
}

// RankShift maps an inclusive full-column rank bound k in [-1, N] to the
// corresponding inclusive bound over B0 in [-1, N-1]: occurrences of c in
// B'[0..k] equal occurrences of c in B0[0..RankShift(k)].
func (b *BWT) RankShift(k int) int {
	if k >= b.Primary {
		return k - 1
	}
	return k
}
