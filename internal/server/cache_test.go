package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/internal/testutil"
)

// dupReads builds a duplicate-heavy read set: every read of base repeated
// copies times, each copy under its own name (as PCR duplicates arrive),
// interleaved so duplicates are spread across the request rather than
// adjacent.
func dupReads(base []seq.Read, copies int, tag string) []seq.Read {
	out := make([]seq.Read, 0, len(base)*copies)
	for c := 0; c < copies; c++ {
		for i := range base {
			out = append(out, seq.Read{
				Name: fmt.Sprintf("%s-%d-%d", tag, i, c),
				Seq:  base[i].Seq,
				Qual: base[i].Qual,
			})
		}
	}
	return out
}

// TestCacheByteIdenticalConcurrentDuplicates is the cache's correctness
// contract under load: many goroutines fire requests full of duplicated
// reads (duplicates both within a request and across concurrent requests,
// so hits, single-flight joins, and leaders all occur), and every response
// must be byte-identical to an uncached pipeline.Run over that request's
// own reads. Run under -race in CI.
func TestCacheByteIdenticalConcurrentDuplicates(t *testing.T) {
	aln, reads, _, _ := setup(t)
	s := newTestServer(t, testConfig()) // cache on via DefaultServerConfig

	const goroutines = 8
	const requests = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*requests)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < requests; q++ {
				// All goroutines share the same base sequences (maximal
				// cross-request duplication) but name reads uniquely.
				base := reads[(q*20)%200 : (q*20)%200+20]
				sub := dupReads(base, 5, fmt.Sprintf("g%dq%d", g, q))
				want := pipeline.Run(aln, sub, pipeline.Config{Threads: 1})
				w := post(s, "/align?header=0", "application/x-fastq", fastqBody(sub))
				if w.Code != 200 {
					errs <- fmt.Errorf("g%d q%d: status %d: %s", g, q, w.Code, w.Body.String())
					return
				}
				if !bytes.Equal(w.Body.Bytes(), want.SAM) {
					errs <- fmt.Errorf("g%d q%d: cached SAM differs from pipeline.Run", g, q)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.cache.Stats()
	if st.Hits == 0 {
		t.Error("duplicate-heavy traffic produced no cache hits")
	}
	if st.Misses == 0 {
		t.Error("no cache misses recorded (first copies must lead)")
	}
	t.Logf("cache after concurrent duplicates: hits=%d misses=%d coalesced=%d",
		st.Hits, st.Misses, st.Coalesced)
}

// TestCacheEvictionUnderPressure squeezes many unique sequences through a
// cache a few hundred bytes large: entries must be evicted, the resident
// bytes must stay within capacity, and — above all — responses must stay
// correct while eviction churns.
func TestCacheEvictionUnderPressure(t *testing.T) {
	aln, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.CacheBytes = 2048 // a handful of entries across 2 shards
	cfg.CacheShards = 2
	s := newTestServer(t, cfg)

	for round := 0; round < 3; round++ {
		sub := reads[round*100 : (round+1)*100]
		want := pipeline.Run(aln, sub, pipeline.Config{Threads: 2})
		w := post(s, "/align?header=0", "application/x-fastq", fastqBody(sub))
		if w.Code != 200 {
			t.Fatalf("round %d: status %d", round, w.Code)
		}
		if !bytes.Equal(w.Body.Bytes(), want.SAM) {
			t.Fatalf("round %d: SAM differs under eviction pressure", round)
		}
	}
	st := s.cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after 300 unique reads through a %d-byte cache", cfg.CacheBytes)
	}
	if st.Bytes > st.Capacity {
		t.Fatalf("resident %d bytes exceeds capacity %d", st.Bytes, st.Capacity)
	}
}

// TestCacheSingleFlightWithinRequest pins the single-flight path: with a
// long coalescing window and a request smaller than a batch, the first
// copy of each sequence is still parked in the coalescer when its
// duplicates are dispatched, so they must join its flight (coalesced)
// rather than lead or hit.
func TestCacheSingleFlightWithinRequest(t *testing.T) {
	aln, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.CoalesceLinger = 50 * time.Millisecond // leaders linger while dups dispatch
	s := newTestServer(t, cfg)

	sub := dupReads(reads[300:310], 4, "sf")
	want := pipeline.Run(aln, sub, pipeline.Config{Threads: 1})
	w := post(s, "/align?header=0", "application/x-fastq", fastqBody(sub))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatal("single-flighted SAM differs from pipeline.Run")
	}
	st := s.cache.Stats()
	if st.Coalesced == 0 {
		t.Errorf("no single-flight joins (hits=%d misses=%d coalesced=%d)",
			st.Hits, st.Misses, st.Coalesced)
	}
	if st.Misses != 10 {
		t.Errorf("misses = %d, want 10 (one leader per unique sequence)", st.Misses)
	}
}

// TestCacheLeaderAbortRetries cancels a leader request while a second
// request's duplicate is parked on its flight: the waiter must retry,
// become the new leader, and complete correctly — one caller's disconnect
// must never lose another caller's read.
func TestCacheLeaderAbortRetries(t *testing.T) {
	aln, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.CoalesceLinger = time.Hour // nothing flushes on its own
	s := newTestServer(t, cfg)

	one := []seq.Read{{Name: "victim", Seq: reads[0].Seq, Qual: reads[0].Qual}}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	aErr := make(chan error, 1)
	stA := newSAMStreamer(httptest.NewRecorder(), "", 1)
	go func() { aErr <- s.alignCached(ctxA, one, stA, nil) }()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		testutil.WaitUntil(t, 2*time.Second, cond, "timeout waiting for %s", what)
	}
	waitFor("A to lead", func() bool { return s.cache.Stats().Misses == 1 })

	// B: same sequence, different name, its own (live) context.
	two := []seq.Read{{Name: "survivor", Seq: reads[0].Seq, Qual: reads[0].Qual}}
	recB := httptest.NewRecorder()
	stB := newSAMStreamer(recB, "", 1)
	bErr := make(chan error, 1)
	go func() { bErr <- s.alignCached(context.Background(), two, stB, nil) }()
	waitFor("B to join A's flight", func() bool { return s.cache.Stats().Coalesced == 1 })

	// Cancel A: its pending leader is evicted, aborting the flight; B must
	// retry and become the new leader (a second miss).
	cancelA()
	if err := <-aErr; err != context.Canceled {
		t.Fatalf("A returned %v, want context.Canceled", err)
	}
	stA.CloseAndWait()
	waitFor("B to lead after abort", func() bool { return s.cache.Stats().Misses == 2 })

	// Flush the coalescer so B's retried read actually runs.
	s.coal.flushPartial()
	if err := <-bErr; err != nil {
		t.Fatalf("B returned %v", err)
	}
	stB.CloseAndWait()

	want := pipeline.Run(aln, two, pipeline.Config{Threads: 1})
	if !bytes.Equal(recB.Body.Bytes(), want.SAM) {
		t.Fatal("B's SAM differs after leader abort and retry")
	}
}

// TestCacheDisabled covers the cache-off path: responses stay correct and
// /metrics reports the cache as disabled without cache counters.
func TestCacheDisabled(t *testing.T) {
	aln, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.CacheEnabled = false
	s := newTestServer(t, cfg)

	sub := dupReads(reads[:10], 3, "off")
	want := pipeline.Run(aln, sub, pipeline.Config{Threads: 1})
	w := post(s, "/align?header=0", "application/x-fastq", fastqBody(sub))
	if w.Code != 200 || !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatalf("cache-off response wrong (status %d)", w.Code)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "bwaserve_cache_enabled 0") {
		t.Error("/metrics missing bwaserve_cache_enabled 0")
	}
	if strings.Contains(rec.Body.String(), "bwaserve_cache_hits_total") {
		t.Error("/metrics exposes cache counters while disabled")
	}
}

// TestCacheMetricsExposed checks every cache counter appears on /metrics
// and that hits/coalesced move under duplicate traffic.
func TestCacheMetricsExposed(t *testing.T) {
	_, reads, _, _ := setup(t)
	s := newTestServer(t, testConfig())

	sub := dupReads(reads[50:70], 5, "met")
	if w := post(s, "/align?header=0", "application/x-fastq", fastqBody(sub)); w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, field := range []string{
		"bwaserve_cache_enabled 1",
		"bwaserve_cache_hits_total",
		"bwaserve_cache_misses_total",
		"bwaserve_cache_coalesced_total",
		"bwaserve_cache_evictions_total",
		"bwaserve_cache_entries",
		"bwaserve_cache_resident_bytes",
		"bwaserve_cache_capacity_bytes",
	} {
		if !strings.Contains(body, field) {
			t.Errorf("/metrics missing %s", field)
		}
	}
	st := s.cache.Stats()
	if st.Hits+st.Coalesced == 0 {
		t.Error("80 duplicates of 20 sequences produced neither hits nor joins")
	}
	if st.Misses == 0 {
		t.Error("no misses recorded")
	}
}
