package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// get performs one GET against the server.
func get(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// bucketSeries is one histogram's cumulative buckets parsed back out of the
// Prometheus text exposition: upper bounds (seconds) paired with cumulative
// counts, plus the _count total.
type bucketSeries struct {
	le    []float64
	cum   []int64
	count int64
}

// parseBuckets extracts the series for one histogram family+label set from
// an exposition body, the way a Prometheus server would ingest it.
func parseBuckets(t *testing.T, body, family, labels string) bucketSeries {
	t.Helper()
	var bs bucketSeries
	bucketRe := regexp.MustCompile(`^` + regexp.QuoteMeta(family) + `_bucket\{` +
		regexp.QuoteMeta(labels) + `le="([^"]+)"\} (\d+)$`)
	for _, line := range strings.Split(body, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			le, err := strconv.ParseFloat(m[1], 64)
			if err != nil && m[1] != "+Inf" {
				t.Fatalf("bad le %q: %v", m[1], err)
			}
			if m[1] == "+Inf" {
				le = 1e308
			}
			n, _ := strconv.ParseInt(m[2], 10, 64)
			bs.le = append(bs.le, le)
			bs.cum = append(bs.cum, n)
		}
		if rest, ok := strings.CutPrefix(line, family+"_count"); ok {
			f := strings.Fields(rest)
			if labels == "" && rest != "" && rest[0] == ' ' ||
				labels != "" && strings.Contains(rest, labels[:len(labels)-1]) {
				bs.count, _ = strconv.ParseInt(f[len(f)-1], 10, 64)
			}
		}
	}
	if !sort.Float64sAreSorted(bs.le) {
		t.Fatalf("%s buckets not sorted: %v", family, bs.le)
	}
	return bs
}

// quantile computes histogram_quantile the way PromQL does over an instant
// vector: find the first bucket whose cumulative count reaches q*count.
// The interpolation detail doesn't matter here — the test asserts bracket
// membership, not exact values.
func (bs bucketSeries) quantile(q float64) float64 {
	if bs.count == 0 {
		return 0
	}
	rank := q * float64(bs.count)
	for i, c := range bs.cum {
		if float64(c) >= rank {
			return bs.le[i]
		}
	}
	return bs.le[len(bs.le)-1]
}

// TestMetricsLatencyHistograms is the tentpole acceptance test: after real
// traffic, /v1/metrics exposes _bucket/_sum/_count series for the request,
// queue-wait, and per-stage kernel histograms, and a p99 derived from the
// buckets the way histogram_quantile would brackets the observed latencies.
func TestMetricsLatencyHistograms(t *testing.T) {
	_, reads, r1, r2 := setup(t)
	cfg := testConfig()
	cfg.CacheEnabled = false
	s := newTestServer(t, cfg)

	const n = 12
	for i := 0; i < n; i++ {
		if w := post(s, "/v1/align?header=0", "application/x-fastq", fastqBody(reads[:20])); w.Code != http.StatusOK {
			t.Fatalf("align %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	var pairBody bytes.Buffer
	pairBody.WriteString(`{"reads1":[`)
	pairBody.WriteString(fmt.Sprintf(`{"name":%q,"seq":%q}`, r1[0].Name, r1[0].Seq))
	pairBody.WriteString(`],"reads2":[`)
	pairBody.WriteString(fmt.Sprintf(`{"name":%q,"seq":%q}`, r2[0].Name, r2[0].Seq))
	pairBody.WriteString(`]}`)
	if w := post(s, "/v1/align/paired?header=0", "application/json", &pairBody); w.Code != http.StatusOK {
		t.Fatalf("paired: status %d: %s", w.Code, w.Body.String())
	}

	body := get(s, "/v1/metrics").Body.String()
	for _, family := range []string{
		"bwaserve_request_seconds",
		"bwaserve_queue_wait_seconds",
		"bwaserve_admission_wait_seconds",
		"bwaserve_ttfb_seconds",
		"bwaserve_stage_task_seconds",
	} {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if !strings.Contains(body, family+suffix) {
				t.Errorf("metrics missing %s%s series", family, suffix)
			}
		}
	}

	bs := parseBuckets(t, body, "bwaserve_request_seconds", `kind="single",`)
	if bs.count != n {
		t.Fatalf("request histogram count = %d, want %d", bs.count, n)
	}
	if last := bs.cum[len(bs.cum)-1]; last != bs.count {
		t.Fatalf("+Inf bucket %d != count %d", last, bs.count)
	}
	p50, p99 := bs.quantile(0.50), bs.quantile(0.99)
	if p99 <= 0 || p99 >= 1e308 {
		t.Fatalf("p99 = %g, want a finite positive bucket bound", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}

	// Stage histograms saw real kernel tasks: SMEM runs on every batch.
	smem := parseBuckets(t, body, "bwaserve_stage_task_seconds", `stage="SMEM",`)
	if smem.count == 0 {
		t.Fatal("SMEM stage histogram recorded no tasks")
	}
	qw := parseBuckets(t, body, "bwaserve_queue_wait_seconds", "")
	if qw.count == 0 {
		t.Fatal("queue-wait histogram recorded no reads")
	}
}

// TestServerTimingHeader checks the per-request span surfaces as a
// Server-Timing header on align responses, committed with the first body
// byte: parse and admit always, ttfb always, cache only when the result
// cache ran the request.
func TestServerTimingHeader(t *testing.T) {
	_, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.CacheEnabled = true
	s := newTestServer(t, cfg)

	w := post(s, "/v1/align?header=0", "application/x-fastq", fastqBody(reads[:8]))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	st := w.Header().Get("Server-Timing")
	if st == "" {
		t.Fatal("align response has no Server-Timing header")
	}
	for _, phase := range []string{"parse;dur=", "admit;dur=", "cache;dur=", "ttfb;dur="} {
		if !strings.Contains(st, phase) {
			t.Errorf("Server-Timing %q missing %q", st, phase)
		}
	}

	// Non-align routes carry no timing header.
	if got := get(s, "/v1/healthz").Header().Get("Server-Timing"); got != "" {
		t.Fatalf("healthz unexpectedly has Server-Timing %q", got)
	}
}

// TestDebugRequests checks the flag-gated trace ring endpoint: 404 with a
// typed envelope when disabled (the default), and recent/slowest trace
// lists with per-phase timings once enabled.
func TestDebugRequests(t *testing.T) {
	_, reads, _, _ := setup(t)

	t.Run("disabled", func(t *testing.T) {
		s := newTestServer(t, testConfig())
		w := get(s, "/v1/debug/requests")
		if w.Code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", w.Code)
		}
		var env struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Code != "not_found" {
			t.Fatalf("envelope %s (err %v), want code not_found", w.Body.String(), err)
		}
	})

	t.Run("enabled", func(t *testing.T) {
		cfg := testConfig()
		cfg.DebugRequestTraces = 4
		s := newTestServer(t, cfg)
		for i := 0; i < 6; i++ {
			if w := post(s, "/v1/align?header=0", "application/x-fastq", fastqBody(reads[:5])); w.Code != http.StatusOK {
				t.Fatalf("align %d: status %d", i, w.Code)
			}
		}
		get(s, "/v1/metrics") // must NOT enter the ring

		w := get(s, "/v1/debug/requests")
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp debugRequestsResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Capacity != 4 {
			t.Fatalf("capacity %d, want 4", resp.Capacity)
		}
		if len(resp.Recent) != 4 || len(resp.Slowest) != 4 {
			t.Fatalf("recent %d slowest %d, want 4 each (ring holds last N of 6)", len(resp.Recent), len(resp.Slowest))
		}
		for _, tr := range resp.Recent {
			if tr.Route != "/v1/align" {
				t.Fatalf("non-align route %q leaked into the trace ring", tr.Route)
			}
			if tr.RequestID == "" || tr.Status != http.StatusOK || tr.Reads != 5 || tr.Seconds <= 0 {
				t.Fatalf("incomplete trace %+v", tr)
			}
			names := make(map[string]bool)
			for _, p := range tr.Phases {
				names[p.Name] = true
			}
			for _, want := range []string{"parse", "admit", "align", "ttfb"} {
				if !names[want] {
					t.Fatalf("trace phases %v missing %q", tr.Phases, want)
				}
			}
		}
		for i := 1; i < len(resp.Slowest); i++ {
			if resp.Slowest[i].Seconds > resp.Slowest[i-1].Seconds {
				t.Fatal("slowest list not sorted slowest-first")
			}
		}
	})
}

// TestStructuredAccessLog checks SetLogger produces one JSON event per
// request with the fields log pipelines key on.
func TestStructuredAccessLog(t *testing.T) {
	_, reads, _, _ := setup(t)
	s := newTestServer(t, testConfig())
	var buf bytes.Buffer
	s.SetLogger(obs.NewLogger(&buf, obs.FormatJSON, obs.LevelInfo))

	if w := post(s, "/v1/align?header=0", "application/x-fastq", fastqBody(reads[:3])); w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	s.SetLogger(nil)
	get(s, "/v1/healthz") // after SetLogger(nil): must not log

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %q", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("log line is not JSON: %v: %s", err, lines[0])
	}
	if ev["msg"] != "request" || ev["level"] != "info" {
		t.Fatalf("unexpected event %v", ev)
	}
	if ev["route"] != "/v1/align" || ev["reads"] != float64(3) || ev["status"] != float64(200) {
		t.Fatalf("bad fields in %v", ev)
	}
	if id, _ := ev["request_id"].(string); id == "" {
		t.Fatalf("missing request_id in %v", ev)
	}
	if d, _ := ev["duration_seconds"].(float64); d <= 0 {
		t.Fatalf("missing duration_seconds in %v", ev)
	}
}

// TestMetricsREADMEDocDrift locks README.md's /metrics reference table to
// the live exposition, both directions: every metric the server emits has
// a documented row, and every documented row is still emitted. Histogram
// series normalize to their family name (the row documents the family).
func TestMetricsREADMEDocDrift(t *testing.T) {
	_, reads, r1, r2 := setup(t)
	cfg := testConfig()
	cfg.CacheEnabled = true // cache block emits only when enabled
	s := newTestServer(t, cfg)
	s.SetIndexInfo(IndexInfo{Source: "synthetic-build"}) // index_source emits only when labeled

	// Drive both align routes so every family has meaning (presence does
	// not depend on traffic, but keep the test honest about a live server).
	if w := post(s, "/v1/align?header=0", "application/x-fastq", fastqBody(reads[:5])); w.Code != http.StatusOK {
		t.Fatalf("align: %d", w.Code)
	}
	var pb bytes.Buffer
	fmt.Fprintf(&pb, `{"reads1":[{"name":%q,"seq":%q}],"reads2":[{"name":%q,"seq":%q}]}`,
		r1[0].Name, r1[0].Seq, r2[0].Name, r2[0].Seq)
	if w := post(s, "/v1/align/paired?header=0", "application/json", &pb); w.Code != http.StatusOK {
		t.Fatalf("paired: %d", w.Code)
	}

	live := liveMetricFamilies(t, get(s, "/v1/metrics").Body.String())
	documented := readmeMetricFamilies(t)

	for name := range live {
		if !documented[name] {
			t.Errorf("metric %s is served but missing from README.md's /metrics reference table", name)
		}
	}
	for name := range documented {
		if !live[name] {
			t.Errorf("README.md documents %s but /v1/metrics does not serve it", name)
		}
	}
}

// liveMetricFamilies parses an exposition body into the set of metric
// family names, folding histogram _bucket/_sum/_count series into their
// family.
func liveMetricFamilies(t *testing.T, body string) map[string]bool {
	t.Helper()
	raw := make(map[string]bool)
	hist := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		if fam, ok := strings.CutSuffix(name, "_bucket"); ok && strings.Contains(line, `le="`) {
			hist[fam] = true
			continue
		}
		raw[name] = true
	}
	out := make(map[string]bool)
	for name := range raw {
		fam, isSum := strings.CutSuffix(name, "_sum")
		if !isSum {
			fam, _ = strings.CutSuffix(name, "_count")
		}
		if hist[fam] {
			out[fam] = true // histogram helper series collapse to the family
			continue
		}
		out[name] = true
	}
	for fam := range hist {
		out[fam] = true
	}
	return out
}

// readmeMetricFamilies extracts the metric names documented in README.md's
// /metrics reference table (rows of the form "| `bwaserve_...` | ...").
func readmeMetricFamilies(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile("^\\| `(bwaserve_[a-z0-9_]+)[`{]")
	out := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if m := rowRe.FindStringSubmatch(line); m != nil {
			out[m[1]] = true
		}
	}
	if len(out) == 0 {
		t.Fatal("found no metric rows in README.md — did the table move?")
	}
	return out
}
