package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/counters"
	"repro/internal/obs"
)

// This file is the server's observability plane: the latency histograms
// exposed on /v1/metrics, the per-request span threaded through the
// handler path (Server-Timing header, trace ring), the response wrapper
// that captures status and bytes for access logs, and the flag-gated
// GET /v1/debug/requests endpoint. The recording layer itself lives in
// internal/obs; everything here is wiring.

// serverHists is the fixed set of latency histograms, one per stop along
// the request path. All recording is atomic (obs.Histogram); the struct is
// allocated once per Server and shared by every request.
type serverHists struct {
	reqSingle obs.Histogram // end-to-end handler time, POST /v1/align
	reqPaired obs.Histogram // end-to-end handler time, POST /v1/align/paired
	reqOther  obs.Histogram // end-to-end handler time, everything else

	admissionWait obs.Histogram // time inside the admission gate (lock contention)
	cacheLookup   obs.Histogram // per-request result-cache classify pass
	queueWait     obs.Histogram // per-read coalescer wait: enqueue -> batch runs
	ttfb          obs.Histogram // request start -> first response byte

	stage [counters.NumStages]obs.Histogram // per-task kernel stage time
}

// write emits every histogram in Prometheus text exposition format. Names
// here are wire contract: README.md's metrics table and the doc-drift test
// list the same families.
func (h *serverHists) write(w io.Writer) error {
	if err := h.reqSingle.Write(w, "bwaserve_request_seconds", `kind="single"`); err != nil {
		return err
	}
	if err := h.reqPaired.Write(w, "bwaserve_request_seconds", `kind="paired"`); err != nil {
		return err
	}
	if err := h.reqOther.Write(w, "bwaserve_request_seconds", `kind="other"`); err != nil {
		return err
	}
	if err := h.admissionWait.Write(w, "bwaserve_admission_wait_seconds", ""); err != nil {
		return err
	}
	if err := h.cacheLookup.Write(w, "bwaserve_cache_lookup_seconds", ""); err != nil {
		return err
	}
	if err := h.queueWait.Write(w, "bwaserve_queue_wait_seconds", ""); err != nil {
		return err
	}
	if err := h.ttfb.Write(w, "bwaserve_ttfb_seconds", ""); err != nil {
		return err
	}
	for _, st := range counters.Stages() {
		if err := h.stage[st].Write(w, "bwaserve_stage_task_seconds",
			fmt.Sprintf("stage=%q", st.String())); err != nil {
			return err
		}
	}
	return nil
}

// reqInfo is the per-request observability record threaded through the
// handler via the request context: identity for logs, the span accumulating
// the request's phase timeline, and the fields the handler fills in as it
// learns them (kind from the route, reads after parsing). kind and reads
// are only touched on the handler goroutine; the span is internally locked
// and may be marked from the streamer's writer goroutine.
type reqInfo struct {
	id    string
	route string // canonical route path ("" for the 404 catch-all)
	kind  string // "single", "paired", or "" for non-align routes
	reads int    // reads accepted for alignment (pairs count 2)
	span  *obs.Span
}

const reqInfoKey ctxKey = 1

// reqInfoFrom returns the request's observability record (nil outside an
// instrumented request, e.g. in tests that call handlers directly).
func reqInfoFrom(r *http.Request) *reqInfo {
	info, _ := r.Context().Value(reqInfoKey).(*reqInfo)
	return info
}

// Span returns the request's span (nil, which records nothing, for a nil
// record) so handlers can instrument unconditionally.
func (info *reqInfo) Span() *obs.Span {
	if info == nil {
		return nil
	}
	return info.span
}

// setReads records the request's accepted read count (no-op on nil).
func (info *reqInfo) setReads(n int) {
	if info != nil {
		info.reads = n
	}
}

// routeKind maps a canonical route to its request-histogram kind.
func routeKind(route string) string {
	switch route {
	case "/v1/align":
		return "single"
	case "/v1/align/paired":
		return "paired"
	}
	return ""
}

// statusWriter wraps the ResponseWriter to capture the committed status
// and body bytes for the access log and trace ring. It always implements
// http.Flusher (delegating when the underlying writer can flush) so the
// SAM streamer's flush detection keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	flusher http.Flusher
	status  int
	bytes   int64
}

func newStatusWriter(w http.ResponseWriter) *statusWriter {
	sw := &statusWriter{ResponseWriter: w}
	if f, ok := w.(http.Flusher); ok {
		sw.flusher = f
	}
	return sw
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// observeRequest closes out one instrumented request: the end-to-end
// latency histogram, the trace ring (align routes only — metric scrapes
// and health probes would drown the "recent" list), and the structured
// access log. Runs deferred from the route wrapper, so it records even
// when the handler aborts the connection mid-stream.
func (s *Server) observeRequest(sw *statusWriter, info *reqInfo) {
	d := time.Since(info.span.Start())
	switch info.kind {
	case "single":
		s.hists.reqSingle.Observe(d)
	case "paired":
		s.hists.reqPaired.Observe(d)
	default:
		s.hists.reqOther.Observe(d)
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK // handler wrote nothing; net/http will commit 200
	}
	if info.kind != "" {
		s.ring.Add(obs.Trace{
			RequestID: info.id,
			Route:     info.route,
			Status:    status,
			Reads:     info.reads,
			BytesOut:  sw.bytes,
			Start:     info.span.Start(),
			Seconds:   d.Seconds(),
			Phases:    info.span.Phases(),
		})
	}
	if l := s.logger.Load(); l != nil {
		l.Info("request",
			"request_id", info.id,
			"route", info.route,
			"status", status,
			"reads", info.reads,
			"duration_seconds", d.Seconds(),
			"bytes_out", sw.bytes,
		)
	}
}

// SetLogger installs the structured access/event logger (obs.Logger). nil
// disables structured logging, the default. Independent of the legacy
// SetLogf printf hook; both may be active. Safe to call concurrently with
// serving.
func (s *Server) SetLogger(l *obs.Logger) {
	if l == nil {
		s.logger.Store(nil)
		return
	}
	s.logger.Store(l)
}

// debugRequestsResponse is the wire form of GET /v1/debug/requests.
type debugRequestsResponse struct {
	Capacity int         `json:"capacity"`
	Recent   []obs.Trace `json:"recent"`
	Slowest  []obs.Trace `json:"slowest"`
}

// handleDebugRequests serves GET /v1/debug/requests: the N most recent and
// N slowest request timelines, for tail-latency investigations. The route
// is always registered (the wire surface is static) but answers 404 until
// the deployment opts in with ServerConfig.DebugRequestTraces > 0
// (bwaserve -debug-requests).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		s.apiError(w, r, http.StatusNotFound, codeNotFound,
			"request tracing is disabled (set DebugRequestTraces > 0 / bwaserve -debug-requests)")
		return
	}
	recent, slowest := s.ring.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(debugRequestsResponse{Capacity: s.ring.Capacity(), Recent: recent, Slowest: slowest})
}
