package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/datasets"
	"repro/internal/seq"
)

// BenchmarkAlignDuplication measures served-reads/sec on the /align path
// at 0%, 50%, and 90% read duplication — the PCR/optical-duplicate rates
// real sequencing traffic spans — with the result cache off and on. The
// cache-off rows are the floor (every copy runs the full pipeline); the
// cache-on rows show duplicate copies being served from cached regions.
// Unique sequences are never reused across iterations, so the 0% rows
// measure pure pipeline throughput plus cache bookkeeping overhead.
//
//	go test ./internal/server/ -bench=Duplication -benchtime=10x
func BenchmarkAlignDuplication(b *testing.B) {
	aln, _, _, _ := setup(b)
	const perRequest = 500
	pool := newReadPool(aln.Ref)

	for _, dupPct := range []int{0, 50, 90} {
		for _, cacheOn := range []bool{false, true} {
			name := fmt.Sprintf("dup=%d%%/cache=%v", dupPct, cacheOn)
			b.Run(name, func(b *testing.B) {
				cfg := testConfig()
				cfg.CacheEnabled = cacheOn
				s := newTestServer(b, cfg)
				unique := perRequest * (100 - dupPct) / 100
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					body := dupRequestBody(b, pool, unique, perRequest)
					req := httptest.NewRequest(http.MethodPost, "/align?header=0", body)
					w := httptest.NewRecorder()
					b.StartTimer()
					s.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("status %d: %s", w.Code, w.Body.String())
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(perRequest*b.N)/b.Elapsed().Seconds(), "reads/s")
			})
		}
	}
}

// readPool hands out simulated reads that are unique for the life of the
// benchmark, refilling from the reference with a fresh seed whenever a
// batch is exhausted — so cross-iteration cache hits can't flatter the
// numbers.
type readPool struct {
	ref   *seq.Reference
	reads []seq.Read
	next  int
	seed  int64
}

func newReadPool(ref *seq.Reference) *readPool { return &readPool{ref: ref, seed: 1000} }

func (p *readPool) take(tb testing.TB, n int) []seq.Read {
	for len(p.reads)-p.next < n {
		prof := datasets.D4
		prof.Seed = p.seed
		p.seed++
		more, err := datasets.Simulate(p.ref, prof)
		if err != nil {
			tb.Fatal(err)
		}
		p.reads = append(p.reads[p.next:], more...)
		p.next = 0
	}
	out := p.reads[p.next : p.next+n]
	p.next += n
	return out
}

// dupRequestBody builds one FASTQ request of total reads of which unique
// are fresh sequences and the rest duplicate them round-robin under
// distinct names, duplicates spread across the request.
func dupRequestBody(tb testing.TB, pool *readPool, unique, total int) *bytes.Buffer {
	base := pool.take(tb, unique)
	reads := make([]seq.Read, 0, total)
	reads = append(reads, base...)
	for i := len(reads); i < total; i++ {
		src := base[i%len(base)]
		reads = append(reads, seq.Read{
			Name: fmt.Sprintf("%s.dup%d", src.Name, i),
			Seq:  src.Seq,
			Qual: src.Qual,
		})
	}
	var buf bytes.Buffer
	seq.WriteFastq(&buf, reads)
	return &buf
}
