package server

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestMmapIndexByteIdenticalSAM is the correctness gate for mmap-backed
// index loading at the service level: a server over an mmap'd v2 index must
// produce byte-identical SAM to a server over the same reference loaded
// through the legacy v1 heap path.
func TestMmapIndexByteIdenticalSAM(t *testing.T) {
	aln, reads, _, _ := setup(t)
	pi, err := core.BuildPrebuilt(aln.Ref)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "ref.v1.bwago")
	v2Path := filepath.Join(dir, "ref.bwago")
	writeIndex := func(path string, write func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeIndex(v1Path, func(f *os.File) error { return pi.WriteIndex(f) })
	writeIndex(v2Path, func(f *os.File) error { return pi.WriteIndexV2(f) })

	f, err := os.Open(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	heapPI, err := core.ReadIndex(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	heapAln, err := core.NewAlignerFrom(heapPI, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	mi, err := core.OpenIndexMmap(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	// Registered before the servers' cleanups: t.Cleanup runs LIFO, so both
	// servers drain their schedulers before the mapping goes away — the
	// lifetime contract bwaserve follows.
	t.Cleanup(func() { mi.Close() })
	mmapAln, err := core.NewAlignerFrom(&mi.Prebuilt, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	newServer := func(a *core.Aligner, info IndexInfo) *Server {
		s, err := New(a, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.SetIndexInfo(info)
		t.Cleanup(func() { s.Close() })
		return s
	}
	heapSrv := newServer(heapAln, IndexInfo{Source: "v1-heap"})
	mmapSrv := newServer(mmapAln, IndexInfo{Source: "v2-mmap", Mmap: true, ResidentBytes: mi.MappedBytes()})

	wantResp := post(heapSrv, "/align", "", fastqBody(reads[:150]))
	if wantResp.Code != http.StatusOK {
		t.Fatalf("heap server: status %d: %s", wantResp.Code, wantResp.Body.String())
	}
	// Two rounds against the mmap server so the second exercises the result
	// cache over mapped regions as well.
	for round := 0; round < 2; round++ {
		got := post(mmapSrv, "/align", "", fastqBody(reads[:150]))
		if got.Code != http.StatusOK {
			t.Fatalf("mmap server round %d: status %d: %s", round, got.Code, got.Body.String())
		}
		if got.Body.String() != wantResp.Body.String() {
			t.Fatalf("round %d: mmap-served SAM differs from v1-heap-served SAM (%d vs %d bytes)",
				round, got.Body.Len(), wantResp.Body.Len())
		}
	}
}
