// Package server is the long-lived alignment service layer: it loads the
// reference and FM-index once, keeps them resident, and serves alignment
// requests over HTTP by multiplexing them onto the paper's batch-staged
// pipeline (internal/pipeline.Scheduler).
//
// The request path is: HTTP handler → incremental body decode (per-read
// validation and the request read cap apply while the body streams in) →
// admission control (bounded in-flight reads, immediate 429 under
// overload) → result cache (single-end duplicates served from cached
// regions, concurrent duplicates single-flighted; internal/rescache) →
// cross-request batch coalescer → shared worker pool with per-worker
// reusable scratch → per-read SAM records streamed back to each caller in
// input order, chunk by chunk as batches complete and immediately for
// cache hits. Responses are byte-identical to a one-shot pipeline.Run /
// RunPaired over the same reads, which is the subsystem's correctness
// contract and is enforced by tests. ARCHITECTURE.md (repo root) walks the
// whole path with a data-flow diagram.
//
// Every request's alignment work runs under its own context — the client's
// connection context bounded by ServerConfig.RequestTimeout. When it ends
// (disconnect or deadline), batches not yet started are dropped from the
// queue, reads still waiting in the coalescer are evicted unaligned, and
// the request's admission budget is released as soon as its already-running
// batches finish.
//
// Endpoints (canonical /v1 paths; the unversioned originals are permanent
// aliases — see api.go for the wire contract):
//
//	POST /v1/align          single-end reads (raw FASTQ, or JSON {"reads":[...]})
//	POST /v1/align/paired   pairs (interleaved FASTQ, or JSON {"reads1":[...],"reads2":[...]})
//	GET  /v1/healthz        liveness + load summary (JSON)
//	GET  /v1/metrics        Prometheus text: request counters + per-stage kernel seconds
//
// SAM responses include the @SQ/@PG header by default; ?header=0 returns
// records only. Every response carries X-Request-Id, and every error
// response is a typed JSON envelope {"code","message","request_id"}.
//
// # Concurrency contract
//
// A Server's exported surface (ServeHTTP, Handler, Config, Shutdown,
// Close) is safe for concurrent use; the HTTP library calls the handlers
// from one goroutine per request. Internally each layer has a narrower
// contract, stated on its type: admission is a mutex-guarded semaphore;
// the coalescer may be fed from any number of request goroutines while
// batch workers drain it; samStreamer.Complete may be called from many
// workers but all socket writes happen on the request-owned writer
// goroutine; rescache is fully concurrent with per-shard locking. Emit
// and completion callbacks handed to the coalescer and cache run on
// pipeline-worker goroutines (or the resolving goroutine, for flight
// aborts) and must not block on the client — that is the streamer's job.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rescache"
)

// Server is one alignment service instance over one resident index. Create
// with New, expose via Handler, stop with Shutdown (drains) or Close.
type Server struct {
	cfg         core.ServerConfig
	bodyLimit   int64
	samHeader   string // constant for the server's lifetime; built once
	sched       *pipeline.Scheduler
	coal        *coalescer
	adm         *admission
	met         *metrics
	cache       *rescache.Cache // single-end result cache; nil when disabled
	optFP       uint64          // option fingerprint for cache keys
	renderSlots chan struct{}   // bounds concurrent off-worker hit renders (cache.go)
	mux         *http.ServeMux
	idxInfo     IndexInfo // how the index was loaded; set before serving

	hists *serverHists   // latency histograms, shared by all requests (obs.go)
	ring  *obs.TraceRing // request-trace ring for /v1/debug/requests; nil when disabled

	logFn     atomic.Pointer[func(format string, args ...any)]
	logger    atomic.Pointer[obs.Logger] // structured access/event logger; nil = off
	drainFlag atomic.Bool
	closed    atomic.Bool
}

// New builds a Server over an already-constructed aligner (the index stays
// resident for the server's lifetime). cfg zero values resolve to
// defaults. cfg.Mode is an aligner-construction knob for callers like
// cmd/bwaserve; the server itself always follows the aligner it was given,
// so New overwrites cfg.Mode with aln.Mode rather than trusting the
// config (a zero ServerConfig would otherwise silently claim
// ModeBaseline).
func New(aln *core.Aligner, cfg core.ServerConfig) (*Server, error) {
	cfg.Mode = aln.Mode
	if err := cfg.Normalize(runtime.NumCPU()); err != nil {
		return nil, err
	}
	sched := pipeline.NewScheduler(aln, cfg.Threads)
	s := &Server{
		cfg:       cfg,
		bodyLimit: requestBodyLimit(cfg.MaxReadsPerRequest, cfg.MaxReadLen),
		samHeader: aln.SAMHeader(),
		sched:     sched,
		coal:      newCoalescer(sched, cfg.BatchSize, cfg.CoalesceLinger),
		adm:       newAdmission(cfg.MaxInFlightReads),
		met:       newMetrics(),
		mux:       http.NewServeMux(),
		hists:     &serverHists{},
	}
	// Per-task kernel stage time flows from the worker loop into the stage
	// histograms; the scheduler's cumulative AtomicClock keeps feeding the
	// existing bwaserve_stage_seconds counters independently.
	sched.SetStageObserver(func(st counters.Stage, d time.Duration) {
		s.hists.stage[st].Observe(d)
	})
	// Per-read coalescer queue wait (enqueue to batch start).
	s.coal.onQueueWait = s.hists.queueWait.Observe
	if cfg.DebugRequestTraces > 0 {
		s.ring = obs.NewTraceRing(cfg.DebugRequestTraces)
	}
	if cfg.CacheEnabled {
		s.cache = rescache.New(rescache.Config{Capacity: cfg.CacheBytes, Shards: cfg.CacheShards})
		s.optFP = aln.Opts.Fingerprint(aln.Mode)
		s.renderSlots = make(chan struct{}, 4*cfg.Threads)
	}
	s.registerRoutes()
	return s, nil
}

// IndexInfo describes how the resident index came to be, for /metrics:
// deployments watching a fleet want to see which processes mmap a shared
// page-cached index versus pay a private heap copy, and what start-up cost
// the load added.
type IndexInfo struct {
	// Source labels the load path: "v2-mmap", "v2-heap", "v1-heap",
	// "fasta-build", "synthetic-build", ...
	Source string
	// Mmap is true when the index aliases a shared read-only file mapping.
	Mmap bool
	// LoadTime is the wall time from opening the index source to a ready
	// aligner (index build time, for sources built in memory).
	LoadTime time.Duration
	// ResidentBytes is the index data footprint: private heap bytes for a
	// heap load, or the mapped file size (file-backed, shared across
	// processes) for an mmap load.
	ResidentBytes int64
}

// SetIndexInfo records how the index was loaded. Call it once, before the
// server starts handling requests; it is not synchronized with handlers.
func (s *Server) SetIndexInfo(info IndexInfo) { s.idxInfo = info }

// Config returns the resolved deployment configuration.
func (s *Server) Config() core.ServerConfig { return s.cfg }

// Handler returns the HTTP entry point (also available as s itself).
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// requestContext derives the per-request alignment context: the client's
// own context (so a disconnect cancels the request's queued work and frees
// its admission budget) bounded by cfg.RequestTimeout when one is set.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

func (s *Server) draining() bool { return s.drainFlag.Load() }

// Shutdown drains gracefully: new work is rejected with 503 while admitted
// requests run to completion, then the coalescer flushes and the worker
// pool stops. It returns an error if in-flight work outlives the context
// deadline (or cfg.DrainTimeout when the context has none); the pool is
// left running in that case so stragglers stay safe, and Shutdown may be
// called again.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainFlag.Store(true)
	s.adm.SetDraining()
	// Flush the coalescer's lingering partial batch now: admitted requests
	// may be waiting on it, and the coalescing window can legitimately be
	// configured longer than the drain timeout.
	s.coal.SetDraining()
	start := time.Now()
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(s.cfg.DrainTimeout)
	}
	if !s.adm.WaitIdle(ctx, deadline) {
		return fmt.Errorf("server: %d reads still in flight after waiting %v to drain",
			s.adm.InFlight(), time.Since(start).Round(time.Millisecond))
	}
	if s.closed.CompareAndSwap(false, true) {
		s.coal.Close()
		s.sched.Close()
	}
	return nil
}

// Close is Shutdown with the configured drain timeout.
func (s *Server) Close() error {
	//bwalint:ignore ctxflow shutdown drain deliberately outlives any request context
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}
