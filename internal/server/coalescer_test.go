package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/testutil"
)

// lingerTimerArmed snapshots whether a linger flush is pending.
func lingerTimerArmed(c *coalescer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timer != nil
}

// TestCoalescerStopsLingerTimerOnClose is the regression test for the
// linger-timer leak: Close (and SetDraining) used to leave the AfterFunc
// callback pending, so a shut-down server still had a timer scheduled.
func TestCoalescerStopsLingerTimerOnClose(t *testing.T) {
	aln, reads, _, _ := setup(t)
	sched := pipeline.NewScheduler(aln, 1)
	defer sched.Close()
	c := newCoalescer(sched, 64, time.Hour)

	var emitted atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- c.Align(context.Background(), reads[:3], func(int, []byte) { emitted.Add(1) })
	}()
	// The sub-batch request arms the linger timer and parks.
	testutil.WaitUntil(t, 10*time.Second, func() bool { return lingerTimerArmed(c) },
		"linger timer never armed")

	c.Close() // flushes the parked partial batch and must stop the timer
	if err := <-done; err != nil {
		t.Fatalf("parked Align after Close: %v", err)
	}
	if emitted.Load() != 3 {
		t.Fatalf("flushed %d of 3 records", emitted.Load())
	}
	if lingerTimerArmed(c) {
		t.Fatal("linger timer leaked past Close")
	}
}

// TestCoalescerStopsLingerTimerOnDrain: SetDraining has the same
// obligation as Close.
func TestCoalescerStopsLingerTimerOnDrain(t *testing.T) {
	aln, reads, _, _ := setup(t)
	sched := pipeline.NewScheduler(aln, 1)
	defer sched.Close()
	c := newCoalescer(sched, 64, time.Hour)

	done := make(chan error, 1)
	go func() {
		done <- c.Align(context.Background(), reads[:2], func(int, []byte) {})
	}()
	testutil.WaitUntil(t, 10*time.Second, func() bool { return lingerTimerArmed(c) },
		"linger timer never armed")
	c.SetDraining()
	if err := <-done; err != nil {
		t.Fatalf("parked Align after SetDraining: %v", err)
	}
	if lingerTimerArmed(c) {
		t.Fatal("linger timer leaked past SetDraining")
	}
	c.Close()
}
