package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/pkg/bwaclient"
)

// decodeEnvelope parses and sanity-checks a typed error response: JSON
// content type, well-formed envelope, request_id matching the header.
func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder) errorEnvelope {
	t.Helper()
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type = %q, want application/json", ct)
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("error body is not a JSON envelope: %v (%q)", err, w.Body.String())
	}
	if env.Code == "" || env.Message == "" {
		t.Fatalf("envelope incomplete: %+v", env)
	}
	if env.RequestID == "" || env.RequestID != w.Header().Get("X-Request-Id") {
		t.Fatalf("envelope request_id %q != X-Request-Id header %q",
			env.RequestID, w.Header().Get("X-Request-Id"))
	}
	return env
}

// TestContentNegotiationAndEnvelopes is the wire-contract table: method,
// Content-Type, and body shape against expected status and error code, on
// both the /v1 and legacy path families.
func TestContentNegotiationAndEnvelopes(t *testing.T) {
	s := newTestServer(t, testConfig())
	_, reads, _, _ := setup(t)
	fastq := fastqBody(reads[:2]).String()

	cases := []struct {
		name     string
		method   string
		path     string
		ct       string
		body     string
		wantCode int
		wantErr  string // expected envelope code; "" = success (no envelope)
	}{
		{"fastq no content type", http.MethodPost, "/align", "", fastq, http.StatusOK, ""},
		{"fastq text/plain", http.MethodPost, "/align", "text/plain", fastq, http.StatusOK, ""},
		{"fastq x-fastq", http.MethodPost, "/align", "application/x-fastq", fastq, http.StatusOK, ""},
		{"fastq text/x-fastq", http.MethodPost, "/align", "text/x-fastq; charset=utf-8", fastq, http.StatusOK, ""},
		{"fastq octet-stream", http.MethodPost, "/align", "application/octet-stream", fastq, http.StatusOK, ""},
		{"json", http.MethodPost, "/align", "application/json",
			`{"reads":[{"name":"r1","seq":"ACGTACGTACGTACGTACGT"}]}`, http.StatusOK, ""},
		{"json suffix type", http.MethodPost, "/align", "application/vnd.bwa+json",
			`{"reads":[{"name":"r1","seq":"ACGTACGTACGTACGTACGT"}]}`, http.StatusOK, ""},

		{"GET align", http.MethodGet, "/align", "", "", http.StatusMethodNotAllowed, codeMethodNotAllowed},
		{"PUT align", http.MethodPut, "/align", "", fastq, http.StatusMethodNotAllowed, codeMethodNotAllowed},
		{"DELETE paired", http.MethodDelete, "/align/paired", "", "", http.StatusMethodNotAllowed, codeMethodNotAllowed},
		{"POST healthz", http.MethodPost, "/healthz", "", "", http.StatusMethodNotAllowed, codeMethodNotAllowed},
		{"POST metrics", http.MethodPost, "/metrics", "", "", http.StatusMethodNotAllowed, codeMethodNotAllowed},

		{"xml body", http.MethodPost, "/align", "application/xml", "<reads/>", http.StatusUnsupportedMediaType, codeUnsupportedMedia},
		{"form body", http.MethodPost, "/align", "application/x-www-form-urlencoded", "reads=x", http.StatusUnsupportedMediaType, codeUnsupportedMedia},
		{"garbage content type", http.MethodPost, "/align", "n;o;t/valid;;", "x", http.StatusUnsupportedMediaType, codeUnsupportedMedia},
		{"xml paired", http.MethodPost, "/align/paired", "text/xml", "<reads/>", http.StatusUnsupportedMediaType, codeUnsupportedMedia},

		{"garbage fastq", http.MethodPost, "/align", "", "not fastq", http.StatusBadRequest, codeBadRequest},
		{"empty read set", http.MethodPost, "/align", "application/json", `{"reads":[]}`, http.StatusBadRequest, codeBadRequest},
		{"empty seq", http.MethodPost, "/align", "application/json", `{"reads":[{"name":"x","seq":""}]}`, http.StatusBadRequest, codeBadRequest},
		{"odd interleave", http.MethodPost, "/align/paired", "", "@r\nACGT\n+\nIIII\n", http.StatusBadRequest, codeBadRequest},

		{"unknown route", http.MethodGet, "/v2/align", "", "", http.StatusNotFound, codeNotFound},
		{"root", http.MethodGet, "/", "", "", http.StatusNotFound, codeNotFound},
	}

	for _, tc := range cases {
		for _, prefix := range []string{"", "/v1"} {
			path := tc.path
			if prefix != "" && strings.HasPrefix(path, "/align") || prefix != "" && (path == "/healthz" || path == "/metrics") {
				path = prefix + path
			} else if prefix != "" {
				continue // 404 cases don't get a /v1 variant
			}
			t.Run(tc.name+path, func(t *testing.T) {
				req := httptest.NewRequest(tc.method, path+"?header=0", strings.NewReader(tc.body))
				if tc.ct != "" {
					req.Header.Set("Content-Type", tc.ct)
				}
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != tc.wantCode {
					t.Fatalf("status %d, want %d (body %q)", w.Code, tc.wantCode, w.Body.String())
				}
				if w.Header().Get("X-Request-Id") == "" {
					t.Fatal("response missing X-Request-Id")
				}
				if tc.wantErr != "" {
					if env := decodeEnvelope(t, w); env.Code != tc.wantErr {
						t.Fatalf("envelope code %q, want %q", env.Code, tc.wantErr)
					}
				}
			})
		}
	}
}

// TestV1AndLegacyByteIdentical: the /v1 routes serve byte-identical SAM to
// the legacy aliases for the same request.
func TestV1AndLegacyByteIdentical(t *testing.T) {
	aln, reads, r1, r2 := setup(t)
	s := newTestServer(t, testConfig())

	wv1 := post(s, "/v1/align?header=0", "", fastqBody(reads))
	wleg := post(s, "/align?header=0", "", fastqBody(reads))
	if wv1.Code != http.StatusOK || wleg.Code != http.StatusOK {
		t.Fatalf("status %d / %d", wv1.Code, wleg.Code)
	}
	if !bytes.Equal(wv1.Body.Bytes(), wleg.Body.Bytes()) {
		t.Fatal("/v1/align and /align responses differ")
	}
	want := pipeline.Run(aln, reads, pipeline.Config{Threads: 4, BatchSize: 64})
	if !bytes.Equal(wv1.Body.Bytes(), want.SAM) {
		t.Fatal("/v1/align differs from pipeline.Run")
	}

	inter := fastqBody(interleave(r1, r2))
	pv1 := post(s, "/v1/align/paired?header=0", "", inter)
	pleg := post(s, "/align/paired?header=0", "", fastqBody(interleave(r1, r2)))
	if pv1.Code != http.StatusOK || pleg.Code != http.StatusOK {
		t.Fatalf("paired status %d / %d", pv1.Code, pleg.Code)
	}
	if !bytes.Equal(pv1.Body.Bytes(), pleg.Body.Bytes()) {
		t.Fatal("/v1/align/paired and /align/paired responses differ")
	}
}

// TestRequestIDPropagation: a valid client-supplied X-Request-Id is
// echoed; an unsafe one is replaced.
func TestRequestIDPropagation(t *testing.T) {
	s := newTestServer(t, testConfig())
	_, reads, _, _ := setup(t)

	req := httptest.NewRequest(http.MethodPost, "/v1/align?header=0", fastqBody(reads[:1]))
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-Id"); got != "caller-supplied-42" {
		t.Fatalf("client request ID not echoed: %q", got)
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "bad id with spaces\"")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	got := w.Header().Get("X-Request-Id")
	if got == "" || strings.Contains(got, " ") {
		t.Fatalf("unsafe request ID not replaced: %q", got)
	}
}

// Test429EnvelopeAndRetryAfter: admission shedding carries the overloaded
// code and keeps Retry-After.
func Test429EnvelopeAndRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInFlightReads = 8
	s := newTestServer(t, cfg)
	_, reads, _, _ := setup(t)
	if err := s.adm.TryAcquire(8); err != nil {
		t.Fatal(err)
	}
	defer s.adm.Release(8)
	w := post(s, "/v1/align", "", fastqBody(reads[:1]))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if env := decodeEnvelope(t, w); env.Code != codeOverloaded {
		t.Fatalf("envelope code %q", env.Code)
	}
}

// Test413Envelope: the size-policy rejections carry too_large.
func Test413Envelope(t *testing.T) {
	cfg := testConfig()
	cfg.MaxReadsPerRequest = 2
	cfg.MaxInFlightReads = 100
	s := newTestServer(t, cfg)
	_, reads, _, _ := setup(t)
	w := post(s, "/v1/align", "", fastqBody(reads[:3]))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d", w.Code)
	}
	if env := decodeEnvelope(t, w); env.Code != codeTooLarge {
		t.Fatalf("envelope code %q", env.Code)
	}
}

// TestDrainingEnvelope: post-shutdown rejections carry draining.
func TestDrainingEnvelope(t *testing.T) {
	aln, reads, _, _ := setup(t)
	s, err := New(aln, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	w := post(s, "/v1/align", "", fastqBody(reads[:1]))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d", w.Code)
	}
	if env := decodeEnvelope(t, w); env.Code != codeDraining {
		t.Fatalf("envelope code %q", env.Code)
	}
}

// TestErrorCodesMatchClient cross-checks the server's wire codes against
// pkg/bwaclient's exported constants, so the two lists cannot drift.
func TestErrorCodesMatchClient(t *testing.T) {
	pairs := []struct{ server, client string }{
		{codeBadRequest, bwaclient.CodeBadRequest},
		{codeTooLarge, bwaclient.CodeTooLarge},
		{codeMethodNotAllowed, bwaclient.CodeMethodNotAllowed},
		{codeUnsupportedMedia, bwaclient.CodeUnsupportedMediaType},
		{codeOverloaded, bwaclient.CodeOverloaded},
		{codeDraining, bwaclient.CodeDraining},
		{codeDeadlineExceeded, bwaclient.CodeDeadlineExceeded},
		{codeNotFound, bwaclient.CodeNotFound},
	}
	for _, p := range pairs {
		if p.server != p.client {
			t.Errorf("server code %q != client constant %q", p.server, p.client)
		}
	}
}

// TestRoutesListed sanity-checks the exported route table.
func TestRoutesListed(t *testing.T) {
	routes := Routes()
	want := []string{
		"POST /v1/align (alias /align)",
		"POST /v1/align/paired (alias /align/paired)",
		"GET /v1/healthz (alias /healthz)",
		"GET /v1/readyz",
		"GET /v1/metrics (alias /metrics)",
		"GET /v1/debug/requests",
	}
	if len(routes) != len(want) {
		t.Fatalf("Routes() = %v", routes)
	}
	for i := range want {
		if routes[i] != want[i] {
			t.Fatalf("Routes()[%d] = %q, want %q", i, routes[i], want[i])
		}
	}
}

func interleave(r1, r2 []seq.Read) []seq.Read {
	out := make([]seq.Read, 0, 2*len(r1))
	for i := range r1 {
		out = append(out, r1[i], r2[i])
	}
	return out
}
