package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file is the wire-contract layer of the versioned /v1 HTTP API:
// route table, request-ID plumbing, method and Content-Type enforcement,
// and the typed JSON error envelope every error response carries. The
// handlers themselves (handler.go, metrics.go) are wired through it and
// never call http.Error directly.
//
// Contract summary (kept in sync with README.md's API section and the
// golden route/API-surface test in pkg/bwamem):
//
//   - Canonical routes live under /v1/; the original unversioned paths are
//     permanent aliases with identical behavior.
//   - Every response carries X-Request-Id (client-supplied when valid,
//     generated otherwise).
//   - Every error response is JSON: {"code","message","request_id"} with a
//     machine-readable code from the list below, so clients and future
//     non-HTTP backends (gRPC, shard fan-out) can switch on the code
//     instead of parsing prose.
//   - Align routes are POST-only (405 otherwise, with Allow) and accept
//     exactly two body families: FASTQ (text/plain, text/x-fastq,
//     application/x-fastq, application/fastq, application/octet-stream, or
//     no Content-Type) and JSON (application/json or any *+json). Anything
//     else is 415, never sniffed.

// Error codes of the /v1 wire contract. pkg/bwaclient mirrors these as
// exported constants; a test cross-checks the two lists.
const (
	codeBadRequest       = "bad_request"            // 400: malformed body or read
	codeTooLarge         = "too_large"              // 413: body/read-count/read-length policy
	codeMethodNotAllowed = "method_not_allowed"     // 405
	codeUnsupportedMedia = "unsupported_media_type" // 415
	codeOverloaded       = "overloaded"             // 429: admission budget exhausted
	codeDraining         = "draining"               // 503: graceful shutdown in progress
	codeDeadlineExceeded = "deadline_exceeded"      // 504: request deadline hit before output
	codeNotFound         = "not_found"              // 404: unknown route
)

// errorEnvelope is the wire form of every error response.
type errorEnvelope struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

// apiRoute is one row of the route table: the versioned path, its legacy
// alias, the single allowed method, and the handler.
type apiRoute struct {
	Method  string
	Path    string // canonical versioned path
	Legacy  string // unversioned alias ("" = none)
	handler func(*Server) http.HandlerFunc
}

// routeTable is the complete wire surface. Adding, removing, or changing a
// row is an API change: update README.md and the golden route test.
var routeTable = []apiRoute{
	{http.MethodPost, "/v1/align", "/align", func(s *Server) http.HandlerFunc { return s.handleAlign }},
	{http.MethodPost, "/v1/align/paired", "/align/paired", func(s *Server) http.HandlerFunc { return s.handleAlignPaired }},
	{http.MethodGet, "/v1/healthz", "/healthz", func(s *Server) http.HandlerFunc { return s.handleHealthz }},
	{http.MethodGet, "/v1/readyz", "", func(s *Server) http.HandlerFunc { return s.handleReadyz }},
	{http.MethodGet, "/v1/metrics", "/metrics", func(s *Server) http.HandlerFunc { return s.handleMetrics }},
	{http.MethodGet, "/v1/debug/requests", "", func(s *Server) http.HandlerFunc { return s.handleDebugRequests }},
}

// Routes lists the wire surface as "METHOD path (alias legacy)" strings,
// for documentation and the golden route-table test.
func Routes() []string {
	out := make([]string, 0, len(routeTable))
	for _, rt := range routeTable {
		s := rt.Method + " " + rt.Path
		if rt.Legacy != "" {
			s += " (alias " + rt.Legacy + ")"
		}
		out = append(out, s)
	}
	return out
}

// registerRoutes installs the route table on the server's mux, wrapping
// every handler with request-ID assignment and method enforcement, and
// adds the catch-all 404 envelope.
func (s *Server) registerRoutes() {
	for _, rt := range routeTable {
		h := s.instrument(rt.Method, rt.Path, rt.handler(s))
		s.mux.HandleFunc(rt.Path, h)
		if rt.Legacy != "" {
			s.mux.HandleFunc(rt.Legacy, h)
		}
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.setRequestID(w, r, func(w http.ResponseWriter, r *http.Request) {
			s.apiError(w, r, http.StatusNotFound, codeNotFound,
				fmt.Sprintf("no such route %s (see /v1/align, /v1/align/paired, /v1/healthz, /v1/metrics)", r.URL.Path))
		})
	})
}

// instrument wraps a handler with the per-request wire bookkeeping: the
// request ID (header + context), the observability record (span, status
// capture, end-of-request histogram/ring/log), and the single-method
// check. route is the canonical path, used for kind classification and
// logs regardless of which alias was hit.
func (s *Server) instrument(method, route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.setRequestID(w, r, func(w http.ResponseWriter, r *http.Request) {
			info := &reqInfo{
				id:    requestID(r.Context()),
				route: route,
				kind:  routeKind(route),
				span:  obs.NewSpan(time.Now()),
			}
			sw := newStatusWriter(w)
			// Deferred so the request is recorded even when finishStream
			// aborts the connection via panic(http.ErrAbortHandler).
			defer s.observeRequest(sw, info)
			r = r.WithContext(context.WithValue(r.Context(), reqInfoKey, info))
			if r.Method != method {
				s.met.badRequests.Add(1)
				sw.Header().Set("Allow", method)
				s.apiError(sw, r, http.StatusMethodNotAllowed, codeMethodNotAllowed,
					fmt.Sprintf("method %s not allowed (use %s)", r.Method, method))
				return
			}
			next(sw, r)
		})
	}
}

// ctxKey keys server values in a request context.
type ctxKey int

const requestIDKey ctxKey = iota

// setRequestID resolves the request's ID — the client's X-Request-Id when
// it is a sane header value, a fresh random one otherwise — exposes it as
// the X-Request-Id response header, and stores it in the request context
// for error envelopes and logs.
func (s *Server) setRequestID(w http.ResponseWriter, r *http.Request, next http.HandlerFunc) {
	id := r.Header.Get("X-Request-Id")
	if !validRequestID(id) {
		id = newRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	next(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
}

// requestID returns the ID assigned by setRequestID ("" outside a request).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// validRequestID accepts client-supplied IDs that are short, printable,
// and quote-free — safe to echo into headers, JSON, and logs.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' || id[i] == '"' || id[i] == '\\' {
			return false
		}
	}
	return true
}

// newRequestID returns a fresh 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// math-free fallback: rand.Read on supported platforms never fails;
		// if it somehow does, a constant ID is still a valid (if useless) ID.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// apiError writes the typed JSON error envelope. It must only be called
// before any response byte has gone out (handlers that stream guard on
// samStreamer.Started).
func (s *Server) apiError(w http.ResponseWriter, r *http.Request, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeEnvelopeBody(w, code, message, requestID(r.Context()))
}

// writeEnvelopeBody renders the JSON envelope body (shared with the
// gateway via WriteErrorEnvelope).
func writeEnvelopeBody(w io.Writer, code, message, requestID string) {
	enc := json.NewEncoder(w)
	// Encoding a flat struct of strings cannot fail; the write error (client
	// gone) has nowhere useful to go.
	_ = enc.Encode(errorEnvelope{Code: code, Message: message, RequestID: requestID})
}

// alignBodyKind resolves the negotiated body family of an align request:
// JSON (application/json, *+json) or FASTQ (text/plain, the fastq media
// types, application/octet-stream, or no Content-Type at all). Any other
// Content-Type is an error — the caller maps it to 415 — instead of
// falling through to the FASTQ parser and producing a confusing 400.
func alignBodyKind(r *http.Request) (isJSON bool, err error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false, nil
	}
	mt, _, perr := mime.ParseMediaType(ct)
	if perr != nil {
		return false, fmt.Errorf("unparseable Content-Type %q", ct)
	}
	switch {
	case mt == "application/json" || strings.HasSuffix(mt, "+json"):
		return true, nil
	case mt == "text/plain" || mt == "text/x-fastq" || mt == "application/x-fastq" ||
		mt == "application/fastq" || mt == "application/octet-stream":
		return false, nil
	}
	return false, fmt.Errorf("unsupported Content-Type %q (FASTQ bodies: text/plain, text/x-fastq, application/x-fastq; JSON bodies: application/json)", ct)
}

// logf reports a request-plane event to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if f := s.logFn.Load(); f != nil {
		(*f)(format, args...)
	}
}

// SetLogf installs a request-plane logger (cancellations, deadline
// expiries are reported through it with their request IDs). nil disables
// logging, the default. Safe to call concurrently with serving.
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		s.logFn.Store(nil)
		return
	}
	s.logFn.Store(&logf)
}
