package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/seq"
)

// This file exports the wire-contract helpers the gateway tier
// (internal/gateway) shares with the server: body-family negotiation,
// streaming body decode with the exact validation messages, and the
// rejection classification. The gateway must produce responses
// byte-identical to a single bwaserve — including 400/413/415 envelope
// messages — so both layers call the same functions rather than keeping
// two copies of the contract in sync by hand.

// AlignBodyKind resolves the negotiated body family of an align request:
// JSON (application/json, *+json) or FASTQ (text/plain, the fastq media
// types, application/octet-stream, or no Content-Type). A non-nil error
// means 415: the Content-Type names neither family.
func AlignBodyKind(r *http.Request) (isJSON bool, err error) {
	return alignBodyKind(r)
}

// RequestBodyLimit bounds a request body by what the read caps could
// legitimately need: maxReads reads of maxReadLen bases each, with
// headroom for names, qualities, and JSON quoting.
func RequestBodyLimit(maxReads, maxReadLen int) int64 {
	return requestBodyLimit(maxReads, maxReadLen)
}

// WantHeader reports whether the response to r should start with the SAM
// header (default yes; ?header=0 or ?header=false yields records only).
func WantHeader(r *http.Request) bool {
	return wantHeader(r)
}

// ParseSingleReads decodes and validates the read set of a single-end
// align body, streaming so the read-count cap and per-read validation
// apply as the body arrives. asJSON is the negotiated family
// (AlignBodyKind). Errors carry the exact wire messages the server's own
// handlers produce.
func ParseSingleReads(body io.Reader, asJSON bool, maxReads, maxReadLen int) ([]seq.Read, error) {
	if !asJSON {
		return scanFastq(body, maxReads, maxReadLen)
	}
	var reads []seq.Read
	err := seq.DecodeJSONReads(body, map[string]seq.JSONReadVisitor{
		"reads": func(rd seq.Read) error {
			if len(reads) >= maxReads {
				return capErr(maxReads)
			}
			if err := validateRead(&rd, len(reads), maxReadLen); err != nil {
				return err
			}
			reads = append(reads, rd)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return reads, nil
}

// ParsePairedReads decodes and validates both read sets of a paired-end
// align body (interleaved FASTQ or JSON reads1/reads2), enforcing the
// total read cap, per-read validation, and pair-name agreement with the
// exact wire messages the server's own handlers produce.
func ParsePairedReads(body io.Reader, asJSON bool, maxReads, maxReadLen int) (r1, r2 []seq.Read, err error) {
	if asJSON {
		count := 0
		visitor := func(label string, dst *[]seq.Read) seq.JSONReadVisitor {
			return func(rd seq.Read) error {
				if count >= maxReads {
					return capErr(maxReads)
				}
				if err := validateRead(&rd, len(*dst), maxReadLen); err != nil {
					return fmt.Errorf("%s: %w", label, err)
				}
				*dst = append(*dst, rd)
				count++
				return nil
			}
		}
		err := seq.DecodeJSONReads(body, map[string]seq.JSONReadVisitor{
			"reads1": visitor("reads1", &r1),
			"reads2": visitor("reads2", &r2),
		})
		if err != nil {
			return nil, nil, err
		}
	} else {
		sc := seq.NewFastqScanner(body)
		n := 0
		for sc.Scan() {
			if n >= maxReads {
				return nil, nil, capErr(maxReads)
			}
			rd := sc.Record()
			if err := validateRead(&rd, n/2, maxReadLen); err != nil {
				return nil, nil, err
			}
			if n%2 == 0 {
				r1 = append(r1, rd)
			} else {
				r2 = append(r2, rd)
			}
			n++
		}
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		if n%2 != 0 {
			return nil, nil, fmt.Errorf("interleaved FASTQ holds %d records (odd)", n)
		}
	}
	if len(r1) != len(r2) {
		return nil, nil, fmt.Errorf("unequal pair lists: %d vs %d reads", len(r1), len(r2))
	}
	for i := range r1 {
		if basePairName(r1[i].Name) != basePairName(r2[i].Name) {
			return nil, nil, fmt.Errorf("pair %d: read names %q and %q do not match", i, r1[i].Name, r2[i].Name)
		}
	}
	return r1, r2, nil
}

// ClassifyParseError maps a ParseSingleReads/ParsePairedReads (or
// MaxBytesReader) error to the wire response it must produce: status,
// machine-readable code, and envelope message — identical to the server's
// own rejection of the same body.
func ClassifyParseError(err error) (status int, code, message string) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge, codeTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)
	}
	if errors.Is(err, errReadTooLong) || errors.Is(err, errTooManyReads) {
		return http.StatusRequestEntityTooLarge, codeTooLarge, err.Error()
	}
	return http.StatusBadRequest, codeBadRequest, err.Error()
}

// ValidRequestID reports whether a client-supplied X-Request-Id is safe to
// echo into headers, JSON, and logs (short, printable, quote-free).
func ValidRequestID(id string) bool { return validRequestID(id) }

// NewRequestID returns a fresh 16-hex-char random request ID.
func NewRequestID() string { return newRequestID() }

// WriteErrorEnvelope writes the typed JSON error envelope of the /v1 wire
// contract with the given request ID. Callers must not have written any
// response byte yet.
func WriteErrorEnvelope(w http.ResponseWriter, status int, code, message, requestID string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeEnvelopeBody(w, code, message, requestID)
}
