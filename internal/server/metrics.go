package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// metrics aggregates the server-level counters exposed on /metrics. Stage
// timings come from the scheduler's AtomicClock and cache counters from
// rescache.Cache.Stats; everything here is the request-plane view (what
// came in, what was shed, what went out). Every field is documented in
// README.md's /metrics reference table — keep the two in sync.
type metrics struct {
	start time.Time

	singleRequests atomic.Int64 // accepted /align requests
	pairedRequests atomic.Int64 // accepted /align/paired requests
	rejectedFull   atomic.Int64 // 429: admission budget exceeded
	rejectedLarge  atomic.Int64 // 413: request over MaxReadsPerRequest
	rejectedDrain  atomic.Int64 // 503: shutting down
	badRequests    atomic.Int64 // 400/405: malformed input
	readsTotal     atomic.Int64 // reads accepted for alignment (pairs count 2)
	samBytes       atomic.Int64 // SAM bytes actually written to clients (headers included)

	requestsCancelled atomic.Int64 // admitted requests whose context ended first
	readsDropped      atomic.Int64 // reads of cancelled requests that never produced SAM output
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// handleMetrics serves GET /v1/metrics (alias /metrics), the Prometheus
// text exposition. The method check happens in the route wrapper (api.go).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.met
	// Render the whole exposition into a buffer so the response goes out in
	// one checked write instead of ~40 unchecked ones.
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "bwaserve_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(&buf, "bwaserve_workers %d\n", s.sched.Threads())
	fmt.Fprintf(&buf, "bwaserve_batch_size %d\n", s.cfg.BatchSize)
	fmt.Fprintf(&buf, "bwaserve_index_mmap %d\n", boolGauge(s.idxInfo.Mmap))
	fmt.Fprintf(&buf, "bwaserve_index_load_seconds %.6f\n", s.idxInfo.LoadTime.Seconds())
	fmt.Fprintf(&buf, "bwaserve_index_resident_bytes %d\n", s.idxInfo.ResidentBytes)
	if s.idxInfo.Source != "" {
		fmt.Fprintf(&buf, "bwaserve_index_source{source=%q} 1\n", s.idxInfo.Source)
	}
	fmt.Fprintf(&buf, "bwaserve_requests_total{kind=%q} %d\n", "single", m.singleRequests.Load())
	fmt.Fprintf(&buf, "bwaserve_requests_total{kind=%q} %d\n", "paired", m.pairedRequests.Load())
	fmt.Fprintf(&buf, "bwaserve_requests_rejected_total{reason=%q} %d\n", "queue_full", m.rejectedFull.Load())
	fmt.Fprintf(&buf, "bwaserve_requests_rejected_total{reason=%q} %d\n", "too_large", m.rejectedLarge.Load())
	fmt.Fprintf(&buf, "bwaserve_requests_rejected_total{reason=%q} %d\n", "draining", m.rejectedDrain.Load())
	fmt.Fprintf(&buf, "bwaserve_requests_bad_total %d\n", m.badRequests.Load())
	fmt.Fprintf(&buf, "bwaserve_requests_cancelled_total %d\n", m.requestsCancelled.Load())
	fmt.Fprintf(&buf, "bwaserve_reads_dropped_total %d\n", m.readsDropped.Load())
	fmt.Fprintf(&buf, "bwaserve_reads_total %d\n", m.readsTotal.Load())
	fmt.Fprintf(&buf, "bwaserve_reads_inflight %d\n", s.adm.InFlight())
	fmt.Fprintf(&buf, "bwaserve_sam_bytes_total %d\n", m.samBytes.Load())
	fmt.Fprintf(&buf, "bwaserve_batches_total %d\n", s.coal.batches.Load())
	fmt.Fprintf(&buf, "bwaserve_partial_batches_total %d\n", s.coal.partialFlushes.Load())
	fmt.Fprintf(&buf, "bwaserve_cache_enabled %d\n", boolGauge(s.cache != nil))
	if s.cache != nil {
		cs := s.cache.Stats()
		fmt.Fprintf(&buf, "bwaserve_cache_hits_total %d\n", cs.Hits)
		fmt.Fprintf(&buf, "bwaserve_cache_misses_total %d\n", cs.Misses)
		fmt.Fprintf(&buf, "bwaserve_cache_coalesced_total %d\n", cs.Coalesced)
		fmt.Fprintf(&buf, "bwaserve_cache_evictions_total %d\n", cs.Evictions)
		fmt.Fprintf(&buf, "bwaserve_cache_entries %d\n", cs.Entries)
		fmt.Fprintf(&buf, "bwaserve_cache_resident_bytes %d\n", cs.Bytes)
		fmt.Fprintf(&buf, "bwaserve_cache_capacity_bytes %d\n", cs.Capacity)
	}
	clock := s.sched.Clock()
	clock.WriteMetrics(&buf, "bwaserve")
	// Latency histograms (request path, queue waits, per-stage kernel time)
	// and Go runtime health gauges — see internal/obs and obs.go.
	s.hists.write(&buf)
	obs.WriteRuntimeMetrics(&buf, "bwaserve")

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // scraper went away mid-response; nothing to salvage
	}
}

// boolGauge renders a flag as a 0/1 Prometheus gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// handleHealthz serves GET /v1/healthz (alias /healthz): pure liveness —
// always 200 while the process can answer at all, even mid-drain (the body
// still reports "draining" for humans) — plus the numbers an orchestrator's
// probe wants at a glance. Readiness (should this replica receive new
// traffic?) is /v1/readyz. The method check happens in the route wrapper
// (api.go).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining() {
		status = "draining"
	}
	ref := s.sched.Aligner().Ref
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	//bwalint:ignore streamerr probe body is best-effort once the status code is out
	_, _ = fmt.Fprintf(w,
		`{"status":%q,"uptime_seconds":%.3f,"reads_inflight":%d,"workers":%d,"mode":%q,"contigs":%d,"reference_bp":%d}`+"\n",
		status, time.Since(s.met.start).Seconds(), s.adm.InFlight(),
		s.sched.Threads(), s.cfg.Mode.String(), len(ref.Contigs), ref.Lpac())
}

// handleReadyz serves GET /v1/readyz, the readiness signal a load balancer
// or the bwagate health gate keys on: 200 {"status":"ready"} while the
// server accepts new work, 503 {"status":"draining"} from the moment
// Shutdown begins — so a gateway stops routing to a draining replica while
// its in-flight streams finish, and distinguishes "draining" (503 with a
// body) from "dead" (connection refused).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	if s.draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//bwalint:ignore streamerr probe body is best-effort once the status code is out
	_, _ = fmt.Fprintf(w, `{"status":%q,"reads_inflight":%d}`+"\n", status, s.adm.InFlight())
}
