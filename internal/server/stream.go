package server

import (
	"io"
	"net/http"
	"sync"
)

// samStreamer turns out-of-order per-record completions into an in-order
// chunked SAM response. Workers deliver record i via Complete(i, rec) as
// soon as it is formatted; a per-request writer goroutine drains the
// longest contiguous completed prefix to the client and flushes it, so the
// first bytes of a large response leave while most of the request is still
// being aligned — instead of buffering the whole SAM body as the
// pre-streaming server did. Completion order is unconstrained: result-
// cache hits complete their slots at dispatch time, before any batch has
// run (or even been cut), so a duplicate-heavy request can start
// streaming the moment its handler finishes the cache pass.
//
// The socket write happens ONLY on the request-owned writer goroutine,
// never on a pool worker: Complete is O(1) bookkeeping under a mutex, so a
// client that stops reading its response (TCP backpressure) blocks its own
// writer goroutine and nothing else — records for it pile up in slots (no
// worse than the old buffer-everything behavior) while the shared workers
// keep serving other requests.
//
// It also carries the two writeSAM fixes: the first write error stops all
// further writes (a disconnected client no longer gets every remaining
// record written into a dead connection), and written counts every byte
// actually put on the wire, SAM header included.
type samStreamer struct {
	w       http.ResponseWriter
	flusher http.Flusher  // nil when the ResponseWriter cannot flush
	header  string        // SAM header emitted before the first record ("" = none)
	notify  chan struct{} // capacity 1: contiguous progress wake-up
	wg      sync.WaitGroup

	mu        sync.Mutex
	started   bool     // some bytes written; the HTTP status is committed
	slots     [][]byte // completed-but-unwritten records, nil once taken
	ready     []bool
	completed int // records delivered via Complete
	next      int // first index not yet handed to the writer
	closed    bool
	written   int64
	err       error  // first write error; sticky
	onFirst   func() // runs once, just before the first body write (see OnFirstWrite)
}

// newSAMStreamer builds a streamer for n records (reads or pairs) to w and
// starts its writer goroutine. CloseAndWait must be called before the
// handler returns.
func newSAMStreamer(w http.ResponseWriter, header string, n int) *samStreamer {
	st := &samStreamer{w: w, header: header, notify: make(chan struct{}, 1),
		slots: make([][]byte, n), ready: make([]bool, n)}
	if f, ok := w.(http.Flusher); ok {
		st.flusher = f
	}
	st.wg.Add(1)
	go st.writeLoop()
	return st
}

// OnFirstWrite registers fn to run exactly once, immediately before the
// first response byte goes out — the last moment response headers are
// still mutable. It runs on the writer goroutine (or the handler
// goroutine, for the bare-header EnsureHeader path) and must not call back
// into the streamer. Register before any Complete call.
func (st *samStreamer) OnFirstWrite(fn func()) {
	st.mu.Lock()
	st.onFirst = fn
	st.mu.Unlock()
}

// Complete delivers record i. Safe for concurrent use from many workers;
// each index must be delivered at most once. It never blocks on the
// client: it only files the record and wakes the writer when the record
// extends the contiguous prefix.
func (st *samStreamer) Complete(i int, rec []byte) {
	st.mu.Lock()
	st.slots[i] = rec
	st.ready[i] = true
	st.completed++
	wake := i == st.next
	st.mu.Unlock()
	if wake {
		st.signal()
	}
}

// signal wakes the writer without blocking (a pending token suffices).
func (st *samStreamer) signal() {
	select {
	case st.notify <- struct{}{}:
	default:
	}
}

// writeLoop is the request-owned writer: it drains contiguous completed
// runs and writes them as one chunk each, flushing between chunks. It
// exits when every record is written, on the first write error, or when
// the streamer is closed with no more contiguous work (cancellation left
// holes that will never fill).
func (st *samStreamer) writeLoop() {
	defer st.wg.Done()
	for {
		st.mu.Lock()
		var chunk [][]byte
		for st.next < len(st.ready) && st.ready[st.next] {
			chunk = append(chunk, st.slots[st.next])
			st.slots[st.next] = nil
			st.next++
		}
		finished := st.next == len(st.ready)
		closed := st.closed
		failed := st.err != nil
		st.mu.Unlock()

		if len(chunk) > 0 && !failed {
			failed = !st.writeChunk(chunk)
		}
		switch {
		case finished || failed || (closed && len(chunk) == 0):
			return
		case len(chunk) > 0:
			continue // more may have completed while writing
		}
		<-st.notify
	}
}

// writeChunk writes one contiguous run (header first when it is the very
// first write), updating the byte count and sticky error. Reports success.
func (st *samStreamer) writeChunk(chunk [][]byte) bool {
	st.mu.Lock()
	first := !st.started
	st.started = true
	onFirst := st.onFirst
	st.mu.Unlock()
	if first && onFirst != nil {
		onFirst()
	}

	var n int64
	var err error
	if first && st.header != "" {
		var hn int
		hn, err = io.WriteString(st.w, st.header)
		n += int64(hn)
	}
	if err == nil {
		for _, rec := range chunk {
			var rn int
			rn, err = st.w.Write(rec)
			n += int64(rn)
			if err != nil {
				break
			}
		}
	}
	if err == nil && st.flusher != nil {
		st.flusher.Flush()
	}

	st.mu.Lock()
	st.written += n
	if err != nil && st.err == nil {
		st.err = err
	}
	ok := st.err == nil
	st.mu.Unlock()
	return ok
}

// CloseAndWait stops the writer once it runs out of contiguous work and
// waits for it to exit. Must be called before the handler returns — the
// ResponseWriter may not be touched after that. Returns the first write
// error.
func (st *samStreamer) CloseAndWait() error {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.signal()
	st.wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// EnsureHeader emits the bare header when no record write did (defensive;
// admission rejects empty requests). Success path only — after a drain or
// cancellation the handler writes an error status instead. Must be called
// after CloseAndWait (the writer has exited; the caller owns w again).
func (st *samStreamer) EnsureHeader() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.started && st.err == nil && st.header != "" {
		st.started = true
		if st.onFirst != nil {
			// Safe under the lock: the hook never calls back into the
			// streamer, and the writer goroutine has already exited.
			st.onFirst()
		}
		n, err := io.WriteString(st.w, st.header)
		st.written += int64(n)
		st.err = err
		if st.err == nil && st.flusher != nil {
			st.flusher.Flush()
		}
	}
}

// Written returns the bytes actually written so far, header included.
func (st *samStreamer) Written() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.written
}

// Started reports whether any byte (and so the HTTP status) went out.
func (st *samStreamer) Started() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.started
}

// Missing returns how many records were never delivered — on a cancelled
// request, the reads/pairs whose alignment was abandoned.
func (st *samStreamer) Missing() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.slots) - st.completed
}
