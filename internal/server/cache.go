package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/seq"
)

// This file is the glue between the result cache (internal/rescache) and
// the request path. The cache sits between admission and the coalescer:
// every admitted single-end read is classified by one cache lookup into
//
//	hit    — regions are resident: the record is re-rendered with this
//	         read's own name/qualities and completed immediately, without
//	         waiting for a batch slot (the streamer can flush it while the
//	         rest of the request is still being dispatched);
//	joined — an identical sequence is being aligned right now: the read
//	         parks on that leader's flight instead of entering the batch
//	         queue, and is rendered when the leader's regions arrive;
//	leader — first copy of the sequence: it enters the coalescer as usual,
//	         carrying an onRegs hook that fulfills the flight (and fills
//	         the cache) the moment its batch's alignment completes.
//
// Paired-end requests never come here: pairing rescue and insert-size
// inference are cross-read state, so a pair's records are not a function
// of one read's sequence alone.
//
// Cancellation: a cancelled request's leader reads are evicted from the
// coalescer, which aborts their flights; duplicates parked there (from
// this or other requests) are notified and retry on a fresh goroutine —
// re-hitting the cache, joining a newer leader, or becoming the new
// leader themselves — so one caller's disconnect never loses another
// caller's read.

// alignCached routes one single-end request through the result cache. It
// blocks until every read has completed (hit, fulfilled join, or aligned
// leader) or ctx ends, mirroring coalescer.Align's contract.
func (s *Server) alignCached(ctx context.Context, reads []seq.Read, st *samStreamer, span *obs.Span) error {
	a := s.sched.Aligner()
	rst := &reqState{}
	var wg sync.WaitGroup
	wg.Add(len(reads))
	leaders := make([]pendRead, 0, len(reads))
	type hit struct {
		rd   *seq.Read
		code []byte
		idx  int
		regs []core.Region
	}
	var hits []hit
	var keyBuf []byte
	tLookup := time.Now()
	for i := range reads {
		rd := &reads[i]
		code := seq.Encode(rd.Seq)
		keyBuf = rescache.AppendKey(keyBuf[:0], s.optFP, code)
		i := i
		regs, fl, status := s.cache.Lookup(keyBuf, func(regs []core.Region, ok bool) {
			s.waiterDone(rd, i, code, regs, ok, st, rst, &wg)
		})
		switch status {
		case rescache.Hit:
			// Defer rendering until the leaders are enqueued: on a large
			// warm request the pipeline should start on the misses while
			// this goroutine formats the hit records.
			hits = append(hits, hit{rd: rd, code: code, idx: i, regs: regs})
		case rescache.Joined:
			// The waiter callback owns this read's completion.
		case rescache.Leading:
			leaders = append(leaders, s.leaderItem(rd, i, code, fl, st, rst, &wg))
		}
	}
	s.hists.cacheLookup.Observe(time.Since(tLookup))
	span.Observe("cache", tLookup)
	err := s.coal.Enqueue(leaders)
	if err != nil {
		// Closed coalescer (post-drain; unreachable for admitted requests,
		// which hold the admission budget Shutdown waits out). Abort the
		// leaders so their wg slots free and parked duplicates elsewhere
		// retry rather than hang, release the hit slots without emitting
		// (no bytes on the wire lets finishStream report the 503), and
		// mark the request failed.
		rst.failed.Store(true)
		for i := range leaders {
			leaders[i].done(false)
		}
		for range hits {
			wg.Done()
		}
	} else {
		for _, h := range hits {
			st.Complete(h.idx, a.AppendSAM(nil, h.rd, h.code, h.regs))
			wg.Done()
		}
	}
	if werr := s.coal.waitReads(ctx, rst, &wg); werr != nil {
		return werr
	}
	if err == nil && rst.failed.Load() {
		// A retried leader hit the closed coalescer after the initial
		// enqueue succeeded: the response is missing records, so the
		// request must not report success.
		err = errDraining
	}
	return err
}

// leaderItem builds the coalescer item for a cache-leading read: its
// alignment fulfills fl (unblocking every parked duplicate and making the
// regions resident), and a drop — cancellation before its batch ran —
// aborts fl so duplicates can retry.
func (s *Server) leaderItem(rd *seq.Read, idx int, code []byte, fl *rescache.Flight,
	st *samStreamer, rst *reqState, wg *sync.WaitGroup) pendRead {
	return pendRead{
		rd: rd, code: code, idx: idx,
		emit:   st.Complete,
		onRegs: fl.Fulfill,
		done: func(aligned bool) {
			if !aligned {
				fl.Abort()
			}
			wg.Done()
		},
		st: rst,
	}
}

// waiterDone resolves a read that was parked on another read's flight. It
// runs on whatever goroutine resolved the flight (a pipeline worker on
// fulfill, an evicting/cancelling goroutine on abort), so the retry after
// an abort moves to a fresh goroutine — re-entering the coalescer from a
// worker could block the pool on its own backpressure.
func (s *Server) waiterDone(rd *seq.Read, idx int, code []byte, regs []core.Region, ok bool,
	st *samStreamer, rst *reqState, wg *sync.WaitGroup) {
	if ok {
		// Render even if this request was cancelled meanwhile: the regions
		// exist, emitting is cheap, and the streamer is valid until the
		// handler returns (which waits on wg). Rendering moves off the
		// resolving goroutine when a slot is free — Fulfill runs on the
		// leader's batch worker, and a hot sequence with many parked
		// duplicates must not turn one pipeline worker into a serial
		// SAM-formatting loop — but the offload is bounded (renderSlots):
		// past the cap we render inline rather than launch an unbounded
		// burst of CPU-bound goroutines against the pool.
		render := func() {
			st.Complete(idx, s.sched.Aligner().AppendSAM(nil, rd, code, regs))
			wg.Done()
		}
		select {
		case s.renderSlots <- struct{}{}:
			go func() {
				defer func() { <-s.renderSlots }()
				render()
			}()
		default:
			render()
		}
		return
	}
	if rst.cancelled.Load() {
		wg.Done() // both leader and this waiter abandoned; nothing to retry
		return
	}
	go s.retryRead(rd, idx, code, st, rst, wg)
}

// retryRead re-dispatches a read whose leader aborted: by the time it runs
// the aborted flight is gone, so the lookup either hits (another leader
// fulfilled first), joins a newer flight, or makes this read the new
// leader and enqueues it.
func (s *Server) retryRead(rd *seq.Read, idx int, code []byte,
	st *samStreamer, rst *reqState, wg *sync.WaitGroup) {
	key := rescache.AppendKey(nil, s.optFP, code)
	regs, fl, status := s.cache.Lookup(key, func(regs []core.Region, ok bool) {
		s.waiterDone(rd, idx, code, regs, ok, st, rst, wg)
	})
	switch status {
	case rescache.Hit:
		st.Complete(idx, s.sched.Aligner().AppendSAM(nil, rd, code, regs))
		wg.Done()
	case rescache.Joined:
		// The waiter callback owns completion (and further retries).
	case rescache.Leading:
		item := s.leaderItem(rd, idx, code, fl, st, rst, wg)
		if err := s.coal.Enqueue([]pendRead{item}); err != nil {
			rst.failed.Store(true) // surfaced by alignCached after waitReads
			item.done(false)
			return
		}
		// Close the race with this request's own cancellation: waitReads
		// may have evicted the request's reads after our cancelled-check
		// but before this Enqueue landed, which would leave this item
		// parked until the next flush. Re-checking after the enqueue
		// guarantees one of the two evicts sees it.
		if rst.cancelled.Load() {
			s.coal.evict(rst)
		}
	}
}
