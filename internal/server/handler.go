package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/seq"
)

// maxBodyBytes is the hard ceiling on request bodies. The effective limit
// is derived per deployment from the resolved ServerConfig (see
// requestBodyLimit) so a parse can never materialize far more reads than
// admission would accept.
const maxBodyBytes = 1 << 30

// requestBodyLimit bounds a request body by what the read caps could
// legitimately need: MaxReadsPerRequest reads of MaxReadLen bases each,
// with headroom for names, qualities, and JSON quoting.
func requestBodyLimit(maxReads, maxReadLen int) int64 {
	per := 2*int64(maxReadLen) + 512
	limit := int64(maxReads) * per
	if limit <= 0 || limit > maxBodyBytes {
		limit = maxBodyBytes
	}
	return limit
}

// jsonRead is the wire form of one read in JSON request bodies.
type jsonRead struct {
	Name string `json:"name"`
	Seq  string `json:"seq"`
	Qual string `json:"qual,omitempty"`
}

type singleRequest struct {
	Reads []jsonRead `json:"reads"`
}

type pairedRequest struct {
	Reads1 []jsonRead `json:"reads1"`
	Reads2 []jsonRead `json:"reads2"`
}

func fromJSONReads(in []jsonRead) []seq.Read {
	out := make([]seq.Read, len(in))
	for i, r := range in {
		out[i] = seq.Read{Name: r.Name, Seq: []byte(r.Seq)}
		if r.Qual != "" {
			out[i].Qual = []byte(r.Qual)
		}
	}
	return out
}

// errReadTooLong marks a policy rejection (mapped to 413) rather than a
// malformed input (400).
var errReadTooLong = errors.New("read exceeds length limit")

// validateReads enforces the input policy on every parse path (JSON and
// FASTQ alike): SAM emits name/seq/qual verbatim, so whitespace or control
// bytes in any of them would let a caller inject extra SAM fields or
// records into the response — an empty sequence produces a record no SAM
// parser accepts — and admission charges per read, so a length cap keeps
// one giant read from occupying a worker far beyond its budgeted share.
func validateReads(reads []seq.Read, maxLen int) error {
	for i := range reads {
		r := &reads[i]
		if len(r.Seq) == 0 {
			return fmt.Errorf("read %d (%q): empty sequence", i, r.Name)
		}
		if len(r.Seq) > maxLen {
			return fmt.Errorf("read %d (%q): %d bases, limit %d: %w", i, r.Name, len(r.Seq), maxLen, errReadTooLong)
		}
		if !validName(r.Name) {
			return fmt.Errorf("read %d: name %q is not a valid SAM query name", i, r.Name)
		}
		if !validSeq(r.Seq) {
			return fmt.Errorf("read %d (%q): sequence contains characters outside the SAM SEQ alphabet", i, r.Name)
		}
		if r.Qual != nil {
			if len(r.Qual) != len(r.Seq) {
				return fmt.Errorf("read %d (%q): quality length %d != sequence length %d",
					i, r.Name, len(r.Qual), len(r.Seq))
			}
			if !printable(r.Qual) {
				return fmt.Errorf("read %d (%q): quality contains non-printable characters", i, r.Name)
			}
		}
	}
	return nil
}

// printable reports whether s holds only graphic ASCII (the character set
// SAM fields may carry).
func printable(s []byte) bool {
	for _, b := range s {
		if b < '!' || b > '~' {
			return false
		}
	}
	return true
}

// validSeq enforces the SAM SEQ grammar, [A-Za-z=.]+ (SAM output carries
// the sequence verbatim, so anything else would make the response
// unparseable downstream).
func validSeq(s []byte) bool {
	for _, b := range s {
		switch {
		case b >= 'A' && b <= 'Z', b >= 'a' && b <= 'z', b == '=', b == '.':
		default:
			return false
		}
	}
	return true
}

// validName enforces the SAM QNAME grammar, [!-?A-~]{1,254}: graphic
// ASCII excluding '@', which would let a record's first field masquerade
// as a header line.
func validName(s string) bool {
	if len(s) == 0 || len(s) > 254 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '!' || s[i] > '~' || s[i] == '@' {
			return false
		}
	}
	return true
}

// isJSON reports whether the request body is JSON; any other content type
// (text/plain, application/x-fastq, none) is treated as raw FASTQ.
func isJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && (mt == "application/json" || strings.HasSuffix(mt, "+json"))
}

// wantHeader reports whether the response should start with the SAM header
// (default yes; ?header=0 yields records only, byte-identical to
// pipeline.Run's Result.SAM).
func wantHeader(r *http.Request) bool {
	v := r.URL.Query().Get("header")
	return v != "0" && v != "false"
}

// parseSingle extracts and validates the read set of a single-end request.
func (s *Server) parseSingle(r *http.Request) ([]seq.Read, error) {
	var reads []seq.Read
	if isJSON(r) {
		var req singleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, fmt.Errorf("json: %w", err)
		}
		reads = fromJSONReads(req.Reads)
	} else {
		var err error
		if reads, err = seq.ReadFastq(r.Body); err != nil {
			return nil, err
		}
	}
	if err := validateReads(reads, s.cfg.MaxReadLen); err != nil {
		return nil, err
	}
	return reads, nil
}

// parsePaired extracts both read sets of a paired-end request. The raw
// form is interleaved FASTQ (end 1 of pair 1, end 2 of pair 1, ...).
func (s *Server) parsePaired(r *http.Request) (r1, r2 []seq.Read, err error) {
	if isJSON(r) {
		var req pairedRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, nil, fmt.Errorf("json: %w", err)
		}
		r1 = fromJSONReads(req.Reads1)
		r2 = fromJSONReads(req.Reads2)
	} else {
		all, ferr := seq.ReadFastq(r.Body)
		if ferr != nil {
			return nil, nil, ferr
		}
		if len(all)%2 != 0 {
			return nil, nil, fmt.Errorf("interleaved FASTQ holds %d records (odd)", len(all))
		}
		r1 = make([]seq.Read, 0, len(all)/2)
		r2 = make([]seq.Read, 0, len(all)/2)
		for i := 0; i < len(all); i += 2 {
			r1 = append(r1, all[i])
			r2 = append(r2, all[i+1])
		}
	}
	if len(r1) != len(r2) {
		return nil, nil, fmt.Errorf("unequal pair lists: %d vs %d reads", len(r1), len(r2))
	}
	if err := validateReads(r1, s.cfg.MaxReadLen); err != nil {
		return nil, nil, fmt.Errorf("reads1: %w", err)
	}
	if err := validateReads(r2, s.cfg.MaxReadLen); err != nil {
		return nil, nil, fmt.Errorf("reads2: %w", err)
	}
	return r1, r2, nil
}

// rejectParse writes the response for a body that could not be accepted,
// distinguishing size-policy rejections (413) from malformed input (400).
func (s *Server) rejectParse(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.met.rejectedLarge.Add(1)
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			http.StatusRequestEntityTooLarge)
		return
	}
	if errors.Is(err, errReadTooLong) {
		s.met.rejectedLarge.Add(1)
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	s.met.badRequests.Add(1)
	http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
}

// admit runs the admission checks for n reads, writing the rejection
// response itself when the request cannot proceed.
func (s *Server) admit(w http.ResponseWriter, n int) bool {
	if n == 0 {
		s.met.badRequests.Add(1)
		http.Error(w, "no reads in request", http.StatusBadRequest)
		return false
	}
	if n > s.cfg.MaxReadsPerRequest {
		s.met.rejectedLarge.Add(1)
		http.Error(w, fmt.Sprintf("request holds %d reads, limit %d", n, s.cfg.MaxReadsPerRequest),
			http.StatusRequestEntityTooLarge)
		return false
	}
	switch err := s.adm.TryAcquire(n); err {
	case nil:
		return true
	case errDraining:
		s.met.rejectedDrain.Add(1)
		http.Error(w, "server is shutting down", http.StatusServiceUnavailable)
		return false
	default: // errQueueFull
		s.met.rejectedFull.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("admission queue full (%d reads in flight, limit %d)",
			s.adm.InFlight(), s.cfg.MaxInFlightReads), http.StatusTooManyRequests)
		return false
	}
}

// writeSAM emits the response: optional header, then the record chunks.
func (s *Server) writeSAM(w http.ResponseWriter, r *http.Request, chunks ...[]byte) {
	w.Header().Set("Content-Type", "text/x-sam")
	if wantHeader(r) {
		fmt.Fprint(w, s.samHeader)
	}
	for _, c := range chunks {
		s.met.samBytes.Add(int64(len(c)))
		w.Write(c)
	}
}

// handleAlign serves POST /align: single-end reads in (FASTQ or JSON), SAM
// out. Concurrent requests are coalesced into shared batches.
func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.met.badRequests.Add(1)
		http.Error(w, "method not allowed (POST FASTQ or JSON)", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit)
	reads, err := s.parseSingle(r)
	if err != nil {
		s.rejectParse(w, err)
		return
	}
	if !s.admit(w, len(reads)) {
		return
	}
	defer s.adm.Release(len(reads))
	s.met.singleRequests.Add(1)
	s.met.readsTotal.Add(int64(len(reads)))

	records, err := s.coal.Align(reads)
	if err != nil {
		s.met.rejectedDrain.Add(1)
		http.Error(w, "server is shutting down", http.StatusServiceUnavailable)
		return
	}
	s.writeSAM(w, r, records...)
}

// handleAlignPaired serves POST /align/paired: pairs in (interleaved FASTQ
// or JSON reads1/reads2), paired SAM out. Each request is one RunPaired
// unit — insert-size statistics come from this request's pairs alone — but
// its batches share the worker pool with everything else in flight.
func (s *Server) handleAlignPaired(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.met.badRequests.Add(1)
		http.Error(w, "method not allowed (POST FASTQ or JSON)", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit)
	r1, r2, err := s.parsePaired(r)
	if err != nil {
		s.rejectParse(w, err)
		return
	}
	if !s.admit(w, len(r1)+len(r2)) {
		return
	}
	defer s.adm.Release(len(r1) + len(r2))
	s.met.pairedRequests.Add(1)
	s.met.readsTotal.Add(int64(len(r1) + len(r2)))

	res := pipeline.RunPairedOn(s.sched, r1, r2, pipeline.Config{BatchSize: s.cfg.BatchSize})
	s.writeSAM(w, r, res.SAM)
}
