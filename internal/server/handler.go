package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/seq"
)

// maxBodyBytes is the hard ceiling on request bodies. The effective limit
// is derived per deployment from the resolved ServerConfig (see
// requestBodyLimit) so a parse can never materialize far more reads than
// admission would accept.
const maxBodyBytes = 1 << 30

// requestBodyLimit bounds a request body by what the read caps could
// legitimately need: MaxReadsPerRequest reads of MaxReadLen bases each,
// with headroom for names, qualities, and JSON quoting.
func requestBodyLimit(maxReads, maxReadLen int) int64 {
	per := 2*int64(maxReadLen) + 512
	limit := int64(maxReads) * per
	if limit <= 0 || limit > maxBodyBytes {
		limit = maxBodyBytes
	}
	return limit
}

// jsonRead is the wire form of one read in JSON request bodies. Decoding is
// incremental (seq.DecodeJSONReads); these types document the schema and
// serve as client-side marshaling helpers.
type jsonRead struct {
	Name string `json:"name"`
	Seq  string `json:"seq"`
	Qual string `json:"qual,omitempty"`
}

type singleRequest struct {
	Reads []jsonRead `json:"reads"`
}

type pairedRequest struct {
	Reads1 []jsonRead `json:"reads1"`
	Reads2 []jsonRead `json:"reads2"`
}

// errReadTooLong marks a policy rejection (mapped to 413) rather than a
// malformed input (400).
var errReadTooLong = errors.New("read exceeds length limit")

// errTooManyReads marks a mid-decode rejection of a request exceeding
// MaxReadsPerRequest: the decoder stops at the first read over the cap
// without consuming the rest of the body. Mapped to 413.
var errTooManyReads = errors.New("request exceeds per-request read limit")

// validateRead enforces the input policy on every decode path (JSON and
// FASTQ alike), read by read as the body streams in: SAM emits
// name/seq/qual verbatim, so whitespace or control bytes in any of them
// would let a caller inject extra SAM fields or records into the response —
// an empty sequence produces a record no SAM parser accepts — and admission
// charges per read, so a length cap keeps one giant read from occupying a
// worker far beyond its budgeted share.
func validateRead(r *seq.Read, i, maxLen int) error {
	if len(r.Seq) == 0 {
		return fmt.Errorf("read %d (%q): empty sequence", i, r.Name)
	}
	if len(r.Seq) > maxLen {
		return fmt.Errorf("read %d (%q): %d bases, limit %d: %w", i, r.Name, len(r.Seq), maxLen, errReadTooLong)
	}
	if !validName(r.Name) {
		return fmt.Errorf("read %d: name %q is not a valid SAM query name", i, r.Name)
	}
	if !validSeq(r.Seq) {
		return fmt.Errorf("read %d (%q): sequence contains characters outside the SAM SEQ alphabet", i, r.Name)
	}
	if r.Qual != nil {
		if len(r.Qual) != len(r.Seq) {
			return fmt.Errorf("read %d (%q): quality length %d != sequence length %d",
				i, r.Name, len(r.Qual), len(r.Seq))
		}
		if !printable(r.Qual) {
			return fmt.Errorf("read %d (%q): quality contains non-printable characters", i, r.Name)
		}
	}
	return nil
}

// printable reports whether s holds only graphic ASCII (the character set
// SAM fields may carry).
func printable(s []byte) bool {
	for _, b := range s {
		if b < '!' || b > '~' {
			return false
		}
	}
	return true
}

// validSeq enforces the SAM SEQ grammar, [A-Za-z=.]+ (SAM output carries
// the sequence verbatim, so anything else would make the response
// unparseable downstream).
func validSeq(s []byte) bool {
	for _, b := range s {
		switch {
		case b >= 'A' && b <= 'Z', b >= 'a' && b <= 'z', b == '=', b == '.':
		default:
			return false
		}
	}
	return true
}

// validName enforces the SAM QNAME grammar, [!-?A-~]{1,254}: graphic
// ASCII excluding '@', which would let a record's first field masquerade
// as a header line.
func validName(s string) bool {
	if len(s) == 0 || len(s) > 254 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '!' || s[i] > '~' || s[i] == '@' {
			return false
		}
	}
	return true
}

// basePairName strips a trailing /1 or /2 end suffix, the convention for
// naming the two ends of a pair in FASTQ.
func basePairName(name string) string {
	if n := len(name); n > 2 && name[n-2] == '/' && (name[n-1] == '1' || name[n-1] == '2') {
		return name[:n-2]
	}
	return name
}

// wantHeader reports whether the response should start with the SAM header
// (default yes; ?header=0 yields records only, byte-identical to
// pipeline.Run's Result.SAM).
func wantHeader(r *http.Request) bool {
	v := r.URL.Query().Get("header")
	return v != "0" && v != "false"
}

// responseHeader resolves the SAM header this response should carry.
func (s *Server) responseHeader(r *http.Request) string {
	if wantHeader(r) {
		return s.samHeader
	}
	return ""
}

// capErr is the rejection for the read that would exceed the request cap.
func capErr(max int) error {
	return fmt.Errorf("request holds more than %d reads: %w", max, errTooManyReads)
}

// scanFastq decodes FASTQ incrementally, validating each read and
// enforcing the request read cap as records arrive, so an over-limit body
// is rejected at read max+1 without consuming the remainder.
func scanFastq(body io.Reader, max, maxLen int) ([]seq.Read, error) {
	sc := seq.NewFastqScanner(body)
	var reads []seq.Read
	for sc.Scan() {
		if len(reads) >= max {
			return nil, capErr(max)
		}
		rd := sc.Record()
		if err := validateRead(&rd, len(reads), maxLen); err != nil {
			return nil, err
		}
		reads = append(reads, rd)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return reads, nil
}

// parseSingle extracts and validates the read set of a single-end request,
// streaming the decode so caps and validation apply mid-body. asJSON is
// the negotiated body family (alignBodyKind). The decode itself lives in
// wire.go (ParseSingleReads), shared with the gateway tier.
func (s *Server) parseSingle(r *http.Request, asJSON bool) ([]seq.Read, error) {
	return ParseSingleReads(r.Body, asJSON, s.cfg.MaxReadsPerRequest, s.cfg.MaxReadLen)
}

// parsePaired extracts both read sets of a paired-end request. The raw
// form is interleaved FASTQ (end 1 of pair 1, end 2 of pair 1, ...). The
// decode streams — the total read cap and per-read validation apply as the
// body arrives — and pair names must agree (after /1,/2 suffix stripping):
// misordered interleaved input would otherwise silently produce wrong
// pairings. The decode itself lives in wire.go (ParsePairedReads), shared
// with the gateway tier.
func (s *Server) parsePaired(r *http.Request, asJSON bool) (r1, r2 []seq.Read, err error) {
	return ParsePairedReads(r.Body, asJSON, s.cfg.MaxReadsPerRequest, s.cfg.MaxReadLen)
}

// rejectParse writes the response for a body that could not be accepted,
// distinguishing size-policy rejections (413) from malformed input (400).
func (s *Server) rejectParse(w http.ResponseWriter, r *http.Request, err error) {
	status, code, message := ClassifyParseError(err)
	if status == http.StatusRequestEntityTooLarge {
		s.met.rejectedLarge.Add(1)
	} else {
		s.met.badRequests.Add(1)
	}
	s.apiError(w, r, status, code, message)
}

// admit runs the admission checks for n reads, writing the rejection
// response itself when the request cannot proceed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, n int) bool {
	if n == 0 {
		s.met.badRequests.Add(1)
		s.apiError(w, r, http.StatusBadRequest, codeBadRequest, "no reads in request")
		return false
	}
	if n > s.cfg.MaxReadsPerRequest {
		s.met.rejectedLarge.Add(1)
		s.apiError(w, r, http.StatusRequestEntityTooLarge, codeTooLarge,
			fmt.Sprintf("request holds %d reads, limit %d", n, s.cfg.MaxReadsPerRequest))
		return false
	}
	switch err := s.adm.TryAcquire(n); err {
	case nil:
		return true
	case errDraining:
		s.met.rejectedDrain.Add(1)
		s.apiError(w, r, http.StatusServiceUnavailable, codeDraining, "server is shutting down")
		return false
	default: // errQueueFull
		s.met.rejectedFull.Add(1)
		w.Header().Set("Retry-After", "1")
		s.apiError(w, r, http.StatusTooManyRequests, codeOverloaded,
			fmt.Sprintf("admission queue full (%d reads in flight, limit %d)",
				s.adm.InFlight(), s.cfg.MaxInFlightReads))
		return false
	}
}

// finishStream closes out a streamed alignment: it retires the writer
// goroutine (mandatory before the handler returns), then handles the
// draining/cancellation bookkeeping. readsPerRecord converts the
// streamer's record count to reads (1 single-end, 2 paired) so dropped
// work is metered in the same unit admission charges. The streamed bytes
// (header included) are counted into samBytes either way.
func (s *Server) finishStream(w http.ResponseWriter, r *http.Request, st *samStreamer, readsPerRecord int, err error) {
	st.CloseAndWait()
	defer s.met.samBytes.Add(st.Written())
	switch {
	case err == nil:
		st.EnsureHeader()
	case errors.Is(err, errDraining):
		s.met.rejectedDrain.Add(1)
		s.apiError(w, r, http.StatusServiceUnavailable, codeDraining, "server is shutting down")
	default:
		// The request's context ended: client disconnect or deadline. Any
		// not-yet-started work was dropped; if nothing was written yet a
		// deadline can still be reported (the envelope), otherwise the
		// response is truncated and the connection must be aborted — a
		// chunked response that just ends would look like a complete SAM
		// document to the client.
		dropped := int64(readsPerRecord) * int64(st.Missing())
		s.met.requestsCancelled.Add(1)
		s.met.readsDropped.Add(dropped)
		s.logf("request %s cancelled (%v): %d reads dropped, %d bytes streamed",
			requestID(r.Context()), err, dropped, st.Written())
		if l := s.logger.Load(); l != nil {
			l.Warn("request cancelled",
				"request_id", requestID(r.Context()), "error", err.Error(),
				"reads_dropped", dropped, "bytes_streamed", st.Written())
		}
		if !st.Started() {
			if errors.Is(err, context.DeadlineExceeded) {
				s.apiError(w, r, http.StatusGatewayTimeout, codeDeadlineExceeded,
					"request deadline exceeded before alignment completed")
			}
		} else if st.Missing() > 0 {
			// Status already committed mid-stream: abort the connection so
			// the client observes an error instead of a clean EOF on an
			// incomplete record set. net/http recovers this sentinel and
			// resets the connection without logging a stack.
			panic(http.ErrAbortHandler)
		}
	}
}

// handleAlign serves POST /v1/align (alias /align): single-end reads in
// (FASTQ or JSON), SAM out, streamed — response chunks leave as coalesced
// batches complete, in input order, while later reads are still being
// aligned. Concurrent requests are coalesced into shared batches. The
// method check happens in the route wrapper (api.go).
func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	span := reqInfoFrom(r).Span()
	asJSON, err := alignBodyKind(r)
	if err != nil {
		s.met.badRequests.Add(1)
		s.apiError(w, r, http.StatusUnsupportedMediaType, codeUnsupportedMedia, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit)
	tParse := time.Now()
	reads, err := s.parseSingle(r, asJSON)
	if err != nil {
		s.rejectParse(w, r, err)
		return
	}
	span.Observe("parse", tParse)
	tAdmit := time.Now()
	admitted := s.admit(w, r, len(reads))
	s.hists.admissionWait.Observe(time.Since(tAdmit))
	if !admitted {
		return
	}
	span.Observe("admit", tAdmit)
	reqInfoFrom(r).setReads(len(reads))
	defer s.adm.Release(len(reads))
	s.met.singleRequests.Add(1)
	s.met.readsTotal.Add(int64(len(reads)))

	ctx, cancel := s.requestContext(r)
	defer cancel()
	w.Header().Set("Content-Type", "text/x-sam")
	st := newSAMStreamer(w, s.responseHeader(r), len(reads))
	s.armServerTiming(w, st, span)
	tAlign := time.Now()
	if s.cache != nil {
		// Result cache between admission and the coalescer: duplicate
		// sequences are served from cached regions (re-rendered with this
		// read's name, so output is byte-identical) or single-flighted
		// behind an identical in-flight read. See cache.go.
		err = s.alignCached(ctx, reads, st, span)
	} else {
		err = s.coal.Align(ctx, reads, st.Complete)
	}
	span.Observe("align", tAlign)
	s.finishStream(w, r, st, 1, err)
}

// armServerTiming hooks the streamer's first body write: the Server-Timing
// header must be committed before any byte goes out, so it carries the
// phases known at that instant (parse, admit, cache classify) plus the
// time-to-first-byte mark — the full timeline, align included, lands in
// the histograms and the debug trace ring instead. The hook runs on the
// request-owned writer goroutine; the handler goroutine is blocked in the
// align call and does not touch headers until the streamer is retired, so
// the header map is never written concurrently.
func (s *Server) armServerTiming(w http.ResponseWriter, st *samStreamer, span *obs.Span) {
	if span == nil {
		return
	}
	hdr := w.Header()
	st.OnFirstWrite(func() {
		span.Mark("ttfb")
		s.hists.ttfb.Observe(time.Since(span.Start()))
		hdr.Set("Server-Timing", obs.ServerTimingValue(span.Phases()))
	})
}

// handleAlignPaired serves POST /v1/align/paired (alias /align/paired):
// pairs in (interleaved FASTQ or JSON reads1/reads2), paired SAM out,
// streamed per pair as the pairing
// stage completes. Each request is one paired-run unit — insert-size
// statistics come from this request's pairs alone — but its batches share
// the worker pool with everything else in flight, and a cancelled
// request's unstarted batches are dropped from the queue. Paired requests
// always bypass the result cache: pairing rescue and insert-size inference
// are cross-read state, so a pair's records are not a pure function of one
// read's sequence.
func (s *Server) handleAlignPaired(w http.ResponseWriter, r *http.Request) {
	span := reqInfoFrom(r).Span()
	asJSON, err := alignBodyKind(r)
	if err != nil {
		s.met.badRequests.Add(1)
		s.apiError(w, r, http.StatusUnsupportedMediaType, codeUnsupportedMedia, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit)
	tParse := time.Now()
	r1, r2, err := s.parsePaired(r, asJSON)
	if err != nil {
		s.rejectParse(w, r, err)
		return
	}
	span.Observe("parse", tParse)
	tAdmit := time.Now()
	admitted := s.admit(w, r, len(r1)+len(r2))
	s.hists.admissionWait.Observe(time.Since(tAdmit))
	if !admitted {
		return
	}
	span.Observe("admit", tAdmit)
	reqInfoFrom(r).setReads(len(r1) + len(r2))
	defer s.adm.Release(len(r1) + len(r2))
	s.met.pairedRequests.Add(1)
	s.met.readsTotal.Add(int64(len(r1) + len(r2)))

	ctx, cancel := s.requestContext(r)
	defer cancel()
	w.Header().Set("Content-Type", "text/x-sam")
	st := newSAMStreamer(w, s.responseHeader(r), len(r1))
	s.armServerTiming(w, st, span)
	tAlign := time.Now()
	_, err = pipeline.RunPairedStreamOn(ctx, s.sched, r1, r2,
		pipeline.Config{BatchSize: s.cfg.BatchSize}, st.Complete)
	span.Observe("align", tAlign)
	s.finishStream(w, r, st, 2, err)
}
