package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/internal/testutil"
)

// Shared fixture: one synthetic reference + aligner + simulated reads,
// built once (index construction dominates test time).
var fixture struct {
	once  sync.Once
	aln   *core.Aligner
	reads []seq.Read
	r1    []seq.Read
	r2    []seq.Read
	err   error
}

func setup(t testing.TB) (*core.Aligner, []seq.Read, []seq.Read, []seq.Read) {
	t.Helper()
	fixture.once.Do(func() {
		ref, err := datasets.Genome(datasets.DefaultGenome("chr1", 60000, 21))
		if err != nil {
			fixture.err = err
			return
		}
		fixture.aln, err = core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
		if err != nil {
			fixture.err = err
			return
		}
		fixture.reads, err = datasets.Simulate(ref, datasets.D4.Scaled(0.08)) // 400 reads
		if err != nil {
			fixture.err = err
			return
		}
		pp := datasets.DefaultPairs(datasets.D4.Scaled(0.04)) // 200 pairs
		fixture.r1, fixture.r2, fixture.err = datasets.SimulatePairs(ref, pp)
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.aln, fixture.reads, fixture.r1, fixture.r2
}

func testConfig() core.ServerConfig {
	cfg := core.DefaultServerConfig()
	cfg.Threads = 4
	cfg.BatchSize = 64
	return cfg
}

func newTestServer(t testing.TB, cfg core.ServerConfig) *Server {
	t.Helper()
	aln, _, _, _ := setup(t)
	s, err := New(aln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func fastqBody(reads []seq.Read) *bytes.Buffer {
	var buf bytes.Buffer
	seq.WriteFastq(&buf, reads)
	return &buf
}

func post(s *Server, path, contentType string, body *bytes.Buffer) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, body)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestSingleEndFASTQByteIdentical(t *testing.T) {
	aln, reads, _, _ := setup(t)
	s := newTestServer(t, testConfig())

	want := pipeline.Run(aln, reads, pipeline.Config{Threads: 4, BatchSize: 64})
	w := post(s, "/align?header=0", "application/x-fastq", fastqBody(reads))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatal("server SAM differs from pipeline.Run SAM")
	}

	// Default response carries the header.
	w = post(s, "/align", "", fastqBody(reads[:5]))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.HasPrefix(w.Body.String(), "@SQ\t") {
		t.Fatalf("response missing SAM header: %.60q", w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/x-sam" {
		t.Fatalf("content type %q", ct)
	}
}

func TestSingleEndJSONByteIdentical(t *testing.T) {
	aln, reads, _, _ := setup(t)
	s := newTestServer(t, testConfig())

	sub := reads[:50]
	var req singleRequest
	jsonReads := make([]seq.Read, len(sub))
	for i, r := range sub {
		req.Reads = append(req.Reads, jsonRead{Name: r.Name, Seq: string(r.Seq), Qual: string(r.Qual)})
		jsonReads[i] = seq.Read{Name: r.Name, Seq: r.Seq, Qual: r.Qual}
	}
	body, _ := json.Marshal(req)
	want := pipeline.Run(aln, jsonReads, pipeline.Config{Threads: 2})

	w := post(s, "/align?header=0", "application/json", bytes.NewBuffer(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatal("JSON-body SAM differs from pipeline.Run SAM")
	}
}

func TestPairedByteIdentical(t *testing.T) {
	aln, _, r1, r2 := setup(t)
	s := newTestServer(t, testConfig())
	want := pipeline.RunPaired(aln, r1, r2, pipeline.Config{Threads: 4, BatchSize: 64})

	// JSON form.
	var req pairedRequest
	for i := range r1 {
		req.Reads1 = append(req.Reads1, jsonRead{Name: r1[i].Name, Seq: string(r1[i].Seq), Qual: string(r1[i].Qual)})
		req.Reads2 = append(req.Reads2, jsonRead{Name: r2[i].Name, Seq: string(r2[i].Seq), Qual: string(r2[i].Qual)})
	}
	body, _ := json.Marshal(req)
	w := post(s, "/align/paired?header=0", "application/json", bytes.NewBuffer(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatal("paired JSON SAM differs from pipeline.RunPaired SAM")
	}

	// Interleaved FASTQ form.
	inter := make([]seq.Read, 0, 2*len(r1))
	for i := range r1 {
		inter = append(inter, r1[i], r2[i])
	}
	w = post(s, "/align/paired?header=0", "text/plain", fastqBody(inter))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatal("paired interleaved-FASTQ SAM differs from pipeline.RunPaired SAM")
	}
}

func TestConcurrentRequestsCoalesced(t *testing.T) {
	aln, reads, _, _ := setup(t)
	s := newTestServer(t, testConfig())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// 8 concurrent small requests (25 reads each, batch size 64): correct
	// routing means every caller gets exactly its own records back even
	// though batches interleave reads from different requests.
	const parts = 8
	chunk := len(reads) / parts
	var wg sync.WaitGroup
	errs := make(chan error, parts)
	for p := 0; p < parts; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := reads[p*chunk : (p+1)*chunk]
			want := pipeline.Run(aln, sub, pipeline.Config{Threads: 1})
			resp, err := http.Post(ts.URL+"/align?header=0", "", fastqBody(sub))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var got bytes.Buffer
			got.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", p, resp.StatusCode)
				return
			}
			if !bytes.Equal(got.Bytes(), want.SAM) {
				errs <- fmt.Errorf("request %d: SAM differs from its own pipeline.Run", p)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.coal.batches.Load() == 0 {
		t.Fatal("no batches recorded by the coalescer")
	}
}

func TestImmediateFlushMode(t *testing.T) {
	aln, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.CoalesceLinger = -1 // flush partial batches immediately
	s := newTestServer(t, cfg)
	want := pipeline.Run(aln, reads[:10], pipeline.Config{Threads: 1})
	w := post(s, "/align?header=0", "", fastqBody(reads[:10]))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatal("immediate-flush SAM differs")
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, testConfig())

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/align", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /align: status %d", w.Code)
	}
	if w := post(s, "/align", "", bytes.NewBufferString("not fastq")); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage FASTQ: status %d", w.Code)
	}
	if w := post(s, "/align", "application/json", bytes.NewBufferString(`{"reads":[]}`)); w.Code != http.StatusBadRequest {
		t.Fatalf("empty JSON read set: status %d", w.Code)
	}
	if w := post(s, "/align", "application/json", bytes.NewBufferString(`{"reads":[{"name":"x","seq":""}]}`)); w.Code != http.StatusBadRequest {
		t.Fatalf("empty sequence: status %d", w.Code)
	}
	if w := post(s, "/align", "application/json", bytes.NewBufferString(`{"reads":[{"name":"","seq":"ACGT"}]}`)); w.Code != http.StatusBadRequest {
		t.Fatalf("empty name: status %d", w.Code)
	}
	// SAM-injection attempts through JSON fields must be rejected, not
	// echoed into the response.
	inject := `{"reads":[{"name":"r1\tXX:Z:evil\n@SQ\tSN:fake\tLN:1","seq":"ACGT"}]}`
	if w := post(s, "/align", "application/json", bytes.NewBufferString(inject)); w.Code != http.StatusBadRequest {
		t.Fatalf("tab/newline in name: status %d", w.Code)
	}
	if w := post(s, "/align", "application/json", bytes.NewBufferString(`{"reads":[{"name":"r1","seq":"AC\tGT"}]}`)); w.Code != http.StatusBadRequest {
		t.Fatalf("tab in seq: status %d", w.Code)
	}
	if w := post(s, "/align", "application/json", bytes.NewBufferString(`{"reads":[{"name":"r1","seq":"ACGT","qual":"II\nI"}]}`)); w.Code != http.StatusBadRequest {
		t.Fatalf("newline in qual: status %d", w.Code)
	}
	// The FASTQ path enforces the same policy: empty sequences and
	// embedded tabs are rejected, not aligned into malformed SAM.
	if w := post(s, "/align", "", bytes.NewBufferString("@r\n\n+\n\n")); w.Code != http.StatusBadRequest {
		t.Fatalf("empty FASTQ sequence: status %d", w.Code)
	}
	if w := post(s, "/align", "", bytes.NewBufferString("@r\nAC\tGT\n+\nIIIIII\n")); w.Code != http.StatusBadRequest {
		t.Fatalf("tab in FASTQ sequence: status %d", w.Code)
	}
	// Odd interleaved FASTQ for paired.
	_, reads, _, _ := setup(t)
	if w := post(s, "/align/paired", "", fastqBody(reads[:3])); w.Code != http.StatusBadRequest {
		t.Fatalf("odd interleave: status %d", w.Code)
	}
}

func TestOversizeRequestRejected(t *testing.T) {
	cfg := testConfig()
	cfg.MaxReadsPerRequest = 10
	cfg.MaxInFlightReads = 100
	cfg.MaxReadLen = 200
	s := newTestServer(t, cfg)
	_, reads, _, _ := setup(t)
	if w := post(s, "/align", "", fastqBody(reads[:11])); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize request: status %d", w.Code)
	}
	// A single read over the length cap is shed as 413, not aligned.
	long := seq.Read{Name: "long", Seq: bytes.Repeat([]byte("ACGT"), 100)}
	if w := post(s, "/align", "", fastqBody([]seq.Read{long})); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-length read: status %d", w.Code)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInFlightReads = 32
	s := newTestServer(t, cfg)
	_, reads, _, _ := setup(t)

	// Deterministic: occupy the whole budget, then any request must shed.
	if err := s.adm.TryAcquire(32); err != nil {
		t.Fatal(err)
	}
	w := post(s, "/align", "", fastqBody(reads[:1]))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, body %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	s.adm.Release(32)

	// After the budget frees, the same request succeeds.
	if w := post(s, "/align", "", fastqBody(reads[:1])); w.Code != http.StatusOK {
		t.Fatalf("after release: status %d", w.Code)
	}

	// End-to-end under live load: saturate with a big request on a slow
	// pool and probe while it runs. The loop is bounded by the big
	// request's completion so a fast machine cannot hang it; the
	// deterministic budget check above is the hard 429 guarantee.
	big := make([]seq.Read, 0, 10*len(reads))
	for i := 0; i < 10; i++ {
		big = append(big, reads...)
	}
	cfg2 := testConfig()
	cfg2.Threads = 1
	cfg2.MaxInFlightReads = len(big)
	s2 := newTestServer(t, cfg2)
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- post(s2, "/align?header=0", "", fastqBody(big)) }()
	saw429 := false
probe:
	for {
		select {
		case res := <-done:
			if res.Code != http.StatusOK {
				t.Fatalf("saturating request failed: %d", res.Code)
			}
			break probe
		default:
			if s2.adm.InFlight() > 0 {
				if w := post(s2, "/align", "", fastqBody(reads[:1])); w.Code == http.StatusTooManyRequests {
					saw429 = true
				}
			}
			time.Sleep(time.Millisecond)
		}
	}
	if !saw429 {
		t.Log("big request finished before a probe landed; live shedding not observed this run")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	aln, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.Threads = 2
	goroutines := testutil.Goroutines()
	s, err := New(aln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5x the fixture reads: wide enough to still be in flight when
	// Shutdown fires on fast machines.
	big := make([]seq.Read, 0, 5*len(reads))
	for i := 0; i < 5; i++ {
		big = append(big, reads...)
	}
	want := pipeline.Run(aln, big, pipeline.Config{Threads: 2})

	resCh := make(chan *httptest.ResponseRecorder, 1)
	go func() { resCh <- post(s, "/align?header=0", "", fastqBody(big)) }()
	// Bounded wait: if the request somehow finishes first, Shutdown still
	// runs and every assertion below still holds.
	testutil.Eventually(10*time.Second, func() bool { return s.adm.InFlight() > 0 })

	// Shutdown must block until the in-flight request completes...
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	w := <-resCh
	if w.Code != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: status %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatal("drained request returned wrong SAM")
	}

	// ...and reject everything afterwards.
	if w := post(s, "/align", "", fastqBody(reads[:1])); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: status %d", w.Code)
	}
	// healthz is pure liveness: still 200 mid-drain, body says so.
	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hw.Code != http.StatusOK || !strings.Contains(hw.Body.String(), "draining") {
		t.Fatalf("healthz after shutdown: %d %s", hw.Code, hw.Body.String())
	}
	// readyz is the drain signal load balancers key on: 503 from now on.
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if rw.Code != http.StatusServiceUnavailable || !strings.Contains(rw.Body.String(), "draining") {
		t.Fatalf("readyz after shutdown: %d %s", rw.Code, rw.Body.String())
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Shutdown tore down the scheduler workers and coalescer: nothing this
	// server started may outlive it.
	testutil.CheckGoroutines(t, goroutines, 2)
}

func TestShutdownFlushesLingeringPartialBatch(t *testing.T) {
	aln, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.CoalesceLinger = time.Hour // would outlive any drain timeout
	s, err := New(aln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := pipeline.Run(aln, reads[:10], pipeline.Config{Threads: 1})

	// A sub-batch request parks in the coalescer waiting out the linger
	// window; Shutdown must flush it rather than waiting the hour.
	resCh := make(chan *httptest.ResponseRecorder, 1)
	go func() { resCh <- post(s, "/align?header=0", "", fastqBody(reads[:10])) }()
	testutil.Eventually(10*time.Second, func() bool { return s.adm.InFlight() > 0 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	w := <-resCh
	if w.Code != http.StatusOK {
		t.Fatalf("parked request: status %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), want.SAM) {
		t.Fatal("flushed request returned wrong SAM")
	}
}
