package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission-control errors returned by admission.TryAcquire.
var (
	// errQueueFull means admitting the request would exceed the in-flight
	// read budget; the caller maps it to HTTP 429.
	errQueueFull = errors.New("server: admission queue full")
	// errDraining means the server is shutting down; mapped to HTTP 503.
	errDraining = errors.New("server: draining")
)

// admission is the server's load-shedding gate: a counting semaphore over
// reads (not requests, so one huge request can't starve the budget
// accounting) with a drain mode for graceful shutdown. Work admitted here
// is guaranteed a slot in the bounded scheduler queue eventually; work
// rejected here never touches the alignment pool, keeping tail latency of
// admitted requests bounded under overload.
type admission struct {
	mu       sync.Mutex
	max      int
	inflight int
	draining bool
	// idle is lazily created by a WaitIdle caller and closed (then cleared)
	// by the Release that takes inflight to zero, so waiting for drain
	// costs nothing instead of busy-polling.
	idle chan struct{}
}

func newAdmission(maxReads int) *admission {
	return &admission{max: maxReads}
}

// TryAcquire admits n reads or reports why it can't. It never blocks:
// under overload the right answer is an immediate 429, not a growing
// backlog.
func (q *admission) TryAcquire(n int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return errDraining
	}
	if q.inflight+n > q.max {
		return errQueueFull
	}
	q.inflight += n
	return nil
}

// Release returns n admitted reads to the budget, waking WaitIdle callers
// when the queue empties.
func (q *admission) Release(n int) {
	q.mu.Lock()
	q.inflight -= n
	if q.inflight < 0 {
		panic("server: admission release underflow")
	}
	if q.inflight == 0 && q.idle != nil {
		close(q.idle)
		q.idle = nil
	}
	q.mu.Unlock()
}

// InFlight returns the reads currently admitted.
func (q *admission) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight
}

// SetDraining flips the gate: all future TryAcquire calls fail with
// errDraining while already-admitted work runs to completion.
func (q *admission) SetDraining() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
}

// WaitIdle blocks until no reads are in flight, the deadline passes, or
// ctx is cancelled, reporting whether the queue drained. It parks on a
// notification channel closed by the emptying Release rather than polling,
// so a long drain costs no CPU.
func (q *admission) WaitIdle(ctx context.Context, deadline time.Time) bool {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		q.mu.Lock()
		if q.inflight == 0 {
			q.mu.Unlock()
			return true
		}
		if q.idle == nil {
			q.idle = make(chan struct{})
		}
		idle := q.idle
		q.mu.Unlock()
		select {
		case <-idle:
			// Re-check: the budget may already be occupied again by work
			// admitted between the close and this wakeup.
		case <-ctx.Done():
			return false
		case <-timer.C:
			return false
		}
	}
}
