package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission-control errors returned by admission.TryAcquire.
var (
	// errQueueFull means admitting the request would exceed the in-flight
	// read budget; the caller maps it to HTTP 429.
	errQueueFull = errors.New("server: admission queue full")
	// errDraining means the server is shutting down; mapped to HTTP 503.
	errDraining = errors.New("server: draining")
)

// admission is the server's load-shedding gate: a counting semaphore over
// reads (not requests, so one huge request can't starve the budget
// accounting) with a drain mode for graceful shutdown. Work admitted here
// is guaranteed a slot in the bounded scheduler queue eventually; work
// rejected here never touches the alignment pool, keeping tail latency of
// admitted requests bounded under overload.
type admission struct {
	mu       sync.Mutex
	max      int
	inflight int
	draining bool
}

func newAdmission(maxReads int) *admission {
	return &admission{max: maxReads}
}

// TryAcquire admits n reads or reports why it can't. It never blocks:
// under overload the right answer is an immediate 429, not a growing
// backlog.
func (q *admission) TryAcquire(n int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return errDraining
	}
	if q.inflight+n > q.max {
		return errQueueFull
	}
	q.inflight += n
	return nil
}

// Release returns n admitted reads to the budget.
func (q *admission) Release(n int) {
	q.mu.Lock()
	q.inflight -= n
	if q.inflight < 0 {
		panic("server: admission release underflow")
	}
	q.mu.Unlock()
}

// InFlight returns the reads currently admitted.
func (q *admission) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight
}

// SetDraining flips the gate: all future TryAcquire calls fail with
// errDraining while already-admitted work runs to completion.
func (q *admission) SetDraining() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
}

// WaitIdle blocks until no reads are in flight, the deadline passes, or
// ctx is cancelled, reporting whether the queue drained.
func (q *admission) WaitIdle(ctx context.Context, deadline time.Time) bool {
	for {
		if q.InFlight() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}
