package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/pipeline"
	"repro/internal/seq"
)

// coalescer merges reads from concurrent single-end requests into shared
// batches of the configured size before handing them to the scheduler.
// This is the server-side analogue of the paper's batch-staged workflow:
// the batched kernels only pay off when batches are full, and a service
// dominated by small requests would otherwise run them nearly empty. Reads
// are flattened into one pending queue in arrival order; every full batch
// is cut and submitted immediately, and a partial tail lingers briefly
// (CoalesceLinger) for company from the next request before being flushed.
//
// Output routing is per read: each read carries a pointer to its slot in
// the owning request's result slice, so a batch may interleave many
// requests while every request still gets its records in input order —
// byte-identical to a dedicated pipeline.Run over just its reads (batch
// composition never affects a read's SAM record; that is the pipeline's
// layout-invariance property).
//
// Paired-end requests are NOT coalesced across requests: insert-size
// statistics are inferred per request (as RunPaired infers them per run),
// so merging would change pairing decisions. They share the scheduler's
// worker pool instead (see Server.handleAlignPaired).
type coalescer struct {
	sched  *pipeline.Scheduler
	batch  int
	linger time.Duration // negative: flush partial batches immediately

	mu         sync.Mutex
	pend       []pendRead
	timerArmed bool
	draining   bool // flush every batch immediately (shutdown in progress)
	closed     bool

	// Stats for /metrics.
	batches        atomic.Int64 // batches submitted to the pool
	partialFlushes atomic.Int64 // batches flushed below the target size
}

// pendRead is one read awaiting batching, with its output slot and
// completion callback.
type pendRead struct {
	rd   *seq.Read
	code []byte
	out  *[]byte
	done func()
}

func newCoalescer(sched *pipeline.Scheduler, batchSize int, linger time.Duration) *coalescer {
	return &coalescer{sched: sched, batch: batchSize, linger: linger}
}

// Align maps reads and returns one SAM record slice per read, in input
// order. It blocks until every read has been aligned. Returns errDraining
// after Close.
func (c *coalescer) Align(reads []seq.Read) ([][]byte, error) {
	slots := make([][]byte, len(reads))
	if len(reads) == 0 {
		return slots, nil
	}
	var wg sync.WaitGroup
	wg.Add(len(reads))
	pend := make([]pendRead, len(reads))
	for i := range reads {
		// Encoding stays outside the stage clocks, mirroring pipeline.Run.
		pend[i] = pendRead{rd: &reads[i], code: seq.Encode(reads[i].Seq),
			out: &slots[i], done: wg.Done}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errDraining
	}
	c.pend = append(c.pend, pend...)
	batches := c.cutLocked(c.linger < 0 || c.draining)
	if len(c.pend) > 0 && c.linger >= 0 && !c.timerArmed {
		c.timerArmed = true
		time.AfterFunc(c.linger, c.flushPartial)
	}
	c.mu.Unlock()

	c.submit(batches)
	wg.Wait()
	return slots, nil
}

// cutLocked removes every full batch from the pending queue — plus the
// remainder when force is set — in one pass (one copy per batch, one
// compaction), returning them oldest-first.
func (c *coalescer) cutLocked(force bool) [][]pendRead {
	k := len(c.pend) / c.batch * c.batch
	if force {
		k = len(c.pend)
	}
	if k == 0 {
		return nil
	}
	batches := make([][]pendRead, 0, (k+c.batch-1)/c.batch)
	for lo := 0; lo < k; lo += c.batch {
		hi := lo + c.batch
		if hi > k {
			hi = k
		}
		// Copy so future appends to c.pend cannot alias the batch.
		b := make([]pendRead, hi-lo)
		copy(b, c.pend[lo:hi])
		batches = append(batches, b)
	}
	n := copy(c.pend, c.pend[k:])
	tail := c.pend[n:]
	for i := range tail {
		tail[i] = pendRead{} // drop references so held reads can be collected
	}
	c.pend = c.pend[:n]
	return batches
}

// flushPartial is the linger-timer callback: whatever is pending goes out
// as one (possibly undersized) batch.
func (c *coalescer) flushPartial() {
	c.mu.Lock()
	c.timerArmed = false
	var batches [][]pendRead
	if !c.closed {
		batches = c.cutLocked(true)
	}
	c.mu.Unlock()
	c.submit(batches)
}

// submit hands cut batches to the worker pool. Called without the lock:
// Scheduler.Go applies backpressure when the bounded task queue is full,
// and blocking here must not stall other requests' batch cutting.
func (c *coalescer) submit(batches [][]pendRead) {
	for _, b := range batches {
		b := b
		c.batches.Add(1)
		if len(b) < c.batch {
			c.partialFlushes.Add(1)
		}
		c.sched.Go(func(ws *core.Workspace) { c.runBatch(b, ws) })
	}
}

// runBatch executes one coalesced batch on a pool worker: batch-staged
// alignment, then per-read SAM formatting into each read's own slot.
func (c *coalescer) runBatch(batch []pendRead, ws *core.Workspace) {
	a := c.sched.Aligner()
	codes := make([][]byte, len(batch))
	for i := range batch {
		codes[i] = batch[i].code
	}
	regs := a.AlignBatch(codes, ws)
	t0 := time.Now()
	for i := range batch {
		*batch[i].out = a.AppendSAM(nil, batch[i].rd, batch[i].code, regs[i])
		batch[i].done()
	}
	ws.Clock.Add(counters.StageSAMForm, time.Since(t0))
}

// SetDraining flushes the pending partial batch immediately and makes every
// future batch flush without lingering, so graceful shutdown never waits
// out a coalescing window (which may be configured longer than the drain
// timeout). Already-admitted Align calls still complete.
func (c *coalescer) SetDraining() {
	c.mu.Lock()
	c.draining = true
	batches := c.cutLocked(true)
	c.mu.Unlock()
	c.submit(batches)
}

// Close flushes any pending partial batch, rejects future Align calls, and
// waits for all submitted batches to finish on the pool.
func (c *coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	batches := c.cutLocked(true)
	c.mu.Unlock()
	c.submit(batches)
	c.sched.Drain()
}
