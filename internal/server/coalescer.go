package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/pipeline"
	"repro/internal/seq"
)

// coalescer merges reads from concurrent single-end requests into shared
// batches of the configured size before handing them to the scheduler.
// This is the server-side analogue of the paper's batch-staged workflow:
// the batched kernels only pay off when batches are full, and a service
// dominated by small requests would otherwise run them nearly empty. Reads
// are flattened into one pending queue in arrival order; every full batch
// is cut and submitted immediately, and a partial tail lingers briefly
// (CoalesceLinger) for company from the next request before being flushed.
//
// Output routing is per read: each read carries its index in the owning
// request plus the request's emit callback, so a batch may interleave many
// requests while every request still streams its records out in input
// order — byte-identical to a dedicated pipeline.Run over just its reads
// (batch composition never affects a read's SAM record; that is the
// pipeline's layout-invariance property).
//
// Cancellation is per request: when a request's context is cancelled its
// reads still waiting in the pending queue are evicted without ever being
// aligned, and reads already cut into batches are skipped when the batch
// runs. Either way the request's Align call returns promptly so its
// admission budget frees.
//
// Paired-end requests are NOT coalesced across requests: insert-size
// statistics are inferred per request (as RunPaired infers them per run),
// so merging would change pairing decisions. They share the scheduler's
// worker pool instead (see Server.handleAlignPaired).
//
// Callers feed the coalescer two ways: Align is the self-contained form
// (build routing, enqueue, wait), used when the result cache is off; the
// cache path (cache.go) builds pendRead items itself — only cache-leading
// reads enter the queue — and uses Enqueue plus waitReads so hits and
// single-flight joins can complete outside the batch queue entirely.
type coalescer struct {
	sched  *pipeline.Scheduler
	batch  int
	linger time.Duration // negative: flush partial batches immediately

	// onQueueWait, when non-nil, observes each read's coalescer wait
	// (enqueue to batch start) on the batch worker. Set once at server
	// construction, before any traffic.
	onQueueWait func(time.Duration)

	mu       sync.Mutex
	pend     []pendRead
	timer    *time.Timer // pending linger flush (nil = unarmed); stopped on drain/close
	draining bool        // flush every batch immediately (shutdown in progress)
	closed   bool

	// Stats for /metrics.
	batches        atomic.Int64 // batches submitted to the pool
	partialFlushes atomic.Int64 // batches flushed below the target size
}

// reqState is the per-request state shared by that request's pending
// reads, letting a batch worker observe cancellation cheaply.
type reqState struct {
	cancelled atomic.Bool
	// failed records that some read of the request was dropped for a
	// reason other than the request's own cancellation (coalescer closed
	// under it), so the handler can report an error instead of returning
	// a silently short response.
	failed atomic.Bool
}

// pendRead is one read awaiting batching, with its output routing and
// completion callbacks.
type pendRead struct {
	rd   *seq.Read
	code []byte
	idx  int                     // index within the owning request
	emit func(i int, rec []byte) // receives the read's SAM record
	// onRegs, when non-nil, observes the read's raw alignment regions on
	// the batch worker before SAM formatting. The result cache uses it to
	// fulfill the read's single-flight entry, so duplicates parked on this
	// read unblock without waiting for its record to be rendered. The
	// regions are retained by the observer and must not be mutated.
	onRegs func(regs []core.Region)
	// done fires exactly once per read: aligned=true after emit, or
	// aligned=false when the read was dropped unaligned (request cancelled
	// while it waited). Cache leaders use aligned=false to abort their
	// flight so parked duplicates can retry.
	done func(aligned bool)
	st   *reqState
	enq  time.Time // when the read entered the pending queue (Enqueue stamps it)
}

func newCoalescer(sched *pipeline.Scheduler, batchSize int, linger time.Duration) *coalescer {
	return &coalescer{sched: sched, batch: batchSize, linger: linger}
}

// Align maps reads, delivering each read's SAM record through emit(i, rec)
// — called from worker goroutines, at most once per index, in completion
// (not index) order — and blocks until every read has been aligned or the
// context is cancelled. On cancellation, reads not yet in a running batch
// are dropped unaligned and ctx.Err() is returned; emit must tolerate
// having seen only a subset of indices. Returns errDraining after Close.
func (c *coalescer) Align(ctx context.Context, reads []seq.Read, emit func(i int, rec []byte)) error {
	if len(reads) == 0 {
		return nil
	}
	st := &reqState{}
	var wg sync.WaitGroup
	wg.Add(len(reads))
	dn := func(bool) { wg.Done() }
	pend := make([]pendRead, len(reads))
	for i := range reads {
		// Encoding stays outside the stage clocks, mirroring pipeline.Run.
		pend[i] = pendRead{rd: &reads[i], code: seq.Encode(reads[i].Seq),
			idx: i, emit: emit, done: dn, st: st}
	}
	if err := c.Enqueue(pend); err != nil {
		return err
	}
	return c.waitReads(ctx, st, &wg)
}

// Enqueue adds already-routed reads to the pending queue, cutting and
// submitting every full batch (plus the remainder when lingering is off or
// the server is draining). Unlike Align it does not wait: each item's done
// callback reports its completion, and the caller owns request-level
// waiting (see waitReads). May block briefly on scheduler backpressure.
// Returns errDraining once the coalescer is closed.
func (c *coalescer) Enqueue(items []pendRead) error {
	if len(items) == 0 {
		return nil
	}
	now := time.Now()
	for i := range items {
		items[i].enq = now
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errDraining
	}
	c.pend = append(c.pend, items...)
	batches := c.cutLocked(c.linger < 0 || c.draining)
	if len(c.pend) > 0 && c.linger >= 0 && c.timer == nil {
		c.timer = time.AfterFunc(c.linger, c.flushPartial)
	}
	c.mu.Unlock()

	c.submit(batches)
	return nil
}

// waitReads blocks until every read of the request (tracked by wg) has
// completed, or ctx ends — in which case the request's reads still in the
// pending queue are evicted unaligned and ctx.Err() is returned. In-flight
// batches finish on their own; the residual wait is bounded by work
// already running (and, for cache-path requests, by duplicates parked on
// other live requests' flights).
func (c *coalescer) waitReads(ctx context.Context, st *reqState, wg *sync.WaitGroup) error {
	if ctx.Done() == nil { // uncancellable: wait without the extra goroutine
		wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Mark first so batches already cut skip these reads, then evict
		// whatever is still in the pending queue. In-flight batches finish
		// on their own; <-done bounds the wait to work already running.
		st.cancelled.Store(true)
		c.evict(st)
		<-done
		return ctx.Err()
	}
}

// evict removes a cancelled request's reads from the pending queue,
// completing them unaligned (done(false), which lets cache leaders abort
// their flights) so the request's wait can return.
func (c *coalescer) evict(st *reqState) {
	c.mu.Lock()
	var evicted []func(bool)
	kept := c.pend[:0]
	for _, pr := range c.pend {
		if pr.st == st {
			evicted = append(evicted, pr.done)
			continue
		}
		kept = append(kept, pr)
	}
	for i := len(kept); i < len(c.pend); i++ {
		c.pend[i] = pendRead{} // drop references so held reads can be collected
	}
	c.pend = kept
	c.mu.Unlock()
	for _, done := range evicted {
		done(false)
	}
}

// cutLocked removes every full batch from the pending queue — plus the
// remainder when force is set — in one pass (one copy per batch, one
// compaction), returning them oldest-first.
func (c *coalescer) cutLocked(force bool) [][]pendRead {
	k := len(c.pend) / c.batch * c.batch
	if force {
		k = len(c.pend)
	}
	if k == 0 {
		return nil
	}
	batches := make([][]pendRead, 0, (k+c.batch-1)/c.batch)
	for lo := 0; lo < k; lo += c.batch {
		hi := lo + c.batch
		if hi > k {
			hi = k
		}
		// Copy so future appends to c.pend cannot alias the batch.
		b := make([]pendRead, hi-lo)
		copy(b, c.pend[lo:hi])
		batches = append(batches, b)
	}
	n := copy(c.pend, c.pend[k:])
	tail := c.pend[n:]
	for i := range tail {
		tail[i] = pendRead{} // drop references so held reads can be collected
	}
	c.pend = c.pend[:n]
	return batches
}

// stopTimerLocked cancels any pending linger flush. Without this a
// drained/closed coalescer would keep an AfterFunc callback scheduled past
// shutdown (the timer leak this replaces).
func (c *coalescer) stopTimerLocked() {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
}

// flushPartial is the linger-timer callback: whatever is pending goes out
// as one (possibly undersized) batch.
func (c *coalescer) flushPartial() {
	c.mu.Lock()
	c.timer = nil
	var batches [][]pendRead
	if !c.closed {
		batches = c.cutLocked(true)
	}
	c.mu.Unlock()
	c.submit(batches)
}

// submit hands cut batches to the worker pool. Called without the lock:
// Scheduler.Go applies backpressure when the bounded task queue is full,
// and blocking here must not stall other requests' batch cutting.
func (c *coalescer) submit(batches [][]pendRead) {
	for _, b := range batches {
		b := b
		c.batches.Add(1)
		if len(b) < c.batch {
			c.partialFlushes.Add(1)
		}
		c.sched.Go(func(ws *core.Workspace) { c.runBatch(b, ws) })
	}
}

// runBatch executes one coalesced batch on a pool worker: batch-staged
// alignment over the batch's still-live reads, then per-read SAM
// formatting routed to each read's own request. Reads whose request was
// cancelled after the batch was cut are completed unaligned.
func (c *coalescer) runBatch(batch []pendRead, ws *core.Workspace) {
	live := make([]pendRead, 0, len(batch))
	for i := range batch {
		if batch[i].st != nil && batch[i].st.cancelled.Load() {
			batch[i].done(false)
			continue
		}
		live = append(live, batch[i])
	}
	if len(live) == 0 {
		return
	}
	if c.onQueueWait != nil {
		now := time.Now()
		for i := range live {
			if !live[i].enq.IsZero() {
				c.onQueueWait(now.Sub(live[i].enq))
			}
		}
	}
	a := c.sched.Aligner()
	codes := make([][]byte, len(live))
	for i := range live {
		codes[i] = live[i].code
	}
	regs := a.AlignBatch(codes, ws)
	// Publish raw regions first (cache fulfillment): duplicates parked on
	// these reads unblock before this worker starts rendering SAM.
	for i := range live {
		if live[i].onRegs != nil {
			live[i].onRegs(regs[i])
		}
	}
	t0 := time.Now()
	for i := range live {
		rec := a.AppendSAM(nil, live[i].rd, live[i].code, regs[i])
		live[i].emit(live[i].idx, rec)
		live[i].done(true)
	}
	ws.Clock.Add(counters.StageSAMForm, time.Since(t0))
}

// SetDraining flushes the pending partial batch immediately and makes every
// future batch flush without lingering, so graceful shutdown never waits
// out a coalescing window (which may be configured longer than the drain
// timeout). Already-admitted Align calls still complete.
func (c *coalescer) SetDraining() {
	c.mu.Lock()
	c.draining = true
	c.stopTimerLocked()
	batches := c.cutLocked(true)
	c.mu.Unlock()
	c.submit(batches)
}

// Close flushes any pending partial batch, rejects future Align calls, and
// waits for all submitted batches to finish on the pool.
func (c *coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	c.stopTimerLocked()
	batches := c.cutLocked(true)
	c.mu.Unlock()
	c.submit(batches)
	c.sched.Drain()
}
