package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, testConfig())
	_, reads, _, _ := setup(t)

	// Drive some traffic so counters and stage clocks are nonzero.
	if w := post(s, "/align", "", fastqBody(reads[:20])); w.Code != http.StatusOK {
		t.Fatalf("align: status %d", w.Code)
	}

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	body := w.Body.String()
	for _, line := range []string{
		`bwaserve_requests_total{kind="single"} 1`,
		`bwaserve_reads_total 20`,
		`bwaserve_reads_inflight 0`,
		`bwaserve_batches_total`,
		`bwaserve_workers 4`,
		`bwaserve_stage_seconds{stage="SMEM"}`,
		`bwaserve_stage_seconds{stage="BSW"}`,
		`bwaserve_stage_seconds_total`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics output missing %q", line)
		}
	}
	// Per-stage kernel time must actually accumulate from served traffic.
	clock := s.sched.Clock()
	if clock.Total() == 0 || clock.Kernels() == 0 {
		t.Fatal("scheduler clock empty after serving reads")
	}

	if w := post(s, "/metrics", "", fastqBody(reads[:1])); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: status %d", w.Code)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	s := newTestServer(t, testConfig())
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{`"status":"ok"`, `"reads_inflight":0`, `"workers":4`, `"mode":"optimized"`, `"reference_bp":60000`} {
		if !strings.Contains(body, want) {
			t.Errorf("healthz missing %q in %s", want, body)
		}
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz content type %q", ct)
	}

	// readyz: 200 + "ready" while serving (503 once drain begins is
	// asserted alongside Shutdown in server_test.go).
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if rw.Code != http.StatusOK || !strings.Contains(rw.Body.String(), `"status":"ready"`) {
		t.Fatalf("readyz: %d %s", rw.Code, rw.Body.String())
	}
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("readyz content type %q", ct)
	}
}
