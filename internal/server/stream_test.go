package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/internal/testutil"
)

// TestStreamedFirstByteBeforeCompletion is the streaming acceptance check:
// a large request's first response bytes must arrive while the request is
// still holding admission budget (alignment not finished), and the full
// streamed body must be byte-identical to the buffered pipeline.Run SAM.
func TestStreamedFirstByteBeforeCompletion(t *testing.T) {
	aln, reads, _, _ := setup(t)
	cfg := testConfig()
	cfg.Threads = 1 // serialize batches so the tail is still queued
	cfg.BatchSize = 32
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	big := make([]seq.Read, 0, 10*len(reads)) // 4000 reads -> 125 batches
	for i := 0; i < 10; i++ {
		big = append(big, reads...)
	}
	want := pipeline.Run(aln, big, pipeline.Config{Threads: 1, BatchSize: 32})

	resp, err := http.Post(ts.URL+"/align?header=0", "", fastqBody(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadByte() // blocks until the first flushed chunk lands
	if err != nil {
		t.Fatal(err)
	}
	if inflight := s.adm.InFlight(); inflight == 0 {
		t.Fatal("first response byte arrived only after the request released its admission budget")
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]byte{first}, rest...)
	if !bytes.Equal(got, want.SAM) {
		t.Fatal("streamed SAM differs from buffered pipeline.Run SAM")
	}
}

// scrapeMetric pulls one un-labelled counter value from /metrics.
func scrapeMetric(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	var v int64
	fmt.Sscanf(string(m[1]), "%d", &v)
	return v
}

// TestCancelledRequestReleasesBudget covers the cancellation path end to
// end: a request parked in the coalescer (long linger, undersized batch)
// is cancelled by its client; its reads must be evicted without ever
// running a batch and its admission budget must free — observed via
// /metrics, as a real operator would.
func TestCancelledRequestReleasesBudget(t *testing.T) {
	cfg := testConfig()
	cfg.CoalesceLinger = time.Hour // park: nothing flushes on its own
	cfg.BatchSize = 1024           // request stays below one batch
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()
	_, reads, _, _ := setup(t)
	n := 40

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/align?header=0", fastqBody(reads[:n]))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	// Wait until the request is admitted and parked.
	testutil.WaitUntil(t, 10*time.Second, func() bool { return s.adm.InFlight() == n },
		"request never admitted")
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("client Do returned nil error after cancellation")
	}

	// The admission budget must free promptly — this is what lets the next
	// request in instead of leaking capacity to a dead client.
	testutil.WaitUntil(t, 10*time.Second, func() bool { return s.adm.InFlight() == 0 },
		"admission budget not released")
	if got := scrapeMetric(t, ts.URL, "bwaserve_reads_dropped_total"); got != int64(n) {
		t.Fatalf("reads_dropped_total = %d, want %d", got, n)
	}
	if got := scrapeMetric(t, ts.URL, "bwaserve_requests_cancelled_total"); got != 1 {
		t.Fatalf("requests_cancelled_total = %d, want 1", got)
	}
	// The parked reads never became a batch: the queue dropped them before
	// any alignment ran.
	if got := s.coal.batches.Load(); got != 0 {
		t.Fatalf("%d batches ran for a request that was cancelled while parked", got)
	}
}

// TestMidStreamDeadlineAbortsConnection: once a response has started
// streaming, a deadline that truncates it must abort the connection —
// a chunked response that simply ends would read as a complete SAM
// document at the client. Three legitimate outcomes: 504 envelope
// (deadline before the first byte), every record delivered (fast
// machine), or a transport error on read. A clean EOF with records
// missing is the bug.
func TestMidStreamDeadlineAbortsConnection(t *testing.T) {
	cfg := testConfig()
	cfg.Threads = 1
	cfg.BatchSize = 8
	cfg.RequestTimeout = 80 * time.Millisecond
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()
	_, reads, _, _ := setup(t)

	big := make([]seq.Read, 0, 20*len(reads))
	for i := 0; i < 20; i++ {
		big = append(big, reads...)
	}
	resp, err := http.Post(ts.URL+"/align?header=0", "text/plain", fastqBody(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGatewayTimeout {
		return // deadline fired before the first byte: envelope path
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, readErr := io.ReadAll(resp.Body)
	records := bytes.Count(body, []byte{'\n'})
	if records < len(big) && readErr == nil {
		t.Fatalf("truncated stream (%d/%d records) ended as a clean EOF", records, len(big))
	}
}

// TestRequestTimeoutCancelsAlignment exercises the server-imposed deadline:
// a request parked in the coalescer past RequestTimeout is abandoned and
// reported as 504 (nothing had been written yet).
func TestRequestTimeoutCancelsAlignment(t *testing.T) {
	cfg := testConfig()
	cfg.CoalesceLinger = time.Hour
	cfg.BatchSize = 1024
	cfg.RequestTimeout = 50 * time.Millisecond
	s := newTestServer(t, cfg)
	_, reads, _, _ := setup(t)

	w := post(s, "/align?header=0", "", fastqBody(reads[:5]))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", w.Code, w.Body.String())
	}
	if got := s.met.readsDropped.Load(); got != 5 {
		t.Fatalf("readsDropped = %d, want 5", got)
	}
	if got := s.adm.InFlight(); got != 0 {
		t.Fatalf("inflight = %d after deadline", got)
	}
}

// TestRequestTimeoutPairedCountsDroppedReads: paired-end cancellation must
// meter its abandoned work in reads_dropped too (pairs count 2), even
// though paired requests bypass the coalescer.
func TestRequestTimeoutPairedCountsDroppedReads(t *testing.T) {
	cfg := testConfig()
	cfg.Threads = 1 // phase 1 takes far longer than the deadline
	cfg.RequestTimeout = 20 * time.Millisecond
	s := newTestServer(t, cfg)
	_, _, r1, r2 := setup(t)

	inter := make([]seq.Read, 0, 20*2*len(r1)) // 4000 pairs on one worker
	for rep := 0; rep < 20; rep++ {
		for i := range r1 {
			inter = append(inter, r1[i], r2[i])
		}
	}
	w := post(s, "/align/paired?header=0", "", fastqBody(inter))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %.80s", w.Code, w.Body.String())
	}
	if got := s.met.readsDropped.Load(); got <= 0 {
		t.Fatalf("reads_dropped = %d after a cancelled paired request", got)
	}
	if got := s.met.requestsCancelled.Load(); got != 1 {
		t.Fatalf("requests_cancelled = %d, want 1", got)
	}
	if got := s.adm.InFlight(); got != 0 {
		t.Fatalf("inflight = %d after deadline", got)
	}
}

// TestPairedClientDisconnectReleasesBudget is the paired-end twin of
// TestCancelledRequestReleasesBudget: a client that disconnects while its
// pairs are mid-alignment must have its admission budget released and its
// abandonment metered, and the capacity it held must be immediately
// usable by the next request. Paired requests bypass the coalescer, so
// the release path under test is the handler's own deferred Release — a
// leak here would not show up in any single-end test.
func TestPairedClientDisconnectReleasesBudget(t *testing.T) {
	cfg := testConfig()
	cfg.Threads = 1 // phase 1 on one worker: the request outlives the cancel
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()
	_, _, r1, r2 := setup(t)

	inter := make([]seq.Read, 0, 20*2*len(r1)) // 4000 pairs on one worker
	for rep := 0; rep < 20; rep++ {
		for i := range r1 {
			inter = append(inter, r1[i], r2[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/align/paired?header=0", fastqBody(inter))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errCh <- err
	}()

	testutil.WaitUntil(t, 10*time.Second, func() bool { return s.adm.InFlight() == len(inter) },
		"paired request never admitted")
	cancel()
	<-errCh // transport error or truncated read; either way the client is gone

	testutil.WaitUntil(t, 10*time.Second, func() bool { return s.adm.InFlight() == 0 },
		"paired admission budget not released after client disconnect")
	if got := s.met.requestsCancelled.Load(); got != 1 {
		t.Fatalf("requests_cancelled = %d, want 1", got)
	}
	dropped := s.met.readsDropped.Load()
	if dropped <= 0 || dropped%2 != 0 {
		t.Fatalf("reads_dropped = %d, want a positive even count (pairs count 2)", dropped)
	}
	// The freed budget must actually admit new work: a follow-up pair
	// aligns end to end.
	pair := []seq.Read{r1[0], r2[0]}
	if w := post(s, "/align/paired?header=0", "", fastqBody(pair)); w.Code != http.StatusOK {
		t.Fatalf("follow-up paired request after disconnect: status %d, body %.120s", w.Code, w.Body.String())
	}
}

// countingBody counts how many request-body bytes the server consumed.
type countingBody struct {
	r io.Reader
	n int
}

func (c *countingBody) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestStreamingDecodeStopsAtCap: the (MaxReadsPerRequest+1)-th read must be
// rejected mid-decode, without reading the rest of the body.
func TestStreamingDecodeStopsAtCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxReadsPerRequest = 8
	cfg.MaxInFlightReads = 100
	s := newTestServer(t, cfg)
	_, reads, _, _ := setup(t)

	// FASTQ: 8 allowed reads followed by a long tail, total below the body
	// byte limit so only the read-count cap can reject it.
	var buf bytes.Buffer
	for len(buf.Bytes()) < 700*1024 {
		seq.WriteFastq(&buf, reads[:50])
	}
	total := buf.Len()
	if int64(total) >= s.bodyLimit {
		t.Fatalf("test body %d exceeds the byte limit %d; the cap path would not be exercised", total, s.bodyLimit)
	}
	body := &countingBody{r: bytes.NewReader(buf.Bytes())}
	req := httptest.NewRequest(http.MethodPost, "/align", body)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413; body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "more than 8 reads") {
		t.Fatalf("unexpected rejection body: %s", w.Body.String())
	}
	// The decoder may read ahead by its buffer, but must not drain the body.
	if body.n > total/2 {
		t.Fatalf("server consumed %d of %d body bytes before rejecting at the cap", body.n, total)
	}

	// JSON path: same cap, enforced during the array decode.
	var jb bytes.Buffer
	jb.WriteString(`{"reads": [`)
	for i := 0; i < 1000; i++ {
		if i > 0 {
			jb.WriteByte(',')
		}
		fmt.Fprintf(&jb, `{"name": "r%d", "seq": "ACGTACGT"}`, i)
	}
	jb.WriteString(`]}`)
	jbody := &countingBody{r: bytes.NewReader(jb.Bytes())}
	req = httptest.NewRequest(http.MethodPost, "/align", jbody)
	req.Header.Set("Content-Type", "application/json")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("JSON cap: status %d, want 413", w.Code)
	}
	if jbody.n > jb.Len()/2 {
		t.Fatalf("JSON: server consumed %d of %d bytes before rejecting", jbody.n, jb.Len())
	}
}

// TestPairNameValidation: interleaved and JSON pairs whose names disagree
// (after /1, /2 suffix stripping) are rejected instead of silently paired.
func TestPairNameValidation(t *testing.T) {
	s := newTestServer(t, testConfig())
	_, reads, _, _ := setup(t)

	named := func(name string, src seq.Read) seq.Read {
		return seq.Read{Name: name, Seq: src.Seq, Qual: src.Qual}
	}

	// FASTQ, matching /1,/2 suffixes: accepted.
	ok := []seq.Read{named("p0/1", reads[0]), named("p0/2", reads[1])}
	if w := post(s, "/align/paired?header=0", "", fastqBody(ok)); w.Code != http.StatusOK {
		t.Fatalf("matching suffixed pair: status %d, body %s", w.Code, w.Body.String())
	}
	// FASTQ, mismatched names: rejected.
	bad := []seq.Read{named("p0/1", reads[0]), named("p1/2", reads[1])}
	if w := post(s, "/align/paired", "", fastqBody(bad)); w.Code != http.StatusBadRequest {
		t.Fatalf("mismatched interleaved pair: status %d", w.Code)
	}
	// Misordered interleave (1,2 swapped with the next pair) is caught too.
	misordered := []seq.Read{
		named("a/1", reads[0]), named("b/2", reads[1]),
		named("b/1", reads[2]), named("a/2", reads[3]),
	}
	if w := post(s, "/align/paired", "", fastqBody(misordered)); w.Code != http.StatusBadRequest {
		t.Fatalf("misordered interleave: status %d", w.Code)
	}

	// JSON path: mismatch rejected, match accepted.
	jsonPair := func(n1, n2 string) *bytes.Buffer {
		return bytes.NewBufferString(fmt.Sprintf(
			`{"reads1": [{"name": %q, "seq": "%s"}], "reads2": [{"name": %q, "seq": "%s"}]}`,
			n1, reads[0].Seq, n2, reads[1].Seq))
	}
	if w := post(s, "/align/paired", "application/json", jsonPair("x/1", "y/2")); w.Code != http.StatusBadRequest {
		t.Fatalf("mismatched JSON pair: status %d", w.Code)
	}
	if w := post(s, "/align/paired?header=0", "application/json", jsonPair("x/1", "x/2")); w.Code != http.StatusOK {
		t.Fatalf("matching JSON pair: status %d, body %s", w.Code, w.Body.String())
	}
}

// TestStreamedResponseCarriesHeaderBytes: samBytes must count everything
// written, header included (the old writeSAM excluded the header).
func TestStreamedResponseCarriesHeaderBytes(t *testing.T) {
	s := newTestServer(t, testConfig())
	_, reads, _, _ := setup(t)
	before := s.met.samBytes.Load()
	w := post(s, "/align", "", fastqBody(reads[:3]))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	wrote := s.met.samBytes.Load() - before
	if wrote != int64(w.Body.Len()) {
		t.Fatalf("samBytes grew %d for a %d-byte response (header must be counted)", wrote, w.Body.Len())
	}
	if !strings.HasPrefix(w.Body.String(), "@SQ\t") {
		t.Fatalf("response missing header: %.40q", w.Body.String())
	}
}
