package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestAdmissionBudget(t *testing.T) {
	q := newAdmission(10)
	if err := q.TryAcquire(6); err != nil {
		t.Fatal(err)
	}
	if err := q.TryAcquire(4); err != nil {
		t.Fatal(err)
	}
	if err := q.TryAcquire(1); err != errQueueFull {
		t.Fatalf("over budget: got %v", err)
	}
	q.Release(4)
	if err := q.TryAcquire(4); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if got := q.InFlight(); got != 10 {
		t.Fatalf("inflight = %d", got)
	}
}

func TestAdmissionDraining(t *testing.T) {
	q := newAdmission(10)
	if err := q.TryAcquire(3); err != nil {
		t.Fatal(err)
	}
	q.SetDraining()
	if err := q.TryAcquire(1); err != errDraining {
		t.Fatalf("draining: got %v", err)
	}
	ctx := context.Background()
	// WaitIdle times out while work is in flight...
	if q.WaitIdle(ctx, time.Now().Add(10*time.Millisecond)) {
		t.Fatal("WaitIdle succeeded with reads in flight")
	}
	// ...aborts promptly on context cancellation...
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	start := time.Now()
	if q.WaitIdle(cancelled, time.Now().Add(5*time.Second)) {
		t.Fatal("WaitIdle succeeded with cancelled context and reads in flight")
	}
	if time.Since(start) > time.Second {
		t.Fatal("WaitIdle ignored context cancellation")
	}
	// ...and returns once it drains.
	done := make(chan bool, 1)
	go func() { done <- q.WaitIdle(ctx, time.Now().Add(5*time.Second)) }()
	q.Release(3)
	if !<-done {
		t.Fatal("WaitIdle failed after drain")
	}
}

// TestWaitIdleWakesAllWaiters: several concurrent WaitIdle callers must
// all be notified by the Release that empties the queue (the notification
// channel replaced a 2ms busy-poll; the wakeup is the part that can
// regress).
func TestWaitIdleWakesAllWaiters(t *testing.T) {
	q := newAdmission(10)
	if err := q.TryAcquire(5); err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	done := make(chan bool, waiters)
	for i := 0; i < waiters; i++ {
		go func() { done <- q.WaitIdle(context.Background(), time.Now().Add(5*time.Second)) }()
	}
	q.Release(5)
	for i := 0; i < waiters; i++ {
		select {
		case ok := <-done:
			if !ok {
				t.Fatal("waiter reported timeout after the queue drained")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke")
		}
	}
	// A later acquire/release cycle must mint a fresh notification channel.
	if err := q.TryAcquire(2); err != nil {
		t.Fatal(err)
	}
	go func() { done <- q.WaitIdle(context.Background(), time.Now().Add(5*time.Second)) }()
	q.Release(2)
	if !<-done {
		t.Fatal("second-cycle waiter failed")
	}
}

func TestAdmissionConcurrentAccounting(t *testing.T) {
	q := newAdmission(1 << 30)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := q.TryAcquire(3); err != nil {
					t.Error(err)
					return
				}
				q.Release(3)
			}
		}()
	}
	wg.Wait()
	if got := q.InFlight(); got != 0 {
		t.Fatalf("inflight = %d after balanced acquire/release", got)
	}
}
