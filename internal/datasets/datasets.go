// Package datasets generates the synthetic workloads that stand in for the
// paper's evaluation data (Table 3). The paper used the first half of human
// genome Hg38 (~1.5 Gbp) and five read sets from the Broad Institute and
// NCBI SRA; neither is available nor tractable at laptop scale, so this
// package produces:
//
//   - deterministic synthetic genomes with a controllable repeat structure
//     (repeats are what make SMEM seeding, re-seeding and chain filtering
//     take their interesting paths), and
//   - simulated read sets matching the D1-D5 profiles' read lengths and
//     relative sizes, with an Illumina-like substitution-dominated error
//     model.
//
// Every generator is seeded and reproducible.
package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// GenomeConfig controls synthetic genome generation.
type GenomeConfig struct {
	Name       string
	Length     int
	Seed       int64
	RepeatProb float64 // probability per emitted segment of copying an earlier one
	RepeatMin  int     // copied segment length bounds
	RepeatMax  int
	Divergence float64 // per-base mutation rate applied to repeat copies
}

// DefaultGenome returns a config with a mild repeat structure (about 15% of
// the genome consists of diverged repeats, loosely mimicking the repeat
// content that drives BWA-MEM's heuristics).
func DefaultGenome(name string, length int, seed int64) GenomeConfig {
	return GenomeConfig{
		Name: name, Length: length, Seed: seed,
		RepeatProb: 0.02, RepeatMin: 200, RepeatMax: 1000, Divergence: 0.02,
	}
}

// Genome builds a synthetic reference.
func Genome(cfg GenomeConfig) (*seq.Reference, error) {
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("datasets: genome length %d", cfg.Length)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bases := make([]byte, 0, cfg.Length)
	for len(bases) < cfg.Length {
		if len(bases) > 2*cfg.RepeatMax && rng.Float64() < cfg.RepeatProb {
			// Copy an earlier segment with some divergence: a repeat.
			segLen := cfg.RepeatMin + rng.Intn(cfg.RepeatMax-cfg.RepeatMin+1)
			if segLen > cfg.Length-len(bases) {
				segLen = cfg.Length - len(bases)
			}
			src := rng.Intn(len(bases) - segLen)
			for i := 0; i < segLen; i++ {
				b := bases[src+i]
				if rng.Float64() < cfg.Divergence {
					b = "ACGT"[rng.Intn(4)]
				}
				bases = append(bases, b)
			}
		} else {
			run := 64
			if run > cfg.Length-len(bases) {
				run = cfg.Length - len(bases)
			}
			for i := 0; i < run; i++ {
				bases = append(bases, "ACGT"[rng.Intn(4)])
			}
		}
	}
	return seq.NewReference([]string{cfg.Name}, [][]byte{bases})
}

// Profile describes one simulated read set (Table 3 analogue).
type Profile struct {
	Name      string
	NumReads  int
	ReadLen   int
	SubRate   float64 // per-base substitution probability
	IndelRate float64 // per-read probability of one short (1-3 bp) indel
	Seed      int64
}

// The D1-D5 profiles match Table 3's read lengths; counts keep the paper's
// 1 : 1 : 2.5 : 2.5 : 2.5 ratio at a laptop-friendly base size that callers
// scale with Scaled.
var (
	D1 = Profile{Name: "D1", NumReads: 2000, ReadLen: 151, SubRate: 0.003, IndelRate: 0.10, Seed: 101}
	D2 = Profile{Name: "D2", NumReads: 2000, ReadLen: 151, SubRate: 0.006, IndelRate: 0.12, Seed: 102}
	D3 = Profile{Name: "D3", NumReads: 5000, ReadLen: 76, SubRate: 0.008, IndelRate: 0.08, Seed: 103}
	D4 = Profile{Name: "D4", NumReads: 5000, ReadLen: 101, SubRate: 0.005, IndelRate: 0.10, Seed: 104}
	D5 = Profile{Name: "D5", NumReads: 5000, ReadLen: 101, SubRate: 0.010, IndelRate: 0.15, Seed: 105}
)

// Profiles lists D1-D5 in order.
func Profiles() []Profile { return []Profile{D1, D2, D3, D4, D5} }

// Scaled returns a copy of p with the read count multiplied by f (minimum 1).
func (p Profile) Scaled(f float64) Profile {
	n := int(float64(p.NumReads) * f)
	if n < 1 {
		n = 1
	}
	p.NumReads = n
	return p
}

// Simulate samples reads from the reference under the profile's error
// model: uniform positions, random strand, per-base substitutions, and an
// occasional short indel. Read names encode the truth for evaluation:
// <profile>_<index>_<pos>_<strand>.
func Simulate(ref *seq.Reference, p Profile) ([]seq.Read, error) {
	if ref.Lpac() < p.ReadLen+10 {
		return nil, fmt.Errorf("datasets: reference (%d bp) shorter than reads (%d bp)", ref.Lpac(), p.ReadLen)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	reads := make([]seq.Read, 0, p.NumReads)
	for i := 0; i < p.NumReads; i++ {
		pos := rng.Intn(ref.Lpac() - p.ReadLen - 5)
		window := append([]byte(nil), ref.Pac[pos:pos+p.ReadLen+5]...)
		// One short indel per read with probability IndelRate.
		if rng.Float64() < p.IndelRate {
			n := 1 + rng.Intn(3)
			at := 5 + rng.Intn(len(window)-10-n)
			if rng.Intn(2) == 0 { // deletion from the read
				window = append(window[:at], window[at+n:]...)
			} else { // insertion into the read
				ins := make([]byte, n)
				for k := range ins {
					ins[k] = byte(rng.Intn(4))
				}
				window = append(window[:at], append(ins, window[at:]...)...)
			}
		}
		codes := window[:p.ReadLen]
		// Substitutions.
		for k := range codes {
			if rng.Float64() < p.SubRate {
				codes[k] = byte(rng.Intn(4))
			}
		}
		strand := byte('+')
		if rng.Intn(2) == 1 {
			seq.RevCompInPlace(codes)
			strand = '-'
		}
		qual := make([]byte, p.ReadLen)
		for k := range qual {
			qual[k] = byte('A' + rng.Intn(8)) // Q32..Q39
		}
		reads = append(reads, seq.Read{
			Name: fmt.Sprintf("%s_%d_%d_%c", p.Name, i, pos, strand),
			Seq:  seq.Decode(codes),
			Qual: qual,
		})
	}
	return reads, nil
}

// PairProfile extends a read profile with fragment (insert) sizing for
// paired-end simulation in standard Illumina FR orientation.
type PairProfile struct {
	Profile
	InsertMean int
	InsertStd  int
}

// DefaultPairs derives a paired profile with a 3x-read-length mean insert.
func DefaultPairs(p Profile) PairProfile {
	return PairProfile{Profile: p, InsertMean: 3 * p.ReadLen, InsertStd: p.ReadLen / 3}
}

// SimulatePairs samples read pairs: a fragment of normally distributed
// length is placed uniformly (random strand); read 1 is the fragment's
// first ReadLen bases, read 2 the reverse complement of its last ReadLen
// bases. Both ends carry the same name (as SAM requires):
// <profile>p_<index>_<fragpos>_<fraglen>. Errors follow the profile.
func SimulatePairs(ref *seq.Reference, p PairProfile) (r1, r2 []seq.Read, err error) {
	minInsert := p.ReadLen
	if ref.Lpac() < p.InsertMean+6*p.InsertStd+10 {
		return nil, nil, fmt.Errorf("datasets: reference (%d bp) too short for inserts ~%d bp",
			ref.Lpac(), p.InsertMean)
	}
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5a5a))
	applyErrors := func(codes []byte) {
		for k := range codes {
			if rng.Float64() < p.SubRate {
				codes[k] = byte(rng.Intn(4))
			}
		}
	}
	for i := 0; i < p.NumReads; i++ {
		flen := p.InsertMean + int(rng.NormFloat64()*float64(p.InsertStd))
		if flen < minInsert {
			flen = minInsert
		}
		if flen > ref.Lpac()-2 {
			flen = ref.Lpac() - 2
		}
		pos := rng.Intn(ref.Lpac() - flen)
		frag := append([]byte(nil), ref.Pac[pos:pos+flen]...)
		if rng.Intn(2) == 1 {
			seq.RevCompInPlace(frag)
		}
		e1 := append([]byte(nil), frag[:p.ReadLen]...)
		e2 := seq.RevComp(frag[flen-p.ReadLen:])
		applyErrors(e1)
		applyErrors(e2)
		name := fmt.Sprintf("%sp_%d_%d_%d", p.Name, i, pos, flen)
		qual := make([]byte, p.ReadLen)
		for k := range qual {
			qual[k] = byte('A' + rng.Intn(8))
		}
		r1 = append(r1, seq.Read{Name: name, Seq: seq.Decode(e1), Qual: qual})
		r2 = append(r2, seq.Read{Name: name, Seq: seq.Decode(e2), Qual: append([]byte(nil), qual...)})
	}
	return r1, r2, nil
}

// TruePair parses the fragment position and length from a paired read name.
func TruePair(name string) (pos, flen int, ok bool) {
	last, prev := -1, -1
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '_' {
			if last < 0 {
				last = i
			} else {
				prev = i
				break
			}
		}
	}
	if last < 0 || prev < 0 {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(name[prev+1:last], "%d", &pos); err != nil {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(name[last+1:], "%d", &flen); err != nil {
		return 0, 0, false
	}
	return pos, flen, true
}

// TruePos parses the position and strand encoded in a simulated read name
// (fields separated by '_'; the last two are position and strand).
func TruePos(name string) (pos int, rev bool, ok bool) {
	last, prev := -1, -1
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '_' {
			if last < 0 {
				last = i
			} else {
				prev = i
				break
			}
		}
	}
	if last < 0 || prev < 0 || last != len(name)-2 {
		return 0, false, false
	}
	if _, err := fmt.Sscanf(name[prev+1:last], "%d", &pos); err != nil {
		return 0, false, false
	}
	return pos, name[len(name)-1] == '-', true
}
