package datasets

import (
	"bytes"
	"testing"

	"repro/internal/seq"
)

func TestGenomeDeterministicAndSized(t *testing.T) {
	cfg := DefaultGenome("g", 100000, 7)
	r1, err := Genome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Genome(cfg)
	if r1.Lpac() != 100000 {
		t.Fatalf("length %d", r1.Lpac())
	}
	if !bytes.Equal(r1.Pac, r2.Pac) {
		t.Fatal("genome generation not deterministic")
	}
	cfg.Seed = 8
	r3, _ := Genome(cfg)
	if bytes.Equal(r1.Pac, r3.Pac) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenomeHasRepeats(t *testing.T) {
	cfg := DefaultGenome("g", 200000, 9)
	ref, _ := Genome(cfg)
	// Count 32-mers that occur more than once; with repeats there must be a
	// meaningful number, far more than random chance (4^32 >> genome size).
	seen := map[string]int{}
	for i := 0; i+32 <= ref.Lpac(); i += 8 {
		seen[string(ref.Pac[i:i+32])]++
	}
	dup := 0
	for _, c := range seen {
		if c > 1 {
			dup++
		}
	}
	if dup < 50 {
		t.Fatalf("only %d duplicated 32-mers; repeat structure missing", dup)
	}
	// And a no-repeat genome should have almost none.
	cfg.RepeatProb = 0
	ref2, _ := Genome(cfg)
	seen = map[string]int{}
	for i := 0; i+32 <= ref2.Lpac(); i += 8 {
		seen[string(ref2.Pac[i:i+32])]++
	}
	dup2 := 0
	for _, c := range seen {
		if c > 1 {
			dup2++
		}
	}
	if dup2 > dup/10 {
		t.Fatalf("repeat-free genome has %d duplicated 32-mers vs %d", dup2, dup)
	}
}

func TestGenomeRejectsBadLength(t *testing.T) {
	if _, err := Genome(GenomeConfig{Name: "g", Length: 0}); err == nil {
		t.Fatal("zero length should error")
	}
}

func TestSimulateProfiles(t *testing.T) {
	ref, _ := Genome(DefaultGenome("g", 50000, 11))
	for _, p := range Profiles() {
		p = p.Scaled(0.05)
		reads, err := Simulate(ref, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(reads) != p.NumReads {
			t.Fatalf("%s: %d reads, want %d", p.Name, len(reads), p.NumReads)
		}
		for _, rd := range reads {
			if len(rd.Seq) != p.ReadLen || len(rd.Qual) != p.ReadLen {
				t.Fatalf("%s: read %s has len %d", p.Name, rd.Name, len(rd.Seq))
			}
			pos, _, ok := TruePos(rd.Name)
			if !ok || pos < 0 || pos >= ref.Lpac() {
				t.Fatalf("%s: bad truth encoding %q", p.Name, rd.Name)
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	ref, _ := Genome(DefaultGenome("g", 50000, 12))
	r1, _ := Simulate(ref, D1.Scaled(0.02))
	r2, _ := Simulate(ref, D1.Scaled(0.02))
	for i := range r1 {
		if !bytes.Equal(r1[i].Seq, r2[i].Seq) || r1[i].Name != r2[i].Name {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestSimulateErrorsPresent(t *testing.T) {
	ref, _ := Genome(DefaultGenome("g", 80000, 13))
	p := D5.Scaled(0.1) // highest error rate profile
	reads, _ := Simulate(ref, p)
	mismatched := 0
	for _, rd := range reads {
		pos, rev, _ := TruePos(rd.Name)
		codes := seq.Encode(rd.Seq)
		if rev {
			seq.RevCompInPlace(codes)
		}
		orig := ref.Pac[pos : pos+p.ReadLen]
		if !bytes.Equal(codes, orig) {
			mismatched++
		}
	}
	if mismatched < len(reads)/3 {
		t.Fatalf("error model too weak: only %d/%d reads differ", mismatched, len(reads))
	}
}

func TestSimulateTooShortReference(t *testing.T) {
	ref, _ := Genome(DefaultGenome("g", 100, 14))
	if _, err := Simulate(ref, D1); err == nil {
		t.Fatal("short reference should error")
	}
}

func TestSimulatePairs(t *testing.T) {
	ref, _ := Genome(DefaultGenome("g", 80000, 15))
	pp := DefaultPairs(D4.Scaled(0.05))
	r1, r2, err := SimulatePairs(ref, pp)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) || len(r1) != pp.NumReads {
		t.Fatalf("pair counts: %d %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Name != r2[i].Name {
			t.Fatal("pair names must match")
		}
		if len(r1[i].Seq) != pp.ReadLen || len(r2[i].Seq) != pp.ReadLen {
			t.Fatal("read lengths")
		}
		pos, flen, ok := TruePair(r1[i].Name)
		if !ok || pos < 0 || flen < pp.ReadLen || pos+flen > ref.Lpac() {
			t.Fatalf("bad truth %q -> %d %d", r1[i].Name, pos, flen)
		}
	}
	// The two ends of an error-free pair bracket the fragment: end 2 is the
	// reverse complement of the fragment tail (verify on a clean profile).
	clean := pp
	clean.SubRate, clean.IndelRate = 0, 0
	c1, c2, _ := SimulatePairs(ref, clean)
	for i := range c1 {
		pos, flen, _ := TruePair(c1[i].Name)
		frag := ref.Pac[pos : pos+flen]
		e1 := seq.Encode(c1[i].Seq)
		e2 := seq.RevComp(seq.Encode(c2[i].Seq))
		fwd := bytes.Equal(e1, frag[:clean.ReadLen]) && bytes.Equal(e2, frag[flen-clean.ReadLen:])
		revFrag := seq.RevComp(frag)
		rev := bytes.Equal(e1, revFrag[:clean.ReadLen]) && bytes.Equal(e2, revFrag[flen-clean.ReadLen:])
		if !fwd && !rev {
			t.Fatalf("pair %d does not bracket its fragment", i)
		}
	}
}

func TestSimulatePairsTooShort(t *testing.T) {
	ref, _ := Genome(DefaultGenome("g", 500, 16))
	if _, _, err := SimulatePairs(ref, DefaultPairs(D1)); err == nil {
		t.Fatal("short reference should error")
	}
}

func TestTruePosParsing(t *testing.T) {
	if pos, rev, ok := TruePos("D1_42_1234_-"); !ok || pos != 1234 || !rev {
		t.Fatalf("parse: %d %v %v", pos, rev, ok)
	}
	if pos, rev, ok := TruePos("D3_0_77_+"); !ok || pos != 77 || rev {
		t.Fatalf("parse: %d %v %v", pos, rev, ok)
	}
	if _, _, ok := TruePos("garbage"); ok {
		t.Fatal("garbage name should not parse")
	}
}
