// Package testutil holds the small test helpers the serving-path tests
// share: bounded condition polling (replacing ad-hoc sleep loops) and a
// goroutine-leak checker with grace retries (background goroutines — HTTP
// keep-alive reapers, timer callbacks, scheduler workers mid-teardown —
// need a few milliseconds to unwind before a count comparison is fair).
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// pollEvery is the condition re-check interval for Eventually/WaitUntil:
// fine enough that tests do not dawdle, coarse enough not to busy-spin.
const pollEvery = time.Millisecond

// Eventually polls cond until it reports true or timeout elapses, and
// returns the final answer. Use it where a test tolerates the condition
// never holding (e.g. a request that may finish before it can be observed
// in flight); use WaitUntil when the condition is mandatory.
func Eventually(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(pollEvery)
	}
}

// WaitUntil polls cond until it reports true, failing the test if timeout
// elapses first.
func WaitUntil(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if !Eventually(timeout, cond) {
		t.Fatalf(format, args...)
	}
}

// Goroutines snapshots the current goroutine count. Take it before the
// code under test starts anything, pass it to CheckGoroutines after
// teardown.
func Goroutines() int { return runtime.NumGoroutine() }

// leakGrace bounds how long CheckGoroutines waits for stragglers to
// unwind before declaring a leak.
const leakGrace = 5 * time.Second

// CheckGoroutines asserts the goroutine count has returned to within
// slack of the baseline snapshot. Goroutines that are shutting down but
// not yet gone are not leaks, so the check retries with short sleeps (and
// a GC cycle, which runs finalizers that close lingering resources) for
// up to leakGrace before failing; on failure it dumps all goroutine
// stacks so the leaked one is identifiable.
func CheckGoroutines(t testing.TB, baseline, slack int) {
	t.Helper()
	limit := baseline + slack
	var n int
	ok := Eventually(leakGrace, func() bool {
		n = runtime.NumGoroutine()
		if n <= limit {
			return true
		}
		runtime.GC()
		return false
	})
	if ok {
		return
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d running, baseline %d (slack %d)\n%s", n, baseline, slack, buf)
}
