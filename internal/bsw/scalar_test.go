package bsw

import (
	"math/rand"
	"testing"
)

// refExtendDense is an independent full-matrix implementation of the
// extension recurrence (Equations 2-3 plus ksw_extend's M/H separation and
// score trackers) with no band and no dynamic band shrinking. It is only
// comparable to ExtendScalar on inputs where the band never clips and no
// all-zero region appears (see callers), which is exactly how it is used.
func refExtendDense(p *Params, query, target []byte, h0 int) ExtResult {
	qlen, tlen := len(query), len(target)
	oeDel, oeIns := p.ODel+p.EDel, p.OIns+p.EIns
	max0 := func(v int) int {
		if v < 0 {
			return 0
		}
		return v
	}
	// hm[ti][qj]: score after consuming ti target and qj query bases.
	hm := make([][]int, tlen+1)
	mm := make([][]int, tlen+1)
	em := make([][]int, tlen+1)
	fm := make([][]int, tlen+1)
	for i := range hm {
		hm[i] = make([]int, qlen+1)
		mm[i] = make([]int, qlen+1)
		em[i] = make([]int, qlen+1)
		fm[i] = make([]int, qlen+1)
	}
	hm[0][0] = h0
	for qj := 1; qj <= qlen; qj++ {
		hm[0][qj] = max0(h0 - p.OIns - p.EIns*qj)
	}
	max, maxI, maxJ := h0, -1, -1
	maxIE, gscore, maxOff := -1, -1, 0
	for ti := 1; ti <= tlen; ti++ {
		hm[ti][0] = max0(h0 - p.ODel - p.EDel*ti)
		m, mj := 0, -1
		for qj := 1; qj <= qlen; qj++ {
			diag := hm[ti-1][qj-1]
			M := 0
			if diag != 0 {
				M = diag + int(p.Mat[int(target[ti-1])*5+int(query[qj-1])])
			}
			mm[ti][qj] = M
			e := 0
			if ti >= 2 {
				e = em[ti][qj]
			}
			f := 0
			if qj >= 2 {
				f = fm[ti][qj]
			}
			h := M
			if h < e {
				h = e
			}
			if h < f {
				h = f
			}
			hm[ti][qj] = h
			if m <= h {
				m, mj = h, qj-1
			}
			// E for the next row and F for the next column.
			tv := max0(M - oeDel)
			ev := e - p.EDel
			if ev < tv {
				ev = tv
			}
			if ti+1 <= tlen {
				em[ti+1][qj] = ev
			}
			tv = max0(M - oeIns)
			fv := f - p.EIns
			if fv < tv {
				fv = tv
			}
			if qj+1 <= qlen {
				fm[ti][qj+1] = fv
			}
		}
		h1 := hm[ti][qlen]
		if gscore <= h1 {
			maxIE, gscore = ti-1, h1
		}
		if m == 0 {
			break
		}
		if m > max {
			max, maxI, maxJ = m, ti-1, mj
			off := mj - (ti - 1)
			if off < 0 {
				off = -off
			}
			if off > maxOff {
				maxOff = off
			}
		}
	}
	return ExtResult{Score: max, QLE: maxJ + 1, TLE: maxI + 1,
		GTLE: maxIE + 1, GScore: gscore, MaxOff: maxOff}
}

// randSeq returns n random bases.
func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

// mutate copies src applying some substitutions.
func mutate(rng *rand.Rand, src []byte, subs int) []byte {
	out := append([]byte(nil), src...)
	for i := 0; i < subs; i++ {
		out[rng.Intn(len(out))] = byte(rng.Intn(4))
	}
	return out
}

func TestExtendScalarPerfectMatch(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 5, 50, 200} {
		s := randSeq(rng, n)
		h0 := 30
		res := ExtendScalar(&p, s, s, 100, h0, nil, nil)
		want := h0 + n // one match point per base
		if res.Score != want || res.QLE != n || res.TLE != n {
			t.Fatalf("n=%d: %+v, want score %d qle/tle %d", n, res, want, n)
		}
		if res.GScore != want || res.GTLE != n {
			t.Fatalf("n=%d: gscore %d gtle %d, want %d %d", n, res.GScore, res.GTLE, want, n)
		}
		if res.MaxOff != 0 {
			t.Fatalf("n=%d: max_off = %d on the main diagonal", n, res.MaxOff)
		}
	}
}

func TestExtendScalarSingleMismatch(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(42))
	n, h0 := 40, 25
	q := randSeq(rng, n)
	tg := append([]byte(nil), q...)
	tg[20] = (tg[20] + 1) & 3
	res := ExtendScalar(&p, q, tg, 100, h0, nil, nil)
	// Best full extension: h0 + 39 matches - 4 mismatch.
	want := h0 + (n - 1) - 4
	if res.Score != want || res.QLE != n || res.TLE != n {
		t.Fatalf("%+v, want score %d", res, want)
	}
	// Prefix-only alignment would be h0+20 at (20,20); full wins since 60>45.
	if res.GScore != want {
		t.Fatalf("gscore = %d, want %d", res.GScore, want)
	}
}

func TestExtendScalarSingleDeletion(t *testing.T) {
	// Target has one extra base (a deletion from the query's perspective).
	p := DefaultParams()
	rng := rand.New(rand.NewSource(43))
	n, h0 := 40, 30
	q := randSeq(rng, n)
	tg := make([]byte, 0, n+1)
	tg = append(tg, q[:20]...)
	tg = append(tg, (q[20]+2)&3)
	tg = append(tg, q[20:]...)
	res := ExtendScalar(&p, q, tg, 100, h0, nil, nil)
	want := h0 + n - p.ODel - p.EDel // 40 matches, one 1-base gap
	if res.Score != want {
		t.Fatalf("score = %d, want %d (%+v)", res.Score, want, res)
	}
	if res.TLE != n+1 || res.QLE != n {
		t.Fatalf("qle/tle = %d/%d, want %d/%d", res.QLE, res.TLE, n, n+1)
	}
}

func TestExtendScalarZeroRowAborts(t *testing.T) {
	// A tiny h0 against garbage dies immediately: score stays h0.
	p := DefaultParams()
	rng := rand.New(rand.NewSource(44))
	q := randSeq(rng, 30)
	tg := mutate(rng, q, 30) // heavy corruption
	res := ExtendScalar(&p, q, tg, 100, 1, nil, nil)
	if res.Score < 1 {
		t.Fatalf("score %d below h0", res.Score)
	}
}

func TestExtendScalarEmptyInputs(t *testing.T) {
	p := DefaultParams()
	res := ExtendScalar(&p, nil, []byte{0, 1, 2}, 100, 10, nil, nil)
	if res.Score != 10 || res.QLE != 0 {
		t.Fatalf("empty query: %+v", res)
	}
	res = ExtendScalar(&p, []byte{0, 1, 2}, nil, 100, 10, nil, nil)
	if res.Score != 10 || res.TLE != 0 || res.GScore != -1 {
		t.Fatalf("empty target: %+v", res)
	}
}

func TestExtendScalarMatchesDenseReference(t *testing.T) {
	// Compare against the independent full-matrix implementation in the
	// regime where they are defined to agree: a huge h0 keeps every cell
	// positive (no zero-region shrinking), Zdrop=0 disables the drop
	// heuristic, and tlen <= qlen keeps the effective band (which the
	// scalar engine clamps to about qlen) from ever clipping a row.
	p := DefaultParams()
	p.Zdrop = 0
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 300; trial++ {
		qlen := 2 + rng.Intn(12)
		tlen := 1 + rng.Intn(qlen)
		var q, tg []byte
		if trial%2 == 0 {
			q, tg = randSeq(rng, qlen), randSeq(rng, tlen)
		} else {
			q = randSeq(rng, qlen)
			tg = mutate(rng, q, 1+rng.Intn(3))
			tg = tg[:min(len(tg), tlen)]
			if len(tg) == 0 {
				tg = randSeq(rng, 1)
			}
		}
		h0 := 500 // dominates any penalty sum at these lengths
		got := ExtendScalar(&p, q, tg, 100, h0, nil, nil)
		want := refExtendDense(&p, q, tg, h0)
		if got != want {
			t.Fatalf("trial %d: q=%v t=%v h0=%d:\ngot  %+v\nwant %+v", trial, q, tg, h0, got, want)
		}
	}
}

func TestExtendScalarCellStats(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(46))
	q := randSeq(rng, 100)
	tg := mutate(rng, q, 5)
	var st CellStats
	ExtendScalar(&p, q, tg, 100, 30, nil, &st)
	if st.ScalarCells == 0 || st.ScalarRows == 0 {
		t.Fatalf("stats not collected: %+v", st)
	}
	if st.ScalarCells > int64(len(q))*int64(len(tg)) {
		t.Fatalf("more cells than the full matrix: %+v", st)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
