package bsw

// Banded global alignment with traceback (a port of BWA's ksw_global2).
// BWA-MEM uses this after seed extension to produce the final CIGAR of each
// alignment region; it is part of the SAM-FORM stage, not one of the three
// hot kernels, but the pipeline needs it to emit output.

// CIGAR operation codes, matching BAM conventions.
const (
	CigarMatch = 0 // M
	CigarIns   = 1 // I (consumes query)
	CigarDel   = 2 // D (consumes target)
	CigarSoft  = 4 // S (soft clip; added by the SAM layer)
)

// Cigar is a sequence of length<<4|op entries, as in BAM.
type Cigar []uint32

// PushOp appends length n of operation op, merging with a trailing run of
// the same op.
func (c Cigar) PushOp(op uint32, n int) Cigar {
	if n <= 0 {
		return c
	}
	if len(c) > 0 && c[len(c)-1]&0xf == op {
		c[len(c)-1] += uint32(n) << 4
		return c
	}
	return append(c, uint32(n)<<4|op)
}

// Lens returns the total query and target lengths consumed by the CIGAR.
func (c Cigar) Lens() (qlen, tlen int) {
	for _, e := range c {
		n := int(e >> 4)
		switch e & 0xf {
		case CigarMatch:
			qlen += n
			tlen += n
		case CigarIns, CigarSoft:
			qlen += n
		case CigarDel:
			tlen += n
		}
	}
	return
}

// String renders the CIGAR in SAM text form.
func (c Cigar) String() string {
	if len(c) == 0 {
		return "*"
	}
	const ops = "MIDNSHP=X"
	buf := make([]byte, 0, len(c)*4)
	for _, e := range c {
		buf = appendUint(buf, e>>4)
		buf = append(buf, ops[e&0xf])
	}
	return string(buf)
}

func appendUint(b []byte, v uint32) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [10]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

const minusInf = int32(-(1 << 29))

// Global computes the banded global alignment score of query against target
// and, when withCigar is set, the CIGAR of one optimal alignment. Cells more
// than w off the main diagonal are unreachable.
func Global(p *Params, query, target []byte, w int, withCigar bool) (int, Cigar) {
	qlen, tlen := len(query), len(target)
	switch {
	case qlen == 0 && tlen == 0:
		return 0, nil
	case qlen == 0:
		return -(p.ODel + p.EDel*tlen), Cigar(nil).PushOp(CigarDel, tlen)
	case tlen == 0:
		return -(p.OIns + p.EIns*qlen), Cigar(nil).PushOp(CigarIns, qlen)
	}
	oeDel := int32(p.ODel + p.EDel)
	oeIns := int32(p.OIns + p.EIns)
	eDel, eIns := int32(p.EDel), int32(p.EIns)

	if w < 1 {
		w = 1
	}
	// The band must admit the length difference, or no global path exists.
	if d := qlen - tlen; d > 0 && w < d {
		w = d
	} else if d < 0 && w < -d {
		w = -d
	}

	nCol := qlen
	if 2*w+1 < nCol {
		nCol = 2*w + 1
	}
	var z []uint8 // direction matrix, tlen x nCol
	if withCigar {
		z = make([]uint8, tlen*nCol)
	}

	h := make([]int32, qlen+1)
	e := make([]int32, qlen+1)
	qp := make([]int8, 5*qlen)
	for k, i := 0, 0; k < 5; k++ {
		row := p.Mat[k*5 : k*5+5]
		for j := 0; j < qlen; j++ {
			qp[i] = row[query[j]]
			i++
		}
	}

	// First row.
	h[0], e[0] = 0, minusInf
	for j := 1; j <= qlen && j <= w; j++ {
		h[j] = int32(-(p.OIns + p.EIns*j))
		e[j] = minusInf
	}
	for j := w + 1; j <= qlen; j++ {
		h[j], e[j] = minusInf, minusInf
	}

	for i := 0; i < tlen; i++ {
		f := minusInf
		beg, end := 0, qlen
		if i > w {
			beg = i - w
		}
		if i+w+1 < qlen {
			end = i + w + 1
		}
		h1 := minusInf
		if beg == 0 {
			h1 = int32(-(p.ODel + p.EDel*(i+1)))
		}
		q := qp[int(target[i])*qlen : int(target[i])*qlen+qlen]
		var zi []uint8
		if z != nil {
			zi = z[i*nCol : (i+1)*nCol]
		}
		for j := beg; j < end; j++ {
			// h[j] = H(i-1,j-1), e[j] = E(i,j), f = F(i,j), h1 = H(i,j-1).
			m, ev := h[j], e[j]
			h[j] = h1
			m += int32(q[j])
			var d uint8
			hv := m
			if m < ev {
				hv, d = ev, 1
			}
			if hv < f {
				hv = f
			}
			if hv == f { // ties resolve toward F, as in ksw_global
				d = 2
			}
			h1 = hv
			t := m - oeDel
			ev -= eDel
			if ev > t {
				d |= 1 << 2
			} else {
				ev = t
			}
			e[j] = ev
			t = m - oeIns
			f -= eIns
			if f > t {
				d |= 2 << 4
			} else {
				f = t
			}
			if zi != nil {
				zi[j-beg] = d
			}
		}
		h[end], e[end] = h1, minusInf
	}
	score := int(h[qlen])
	if !withCigar {
		return score, nil
	}

	// Traceback: a small state machine over the two-bit direction fields
	// (state 0 = in H, 1 = in E/deletion run, 2 = in F/insertion run).
	var rev Cigar
	which := uint8(0)
	i, k := tlen-1, qlen-1
	for i >= 0 && k >= 0 {
		beg := 0
		if i > w {
			beg = i - w
		}
		d := z[i*nCol+(k-beg)]
		which = d >> (which << 1) & 3
		switch which {
		case 0:
			rev = rev.PushOp(CigarMatch, 1)
			i--
			k--
		case 1:
			rev = rev.PushOp(CigarDel, 1)
			i--
		default:
			rev = rev.PushOp(CigarIns, 1)
			k--
		}
	}
	if i >= 0 {
		rev = rev.PushOp(CigarDel, i+1)
	}
	if k >= 0 {
		rev = rev.PushOp(CigarIns, k+1)
	}
	// Reverse the run-length entries.
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return score, rev
}
