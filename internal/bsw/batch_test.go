package bsw

import (
	"math/rand"
	"sort"
	"testing"
)

// randJobs builds extension jobs resembling the real workload: targets are
// mutated copies of queries (sometimes with indel-like length changes),
// lengths vary, and h0 is a plausible seed score.
func randJobs(rng *rand.Rand, n, maxLen, maxH0 int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		qlen := 1 + rng.Intn(maxLen)
		q := randSeq(rng, qlen)
		var tg []byte
		switch rng.Intn(4) {
		case 0: // unrelated
			tg = randSeq(rng, 1+rng.Intn(maxLen))
		case 1: // mutated copy
			tg = mutate(rng, q, 1+rng.Intn(4))
		case 2: // mutated, truncated
			tg = mutate(rng, q, rng.Intn(3))
			tg = tg[:1+rng.Intn(len(tg))]
		default: // mutated, extended
			tg = append(mutate(rng, q, rng.Intn(3)), randSeq(rng, rng.Intn(20))...)
		}
		jobs[i] = Job{Query: q, Target: tg, W: 100, H0: 1 + rng.Intn(maxH0)}
	}
	return jobs
}

func scalarAll(p *Params, jobs []Job) []ExtResult {
	var buf ScalarBuf
	out := make([]ExtResult, len(jobs))
	for i, j := range jobs {
		out[i] = ExtendScalar(p, j.Query, j.Target, j.W, j.H0, &buf, nil)
	}
	return out
}

// TestBatchIdenticalToScalar is the reproduction of the paper's central
// correctness requirement (§1, §6.1.3): the vectorized engines must produce
// output identical to the scalar original, across precisions, widths, and
// sorting choices.
func TestBatchIdenticalToScalar(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		jobs := randJobs(rng, 200, 120, 40)
		want := scalarAll(&p, jobs)
		for _, cfg := range []BatchConfig{
			{Width8: 64, Width16: 32, Sort: true},
			{Width8: 64, Width16: 32, Sort: false},
			{Width8: 16, Width16: 8, Sort: true},
			{Width8: 1, Width16: 1, Sort: false}, // degenerate single-lane
			{Width8: 64, Width16: 32, Sort: true, ForcePrecision: 16},
			{Width8: 64, Width16: 32, Sort: false, ForcePrecision: 8},
		} {
			got := RunBatch(&p, jobs, cfg)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d cfg %+v job %d (q=%d,t=%d,h0=%d):\nbatch  %+v\nscalar %+v",
						trial, cfg, i, len(jobs[i].Query), len(jobs[i].Target), jobs[i].H0,
						got[i], want[i])
				}
			}
		}
	}
}

func TestBatchIdenticalUnderZdropAndTightBand(t *testing.T) {
	p := DefaultParams()
	p.Zdrop = 10 // aggressive drop to exercise lane aborts
	rng := rand.New(rand.NewSource(52))
	jobs := randJobs(rng, 300, 150, 30)
	for i := range jobs {
		jobs[i].W = 1 + rng.Intn(8) // tight bands exercise shrink/clip paths
	}
	want := scalarAll(&p, jobs)
	got := RunBatch(&p, jobs, DefaultBatchConfig())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("job %d: batch %+v scalar %+v", i, got[i], want[i])
		}
	}
}

func TestBatchPrecisionRouting(t *testing.T) {
	p := DefaultParams()
	// h0 + qlen > 127 forces 16-bit; h0 + qlen > 32767 forces scalar.
	jobs := []Job{
		{Query: randSeq(rand.New(rand.NewSource(1)), 50), Target: randSeq(rand.New(rand.NewSource(2)), 50), W: 10, H0: 20},    // 8-bit
		{Query: randSeq(rand.New(rand.NewSource(3)), 200), Target: randSeq(rand.New(rand.NewSource(4)), 200), W: 10, H0: 100}, // 16-bit
	}
	if !p.Fits8(&jobs[0]) || p.Fits8(&jobs[1]) {
		t.Fatal("test setup: routing classes wrong")
	}
	want := scalarAll(&p, jobs)
	got := RunBatch(&p, jobs, DefaultBatchConfig())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("job %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Forcing 8-bit precision must fall back to scalar for the big job, not
	// corrupt it.
	got = RunBatch(&p, jobs, BatchConfig{Sort: true, ForcePrecision: 8})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forced-8 job %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestBatchUsefulCellsMatchScalarSchedule(t *testing.T) {
	// Committed (useful) lane slots must be exactly the cells the scalar
	// engine computes — masking only ever suppresses extra work.
	p := DefaultParams()
	rng := rand.New(rand.NewSource(53))
	jobs := randJobs(rng, 128, 100, 30)
	var scStats CellStats
	var buf ScalarBuf
	for _, j := range jobs {
		ExtendScalar(&p, j.Query, j.Target, j.W, j.H0, &buf, &scStats)
	}
	var bStats BatchStats
	RunBatch(&p, jobs, BatchConfig{Width8: 64, Width16: 32, Sort: true, Stats: &bStats})
	if bStats.UsefulCells != scStats.ScalarCells {
		t.Fatalf("useful lane slots %d != scalar cells %d", bStats.UsefulCells, scStats.ScalarCells)
	}
	if bStats.TotalCells < bStats.UsefulCells {
		t.Fatalf("total %d < useful %d", bStats.TotalCells, bStats.UsefulCells)
	}
	if bStats.Batches == 0 || bStats.VectorSteps == 0 {
		t.Fatalf("stats not collected: %+v", bStats)
	}
}

func TestSortingReducesWaste(t *testing.T) {
	// §5.3.1/Table 6: grouping similar-length pairs cuts wasteful cells.
	p := DefaultParams()
	rng := rand.New(rand.NewSource(54))
	// Strongly bimodal lengths make the effect unmistakable.
	var jobs []Job
	for i := 0; i < 512; i++ {
		ln := 10 + rng.Intn(10)
		if i%2 == 0 {
			ln = 90 + rng.Intn(10)
		}
		q := randSeq(rng, ln)
		jobs = append(jobs, Job{Query: q, Target: mutate(rng, q, 2), W: 100, H0: 20})
	}
	var unsorted, sorted BatchStats
	RunBatch(&p, jobs, BatchConfig{Width8: 64, Width16: 32, Sort: false, Stats: &unsorted})
	RunBatch(&p, jobs, BatchConfig{Width8: 64, Width16: 32, Sort: true, Stats: &sorted})
	if sorted.UsefulCells != unsorted.UsefulCells {
		t.Fatalf("useful cells changed with sorting: %d vs %d", sorted.UsefulCells, unsorted.UsefulCells)
	}
	if float64(sorted.TotalCells) > 0.8*float64(unsorted.TotalCells) {
		t.Fatalf("sorting should cut total lane slots substantially: %d -> %d",
			unsorted.TotalCells, sorted.TotalCells)
	}
}

func TestSortJobsByLength(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	jobs := randJobs(rng, 500, 200, 20)
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	got := sortJobsByLength(jobs, order)
	// Verify permutation.
	seen := make([]bool, len(jobs))
	for _, id := range got {
		if seen[id] {
			t.Fatal("duplicate id after sort")
		}
		seen[id] = true
	}
	// Verify order matches the stable sort by the same key.
	key := func(id int) int {
		q, tg := len(jobs[id].Query), len(jobs[id].Target)
		hi, lo := q, tg
		if tg > q {
			hi, lo = tg, q
		}
		return hi<<16 | lo
	}
	want := make([]int, len(jobs))
	for i := range want {
		want[i] = i
	}
	sort.SliceStable(want, func(a, b int) bool { return key(want[a]) < key(want[b]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got job %d (key %d), want job %d (key %d)",
				i, got[i], key(got[i]), want[i], key(want[i]))
		}
	}
}

func TestBatchEmptyAndTiny(t *testing.T) {
	p := DefaultParams()
	if res := RunBatch(&p, nil, DefaultBatchConfig()); len(res) != 0 {
		t.Fatal("empty jobs")
	}
	jobs := []Job{{Query: []byte{1}, Target: []byte{1}, W: 5, H0: 3}}
	got := RunBatch(&p, jobs, DefaultBatchConfig())
	want := scalarAll(&p, jobs)
	if got[0] != want[0] {
		t.Fatalf("tiny: %+v vs %+v", got[0], want[0])
	}
}

func BenchmarkBSWScalar(b *testing.B) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(60))
	jobs := randJobs(rng, 1024, 120, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scalarAll(&p, jobs)
	}
}

func BenchmarkBSWBatch8Sorted(b *testing.B) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(60))
	jobs := randJobs(rng, 1024, 100, 20)
	cfg := BatchConfig{Width8: 64, Width16: 32, Sort: true, ForcePrecision: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunBatch(&p, jobs, cfg)
	}
}
