package bsw

import (
	"math/rand"
	"testing"
)

// refGlobalDense is an independent, unbanded affine-gap global aligner
// (score only), for cross-checking Global when the band is wide enough not
// to matter.
func refGlobalDense(p *Params, query, target []byte) int {
	qlen, tlen := len(query), len(target)
	neg := int(minusInf)
	H := make([][]int, tlen+1)
	E := make([][]int, tlen+1) // gap in query (consumes target)
	F := make([][]int, tlen+1) // gap in target (consumes query)
	for i := range H {
		H[i] = make([]int, qlen+1)
		E[i] = make([]int, qlen+1)
		F[i] = make([]int, qlen+1)
	}
	for i := 0; i <= tlen; i++ {
		for j := 0; j <= qlen; j++ {
			H[i][j], E[i][j], F[i][j] = neg, neg, neg
		}
	}
	H[0][0] = 0
	for i := 1; i <= tlen; i++ {
		E[i][0] = -(p.ODel + p.EDel*i)
		H[i][0] = E[i][0]
	}
	for j := 1; j <= qlen; j++ {
		F[0][j] = -(p.OIns + p.EIns*j)
		H[0][j] = F[0][j]
	}
	for i := 1; i <= tlen; i++ {
		for j := 1; j <= qlen; j++ {
			e := E[i-1][j] - p.EDel
			if v := H[i-1][j] - p.ODel - p.EDel; v > e {
				e = v
			}
			E[i][j] = e
			f := F[i][j-1] - p.EIns
			if v := H[i][j-1] - p.OIns - p.EIns; v > f {
				f = v
			}
			F[i][j] = f
			h := H[i-1][j-1] + int(p.Mat[int(target[i-1])*5+int(query[j-1])])
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			H[i][j] = h
		}
	}
	return H[tlen][qlen]
}

// cigarScore replays an alignment described by a CIGAR and recomputes its
// score, verifying consistency of ops with sequence lengths.
func cigarScore(t *testing.T, p *Params, query, target []byte, cig Cigar) int {
	t.Helper()
	qi, ti, score := 0, 0, 0
	for _, e := range cig {
		n := int(e >> 4)
		switch e & 0xf {
		case CigarMatch:
			for k := 0; k < n; k++ {
				score += int(p.Mat[int(target[ti])*5+int(query[qi])])
				qi++
				ti++
			}
		case CigarIns:
			score -= p.OIns + p.EIns*n
			qi += n
		case CigarDel:
			score -= p.ODel + p.EDel*n
			ti += n
		default:
			t.Fatalf("unexpected op in %v", cig)
		}
	}
	if qi != len(query) || ti != len(target) {
		t.Fatalf("cigar %v consumes (%d,%d), want (%d,%d)", cig, qi, ti, len(query), len(target))
	}
	return score
}

func TestGlobalPerfectAndTrivial(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(61))
	s := randSeq(rng, 30)
	score, cig := Global(&p, s, s, 10, true)
	if score != 30 || cig.String() != "30M" {
		t.Fatalf("perfect: score=%d cigar=%s", score, cig)
	}
	// Empty cases.
	if sc, cg := Global(&p, nil, nil, 5, true); sc != 0 || cg != nil {
		t.Fatal("empty/empty")
	}
	if sc, cg := Global(&p, nil, s[:4], 5, true); sc != -(p.ODel+4*p.EDel) || cg.String() != "4D" {
		t.Fatalf("empty query: %d %s", sc, cg)
	}
	if sc, cg := Global(&p, s[:4], nil, 5, true); sc != -(p.OIns+4*p.EIns) || cg.String() != "4I" {
		t.Fatalf("empty target: %d %s", sc, cg)
	}
}

func TestGlobalMatchesDenseReference(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 300; trial++ {
		qlen := 1 + rng.Intn(30)
		tlen := 1 + rng.Intn(30)
		var q, tg []byte
		if trial%3 == 0 {
			q, tg = randSeq(rng, qlen), randSeq(rng, tlen)
		} else {
			q = randSeq(rng, qlen)
			tg = mutate(rng, q, rng.Intn(4))
			if rng.Intn(2) == 0 && len(tg) > 2 { // simulate indel
				cut := 1 + rng.Intn(len(tg)/2)
				at := rng.Intn(len(tg) - cut)
				tg = append(tg[:at], tg[at+cut:]...)
			}
		}
		want := refGlobalDense(&p, q, tg)
		got, cig := Global(&p, q, tg, 100, true)
		if got != want {
			t.Fatalf("trial %d: q=%v t=%v: score %d, want %d", trial, q, tg, got, want)
		}
		if rescore := cigarScore(t, &p, q, tg, cig); rescore != got {
			t.Fatalf("trial %d: cigar %s rescores to %d, reported %d", trial, cig, rescore, got)
		}
	}
}

func TestGlobalNarrowBandStillConsistent(t *testing.T) {
	// With a narrow band the score may be suboptimal, but the CIGAR must
	// still rescore to exactly the reported score.
	p := DefaultParams()
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 200; trial++ {
		q := randSeq(rng, 5+rng.Intn(40))
		tg := mutate(rng, q, rng.Intn(5))
		if rng.Intn(2) == 0 {
			tg = append(tg, randSeq(rng, rng.Intn(6))...)
		}
		w := 1 + rng.Intn(4)
		got, cig := Global(&p, q, tg, w, true)
		if rescore := cigarScore(t, &p, q, tg, cig); rescore != got {
			t.Fatalf("trial %d w=%d: cigar %s rescores to %d, reported %d", trial, w, cig, rescore, got)
		}
	}
}

func TestCigarHelpers(t *testing.T) {
	var c Cigar
	c = c.PushOp(CigarMatch, 10)
	c = c.PushOp(CigarMatch, 5) // merges
	c = c.PushOp(CigarIns, 2)
	c = c.PushOp(CigarDel, 3)
	c = c.PushOp(CigarSoft, 4)
	if c.String() != "15M2I3D4S" {
		t.Fatalf("cigar string: %s", c)
	}
	q, tl := c.Lens()
	if q != 15+2+4 || tl != 15+3 {
		t.Fatalf("lens: %d %d", q, tl)
	}
	if Cigar(nil).String() != "*" {
		t.Fatal("empty cigar string")
	}
	if got := c.PushOp(CigarMatch, 0); len(got) != len(c) {
		t.Fatal("zero-length push should be a no-op")
	}
}
