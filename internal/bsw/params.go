// Package bsw implements the banded Smith-Waterman (BSW) kernel of BWA-MEM
// (paper §5): seed extension with a diagonal band, zero-row abort, z-drop
// abort, and per-row band adjustment. Three interchangeable engines are
// provided:
//
//   - ExtendScalar: the original scalar kernel (a faithful port of BWA's
//     ksw_extend2), the paper's baseline.
//   - Batch16 / Batch8: the paper's inter-task "vectorized" kernels. W
//     sequence pairs advance in lock-step through the same (i,j) cell
//     schedule with per-lane masking, after AoS-to-SoA conversion and
//     optional radix sorting by length (§5.3). Pure Go has no SIMD
//     intrinsics, so the lanes execute serially, but the kernel preserves
//     every structural property the paper measures: lane occupancy, useful
//     vs wasteful cell counts, the benefit of sorting, and 8-bit vs 16-bit
//     lane width. All engines produce bit-identical results.
package bsw

// Params holds the alignment scoring parameters (BWA-MEM defaults in
// DefaultParams).
type Params struct {
	Mat                    [25]int8 // 5x5 substitution matrix (A,C,G,T,N)
	ODel, EDel, OIns, EIns int      // gap open/extend penalties (positive)
	Zdrop                  int      // z-drop threshold; 0 disables
	EndBonus               int      // bonus for reaching the end of the query
}

// DefaultParams returns BWA-MEM's defaults: match 1, mismatch -4, gap open
// 6, gap extend 1, z-drop 100, end bonus 5.
func DefaultParams() Params {
	p := Params{ODel: 6, EDel: 1, OIns: 6, EIns: 1, Zdrop: 100, EndBonus: 5}
	p.Mat = FillScoreMatrix(1, 4)
	return p
}

// FillScoreMatrix builds BWA's 5x5 matrix (bwa_fill_scmat): +a on the
// diagonal, -b elsewhere, -1 against N.
func FillScoreMatrix(a, b int) [25]int8 {
	var m [25]int8
	k := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				m[k] = int8(a)
			} else {
				m[k] = int8(-b)
			}
			k++
		}
		m[k] = -1 // ambiguous base
		k++
	}
	for j := 0; j < 5; j++ {
		m[k] = -1
		k++
	}
	return m
}

// MaxMatch returns the largest entry of the matrix (the match score).
func (p *Params) MaxMatch() int {
	max := 0
	for _, v := range p.Mat {
		if int(v) > max {
			max = int(v)
		}
	}
	return max
}

// ExtResult is the outcome of one seed extension (ksw_extend2's outputs).
type ExtResult struct {
	Score  int // best extension score (>= h0 means the seed extended)
	QLE    int // query length of the best local extension
	TLE    int // target length of the best local extension
	GTLE   int // target length of the best to-end-of-query extension
	GScore int // best to-end-of-query score; -1 if the end was never reached
	MaxOff int // max diagonal offset observed at score updates
}

// Job is one extension task: align query against target starting from a seed
// of initial score H0 with band width W.
type Job struct {
	Query  []byte
	Target []byte
	W      int
	H0     int
}

// Fits8 reports whether a job's scores provably fit the 8-bit kernel's value
// range (all H/E/F values are bounded by H0 + qlen*match).
func (p *Params) Fits8(j *Job) bool {
	return j.H0+len(j.Query)*p.MaxMatch() <= 127
}

// Fits16 reports whether a job fits the 16-bit kernel's value range.
func (p *Params) Fits16(j *Job) bool {
	return j.H0+len(j.Query)*p.MaxMatch() <= 32767
}
