package bsw

// ScalarBuf holds reusable scratch for ExtendScalar; allocate once per worker
// (§3.2: few large allocations, reused).
type ScalarBuf struct {
	h, e []int32
	qp   []int8
}

func (b *ScalarBuf) grow(qlen int) {
	if cap(b.h) < qlen+1 {
		b.h = make([]int32, qlen+1)
		b.e = make([]int32, qlen+1)
	}
	b.h = b.h[:qlen+1]
	b.e = b.e[:qlen+1]
	if cap(b.qp) < 5*qlen {
		b.qp = make([]int8, 5*qlen)
	}
	b.qp = b.qp[:5*qlen]
}

// ExtendScalar is the original BWA-MEM banded extension kernel, a faithful
// port of ksw_extend2: global-at-the-seed, local-at-the-end alignment of
// query against target with initial score h0, a diagonal band of half-width
// w, zero-row abort, z-drop abort, and per-row band shrinking (§5.1).
// ScalarStats, if non-nil, accumulates cell accounting for the experiments.
func ExtendScalar(p *Params, query, target []byte, w, h0 int, buf *ScalarBuf, st *CellStats) ExtResult {
	qlen, tlen := len(query), len(target)
	if buf == nil {
		buf = &ScalarBuf{}
	}
	buf.grow(qlen)
	eh, ee, qp := buf.h, buf.e, buf.qp
	oeDel := p.ODel + p.EDel
	oeIns := p.OIns + p.EIns

	// Query profile: qp[k*qlen+j] = Mat[k][query[j]].
	for k, i := 0, 0; k < 5; k++ {
		row := p.Mat[k*5 : k*5+5]
		for j := 0; j < qlen; j++ {
			qp[i] = row[query[j]]
			i++
		}
	}

	// First row.
	for j := range eh {
		eh[j], ee[j] = 0, 0
	}
	eh[0] = int32(h0)
	if qlen > 0 {
		if h0 > oeIns {
			eh[1] = int32(h0 - oeIns)
		}
		for j := 2; j <= qlen && eh[j-1] > int32(p.EIns); j++ {
			eh[j] = eh[j-1] - int32(p.EIns)
		}
	}

	// Clamp the band to the widest useful gap.
	maxSc := p.MaxMatch()
	maxIns := int(float64(qlen*maxSc+p.EndBonus-p.OIns)/float64(p.EIns) + 1)
	if maxIns < 1 {
		maxIns = 1
	}
	if w > maxIns {
		w = maxIns
	}
	maxDel := int(float64(qlen*maxSc+p.EndBonus-p.ODel)/float64(p.EDel) + 1)
	if maxDel < 1 {
		maxDel = 1
	}
	if w > maxDel {
		w = maxDel
	}

	max, maxI, maxJ := h0, -1, -1
	maxIE, gscore := -1, -1
	maxOff := 0
	beg, end := 0, qlen
	for i := 0; i < tlen; i++ {
		f, m, mj := int32(0), int32(0), -1
		q := qp[int(target[i])*qlen : int(target[i])*qlen+qlen]
		if beg < i-w {
			beg = i - w
		}
		if end > i+w+1 {
			end = i + w + 1
		}
		if end > qlen {
			end = qlen
		}
		var h1 int32
		if beg == 0 {
			h1 = int32(h0 - (p.ODel + p.EDel*(i+1)))
			if h1 < 0 {
				h1 = 0
			}
		}
		for j := beg; j < end; j++ {
			// eh[j] = H(i-1,j-1), ee[j] = E(i,j), f = F(i,j), h1 = H(i,j-1).
			M, e := eh[j], ee[j]
			eh[j] = h1 // H(i,j-1) for the next row
			if M != 0 {
				M += int32(q[j])
			}
			h := M
			if h < e {
				h = e
			}
			if h < f {
				h = f
			}
			h1 = h
			if m <= h { // ties prefer the later column, as in ksw_extend2
				m, mj = h, j
			}
			t := M - int32(oeDel)
			if t < 0 {
				t = 0
			}
			e -= int32(p.EDel)
			if e < t {
				e = t
			}
			ee[j] = e // E(i+1,j)
			t = M - int32(oeIns)
			if t < 0 {
				t = 0
			}
			f -= int32(p.EIns)
			if f < t {
				f = t
			}
		}
		if st != nil {
			st.ScalarCells += int64(end - beg)
			st.ScalarRows++
		}
		eh[end], ee[end] = h1, 0
		if end == qlen {
			if gscore <= int(h1) { // ties prefer the later row
				maxIE, gscore = i, int(h1)
			}
		}
		if m == 0 {
			break
		}
		if int(m) > max {
			max, maxI, maxJ = int(m), i, mj
			off := mj - i
			if off < 0 {
				off = -off
			}
			if off > maxOff {
				maxOff = off
			}
		} else if p.Zdrop > 0 {
			di, dj := i-maxI, mj-maxJ
			if di > dj {
				if max-int(m)-(di-dj)*p.EDel > p.Zdrop {
					break
				}
			} else {
				if max-int(m)-(dj-di)*p.EIns > p.Zdrop {
					break
				}
			}
		}
		// Band adjustment for the next row: shrink to the non-zero span.
		j := beg
		for ; j < end && eh[j] == 0 && ee[j] == 0; j++ {
		}
		beg = j
		for j = end; j >= beg && eh[j] == 0 && ee[j] == 0; j-- {
		}
		if j+2 < qlen {
			end = j + 2
		} else {
			end = qlen
		}
	}
	return ExtResult{
		Score: max, QLE: maxJ + 1, TLE: maxI + 1,
		GTLE: maxIE + 1, GScore: gscore, MaxOff: maxOff,
	}
}

// CellStats accounts for DP work, the basis of the paper's Table 7/8
// instruction analysis.
type CellStats struct {
	ScalarCells int64 // cells computed by the scalar engine
	ScalarRows  int64
}
