package bsw

// sortJobsByLength orders job indices by a radix sort on sequence lengths
// (§5.3.1): grouping pairs of similar size into the same lane group curbs
// wasteful cell computations caused by length variation. The key packs
// max(qlen, tlen) above min(qlen, tlen) so that the dominant cost driver
// sorts first; the LSD byte-radix passes keep equal keys in input order
// (stable), matching the deterministic batching the paper relies on for
// identical output.
func sortJobsByLength(jobs []Job, order []int) []int {
	n := len(order)
	if n < 2 {
		return order
	}
	keys := make([]uint32, n)
	for i, id := range order {
		q, t := len(jobs[id].Query), len(jobs[id].Target)
		hi, lo := q, t
		if t > q {
			hi, lo = t, q
		}
		if hi > 0xFFFF {
			hi = 0xFFFF
		}
		if lo > 0xFFFF {
			lo = 0xFFFF
		}
		keys[i] = uint32(hi)<<16 | uint32(lo)
	}
	tmpOrder := make([]int, n)
	tmpKeys := make([]uint32, n)
	var count [256]int
	for shift := uint(0); shift < 32; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range keys {
			count[(k>>shift)&0xFF]++
		}
		if count[keys[0]>>shift&0xFF] == n {
			continue // all keys share this digit
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			d := (keys[i] >> shift) & 0xFF
			tmpOrder[count[d]] = order[i]
			tmpKeys[count[d]] = keys[i]
			count[d]++
		}
		order, tmpOrder = tmpOrder, order
		keys, tmpKeys = tmpKeys, keys
	}
	return order
}
