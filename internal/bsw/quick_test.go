package bsw

import (
	"testing"
	"testing/quick"
)

// quickJob decodes a random byte string into a plausible extension job, so
// testing/quick can drive the engines through arbitrary inputs.
func quickJob(raw []byte) (Job, bool) {
	if len(raw) < 8 {
		return Job{}, false
	}
	qlen := 1 + int(raw[0])%96
	tlen := 1 + int(raw[1])%96
	h0 := 1 + int(raw[2])%30
	w := 1 + int(raw[3])%100
	need := 4 + qlen + tlen
	if len(raw) < need {
		return Job{}, false
	}
	q := make([]byte, qlen)
	tg := make([]byte, tlen)
	for i := 0; i < qlen; i++ {
		q[i] = raw[4+i] & 3
	}
	for i := 0; i < tlen; i++ {
		tg[i] = raw[4+qlen+i] & 3
	}
	return Job{Query: q, Target: tg, W: w, H0: h0}, true
}

// TestQuickBatchEqualsScalar drives the central identity property with
// testing/quick: for any job, every batched engine agrees with the scalar
// engine bit for bit.
func TestQuickBatchEqualsScalar(t *testing.T) {
	p := DefaultParams()
	var buf ScalarBuf
	f := func(raw []byte) bool {
		j, ok := quickJob(raw)
		if !ok {
			return true
		}
		want := ExtendScalar(&p, j.Query, j.Target, j.W, j.H0, &buf, nil)
		for _, prec := range []int{8, 16} {
			got := RunBatch(&p, []Job{j}, BatchConfig{ForcePrecision: prec})
			if got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickExtendScalarInvariants checks structural invariants of the
// extension result on arbitrary inputs.
func TestQuickExtendScalarInvariants(t *testing.T) {
	p := DefaultParams()
	var buf ScalarBuf
	f := func(raw []byte) bool {
		j, ok := quickJob(raw)
		if !ok {
			return true
		}
		r := ExtendScalar(&p, j.Query, j.Target, j.W, j.H0, &buf, nil)
		switch {
		case r.Score < j.H0: // the seed score is never lost
			return false
		case r.QLE < 0 || r.QLE > len(j.Query):
			return false
		case r.TLE < 0 || r.TLE > len(j.Target):
			return false
		case r.GTLE < 0 || r.GTLE > len(j.Target):
			return false
		case r.GScore > r.Score && r.GScore > j.H0+len(j.Query)*p.MaxMatch():
			return false
		case r.MaxOff < 0:
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickGlobalCigarConsistent verifies with testing/quick that the CIGAR
// produced by the banded global aligner always rescores to the reported
// score and consumes exactly both sequences.
func TestQuickGlobalCigarConsistent(t *testing.T) {
	p := DefaultParams()
	f := func(raw []byte, wRaw uint8) bool {
		j, ok := quickJob(raw)
		if !ok {
			return true
		}
		w := 1 + int(wRaw)%40
		score, cig := Global(&p, j.Query, j.Target, w, true)
		qi, ti, re := 0, 0, 0
		for _, e := range cig {
			n := int(e >> 4)
			switch e & 0xf {
			case CigarMatch:
				for k := 0; k < n; k++ {
					re += int(p.Mat[int(j.Target[ti])*5+int(j.Query[qi])])
					qi++
					ti++
				}
			case CigarIns:
				re -= p.OIns + p.EIns*n
				qi += n
			case CigarDel:
				re -= p.ODel + p.EDel*n
				ti += n
			default:
				return false
			}
		}
		return qi == len(j.Query) && ti == len(j.Target) && re == score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickCigarPushLens checks the CIGAR helper algebra.
func TestQuickCigarPushLens(t *testing.T) {
	f := func(ops []uint8) bool {
		var c Cigar
		wantQ, wantT := 0, 0
		for _, o := range ops {
			n := 1 + int(o>>3)%9
			switch o & 3 {
			case 0:
				c = c.PushOp(CigarMatch, n)
				wantQ += n
				wantT += n
			case 1:
				c = c.PushOp(CigarIns, n)
				wantQ += n
			case 2:
				c = c.PushOp(CigarDel, n)
				wantT += n
			default:
				c = c.PushOp(CigarSoft, n)
				wantQ += n
			}
		}
		q, tl := c.Lens()
		if q != wantQ || tl != wantT {
			return false
		}
		// Merged runs: no two adjacent entries share an op.
		for i := 1; i < len(c); i++ {
			if c[i]&0xf == c[i-1]&0xf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
