package bsw

import "time"

// laneInt is the storage type of one SIMD lane: int8 lanes give the paper's
// width-64 AVX512 kernel, int16 lanes the width-32 kernel (§5.4.1).
type laneInt interface {
	~int8 | ~int16
}

// BatchStats accounts for the batched engines' work. Lane-cells distinguish
// useful computation from the wasteful lane slots the paper analyses in
// §5.3/Table 8 ("useful cells are roughly half of the total cells computed").
type BatchStats struct {
	Batches     int64
	Rows        int64 // row steps summed over batches
	VectorSteps int64 // (row, column) steps; one modeled vector instruction each
	TotalCells  int64 // VectorSteps x lane width
	UsefulCells int64 // lane slots that were inside their lane's live band

	// Stage timers (Table 8): AoS-to-SoA conversion and state setup; band
	// clamping at the top of each row; the cell loop; and post-row band
	// shrinking plus score bookkeeping.
	PreprocessNS time.Duration
	BandAdjINS   time.Duration
	CellsNS      time.Duration
	BandAdjIINS  time.Duration
	SortNS       time.Duration
}

// BatchConfig configures RunBatch.
type BatchConfig struct {
	Width8  int  // lanes per 8-bit batch (paper: 64); 0 = default
	Width16 int  // lanes per 16-bit batch (paper: 32); 0 = default
	Sort    bool // radix-sort jobs by sequence length before batching (§5.3.1)
	// ForcePrecision routes every job to one engine: 8 or 16; 0 selects
	// per job (8-bit when the score range provably fits, else 16-bit, else
	// scalar fallback).
	ForcePrecision int
	Stats          *BatchStats
}

// DefaultBatchConfig mirrors the paper's AVX512 widths with sorting on.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{Width8: 64, Width16: 32, Sort: true}
}

// RunBatch executes all jobs through the batched engines and returns results
// in job order. Jobs whose score range exceeds the forced precision fall
// back to the scalar engine (matching BWA-MEM, which keeps a scalar path for
// outliers).
func RunBatch(p *Params, jobs []Job, cfg BatchConfig) []ExtResult {
	if cfg.Width8 <= 0 {
		cfg.Width8 = 64
	}
	if cfg.Width16 <= 0 {
		cfg.Width16 = 32
	}
	results := make([]ExtResult, len(jobs))

	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	if cfg.Sort {
		start := time.Now()
		order = sortJobsByLength(jobs, order)
		if cfg.Stats != nil {
			cfg.Stats.SortNS += time.Since(start)
		}
	}

	idx8 := make([]int, 0, len(jobs))
	idx16 := make([]int, 0, len(jobs))
	idxScalar := make([]int, 0, len(jobs))
	//bwalint:hot per-read precision classification runs once per batch job
	for _, id := range order {
		j := &jobs[id]
		switch {
		case cfg.ForcePrecision == 8:
			if p.Fits8(j) {
				idx8 = append(idx8, id)
			} else {
				idxScalar = append(idxScalar, id)
			}
		case cfg.ForcePrecision == 16:
			if p.Fits16(j) {
				idx16 = append(idx16, id)
			} else {
				idxScalar = append(idxScalar, id)
			}
		default:
			if p.Fits8(j) {
				idx8 = append(idx8, id)
			} else if p.Fits16(j) {
				idx16 = append(idx16, id)
			} else {
				idxScalar = append(idxScalar, id)
			}
		}
	}

	for off := 0; off < len(idx8); off += cfg.Width8 {
		endOff := off + cfg.Width8
		if endOff > len(idx8) {
			endOff = len(idx8)
		}
		runLaneGroup[int8](p, jobs, idx8[off:endOff], cfg.Width8, results, cfg.Stats)
	}
	for off := 0; off < len(idx16); off += cfg.Width16 {
		endOff := off + cfg.Width16
		if endOff > len(idx16) {
			endOff = len(idx16)
		}
		runLaneGroup[int16](p, jobs, idx16[off:endOff], cfg.Width16, results, cfg.Stats)
	}
	var buf ScalarBuf
	for _, id := range idxScalar {
		j := &jobs[id]
		results[id] = ExtendScalar(p, j.Query, j.Target, j.W, j.H0, &buf, nil)
	}
	return results
}

// runLaneGroup advances up to width jobs in lock-step through the banded DP.
// Every lane executes exactly the scalar recurrence, gated by a per-lane
// mask; lane slots computed outside a lane's live band are the wasteful
// cells of §5.3.
func runLaneGroup[T laneInt](p *Params, jobs []Job, ids []int, width int, results []ExtResult, st *BatchStats) {
	tPre := time.Now()
	lanes := len(ids)
	maxQ, maxT := 0, 0
	for _, id := range ids {
		if len(jobs[id].Query) > maxQ {
			maxQ = len(jobs[id].Query)
		}
		if len(jobs[id].Target) > maxT {
			maxT = len(jobs[id].Target)
		}
	}

	// AoS -> SoA conversion of the sequences (§5.3.3): base j of lane l sits
	// at qSoA[j*width+l], so a fixed-j probe across lanes is one contiguous
	// (vector-loadable) run.
	qSoA := make([]byte, maxQ*width)
	tSoA := make([]byte, maxT*width)
	for i := range qSoA {
		qSoA[i] = 4
	}
	for i := range tSoA {
		tSoA[i] = 4
	}
	for l, id := range ids {
		for j, c := range jobs[id].Query {
			qSoA[j*width+l] = c
		}
		for i, c := range jobs[id].Target {
			tSoA[i*width+l] = c
		}
	}

	// Lane-strided H and E rows.
	H := make([]T, (maxQ+1)*width)
	E := make([]T, (maxQ+1)*width)

	oeDel := int32(p.ODel + p.EDel)
	oeIns := int32(p.OIns + p.EIns)
	eDel := int32(p.EDel)
	eIns := int32(p.EIns)
	maxSc := p.MaxMatch()

	// Per-lane registers.
	type laneState struct {
		qlen, tlen      int
		w, h0           int
		beg, end        int
		max, maxI, maxJ int
		maxIE, gscore   int
		maxOff          int
		f, h1, m        int32
		mj              int
		rowLive         bool // participating in the current row
		done            bool // finished or aborted
	}
	ls := make([]laneState, lanes)
	for l, id := range ids {
		j := &jobs[id]
		s := &ls[l]
		s.qlen, s.tlen = len(j.Query), len(j.Target)
		s.h0 = j.H0
		s.w = j.W
		// Band clamp, as in the scalar engine.
		maxIns := int(float64(s.qlen*maxSc+p.EndBonus-p.OIns)/float64(p.EIns) + 1)
		if maxIns < 1 {
			maxIns = 1
		}
		if s.w > maxIns {
			s.w = maxIns
		}
		maxDel := int(float64(s.qlen*maxSc+p.EndBonus-p.ODel)/float64(p.EDel) + 1)
		if maxDel < 1 {
			maxDel = 1
		}
		if s.w > maxDel {
			s.w = maxDel
		}
		s.beg, s.end = 0, s.qlen
		s.max, s.maxI, s.maxJ = j.H0, -1, -1
		s.maxIE, s.gscore = -1, -1
		// First DP row.
		H[0*width+l] = T(j.H0)
		if s.qlen > 0 {
			if v := int32(j.H0) - oeIns; v > 0 {
				H[1*width+l] = T(v)
			}
			for q := 2; q <= s.qlen && int32(H[(q-1)*width+l]) > eIns; q++ {
				H[q*width+l] = T(int32(H[(q-1)*width+l]) - eIns)
			}
		}
	}
	if st != nil {
		st.Batches++
		st.PreprocessNS += time.Since(tPre)
	}

	mat := &p.Mat
	for i := 0; i < maxT; i++ {
		// Band adjustment I: clamp each live lane's band to the diagonal
		// stripe for this row and set up the first column (§5.4(c) applies
		// the band; timed separately per Table 8).
		tBand := time.Now()
		anyLive := false
		jmin, jmax := maxQ, 0
		for l := range ls {
			s := &ls[l]
			s.rowLive = false
			if s.done || i >= s.tlen {
				continue
			}
			if s.beg < i-s.w {
				s.beg = i - s.w
			}
			if s.end > i+s.w+1 {
				s.end = i + s.w + 1
			}
			if s.end > s.qlen {
				s.end = s.qlen
			}
			s.h1 = 0
			if s.beg == 0 {
				if v := int32(s.h0) - int32(p.ODel+p.EDel*(i+1)); v > 0 {
					s.h1 = v
				}
			}
			s.f, s.m, s.mj = 0, 0, -1
			s.rowLive = true
			anyLive = true
			if s.beg < jmin {
				jmin = s.beg
			}
			if s.end > jmax {
				jmax = s.end
			}
		}
		if st != nil {
			st.BandAdjINS += time.Since(tBand)
		}
		if !anyLive {
			break
		}

		// Cell computations over the union column range: every lane slot in
		// [jmin, jmax) is computed (the vector model); only slots inside the
		// lane's own band commit state.
		tCells := time.Now()
		useful := int64(0)
		for j := jmin; j < jmax; j++ {
			rowOff := j * width
			for l := range ls {
				s := &ls[l]
				if !s.rowLive || j < s.beg || j >= s.end {
					continue // wasteful lane slot
				}
				useful++
				M := int32(H[rowOff+l])
				e := int32(E[rowOff+l])
				H[rowOff+l] = T(s.h1)
				if M != 0 {
					M += int32(mat[int(tSoA[i*width+l])*5+int(qSoA[rowOff+l])])
				}
				h := M
				if h < e {
					h = e
				}
				if h < s.f {
					h = s.f
				}
				s.h1 = h
				if s.m <= h {
					s.m, s.mj = h, j
				}
				t := M - oeDel
				if t < 0 {
					t = 0
				}
				e -= eDel
				if e < t {
					e = t
				}
				E[rowOff+l] = T(e)
				t = M - oeIns
				if t < 0 {
					t = 0
				}
				s.f -= eIns
				if s.f < t {
					s.f = t
				}
			}
		}
		if st != nil {
			st.CellsNS += time.Since(tCells)
			st.Rows++
			st.VectorSteps += int64(jmax - jmin)
			st.TotalCells += int64(jmax-jmin) * int64(width)
			st.UsefulCells += useful
		}

		// Band adjustment II and score bookkeeping (§5.4(b)-(d)).
		tBand2 := time.Now()
		for l := range ls {
			s := &ls[l]
			if !s.rowLive {
				continue
			}
			H[s.end*width+l] = T(s.h1)
			E[s.end*width+l] = 0
			if s.end == s.qlen {
				if s.gscore <= int(s.h1) {
					s.maxIE, s.gscore = i, int(s.h1)
				}
			}
			if s.m == 0 {
				s.done = true
				continue
			}
			if int(s.m) > s.max {
				s.max, s.maxI, s.maxJ = int(s.m), i, s.mj
				off := s.mj - i
				if off < 0 {
					off = -off
				}
				if off > s.maxOff {
					s.maxOff = off
				}
			} else if p.Zdrop > 0 {
				di, dj := i-s.maxI, s.mj-s.maxJ
				if di > dj {
					if s.max-int(s.m)-(di-dj)*p.EDel > p.Zdrop {
						s.done = true
						continue
					}
				} else {
					if s.max-int(s.m)-(dj-di)*p.EIns > p.Zdrop {
						s.done = true
						continue
					}
				}
			}
			j := s.beg
			for ; j < s.end && H[j*width+l] == 0 && E[j*width+l] == 0; j++ {
			}
			s.beg = j
			for j = s.end; j >= s.beg && H[j*width+l] == 0 && E[j*width+l] == 0; j-- {
			}
			if j+2 < s.qlen {
				s.end = j + 2
			} else {
				s.end = s.qlen
			}
		}
		if st != nil {
			st.BandAdjIINS += time.Since(tBand2)
		}
	}

	for l, id := range ids {
		s := &ls[l]
		results[id] = ExtResult{
			Score: s.max, QLE: s.maxJ + 1, TLE: s.maxI + 1,
			GTLE: s.maxIE + 1, GScore: s.gscore, MaxOff: s.maxOff,
		}
	}
}
