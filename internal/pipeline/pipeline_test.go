package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/datasets"
	"repro/internal/seq"
)

func testSetup(t testing.TB, mode core.Mode) (*core.Aligner, []seq.Read) {
	t.Helper()
	ref, err := datasets.Genome(datasets.DefaultGenome("chr1", 60000, 21))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAligner(ref, mode, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := datasets.Simulate(ref, datasets.D4.Scaled(0.08)) // 400 reads
	if err != nil {
		t.Fatal(err)
	}
	return a, reads
}

func TestPipelineLayoutsIdenticalOutput(t *testing.T) {
	a, reads := testSetup(t, core.ModeOptimized)
	perRead := Run(a, reads, Config{Threads: 1, Layout: LayoutPerRead})
	batched := Run(a, reads, Config{Threads: 1, Layout: LayoutBatched, BatchSize: 64})
	if !bytes.Equal(perRead.SAM, batched.SAM) {
		t.Fatal("per-read and batched layouts produced different SAM")
	}
}

func TestPipelineThreadCountInvariant(t *testing.T) {
	a, reads := testSetup(t, core.ModeOptimized)
	ref := Run(a, reads, Config{Threads: 1})
	for _, threads := range []int{2, 4, 7} {
		got := Run(a, reads, Config{Threads: threads})
		if !bytes.Equal(ref.SAM, got.SAM) {
			t.Fatalf("output changed with %d threads", threads)
		}
	}
}

func TestPipelineModesIdenticalSAM(t *testing.T) {
	// The full paper invariant, end to end: baseline BWA-MEM pipeline and
	// the optimized pipeline emit byte-identical SAM.
	ab, reads := testSetup(t, core.ModeBaseline)
	ao, _ := testSetup(t, core.ModeOptimized)
	rb := Run(ab, reads, Config{Threads: 3})
	ro := Run(ao, reads, Config{Threads: 3, BatchSize: 128})
	if !bytes.Equal(rb.SAM, ro.SAM) {
		// Find the first differing line for the report.
		lb := strings.Split(string(rb.SAM), "\n")
		lo := strings.Split(string(ro.SAM), "\n")
		for i := range lb {
			if i >= len(lo) || lb[i] != lo[i] {
				t.Fatalf("SAM differs at line %d:\nbaseline : %s\noptimized: %s", i, lb[i], lo[i])
			}
		}
		t.Fatal("SAM differs in length")
	}
}

func TestPipelineStageClockPopulated(t *testing.T) {
	a, reads := testSetup(t, core.ModeOptimized)
	res := Run(a, reads, Config{Threads: 2})
	if res.Reads != len(reads) {
		t.Fatalf("reads = %d", res.Reads)
	}
	for _, s := range []counters.Stage{counters.StageSMEM, counters.StageSAL,
		counters.StageChain, counters.StageBSW, counters.StageSAMForm} {
		if res.Clock.T[s] == 0 {
			t.Fatalf("stage %v has zero accumulated time", s)
		}
	}
	if res.Clock.Kernels() == 0 || res.Clock.Total() == 0 {
		t.Fatal("clock totals empty")
	}
}

func TestPipelineAccuracy(t *testing.T) {
	// Most simulated reads must map back to their true position: the
	// whole-system smoke test.
	a, reads := testSetup(t, core.ModeOptimized)
	res := Run(a, reads, Config{Threads: 2})
	lines := strings.Split(strings.TrimSuffix(string(res.SAM), "\n"), "\n")
	good, total := 0, 0
	for _, ln := range lines {
		f := strings.Split(ln, "\t")
		if len(f) < 11 {
			t.Fatalf("malformed SAM line: %q", ln)
		}
		var flag, pos int
		sscan(t, f[1], &flag)
		if flag&(core.FlagSecondary|core.FlagSupplementary) != 0 {
			continue
		}
		total++
		if flag&core.FlagUnmapped != 0 {
			continue
		}
		sscan(t, f[3], &pos)
		truth, rev, ok := datasets.TruePos(f[0])
		if !ok {
			t.Fatalf("unparsable name %q", f[0])
		}
		if rev == (flag&core.FlagReverse != 0) && abs(pos-1-truth) <= 12 {
			good++
		}
	}
	if total != len(reads) {
		t.Fatalf("%d primary records for %d reads", total, len(reads))
	}
	if float64(good) < 0.95*float64(total) {
		t.Fatalf("only %d/%d reads mapped to their true locus", good, total)
	}
}

func sscan(t *testing.T, s string, v *int) {
	t.Helper()
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	*v = n
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPipelineEdgeCases(t *testing.T) {
	a, reads := testSetup(t, core.ModeOptimized)
	// Empty input.
	if res := Run(a, nil, Config{Threads: 2}); len(res.SAM) != 0 || res.Reads != 0 {
		t.Fatal("empty input should produce empty output")
	}
	// Single read, more threads than work, degenerate batch size.
	res := Run(a, reads[:1], Config{Threads: 8, BatchSize: 1})
	if res.Reads != 1 || len(res.SAM) == 0 {
		t.Fatalf("single read: %+v", res)
	}
	// Zero-value config defaults sanely.
	res = Run(a, reads[:3], Config{})
	if res.Reads != 3 {
		t.Fatal("zero config")
	}
	// Reads with ambiguous bases must flow through without panicking.
	withN := append([]seq.Read(nil), reads[:4]...)
	withN[0].Seq = []byte(strings.Repeat("N", 101))
	withN[1].Seq = append([]byte(nil), withN[1].Seq...)
	withN[1].Seq[50] = 'N'
	res = Run(a, withN, Config{Threads: 2})
	if res.Reads != 4 {
		t.Fatal("N reads")
	}
}

func BenchmarkPipelineBaseline1T(b *testing.B) {
	a, reads := testSetup(b, core.ModeBaseline)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(a, reads, Config{Threads: 1})
	}
}

func BenchmarkPipelineOptimized1T(b *testing.B) {
	a, reads := testSetup(b, core.ModeOptimized)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(a, reads, Config{Threads: 1})
	}
}
