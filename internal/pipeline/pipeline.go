// Package pipeline implements the two whole-program workflow organizations
// the paper compares (Figure 2):
//
//   - The baseline layout is original BWA-MEM's: worker threads dynamically
//     pull individual reads from the chunk and push each read through every
//     stage (seed, lookup, chain, extend, format) before taking the next —
//     pthread-style dynamic read distribution.
//
//   - The optimized layout is the paper's reorganization: the chunk is cut
//     into batches, worker threads dynamically pull whole batches, and each
//     stage runs over all reads of the batch before the next stage starts.
//     This exposes the inter-read parallelism the batched BSW kernels need
//     and lets scratch memory be reused across stages (§3.1-3.2).
//
// Both layouts produce byte-identical SAM output in read order.
package pipeline

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/seq"
)

// Config controls one pipeline run.
type Config struct {
	Threads   int // worker goroutines; <=0 means 1
	BatchSize int // reads per batch (optimized layout); <=0 means 512
	// Layout selects the workflow organization; by default it follows the
	// aligner's mode.
	Layout Layout
}

// Layout is the workflow organization of Figure 2.
type Layout int

const (
	// LayoutAuto picks PerRead for baseline-mode aligners and Batched for
	// optimized-mode aligners.
	LayoutAuto Layout = iota
	// LayoutPerRead processes one read through all stages at a time.
	LayoutPerRead
	// LayoutBatched processes each stage over a whole batch of reads.
	LayoutBatched
)

// Result is the outcome of a pipeline run.
type Result struct {
	SAM   []byte
	Reads int
	Wall  time.Duration
	Clock counters.StageClock // merged per-stage time across workers
}

// Run maps all reads and returns their SAM records in input order.
func Run(a *core.Aligner, reads []seq.Read, cfg Config) *Result {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	layout := cfg.Layout
	if layout == LayoutAuto {
		if a.Mode == core.ModeOptimized {
			layout = LayoutBatched
		} else {
			layout = LayoutPerRead
		}
	}

	start := time.Now()
	// Encode all reads up front (IO/encoding is excluded from the paper's
	// measurements; keep it out of the stage clocks too).
	codes := make([][]byte, len(reads))
	for i := range reads {
		codes[i] = seq.Encode(reads[i].Seq)
	}
	perRead := make([][]byte, len(reads))

	clocks := make([]counters.StageClock, cfg.Threads)
	var wg sync.WaitGroup
	switch layout {
	case LayoutPerRead:
		var next int64 = -1
		for w := 0; w < cfg.Threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := &core.Workspace{Clock: &clocks[w]}
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(reads) {
						return
					}
					regs := a.AlignRead(codes[i], ws)
					t0 := time.Now()
					perRead[i] = a.AppendSAM(nil, &reads[i], codes[i], regs)
					ws.Clock.Add(counters.StageSAMForm, time.Since(t0))
				}
			}(w)
		}
	case LayoutBatched:
		nBatches := (len(reads) + cfg.BatchSize - 1) / cfg.BatchSize
		var next int64 = -1
		for w := 0; w < cfg.Threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := &core.Workspace{Clock: &clocks[w]}
				for {
					b := int(atomic.AddInt64(&next, 1))
					if b >= nBatches {
						return
					}
					lo := b * cfg.BatchSize
					hi := lo + cfg.BatchSize
					if hi > len(reads) {
						hi = len(reads)
					}
					regs := a.AlignBatch(codes[lo:hi], ws)
					t0 := time.Now()
					for i := lo; i < hi; i++ {
						perRead[i] = a.AppendSAM(nil, &reads[i], codes[i], regs[i-lo])
					}
					ws.Clock.Add(counters.StageSAMForm, time.Since(t0))
				}
			}(w)
		}
	}
	wg.Wait()

	res := &Result{Reads: len(reads), Wall: time.Since(start)}
	for i := range clocks {
		res.Clock.Merge(&clocks[i])
	}
	n := 0
	for _, r := range perRead {
		n += len(r)
	}
	res.SAM = make([]byte, 0, n)
	for _, r := range perRead {
		res.SAM = append(res.SAM, r...)
	}
	return res
}

// RunPaired maps read pairs (reads1[i] pairs with reads2[i]): both ends are
// aligned through the batch-staged pipeline, the FR insert-size
// distribution is inferred from confident pairs (mem_pestat), and each pair
// is emitted with pairing applied (mem_sam_pe, without mate rescue).
func RunPaired(a *core.Aligner, reads1, reads2 []seq.Read, cfg Config) *Result {
	if len(reads1) != len(reads2) {
		panic("pipeline: unequal pair lists")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	start := time.Now()
	codes1 := make([][]byte, len(reads1))
	codes2 := make([][]byte, len(reads2))
	for i := range reads1 {
		codes1[i] = seq.Encode(reads1[i].Seq)
		codes2[i] = seq.Encode(reads2[i].Seq)
	}
	regs1 := make([][]core.Region, len(reads1))
	regs2 := make([][]core.Region, len(reads2))
	clocks := make([]counters.StageClock, cfg.Threads)

	// Phase 1: align all ends (batched, dynamic distribution).
	nBatches := (len(reads1) + cfg.BatchSize - 1) / cfg.BatchSize
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &core.Workspace{Clock: &clocks[w]}
			for {
				b := int(atomic.AddInt64(&next, 1))
				if b >= 2*nBatches {
					return
				}
				end, bi := b/nBatches, b%nBatches
				lo := bi * cfg.BatchSize
				hi := lo + cfg.BatchSize
				codes, regs := codes1, regs1
				if end == 1 {
					codes, regs = codes2, regs2
				}
				if hi > len(codes) {
					hi = len(codes)
				}
				out := a.AlignBatch(codes[lo:hi], ws)
				copy(regs[lo:hi], out)
			}
		}(w)
	}
	wg.Wait()

	// Phase 2: infer the insert-size distribution from all pairs.
	ps := a.InferPairStats(regs1, regs2)

	// Phase 3: pair and emit.
	perPair := make([][]byte, len(reads1))
	next = -1
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(reads1) {
					return
				}
				t0 := time.Now()
				perPair[i] = a.AppendSAMPair(nil, &ps, &reads1[i], &reads2[i],
					codes1[i], codes2[i], regs1[i], regs2[i])
				clocks[w].Add(counters.StageSAMForm, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()

	res := &Result{Reads: 2 * len(reads1), Wall: time.Since(start)}
	for i := range clocks {
		res.Clock.Merge(&clocks[i])
	}
	for _, r := range perPair {
		res.SAM = append(res.SAM, r...)
	}
	return res
}
