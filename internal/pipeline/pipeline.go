// Package pipeline implements the two whole-program workflow organizations
// the paper compares (Figure 2):
//
//   - The baseline layout is original BWA-MEM's: worker threads dynamically
//     pull individual reads from the chunk and push each read through every
//     stage (seed, lookup, chain, extend, format) before taking the next —
//     pthread-style dynamic read distribution.
//
//   - The optimized layout is the paper's reorganization: the chunk is cut
//     into batches, worker threads dynamically pull whole batches, and each
//     stage runs over all reads of the batch before the next stage starts.
//     This exposes the inter-read parallelism the batched BSW kernels need
//     and lets scratch memory be reused across stages (§3.1-3.2).
//
// Both layouts produce byte-identical SAM output in read order.
//
// # Concurrency contract
//
// Run, RunPaired, and their streaming variants are safe to call
// concurrently with distinct ephemeral configurations; each call owns its
// inputs until it returns. A shared Scheduler is the long-lived form: Each,
// EachCtx, Go, Clock, and Drain may be called from any goroutine, and
// tasks from concurrent submitters interleave at task granularity on the
// fixed worker pool. Two rules bind task functions: they run on worker
// goroutines with that worker's private core.Workspace (never share a
// workspace across tasks), and they must not call Each or Go themselves —
// a worker blocking on the bounded task queue it is supposed to drain can
// deadlock the pool. Close must not race with new submissions; the
// RunPairedStreamOn emit callback runs on worker goroutines and must not
// block indefinitely.
package pipeline

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/seq"
)

// Config controls one pipeline run.
type Config struct {
	Threads   int // worker goroutines; <=0 means 1
	BatchSize int // reads per batch (optimized layout); <=0 means 512
	// Layout selects the workflow organization; by default it follows the
	// aligner's mode.
	Layout Layout
}

// Layout is the workflow organization of Figure 2.
type Layout int

const (
	// LayoutAuto picks PerRead for baseline-mode aligners and Batched for
	// optimized-mode aligners.
	LayoutAuto Layout = iota
	// LayoutPerRead processes one read through all stages at a time.
	LayoutPerRead
	// LayoutBatched processes each stage over a whole batch of reads.
	LayoutBatched
)

// Result is the outcome of a pipeline run.
type Result struct {
	SAM   []byte
	Reads int
	Wall  time.Duration
	Clock counters.StageClock // merged per-stage time across workers
}

// Run maps all reads and returns their SAM records in input order, using an
// ephemeral worker pool of cfg.Threads.
func Run(a *core.Aligner, reads []seq.Read, cfg Config) *Result {
	s := NewScheduler(a, cfg.Threads)
	defer s.Close()
	return RunOn(s, reads, cfg)
}

// RunOn is Run over a caller-owned Scheduler (the alignment server shares
// one warm pool across requests). cfg.Threads is ignored — the pool's size
// governs. Result.Clock is the delta of the pool-wide clock across this
// call: exact for an exclusive scheduler, but inflated by whatever else
// runs on a shared one — use Scheduler.Clock for cumulative accounting
// there and treat per-call clocks as approximate.
func RunOn(s *Scheduler, reads []seq.Read, cfg Config) *Result {
	perRead := make([][]byte, len(reads))
	// context.Background never cancels, so the error is structurally nil.
	//bwalint:ignore ctxflow context-free compatibility wrapper; callers wanting cancellation use RunStreamOn
	res, _ := RunStreamOn(context.Background(), s, reads, cfg,
		func(i int, rec []byte) { perRead[i] = rec })
	res.SAM = concatRecords(perRead)
	return res
}

// RunStreamOn is RunOn with incremental output and per-request
// cancellation — the single-end counterpart of RunPairedStreamOn. emit is
// called exactly once per read index with that read's SAM records, from
// worker goroutines in completion (not index) order, as soon as the read
// is formatted. emit must be safe for concurrent use. When ctx is
// cancelled, batches not yet started are dropped from the scheduler
// queue, emit stops being called, and the return is (nil, ctx.Err()); the
// Result's SAM field is always nil (the records went through emit).
func RunStreamOn(ctx context.Context, s *Scheduler, reads []seq.Read, cfg Config, emit func(i int, rec []byte)) (*Result, error) {
	a := s.Aligner()
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = core.DefaultBatchSize
	}
	layout := cfg.Layout
	if layout == LayoutAuto {
		if a.Mode == core.ModeOptimized {
			layout = LayoutBatched
		} else {
			layout = LayoutPerRead
		}
	}

	start := time.Now()
	clock0 := s.Clock()
	// Encode all reads up front (IO/encoding is excluded from the paper's
	// measurements; keep it out of the stage clocks too).
	codes := make([][]byte, len(reads))
	for i := range reads {
		codes[i] = seq.Encode(reads[i].Seq)
	}

	var err error
	switch layout {
	case LayoutPerRead:
		// One task per worker, each pulling read indices from a shared
		// atomic counter: per-read channel dispatch would cost an
		// allocation and a contended send per read, which is measurable
		// noise in the baseline layout this path exists to measure.
		var next int64 = -1
		err = s.EachCtx(ctx, s.Threads(), func(ws *core.Workspace, _ int) {
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(reads) {
					return
				}
				regs := a.AlignRead(codes[i], ws)
				t0 := time.Now()
				rec := a.AppendSAM(nil, &reads[i], codes[i], regs)
				ws.Clock.Add(counters.StageSAMForm, time.Since(t0))
				emit(i, rec)
			}
		})
	default: // LayoutBatched
		nBatches := (len(reads) + cfg.BatchSize - 1) / cfg.BatchSize
		err = s.EachCtx(ctx, nBatches, func(ws *core.Workspace, b int) {
			lo := b * cfg.BatchSize
			hi := lo + cfg.BatchSize
			if hi > len(reads) {
				hi = len(reads)
			}
			regs := a.AlignBatch(codes[lo:hi], ws)
			t0 := time.Now()
			for i := lo; i < hi; i++ {
				emit(i, a.AppendSAM(nil, &reads[i], codes[i], regs[i-lo]))
			}
			ws.Clock.Add(counters.StageSAMForm, time.Since(t0))
		})
	}
	if err != nil {
		return nil, err
	}

	res := &Result{Reads: len(reads), Wall: time.Since(start)}
	res.Clock = s.Clock()
	res.Clock.Sub(&clock0)
	return res, nil
}

// concatRecords joins per-read record slices into one buffer sized up front.
func concatRecords(perRead [][]byte) []byte {
	n := 0
	for _, r := range perRead {
		n += len(r)
	}
	sam := make([]byte, 0, n)
	for _, r := range perRead {
		sam = append(sam, r...)
	}
	return sam
}

// RunPaired maps read pairs (reads1[i] pairs with reads2[i]): both ends are
// aligned through the batch-staged pipeline, the FR insert-size
// distribution is inferred from confident pairs (mem_pestat), and each pair
// is emitted with pairing applied (mem_sam_pe, without mate rescue).
func RunPaired(a *core.Aligner, reads1, reads2 []seq.Read, cfg Config) *Result {
	s := NewScheduler(a, cfg.Threads)
	defer s.Close()
	return RunPairedOn(s, reads1, reads2, cfg)
}

// RunPairedOn is RunPaired over a caller-owned Scheduler. cfg.Threads is
// ignored — the pool's size governs. Pair statistics are inferred from this
// call's pairs only, so output is independent of any concurrent work
// sharing the scheduler. Result.Clock has RunOn's shared-scheduler caveat.
func RunPairedOn(s *Scheduler, reads1, reads2 []seq.Read, cfg Config) *Result {
	perPair := make([][]byte, len(reads1))
	// context.Background never cancels, so the error is structurally nil.
	//bwalint:ignore ctxflow context-free compatibility wrapper; callers wanting cancellation use RunPairedStreamOn
	res, _ := RunPairedStreamOn(context.Background(), s, reads1, reads2, cfg,
		func(i int, rec []byte) { perPair[i] = rec })
	res.SAM = concatRecords(perPair)
	return res
}

// RunPairedStreamOn is RunPairedOn with incremental output and per-request
// cancellation. emit is called exactly once per pair index with that
// pair's SAM records, from worker goroutines in completion (not index)
// order, as soon as the pair is formatted — a server can start writing the
// response while later pairs are still being paired. emit must be safe for
// concurrent use. When ctx is cancelled, batches not yet started are
// dropped from the scheduler queue, emit stops being called, and the
// return is (nil, ctx.Err()); the Result's SAM field is always nil (the
// records went through emit).
func RunPairedStreamOn(ctx context.Context, s *Scheduler, reads1, reads2 []seq.Read, cfg Config, emit func(i int, rec []byte)) (*Result, error) {
	a := s.Aligner()
	if len(reads1) != len(reads2) {
		panic("pipeline: unequal pair lists")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = core.DefaultBatchSize
	}
	start := time.Now()
	clock0 := s.Clock()
	codes1 := make([][]byte, len(reads1))
	codes2 := make([][]byte, len(reads2))
	for i := range reads1 {
		codes1[i] = seq.Encode(reads1[i].Seq)
		codes2[i] = seq.Encode(reads2[i].Seq)
	}
	regs1 := make([][]core.Region, len(reads1))
	regs2 := make([][]core.Region, len(reads2))

	// Phase 1: align all ends (batched, dynamic distribution).
	nBatches := (len(reads1) + cfg.BatchSize - 1) / cfg.BatchSize
	err := s.EachCtx(ctx, 2*nBatches, func(ws *core.Workspace, b int) {
		end, bi := b/nBatches, b%nBatches
		lo := bi * cfg.BatchSize
		hi := lo + cfg.BatchSize
		codes, regs := codes1, regs1
		if end == 1 {
			codes, regs = codes2, regs2
		}
		if hi > len(codes) {
			hi = len(codes)
		}
		out := a.AlignBatch(codes[lo:hi], ws)
		copy(regs[lo:hi], out)
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: infer the insert-size distribution from all pairs.
	ps := a.InferPairStats(regs1, regs2)

	// Phase 3: pair and emit (per-pair dynamic distribution via a shared
	// counter, as in RunOn's per-read layout).
	var next int64 = -1
	err = s.EachCtx(ctx, s.Threads(), func(ws *core.Workspace, _ int) {
		for ctx.Err() == nil {
			i := int(atomic.AddInt64(&next, 1))
			if i >= len(reads1) {
				return
			}
			t0 := time.Now()
			rec := a.AppendSAMPair(nil, &ps, &reads1[i], &reads2[i],
				codes1[i], codes2[i], regs1[i], regs2[i])
			ws.Clock.Add(counters.StageSAMForm, time.Since(t0))
			emit(i, rec)
		}
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Reads: 2 * len(reads1), Wall: time.Since(start)}
	res.Clock = s.Clock()
	res.Clock.Sub(&clock0)
	return res, nil
}
