package pipeline

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
)

// StageObserver receives the per-stage time one unit of work (a batch task)
// spent in each kernel stage, called once per non-zero stage per task from
// the worker that ran it. Observers must be cheap and concurrency-safe:
// they run on the hot worker loop.
type StageObserver func(s counters.Stage, d time.Duration)

// Scheduler is the batch-staged work engine shared by the one-shot CLI
// (Run/RunPaired build an ephemeral one per call) and the long-lived
// alignment server (which keeps a single Scheduler for the process
// lifetime). It owns a fixed pool of worker goroutines, each with its own
// reusable core.Workspace (§3.2 of the paper: few large allocations, reused
// across batches — and, in the server, across requests), pulling units of
// work dynamically from a bounded queue. Concurrent submitters interleave
// at task granularity, which is what lets the server multiplex many
// requests over one warm index without oversubscribing the machine.
type Scheduler struct {
	aligner *core.Aligner
	threads int
	tasks   chan task
	workers sync.WaitGroup
	async   sync.WaitGroup // outstanding Go tasks, for Drain
	clock   counters.AtomicClock
	stageOb atomic.Pointer[StageObserver]
}

type task struct {
	// ctx, when non-nil, gates execution: a worker that pops a task whose
	// context is already cancelled skips run entirely (the task still
	// counts as done). This is how an abandoned request's queued-but-
	// unstarted batches are dropped instead of aligned into a response
	// nobody will read.
	ctx  context.Context
	run  func(ws *core.Workspace)
	done *sync.WaitGroup
}

// NewScheduler starts a pool of threads workers over the aligner.
// threads <= 0 means 1. Close must be called to release the workers.
func NewScheduler(a *core.Aligner, threads int) *Scheduler {
	if threads <= 0 {
		threads = 1
	}
	s := &Scheduler{
		aligner: a,
		threads: threads,
		tasks:   make(chan task, 4*threads),
	}
	for w := 0; w < threads; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.workers.Done()
	var clock, flushed counters.StageClock
	ws := &core.Workspace{Clock: &clock}
	for t := range s.tasks {
		if t.ctx == nil || t.ctx.Err() == nil {
			t.run(ws)
		}
		// Publish stage time before signalling completion so a caller that
		// returns from Each/Drain observes its own work in Clock(). The
		// observer sees the same per-task deltas, and must run before
		// AddDelta copies clock over flushed.
		if ob := s.stageOb.Load(); ob != nil {
			for i := range clock.T {
				if d := clock.T[i] - flushed.T[i]; d != 0 {
					(*ob)(counters.Stage(i), d)
				}
			}
		}
		s.clock.AddDelta(&clock, &flushed)
		if t.done != nil {
			t.done.Done()
		}
	}
}

// Aligner returns the aligner the pool serves.
func (s *Scheduler) Aligner() *core.Aligner { return s.aligner }

// Threads returns the worker count.
func (s *Scheduler) Threads() int { return s.threads }

// Clock returns a snapshot of the per-stage time accumulated by all workers
// since the scheduler started. Safe to call concurrently with running work.
func (s *Scheduler) Clock() counters.StageClock { return s.clock.Snapshot() }

// SetStageObserver installs (or, with nil, removes) a per-task stage-time
// observer. Safe to call concurrently with running work; tasks in flight
// may report to either the old or the new observer.
func (s *Scheduler) SetStageObserver(ob StageObserver) {
	if ob == nil {
		s.stageOb.Store(nil)
		return
	}
	s.stageOb.Store(&ob)
}

// Each runs fn(ws, i) for every i in [0,n), distributed dynamically across
// the worker pool, and blocks until all n calls complete. Multiple Each
// calls may be in flight concurrently; their tasks interleave. fn must not
// itself call Each or Go (workers executing tasks would deadlock on a full
// queue).
func (s *Scheduler) Each(n int, fn func(ws *core.Workspace, i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		s.tasks <- task{run: func(ws *core.Workspace) { fn(ws, i) }, done: &wg}
	}
	wg.Wait()
}

// EachCtx is Each with cancellation: once ctx is done, queued tasks not
// yet picked up by a worker are skipped (fn never runs for them) and no
// further tasks are submitted. It blocks until every submitted task has
// either run or been skipped, then returns ctx.Err() — nil when all n
// calls completed.
func (s *Scheduler) EachCtx(ctx context.Context, n int, fn func(ws *core.Workspace, i int)) error {
	if ctx.Done() == nil {
		s.Each(n, fn) // uncancellable context: no per-send select needed
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(n)
	queued := 0
submit:
	for i := 0; i < n; i++ {
		i := i
		t := task{ctx: ctx, run: func(ws *core.Workspace) { fn(ws, i) }, done: &wg}
		select {
		case s.tasks <- t:
			queued++
		case <-ctx.Done():
			break submit
		}
	}
	for ; queued < n; queued++ {
		wg.Done() // account for tasks never submitted
	}
	wg.Wait()
	return ctx.Err()
}

// Go submits one task without waiting for it. It may block briefly when the
// task queue is full (backpressure). Use Drain to wait for all Go tasks.
func (s *Scheduler) Go(fn func(ws *core.Workspace)) {
	s.async.Add(1)
	s.tasks <- task{run: fn, done: &s.async}
}

// Drain blocks until every task submitted with Go has completed.
func (s *Scheduler) Drain() { s.async.Wait() }

// Close waits for queued tasks to finish and stops the workers. No Each or
// Go may be started after (or concurrently with) Close.
func (s *Scheduler) Close() {
	close(s.tasks)
	s.workers.Wait()
}
