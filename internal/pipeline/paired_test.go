package pipeline

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/seq"
)

func pairedSetup(t testing.TB) (*core.Aligner, []seq.Read, []seq.Read) {
	t.Helper()
	ref, err := datasets.Genome(datasets.DefaultGenome("chr1", 80000, 31))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pp := datasets.DefaultPairs(datasets.D4.Scaled(0.06)) // 300 pairs, 101 bp
	r1, r2, err := datasets.SimulatePairs(ref, pp)
	if err != nil {
		t.Fatal(err)
	}
	return a, r1, r2
}

func TestRunPairedProducesPairedRecords(t *testing.T) {
	a, r1, r2 := pairedSetup(t)
	res := RunPaired(a, r1, r2, Config{Threads: 2, BatchSize: 64})
	lines := strings.Split(strings.TrimSuffix(string(res.SAM), "\n"), "\n")
	if len(lines) != 2*len(r1) {
		t.Fatalf("%d records for %d pairs", len(lines), len(r1))
	}
	proper, tlenOK, within := 0, 0, 0
	for i := 0; i < len(lines); i += 2 {
		f1 := strings.Split(lines[i], "\t")
		f2 := strings.Split(lines[i+1], "\t")
		if f1[0] != f2[0] {
			t.Fatalf("pair records interleaved wrong: %q vs %q", f1[0], f2[0])
		}
		flag1, _ := strconv.Atoi(f1[1])
		flag2, _ := strconv.Atoi(f2[1])
		if flag1&core.FlagPaired == 0 || flag2&core.FlagPaired == 0 {
			t.Fatalf("unpaired flags: %d %d", flag1, flag2)
		}
		if flag1&core.FlagFirst == 0 || flag2&core.FlagLast == 0 {
			t.Fatalf("first/last wrong: %d %d", flag1, flag2)
		}
		if flag1&core.FlagProperPair != 0 {
			proper++
			tl1, _ := strconv.Atoi(f1[8])
			tl2, _ := strconv.Atoi(f2[8])
			if tl1+tl2 == 0 && tl1 != 0 {
				tlenOK++
			}
			// Compare against the simulated fragment truth.
			pos, flen, ok := datasets.TruePair(f1[0])
			if !ok {
				t.Fatalf("bad pair name %q", f1[0])
			}
			p1, _ := strconv.Atoi(f1[3])
			p2, _ := strconv.Atoi(f2[3])
			lo := p1
			if p2 < lo {
				lo = p2
			}
			if d := lo - 1 - pos; d >= -12 && d <= 12 {
				within++
			}
			if a := tl1; a < 0 {
				a = -a
			} else if a-flen > 50 || flen-a > 50 {
				t.Fatalf("tlen %d vs fragment %d", tl1, flen)
			}
		}
	}
	if proper < len(r1)*8/10 {
		t.Fatalf("only %d/%d proper pairs", proper, len(r1))
	}
	if tlenOK < proper*9/10 {
		t.Fatalf("tlen symmetry broken: %d/%d", tlenOK, proper)
	}
	if within < proper*9/10 {
		t.Fatalf("only %d/%d proper pairs at the simulated fragment", within, proper)
	}
}

func TestRunPairedThreadInvariant(t *testing.T) {
	a, r1, r2 := pairedSetup(t)
	one := RunPaired(a, r1, r2, Config{Threads: 1})
	two := RunPaired(a, r1, r2, Config{Threads: 2, BatchSize: 32})
	if !bytes.Equal(one.SAM, two.SAM) {
		t.Fatal("paired output changed with thread count")
	}
}

func TestRunPairedModesIdentical(t *testing.T) {
	ref, err := datasets.Genome(datasets.DefaultGenome("chr1", 80000, 31))
	if err != nil {
		t.Fatal(err)
	}
	pp := datasets.DefaultPairs(datasets.D4.Scaled(0.04))
	r1, r2, err := datasets.SimulatePairs(ref, pp)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := core.NewAligner(ref, core.ModeBaseline, core.DefaultOptions())
	ao, _ := core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	rb := RunPaired(ab, r1, r2, Config{Threads: 2})
	ro := RunPaired(ao, r1, r2, Config{Threads: 2})
	if !bytes.Equal(rb.SAM, ro.SAM) {
		t.Fatal("paired SAM differs between baseline and optimized modes")
	}
}
