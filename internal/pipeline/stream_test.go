package pipeline

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestEachCtxRunsAllWithoutCancel(t *testing.T) {
	a, _, _ := pairedSetup(t)
	s := NewScheduler(a, 2)
	defer s.Close()
	var ran atomic.Int64
	if err := s.EachCtx(context.Background(), 50, func(ws *core.Workspace, i int) {
		ran.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50 tasks", ran.Load())
	}
}

func TestEachCtxDropsUnstartedTasksOnCancel(t *testing.T) {
	a, _, _ := pairedSetup(t)
	s := NewScheduler(a, 1) // one worker: tasks queue behind the blocker
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	// Occupy the single worker so every EachCtx task sits in the queue.
	s.Go(func(ws *core.Workspace) {
		started.Done()
		<-release
	})
	started.Wait()

	var ran atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.EachCtx(ctx, 64, func(ws *core.Workspace, i int) { ran.Add(1) })
	}()
	// Give the submitter a moment to queue what fits, then cancel while
	// the worker is still blocked: nothing queued has started.
	time.Sleep(20 * time.Millisecond)
	cancel()
	close(release)
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("EachCtx err = %v", err)
	}
	s.Drain()
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d tasks ran despite cancellation before any started", n)
	}
}

func TestRunPairedStreamMatchesBuffered(t *testing.T) {
	a, r1, r2 := pairedSetup(t)
	want := RunPaired(a, r1, r2, Config{Threads: 3, BatchSize: 64})

	s := NewScheduler(a, 3)
	defer s.Close()
	perPair := make([][]byte, len(r1))
	var calls atomic.Int64
	res, err := RunPairedStreamOn(context.Background(), s, r1, r2, Config{BatchSize: 64},
		func(i int, rec []byte) {
			calls.Add(1)
			perPair[i] = rec
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.SAM != nil {
		t.Fatal("streamed Result carries a SAM buffer")
	}
	if int(calls.Load()) != len(r1) {
		t.Fatalf("emit called %d times for %d pairs", calls.Load(), len(r1))
	}
	var got bytes.Buffer
	for _, rec := range perPair {
		got.Write(rec)
	}
	if !bytes.Equal(got.Bytes(), want.SAM) {
		t.Fatal("streamed per-pair records differ from buffered RunPaired SAM")
	}
}

func TestRunPairedStreamCancelled(t *testing.T) {
	a, r1, r2 := pairedSetup(t)
	s := NewScheduler(a, 2)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before submission: no batch may run
	var calls atomic.Int64
	res, err := RunPairedStreamOn(ctx, s, r1, r2, Config{BatchSize: 16},
		func(int, []byte) { calls.Add(1) })
	if err != context.Canceled || res != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if calls.Load() != 0 {
		t.Fatalf("emit called %d times under a pre-cancelled context", calls.Load())
	}
}
