package sais

import (
	"bytes"
	"sort"
)

// BuildNaive computes the suffix array by direct comparison sorting. It is
// O(n^2 log n) in the worst case and exists to cross-check Build in tests and
// as the obviously-correct reference implementation.
func BuildNaive(s []byte) []int32 {
	sa := make([]int32, len(s))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return bytes.Compare(s[sa[a]:], s[sa[b]:]) < 0
	})
	return sa
}

// Validate reports whether sa is the suffix array of s: a permutation of
// [0,n) with suffixes in strictly increasing lexicographic order (the
// implicit-sentinel convention makes all suffixes distinct).
func Validate(s []byte, sa []int32) bool {
	n := len(s)
	if len(sa) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range sa {
		if p < 0 || int(p) >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	for i := 1; i < n; i++ {
		a, b := s[sa[i-1]:], s[sa[i]:]
		c := bytes.Compare(a, b)
		// With the implicit sentinel, a proper prefix sorts before the
		// longer string, which bytes.Compare already reports as -1.
		if c >= 0 {
			return false
		}
	}
	return true
}
