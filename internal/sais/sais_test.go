package sais

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildTrivial(t *testing.T) {
	if got := Build(nil); len(got) != 0 {
		t.Errorf("Build(nil) = %v", got)
	}
	if got := Build([]byte{7}); !eq(got, []int32{0}) {
		t.Errorf("Build(single) = %v", got)
	}
}

func TestBuildKnown(t *testing.T) {
	cases := []struct {
		in   string
		want []int32
	}{
		// banana: suffixes sorted: a(5) ana(3) anana(1) banana(0) na(4) nana(2)
		{"banana", []int32{5, 3, 1, 0, 4, 2}},
		{"aaaa", []int32{3, 2, 1, 0}},
		{"abab", []int32{2, 0, 3, 1}},
		{"mississippi", []int32{10, 7, 4, 1, 0, 9, 8, 6, 3, 5, 2}},
		// The paper's Figure 1 example without its explicit '$': ATACGAC.
		// Suffixes: AC(5) ACGAC(2) ATACGAC(0) C(6) CGAC(3) GAC(4) TACGAC(1)
		{"ATACGAC", []int32{5, 2, 0, 6, 3, 4, 1}},
	}
	for _, c := range cases {
		got := Build([]byte(c.in))
		if !eq(got, c.want) {
			t.Errorf("Build(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBuildMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabets := [][]byte{
		{0, 1, 2, 3},            // DNA codes
		{0},                     // unary
		{0, 1},                  // binary — stresses LMS naming ties
		{'a', 'b', 'c', 'z', 0}, // sparse bytes incl. zero
	}
	for trial := 0; trial < 200; trial++ {
		ab := alphabets[trial%len(alphabets)]
		n := rng.Intn(300)
		s := make([]byte, n)
		for i := range s {
			s[i] = ab[rng.Intn(len(ab))]
		}
		got := Build(s)
		if !Validate(s, got) {
			t.Fatalf("trial %d: Build produced invalid SA for %v: %v", trial, s, got)
		}
		want := BuildNaive(s)
		if !eq(got, want) {
			t.Fatalf("trial %d: Build=%v naive=%v for %v", trial, got, want, s)
		}
	}
}

func TestBuildQuickDNA(t *testing.T) {
	f := func(raw []byte) bool {
		s := make([]byte, len(raw))
		for i, b := range raw {
			s[i] = b & 3
		}
		return Validate(s, Build(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildLongRepetitive(t *testing.T) {
	// Highly repetitive input forces deep SA-IS recursion.
	var s []byte
	for i := 0; i < 2000; i++ {
		s = append(s, byte(i%3), byte(i%3), 1)
	}
	if !Validate(s, Build(s)) {
		t.Fatal("invalid SA on repetitive input")
	}
}

func TestValidateRejects(t *testing.T) {
	s := []byte("banana")
	good := Build(s)
	bad := append([]int32(nil), good...)
	bad[0], bad[1] = bad[1], bad[0]
	if Validate(s, bad) {
		t.Error("Validate accepted out-of-order SA")
	}
	dup := append([]int32(nil), good...)
	dup[2] = dup[3]
	if Validate(s, dup) {
		t.Error("Validate accepted non-permutation")
	}
	if Validate(s, good[:4]) {
		t.Error("Validate accepted wrong length")
	}
	oob := append([]int32(nil), good...)
	oob[0] = 99
	if Validate(s, oob) {
		t.Error("Validate accepted out-of-range entry")
	}
}

func BenchmarkBuild1M(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	s := make([]byte, 1<<20)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(s)
	}
}
