// Package sais constructs suffix arrays with the linear-time SA-IS algorithm
// (Nong, Zhang, Chan: "Two Efficient Algorithms for Linear Time Suffix Array
// Construction"). The suffix array orders all suffixes of the reference and
// is the foundation of both the BWT/FM-index (seeding) and the suffix-array
// lookup (SAL) kernel.
package sais

// Build computes the suffix array of s: Build(s)[i] is the start position of
// the i-th lexicographically smallest suffix of s. The implicit sentinel
// convention of BWA is used: a virtual terminator smaller than every symbol
// ends the string but is not included in the result, so the result has
// exactly len(s) entries.
func Build(s []byte) []int32 {
	n := len(s)
	switch n {
	case 0:
		return []int32{}
	case 1:
		return []int32{0}
	}
	// Shift the alphabet up by one so 0 is free for the sentinel, then run
	// SA-IS on s+[0]. The sentinel suffix sorts first and is stripped.
	t := make([]int32, n+1)
	for i := 0; i < n; i++ {
		t[i] = int32(s[i]) + 1
	}
	t[n] = 0
	sa := make([]int32, n+1)
	saisRec(t, sa, 257)
	return sa[1:]
}

// saisRec computes the suffix array of s into sa (len(sa) == len(s)). s must
// end with a unique smallest symbol (the sentinel) and use symbols in [0, k).
func saisRec(s, sa []int32, k int32) {
	n := len(s)
	if n == 1 {
		sa[0] = 0
		return
	}

	// Classify each position as S-type (true) or L-type (false). The
	// sentinel is S-type by definition.
	isS := make([]bool, n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		isS[i] = s[i] < s[i+1] || (s[i] == s[i+1] && isS[i+1])
	}

	// LMS (left-most S) positions in text order. The sentinel position is
	// always LMS because its predecessor is L-type.
	var lms []int32
	for i := 1; i < n; i++ {
		if isS[i] && !isS[i-1] {
			lms = append(lms, int32(i))
		}
	}
	m := len(lms)
	bkt := make([]int32, k)

	// Stage 1: approximately sort LMS substrings — drop LMS positions at
	// their bucket tails and induce.
	for i := range sa {
		sa[i] = -1
	}
	bucketTails(s, bkt)
	for i := m - 1; i >= 0; i-- {
		p := lms[i]
		bkt[s[p]]--
		sa[bkt[s[p]]] = p
	}
	induce(s, sa, isS, bkt)

	// Compact the now-sorted LMS positions.
	sortedLMS := make([]int32, 0, m)
	for i := 0; i < n; i++ {
		if p := sa[i]; p > 0 && isS[p] && !isS[p-1] {
			sortedLMS = append(sortedLMS, p)
		}
	}

	// Name LMS substrings; equal substrings share a name, so the names
	// preserve the substring order.
	names := make([]int32, n)
	name := int32(0)
	names[sortedLMS[0]] = 0
	for i := 1; i < m; i++ {
		if !lmsEqual(s, isS, int(sortedLMS[i-1]), int(sortedLMS[i])) {
			name++
		}
		names[sortedLMS[i]] = name
	}

	// Reduced string: names of LMS substrings in text order. Its suffix
	// array gives the true order of the LMS suffixes.
	s1 := make([]int32, m)
	for i, p := range lms {
		s1[i] = names[p]
	}
	sa1 := make([]int32, m)
	if int(name)+1 < m {
		saisRec(s1, sa1, name+1)
	} else {
		// All names distinct: the suffix order is the inverse permutation.
		for i, nm := range s1 {
			sa1[nm] = int32(i)
		}
	}

	// Stage 2: place LMS suffixes at bucket tails in their final order
	// (right to left keeps ties stable) and induce the full suffix array.
	for i := range sa {
		sa[i] = -1
	}
	bucketTails(s, bkt)
	for i := m - 1; i >= 0; i-- {
		p := lms[sa1[i]]
		bkt[s[p]]--
		sa[bkt[s[p]]] = p
	}
	induce(s, sa, isS, bkt)
}

// bucketTails fills bkt[c] with the index one past the last slot of symbol
// c's bucket.
func bucketTails(s []int32, bkt []int32) {
	for i := range bkt {
		bkt[i] = 0
	}
	for _, c := range s {
		bkt[c]++
	}
	var sum int32
	for i := range bkt {
		sum += bkt[i]
		bkt[i] = sum
	}
}

// bucketHeads fills bkt[c] with the index of the first slot of symbol c's
// bucket.
func bucketHeads(s []int32, bkt []int32) {
	for i := range bkt {
		bkt[i] = 0
	}
	for _, c := range s {
		bkt[c]++
	}
	var sum int32
	for i := range bkt {
		cnt := bkt[i]
		bkt[i] = sum
		sum += cnt
	}
}

// induce performs the two induced-sorting scans that place L-type then S-type
// suffixes, given LMS suffixes already seeded in sa.
func induce(s, sa []int32, isS []bool, bkt []int32) {
	n := len(s)
	bucketHeads(s, bkt)
	for i := 0; i < n; i++ {
		if j := sa[i] - 1; sa[i] > 0 && !isS[j] {
			sa[bkt[s[j]]] = j
			bkt[s[j]]++
		}
	}
	bucketTails(s, bkt)
	for i := n - 1; i >= 0; i-- {
		if j := sa[i] - 1; sa[i] > 0 && isS[j] {
			bkt[s[j]]--
			sa[bkt[s[j]]] = j
		}
	}
}

// lmsEqual reports whether the LMS substrings starting at a and b are equal.
// An LMS substring spans from its LMS position to the next LMS position,
// inclusive. The sentinel's LMS substring is unique.
func lmsEqual(s []int32, isS []bool, a, b int) bool {
	n := len(s)
	if a == n-1 || b == n-1 {
		return a == b
	}
	for i := 0; ; i++ {
		if s[a+i] != s[b+i] || isS[a+i] != isS[b+i] {
			return false
		}
		if i > 0 {
			aLMS := isS[a+i] && !isS[a+i-1]
			bLMS := isS[b+i] && !isS[b+i-1]
			if aLMS || bLMS {
				return aLMS && bLMS
			}
		}
	}
}
