package soak

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/pkg/bwaclient"
	"repro/pkg/bwamem"
)

// Workload operation names — the keys of Report.Ops and the units of the
// seeded mix. Success ops carry a precomputed pipeline oracle; rejection
// ops carry the APIError code the server must answer with.
const (
	opSingle    = "single"      // duplicate-heavy single-end (rescache hot path)
	opPaired    = "paired"      // paired-end batches
	opSlow      = "slow-reader" // drains the SAM stream at a trickle
	opCancel    = "cancel"      // abandons the request mid-flight
	opOversize  = "oversize"    // more reads than the server's per-request cap
	opMalformed = "malformed"   // invalid read (name/seq/qual policy)
	opHealth    = "health"      // GET /v1/healthz poll
	opMetrics   = "metrics"     // GET /v1/metrics poll
)

// template is one replayable request shape. Success templates (want set)
// assert byte-identity against the offline pipeline oracle; rejection
// templates (wantCode set) assert the typed error envelope.
type template struct {
	reads    []bwaclient.Read // single-end request
	r1, r2   []bwaclient.Read // paired request (when non-nil)
	want     []byte           // oracle SAM (header=0) for success templates
	wantCode string           // expected APIError.Code for rejection templates
}

// workload is everything a run needs that derives deterministically from
// (seed, genome, read length): the index the in-process server mounts and
// the request templates with their oracles.
type workload struct {
	idx       *bwamem.Index
	singles   []template
	paireds   []template
	oversize  template
	malformed []template
}

// pool sizes: small enough that oracle precomputation is a startup blip,
// large enough that the request mix touches distinct cache keys.
const (
	poolReads = 256
	poolPairs = 96
)

// buildWorkload constructs the deterministic workload: a synthetic index,
// simulated read pools, request templates sampled from them, and an
// offline pipeline.Run / pipeline.RunPaired oracle answer per success
// template. Every choice flows from o.Seed, so two runs with the same
// options replay the same requests.
func buildWorkload(o *Options) (*workload, error) {
	idx, err := bwamem.Synthetic(o.GenomeBP, o.GenomeSeed)
	if err != nil {
		return nil, fmt.Errorf("soak: building synthetic index: %w", err)
	}
	reads, err := idx.SimulateReads(poolReads, o.ReadLen, o.Seed)
	if err != nil {
		return nil, err
	}
	r1, r2, err := idx.SimulatePairs(poolPairs, o.ReadLen, o.Seed+1)
	if err != nil {
		return nil, err
	}
	// The oracle is the offline pipeline over the same reference — the
	// same construction the byte-identity tests across the repo use.
	ref, err := datasets.Genome(datasets.DefaultGenome("synthetic", o.GenomeBP, o.GenomeSeed))
	if err != nil {
		return nil, err
	}
	oracle, err := core.NewAligner(ref, core.ModeOptimized, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	pcfg := pipeline.Config{Threads: o.Threads}

	w := &workload{idx: idx}
	rng := rand.New(rand.NewSource(o.Seed))

	// Single-end templates, alternating duplicate-heavy (a handful of
	// distinct sequences under many names — the rescache hot path) with
	// spread-out ones.
	for t := 0; t < 6; t++ {
		n := 24 + rng.Intn(40)
		distinct := n
		if t%2 == 0 {
			distinct = 4 + rng.Intn(4)
		}
		base := rng.Intn(poolReads)
		tr := make([]bwaclient.Read, n)
		for i := range tr {
			src := reads[(base+i%distinct)%poolReads]
			tr[i] = bwaclient.Read{Name: fmt.Sprintf("s%dx%d", t, i), Seq: src.Seq, Qual: src.Qual}
		}
		res := pipeline.Run(oracle, toSeqReads(tr), pcfg)
		w.singles = append(w.singles, template{reads: tr, want: res.SAM})
	}

	// Paired templates: contiguous windows of the simulated pair pool
	// (names stay as simulated — pair-name validation requires they match).
	for t := 0; t < 4; t++ {
		n := 12 + rng.Intn(24)
		at := rng.Intn(poolPairs - n)
		t1 := toClientReads(r1[at : at+n])
		t2 := toClientReads(r2[at : at+n])
		res := pipeline.RunPaired(oracle, toSeqReads(t1), toSeqReads(t2), pcfg)
		w.paireds = append(w.paireds, template{r1: t1, r2: t2, want: res.SAM})
	}

	// Oversize: one read past the per-request cap must be rejected with
	// the too_large envelope, mid-decode, regardless of load.
	over := make([]bwaclient.Read, o.MaxRequestReads+1)
	for i := range over {
		over[i] = bwaclient.Read{Name: fmt.Sprintf("ov%d", i), Seq: reads[i%poolReads].Seq}
	}
	w.oversize = template{reads: over, wantCode: bwaclient.CodeTooLarge}

	// Malformed bodies: each violates one rule of the input policy.
	w.malformed = []template{
		{reads: []bwaclient.Read{{Name: "bad\tname", Seq: []byte("ACGTACGT")}},
			wantCode: bwaclient.CodeBadRequest},
		{reads: []bwaclient.Read{{Name: "empty", Seq: nil}},
			wantCode: bwaclient.CodeBadRequest},
		{reads: []bwaclient.Read{{Name: "longread", Seq: []byte(strings.Repeat("A", o.MaxReadLen+1))}},
			wantCode: bwaclient.CodeTooLarge},
		{reads: []bwaclient.Read{{Name: "qualskew", Seq: []byte("ACGTACGT"), Qual: []byte("!!")}},
			wantCode: bwaclient.CodeBadRequest},
	}
	return w, nil
}

func toClientReads(in []bwamem.Read) []bwaclient.Read {
	out := make([]bwaclient.Read, len(in))
	for i, r := range in {
		out[i] = bwaclient.Read(r)
	}
	return out
}

func toSeqReads(in []bwaclient.Read) []seq.Read {
	out := make([]seq.Read, len(in))
	for i, r := range in {
		out[i] = seq.Read(r)
	}
	return out
}
